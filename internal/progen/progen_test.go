package progen

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/sem/core"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

func TestGenerateParses(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src := Generate(Config{Lat: lattice.TwoPoint(), Seed: seed, AllowMitigate: true, AllowSleep: true})
		if _, err := parser.Parse(src); err != nil {
			t.Fatalf("seed %d: generated unparsable program: %v\n%s", seed, err, src)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Lat: lattice.TwoPoint(), Seed: 42, AllowMitigate: true}
	if Generate(cfg) != Generate(cfg) {
		t.Error("same seed should generate the same program")
	}
	other := Config{Lat: lattice.TwoPoint(), Seed: 43, AllowMitigate: true}
	if Generate(cfg) == Generate(other) {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestGenerateMostlyWellTyped(t *testing.T) {
	lat := lattice.TwoPoint()
	typed := 0
	const total = 100
	for seed := int64(0); seed < total; seed++ {
		src := Generate(Config{Lat: lat, Seed: seed, AllowMitigate: true, AllowSleep: true})
		p, err := parser.Parse(src)
		if err != nil {
			continue
		}
		if _, err := types.Check(p, lat); err == nil {
			typed++
		}
	}
	// The generator mirrors the typing rules; essentially everything
	// should type-check.
	if typed < total*9/10 {
		t.Errorf("only %d/%d generated programs type-check", typed, total)
	}
}

func TestGenerateTyped(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog, res, src, err := GenerateTyped(Config{
			Lat: lattice.ThreePoint(), Seed: seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		if prog == nil || res == nil || src == "" {
			t.Fatal("nil results")
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog, _, src, err := GenerateTyped(Config{
			Lat: lattice.TwoPoint(), Seed: seed, AllowMitigate: true, AllowSleep: true,
			MaxDepth: 4,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		k := core.New(prog, mem.New(prog))
		if err := k.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: generated program did not terminate: %v\n%s", seed, err, src)
		}
	}
}

func TestGenerateUsesRequestedFeatures(t *testing.T) {
	// Across many seeds, mitigate and sleep should both appear.
	sawMitigate, sawSleep, sawWhile := false, false, false
	for seed := int64(0); seed < 40; seed++ {
		src := Generate(Config{Lat: lattice.TwoPoint(), Seed: seed, AllowMitigate: true, AllowSleep: true})
		if strings.Contains(src, "mitigate") {
			sawMitigate = true
		}
		if strings.Contains(src, "sleep") {
			sawSleep = true
		}
		if strings.Contains(src, "while") {
			sawWhile = true
		}
	}
	if !sawMitigate || !sawSleep || !sawWhile {
		t.Errorf("feature coverage: mitigate=%v sleep=%v while=%v", sawMitigate, sawSleep, sawWhile)
	}
}

func TestGenerateWithoutOptionalFeatures(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := Generate(Config{Lat: lattice.TwoPoint(), Seed: seed})
		if strings.Contains(src, "mitigate") || strings.Contains(src, "sleep") {
			t.Fatalf("disabled features appeared:\n%s", src)
		}
	}
}

func TestGenerateDiamondLattice(t *testing.T) {
	_, _, _, err := GenerateTyped(Config{Lat: lattice.Diamond(), Seed: 7, AllowMitigate: true}, 50)
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTypedExhaustion(t *testing.T) {
	// maxTries=0 must fail cleanly.
	_, _, _, err := GenerateTyped(Config{Lat: lattice.TwoPoint()}, 0)
	if err == nil {
		t.Error("expected exhaustion error")
	}
}

// Package progen generates random programs in the timing-channel
// language for property-based testing.
//
// The generator mirrors the typing discipline of the paper's Fig. 4 as
// it builds commands — tracking the program-counter label and the
// timing start-label, and choosing assignment targets high enough to
// absorb all taint — so that almost every generated program
// type-checks. Loops are built over dedicated counter variables with a
// forced reset/increment shape, so every generated program terminates.
// GenerateTyped retries with fresh seeds until type checking succeeds,
// making it a total source of (program, typing) pairs.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/types"
)

// Config controls generation. The zero value of optional fields selects
// the defaults noted.
type Config struct {
	// Lat is the security lattice; required.
	Lat lattice.Lattice
	// Seed drives the deterministic random source.
	Seed int64
	// MaxDepth bounds command nesting; default 3.
	MaxDepth int
	// StmtsPerBlock bounds the statements in each sequence; default 4.
	StmtsPerBlock int
	// ScalarsPerLevel is the number of scalar variables declared at
	// each lattice level; default 2.
	ScalarsPerLevel int
	// ArraysPerLevel is the number of arrays (of ArrayLen elements)
	// declared per level; default 1.
	ArraysPerLevel int
	// ArrayLen is the length of generated arrays; default 8.
	ArrayLen int
	// CountersPerLevel is the number of loop counters available per
	// level; default 2. Loops consume a free counter; when none is
	// free, loop generation falls back to an if.
	CountersPerLevel int
	// LoopBound is the iteration count of generated loops; default 3.
	LoopBound int
	// AllowMitigate enables mitigate generation; mitigation levels are
	// always ⊤ so bodies can be arbitrary.
	AllowMitigate bool
	// AllowSleep enables sleep generation.
	AllowSleep bool
	// MaxExprDepth bounds expression nesting; default 3.
	MaxExprDepth int
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.StmtsPerBlock == 0 {
		c.StmtsPerBlock = 4
	}
	if c.ScalarsPerLevel == 0 {
		c.ScalarsPerLevel = 2
	}
	if c.ArraysPerLevel == 0 {
		c.ArraysPerLevel = 1
	}
	if c.ArrayLen == 0 {
		c.ArrayLen = 8
	}
	if c.CountersPerLevel == 0 {
		c.CountersPerLevel = 2
	}
	if c.LoopBound == 0 {
		c.LoopBound = 3
	}
	if c.MaxExprDepth == 0 {
		c.MaxExprDepth = 3
	}
	return c
}

// varInfo describes one declared variable.
type varInfo struct {
	name    string
	level   lattice.Label
	isArray bool
	counter bool
}

type gen struct {
	cfg  Config
	lat  lattice.Lattice
	r    *rand.Rand
	vars []varInfo
	// counterBusy marks counters currently owned by an enclosing loop.
	counterBusy map[string]bool
	b           strings.Builder
}

// Generate produces random program source text. The result usually
// type-checks (by construction) but is not guaranteed to; use
// GenerateTyped for a guaranteed-well-typed program.
func Generate(cfg Config) string {
	cfg = cfg.withDefaults()
	g := &gen{
		cfg:         cfg,
		lat:         cfg.Lat,
		r:           rand.New(rand.NewSource(cfg.Seed)),
		counterBusy: make(map[string]bool),
	}
	g.declare()
	g.block(0, g.lat.Bot(), g.lat.Bot(), g.lat.Top(), g.cfg.StmtsPerBlock)
	return g.b.String()
}

// GenerateTyped generates until the program type-checks, up to
// maxTries seeds derived from cfg.Seed; it reports how many attempts
// were needed via the returned seed offset.
func GenerateTyped(cfg Config, maxTries int) (*ast.Program, *types.Result, string, error) {
	cfg = cfg.withDefaults()
	for i := 0; i < maxTries; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1_000_003
		src := Generate(c)
		prog, err := parser.Parse(src)
		if err != nil {
			continue
		}
		res, err := types.Check(prog, cfg.Lat)
		if err != nil {
			continue
		}
		return prog, res, src, nil
	}
	return nil, nil, "", fmt.Errorf("progen: no well-typed program in %d tries (seed %d)", maxTries, cfg.Seed)
}

// declare emits declarations and records variable metadata.
func (g *gen) declare() {
	for _, lv := range g.lat.Levels() {
		ln := sanitize(lv.String())
		for i := 0; i < g.cfg.ScalarsPerLevel; i++ {
			name := fmt.Sprintf("s_%s_%d", ln, i)
			g.vars = append(g.vars, varInfo{name: name, level: lv})
			fmt.Fprintf(&g.b, "var %s : %s;\n", name, lv)
		}
		for i := 0; i < g.cfg.ArraysPerLevel; i++ {
			name := fmt.Sprintf("a_%s_%d", ln, i)
			g.vars = append(g.vars, varInfo{name: name, level: lv, isArray: true})
			fmt.Fprintf(&g.b, "array %s[%d] : %s;\n", name, g.cfg.ArrayLen, lv)
		}
		for i := 0; i < g.cfg.CountersPerLevel; i++ {
			name := fmt.Sprintf("c_%s_%d", ln, i)
			g.vars = append(g.vars, varInfo{name: name, level: lv, counter: true})
			fmt.Fprintf(&g.b, "var %s : %s;\n", name, lv)
		}
	}
}

// sanitize turns a label name into an identifier fragment.
func sanitize(s string) string {
	var out strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			out.WriteRune(r)
		}
	}
	if out.Len() == 0 {
		return "x"
	}
	return out.String()
}

// pick returns a random variable satisfying the filter, or nil.
func (g *gen) pick(filter func(varInfo) bool) *varInfo {
	var cands []int
	for i, v := range g.vars {
		if filter(v) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return &g.vars[cands[g.r.Intn(len(cands))]]
}

// expr generates a random expression whose variables all have levels
// ⊑ cap; it returns the source text, the expression's level, and its
// address level (join of index-expression levels).
func (g *gen) expr(depth int, cap lattice.Label) (string, lattice.Label, lattice.Label) {
	bot := g.lat.Bot()
	if depth >= g.cfg.MaxExprDepth || g.r.Intn(3) == 0 {
		// Leaf: literal or variable.
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(20)), bot, bot
		default:
			v := g.pick(func(v varInfo) bool {
				return !v.isArray && !v.counter && g.lat.Leq(v.level, cap)
			})
			if v == nil {
				return fmt.Sprintf("%d", g.r.Intn(20)), bot, bot
			}
			return v.name, v.level, bot
		}
	}
	switch g.r.Intn(5) {
	case 0: // unary
		s, l, al := g.expr(depth+1, cap)
		op := "-"
		if g.r.Intn(2) == 0 {
			op = "!"
		}
		return fmt.Sprintf("%s(%s)", op, s), l, al
	case 1: // array read a[e]
		v := g.pick(func(v varInfo) bool { return v.isArray && g.lat.Leq(v.level, cap) })
		if v == nil {
			break
		}
		is, il, ial := g.expr(depth+1, cap)
		lvl := g.lat.Join(v.level, il)
		addr := g.lat.Join(il, ial)
		return fmt.Sprintf("%s[%s]", v.name, is), lvl, addr
	}
	// binary
	ops := []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||", "&", "|", "^"}
	op := ops[g.r.Intn(len(ops))]
	a, la, aa := g.expr(depth+1, cap)
	b, lb, ab := g.expr(depth+1, cap)
	return fmt.Sprintf("(%s %s %s)", a, op, b), g.lat.Join(la, lb), g.lat.Join(aa, ab)
}

// block emits up to n statements, threading the timing label t through
// them per T-SEQ, and returns the final timing label. cap bounds every
// level used inside (⊤ outside loops; the loop's counter level inside).
func (g *gen) block(depth int, pc, t, cap lattice.Label, n int) lattice.Label {
	count := 1 + g.r.Intn(n)
	emitted := 0
	for i := 0; i < count; i++ {
		nt, ok := g.stmt(depth, pc, t, cap)
		if ok {
			t = nt
			emitted++
		}
	}
	if emitted == 0 {
		g.b.WriteString("skip;\n")
	}
	return t
}

// stmt emits one statement and returns the new timing label; ok is
// false if nothing could be generated under the constraints.
func (g *gen) stmt(depth int, pc, t, cap lattice.Label) (lattice.Label, bool) {
	choices := []int{0, 1, 1, 1, 2, 2} // skip, assign, store
	if depth < g.cfg.MaxDepth {
		choices = append(choices, 3, 3, 4) // if, while
		if g.cfg.AllowMitigate {
			choices = append(choices, 5, 5)
		}
	}
	if g.cfg.AllowSleep {
		choices = append(choices, 6)
	}
	switch choices[g.r.Intn(len(choices))] {
	case 0:
		g.b.WriteString("skip;\n")
		// Inferred er = pc: t' = t ⊔ pc (already ⊒ pc never hurts).
		return g.lat.Join(t, pc), true

	case 1: // assignment
		es, el, al := g.expr(0, cap)
		// Inferred ew = er = pc ⊔ al; target must absorb everything.
		need := g.lat.Join(g.lat.Join(pc, t), g.lat.Join(el, al))
		v := g.pick(func(v varInfo) bool {
			return !v.isArray && !v.counter && g.lat.Leq(need, v.level) && g.lat.Leq(v.level, cap)
		})
		if v == nil {
			return t, false
		}
		fmt.Fprintf(&g.b, "%s := %s;\n", v.name, es)
		return v.level, true

	case 2: // array store
		is, il, ial := g.expr(0, cap)
		es, el, al := g.expr(0, cap)
		need := g.lat.Join(
			g.lat.Join(pc, t),
			g.lat.Join(g.lat.Join(il, ial), g.lat.Join(el, al)))
		v := g.pick(func(v varInfo) bool {
			return v.isArray && g.lat.Leq(need, v.level) && g.lat.Leq(v.level, cap)
		})
		if v == nil {
			return t, false
		}
		fmt.Fprintf(&g.b, "%s[%s] := %s;\n", v.name, is, es)
		return v.level, true

	case 3: // if
		gs, gl, gal := g.expr(0, cap)
		innerPC := g.lat.Join(pc, gl)
		// Inferred er = pc ⊔ gal for the if command itself.
		innerT := g.lat.Join(g.lat.Join(gl, t), g.lat.Join(pc, gal))
		fmt.Fprintf(&g.b, "if (%s) {\n", gs)
		t1 := g.block(depth+1, innerPC, innerT, cap, g.cfg.StmtsPerBlock)
		g.b.WriteString("} else {\n")
		t2 := g.block(depth+1, innerPC, innerT, cap, g.cfg.StmtsPerBlock)
		g.b.WriteString("}\n")
		return g.lat.Join(t1, t2), true

	case 4: // bounded while over a free counter
		// The counter's level must absorb the current taint so its
		// reset and increment type-check at the loop's fixed point.
		need := g.lat.Join(pc, t)
		v := g.pick(func(v varInfo) bool {
			return v.counter && !g.counterBusy[v.name] &&
				g.lat.Leq(need, v.level) && g.lat.Leq(v.level, cap)
		})
		if v == nil {
			return t, false
		}
		g.counterBusy[v.name] = true
		fmt.Fprintf(&g.b, "%s := 0;\n", v.name)
		fmt.Fprintf(&g.b, "while (%s < %d) {\n", v.name, g.cfg.LoopBound)
		fmt.Fprintf(&g.b, "%s := %s + 1;\n", v.name, v.name)
		// Body capped at the counter's level so the loop fixed point
		// stays at that level; mitigates inside may still exceed it.
		g.block(depth+1, v.level, v.level, v.level, g.cfg.StmtsPerBlock-1)
		g.b.WriteString("}\n")
		g.counterBusy[v.name] = false
		// After reset (t=v.level), loop end label is the fixed point.
		return v.level, true

	case 5: // mitigate at top level: body is unconstrained
		init := 1 + g.r.Intn(64)
		fmt.Fprintf(&g.b, "mitigate (%d, %s) {\n", init, g.lat.Top())
		g.block(depth+1, pc, g.lat.Join(t, pc), g.lat.Top(), g.cfg.StmtsPerBlock)
		g.b.WriteString("}\n")
		// T-MTG: end label is t ⊔ ℓe(init literal = ⊥) ⊔ er(pc).
		return g.lat.Join(t, pc), true

	case 6: // sleep
		es, el, al := g.expr(0, cap)
		fmt.Fprintf(&g.b, "sleep(%s);\n", es)
		return g.lat.Join(g.lat.Join(t, el), g.lat.Join(pc, al)), true
	}
	return t, false
}

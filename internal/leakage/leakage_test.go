package leakage

import (
	"testing"

	"math/rand"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

func compile(t *testing.T, src string, lat lattice.Lattice) (*ast.Program, *types.Result) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lat)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return p, r
}

func hSecrets(vals ...int64) []Secret {
	out := make([]Secret, len(vals))
	for i, v := range vals {
		v := v
		out[i] = func(m *mem.Memory) { m.Set("h", v) }
	}
	return out
}

func cfgFor(p *ast.Program, r *types.Result) Config {
	return Config{
		Prog:      p,
		Res:       r,
		NewEnv:    func() hw.Env { return hw.NewFlat(r.Lat, 2) },
		Adversary: r.Lat.Bot(),
	}
}

func TestZeroLeakageWithoutMitigate(t *testing.T) {
	// A well-typed program with no mitigate leaks nothing (corollary of
	// Theorem 2).
	// The low assignment comes first: after the high-timed assignment
	// the timing label is H, so a trailing low assignment would not
	// typecheck (that ordering needs mitigation).
	p, r := compile(t, `
var h : H;
var h2 : H;
var l : L;
l := 7;
h2 := h * 3 [H,H];
`, lattice.TwoPoint())
	m, err := Measure(cfgFor(p, r), hSecrets(1, 2, 3, 4, 50, 60, 70))
	if err != nil {
		t.Fatal(err)
	}
	if m.DistinctObservations != 1 {
		t.Errorf("observations = %d, want 1", m.DistinctObservations)
	}
	if m.QBits != 0 {
		t.Errorf("Q = %f, want 0", m.QBits)
	}
	if err := CheckTheorem2(m); err != nil {
		t.Error(err)
	}
}

func TestUnmitigatedSleepLeaks(t *testing.T) {
	// Without mitigation (disabled), sleep(h) before a low assignment
	// leaks h through the assignment's time.
	p, r := compile(t, `
var h : H;
var l : L;
mitigate (1, H) [L,L] { sleep(h) [H,H]; }
l := 1;
`, lattice.TwoPoint())
	cfg := cfgFor(p, r)
	cfg.Opts = full.Options{DisableMitigation: true}
	m, err := Measure(cfg, hSecrets(1, 2, 3, 4, 5, 6, 7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if m.DistinctObservations != 8 {
		t.Errorf("unmitigated observations = %d, want 8 (full leak)", m.DistinctObservations)
	}
	if m.QBits != 3 {
		t.Errorf("Q = %f, want 3 bits", m.QBits)
	}
}

func TestMitigationCollapsesObservations(t *testing.T) {
	p, r := compile(t, `
var h : H;
var l : L;
mitigate (64, H) [L,L] { sleep(h) [H,H]; }
l := 1;
`, lattice.TwoPoint())
	// Secrets all below the initial prediction: one observation.
	m, err := Measure(cfgFor(p, r), hSecrets(1, 5, 10, 20, 40, 50))
	if err != nil {
		t.Fatal(err)
	}
	if m.DistinctObservations != 1 {
		t.Errorf("mitigated observations = %d, want 1", m.DistinctObservations)
	}
	if err := CheckTheorem2(m); err != nil {
		t.Error(err)
	}
	// Wider secrets: collapse into a few schedule buckets (64, 128,
	// 256), never the full range.
	m, err = Measure(cfgFor(p, r), hSecrets(10, 20, 30, 40, 80, 100, 150, 200))
	if err != nil {
		t.Fatal(err)
	}
	if m.DistinctObservations > 3 {
		t.Errorf("mitigation should collapse 8 secrets into ≤3 buckets: %d", m.DistinctObservations)
	}
	if err := CheckTheorem2(m); err != nil {
		t.Error(err)
	}
	if err := CheckBound(m, 1); err != nil {
		t.Error(err)
	}
}

func TestTheorem2OnGeneratedPrograms(t *testing.T) {
	lat := lattice.TwoPoint()
	H := lat.Top()
	for seed := int64(0); seed < 10; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 300 + seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		var secrets []Secret
		for i := 0; i < 12; i++ {
			vals := map[string]int64{}
			for _, d := range prog.Decls {
				if d.Label == H && !d.IsArray {
					vals[d.Name] = int64(r.Intn(1000))
				}
			}
			vals2 := vals
			secrets = append(secrets, func(m *mem.Memory) {
				for k, v := range vals2 {
					m.Set(k, v)
				}
			})
		}
		cfg := Config{
			Prog:      prog,
			Res:       res,
			NewEnv:    func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
			Adversary: lat.Bot(),
		}
		m, err := Measure(cfg, secrets)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if err := CheckTheorem2(m); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
		if err := CheckBound(m, 1); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

func TestMultilevelLeakageSeparation(t *testing.T) {
	// §6.2's example: in L ⊑ M ⊑ H, sleep(h) leaks nothing *from {M}*
	// to L even though it leaks from {H}.
	lat := lattice.ThreePoint()
	p, r := compile(t, `
var h : H;
var m : M;
var l : L;
mitigate (8, H) [L,L] { sleep(h) [H,H]; }
l := 1;
`, lat)
	cfg := cfgFor(p, r)
	cfg.NewEnv = func() hw.Env { return hw.NewFlat(lat, 2) }
	M, _ := lat.Lookup("M")
	H, _ := lat.Lookup("H")

	// Leakage from {H}: vary h.
	cfg.From = []lattice.Label{H}
	mh, err := Measure(cfg, hSecrets(1, 50, 400, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if mh.DistinctObservations < 2 {
		t.Error("varying h should be observable (bounded leak)")
	}
	if err := CheckTheorem2(mh); err != nil {
		t.Error(err)
	}

	// Leakage from {M}: vary m only; h fixed.
	cfg.From = []lattice.Label{M}
	secrets := []Secret{
		func(mm *mem.Memory) { mm.Set("m", 1) },
		func(mm *mem.Memory) { mm.Set("m", 2) },
		func(mm *mem.Memory) { mm.Set("m", 3) },
	}
	mm, err := Measure(cfg, secrets)
	if err != nil {
		t.Fatal(err)
	}
	if mm.DistinctObservations != 1 {
		t.Errorf("varying m should be unobservable: %d observations", mm.DistinctObservations)
	}
	if mm.QBits != 0 {
		t.Errorf("Q from {M} = %f, want 0", mm.QBits)
	}
}

func TestRelevantProjectionFilters(t *testing.T) {
	lat := lattice.TwoPoint()
	p, r := compile(t, `
var high : H;
var h : H;
mitigate@1 (64, H) [L,L] {
    if (high) [H,H] {
        mitigate@2 (8, H) [H,H] { h := h + 1 [H,H]; }
    } else {
        skip [H,H];
    }
}
`, lat)
	env := hw.NewFlat(lat, 2)
	machine, err := full.New(p, r, env, full.Options{})
	if err != nil {
		t.Fatal(err)
	}
	machine.Memory().Set("high", 1)
	if err := machine.Run(100000); err != nil {
		t.Fatal(err)
	}
	closure := lattice.UpwardClosure(lat, []lattice.Label{lat.Top()})
	proj := RelevantProjection(machine.Mitigations(), r, closure)
	// Only M1 (pc=L, lev=H) is in the projection; M2 has pc=H.
	if len(proj) != 1 || proj[0].ID != 1 {
		t.Errorf("projection = %v, want only M1", proj)
	}
}

func TestBoundFormula(t *testing.T) {
	if Bound(1, 0, 0) != 0 {
		t.Error("T=0 bound should be 0")
	}
	// K=0: log2(1)=0 ⇒ bound 0 (no mitigates ⇒ no leakage).
	if Bound(1, 0, 1<<20) != 0 {
		t.Error("K=0 bound should be 0")
	}
	// |L↑| scales the bound linearly.
	b1 := Bound(1, 3, 1024)
	b2 := Bound(2, 3, 1024)
	if b2 != 2*b1 {
		t.Errorf("closure scaling: %f vs %f", b1, b2)
	}
	// 1 mitigate, T=1024: 1·log2(2)·(1+10) = 11 bits.
	if got := Bound(1, 1, 1024); got != 11 {
		t.Errorf("Bound(1,1,1024) = %f, want 11", got)
	}
}

func TestMeasurementFieldsPopulated(t *testing.T) {
	p, r := compile(t, `
var h : H;
var l : L;
mitigate (4, H) [L,L] { sleep(h) [H,H]; }
l := 1;
`, lattice.TwoPoint())
	m, err := Measure(cfgFor(p, r), hSecrets(1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if m.Trials != 2 || m.MaxClock == 0 || m.RelevantMitigates != 1 {
		t.Errorf("measurement = %+v", m)
	}
	if m.VBits < m.QBits {
		t.Errorf("Theorem 2: V (%f) should bound Q (%f)", m.VBits, m.QBits)
	}
}

func TestSetupAppliesBeforeSecret(t *testing.T) {
	p, r := compile(t, `
var h : H;
var pub : L;
var l : L;
mitigate (64, H) [L,L] { sleep(h) [H,H]; }
l := pub;
`, lattice.TwoPoint())
	cfg := cfgFor(p, r)
	cfg.Setup = func(m *mem.Memory) { m.Set("pub", 42) }
	m, err := Measure(cfg, hSecrets(3, 9))
	if err != nil {
		t.Fatal(err)
	}
	if m.DistinctObservations != 1 {
		t.Errorf("observations = %d", m.DistinctObservations)
	}
}

// Package leakage implements the quantitative leakage theory of §6–§7:
// the information-theoretic measure Q of leakage from a set of security
// levels to an adversary, the timing-variation sets V of mitigate
// commands, the empirical verification of Theorem 2 (Q ≤ log |V|), and
// the analytic leakage bound |L↑|·log(K+1)·(1+log T) of §7.
//
// The measure follows Definition 1: leakage is the log₂ of the number
// of distinguishable adversary observations — the possible (x, v, t)
// event sequences — over executions whose memories and machine
// environments vary only in the designated secret levels. Since the
// secret space is unbounded, the package measures over a caller-
// supplied finite family of secrets, which lower-bounds the true Q;
// Theorem 2's inequality must still hold for any family, which is what
// the checker exploits.
package leakage

import (
	"fmt"
	"math"

	"repro/internal/lang/ast"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/events"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Secret assigns values to the confidential variables of one trial.
type Secret func(*mem.Memory)

// Measurement is the outcome of measuring a program's leakage over a
// family of secrets.
type Measurement struct {
	// Trials is the number of secrets executed.
	Trials int
	// DistinctObservations is the number of distinguishable adversary
	// event traces (variables, values, and times).
	DistinctObservations int
	// DistinctMitVariations is |V|: the number of distinct duration
	// vectors of the relevant mitigate projection (Definition 2).
	DistinctMitVariations int
	// QBits is the measured leakage log₂(DistinctObservations).
	QBits float64
	// VBits is log₂(DistinctMitVariations) — Theorem 2's bound. When
	// the projection is empty and observations never vary, both are 0.
	VBits float64
	// MaxClock is the largest elapsed time across trials (T in §7).
	MaxClock uint64
	// RelevantMitigates is K: the number of executed mitigate records
	// in the relevant projection, maximized over trials.
	RelevantMitigates int
}

// Config describes one leakage measurement.
type Config struct {
	Prog *ast.Program
	Res  *types.Result
	// NewEnv creates the initial machine environment for each trial;
	// every trial starts from the same (empty) environment state, as
	// Definition 1 quantifies over executions from E-equivalent
	// configurations.
	NewEnv func() hw.Env
	// Opts configures the interpreter.
	Opts full.Options
	// Adversary is ℓA.
	Adversary lattice.Label
	// From is the set L of levels whose information is measured; when
	// empty it defaults to all levels.
	From []lattice.Label
	// Setup configures the public part of memory before each trial
	// (same for every secret).
	Setup func(*mem.Memory)
	// MaxSteps bounds each run; default 2_000_000.
	MaxSteps int
}

// Measure runs the program once per secret and counts distinguishable
// observations per Definition 1 and timing variations per Definition 2.
func Measure(cfg Config, secrets []Secret) (*Measurement, error) {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000
	}
	lat := cfg.Res.Lat
	from := cfg.From
	if len(from) == 0 {
		from = lat.Levels()
	}
	// L_ℓA: drop levels the adversary sees directly; close upward.
	lA := lattice.ExcludeObservable(lat, from, cfg.Adversary)
	closure := lattice.UpwardClosure(lat, lA)

	obs := make(map[string]bool)
	mitVars := make(map[string]bool)
	m := &Measurement{}
	for _, secret := range secrets {
		machine, err := full.New(cfg.Prog, cfg.Res, cfg.NewEnv(), cfg.Opts)
		if err != nil {
			return nil, err
		}
		if cfg.Setup != nil {
			cfg.Setup(machine.Memory())
		}
		secret(machine.Memory())
		if err := machine.Run(cfg.MaxSteps); err != nil {
			return nil, fmt.Errorf("leakage: %w", err)
		}
		m.Trials++
		if machine.Clock() > m.MaxClock {
			m.MaxClock = machine.Clock()
		}
		view := machine.Trace().ObservableAt(lat, cfg.Res.Vars, cfg.Adversary)
		obs[view.Key()] = true

		proj := RelevantProjection(machine.Mitigations(), cfg.Res, closure)
		mitVars[proj.DurationsKey()] = true
		if len(proj) > m.RelevantMitigates {
			m.RelevantMitigates = len(proj)
		}
	}
	m.DistinctObservations = len(obs)
	m.DistinctMitVariations = len(mitVars)
	m.QBits = math.Log2(float64(m.DistinctObservations))
	m.VBits = math.Log2(float64(m.DistinctMitVariations))
	return m, nil
}

// RelevantProjection returns the mitigate records in the projection of
// Definition 2: executed mitigates whose pc-label is outside the
// closure (low-context) — those are low-deterministic by Lemma 1 — and
// whose mitigation level is inside it (they can carry the secret).
func RelevantProjection(tr events.MitTrace, res *types.Result, closure []lattice.Label) events.MitTrace {
	return tr.Filter(func(r events.MitRecord) bool {
		if r.ID < 0 || r.ID >= len(res.Mitigates) {
			return false
		}
		info := res.Mitigates[r.ID]
		return !lattice.Contains(closure, info.PC) && lattice.Contains(closure, info.Level)
	})
}

// CheckTheorem2 reports an error if the measurement violates Theorem 2:
// measured leakage must not exceed log |V|. Measured over a finite
// secret family both sides are lower bounds of their true values, but
// the theorem's per-family form — every distinguishable observation
// must be explained by a distinct mitigate-timing variation — still
// holds and is what is checked.
func CheckTheorem2(m *Measurement) error {
	if m.DistinctObservations > max(m.DistinctMitVariations, 1) {
		return fmt.Errorf("leakage: Theorem 2 violated: %d distinguishable observations > %d timing variations",
			m.DistinctObservations, m.DistinctMitVariations)
	}
	return nil
}

// Bound computes the analytic leakage bound of §7 for an execution of
// elapsed time T with K relevant mitigate commands over the upward
// closure of size closureSize:
//
//	|L↑| · log₂(K+1) · (1 + log₂ T)
//
// in bits. When K is unknown it may be conservatively bounded by T,
// giving the O(log² T) form.
func Bound(closureSize int, k int, t uint64) float64 {
	if t == 0 {
		return 0
	}
	return float64(closureSize) * math.Log2(float64(k+1)) * (1 + math.Log2(float64(t)))
}

// BoundForMeasurement applies Bound to a measurement, using the
// measured K and T and the closure size derived from the config.
func BoundForMeasurement(m *Measurement, closureSize int) float64 {
	return Bound(closureSize, m.RelevantMitigates, m.MaxClock)
}

// CheckBound reports an error if the measured leakage exceeds the
// analytic §7 bound.
func CheckBound(m *Measurement, closureSize int) error {
	bound := BoundForMeasurement(m, closureSize)
	if m.QBits > bound {
		return fmt.Errorf("leakage: measured %.2f bits exceeds analytic bound %.2f bits", m.QBits, bound)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

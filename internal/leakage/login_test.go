package leakage

import (
	"testing"

	"repro/internal/apps/login"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
)

// The login case study through the leakage lens: an adversary probing
// one username learns whether it is valid (1 bit) from unmitigated
// timing, and nothing from mitigated timing. This is the quantitative
// counterpart of Figure 7.
func TestLoginLeakageMeasured(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 12, WorkFactor: 32, WorkTableSize: 64}, lat)
	if err != nil {
		t.Fatal(err)
	}
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }
	probe := login.Attempt{User: "user-003", Pass: "guess"}

	p1, p2, err := app.SamplePredictions(newEnv, login.MakeCredentials(12), []login.Attempt{
		{User: "user-011", Pass: "wrong"},
		{User: "ghost", Pass: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Secrets: credential tables where the probed username either is or
	// is not present (two tables of each kind, differing in other
	// entries, to check that only the probed bit leaks).
	tables := [][]login.Credential{
		login.MakeCredentials(6),                                // contains user-003
		login.MakeCredentials(10),                               // contains user-003
		{{User: "alice", Pass: "a"}, {User: "bob", Pass: "b"}},  // absent
		{{User: "carol", Pass: "c"}, {User: "dave", Pass: "d"}}, // absent
	}
	secrets := make([]Secret, len(tables))
	for i, creds := range tables {
		creds := creds
		secrets[i] = func(m *mem.Memory) {
			app.Setup(m, creds, probe, p1, p2)
		}
	}
	cfg := Config{
		Prog:      app.Prog,
		Res:       app.Res,
		NewEnv:    newEnv,
		Adversary: lat.Bot(),
	}

	// Unmitigated: validity is observable — but note position in the
	// table also varies, so up to one observation per table.
	unmit := cfg
	unmit.Opts.DisableMitigation = true
	mu, err := Measure(unmit, secrets)
	if err != nil {
		t.Fatal(err)
	}
	if mu.DistinctObservations < 2 {
		t.Errorf("unmitigated probing should distinguish validity: %d observations",
			mu.DistinctObservations)
	}

	// Mitigated: all four tables produce identical observations.
	mm, err := Measure(cfg, secrets)
	if err != nil {
		t.Fatal(err)
	}
	if mm.DistinctObservations != 1 {
		t.Errorf("mitigated probing should reveal nothing: %d observations",
			mm.DistinctObservations)
	}
	if err := CheckTheorem2(mm); err != nil {
		t.Error(err)
	}
	// Closure of {H} for an L adversary is {H}: size 1.
	if err := CheckBound(mm, 1); err != nil {
		t.Error(err)
	}
}

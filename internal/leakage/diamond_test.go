package leakage

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/props"
	"repro/internal/sem/mem"
)

// Diamond lattice: L ⊑ {A, B} ⊑ H with A, B incomparable. The
// multilevel measure must keep flows from incomparable levels separate:
// an adversary at A learns (boundedly) about B-timed secrets only via
// mitigated timing, and nothing about them through state.
func TestDiamondIncomparableLeakage(t *testing.T) {
	lat := lattice.Diamond()
	A, _ := lat.Lookup("A")
	B, _ := lat.Lookup("B")

	p, r := compile(t, `
var b : B;
var a : A;
var l : L;
mitigate (8, B) [L,L] {
    sleep(b % 300) [B,B];
}
l := 2;
a := a + 1;
`, lat)

	cfg := Config{
		Prog:      p,
		Res:       r,
		NewEnv:    func() hw.Env { return hw.NewFlat(lat, 2) },
		Adversary: A,
	}

	// Vary b over several mitigation buckets: bounded leakage from {B}
	// to the A-adversary, capped by Theorem 2.
	bSecrets := []Secret{}
	for _, v := range []int64{0, 40, 90, 170, 299} {
		v := v
		bSecrets = append(bSecrets, func(m *mem.Memory) { m.Set("b", v) })
	}
	cfg.From = []lattice.Label{B}
	mb, err := Measure(cfg, bSecrets)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckTheorem2(mb); err != nil {
		t.Error(err)
	}
	if mb.DistinctObservations < 2 {
		t.Error("expected some (bounded) flow from B through mitigated timing")
	}
	// The closure of {B} w.r.t. adversary A is {B, H}: size 2.
	if err := CheckBound(mb, 2); err != nil {
		t.Error(err)
	}

	// Vary a only (the adversary's own level): excluded from L_ℓA, so
	// no "leakage" is counted — the adversary sees a directly.
	cfg.From = []lattice.Label{A}
	aSecrets := []Secret{
		func(m *mem.Memory) { m.Set("a", 1) },
		func(m *mem.Memory) { m.Set("a", 2) },
	}
	ma, err := Measure(cfg, aSecrets)
	if err != nil {
		t.Fatal(err)
	}
	// Observations DO differ (the adversary reads a), but L_ℓA is empty
	// so the relevant mitigate projection is empty and Theorem 2 is
	// trivially inapplicable; the measure records the storage view.
	if ma.DistinctObservations != 2 {
		t.Errorf("adversary should see its own level directly: %d", ma.DistinctObservations)
	}
}

// TestDiamondContract runs the hardware contract over generated diamond
// programs on the 4-partition hardware.
func TestDiamondContract(t *testing.T) {
	lat := lattice.Diamond()
	for seed := int64(0); seed < 3; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 900 + seed, AllowMitigate: true,
		}, 60)
		if err != nil {
			t.Fatal(err)
		}
		c := &props.Checker{
			Prog:   prog,
			Res:    res,
			NewEnv: func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
			Rand:   rand.New(rand.NewSource(seed)),
		}
		if err := c.CheckDeterminism(3); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
		if err := c.CheckWriteLabel(3); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
		if err := c.CheckSingleStepNI(15); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
		if err := c.CheckNoninterference(4); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
		A, _ := lat.Lookup("A")
		if err := c.CheckLowDeterminism(3, A); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, src)
		}
	}
}

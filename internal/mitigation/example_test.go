package mitigation_test

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/mitigation"
)

// The fast-doubling schedule quantizes execution times to
// max(n,1)·2^misses, which is why at most log-many durations are ever
// observable (§7).
func ExampleFastDoubling() {
	s := mitigation.FastDoubling{}
	for m := 0; m < 4; m++ {
		fmt.Println(s.Predict(100, m))
	}
	// Output:
	// 100
	// 200
	// 400
	// 800
}

// Penalize implements Fig. 6's update loop: on a misprediction the miss
// counter advances until the schedule covers the elapsed time.
func ExampleState_Penalize() {
	lat := lattice.TwoPoint()
	st := mitigation.NewState(lat, mitigation.FastDoubling{}, mitigation.PerLevel)
	pred, missed := st.Penalize(100, lat.Top(), 0, 750)
	fmt.Println(pred, missed, st.Misses(lat.Top(), 0))
	// Output:
	// 800 true 3
}

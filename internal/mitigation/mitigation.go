// Package mitigation implements the predictive timing-mitigation
// runtime of §7 (Fig. 6): prediction schemes and penalty policies that
// bound how much information the duration of a mitigate command can
// carry.
//
// The idea: each mitigate command gets a prediction of its body's
// execution time. If the body finishes early, the command idles until
// the prediction elapses, so its duration reveals nothing. On a
// misprediction the miss counter is incremented until the prediction
// covers the elapsed time, and the command is padded to the new
// prediction; subsequent predictions are inflated, making future
// mispredictions geometrically rarer. Durations therefore range over
// only the prediction schedule's values — logarithmically many in
// elapsed time for the doubling scheme — which is what Theorem 2 turns
// into a leakage bound.
package mitigation

import (
	"fmt"

	"repro/internal/lattice"
)

// Scheme maps an initial estimate and a miss count to a prediction.
type Scheme interface {
	// Predict returns the predicted duration in cycles for the given
	// initial estimate after misses mispredictions. Implementations
	// must be monotone in misses and satisfy Predict(n, m) ≥ 1.
	Predict(init int64, misses int) uint64
	// Name identifies the scheme in reports.
	Name() string
}

// FastDoubling is the paper's scheme: predict(n, ℓ) = max(n,1)·2^Miss[ℓ].
// Leakage grows polylogarithmically in elapsed time.
type FastDoubling struct{}

// Predict implements Scheme.
func (FastDoubling) Predict(init int64, misses int) uint64 {
	base := uint64(1)
	if init > 1 {
		base = uint64(init)
	}
	if misses >= 64 {
		return ^uint64(0) // saturate
	}
	shifted := base << uint(misses)
	if shifted>>uint(misses) != base {
		return ^uint64(0) // overflow: saturate
	}
	return shifted
}

// Name implements Scheme.
func (FastDoubling) Name() string { return "fast-doubling" }

// Linear is an ablation scheme: predict(n, m) = max(n,1)·(m+1). It
// mispredicts more often than doubling (leakage grows like √T rather
// than polylog T) but wastes less padding per miss.
type Linear struct{}

// Predict implements Scheme.
func (Linear) Predict(init int64, misses int) uint64 {
	base := uint64(1)
	if init > 1 {
		base = uint64(init)
	}
	return base * uint64(misses+1)
}

// Name implements Scheme.
func (Linear) Name() string { return "linear" }

// SlowDoubling generalizes the doubling scheme: the prediction doubles
// only on every Period-th miss — predict(n, m) = max(n,1)·2^⌊m/Period⌋.
// A mitigated body that overruns therefore pays Period penalty rounds
// before the schedule grows, trading extra (bounded) duration values
// for less over-padding once it stabilizes; Period 1 is FastDoubling.
type SlowDoubling struct {
	// Period is the misses-per-doubling count; values < 1 behave as 1.
	Period int
}

// Predict implements Scheme.
func (s SlowDoubling) Predict(init int64, misses int) uint64 {
	period := s.Period
	if period < 1 {
		period = 1
	}
	return FastDoubling{}.Predict(init, misses/period)
}

// Name implements Scheme.
func (s SlowDoubling) Name() string {
	return fmt.Sprintf("slow-doubling-%d", s.Period)
}

// Policy selects which miss counter a mitigate command uses.
type Policy int

const (
	// PerLevel is the paper's local penalty policy: one miss counter
	// per mitigation level ℓ. A misprediction at level ℓ inflates only
	// predictions at ℓ.
	PerLevel Policy = iota
	// Global uses a single miss counter for the whole program,
	// matching the original system-level predictive mitigation.
	Global
	// PerSite gives each mitigate identifier its own counter — the
	// least conservative policy, with a correspondingly larger leakage
	// bound (one log(K+1) term per site).
	PerSite
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PerLevel:
		return "per-level"
	case Global:
		return "global"
	case PerSite:
		return "per-site"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// State is the runtime mitigation state: the Miss array of Fig. 6. It
// is deterministic and cloneable, so interpreters can snapshot it.
type State struct {
	scheme Scheme
	policy Policy
	// byLevel is indexed by lattice label ID (PerLevel).
	byLevel []int
	global  int
	// bySite is indexed by mitigate identifier (PerSite).
	bySite map[int]int
	// onMiss, when set, observes every miss-counter increment. It is
	// instrumentation only: observers must not mutate mitigation state,
	// and recording never affects predictions or timing.
	onMiss func(level lattice.Label, site int)
}

// SetOnMiss installs an observer called on every miss-counter
// increment (schedule inflation) with the penalized level and site.
// Pass nil to remove it. Clones inherit the observer; CopyInto leaves
// the destination's observer untouched.
func (s *State) SetOnMiss(fn func(level lattice.Label, site int)) { s.onMiss = fn }

// NewState creates mitigation state for the given lattice.
func NewState(lat lattice.Lattice, scheme Scheme, policy Policy) *State {
	if scheme == nil {
		scheme = FastDoubling{}
	}
	return &State{
		scheme:  scheme,
		policy:  policy,
		byLevel: make([]int, lat.Size()),
		bySite:  make(map[int]int),
	}
}

// Scheme returns the prediction scheme in use.
func (s *State) Scheme() Scheme { return s.scheme }

// Policy returns the penalty policy in use.
func (s *State) Policy() Policy { return s.policy }

// Misses returns the current miss count for a (level, site) pair.
func (s *State) Misses(level lattice.Label, site int) int {
	switch s.policy {
	case Global:
		return s.global
	case PerSite:
		return s.bySite[site]
	default:
		return s.byLevel[level.ID()]
	}
}

func (s *State) bump(level lattice.Label, site int) {
	switch s.policy {
	case Global:
		s.global++
	case PerSite:
		s.bySite[site]++
	default:
		s.byLevel[level.ID()]++
	}
	if s.onMiss != nil {
		s.onMiss(level, site)
	}
}

// Predict returns the current prediction for a mitigate command with
// the given initial estimate, mitigation level, and site identifier.
func (s *State) Predict(init int64, level lattice.Label, site int) uint64 {
	return s.scheme.Predict(init, s.Misses(level, site))
}

// Penalize implements the update command of Fig. 6: while the elapsed
// time is at least the prediction, increment the miss counter. It
// returns the final prediction (≥ elapsed is NOT guaranteed for a
// saturating scheme, but the final prediction is always > elapsed for
// non-saturating inputs) and whether any misprediction occurred.
func (s *State) Penalize(init int64, level lattice.Label, site int, elapsed uint64) (pred uint64, miss bool) {
	pred = s.Predict(init, level, site)
	// Plateau schemes (SlowDoubling) legitimately return the same
	// prediction for several consecutive misses; only a long stretch of
	// stagnation means the scheme has saturated, at which point bail out
	// to keep the semantics total.
	stagnant := 0
	for elapsed >= pred {
		miss = true
		s.bump(level, site)
		next := s.Predict(init, level, site)
		if next <= pred {
			stagnant++
			if stagnant > 256 || next == ^uint64(0) {
				break
			}
			continue
		}
		stagnant = 0
		pred = next
	}
	return pred, miss
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	n := &State{
		scheme:  s.scheme,
		policy:  s.policy,
		byLevel: append([]int(nil), s.byLevel...),
		global:  s.global,
		bySite:  make(map[int]int, len(s.bySite)),
		onMiss:  s.onMiss,
	}
	for k, v := range s.bySite {
		n.bySite[k] = v
	}
	return n
}

// Reset zeroes all miss counters in place, keeping the scheme, policy
// and observer. It leaves the state exactly as NewState returned it, so
// a service can reuse one allocation across requests.
func (s *State) Reset() {
	for i := range s.byLevel {
		s.byLevel[i] = 0
	}
	s.global = 0
	if len(s.bySite) > 0 { // clear on an empty map still costs a runtime call
		clear(s.bySite)
	}
}

// CopyInto copies this state's counters into dst, which must have been
// created over the same lattice. Scheme and policy are not copied (dst
// keeps its own); this supports splicing persistent counters into fresh
// machines (the server runtime).
func (s *State) CopyInto(dst *State) {
	copy(dst.byLevel, s.byLevel)
	dst.global = s.global
	if len(dst.bySite) > 0 {
		clear(dst.bySite)
	}
	for k, v := range s.bySite {
		dst.bySite[k] = v
	}
}

// Equal reports whether two states hold the same counters under the
// same scheme and policy.
func (s *State) Equal(o *State) bool {
	if s.policy != o.policy || s.scheme.Name() != o.scheme.Name() {
		return false
	}
	if s.global != o.global || len(s.byLevel) != len(o.byLevel) || len(s.bySite) != len(o.bySite) {
		return false
	}
	for i := range s.byLevel {
		if s.byLevel[i] != o.byLevel[i] {
			return false
		}
	}
	for k, v := range s.bySite {
		if o.bySite[k] != v {
			return false
		}
	}
	return true
}

// TotalMisses returns the sum of all miss counters — a rough measure of
// how much has been leaked so far.
func (s *State) TotalMisses() int {
	t := s.global
	for _, v := range s.byLevel {
		t += v
	}
	for _, v := range s.bySite {
		t += v
	}
	return t
}

package mitigation

import (
	"testing"
	"testing/quick"

	"repro/internal/lattice"
)

func TestFastDoublingSchedule(t *testing.T) {
	s := FastDoubling{}
	cases := []struct {
		init   int64
		misses int
		want   uint64
	}{
		{1, 0, 1}, {1, 1, 2}, {1, 3, 8},
		{10, 0, 10}, {10, 2, 40},
		{0, 0, 1}, {-5, 2, 4}, // max(n,1)
	}
	for _, c := range cases {
		if got := s.Predict(c.init, c.misses); got != c.want {
			t.Errorf("Predict(%d,%d) = %d, want %d", c.init, c.misses, got, c.want)
		}
	}
}

func TestFastDoublingSaturates(t *testing.T) {
	s := FastDoubling{}
	if got := s.Predict(1, 64); got != ^uint64(0) {
		t.Errorf("Predict(1,64) = %d, want saturation", got)
	}
	if got := s.Predict(1<<40, 30); got != ^uint64(0) {
		t.Errorf("huge shift should saturate, got %d", got)
	}
}

func TestLinearSchedule(t *testing.T) {
	s := Linear{}
	if s.Predict(10, 0) != 10 || s.Predict(10, 3) != 40 || s.Predict(0, 1) != 2 {
		t.Error("linear schedule wrong")
	}
}

func TestPenalizeDoubling(t *testing.T) {
	lat := lattice.TwoPoint()
	H := lat.Top()
	st := NewState(lat, FastDoubling{}, PerLevel)
	// elapsed 5 with init 1: predictions 1,2,4,8 → pred=8, 3 misses.
	pred, miss := st.Penalize(1, H, 0, 5)
	if pred != 8 || !miss {
		t.Errorf("pred=%d miss=%v, want 8,true", pred, miss)
	}
	if st.Misses(H, 0) != 3 {
		t.Errorf("misses = %d, want 3", st.Misses(H, 0))
	}
	// Next prediction starts at 8; elapsed 6 fits: no further misses.
	pred, miss = st.Penalize(1, H, 0, 6)
	if pred != 8 || miss {
		t.Errorf("pred=%d miss=%v, want 8,false", pred, miss)
	}
}

func TestPenalizeBoundaryIsMiss(t *testing.T) {
	// Fig. 6 uses ≥: elapsed exactly equal to the prediction counts as
	// a misprediction.
	lat := lattice.TwoPoint()
	H := lat.Top()
	st := NewState(lat, FastDoubling{}, PerLevel)
	pred, miss := st.Penalize(4, H, 0, 4)
	if pred != 8 || !miss {
		t.Errorf("pred=%d miss=%v, want 8,true", pred, miss)
	}
}

func TestPerLevelPolicySharesAcrossSites(t *testing.T) {
	lat := lattice.TwoPoint()
	H := lat.Top()
	st := NewState(lat, FastDoubling{}, PerLevel)
	st.Penalize(1, H, 0, 3) // site 0 misses twice (1→2→4)
	// Site 1 at the same level inherits the inflation (local penalty
	// policy is per-level, shared across sites).
	if got := st.Predict(1, H, 1); got != 4 {
		t.Errorf("site 1 prediction = %d, want 4", got)
	}
	// Different level unaffected.
	if got := st.Predict(1, lat.Bot(), 0); got != 1 {
		t.Errorf("L prediction = %d, want 1", got)
	}
}

func TestGlobalPolicy(t *testing.T) {
	lat := lattice.TwoPoint()
	st := NewState(lat, FastDoubling{}, Global)
	st.Penalize(1, lat.Top(), 0, 3)
	if got := st.Predict(1, lat.Bot(), 9); got != 4 {
		t.Errorf("global policy should share counters: %d", got)
	}
}

func TestPerSitePolicy(t *testing.T) {
	lat := lattice.TwoPoint()
	st := NewState(lat, FastDoubling{}, PerSite)
	st.Penalize(1, lat.Top(), 7, 3)
	if got := st.Predict(1, lat.Top(), 7); got != 4 {
		t.Errorf("site 7 prediction = %d, want 4", got)
	}
	if got := st.Predict(1, lat.Top(), 8); got != 1 {
		t.Errorf("site 8 should be unaffected: %d", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	lat := lattice.ThreePoint()
	M, _ := lat.Lookup("M")
	st := NewState(lat, FastDoubling{}, PerLevel)
	st.Penalize(1, M, 0, 10)
	c := st.Clone()
	if !st.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c.Penalize(1, M, 0, 1000)
	if st.Equal(c) {
		t.Error("post-mutation states should differ")
	}
	if st.TotalMisses() == c.TotalMisses() {
		t.Error("miss totals should differ")
	}
}

func TestEqualDifferentPolicy(t *testing.T) {
	lat := lattice.TwoPoint()
	a := NewState(lat, FastDoubling{}, PerLevel)
	b := NewState(lat, FastDoubling{}, Global)
	if a.Equal(b) {
		t.Error("different policies differ")
	}
	c := NewState(lat, Linear{}, PerLevel)
	if a.Equal(c) {
		t.Error("different schemes differ")
	}
}

func TestDefaultScheme(t *testing.T) {
	lat := lattice.TwoPoint()
	st := NewState(lat, nil, PerLevel)
	if st.Scheme().Name() != "fast-doubling" {
		t.Errorf("default scheme = %s", st.Scheme().Name())
	}
	if st.Policy() != PerLevel {
		t.Error("policy accessor")
	}
}

func TestPolicyString(t *testing.T) {
	if PerLevel.String() != "per-level" || Global.String() != "global" || PerSite.String() != "per-site" {
		t.Error("policy names")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should still print")
	}
}

// Property: after Penalize, the returned prediction always strictly
// exceeds elapsed (for non-saturating inputs), and the number of
// distinct predictions that a doubling schedule can produce within
// elapsed T is at most log2(T)+2 — the heart of the O(log T) leakage
// bound.
func TestPenalizeCoversElapsedQuick(t *testing.T) {
	lat := lattice.TwoPoint()
	H := lat.Top()
	f := func(init int16, elapsed uint16) bool {
		st := NewState(lat, FastDoubling{}, PerLevel)
		pred, _ := st.Penalize(int64(init), H, 0, uint64(elapsed))
		return pred > uint64(elapsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPredictMonotoneInMissesQuick(t *testing.T) {
	f := func(init int16, m uint8) bool {
		misses := int(m % 40)
		d := FastDoubling{}
		l := Linear{}
		return d.Predict(int64(init), misses+1) >= d.Predict(int64(init), misses) &&
			l.Predict(int64(init), misses+1) >= l.Predict(int64(init), misses) &&
			d.Predict(int64(init), misses) >= 1 && l.Predict(int64(init), misses) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSlowDoublingSchedule(t *testing.T) {
	s := SlowDoubling{Period: 2}
	// Doubles on every second miss: 0→n, 1→n, 2→2n, 3→2n, 4→4n ...
	cases := []struct {
		misses int
		want   uint64
	}{{0, 10}, {1, 10}, {2, 20}, {3, 20}, {4, 40}, {5, 40}}
	for _, c := range cases {
		if got := s.Predict(10, c.misses); got != c.want {
			t.Errorf("Predict(10,%d) = %d, want %d", c.misses, got, c.want)
		}
	}
	if s.Name() != "slow-doubling-2" {
		t.Error("name")
	}
	// Period 1 coincides with FastDoubling on whole doublings.
	s1 := SlowDoubling{Period: 1}
	fd := FastDoubling{}
	for m := 0; m < 10; m++ {
		if s1.Predict(3, m) != fd.Predict(3, m) {
			t.Errorf("period-1 mismatch at %d: %d vs %d", m, s1.Predict(3, m), fd.Predict(3, m))
		}
	}
	// Degenerate period.
	if (SlowDoubling{Period: 0}).Predict(1, 3) != 8 {
		t.Error("period<1 should behave as 1")
	}
	// Saturation.
	if (SlowDoubling{Period: 1}).Predict(1, 100) != ^uint64(0) {
		t.Error("saturation")
	}
}

func TestSlowDoublingMonotoneQuick(t *testing.T) {
	s := SlowDoubling{Period: 3}
	for m := 0; m < 60; m++ {
		if s.Predict(7, m+1) < s.Predict(7, m) {
			t.Fatalf("not monotone at %d", m)
		}
	}
	st := NewState(lattice.TwoPoint(), SlowDoubling{Period: 2}, PerLevel)
	pred, _ := st.Penalize(4, lattice.TwoPoint().Top(), 0, 100)
	if pred <= 100 {
		t.Errorf("penalize should cover elapsed: %d", pred)
	}
}

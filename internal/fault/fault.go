// Package fault is a deterministic, seedable fault-injection layer for
// the service runtime. Production code consults named fault points at
// the places where real deployments fail — a stalled shard, a broken
// engine, a saturated queue, a skewed clock, a failed compile-cache
// lookup — and the chaos test suite drives randomized schedules through
// them to prove the defensive machinery (deadlines, retries, circuit
// breakers, load shedding) actually holds the service invariants.
//
// Determinism: every decision is a pure function of (injector seed,
// fault point, per-point evaluation index), computed with a splitmix64
// hash. Concurrent shards may interleave evaluations in any order, but
// the multiset of decisions for a point is fixed by the seed, so a
// schedule's total fault load is reproducible run to run — the property
// the chaos suite's "same seed, same faults" check pins down.
//
// A nil *Injector is the production default: every Fire call on it
// returns false without touching memory, so un-injected hot paths pay
// one predictable branch.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Point names a fault-injection site in the service runtime.
type Point string

// The fault points threaded through internal/server and internal/exec.
const (
	// ShardStall delays a pool worker before it serves a queue entry,
	// simulating a slow or descheduled shard. Rule.Stall sets the delay.
	ShardStall Point = "shard-stall"
	// EngineError fails an engine Run with a transient injected error,
	// simulating a poisoned program or flaky backend.
	EngineError Point = "engine-error"
	// QueueSaturation makes a pool submission behave as if the shard
	// queue were full, exercising the load-shedding path (the caller
	// gets server.ErrOverloaded).
	QueueSaturation Point = "queue-saturation"
	// ClockSkew inflates the simulated clock an engine reports by
	// Rule.Skew cycles, simulating timer drift between shards.
	ClockSkew Point = "clock-skew"
	// CacheFactory fails compiled-program cache population at engine
	// construction, simulating a corrupted artifact store.
	CacheFactory Point = "cache-factory"
)

// Points lists every defined fault point in a stable order.
var Points = []Point{ShardStall, EngineError, QueueSaturation, ClockSkew, CacheFactory}

// ErrInjected is the root of every injected error; errors.Is(err,
// ErrInjected) distinguishes scheduled faults from organic failures.
var ErrInjected = errors.New("fault: injected")

// Error is an injected failure, carrying the point and the per-point
// firing index that produced it.
type Error struct {
	Point Point
	// N is the 1-based firing count at this point when the error fired.
	N uint64
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure #%d", e.Point, e.N)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *Error) Unwrap() error { return ErrInjected }

// Transient marks injected failures as retryable (see server.Retryable).
func (e *Error) Transient() bool { return true }

// IsTransient reports whether err (or anything it wraps) is marked as a
// transient, retry-worthy failure.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Rule configures one fault point. The zero rule never fires.
type Rule struct {
	// Rate is the per-evaluation firing probability in [0, 1].
	Rate float64
	// Count, when positive, caps the total number of firings; after
	// Count fires the point goes quiet (used to script recoveries).
	Count uint64
	// After skips the first After evaluations before Rate applies
	// (used to script late-onset failures).
	After uint64
	// Shards, when non-empty, restricts firing to these shard numbers.
	Shards []int
	// Stall is the wall-clock delay delivered by ShardStall firings.
	Stall time.Duration
	// Skew is the cycle inflation delivered by ClockSkew firings.
	Skew uint64
}

// Plan maps fault points to their rules; points absent from the plan
// never fire.
type Plan map[Point]Rule

// Fault describes one firing delivered to a fault point.
type Fault struct {
	Point Point
	// Err is the injected error for error-shaped points (EngineError,
	// QueueSaturation, CacheFactory); nil for delay/skew points.
	Err error
	// Stall and Skew carry the rule's delay and clock inflation.
	Stall time.Duration
	Skew  uint64
}

// pointState holds one rule's concurrency-safe counters.
type pointState struct {
	rule  Rule
	evals atomic.Uint64
	fired atomic.Uint64
}

// Injector evaluates fault points against a seeded plan. All methods
// are safe for concurrent use, and safe on a nil receiver (which never
// fires).
type Injector struct {
	seed   uint64
	points map[Point]*pointState
}

// New builds an injector for a plan. Rules are copied; mutating the
// plan afterwards does not affect the injector.
func New(seed int64, plan Plan) *Injector {
	in := &Injector{seed: uint64(seed), points: make(map[Point]*pointState, len(plan))}
	for p, r := range plan {
		in.points[p] = &pointState{rule: r}
	}
	return in
}

// Fire evaluates point p for the given shard. It reports whether the
// point fires, and describes the fault when it does. Decisions are
// deterministic in (seed, point, evaluation index); see the package
// comment.
func (in *Injector) Fire(p Point, shard int) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	st, ok := in.points[p]
	if !ok || st.rule.Rate <= 0 {
		return Fault{}, false
	}
	n := st.evals.Add(1)
	r := st.rule
	if n <= r.After {
		return Fault{}, false
	}
	if len(r.Shards) > 0 && !containsInt(r.Shards, shard) {
		return Fault{}, false
	}
	// The decision depends only on (seed, point, n): uniform in [0, 1).
	u := float64(Mix64(in.seed, hashPoint(p), n)>>11) / float64(1<<53)
	if u >= r.Rate {
		return Fault{}, false
	}
	if r.Count > 0 {
		// Reserve a firing slot; racing evaluations past the cap lose.
		for {
			f := st.fired.Load()
			if f >= r.Count {
				return Fault{}, false
			}
			if st.fired.CompareAndSwap(f, f+1) {
				return in.fault(p, r, f+1), true
			}
		}
	}
	return in.fault(p, r, st.fired.Add(1)), true
}

// fault materializes the firing description for point p.
func (in *Injector) fault(p Point, r Rule, n uint64) Fault {
	f := Fault{Point: p, Stall: r.Stall, Skew: r.Skew}
	switch p {
	case EngineError, QueueSaturation, CacheFactory:
		f.Err = &Error{Point: p, N: n}
	}
	return f
}

// Fired returns how many times point p has fired.
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	st, ok := in.points[p]
	if !ok {
		return 0
	}
	return st.fired.Load()
}

// Evals returns how many times point p has been evaluated.
func (in *Injector) Evals(p Point) uint64 {
	if in == nil {
		return 0
	}
	st, ok := in.points[p]
	if !ok {
		return 0
	}
	return st.evals.Load()
}

// TotalFired sums firings across every point.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	var total uint64
	for _, st := range in.points {
		total += st.fired.Load()
	}
	return total
}

// String renders the injector's per-point counters, points sorted.
func (in *Injector) String() string {
	if in == nil {
		return "fault: disabled"
	}
	names := make([]string, 0, len(in.points))
	for p := range in.points {
		names = append(names, string(p))
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("fault:")
	if len(names) == 0 {
		b.WriteString(" empty plan")
	}
	for _, n := range names {
		st := in.points[Point(n)]
		fmt.Fprintf(&b, " %s=%d/%d", n, st.fired.Load(), st.evals.Load())
	}
	return b.String()
}

// Mix64 hashes the given words with splitmix64 finalization — the
// deterministic randomness source for fault decisions and retry
// jitter. It is exported so the service layer derives jitter from the
// same seed discipline instead of global math/rand state.
func Mix64(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix64(h)
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPoint gives each point a stable numeric identity.
func hashPoint(p Point) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, p := range Points {
		if _, ok := in.Fire(p, 0); ok {
			t.Fatalf("nil injector fired %s", p)
		}
	}
	if in.Fired(EngineError) != 0 || in.Evals(EngineError) != 0 || in.TotalFired() != 0 {
		t.Error("nil injector reported non-zero counters")
	}
	if in.String() != "fault: disabled" {
		t.Errorf("nil injector String = %q", in.String())
	}
}

func TestZeroAndAbsentRulesNeverFire(t *testing.T) {
	in := New(1, Plan{EngineError: {}})
	for i := 0; i < 100; i++ {
		if _, ok := in.Fire(EngineError, 0); ok {
			t.Fatal("zero-rate rule fired")
		}
		if _, ok := in.Fire(ShardStall, 0); ok {
			t.Fatal("absent point fired")
		}
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(7, Plan{EngineError: {Rate: 1}})
	for i := 0; i < 50; i++ {
		f, ok := in.Fire(EngineError, i%3)
		if !ok {
			t.Fatalf("rate-1 rule did not fire on evaluation %d", i)
		}
		if f.Err == nil {
			t.Fatal("engine-error firing carried no error")
		}
		if !errors.Is(f.Err, ErrInjected) {
			t.Errorf("injected error does not unwrap to ErrInjected: %v", f.Err)
		}
		if !IsTransient(f.Err) {
			t.Errorf("injected error not transient: %v", f.Err)
		}
	}
	if in.Fired(EngineError) != 50 || in.Evals(EngineError) != 50 {
		t.Errorf("counters = %d/%d, want 50/50", in.Fired(EngineError), in.Evals(EngineError))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []bool {
		in := New(42, Plan{EngineError: {Rate: 0.35}})
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = in.Fire(EngineError, 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs", i)
		}
	}
	// A different seed must produce a different schedule (with 200
	// evaluations at rate 0.35 a collision is astronomically unlikely).
	in := New(43, Plan{EngineError: {Rate: 0.35}})
	same := true
	for i := range a {
		_, ok := in.Fire(EngineError, 0)
		if ok != a[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

func TestDeterministicUnderConcurrency(t *testing.T) {
	// The multiset of decisions is fixed by the seed regardless of how
	// goroutines interleave: total fires must match a serial replay.
	const evals = 400
	serial := New(5, Plan{EngineError: {Rate: 0.5}})
	for i := 0; i < evals; i++ {
		serial.Fire(EngineError, 0)
	}
	conc := New(5, Plan{EngineError: {Rate: 0.5}})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < evals/4; i++ {
				conc.Fire(EngineError, 0)
			}
		}()
	}
	wg.Wait()
	if serial.Fired(EngineError) != conc.Fired(EngineError) {
		t.Errorf("concurrent fires = %d, serial replay = %d",
			conc.Fired(EngineError), serial.Fired(EngineError))
	}
}

func TestRateIsRespected(t *testing.T) {
	in := New(11, Plan{EngineError: {Rate: 0.25}})
	const n = 4000
	fired := 0
	for i := 0; i < n; i++ {
		if _, ok := in.Fire(EngineError, 0); ok {
			fired++
		}
	}
	// 0.25·4000 = 1000 expected; allow generous slop for a fixed seed.
	if fired < 800 || fired > 1200 {
		t.Errorf("rate 0.25 fired %d/%d times", fired, n)
	}
}

func TestCountCapsFirings(t *testing.T) {
	in := New(3, Plan{EngineError: {Rate: 1, Count: 5}})
	fired := 0
	for i := 0; i < 100; i++ {
		if _, ok := in.Fire(EngineError, 0); ok {
			fired++
		}
	}
	if fired != 5 || in.Fired(EngineError) != 5 {
		t.Errorf("count-capped rule fired %d times, want 5", fired)
	}
}

func TestAfterDelaysOnset(t *testing.T) {
	in := New(3, Plan{EngineError: {Rate: 1, After: 10}})
	for i := 0; i < 10; i++ {
		if _, ok := in.Fire(EngineError, 0); ok {
			t.Fatalf("fired during the After window (evaluation %d)", i)
		}
	}
	if _, ok := in.Fire(EngineError, 0); !ok {
		t.Error("did not fire after the After window")
	}
}

func TestShardFilter(t *testing.T) {
	in := New(9, Plan{EngineError: {Rate: 1, Shards: []int{1}}})
	if _, ok := in.Fire(EngineError, 0); ok {
		t.Error("fired on excluded shard 0")
	}
	if _, ok := in.Fire(EngineError, 1); !ok {
		t.Error("did not fire on included shard 1")
	}
}

func TestFaultPayloads(t *testing.T) {
	in := New(1, Plan{
		ShardStall: {Rate: 1, Stall: 3 * time.Millisecond},
		ClockSkew:  {Rate: 1, Skew: 77},
	})
	f, ok := in.Fire(ShardStall, 0)
	if !ok || f.Stall != 3*time.Millisecond || f.Err != nil {
		t.Errorf("stall fault = %+v, ok=%v", f, ok)
	}
	f, ok = in.Fire(ClockSkew, 0)
	if !ok || f.Skew != 77 || f.Err != nil {
		t.Errorf("skew fault = %+v, ok=%v", f, ok)
	}
}

func TestErrorRendering(t *testing.T) {
	in := New(1, Plan{CacheFactory: {Rate: 1}})
	f, _ := in.Fire(CacheFactory, 0)
	if !strings.Contains(f.Err.Error(), "cache-factory") {
		t.Errorf("error %q does not name its point", f.Err)
	}
	var fe *Error
	if !errors.As(f.Err, &fe) || fe.Point != CacheFactory || fe.N != 1 {
		t.Errorf("error %v does not expose point/count", f.Err)
	}
	if s := in.String(); !strings.Contains(s, "cache-factory=1/1") {
		t.Errorf("String = %q, want cache-factory=1/1", s)
	}
	if in.TotalFired() != 1 {
		t.Errorf("TotalFired = %d, want 1", in.TotalFired())
	}
}

func TestIsTransientOnOrganicErrors(t *testing.T) {
	if IsTransient(errors.New("disk on fire")) {
		t.Error("organic error classified transient")
	}
	if IsTransient(fmt.Errorf("wrapped: %w", errors.New("x"))) {
		t.Error("wrapped organic error classified transient")
	}
	if !IsTransient(fmt.Errorf("request: %w", &Error{Point: EngineError, N: 1})) {
		t.Error("wrapped injected error not classified transient")
	}
}

func TestMix64Stability(t *testing.T) {
	// Jitter and fault decisions depend on Mix64 being a pure function.
	if Mix64(1, 2, 3) != Mix64(1, 2, 3) {
		t.Error("Mix64 not deterministic")
	}
	if Mix64(1, 2, 3) == Mix64(1, 2, 4) {
		t.Error("Mix64 collides on adjacent inputs")
	}
}

package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/certify"
)

func init() {
	MustRegister(Experiment{
		Name: "certify", Order: 120,
		Summary: "adversarial leakage certification of the §7 bounds",
		Run: func(o RunOptions) (*Report, error) {
			d, err := Certify(CertifyConfig{Seed: o.Seed, Quick: o.Quick})
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

// CertifyConfig sizes the certification experiment.
type CertifyConfig struct {
	// Seed drives every adversary; equal seeds replay bit-for-bit.
	Seed int64
	// Quick runs the smoke slice instead of the full matrix.
	Quick bool
}

// CertifyData is the E9 report: the sweep rows, the gate verdict, and
// the summary counters the harness renders.
type CertifyData struct {
	Seed  int64
	Quick bool
	Rows  []certify.Row
	// Certified counts certified rows; MitigatedRows/MitigatedCertified
	// restrict to mitigated configurations — the paper's claim is that
	// ALL of those certify on partitioned hardware.
	Certified          int
	MitigatedRows      int
	MitigatedCertified int
	// MaxUnmitigatedBits is the largest measured leakage across
	// unmitigated baselines — the positive control showing the attack
	// battery detects real channels.
	MaxUnmitigatedBits float64
	// GateErr is the certification gate's failure text ("" = passed):
	// a mitigated partitioned row whose measured upper confidence
	// bound exceeds its reported §7 bound, or a positive control that
	// failed to leak.
	GateErr string
	// Deterministic is true when a second sweep with the same seed
	// reproduced every row exactly.
	Deterministic bool
}

// Certify runs the adversarial certification sweep — black-box timing
// attacks against every configuration of the stack — and checks that
// measured leakage never exceeds the reported §7 bound where the
// paper claims one, while insecure baselines measurably leak.
func Certify(cfg CertifyConfig) (*CertifyData, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ctx := context.Background()
	opts := certify.SweepOptions{Seed: cfg.Seed, Quick: cfg.Quick}
	rows, err := certify.Sweep(ctx, opts)
	if err != nil {
		return nil, err
	}
	d := &CertifyData{Seed: cfg.Seed, Quick: cfg.Quick, Rows: rows}
	for _, r := range rows {
		if r.Result.Certified {
			d.Certified++
		}
		if r.Config.Mitigated {
			d.MitigatedRows++
			if r.Result.Certified {
				d.MitigatedCertified++
			}
		} else if r.Result.MeasuredBits > d.MaxUnmitigatedBits {
			d.MaxUnmitigatedBits = r.Result.MeasuredBits
		}
	}
	if err := certify.Check(rows); err != nil {
		d.GateErr = err.Error()
	}
	replay, err := certify.Sweep(ctx, opts)
	if err != nil {
		return nil, err
	}
	d.Deterministic = rowsEqual(rows, replay)
	return d, nil
}

// rowsEqual compares two sweeps through their canonical bench-line
// rendering — the same bytes BENCH_certify.json records.
func rowsEqual(a, b []certify.Row) bool {
	la, lb := certify.BenchLines(a), certify.BenchLines(b)
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}

// Render formats the experiment.
func (d *CertifyData) Render() string {
	var b strings.Builder
	scope := "full matrix"
	if d.Quick {
		scope = "quick slice"
	}
	b.WriteString("Adversarial leakage certification: measured attacks vs the §7 bound\n")
	fmt.Fprintf(&b, "sweep:          %s, %d rows, seed %d\n", scope, len(d.Rows), d.Seed)
	fmt.Fprintf(&b, "%-58s %9s %9s %9s  %s\n", "configuration", "measured", "upper", "reported", "verdict")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "%-58s %9.3f %9.3f %9.3f  %s\n",
			r.Label(), r.Result.MeasuredBits, r.Result.UpperBits, r.Result.ReportedBits, r.Result.Verdict())
	}
	fmt.Fprintf(&b, "mitigated rows: %d/%d certified (measured upper bound ≤ reported §7 bound)\n",
		d.MitigatedCertified, d.MitigatedRows)
	fmt.Fprintf(&b, "positive ctrl:  strongest unmitigated baseline leaked %.3f bits\n", d.MaxUnmitigatedBits)
	if d.GateErr == "" {
		b.WriteString("gate:           PASSED\n")
	} else {
		fmt.Fprintf(&b, "gate:           FAILED — %s\n", d.GateErr)
	}
	fmt.Fprintf(&b, "deterministic:  %v (fresh sweep, same seed)\n", d.Deterministic)
	return b.String()
}

// CSVHeader implements CSV for the certification experiment.
func (d *CertifyData) CSVHeader() []string {
	return []string{"binding", "workload", "engine", "hardware", "mitigated",
		"measured_bits", "upper_bits", "reported_bits", "secret_bits", "probes", "certified"}
}

// CSVRows implements CSV for the certification experiment.
func (d *CertifyData) CSVRows() [][]string {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		engine := r.Config.Engine
		if r.Config.Engine == "vm" && r.Config.OptSet {
			engine = fmt.Sprintf("vm-opt%d", r.Config.OptLevel)
		}
		rows = append(rows, []string{
			r.Binding,
			r.Workload,
			engine,
			r.Config.Hardware,
			strconv.FormatBool(r.Config.Mitigated),
			strconv.FormatFloat(r.Result.MeasuredBits, 'f', 4, 64),
			strconv.FormatFloat(r.Result.UpperBits, 'f', 4, 64),
			strconv.FormatFloat(r.Result.ReportedBits, 'f', 4, 64),
			strconv.FormatFloat(r.Result.SecretBits, 'f', 4, 64),
			strconv.Itoa(r.Result.Probes),
			strconv.FormatBool(r.Result.Certified),
		})
	}
	return rows
}

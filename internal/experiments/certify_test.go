package experiments

import (
	"strings"
	"testing"
)

// TestCertifyQuick asserts the E9 acceptance claims at quick scale:
// every mitigated row certifies, an unmitigated baseline measurably
// leaks (the positive control), the gate passes, and a fresh sweep
// under the same seed replays bit-for-bit.
func TestCertifyQuick(t *testing.T) {
	d, err := Certify(CertifyConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Seed != 1 {
		t.Errorf("default seed = %d, want 1", d.Seed)
	}
	if len(d.Rows) == 0 || d.MitigatedRows == 0 {
		t.Fatalf("quick sweep shape: %d rows, %d mitigated", len(d.Rows), d.MitigatedRows)
	}
	if d.MitigatedCertified != d.MitigatedRows {
		t.Errorf("%d of %d mitigated rows certified", d.MitigatedCertified, d.MitigatedRows)
	}
	if d.MaxUnmitigatedBits < 1 {
		t.Errorf("positive control leaked only %.3f bits", d.MaxUnmitigatedBits)
	}
	if d.GateErr != "" {
		t.Errorf("gate failed: %s", d.GateErr)
	}
	if !d.Deterministic {
		t.Error("a fresh sweep under the same seed must replay exactly")
	}

	text := d.Render()
	for _, want := range []string{
		"Adversarial leakage certification",
		"quick slice",
		"CERTIFIED", "LEAKS",
		"gate:           PASSED",
		"deterministic:  true",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}

	if got, want := len(d.CSVHeader()), len(d.CSVRows()[0]); got != want {
		t.Errorf("CSV header has %d columns, rows have %d", got, want)
	}
	if got := len(d.CSVRows()); got != len(d.Rows) {
		t.Errorf("CSV rows = %d, want %d", got, len(d.Rows))
	}
}

// TestCertifyRegistered: the harness can dispatch E9 by name.
func TestCertifyRegistered(t *testing.T) {
	e, ok := Lookup("certify")
	if !ok {
		t.Fatal("certify not registered")
	}
	rep, err := e.Run(RunOptions{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "seed 2") {
		t.Errorf("run options must reach the sweep:\n%s", rep.Text)
	}
	if rep.Data == nil {
		t.Error("certify must publish CSV data")
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/transport/client"
	"repro/internal/transport/wire"
	"repro/internal/types"
)

// networkSrc is the wire workload: a mitigated sleep on the secret,
// then a public reply. It is scalars-only because the wire schema
// carries scalar inputs (the login app needs array setup, which stays
// in-process).
const networkSrc = `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 64) [H,H];
}
reply := 1;
`

// NetworkData holds the transport-layer experiment: the mitigated
// workload over loopback HTTP, with wire results checked for identity
// against an in-process pool and host-time latency measured under
// concurrent load.
func init() {
	MustRegister(Experiment{
		Name: "network", Order: 90,
		Summary: "HTTP transport fidelity and loopback latency",
		Run: func(o RunOptions) (*Report, error) {
			cfg := NetworkConfig{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			cfg.Engine = o.Engine
			d, err := Network(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

type NetworkData struct {
	Requests    int
	Workers     int
	Concurrency int
	// Engine names the execution engine the pool ran ("tree"/"vm").
	Engine string
	// Identical is true when the HTTP batch results matched the
	// in-process pool bit for bit (simulated time and mispredictions per
	// request) — the transport adds no nondeterminism.
	Identical bool
	// Wall is the host wall-clock time of the concurrent-load phase;
	// ReqPerSec is Requests/Wall.
	Wall      time.Duration
	ReqPerSec float64
	// P50/P99/Max are host-time request latencies over loopback.
	P50, P99, Max time.Duration
	// StdReqPerSec, FastReqPerSec, and StreamReqPerSec compare the same
	// load through three transports, each against a fresh service:
	// per-request /v1/run with the stdlib codec, per-request /v1/run
	// with the pooled fastjson codec, and the pipelined /v1/stream
	// endpoint (fast codec). StreamSpeedup is StreamReqPerSec over
	// StdReqPerSec — the wire fast path's gain over the baseline.
	StdReqPerSec    float64
	FastReqPerSec   float64
	StreamReqPerSec float64
	StreamSpeedup   float64
	// Export is the service's own metrics as scraped from /v1/metrics
	// after the load phase (JSON form of the Prometheus exposition).
	Export obs.Export
}

// NetworkConfig sizes the experiment.
type NetworkConfig struct {
	Requests    int
	Workers     int
	Concurrency int
	// Engine names the execution engine in the exec registry; default
	// "tree".
	Engine string
}

// Defaults fills zero fields.
func (c NetworkConfig) Defaults() NetworkConfig {
	if c.Requests == 0 {
		c.Requests = 256
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Engine == "" {
		c.Engine = "tree"
	}
	return c
}

// Quick returns the reduced-scale network configuration.
func (c NetworkConfig) Quick() NetworkConfig {
	c.Requests = 64
	c.Workers = 2
	c.Concurrency = 4
	return c
}

// networkService starts the HTTP service over networkSrc on loopback
// and returns its base URL plus a shutdown function.
func networkService(cfg NetworkConfig) (string, func() error, error) {
	p, err := parser.Parse(networkSrc)
	if err != nil {
		return "", nil, err
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		return "", nil, err
	}
	pool, err := server.NewPool(p, r, server.PoolOptions{
		Workers: cfg.Workers,
		Options: server.Options{
			Env:    hw.NewPartitioned(r.Lat, hw.Table1Config()),
			Engine: cfg.Engine,
		},
	})
	if err != nil {
		return "", nil, err
	}
	h, err := transport.New(transport.Options{Pool: pool, Prog: p})
	if err != nil {
		pool.Close()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := h.Shutdown(ctx); err != nil {
			return err
		}
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// Network runs the mitigated workload through the HTTP/JSON transport
// over loopback: first a batch identity check against an in-process
// pool, then a concurrent request storm measuring req/s and host-time
// latency percentiles, then a metrics scrape.
func Network(cfg NetworkConfig) (*NetworkData, error) {
	cfg = cfg.Defaults()
	base, stop, err := networkService(cfg)
	if err != nil {
		return nil, err
	}
	defer stop()
	c := client.New(base, client.Options{})
	ctx := context.Background()

	// Phase 1: identity. The same request sequence through the HTTP
	// batch endpoint and through an identically configured in-process
	// pool must agree on every simulated result.
	inputs := make([]int64, cfg.Requests)
	for i := range inputs {
		inputs[i] = int64(i*37+11) % 64
	}
	reqs := make([]wire.RunRequest, cfg.Requests)
	for i, h := range inputs {
		reqs[i] = wire.RunRequest{Inputs: map[string]int64{"h": h}}
	}
	batch, err := c.RunBatch(ctx, reqs)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	ref, err := networkReference(cfg, inputs)
	if err != nil {
		return nil, err
	}
	data := &NetworkData{
		Requests:    cfg.Requests,
		Workers:     cfg.Workers,
		Concurrency: cfg.Concurrency,
		Engine:      cfg.Engine,
		Identical:   true,
	}
	for i, res := range batch.Results {
		if err := client.Err(res); err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		if res.Response.Time != ref[i].Time ||
			res.Response.Mispredictions != ref[i].Mispredictions {
			data.Identical = false
		}
	}

	// Phase 2: concurrent load. Individual /v1/run requests fanned
	// across Concurrency goroutines; latencies are host time including
	// the loopback round-trip.
	lats := make([]time.Duration, cfg.Requests)
	start := time.Now()
	err = forEachAttemptBounded(cfg.Requests, cfg.Concurrency, func(i int) error {
		t0 := time.Now()
		_, err := c.Run(ctx, reqs[i])
		lats[i] = time.Since(t0)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	data.Wall = time.Since(start)
	if data.Wall > 0 {
		data.ReqPerSec = float64(cfg.Requests) / data.Wall.Seconds()
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	data.P50 = lats[len(lats)/2]
	data.P99 = lats[len(lats)*99/100]
	data.Max = lats[len(lats)-1]

	// Phase 3: the service's own accounting.
	export, err := c.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	data.Export = *export

	// Phase 4: transport comparison. The same load three ways, each
	// against a fresh service so no mode inherits another's warm state:
	// per-request with the stdlib codec (the baseline), per-request
	// with the fast codec, and pipelined over one /v1/stream.
	if data.StdReqPerSec, err = networkLoad(cfg, wire.Std{}, false, reqs); err != nil {
		return nil, fmt.Errorf("std load: %w", err)
	}
	if data.FastReqPerSec, err = networkLoad(cfg, nil, false, reqs); err != nil {
		return nil, fmt.Errorf("fast load: %w", err)
	}
	if data.StreamReqPerSec, err = networkLoad(cfg, nil, true, reqs); err != nil {
		return nil, fmt.Errorf("stream load: %w", err)
	}
	if data.StdReqPerSec > 0 {
		data.StreamSpeedup = data.StreamReqPerSec / data.StdReqPerSec
	}
	return data, nil
}

// networkLoad measures one transport mode against a fresh service:
// per-request /v1/run fanned across cfg.Concurrency goroutines, or —
// with stream set — every request pipelined down one /v1/stream
// connection. A nil codec means the client default (fastjson).
func networkLoad(cfg NetworkConfig, codec wire.Codec, stream bool, reqs []wire.RunRequest) (float64, error) {
	base, stop, err := networkService(cfg)
	if err != nil {
		return 0, err
	}
	defer stop()
	c := client.New(base, client.Options{Codec: codec, Concurrency: cfg.Concurrency})
	ctx := context.Background()

	start := time.Now()
	if stream {
		s, err := c.Stream(ctx)
		if err != nil {
			return 0, err
		}
		defer s.Close()
		errc := make(chan error, 1)
		go func() {
			for _, req := range reqs {
				if err := s.Send(req); err != nil {
					errc <- err
					return
				}
			}
			errc <- s.CloseSend()
		}()
		got := 0
		for {
			res, err := s.Recv()
			if err == io.EOF {
				break
			}
			if err != nil {
				return 0, err
			}
			if err := client.Err(*res); err != nil {
				return 0, err
			}
			got++
		}
		if err := <-errc; err != nil {
			return 0, err
		}
		if got != len(reqs) {
			return 0, fmt.Errorf("stream answered %d of %d requests", got, len(reqs))
		}
	} else {
		err := forEachAttemptBounded(len(reqs), cfg.Concurrency, func(i int) error {
			_, err := c.Run(ctx, reqs[i])
			return err
		})
		if err != nil {
			return 0, err
		}
	}
	wall := time.Since(start)
	if wall <= 0 {
		return 0, nil
	}
	return float64(len(reqs)) / wall.Seconds(), nil
}

// networkReference runs the same inputs through an in-process pool
// configured identically to the service's.
func networkReference(cfg NetworkConfig, inputs []int64) ([]*server.Response, error) {
	p, err := parser.Parse(networkSrc)
	if err != nil {
		return nil, err
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		return nil, err
	}
	pool, err := server.NewPool(p, r, server.PoolOptions{
		Workers: cfg.Workers,
		Options: server.Options{
			Env:    hw.NewPartitioned(r.Lat, hw.Table1Config()),
			Engine: cfg.Engine,
		},
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	reqs := make([]server.Request, len(inputs))
	for i, h := range inputs {
		h := h
		reqs[i] = func(m *mem.Memory) { m.Set("h", h) }
	}
	return pool.HandleAll(context.Background(), reqs)
}

// forEachAttemptBounded runs measure(0..n-1) across at most c
// goroutines, returning the first error.
func forEachAttemptBounded(n, c int, measure func(int) error) error {
	sem := make(chan struct{}, c)
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			errc <- measure(i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Render formats the experiment.
func (d *NetworkData) Render() string {
	var b strings.Builder
	b.WriteString("Network transport: mitigation service over loopback HTTP\n")
	fmt.Fprintf(&b, "requests:            %d across %d shards (%s engine), %d client goroutines\n",
		d.Requests, d.Workers, d.Engine, d.Concurrency)
	fmt.Fprintf(&b, "wire identity:       %v (HTTP batch == in-process pool)\n", d.Identical)
	fmt.Fprintf(&b, "load wall-clock:     %v (%.0f req/s over loopback)\n", d.Wall, d.ReqPerSec)
	fmt.Fprintf(&b, "latency (host time): p50=%v p99=%v max=%v\n", d.P50, d.P99, d.Max)
	fmt.Fprintf(&b, "transport compare:   std=%.0f req/s  fast=%.0f req/s  stream=%.0f req/s  (stream/std %.1fx)\n",
		d.StdReqPerSec, d.FastReqPerSec, d.StreamReqPerSec, d.StreamSpeedup)
	fmt.Fprintf(&b, "service accounting:  %d requests, %d mitigations, %d padding cycles\n",
		d.Export.Requests, d.Export.Mitigations, d.Export.PaddingCycles)
	return b.String()
}

// CSVHeader implements CSV for the network experiment.
func (d *NetworkData) CSVHeader() []string {
	return []string{"requests", "workers", "concurrency", "engine", "identical",
		"wall_ns", "req_per_sec", "p50_ns", "p99_ns", "max_ns",
		"std_req_per_sec", "fast_req_per_sec", "stream_req_per_sec", "stream_speedup",
		"served", "mitigations", "padding_cycles"}
}

// CSVRows implements CSV for the network experiment.
func (d *NetworkData) CSVRows() [][]string {
	return [][]string{{
		strconv.Itoa(d.Requests),
		strconv.Itoa(d.Workers),
		strconv.Itoa(d.Concurrency),
		d.Engine,
		strconv.FormatBool(d.Identical),
		strconv.FormatInt(d.Wall.Nanoseconds(), 10),
		strconv.FormatFloat(d.ReqPerSec, 'f', 1, 64),
		strconv.FormatInt(d.P50.Nanoseconds(), 10),
		strconv.FormatInt(d.P99.Nanoseconds(), 10),
		strconv.FormatInt(d.Max.Nanoseconds(), 10),
		strconv.FormatFloat(d.StdReqPerSec, 'f', 1, 64),
		strconv.FormatFloat(d.FastReqPerSec, 'f', 1, 64),
		strconv.FormatFloat(d.StreamReqPerSec, 'f', 1, 64),
		strconv.FormatFloat(d.StreamSpeedup, 'f', 2, 64),
		strconv.FormatUint(d.Export.Requests, 10),
		strconv.FormatUint(d.Export.Mitigations, 10),
		strconv.FormatUint(d.Export.PaddingCycles, 10),
	}}
}

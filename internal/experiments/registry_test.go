package experiments

import (
	"sort"
	"testing"
)

// TestRegistryHasAllBuiltins pins the registered set: the harness's
// `-experiment list` is derived from it, so a missing registration
// silently drops an experiment from `all`.
func TestRegistryHasAllBuiltins(t *testing.T) {
	want := []string{
		"table1", "figure7", "table2", "figure8", "figure9",
		"leakage", "service", "faults", "network", "sessions", "vmopt",
		"certify",
	}
	got := Names()
	sorted := append([]string(nil), got...)
	sort.Strings(sorted)
	wantSorted := append([]string(nil), want...)
	sort.Strings(wantSorted)
	if len(sorted) != len(wantSorted) {
		t.Fatalf("registered = %v, want %v", got, want)
	}
	for i := range sorted {
		if sorted[i] != wantSorted[i] {
			t.Fatalf("registered = %v, want %v", got, want)
		}
	}
	// Presentation order is the paper's order, not registration order.
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], name)
		}
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	if err := Register(Experiment{Name: "", Run: func(RunOptions) (*Report, error) { return nil, nil }}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := Register(Experiment{Name: "x"}); err == nil {
		t.Error("nil runner must be rejected")
	}
	if err := Register(Experiment{Name: "table1", Run: func(RunOptions) (*Report, error) { return nil, nil }}); err == nil {
		t.Error("duplicate name must be rejected")
	}
}

func TestLookupFindsRegistered(t *testing.T) {
	e, ok := Lookup("figure7")
	if !ok || e.Name != "figure7" || e.Run == nil {
		t.Fatalf("Lookup(figure7) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Error("unknown name must not resolve")
	}
}

// TestRegisteredTextOnlyContract: table1 is the one text-only report;
// every other experiment must expose CSV data for -format json/csv.
func TestRegisteredTextOnlyContract(t *testing.T) {
	e, ok := Lookup("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	rep, err := e.Run(RunOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Data != nil {
		t.Error("table1 must be text-only")
	}
	if rep.Text == "" {
		t.Error("table1 must render text")
	}
}

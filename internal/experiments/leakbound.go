package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/rsa"
	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
)

func init() {
	MustRegister(Experiment{
		Name: "leakage", Order: 60,
		Summary: "measured leakage vs the §7 analytic bound (E6)",
		Run: func(o RunOptions) (*Report, error) {
			cfg := LeakageConfig{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			d, err := LeakageBounds(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

// LeakageData holds the E6 experiment: measured leakage of the
// mitigated and unmitigated RSA decryption versus the §7 analytic
// bound, over a family of secret keys.
type LeakageData struct {
	Keys                int
	UnmitigatedQBits    float64
	MitigatedQBits      float64
	MitigatedVBits      float64
	BoundBits           float64
	MaxClock            uint64
	RelevantMitigations int
}

// LeakageConfig sizes the experiment.
type LeakageConfig struct {
	App    rsa.Config
	Blocks int
	Keys   []int64
}

// Defaults fills zero fields with the paper-scale values.
func (c LeakageConfig) Defaults() LeakageConfig {
	if c.App.MaxBlocks == 0 {
		c.App = rsa.DefaultConfig()
	}
	if c.Blocks == 0 {
		c.Blocks = 3
	}
	if len(c.Keys) == 0 {
		// A spread of 48-bit keys with varying density.
		base := int64(0x800000000001)
		for i := 0; i < 16; i++ {
			c.Keys = append(c.Keys, base|int64(i)<<24|int64(i*i)<<8)
		}
	}
	return c
}

// LeakageBounds measures the RSA case study's leakage to a public
// adversary with and without mitigation and compares it against the
// analytic bound (Theorem 2 + §7).
func LeakageBounds(cfg LeakageConfig) (*LeakageData, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	app, err := rsa.Build(cfg.App, rsa.LanguageLevel, lat)
	if err != nil {
		return nil, err
	}
	newEnv := func() hw.Env { return hw.MustEnv("partitioned", lat, hw.Table1Config()) }
	pred, err := app.SamplePrediction(newEnv, cfg.Keys[:2], [][]int64{rsa.Message(cfg.Blocks, 1)})
	if err != nil {
		return nil, err
	}
	msg := rsa.Message(cfg.Blocks, 99)
	secrets := make([]leakage.Secret, len(cfg.Keys))
	for i, k := range cfg.Keys {
		k := k
		secrets[i] = func(m *mem.Memory) { m.Set("key", k) }
	}
	setup := func(m *mem.Memory) {
		app.Setup(m, 0, msg, pred) // key overwritten by the secret
	}
	base := leakage.Config{
		Prog:      app.Prog,
		Res:       app.Res,
		NewEnv:    newEnv,
		Adversary: lat.Bot(),
		Setup:     setup,
		MaxSteps:  50_000_000,
	}

	unmit := base
	unmit.Opts.DisableMitigation = true
	mu, err := leakage.Measure(unmit, secrets)
	if err != nil {
		return nil, err
	}
	mm, err := leakage.Measure(base, secrets)
	if err != nil {
		return nil, err
	}
	if err := leakage.CheckTheorem2(mm); err != nil {
		return nil, err
	}
	return &LeakageData{
		Keys:                len(cfg.Keys),
		UnmitigatedQBits:    mu.QBits,
		MitigatedQBits:      mm.QBits,
		MitigatedVBits:      mm.VBits,
		BoundBits:           leakage.BoundForMeasurement(mm, 1),
		MaxClock:            mm.MaxClock,
		RelevantMitigations: mm.RelevantMitigates,
	}, nil
}

// Render formats the experiment.
func (d *LeakageData) Render() string {
	var b strings.Builder
	b.WriteString("E6: Leakage bounds (RSA decryption, adversary at L)\n")
	fmt.Fprintf(&b, "secret keys tried:            %d (max %.2f bits of secret distinguishable)\n",
		d.Keys, log2(d.Keys))
	fmt.Fprintf(&b, "unmitigated measured leakage: %.2f bits\n", d.UnmitigatedQBits)
	fmt.Fprintf(&b, "mitigated measured leakage:   %.2f bits\n", d.MitigatedQBits)
	fmt.Fprintf(&b, "mitigate timing variations:   %.2f bits (Theorem 2 bound)\n", d.MitigatedVBits)
	fmt.Fprintf(&b, "analytic §7 bound:            %.2f bits (K=%d, T=%d)\n",
		d.BoundBits, d.RelevantMitigations, d.MaxClock)
	return b.String()
}

func log2(n int) float64 {
	b := 0.0
	for v := 1; v < n; v *= 2 {
		b++
	}
	return b
}

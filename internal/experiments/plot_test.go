package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
)

func TestAsciiPlotBasics(t *testing.T) {
	out := asciiPlot("t", []plotSeries{
		{Name: "rising", Marker: '*', Points: []uint64{0, 50, 100}},
	}, 30, 6)
	lines := strings.Split(out, "\n")
	if lines[0] != "t" {
		t.Errorf("title line = %q", lines[0])
	}
	// The max value labels the top row; zero the bottom.
	if !strings.Contains(lines[1], "100") {
		t.Errorf("y-axis max missing: %q", lines[1])
	}
	if !strings.Contains(out, "* = rising") {
		t.Error("legend missing")
	}
	// Rising series: the last column's marker is on the top row, the
	// first column's on the bottom data row.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("max point should be on top row: %q", lines[1])
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	if out := asciiPlot("e", nil, 30, 6); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	// Single point, tiny dimensions get clamped.
	out := asciiPlot("s", []plotSeries{{Name: "p", Marker: 'x', Points: []uint64{5}}}, 1, 1)
	if !strings.Contains(out, "x = p") {
		t.Errorf("single point plot: %q", out)
	}
	// All-zero series must not divide by zero.
	out = asciiPlot("z", []plotSeries{{Name: "z", Marker: 'z', Points: []uint64{0, 0}}}, 20, 5)
	if !strings.Contains(out, "z = z") {
		t.Error("zero series plot")
	}
}

func TestFigurePlots(t *testing.T) {
	f7, err := Figure7(Figure7Config{
		App:         login.Config{TableSize: 8, WorkFactor: 24},
		Attempts:    6,
		ValidCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := f7.Plot()
	if !strings.Contains(p, "Figure 7 (upper)") || !strings.Contains(p, "Figure 7 (lower)") {
		t.Errorf("figure 7 plot:\n%s", p)
	}

	f8, err := Figure8(Figure8Config{
		App: rsa.Config{MaxBlocks: 2, Modulus: 1000003}, Messages: 4, Blocks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f8.Plot(), "key1") {
		t.Error("figure 8 plot legend")
	}

	f9, err := Figure9(Figure9Config{
		App: rsa.Config{MaxBlocks: 3, Modulus: 1000003}, MaxBlocks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9.Plot(), "system-level mitigation") {
		t.Error("figure 9 plot legend")
	}
}

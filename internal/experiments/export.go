package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export formats for experiment data; Render gives human-readable text,
// these give machine-readable forms for external plotting.

// WriteJSON marshals any experiment data structure as indented JSON.
func WriteJSON(w io.Writer, data any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(data)
}

// CSV emits one experiment as a flat table with a header row.
type CSV interface {
	// CSVHeader returns the column names.
	CSVHeader() []string
	// CSVRows returns the data rows.
	CSVRows() [][]string
}

// WriteCSV renders any CSV-capable experiment.
func WriteCSV(w io.Writer, data CSV) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(data.CSVHeader()); err != nil {
		return err
	}
	if err := cw.WriteAll(data.CSVRows()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }

// CSVHeader implements CSV for Figure 7.
func (d *Figure7Data) CSVHeader() []string {
	h := []string{"attempt"}
	for _, s := range d.Unmitigated {
		h = append(h, fmt.Sprintf("unmitigated_valid%d", s.Valid))
	}
	for _, s := range d.Mitigated {
		h = append(h, fmt.Sprintf("mitigated_valid%d", s.Valid))
	}
	return h
}

// CSVRows implements CSV for Figure 7.
func (d *Figure7Data) CSVRows() [][]string {
	rows := make([][]string, d.Attempts)
	for a := 0; a < d.Attempts; a++ {
		row := []string{strconv.Itoa(a)}
		for _, s := range d.Unmitigated {
			row = append(row, u(s.Times[a]))
		}
		for _, s := range d.Mitigated {
			row = append(row, u(s.Times[a]))
		}
		rows[a] = row
	}
	return rows
}

// CSVHeader implements CSV for Table 2.
func (d *Table2Data) CSVHeader() []string {
	return []string{"option", "avg_valid_cycles", "avg_invalid_cycles", "overhead_valid"}
}

// CSVRows implements CSV for Table 2.
func (d *Table2Data) CSVRows() [][]string {
	var rows [][]string
	for _, opt := range []HWOption{Nopar, Moff, Mon} {
		rows = append(rows, []string{
			opt.String(),
			u(d.AvgValid[opt]),
			u(d.AvgInvalid[opt]),
			strconv.FormatFloat(d.OverheadValid(opt), 'f', 4, 64),
		})
	}
	return rows
}

// CSVHeader implements CSV for Figure 8.
func (d *Figure8Data) CSVHeader() []string {
	return []string{"message",
		"unmitigated_key1", "unmitigated_key2",
		"mitigated_key1", "mitigated_key2"}
}

// CSVRows implements CSV for Figure 8.
func (d *Figure8Data) CSVRows() [][]string {
	rows := make([][]string, d.Messages)
	for i := 0; i < d.Messages; i++ {
		rows[i] = []string{
			strconv.Itoa(i), u(d.Unmit1[i]), u(d.Unmit2[i]), u(d.Mit1[i]), u(d.Mit2[i]),
		}
	}
	return rows
}

// CSVHeader implements CSV for Figure 9.
func (d *Figure9Data) CSVHeader() []string {
	return []string{"blocks", "unmitigated", "language_level", "system_level"}
}

// CSVRows implements CSV for Figure 9.
func (d *Figure9Data) CSVRows() [][]string {
	rows := make([][]string, len(d.Blocks))
	for i, n := range d.Blocks {
		rows[i] = []string{
			strconv.Itoa(n), u(d.Unmitigated[i]), u(d.LanguageLevel[i]), u(d.SystemLevel[i]),
		}
	}
	return rows
}

// CSVHeader implements CSV for the leakage experiment.
func (d *LeakageData) CSVHeader() []string {
	return []string{"keys", "unmitigated_bits", "mitigated_bits", "variation_bits", "bound_bits", "max_clock", "relevant_mitigations"}
}

// CSVRows implements CSV for the leakage experiment.
func (d *LeakageData) CSVRows() [][]string {
	return [][]string{{
		strconv.Itoa(d.Keys),
		strconv.FormatFloat(d.UnmitigatedQBits, 'f', 4, 64),
		strconv.FormatFloat(d.MitigatedQBits, 'f', 4, 64),
		strconv.FormatFloat(d.MitigatedVBits, 'f', 4, 64),
		strconv.FormatFloat(d.BoundBits, 'f', 4, 64),
		u(d.MaxClock),
		strconv.Itoa(d.RelevantMitigations),
	}}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/apps/login"
	"repro/internal/fault"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/sem/mem"
	"repro/internal/server"
)

func init() {
	MustRegister(Experiment{
		Name: "faults", Order: 80,
		Summary: "fault schedule ± defensive machinery (retries, breaker)",
		Run: func(o RunOptions) (*Report, error) {
			cfg := FaultsConfig{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			cfg.Seed = o.Seed
			d, err := Faults(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

// FaultsData holds the fault-tolerance experiment: the login workload
// through a sharded pool under a deterministic fault schedule, measured
// with and without the defensive machinery (retries + circuit breaker),
// so the experiment quantifies what the robustness layer buys.
type FaultsData struct {
	Requests int
	Workers  int
	Engine   string
	Seed     int64
	// BareSucceeded is how many requests survived with no retries and no
	// breaker; HardenedSucceeded is the same schedule with them on.
	BareSucceeded     int
	HardenedSucceeded int
	// Snapshot is the hardened pool's instrumentation (fault, retry,
	// shed, and breaker counters included). Excluded from JSON in
	// favor of the stable Export schema below.
	Snapshot obs.Snapshot `json:"-"`
	// Export is the versioned, JSON-stable form of Snapshot.
	Export obs.Export
}

// FaultsConfig sizes the experiment.
type FaultsConfig struct {
	App      login.Config
	Requests int
	Workers  int
	// HW names the machine environment; default "partitioned".
	HW string
	// Engine names the execution engine; default "vm" (the service path).
	Engine string
	// Seed fixes the fault schedule; both arms replay the same faults.
	Seed int64
	// EngineErrorRate and StallRate shape the schedule; defaults 0.25
	// and 0.15.
	EngineErrorRate float64
	StallRate       float64
	// Retries is the hardened arm's retry budget; default 3.
	Retries int
}

// Defaults fills zero fields.
func (c FaultsConfig) Defaults() FaultsConfig {
	if c.App.TableSize == 0 {
		c.App = login.Config{TableSize: 16, WorkFactor: 48, WorkTableSize: 256}
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.HW == "" {
		c.HW = "partitioned"
	}
	if c.Engine == "" {
		c.Engine = "vm"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EngineErrorRate == 0 {
		c.EngineErrorRate = 0.25
	}
	if c.StallRate == 0 {
		c.StallRate = 0.15
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	return c
}

// Quick returns the reduced-scale configuration.
func (c FaultsConfig) Quick() FaultsConfig {
	c = c.Defaults()
	c.Requests = 32
	c.Workers = 2
	return c
}

// Faults runs the same faulty schedule through a bare pool and a
// hardened pool (retries + breaker) and compares availability.
func Faults(cfg FaultsConfig) (*FaultsData, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	app, err := login.Build(cfg.App, lat)
	if err != nil {
		return nil, err
	}
	creds := login.MakeCredentials(cfg.App.TableSize)
	reqs := make([]server.Request, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		att := login.Attempt{User: creds[i%len(creds)].User, Pass: creds[i%len(creds)].Pass}
		reqs[i] = func(m *mem.Memory) { app.Setup(m, creds, att, 1, 1) }
	}
	plan := fault.Plan{
		fault.EngineError: {Rate: cfg.EngineErrorRate},
		fault.ShardStall:  {Rate: cfg.StallRate},
	}
	ctx := context.Background()

	run := func(hardened bool) (int, obs.Snapshot, error) {
		env, err := hw.NewEnv(cfg.HW, lat, hw.Table1Config())
		if err != nil {
			return 0, obs.Snapshot{}, err
		}
		popts := server.PoolOptions{
			Workers: cfg.Workers,
			Options: server.Options{
				Env:      env,
				Engine:   cfg.Engine,
				Injector: fault.New(cfg.Seed, plan),
			},
		}
		if hardened {
			popts.MaxRetries = cfg.Retries
			popts.RetrySeed = cfg.Seed
			popts.BreakerThreshold = 5
		}
		pool, err := server.NewPool(app.Prog, app.Res, popts)
		if err != nil {
			return 0, obs.Snapshot{}, err
		}
		ok := 0
		for _, req := range reqs {
			_, err := pool.Handle(ctx, req)
			switch {
			case err == nil:
				ok++
			case errors.Is(err, fault.ErrInjected) || errors.Is(err, server.ErrOverloaded):
				// expected casualties of the schedule
			default:
				pool.Close()
				return 0, obs.Snapshot{}, err
			}
		}
		pool.Close()
		return ok, pool.Snapshot(), nil
	}

	bare, _, err := run(false)
	if err != nil {
		return nil, err
	}
	hardenedOK, snap, err := run(true)
	if err != nil {
		return nil, err
	}
	return &FaultsData{
		Requests:          cfg.Requests,
		Workers:           cfg.Workers,
		Engine:            cfg.Engine,
		Seed:              cfg.Seed,
		BareSucceeded:     bare,
		HardenedSucceeded: hardenedOK,
		Snapshot:          snap,
		Export:            snap.Export(),
	}, nil
}

// availability formats a success count as a percentage.
func availability(ok, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(ok)/float64(total))
}

// Render formats the experiment.
func (d *FaultsData) Render() string {
	var b strings.Builder
	b.WriteString("Fault tolerance: injected faults, with and without defenses\n")
	fmt.Fprintf(&b, "requests:            %d across %d shards (%s engine, seed %d)\n",
		d.Requests, d.Workers, d.Engine, d.Seed)
	fmt.Fprintf(&b, "bare availability:   %d/%d (%s) — no retries, no breaker\n",
		d.BareSucceeded, d.Requests, availability(d.BareSucceeded, d.Requests))
	fmt.Fprintf(&b, "hardened:            %d/%d (%s) — retries + circuit breaker\n",
		d.HardenedSucceeded, d.Requests, availability(d.HardenedSucceeded, d.Requests))
	b.WriteString("\nhardened instrumentation snapshot:\n")
	b.WriteString(d.Snapshot.String())
	return b.String()
}

// CSVHeader implements CSV for the faults experiment.
func (d *FaultsData) CSVHeader() []string {
	return []string{"requests", "workers", "engine", "seed",
		"bare_succeeded", "hardened_succeeded", "faults", "retries", "sheds",
		"breaker_opens", "breaker_closes"}
}

// CSVRows implements CSV for the faults experiment.
func (d *FaultsData) CSVRows() [][]string {
	return [][]string{{
		strconv.Itoa(d.Requests),
		strconv.Itoa(d.Workers),
		d.Engine,
		strconv.FormatInt(d.Seed, 10),
		strconv.Itoa(d.BareSucceeded),
		strconv.Itoa(d.HardenedSucceeded),
		u(d.Snapshot.Faults),
		u(d.Snapshot.Retries),
		u(d.Snapshot.Sheds),
		u(d.Snapshot.BreakerOpens),
		u(d.Snapshot.BreakerCloses),
	}}
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
)

// Small configurations keep the experiment tests fast while preserving
// the qualitative shapes; the full-scale runs live in the benchmark
// harness.
func smallFig7() Figure7Config {
	return Figure7Config{
		App:         login.Config{TableSize: 20, WorkFactor: 60},
		Attempts:    20,
		ValidCounts: []int{4, 10, 20},
	}
}

func TestTable1RendersAllRows(t *testing.T) {
	out := Table1()
	for _, want := range []string{"L1 Data Cache", "L2 Data Cache", "L1 Inst. Cache",
		"L2 Inst. Cache", "Data TLB", "Instruction TLB", "128", "1024", "512", "30 cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestHWOptionString(t *testing.T) {
	if Nopar.String() != "nopar" || Moff.String() != "moff" || Mon.String() != "mon" {
		t.Error("option names")
	}
	if !strings.Contains(HWOption(7).String(), "7") {
		t.Error("unknown option")
	}
}

func TestFigure7Shapes(t *testing.T) {
	d, err := Figure7(smallFig7())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Unmitigated) != 3 || len(d.Mitigated) != 3 {
		t.Fatalf("series counts: %d/%d", len(d.Unmitigated), len(d.Mitigated))
	}

	// Claim 1 (paper): unmitigated, valid and invalid usernames are
	// distinguishable — attempts below the valid count take longer
	// (password path) than attempts beyond it.
	for _, s := range d.Unmitigated {
		if s.Valid >= d.Attempts {
			continue // all attempts valid in this series
		}
		validAvg := avg(s.Times[:s.Valid])
		invalidAvg := avg(s.Times[s.Valid:])
		if validAvg <= invalidAvg {
			t.Errorf("unmitigated v=%d: valid avg %d should exceed invalid avg %d",
				s.Valid, validAvg, invalidAvg)
		}
	}

	// Claim 2: unmitigated curves differ between valid-count settings
	// (an adversary can probe the secret table).
	if sameSeries(d.Unmitigated[0].Times, d.Unmitigated[2].Times) {
		t.Error("unmitigated curves should differ with the secret table")
	}

	// Claim 3 (the soundness result): with mitigation, all three curves
	// coincide exactly — execution time does not depend on secrets.
	if !sameSeries(d.Mitigated[0].Times, d.Mitigated[1].Times) ||
		!sameSeries(d.Mitigated[1].Times, d.Mitigated[2].Times) {
		t.Error("mitigated curves must coincide")
	}

	// Rendering includes every attempt row.
	out := d.Render()
	if !strings.Contains(out, "attempt") || strings.Count(out, "\n") < d.Attempts {
		t.Error("render too short")
	}
}

func avg(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s / uint64(len(xs))
}

func sameSeries(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTable2Shapes(t *testing.T) {
	d, err := Table2(Table2Config{
		App:      login.Config{TableSize: 20, WorkFactor: 60},
		NumValid: 10,
		Attempts: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper's shape: nopar distinguishes valid from invalid; mon makes
	// them equal; overheads are modest and ordered 1 ≤ moff ≤ mon.
	if d.AvgValid[Nopar] <= d.AvgInvalid[Nopar] {
		t.Errorf("nopar: valid (%d) should exceed invalid (%d)", d.AvgValid[Nopar], d.AvgInvalid[Nopar])
	}
	// With mitigation, valid and invalid coincide up to the tiny
	// warm-up variation the paper also reports (86132 vs 86147 cycles;
	// "unaffected by secrets").
	diff := int64(d.AvgValid[Mon]) - int64(d.AvgInvalid[Mon])
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.005*float64(d.AvgValid[Mon]) {
		t.Errorf("mon: valid (%d) and invalid (%d) must coincide within 0.5%%",
			d.AvgValid[Mon], d.AvgInvalid[Mon])
	}
	moff := d.OverheadValid(Moff)
	mon := d.OverheadValid(Mon)
	if moff < 1.0 {
		t.Errorf("moff overhead %.3f < 1: partitioned hardware should not be faster", moff)
	}
	if mon < moff {
		t.Errorf("mon overhead %.3f should be ≥ moff %.3f", mon, moff)
	}
	// "Only modest slowdown": within 2× in our simulator (paper: 1.22).
	if mon > 2.0 {
		t.Errorf("mon overhead %.3f is not modest", mon)
	}
	out := d.Render()
	if !strings.Contains(out, "overhead (valid)") {
		t.Error("render missing overhead row")
	}
}

func TestFigure8Shapes(t *testing.T) {
	d, err := Figure8(Figure8Config{
		App:      rsa.Config{MaxBlocks: 4, Modulus: 1000003},
		Messages: 12,
		Blocks:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unmitigated: the two keys are distinguishable (different
	// decryption time on every message).
	differ := 0
	for i := range d.Unmit1 {
		if d.Unmit1[i] != d.Unmit2[i] {
			differ++
		}
	}
	if differ < len(d.Unmit1)*3/4 {
		t.Errorf("unmitigated keys should be distinguishable: only %d/%d messages differ",
			differ, len(d.Unmit1))
	}
	// Mitigated: exactly equal for both keys on every message.
	for i := range d.Mit1 {
		if d.Mit1[i] != d.Mit2[i] {
			t.Fatalf("mitigated times differ at message %d: %d vs %d", i, d.Mit1[i], d.Mit2[i])
		}
	}
	// Mitigated time is constant across messages of the same length
	// (the paper reports exactly 32,001,922 cycles for every message).
	for i := 1; i < len(d.Mit1); i++ {
		if d.Mit1[i] != d.Mit1[0] {
			t.Fatalf("mitigated time varies across messages: %d vs %d", d.Mit1[i], d.Mit1[0])
		}
	}
	if !strings.Contains(d.Render(), "Figure 8") {
		t.Error("render header")
	}
}

func TestFigure9Shapes(t *testing.T) {
	d, err := Figure9(Figure9Config{
		App:       rsa.Config{MaxBlocks: 8, Modulus: 1000003},
		MaxBlocks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sumLang, sumSys uint64
	for i := range d.Blocks {
		sumLang += d.LanguageLevel[i]
		sumSys += d.SystemLevel[i]
		// Language-level grows monotonically with (public) block count.
		if i > 0 && d.LanguageLevel[i] <= d.LanguageLevel[i-1] {
			t.Errorf("language-level time should grow with blocks: %v", d.LanguageLevel)
		}
		// Mitigation never beats unmitigated execution.
		if d.LanguageLevel[i] < d.Unmitigated[i] {
			t.Errorf("block %d: language-level (%d) below unmitigated (%d)",
				d.Blocks[i], d.LanguageLevel[i], d.Unmitigated[i])
		}
	}
	// Aggregate: fine-grained mitigation is faster than system-level.
	if float64(sumSys) < 1.15*float64(sumLang) {
		t.Errorf("system-level (%d) should cost ≥15%% more than language-level (%d)", sumSys, sumLang)
	}
	if !strings.Contains(d.Render(), "Figure 9") {
		t.Error("render header")
	}
}

func TestFigure7Deterministic(t *testing.T) {
	cfg := Figure7Config{
		App:         login.Config{TableSize: 8, WorkFactor: 24},
		Attempts:    6,
		ValidCounts: []int{2},
	}
	a, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSeries(a.Unmitigated[0].Times, b.Unmitigated[0].Times) {
		t.Error("experiment must be deterministic")
	}
}

func TestFigure7ParallelMatchesSequential(t *testing.T) {
	cfg := Figure7Config{
		App:         login.Config{TableSize: 10, WorkFactor: 24},
		Attempts:    8,
		ValidCounts: []int{3},
	}
	seq, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	par, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Unmitigated {
		if !sameSeries(seq.Unmitigated[i].Times, par.Unmitigated[i].Times) {
			t.Fatal("parallel unmitigated series differs from sequential")
		}
	}
	for i := range seq.Mitigated {
		if !sameSeries(seq.Mitigated[i].Times, par.Mitigated[i].Times) {
			t.Fatal("parallel mitigated series differs from sequential")
		}
	}
}

package experiments

import (
	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
)

// The Quick methods return reduced-scale configurations for fast runs
// (`harness -quick`, smoke tests). They preserve each experiment's
// qualitative shape — settling behavior, curve coincidence, key
// distinguishability — at a fraction of the paper-scale cost.

// Quick returns the reduced-scale Figure 7 configuration.
func (c Figure7Config) Quick() Figure7Config {
	c.App = login.Config{TableSize: 20, WorkFactor: 60}
	c.Attempts = 20
	c.ValidCounts = []int{4, 10, 20}
	return c
}

// Quick returns the reduced-scale Table 2 configuration.
func (c Table2Config) Quick() Table2Config {
	c.App = login.Config{TableSize: 20, WorkFactor: 60}
	c.NumValid = 10
	c.Attempts = 10
	return c
}

// Quick returns the reduced-scale Figure 8 configuration.
func (c Figure8Config) Quick() Figure8Config {
	c.App = rsa.Config{MaxBlocks: 4, Modulus: 1000003}
	c.Messages = 10
	c.Blocks = 3
	return c
}

// Quick returns the reduced-scale Figure 9 configuration.
func (c Figure9Config) Quick() Figure9Config {
	c.App = rsa.Config{MaxBlocks: 8, Modulus: 1000003}
	c.MaxBlocks = 8
	return c
}

// Quick returns the reduced-scale leakage-bound configuration.
func (c LeakageConfig) Quick() LeakageConfig {
	c.App = rsa.Config{MaxBlocks: 4, Modulus: 1000003}
	c.Blocks = 2
	return c
}

package experiments

import (
	"strings"
	"testing"
)

// TestVmoptQuick asserts the experiment's claims at quick scale: the
// pipeline fuses the hot loop, every workload's optimized run is
// observationally identical to the stack interpreter, and the report
// renders the stats and speedup.
func TestVmoptQuick(t *testing.T) {
	d, err := Vmopt(VmoptConfig{}.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Programs) != len(vmoptPrograms) {
		t.Fatalf("programs = %d, want %d", len(d.Programs), len(vmoptPrograms))
	}
	for _, p := range d.Programs {
		if !p.Identical {
			t.Errorf("%s: optimized run must match the stack interpreter", p.Name)
		}
		if p.OrigInstrs <= 0 || p.OptInstrs <= 0 || p.OptInstrs > p.OrigInstrs {
			t.Errorf("%s: instruction counts %d -> %d", p.Name, p.OrigInstrs, p.OptInstrs)
		}
		// Accounting: unfused survivors plus absorbed originals cover
		// the original program.
		if unfused := p.OptInstrs - p.FusedInstrs; unfused+p.FusedOrig != p.OrigInstrs {
			t.Errorf("%s: %d unfused + %d absorbed != %d original",
				p.Name, unfused, p.FusedOrig, p.OrigInstrs)
		}
	}
	hot := d.Programs[0]
	if hot.Name != "hotloop" || hot.FusedInstrs == 0 {
		t.Errorf("hotloop must fuse: %+v", hot)
	}
	if d.OptPerIter <= 0 || d.StackPerIter <= 0 || d.Speedup <= 0 {
		t.Errorf("timing not measured: stack %v, opt %v, speedup %v",
			d.StackPerIter, d.OptPerIter, d.Speedup)
	}
	text := d.Render()
	for _, want := range []string{"hotloop", "fused", "speedup"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render() missing %q:\n%s", want, text)
		}
	}
	if len(d.CSVRows()) != len(d.Programs) {
		t.Errorf("CSV rows = %d, want %d", len(d.CSVRows()), len(d.Programs))
	}
	if got, want := len(d.CSVHeader()), len(d.CSVRows()[0]); got != want {
		t.Errorf("CSV header %d columns, rows %d", got, want)
	}
}

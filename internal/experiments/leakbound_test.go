package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps/rsa"
)

func TestLeakageBounds(t *testing.T) {
	d, err := LeakageBounds(LeakageConfig{
		App:    rsa.Config{MaxBlocks: 4, Modulus: 1000003},
		Blocks: 2,
		Keys: []int64{
			0x800000000001, 0x83000001000F, 0x8FFFFF00FF01, 0xFFFFFFFFFFF,
			0x800F0F0F0F0F, 0xFFF00000001, 0x88888888881, 0x8000000FFFFF,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The attack works unmitigated: most keys distinguishable.
	if d.UnmitigatedQBits < 2 {
		t.Errorf("unmitigated leakage %.2f bits; expected ≥2 (keys distinguishable)", d.UnmitigatedQBits)
	}
	// Mitigation collapses leakage well below the unmitigated level and
	// within the analytic bound.
	if d.MitigatedQBits >= d.UnmitigatedQBits {
		t.Errorf("mitigated leakage %.2f should be below unmitigated %.2f",
			d.MitigatedQBits, d.UnmitigatedQBits)
	}
	if d.MitigatedQBits > d.MitigatedVBits {
		t.Errorf("Theorem 2: Q (%.2f) must be ≤ log|V| (%.2f)", d.MitigatedQBits, d.MitigatedVBits)
	}
	if d.MitigatedQBits > d.BoundBits {
		t.Errorf("measured %.2f bits exceeds analytic bound %.2f", d.MitigatedQBits, d.BoundBits)
	}
	out := d.Render()
	for _, want := range []string{"unmitigated", "mitigated", "Theorem 2", "analytic"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestLeakageDefaults(t *testing.T) {
	cfg := LeakageConfig{}.Defaults()
	if len(cfg.Keys) != 16 || cfg.Blocks != 3 {
		t.Errorf("defaults: %+v", cfg)
	}
	seen := map[int64]bool{}
	for _, k := range cfg.Keys {
		if k <= 0 {
			t.Errorf("key %#x not positive", k)
		}
		if seen[k] {
			t.Errorf("duplicate key %#x", k)
		}
		seen[k] = true
	}
}

func TestLog2Helper(t *testing.T) {
	if log2(1) != 0 || log2(2) != 1 || log2(8) != 3 || log2(9) != 4 {
		t.Error("log2 ceiling helper")
	}
}

package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
)

func fig7Small(t *testing.T) *Figure7Data {
	t.Helper()
	d, err := Figure7(Figure7Config{
		App:         login.Config{TableSize: 8, WorkFactor: 24},
		Attempts:    5,
		ValidCounts: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteJSONRoundTrip(t *testing.T) {
	d := fig7Small(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var back Figure7Data
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Attempts != d.Attempts || len(back.Unmitigated) != len(d.Unmitigated) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Unmitigated[0].Times[0] != d.Unmitigated[0].Times[0] {
		t.Error("times lost")
	}
}

func TestFigure7CSV(t *testing.T) {
	d := fig7Small(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+d.Attempts {
		t.Fatalf("rows = %d, want %d", len(recs), 1+d.Attempts)
	}
	if recs[0][0] != "attempt" || !strings.HasPrefix(recs[0][1], "unmitigated_valid") {
		t.Errorf("header = %v", recs[0])
	}
	// Every data cell parses as an integer.
	for _, row := range recs[1:] {
		if len(row) != len(recs[0]) {
			t.Fatalf("ragged row %v", row)
		}
		for _, cell := range row {
			if _, err := strconv.ParseUint(cell, 10, 64); err != nil {
				t.Errorf("cell %q not numeric", cell)
			}
		}
	}
}

func TestTable2CSV(t *testing.T) {
	d, err := Table2(Table2Config{
		App:      login.Config{TableSize: 8, WorkFactor: 24},
		NumValid: 4,
		Attempts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	recs, _ := csv.NewReader(&buf).ReadAll()
	if len(recs) != 4 { // header + 3 options
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[1][0] != "nopar" || recs[2][0] != "moff" || recs[3][0] != "mon" {
		t.Errorf("options = %v %v %v", recs[1][0], recs[2][0], recs[3][0])
	}
	if recs[1][3] != "1.0000" {
		t.Errorf("nopar overhead = %q", recs[1][3])
	}
}

func TestFigure8And9CSV(t *testing.T) {
	d8, err := Figure8(Figure8Config{
		App: rsa.Config{MaxBlocks: 2, Modulus: 1000003}, Messages: 3, Blocks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d8); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 {
		t.Errorf("figure8 lines = %d", got)
	}

	d9, err := Figure9(Figure9Config{
		App: rsa.Config{MaxBlocks: 3, Modulus: 1000003}, MaxBlocks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteCSV(&buf, d9); err != nil {
		t.Fatal(err)
	}
	recs, _ := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if len(recs) != 4 || recs[0][0] != "blocks" {
		t.Errorf("figure9 csv = %v", recs)
	}
}

func TestLeakageCSV(t *testing.T) {
	d := &LeakageData{Keys: 8, UnmitigatedQBits: 3, MitigatedQBits: 1, MitigatedVBits: 1,
		BoundBits: 12, MaxClock: 999, RelevantMitigations: 2}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.0000") || !strings.Contains(buf.String(), "999") {
		t.Errorf("csv = %q", buf.String())
	}
}

package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// RunOptions are the harness-level knobs shared by every experiment.
// An experiment reads the knobs that apply to it and ignores the rest
// (Engine, say, only matters to the service-backed experiments).
type RunOptions struct {
	// Quick selects the reduced-scale configuration.
	Quick bool
	// Parallel fans independent probes across goroutines where the
	// experiment supports it.
	Parallel bool
	// Plot renders figures as ASCII charts instead of tables.
	Plot bool
	// Engine names the execution engine for service-backed experiments
	// ("tree", "vm").
	Engine string
	// Seed fixes the pseudo-random choices of randomized experiments.
	Seed int64
}

// Report is one experiment's output: the human-readable text and,
// when the experiment produces tabular data, its CSV/JSON form. A nil
// Data marks a text-only experiment (table1 is configuration, not
// measurement).
type Report struct {
	Text string
	Data CSV
}

// Experiment is one registered evaluation artifact: a stable name the
// harness dispatches on, a one-line summary for `-experiment list`,
// and the runner.
type Experiment struct {
	// Name is the harness-facing identifier (figure7, leakage, ...).
	Name string
	// Summary is the one-line description shown by `-experiment list`.
	Summary string
	// Order fixes the position in All() — the paper's presentation
	// order, independent of registration order.
	Order int
	// Run executes the experiment.
	Run func(RunOptions) (*Report, error)
}

// The registry maps experiment names to their runners, mirroring the
// engine registry in internal/exec. Built-ins register from init
// functions next to their implementations; tests and future
// experiments can add their own.
var (
	registryMu sync.RWMutex
	registry   = map[string]Experiment{}
)

// Register adds an experiment. It reports an error when the name is
// empty, the runner nil, or the name already taken.
func Register(e Experiment) error {
	if e.Name == "" || e.Run == nil {
		return fmt.Errorf("experiments: Register needs a non-empty name and runner")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		return fmt.Errorf("experiments: %q already registered", e.Name)
	}
	registry[e.Name] = e
	return nil
}

// MustRegister is Register, panicking on error; for init-time use.
func MustRegister(e Experiment) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// All returns every registered experiment in presentation order
// (Order, then Name for stability among equals).
func All() []Experiment {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the experiment names in presentation order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

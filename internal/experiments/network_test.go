package experiments

import (
	"encoding/json"
	"testing"
)

// TestNetworkQuick is the transport acceptance check at reduced scale:
// the HTTP batch must be identical to the in-process pool, the load
// phase must complete, and the scraped metrics must account for every
// request the experiment issued (one batch pass + one load pass).
func TestNetworkQuick(t *testing.T) {
	cfg := NetworkConfig{}.Quick()
	d, err := Network(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Identical {
		t.Error("HTTP batch results diverged from the in-process pool")
	}
	if d.Wall <= 0 || d.ReqPerSec <= 0 {
		t.Errorf("load phase: wall=%v req/s=%.1f", d.Wall, d.ReqPerSec)
	}
	if d.P50 <= 0 || d.P99 < d.P50 || d.Max < d.P99 {
		t.Errorf("latency ordering: p50=%v p99=%v max=%v", d.P50, d.P99, d.Max)
	}
	wantServed := uint64(2 * cfg.Requests)
	if d.Export.Requests != wantServed {
		t.Errorf("service accounting: %d requests, want %d", d.Export.Requests, wantServed)
	}
	if d.Export.Mitigations == 0 || d.Export.PaddingCycles == 0 {
		t.Errorf("mitigation accounting empty: %+v", d.Export)
	}

	// The data must survive the harness's JSON path (stable export only).
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
}

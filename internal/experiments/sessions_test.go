package experiments

import (
	"strings"
	"testing"
)

// TestSessionsQuick asserts the experiment's acceptance claims at
// quick scale: log-bound per-tenant leakage verified client-side,
// independent interleaved epochs, the greedy tenant capped while the
// modest one finishes untouched, and bit-exact replay under the seed.
func TestSessionsQuick(t *testing.T) {
	d, err := Sessions(SessionsConfig{}.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if !d.IndependentEpochs {
		t.Error("tenants' epoch sequences must be independent of interleaving")
	}
	if !d.BoundMatches {
		t.Error("reported leakage must equal the client-side §7 recomputation")
	}
	if !d.GreedyDenied {
		t.Error("the greedy tenant must run into the budget")
	}
	if !d.ModestUnaffected {
		t.Error("the modest tenant must finish without a denial")
	}
	if !d.Deterministic {
		t.Error("a fresh service under the same seed must replay exactly")
	}
	if len(d.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(d.Traces))
	}
	greedy, modest := d.Traces[0], d.Traces[1]
	if greedy.RetryAfter != d.TTL {
		t.Errorf("denial Retry-After = %v, want the TTL %v", greedy.RetryAfter, d.TTL)
	}
	if got := len(greedy.Epochs) + greedy.Denials; got != d.GreedyRequests {
		t.Errorf("greedy served+denied = %d, want %d", got, d.GreedyRequests)
	}
	if len(modest.Epochs) != d.ModestRequests || modest.Denials != 0 {
		t.Errorf("modest trace = %d served, %d denied", len(modest.Epochs), modest.Denials)
	}
	// The cumulative bound is monotone and concave-ish (log in K and
	// T): strictly growing, with non-increasing late increments.
	for i := 1; i < len(greedy.LeakageBits); i++ {
		if greedy.LeakageBits[i] <= greedy.LeakageBits[i-1] {
			t.Errorf("leakage must grow: step %d: %v -> %v",
				i, greedy.LeakageBits[i-1], greedy.LeakageBits[i])
		}
	}
	if n := len(greedy.LeakageBits); n >= 4 {
		early := greedy.LeakageBits[1] - greedy.LeakageBits[0]
		late := greedy.LeakageBits[n-1] - greedy.LeakageBits[n-2]
		if late >= early {
			t.Errorf("log-shaped bound must flatten: early step %v, late step %v", early, late)
		}
	}
	if d.Export.SessionsCreated < 2 || d.Export.BudgetDenials == 0 {
		t.Errorf("service accounting missing sessions: %+v", d.Export)
	}
}

// TestSessionsRenderAndCSV smoke-checks the output forms.
func TestSessionsRenderAndCSV(t *testing.T) {
	d := &SessionsData{
		GreedyRequests: 2, ModestRequests: 1, Workers: 1, Engine: "tree",
		BudgetBits: 10, Seed: 1,
		Traces: []SessionTrace{
			{Tenant: "greedy", Epochs: []int{1, 2}, LeakageBits: []float64{3, 5}, Denials: 1, CumMitigations: 2, CumTime: 100},
			{Tenant: "modest", Epochs: []int{1}, LeakageBits: []float64{3}, CumMitigations: 1, CumTime: 50},
		},
	}
	text := d.Render()
	for _, want := range []string{"greedy", "modest", "leakage curve"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	if got := len(d.CSVRows()); got != 2 {
		t.Errorf("CSV rows = %d, want one per tenant", got)
	}
	if len(d.CSVHeader()) != len(d.CSVRows()[0]) {
		t.Error("CSV header/row width mismatch")
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bytecode"
	"repro/internal/bytecode/optimize"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/events"
	"repro/internal/types"
)

// The vmopt experiment evaluates the bytecode optimization pipeline
// (internal/bytecode/optimize): for a set of representative programs it
// reports what the passes did (instruction counts, emitted
// superinstructions by pattern), re-proves observational identity
// between the stack interpreter and the optimized loop (clock, step
// count, event trace, final memory, hardware counters), and measures
// the host-time speedup of the optimized loop on a compute-bound
// workload.

func init() {
	MustRegister(Experiment{
		Name: "vmopt", Order: 110,
		Summary: "bytecode pipeline: fusion stats, identity, speedup",
		Run: func(o RunOptions) (*Report, error) {
			cfg := VmoptConfig{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			d, err := Vmopt(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

// vmoptPrograms are the workloads: the speedup measurement uses
// "hotloop" (compute-bound: a fusable immediate-arithmetic chain and
// compare-and-branch dominate; the array traffic sits outside the
// loop, where its addresses are stable and per-site memos hold), the
// others broaden the static-stats and identity table.
var vmoptPrograms = []struct{ name, src string }{
	{"hotloop", `
var n : L;
var i : L;
var acc : L;
array a[16] : L;
while (i < n) {
    acc := ((acc * 31 + 7) % 8191) * 3 + i;
    i := i + 1;
}
a[acc % 16] := acc;
acc := acc + a[(acc + 5) % 16];
`},
	{"straightline", `
var x : L;
var y : L;
x := 7;
y := x + 2;
x := y * y - 1;
`},
	{"mitigated", `
var h : H;
var l : L;
mitigate (2, H) [L,L] {
    sleep(h % 16) [H,H];
}
l := 1;
`},
}

// VmoptProgram is one workload's row: what the pipeline emitted and
// whether the optimized run matched the stack interpreter exactly.
type VmoptProgram struct {
	Name        string
	OrigInstrs  int
	OptInstrs   int
	FusedInstrs int
	// FusedOrig counts original instructions absorbed into
	// superinstructions.
	FusedOrig int
	// Patterns lists emitted superinstructions as "MNEMONIC×count",
	// most frequent first.
	Patterns string
	// Identical is true when clock, steps, trace, memory, and hardware
	// counters matched between the stack and optimized runs on both
	// timing models.
	Identical bool
}

// VmoptData holds the experiment's results.
type VmoptData struct {
	Iters    int
	Programs []VmoptProgram
	// StackPerIter / OptPerIter are host-time costs of one hotloop run
	// on the stack interpreter and the optimized loop; Speedup is their
	// ratio.
	StackPerIter time.Duration
	OptPerIter   time.Duration
	Speedup      float64
}

// VmoptConfig sizes the experiment.
type VmoptConfig struct {
	// Iters is the per-engine repetition count of the timing loop.
	Iters int
	// LoopN is the hotloop trip count per run.
	LoopN int64
}

// Defaults fills zero fields.
func (c VmoptConfig) Defaults() VmoptConfig {
	if c.Iters == 0 {
		c.Iters = 300
	}
	if c.LoopN == 0 {
		c.LoopN = 400
	}
	return c
}

// Quick returns the reduced-scale configuration.
func (c VmoptConfig) Quick() VmoptConfig {
	c.Iters = 40
	c.LoopN = 100
	return c
}

type vmoptOutcome struct {
	clock uint64
	steps int
	trace events.Trace
	mem   []int64
	stats hw.Stats
}

// vmoptRun executes p once and snapshots everything observable.
func vmoptRun(p *bytecode.Program, lat lattice.Lattice, timing bytecode.TimingModel, n int64) (vmoptOutcome, error) {
	vm := bytecode.NewVM(p, hw.NewPartitioned(lat, hw.Table1Config()), bytecode.VMOptions{Timing: timing})
	for i, name := range p.ScalarNames {
		v := int64(i) + 2
		if name == "n" {
			v = n
		}
		if err := vm.SetScalar(name, v); err != nil {
			return vmoptOutcome{}, err
		}
	}
	if err := vm.Run(0); err != nil {
		return vmoptOutcome{}, err
	}
	o := vmoptOutcome{clock: vm.Clock(), steps: vm.Steps()}
	o.trace = append(events.Trace(nil), vm.Trace()...)
	o.mem = append([]int64(nil), vm.ScalarStorage()...)
	o.stats = vm.Env().Stats()
	return o, nil
}

func (a vmoptOutcome) equal(b vmoptOutcome) bool {
	if a.clock != b.clock || a.steps != b.steps || a.stats != b.stats {
		return false
	}
	if len(a.trace) != len(b.trace) || len(a.mem) != len(b.mem) {
		return false
	}
	for i := range a.trace {
		if a.trace[i] != b.trace[i] {
			return false
		}
	}
	for i := range a.mem {
		if a.mem[i] != b.mem[i] {
			return false
		}
	}
	return true
}

// Vmopt runs the experiment.
func Vmopt(cfg VmoptConfig) (*VmoptData, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	d := &VmoptData{Iters: cfg.Iters}

	var hotStack, hotOpt *bytecode.Program
	for _, w := range vmoptPrograms {
		prog, err := parser.Parse(w.src)
		if err != nil {
			return nil, fmt.Errorf("vmopt %s: %w", w.name, err)
		}
		res, err := types.Check(prog, lat)
		if err != nil {
			return nil, fmt.Errorf("vmopt %s: %w", w.name, err)
		}
		bp, err := bytecode.Compile(prog, res)
		if err != nil {
			return nil, fmt.Errorf("vmopt %s: %w", w.name, err)
		}
		op, err := optimize.Compile(bp, optimize.LevelFuse)
		if err != nil {
			return nil, fmt.Errorf("vmopt %s: %w", w.name, err)
		}
		optP := *bp
		optP.Opt = op

		row := VmoptProgram{
			Name:        w.name,
			OrigInstrs:  op.Stats.OrigInstrs,
			OptInstrs:   op.Stats.OptInstrs,
			FusedInstrs: op.Stats.FusedInstrs,
			FusedOrig:   op.Stats.FusedOrig,
			Patterns:    formatPatterns(op.Stats.Patterns),
			Identical:   true,
		}
		for _, timing := range []bytecode.TimingModel{bytecode.TimingTree, bytecode.TimingMicro} {
			base, err := vmoptRun(bp, lat, timing, cfg.LoopN)
			if err != nil {
				return nil, fmt.Errorf("vmopt %s (stack): %w", w.name, err)
			}
			opt, err := vmoptRun(&optP, lat, timing, cfg.LoopN)
			if err != nil {
				return nil, fmt.Errorf("vmopt %s (optimized): %w", w.name, err)
			}
			if !base.equal(opt) {
				row.Identical = false
			}
		}
		d.Programs = append(d.Programs, row)
		if w.name == "hotloop" {
			hotStack, hotOpt = bp, &optP
		}
	}

	// Speedup: the same hotloop run cfg.Iters times per engine. One
	// warmup iteration per engine keeps one-time costs (lazy site
	// tables) out of the measurement.
	measure := func(p *bytecode.Program) (time.Duration, error) {
		if _, err := vmoptRun(p, lat, bytecode.TimingTree, cfg.LoopN); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < cfg.Iters; i++ {
			if _, err := vmoptRun(p, lat, bytecode.TimingTree, cfg.LoopN); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(cfg.Iters), nil
	}
	var err error
	if d.StackPerIter, err = measure(hotStack); err != nil {
		return nil, err
	}
	if d.OptPerIter, err = measure(hotOpt); err != nil {
		return nil, err
	}
	if d.OptPerIter > 0 {
		d.Speedup = float64(d.StackPerIter) / float64(d.OptPerIter)
	}
	return d, nil
}

// formatPatterns renders a pattern histogram as "MNEMONIC×n ...",
// most frequent first (name-ordered among equals, for determinism).
func formatPatterns(pats map[string]int) string {
	names := make([]string, 0, len(pats))
	for n := range pats {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if pats[names[i]] != pats[names[j]] {
			return pats[names[i]] > pats[names[j]]
		}
		return names[i] < names[j]
	})
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s×%d", n, pats[n])
	}
	return strings.Join(parts, " ")
}

// Render formats the experiment for the terminal.
func (d *VmoptData) Render() string {
	var b strings.Builder
	b.WriteString("E8: Bytecode optimization pipeline (fusion + register lowering)\n")
	for _, p := range d.Programs {
		ident := "identical"
		if !p.Identical {
			ident = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-13s %3d → %3d instrs, %2d fused (absorbing %2d), %s\n",
			p.Name+":", p.OrigInstrs, p.OptInstrs, p.FusedInstrs, p.FusedOrig, ident)
		if p.Patterns != "" {
			fmt.Fprintf(&b, "              %s\n", p.Patterns)
		}
	}
	fmt.Fprintf(&b, "hotloop host time: stack %v/run, optimized %v/run — %.2fx speedup (%d runs each)\n",
		d.StackPerIter.Round(time.Microsecond), d.OptPerIter.Round(time.Microsecond),
		d.Speedup, d.Iters)
	return b.String()
}

// CSVHeader implements CSV.
func (d *VmoptData) CSVHeader() []string {
	return []string{"program", "orig_instrs", "opt_instrs", "fused_instrs",
		"fused_orig", "identical", "patterns", "speedup"}
}

// CSVRows implements CSV.
func (d *VmoptData) CSVRows() [][]string {
	rows := make([][]string, 0, len(d.Programs))
	for _, p := range d.Programs {
		speed := ""
		if p.Name == "hotloop" {
			speed = strconv.FormatFloat(d.Speedup, 'f', 2, 64)
		}
		rows = append(rows, []string{
			p.Name, strconv.Itoa(p.OrigInstrs), strconv.Itoa(p.OptInstrs),
			strconv.Itoa(p.FusedInstrs), strconv.Itoa(p.FusedOrig),
			strconv.FormatBool(p.Identical), p.Patterns, speed,
		})
	}
	return rows
}

package experiments

import (
	"fmt"
	"strings"
)

// ASCII plotting for the figures: the paper presents Figures 7–9 as
// line charts; these helpers render the same data as terminal plots so
// `harness -plot` output is visually comparable to the paper's figures.

// plotSeries is one named curve.
type plotSeries struct {
	Name   string
	Marker byte
	Points []uint64
}

// asciiPlot renders the series into a height×width grid with a y-axis
// in cycles and a shared x-axis (index). Later series overdraw earlier
// ones where they collide.
func asciiPlot(title string, series []plotSeries, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	maxY := uint64(1)
	n := 0
	for _, s := range series {
		for _, v := range s.Points {
			if v > maxY {
				maxY = v
			}
		}
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	if n == 0 {
		return title + "\n(no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i, v := range s.Points {
			col := 0
			if n > 1 {
				col = i * (width - 1) / (n - 1)
			}
			row := height - 1 - int(v*uint64(height-1)/maxY)
			grid[row][col] = s.Marker
		}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	for r, line := range grid {
		yVal := maxY * uint64(height-1-r) / uint64(height-1)
		fmt.Fprintf(&b, "%10d |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  0%*s\n", "", width-1, fmt.Sprintf("%d", n-1))
	for _, s := range series {
		fmt.Fprintf(&b, "    %c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}

// Plot renders Figure 7 as two stacked charts (unmitigated above,
// mitigated below), mirroring the paper's figure.
func (d *Figure7Data) Plot() string {
	mk := func(ss []Figure7Series, kind string) []plotSeries {
		markers := []byte{'*', 'o', '#'}
		out := make([]plotSeries, len(ss))
		for i, s := range ss {
			out[i] = plotSeries{
				Name:   fmt.Sprintf("%s, %d valid usernames", kind, s.Valid),
				Marker: markers[i%len(markers)],
				Points: s.Times,
			}
		}
		return out
	}
	return asciiPlot("Figure 7 (upper): unmitigated login time vs attempt",
		mk(d.Unmitigated, "unmitigated"), 72, 14) +
		"\n" +
		asciiPlot("Figure 7 (lower): mitigated login time vs attempt",
			mk(d.Mitigated, "mitigated"), 72, 14)
}

// Plot renders Figure 8 as two stacked charts.
func (d *Figure8Data) Plot() string {
	return asciiPlot("Figure 8 (upper): unmitigated RSA decryption time vs message",
		[]plotSeries{
			{Name: fmt.Sprintf("key1 %#x", d.Key1), Marker: '*', Points: d.Unmit1},
			{Name: fmt.Sprintf("key2 %#x", d.Key2), Marker: 'o', Points: d.Unmit2},
		}, 72, 12) +
		"\n" +
		asciiPlot("Figure 8 (lower): mitigated RSA decryption time vs message",
			[]plotSeries{
				{Name: "key1 mitigated", Marker: '*', Points: d.Mit1},
				{Name: "key2 mitigated", Marker: 'o', Points: d.Mit2},
			}, 72, 12)
}

// Plot renders Figure 9's three curves on one chart.
func (d *Figure9Data) Plot() string {
	return asciiPlot("Figure 9: decryption time vs message size",
		[]plotSeries{
			{Name: "unmitigated", Marker: '.', Points: d.Unmitigated},
			{Name: "language-level mitigation", Marker: '*', Points: d.LanguageLevel},
			{Name: "system-level mitigation", Marker: '#', Points: d.SystemLevel},
		}, 60, 16)
}

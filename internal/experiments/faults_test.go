package experiments

import (
	"strings"
	"testing"
)

func TestFaultsExperiment(t *testing.T) {
	d, err := Faults(FaultsConfig{}.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if d.BareSucceeded > d.Requests || d.HardenedSucceeded > d.Requests {
		t.Fatalf("success counts exceed requests: bare=%d hardened=%d of %d",
			d.BareSucceeded, d.HardenedSucceeded, d.Requests)
	}
	// The whole point of the robustness layer: same fault schedule,
	// strictly better availability.
	if d.HardenedSucceeded < d.BareSucceeded {
		t.Errorf("hardened pool (%d ok) did worse than bare pool (%d ok)",
			d.HardenedSucceeded, d.BareSucceeded)
	}
	if d.Snapshot.Faults == 0 {
		t.Error("no faults injected; the schedule did nothing")
	}
	if d.Snapshot.Retries == 0 {
		t.Error("hardened pool never retried despite injected faults")
	}
	out := d.Render()
	for _, want := range []string{"bare availability", "hardened", "fault tolerance:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if len(d.CSVHeader()) != len(d.CSVRows()[0]) {
		t.Errorf("CSV header has %d columns, row has %d", len(d.CSVHeader()), len(d.CSVRows()[0]))
	}
}

func TestFaultsExperimentDeterministic(t *testing.T) {
	a, err := Faults(FaultsConfig{}.Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Faults(FaultsConfig{}.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if a.BareSucceeded != b.BareSucceeded || a.HardenedSucceeded != b.HardenedSucceeded {
		t.Errorf("same seed, different outcomes: (%d,%d) vs (%d,%d)",
			a.BareSucceeded, a.HardenedSucceeded, b.BareSucceeded, b.HardenedSucceeded)
	}
	if a.Snapshot.Faults != b.Snapshot.Faults {
		t.Errorf("same seed, different fault counts: %d vs %d", a.Snapshot.Faults, b.Snapshot.Faults)
	}
}

// Package experiments regenerates every table and figure of the
// paper's evaluation section (§8) on the simulated hardware:
//
//	Table 1  — machine environment parameters
//	Figure 7 — login time across attempts, with and without mitigation
//	Table 2  — login time under {nopar, moff, mon} hardware/mitigation
//	Figure 8 — RSA decryption time for two keys, ± mitigation
//	Figure 9 — language-level vs system-level mitigation
//
// plus the §6–7 leakage-bound experiment (E6 in DESIGN.md). Every
// experiment is deterministic. Absolute cycle counts differ from the
// paper (different simulator); the claims that must reproduce are the
// qualitative shapes, which the experiment tests in this package's
// _test file assert.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

func init() {
	MustRegister(Experiment{
		Name: "table1", Order: 10,
		Summary: "machine environment parameters (§8; text only)",
		Run: func(RunOptions) (*Report, error) {
			return &Report{Text: Table1()}, nil
		},
	})
	MustRegister(Experiment{
		Name: "figure7", Order: 20,
		Summary: "login time across attempts, ± mitigation (§8.2)",
		Run: func(o RunOptions) (*Report, error) {
			cfg := Figure7Config{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			cfg.Parallel = o.Parallel
			d, err := Figure7(cfg)
			if err != nil {
				return nil, err
			}
			text := d.Render()
			if o.Plot {
				text = d.Plot()
			}
			return &Report{Text: text + fig7Summary(d), Data: d}, nil
		},
	})
	MustRegister(Experiment{
		Name: "table2", Order: 30,
		Summary: "login time under {nopar, moff, mon} (§8.2)",
		Run: func(o RunOptions) (*Report, error) {
			cfg := Table2Config{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			d, err := Table2(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
	MustRegister(Experiment{
		Name: "figure8", Order: 40,
		Summary: "RSA decryption time for two keys, ± mitigation (§8.3)",
		Run: func(o RunOptions) (*Report, error) {
			cfg := Figure8Config{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			d, err := Figure8(cfg)
			if err != nil {
				return nil, err
			}
			text := d.Render()
			if o.Plot {
				text = d.Plot()
			}
			return &Report{Text: text, Data: d}, nil
		},
	})
	MustRegister(Experiment{
		Name: "figure9", Order: 50,
		Summary: "language-level vs system-level mitigation (§8.4)",
		Run: func(o RunOptions) (*Report, error) {
			cfg := Figure9Config{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			d, err := Figure9(cfg)
			if err != nil {
				return nil, err
			}
			text := d.Render()
			if o.Plot {
				text = d.Plot()
			}
			return &Report{Text: text, Data: d}, nil
		},
	})
}

// fig7Summary appends the qualitative check — all mitigated curves
// must coincide — to Figure 7's text rendering.
func fig7Summary(d *Figure7Data) string {
	allEqual := true
	for _, s := range d.Mitigated[1:] {
		for i := range s.Times {
			if s.Times[i] != d.Mitigated[0].Times[i] {
				allEqual = false
			}
		}
	}
	return fmt.Sprintf("mitigated curves coincide: %v\n", allEqual)
}

// HWOption names the three configurations of Table 2.
type HWOption int

const (
	// Nopar is commodity hardware without partitions or mitigation —
	// fast and insecure.
	Nopar HWOption = iota
	// Moff is secure partitioned hardware with mitigation off.
	Moff
	// Mon is secure partitioned hardware with mitigation on.
	Mon
)

func (o HWOption) String() string {
	switch o {
	case Nopar:
		return "nopar"
	case Moff:
		return "moff"
	case Mon:
		return "mon"
	}
	return fmt.Sprintf("HWOption(%d)", int(o))
}

func (o HWOption) env(lat lattice.Lattice) hw.Env {
	if o == Nopar {
		return hw.MustEnv("nopar", lat, hw.Table1Config())
	}
	return hw.MustEnv("partitioned", lat, hw.Table1Config())
}

func (o HWOption) mitigate() bool { return o == Mon }

// ---------------------------------------------------------------------------
// Table 1

// Table1 renders the machine-environment parameters actually used by
// the simulator, in the paper's Table 1 format.
func Table1() string {
	cfg := hw.Table1Config()
	var b strings.Builder
	b.WriteString("Table 1: Machine environment parameters\n")
	fmt.Fprintf(&b, "%-18s %8s %7s %11s %9s\n", "Name", "# of sets", "issue", "block size", "latency")
	row := func(name string, sets, assoc, block int, lat uint64, unit string) {
		fmt.Fprintf(&b, "%-18s %8d %6d-way %8d %-4s %3d cycle(s)\n", name, sets, assoc, block, unit, lat)
	}
	row("L1 Data Cache", cfg.Data.L1.Sets, cfg.Data.L1.Assoc, cfg.Data.L1.BlockSize, cfg.Data.L1.HitLatency, "byte")
	row("L2 Data Cache", cfg.Data.L2.Sets, cfg.Data.L2.Assoc, cfg.Data.L2.BlockSize, cfg.Data.L2.HitLatency, "byte")
	row("L1 Inst. Cache", cfg.Instr.L1.Sets, cfg.Instr.L1.Assoc, cfg.Instr.L1.BlockSize, cfg.Instr.L1.HitLatency, "byte")
	row("L2 Inst. Cache", cfg.Instr.L2.Sets, cfg.Instr.L2.Assoc, cfg.Instr.L2.BlockSize, cfg.Instr.L2.HitLatency, "byte")
	row("Data TLB", cfg.Data.TLBSets, cfg.Data.TLBAssoc, cfg.Data.PageSize/1024, cfg.Data.TLBMissPenalty, "KB")
	row("Instruction TLB", cfg.Instr.TLBSets, cfg.Instr.TLBAssoc, cfg.Instr.PageSize/1024, cfg.Instr.TLBMissPenalty, "KB")
	fmt.Fprintf(&b, "Main memory latency: %d cycles (not in the paper's table; see DESIGN.md)\n", cfg.Data.MemLatency)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7: login time with various secrets

// Figure7Series is one curve: per-attempt response times.
type Figure7Series struct {
	Valid int // number of valid usernames in the secret table
	Times []uint64
}

// Figure7Data holds all six curves (3 valid counts × ±mitigation).
type Figure7Data struct {
	Attempts    int
	Unmitigated []Figure7Series
	Mitigated   []Figure7Series
	// Pred1 and Pred2 are the sampled initial predictions used by the
	// mitigated curves.
	Pred1, Pred2 int64
}

// Figure7Config sizes the experiment; zero values take the paper's
// scale (100 attempts, valid ∈ {10, 50, 100}).
type Figure7Config struct {
	App         login.Config
	Attempts    int
	ValidCounts []int
	// Parallel fans the attempts out across goroutines. Each attempt
	// runs on its own cold machine, so parallel execution is safe and
	// bit-for-bit deterministic; results land in attempt order.
	Parallel bool
}

// Defaults fills zero fields with the paper-scale values.
func (c Figure7Config) Defaults() Figure7Config {
	if c.App.TableSize == 0 {
		c.App = login.DefaultConfig()
	}
	if c.Attempts == 0 {
		c.Attempts = 100
	}
	if len(c.ValidCounts) == 0 {
		c.ValidCounts = []int{10, 50, 100}
	}
	return c
}

// Figure7 measures login time for each attempt under each secret
// table, with and without mitigation, on partitioned Table-1 hardware.
func Figure7(cfg Figure7Config) (*Figure7Data, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	app, err := login.Build(cfg.App, lat)
	if err != nil {
		return nil, err
	}
	newEnv := func() hw.Env { return hw.MustEnv("partitioned", lat, hw.Table1Config()) }

	// Sample predictions per §8.2. Figure 7 models independent requests
	// (each attempt starts on a cold machine, as when probing a farm of
	// servers), so the samples are cold runs covering the worst-case
	// paths of both mitigated phases: an unknown user (full table scan)
	// and a wrong password for the last stored user (full verification
	// work after a near-full scan).
	sampleCreds := login.MakeCredentials(cfg.App.TableSize)
	sampleAtts := []login.Attempt{
		{User: sampleCreds[0].User, Pass: sampleCreds[0].Pass},
		{User: sampleCreds[len(sampleCreds)-1].User, Pass: "wrong"},
		{User: "no-such-user", Pass: "x"},
	}
	p1, p2, err := app.SamplePredictions(newEnv, sampleCreds, sampleAtts)
	if err != nil {
		return nil, err
	}

	data := &Figure7Data{Attempts: cfg.Attempts, Pred1: p1, Pred2: p2}
	allUsers := login.MakeCredentials(cfg.Attempts)
	for _, nValid := range cfg.ValidCounts {
		creds := login.MakeCredentials(nValid)
		for _, mit := range []bool{false, true} {
			series := Figure7Series{Valid: nValid, Times: make([]uint64, cfg.Attempts)}
			// Each attempt runs on a cold machine (independent probes).
			measure := func(a int) error {
				att := login.Attempt{User: allUsers[a].User, Pass: allUsers[a].Pass}
				res, err := app.Run(login.RunOptions{
					Env: newEnv(), Mitigate: mit, Pred1: p1, Pred2: p2,
				}, creds, att)
				if err != nil {
					return err
				}
				tm, err := login.ResponseTime(res)
				if err != nil {
					return err
				}
				series.Times[a] = tm
				return nil
			}
			if err := forEachAttempt(cfg.Attempts, cfg.Parallel, measure); err != nil {
				return nil, err
			}
			if mit {
				data.Mitigated = append(data.Mitigated, series)
			} else {
				data.Unmitigated = append(data.Unmitigated, series)
			}
		}
	}
	return data, nil
}

// forEachAttempt runs measure(0..n-1) sequentially or across
// GOMAXPROCS-bounded goroutines, returning the first error.
func forEachAttempt(n int, parallel bool, measure func(int) error) error {
	if !parallel {
		for a := 0; a < n; a++ {
			if err := measure(a); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for a := 0; a < n; a++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(a int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := measure(a); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(a)
	}
	wg.Wait()
	return first
}

// Render formats the figure as a text table: one row per attempt.
func (d *Figure7Data) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: Login time with various secrets (cycles)\n")
	b.WriteString("attempt | unmitigated: ")
	for _, s := range d.Unmitigated {
		fmt.Fprintf(&b, "%7s ", fmt.Sprintf("v=%d", s.Valid))
	}
	b.WriteString("| mitigated: ")
	for _, s := range d.Mitigated {
		fmt.Fprintf(&b, "%7s ", fmt.Sprintf("v=%d", s.Valid))
	}
	b.WriteString("\n")
	for a := 0; a < d.Attempts; a++ {
		fmt.Fprintf(&b, "%7d | ", a)
		for _, s := range d.Unmitigated {
			fmt.Fprintf(&b, "%7d ", s.Times[a])
		}
		b.WriteString("|           ")
		for _, s := range d.Mitigated {
			fmt.Fprintf(&b, "%7d ", s.Times[a])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(sampled predictions: pred1=%d, pred2=%d)\n", d.Pred1, d.Pred2)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2: login time with various usernames and options

// Table2Data holds average login times per hardware/mitigation option.
type Table2Data struct {
	AvgValid   map[HWOption]uint64
	AvgInvalid map[HWOption]uint64
}

// Table2Config sizes the experiment.
type Table2Config struct {
	App      login.Config
	NumValid int
	Attempts int
}

// Defaults fills zero fields with the paper-scale values.
func (c Table2Config) Defaults() Table2Config {
	if c.App.TableSize == 0 {
		c.App = login.DefaultConfig()
	}
	if c.NumValid == 0 {
		c.NumValid = 50
	}
	if c.Attempts == 0 {
		c.Attempts = 50
	}
	return c
}

// Table2 measures average valid/invalid login time under nopar, moff,
// and mon.
func Table2(cfg Table2Config) (*Table2Data, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	app, err := login.Build(cfg.App, lat)
	if err != nil {
		return nil, err
	}
	creds := login.MakeCredentials(cfg.NumValid)
	newPart := func() hw.Env { return hw.MustEnv("partitioned", lat, hw.Table1Config()) }
	// Warm worst-case sampling: the discarded warm-up attempt is a
	// valid login so it warms the verification work table too; the
	// measured samples then cover the warm full-scan and full-work
	// paths.
	fullTable := login.MakeCredentials(cfg.App.TableSize)
	sampleAtts := []login.Attempt{
		{User: fullTable[0].User, Pass: fullTable[0].Pass},
		{User: fullTable[len(fullTable)-1].User, Pass: "wrong"},
		{User: "no-such-user", Pass: "x"},
	}
	p1, p2, err := app.SamplePredictionsWarm(newPart(), fullTable, sampleAtts)
	if err != nil {
		return nil, err
	}

	data := &Table2Data{
		AvgValid:   make(map[HWOption]uint64),
		AvgInvalid: make(map[HWOption]uint64),
	}
	for _, opt := range []HWOption{Nopar, Moff, Mon} {
		var sumV, nV, sumI, nI uint64
		// One persistent environment per option: the server stays warm
		// across the request sequence. One unmeasured warm-up request
		// brings it to steady state.
		env := opt.env(lat)
		warmup := login.Attempt{User: creds[0].User, Pass: creds[0].Pass}
		if _, err := app.Run(login.RunOptions{
			Env: env, Mitigate: opt.mitigate(), Pred1: p1, Pred2: p2,
		}, creds, warmup); err != nil {
			return nil, err
		}
		for a := 0; a < cfg.Attempts; a++ {
			// Valid attempt: one of the stored credentials.
			attV := login.Attempt{User: creds[a%len(creds)].User, Pass: creds[a%len(creds)].Pass}
			resV, err := app.Run(login.RunOptions{
				Env: env, Mitigate: opt.mitigate(), Pred1: p1, Pred2: p2,
			}, creds, attV)
			if err != nil {
				return nil, err
			}
			tV, err := login.ResponseTime(resV)
			if err != nil {
				return nil, err
			}
			sumV += tV
			nV++
			// Invalid attempt.
			attI := login.Attempt{User: fmt.Sprintf("ghost-%03d", a), Pass: "x"}
			resI, err := app.Run(login.RunOptions{
				Env: env, Mitigate: opt.mitigate(), Pred1: p1, Pred2: p2,
			}, creds, attI)
			if err != nil {
				return nil, err
			}
			tI, err := login.ResponseTime(resI)
			if err != nil {
				return nil, err
			}
			sumI += tI
			nI++
		}
		data.AvgValid[opt] = sumV / nV
		data.AvgInvalid[opt] = sumI / nI
	}
	return data, nil
}

// OverheadValid returns avg-valid(opt) / avg-valid(nopar), the
// "overhead (valid)" row of Table 2.
func (d *Table2Data) OverheadValid(opt HWOption) float64 {
	return float64(d.AvgValid[opt]) / float64(d.AvgValid[Nopar])
}

// Render formats the table like the paper's Table 2.
func (d *Table2Data) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: Login time with various usernames and options (in clock cycles)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s\n", "", "nopar", "moff", "mon")
	fmt.Fprintf(&b, "%-22s %10d %10d %10d\n", "ave. time (valid)",
		d.AvgValid[Nopar], d.AvgValid[Moff], d.AvgValid[Mon])
	fmt.Fprintf(&b, "%-22s %10d %10d %10d\n", "ave. time (invalid)",
		d.AvgInvalid[Nopar], d.AvgInvalid[Moff], d.AvgInvalid[Mon])
	fmt.Fprintf(&b, "%-22s %10.2f %10.2f %10.2f\n", "overhead (valid)",
		1.0, d.OverheadValid(Moff), d.OverheadValid(Mon))
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8: RSA decryption time with two keys

// Figure8Data holds per-message decryption times for two keys, with
// and without mitigation.
type Figure8Data struct {
	Messages       int
	Key1, Key2     int64
	Unmit1, Unmit2 []uint64
	Mit1, Mit2     []uint64
	Pred           int64
}

// Figure8Config sizes the experiment.
type Figure8Config struct {
	App      rsa.Config
	Messages int
	Blocks   int
	Key1     int64
	Key2     int64
}

// Defaults fills zero fields with the paper-scale values.
func (c Figure8Config) Defaults() Figure8Config {
	if c.App.MaxBlocks == 0 {
		c.App = rsa.DefaultConfig()
	}
	if c.Messages == 0 {
		c.Messages = 100
	}
	if c.Blocks == 0 {
		c.Blocks = 4
	}
	if c.Key1 == 0 {
		c.Key1 = 0x7FFFFFFFFFFF6FFD // dense 63-bit key: many multiply steps
	}
	if c.Key2 == 0 {
		c.Key2 = 0x4000000000000081 // sparse 63-bit key: few multiply steps
	}
	return c
}

// Figure8 measures decryption time of each message under both keys.
func Figure8(cfg Figure8Config) (*Figure8Data, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	app, err := rsa.Build(cfg.App, rsa.LanguageLevel, lat)
	if err != nil {
		return nil, err
	}
	newEnv := func() hw.Env { return hw.MustEnv("partitioned", lat, hw.Table1Config()) }
	pred, err := app.SamplePrediction(newEnv,
		[]int64{cfg.Key1, cfg.Key2},
		[][]int64{rsa.Message(cfg.Blocks, 1), rsa.Message(cfg.Blocks, 2)})
	if err != nil {
		return nil, err
	}
	data := &Figure8Data{Messages: cfg.Messages, Key1: cfg.Key1, Key2: cfg.Key2, Pred: pred}
	run := func(key int64, msgIdx int, mit bool) (uint64, error) {
		res, err := app.Run(newEnv(), key, rsa.Message(cfg.Blocks, int64(msgIdx)), pred, mit)
		if err != nil {
			return 0, err
		}
		return rsa.ResponseTime(res)
	}
	for i := 0; i < cfg.Messages; i++ {
		for _, mit := range []bool{false, true} {
			t1, err := run(cfg.Key1, i, mit)
			if err != nil {
				return nil, err
			}
			t2, err := run(cfg.Key2, i, mit)
			if err != nil {
				return nil, err
			}
			if mit {
				data.Mit1 = append(data.Mit1, t1)
				data.Mit2 = append(data.Mit2, t2)
			} else {
				data.Unmit1 = append(data.Unmit1, t1)
				data.Unmit2 = append(data.Unmit2, t2)
			}
		}
	}
	return data, nil
}

// Render formats the figure as a text table.
func (d *Figure8Data) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: RSA decryption time with two private keys (cycles)\n")
	fmt.Fprintf(&b, "message | unmit key1=%#x  unmit key2=%#x | mit key1    mit key2\n", d.Key1, d.Key2)
	for i := 0; i < d.Messages; i++ {
		fmt.Fprintf(&b, "%7d | %15d %16d | %9d %11d\n",
			i, d.Unmit1[i], d.Unmit2[i], d.Mit1[i], d.Mit2[i])
	}
	fmt.Fprintf(&b, "(sampled prediction: %d)\n", d.Pred)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 9: language-level vs system-level mitigation

// Figure9Data holds decryption times by message size for the two
// mitigation granularities (plus the unmitigated reference).
type Figure9Data struct {
	Blocks        []int
	LanguageLevel []uint64
	SystemLevel   []uint64
	Unmitigated   []uint64
}

// Figure9Config sizes the experiment.
type Figure9Config struct {
	App       rsa.Config
	MaxBlocks int
	Key       int64
}

// Defaults fills zero fields with the paper-scale values.
func (c Figure9Config) Defaults() Figure9Config {
	if c.App.MaxBlocks == 0 {
		c.App = rsa.DefaultConfig()
	}
	if c.MaxBlocks == 0 {
		c.MaxBlocks = c.App.MaxBlocks
	}
	if c.Key == 0 {
		c.Key = 0x6D2B79F5DEECE66D // 63-bit key: exponentiation dominates
	}
	return c
}

// Figure9 measures decryption time for message sizes 1..MaxBlocks
// under language-level and system-level mitigation.
func Figure9(cfg Figure9Config) (*Figure9Data, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	langApp, err := rsa.Build(cfg.App, rsa.LanguageLevel, lat)
	if err != nil {
		return nil, err
	}
	sysApp, err := rsa.Build(cfg.App, rsa.SystemLevel, lat)
	if err != nil {
		return nil, err
	}
	newEnv := func() hw.Env { return hw.MustEnv("partitioned", lat, hw.Table1Config()) }
	perBlock, err := langApp.SamplePrediction(newEnv,
		[]int64{cfg.Key}, [][]int64{rsa.Message(1, 1)})
	if err != nil {
		return nil, err
	}
	// The system-level mitigator cannot distinguish the benign timing
	// variation due to (public) message length from secret-dependent
	// variation, so it calibrates on the average over the whole
	// workload distribution — and then over- or under-predicts every
	// individual size, paying doubling penalties (§8.4, Fig. 9).
	var sizes [][]int64
	for n := 1; n <= cfg.MaxBlocks; n++ {
		sizes = append(sizes, rsa.Message(n, int64(n)))
	}
	sysAvg, _, err := sysApp.SampleElapsed(newEnv, []int64{cfg.Key}, sizes)
	if err != nil {
		return nil, err
	}
	whole := sysAvg * 110 / 100
	data := &Figure9Data{}
	for n := 1; n <= cfg.MaxBlocks; n++ {
		msg := rsa.Message(n, int64(n))
		lr, err := langApp.Run(newEnv(), cfg.Key, msg, perBlock, true)
		if err != nil {
			return nil, err
		}
		lt, err := rsa.ResponseTime(lr)
		if err != nil {
			return nil, err
		}
		sr, err := sysApp.Run(newEnv(), cfg.Key, msg, whole, true)
		if err != nil {
			return nil, err
		}
		st, err := rsa.ResponseTime(sr)
		if err != nil {
			return nil, err
		}
		ur, err := langApp.Run(newEnv(), cfg.Key, msg, perBlock, false)
		if err != nil {
			return nil, err
		}
		ut, err := rsa.ResponseTime(ur)
		if err != nil {
			return nil, err
		}
		data.Blocks = append(data.Blocks, n)
		data.LanguageLevel = append(data.LanguageLevel, lt)
		data.SystemLevel = append(data.SystemLevel, st)
		data.Unmitigated = append(data.Unmitigated, ut)
	}
	return data, nil
}

// Render formats the figure as a text table.
func (d *Figure9Data) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: Language-level vs. system-level mitigation (cycles)\n")
	fmt.Fprintf(&b, "%7s %14s %14s %14s\n", "blocks", "unmitigated", "language", "system")
	for i, n := range d.Blocks {
		fmt.Fprintf(&b, "%7d %14d %14d %14d\n", n, d.Unmitigated[i], d.LanguageLevel[i], d.SystemLevel[i])
	}
	return b.String()
}

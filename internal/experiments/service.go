package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/login"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/sem/mem"
	"repro/internal/server"
)

func init() {
	MustRegister(Experiment{
		Name: "service", Order: 70,
		Summary: "serial server vs sharded pool: determinism and speedup",
		Run: func(o RunOptions) (*Report, error) {
			cfg := ServiceConfig{}
			if o.Quick {
				cfg = cfg.Quick()
			}
			cfg.Engine = o.Engine
			d, err := Service(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

// ServiceData holds the service-layer experiment: the same login
// workload through a serial server and a sharded pool, with per-shard
// determinism verified and the pool's instrumentation snapshot.
type ServiceData struct {
	Requests int
	Workers  int
	// Engine names the execution engine the servers ran ("tree"/"vm").
	Engine string
	// SerialWall and PoolWall are host wall-clock times; their ratio is
	// the observed speedup (≈1 on a single-CPU host, approaching
	// Workers on machines with that many cores — the simulated cycle
	// counts are identical either way).
	SerialWall, PoolWall time.Duration
	// Deterministic is true when every shard's responses matched the
	// serial reference run over that shard's subsequence exactly.
	Deterministic bool
	// SettledByShard is each shard's convergence point (see
	// server.SettledAfter).
	SettledByShard []int
	// Snapshot is the pool's pooled instrumentation. It is excluded
	// from JSON in favor of the stable Export schema below.
	Snapshot obs.Snapshot `json:"-"`
	// Export is the versioned, JSON-stable form of Snapshot — the only
	// shape external consumers of the harness JSON should parse.
	Export obs.Export
}

// ServiceConfig sizes the experiment.
type ServiceConfig struct {
	App      login.Config
	Requests int
	Workers  int
	// HW names the machine environment in the hw registry; default
	// "partitioned".
	HW string
	// Engine names the execution engine in the exec registry; default
	// "tree". "vm" runs the compiled-bytecode hot path.
	Engine string
}

// Defaults fills zero fields with the paper-scale values.
func (c ServiceConfig) Defaults() ServiceConfig {
	if c.App.TableSize == 0 {
		c.App = login.DefaultConfig()
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.HW == "" {
		c.HW = "partitioned"
	}
	if c.Engine == "" {
		c.Engine = "tree"
	}
	return c
}

// Quick returns the reduced-scale service configuration.
func (c ServiceConfig) Quick() ServiceConfig {
	c.App = login.Config{TableSize: 16, WorkFactor: 48, WorkTableSize: 256}
	c.Requests = 32
	c.Workers = 4
	return c
}

// Service runs the login workload through the serial server and a
// sharded pool, checking shard-by-shard determinism against serial
// references and collecting the instrumentation snapshot.
func Service(cfg ServiceConfig) (*ServiceData, error) {
	cfg = cfg.Defaults()
	lat := lattice.TwoPoint()
	app, err := login.Build(cfg.App, lat)
	if err != nil {
		return nil, err
	}
	creds := login.MakeCredentials(cfg.App.TableSize)
	reqs := make([]server.Request, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		att := login.Attempt{User: creds[i%len(creds)].User, Pass: creds[i%len(creds)].Pass}
		if i%3 == 0 {
			att.Pass = "wrong"
		}
		reqs[i] = func(m *mem.Memory) { app.Setup(m, creds, att, 1, 1) }
	}
	newEnv := func() (hw.Env, error) { return hw.NewEnv(cfg.HW, lat, hw.Table1Config()) }
	ctx := context.Background()

	// Serial reference over the whole sequence (for wall-clock).
	env, err := newEnv()
	if err != nil {
		return nil, err
	}
	serial, err := server.New(app.Prog, app.Res, server.Options{Env: env, Engine: cfg.Engine})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := serial.HandleAll(ctx, reqs); err != nil {
		return nil, err
	}
	serialWall := time.Since(start)

	// The pool over the same sequence.
	env, err = newEnv()
	if err != nil {
		return nil, err
	}
	pool, err := server.NewPool(app.Prog, app.Res, server.PoolOptions{
		Workers: cfg.Workers,
		Options: server.Options{Env: env, Engine: cfg.Engine},
	})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	resps, err := pool.HandleAll(ctx, reqs)
	if err != nil {
		return nil, err
	}
	poolWall := time.Since(start)
	pool.Close()

	data := &ServiceData{
		Requests:   cfg.Requests,
		Workers:    cfg.Workers,
		Engine:     cfg.Engine,
		SerialWall: serialWall,
		PoolWall:   poolWall,
		Snapshot:   pool.Snapshot(),
	}
	data.Export = data.Snapshot.Export()

	// Shard-by-shard determinism: each shard's responses must match a
	// serial reference run over that shard's round-robin subsequence.
	byShard := make([][]*server.Response, cfg.Workers)
	for _, r := range resps {
		byShard[r.Shard] = append(byShard[r.Shard], r)
	}
	data.Deterministic = true
	for shard := 0; shard < cfg.Workers; shard++ {
		env, err := newEnv()
		if err != nil {
			return nil, err
		}
		ref, err := server.New(app.Prog, app.Res, server.Options{Env: env, Engine: cfg.Engine})
		if err != nil {
			return nil, err
		}
		for k, i := 0, shard; i < len(reqs); k, i = k+1, i+cfg.Workers {
			want, err := ref.Handle(ctx, reqs[i])
			if err != nil {
				return nil, err
			}
			got := byShard[shard][k]
			if got.Time != want.Time || got.Mispredictions != want.Mispredictions {
				data.Deterministic = false
			}
		}
		data.SettledByShard = append(data.SettledByShard, server.SettledAfter(byShard[shard]))
	}
	return data, nil
}

// Speedup is the serial/pool wall-clock ratio.
func (d *ServiceData) Speedup() float64 {
	if d.PoolWall == 0 {
		return 0
	}
	return float64(d.SerialWall) / float64(d.PoolWall)
}

// Render formats the experiment.
func (d *ServiceData) Render() string {
	var b strings.Builder
	b.WriteString("Service layer: sharded mitigation pool\n")
	fmt.Fprintf(&b, "requests:            %d across %d shards (%s engine)\n",
		d.Requests, d.Workers, d.Engine)
	fmt.Fprintf(&b, "serial wall-clock:   %v\n", d.SerialWall)
	fmt.Fprintf(&b, "pool wall-clock:     %v (speedup %.2fx; bounded by host cores)\n",
		d.PoolWall, d.Speedup())
	fmt.Fprintf(&b, "shard determinism:   %v (each shard == serial reference)\n", d.Deterministic)
	fmt.Fprintf(&b, "settled by shard:    %v\n", d.SettledByShard)
	b.WriteString("\ninstrumentation snapshot:\n")
	b.WriteString(d.Snapshot.String())
	return b.String()
}

// CSVHeader implements CSV for the service experiment.
func (d *ServiceData) CSVHeader() []string {
	return []string{"requests", "workers", "engine", "serial_wall_ns", "pool_wall_ns", "speedup",
		"deterministic", "mitigations", "mispredictions", "padding_cycles", "useful_cycles"}
}

// CSVRows implements CSV for the service experiment.
func (d *ServiceData) CSVRows() [][]string {
	return [][]string{{
		strconv.Itoa(d.Requests),
		strconv.Itoa(d.Workers),
		d.Engine,
		strconv.FormatInt(d.SerialWall.Nanoseconds(), 10),
		strconv.FormatInt(d.PoolWall.Nanoseconds(), 10),
		strconv.FormatFloat(d.Speedup(), 'f', 4, 64),
		strconv.FormatBool(d.Deterministic),
		u(d.Snapshot.Mitigations),
		u(d.Snapshot.Mispredictions),
		u(d.Snapshot.PaddingCycles),
		u(d.Snapshot.UsefulCycles()),
	}}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/transport/client"
	"repro/internal/transport/wire"
	"repro/internal/types"
)

func init() {
	MustRegister(Experiment{
		Name: "sessions", Order: 100,
		Summary: "per-tenant leakage accounts and budget enforcement",
		Run: func(o RunOptions) (*Report, error) {
			cfg := SessionsConfig{Seed: o.Seed}
			if o.Quick {
				cfg = cfg.Quick()
				cfg.Seed = o.Seed
			}
			cfg.Engine = o.Engine
			d, err := Sessions(cfg)
			if err != nil {
				return nil, err
			}
			return &Report{Text: d.Render(), Data: d}, nil
		},
	})
}

// SessionTrace is one tenant's view of its session: the per-request
// epoch and cumulative leakage the service reported, plus what the
// client can recompute on its own.
type SessionTrace struct {
	Tenant string
	// Epochs and LeakageBits are the session fields of each successful
	// response, in submission order.
	Epochs      []int
	LeakageBits []float64
	// Denials counts leakage_budget_exceeded rejections; RetryAfter is
	// the advertised wait of the first one.
	Denials    int
	RetryAfter time.Duration
	// CumTime and CumMitigations are the client-side tallies of the
	// tenant's observable cost — the K and T of the §7 bound, recomputed
	// from the responses rather than trusted from the server.
	CumTime        uint64
	CumMitigations int
}

// SessionsData holds the tenant-sessions experiment.
type SessionsData struct {
	// GreedyRequests and ModestRequests are the two tenants' submission
	// counts. Mitigation makes per-request time nearly secret-independent
	// (that is its job), so the §7 bound is driven by how many mitigated
	// observations a tenant collects — the budget is in effect a request
	// envelope, and the greedy tenant blows through it.
	GreedyRequests int
	ModestRequests int
	Workers        int
	Engine         string
	BudgetBits     float64
	TTL            time.Duration
	Seed           int64
	// Traces holds the greedy tenant (large secret-dependent variation,
	// meant to exhaust the budget) first and the modest tenant second.
	Traces []SessionTrace
	// IndependentEpochs is true when every tenant saw epochs 1,2,3,...
	// over its own successes, regardless of interleaving.
	IndependentEpochs bool
	// BoundMatches is true when the server-reported cumulative leakage
	// of every response equals the §7 bound recomputed client-side from
	// the response stream (same closure, K, T).
	BoundMatches bool
	// GreedyDenied and ModestUnaffected summarize enforcement: the
	// greedy tenant ran into 429s; the modest tenant, on the very same
	// service and budget, never did.
	GreedyDenied     bool
	ModestUnaffected bool
	// Deterministic is true when a second run against a fresh service
	// with the same seed reproduced every trace exactly.
	Deterministic bool
	// Export is the service's metrics after the first run.
	Export obs.Export
}

// SessionsConfig sizes the experiment.
type SessionsConfig struct {
	// GreedyRequests sizes the tenant meant to exhaust the budget;
	// ModestRequests the tenant meant to finish under it.
	GreedyRequests int
	ModestRequests int
	Workers        int
	// BudgetBits is the per-tenant leakage budget; the greedy tenant is
	// sized to exhaust it, the modest one to stay under.
	BudgetBits float64
	// TTL is the session idle lifetime (sets Retry-After on denials).
	TTL time.Duration
	// Engine names the execution engine; default "tree".
	Engine string
	// Seed drives the deterministic secret sequences.
	Seed int64
}

// Defaults fills zero fields.
func (c SessionsConfig) Defaults() SessionsConfig {
	if c.GreedyRequests == 0 {
		c.GreedyRequests = 24
	}
	if c.ModestRequests == 0 {
		c.ModestRequests = 8
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.BudgetBits == 0 {
		c.BudgetBits = 50
	}
	if c.TTL == 0 {
		c.TTL = time.Minute
	}
	if c.Engine == "" {
		c.Engine = "tree"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Quick returns the reduced-scale sessions configuration.
func (c SessionsConfig) Quick() SessionsConfig {
	c.GreedyRequests = 12
	c.ModestRequests = 4
	c.Workers = 2
	c.BudgetBits = 40
	return c
}

// sessionsService starts the HTTP service over networkSrc with a
// session manager attached, returning the base URL, the metrics
// handle, and a shutdown function.
func sessionsService(cfg SessionsConfig) (string, *obs.Metrics, func() error, error) {
	p, err := parser.Parse(networkSrc)
	if err != nil {
		return "", nil, nil, err
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		return "", nil, nil, err
	}
	met := obs.NewMetrics()
	pool, err := server.NewPool(p, r, server.PoolOptions{
		Workers: cfg.Workers,
		Options: server.Options{
			Env:     hw.NewPartitioned(r.Lat, hw.Table1Config()),
			Engine:  cfg.Engine,
			Metrics: met,
		},
	})
	if err != nil {
		return "", nil, nil, err
	}
	mgr, err := session.NewManager(session.Options{
		Lat:        r.Lat,
		BudgetBits: cfg.BudgetBits,
		TTL:        cfg.TTL,
		Metrics:    met,
	})
	if err != nil {
		pool.Close()
		return "", nil, nil, err
	}
	h, err := transport.New(transport.Options{Pool: pool, Prog: p, Sessions: mgr})
	if err != nil {
		pool.Close()
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		pool.Close()
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := h.Shutdown(ctx); err != nil {
			return err
		}
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), met, stop, nil
}

// sessionSecret is tenant t's i-th secret: greedy tenants draw from
// the full 6-bit range (maximum timing variation, fast budget burn),
// modest tenants from a 3-bit range. Deterministic in (seed, t, i).
func sessionSecret(seed int64, greedy bool, i int) int64 {
	h := int64(fault.Mix64(uint64(seed), uint64(i+1)) % 64)
	if !greedy {
		h %= 8
	}
	return h
}

// sessionsRun drives both tenants' request sequences concurrently
// against one fresh service and returns their traces. The two streams
// interleave on the wire; each tenant's own sequence is serial, so its
// trace is deterministic.
func sessionsRun(cfg SessionsConfig) ([]SessionTrace, obs.Export, error) {
	base, met, stop, err := sessionsService(cfg)
	if err != nil {
		return nil, obs.Export{}, err
	}
	defer stop()
	ctx := context.Background()

	tenants := []struct {
		name   string
		greedy bool
		count  int
	}{{"greedy", true, cfg.GreedyRequests}, {"modest", false, cfg.ModestRequests}}
	traces := make([]SessionTrace, len(tenants))
	errc := make(chan error, len(tenants))
	for ti := range tenants {
		go func(ti int) {
			tn := tenants[ti]
			tr := SessionTrace{Tenant: tn.name}
			c := client.New(base, client.Options{Tenant: tn.name})
			for i := 0; i < tn.count; i++ {
				resp, err := c.Run(ctx, wire.RunRequest{
					Inputs:      map[string]int64{"h": sessionSecret(cfg.Seed, tn.greedy, i)},
					Mitigations: true,
				})
				if err != nil {
					var cerr *client.Error
					if errors.Is(err, client.ErrLeakageBudget) && errors.As(err, &cerr) {
						if tr.Denials == 0 {
							tr.RetryAfter = cerr.RetryAfter
						}
						tr.Denials++
						continue
					}
					errc <- fmt.Errorf("tenant %s request %d: %w", tn.name, i, err)
					return
				}
				tr.Epochs = append(tr.Epochs, resp.Epoch)
				tr.LeakageBits = append(tr.LeakageBits, resp.LeakageBits)
				tr.CumTime += resp.Time
				tr.CumMitigations += len(resp.Mitigations)
			}
			traces[ti] = tr
			errc <- nil
		}(ti)
	}
	for range tenants {
		if err := <-errc; err != nil {
			return nil, obs.Export{}, err
		}
	}
	return traces, met.Snapshot().Export(), nil
}

// Sessions runs two tenants — one sized to exhaust the leakage budget,
// one to stay under it — through the session-enabled HTTP service,
// verifies the reported accounts against the §7 bound recomputed
// client-side, and replays the whole experiment on a fresh service to
// check determinism.
func Sessions(cfg SessionsConfig) (*SessionsData, error) {
	cfg = cfg.Defaults()
	traces, export, err := sessionsRun(cfg)
	if err != nil {
		return nil, err
	}
	data := &SessionsData{
		GreedyRequests: cfg.GreedyRequests,
		ModestRequests: cfg.ModestRequests,
		Workers:        cfg.Workers,
		Engine:         cfg.Engine,
		BudgetBits:     cfg.BudgetBits,
		TTL:            cfg.TTL,
		Seed:           cfg.Seed,
		Traces:         traces,
		Export:         export,
	}

	// Epoch independence: each tenant counts 1,2,3,... over its own
	// successes no matter how the streams interleaved on the service.
	data.IndependentEpochs = true
	for _, tr := range traces {
		for i, e := range tr.Epochs {
			if e != i+1 {
				data.IndependentEpochs = false
			}
		}
	}

	// Bound verification: replay each tenant's response stream and
	// recompute the §7 bound from the client-side K and T tallies; the
	// final reported figure must match. (The per-request figures are
	// checked in the package tests; here the end state suffices, since
	// any intermediate mismatch shifts the final K or T.)
	data.BoundMatches = true
	closure := lattice.TwoPoint().Size() - 1
	for _, tr := range traces {
		if len(tr.LeakageBits) == 0 {
			continue
		}
		want := leakage.Bound(closure, tr.CumMitigations, tr.CumTime)
		got := tr.LeakageBits[len(tr.LeakageBits)-1]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			data.BoundMatches = false
		}
	}

	data.GreedyDenied = traces[0].Denials > 0
	data.ModestUnaffected = traces[1].Denials == 0

	// Determinism: a fresh service, same seed — every trace must replay
	// exactly (epochs, leakage figures, denial counts).
	replay, _, err := sessionsRun(cfg)
	if err != nil {
		return nil, err
	}
	data.Deterministic = tracesEqual(traces, replay)
	return data, nil
}

// tracesEqual compares two runs' traces field by field.
func tracesEqual(a, b []SessionTrace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Tenant != y.Tenant || x.Denials != y.Denials ||
			x.CumTime != y.CumTime || x.CumMitigations != y.CumMitigations ||
			len(x.Epochs) != len(y.Epochs) {
			return false
		}
		for j := range x.Epochs {
			if x.Epochs[j] != y.Epochs[j] || x.LeakageBits[j] != y.LeakageBits[j] {
				return false
			}
		}
	}
	return true
}

// Render formats the experiment.
func (d *SessionsData) Render() string {
	var b strings.Builder
	b.WriteString("Tenant sessions: per-tenant leakage accounts over HTTP\n")
	fmt.Fprintf(&b, "tenants:             greedy %d requests, modest %d, across %d shards (%s engine)\n",
		d.GreedyRequests, d.ModestRequests, d.Workers, d.Engine)
	fmt.Fprintf(&b, "budget:              %.1f bits per tenant, session TTL %v, seed %d\n",
		d.BudgetBits, d.TTL, d.Seed)
	for _, tr := range d.Traces {
		last := 0.0
		if n := len(tr.LeakageBits); n > 0 {
			last = tr.LeakageBits[n-1]
		}
		fmt.Fprintf(&b, "tenant %-8s       %d served, %d denied; leakage %.2f bits (K=%d, T=%d)\n",
			tr.Tenant+":", len(tr.Epochs), tr.Denials, last, tr.CumMitigations, tr.CumTime)
		fmt.Fprintf(&b, "  leakage curve:     %s\n", spark(tr.LeakageBits))
	}
	if len(d.Traces) > 0 && d.Traces[0].Denials > 0 {
		fmt.Fprintf(&b, "denial retry-after:  %v (the session TTL)\n", d.Traces[0].RetryAfter)
	}
	fmt.Fprintf(&b, "independent epochs:  %v\n", d.IndependentEpochs)
	fmt.Fprintf(&b, "bound verified:      %v (client-side §7 recomputation)\n", d.BoundMatches)
	fmt.Fprintf(&b, "enforcement:         greedy denied=%v, modest unaffected=%v\n",
		d.GreedyDenied, d.ModestUnaffected)
	fmt.Fprintf(&b, "deterministic:       %v (fresh service, same seed)\n", d.Deterministic)
	fmt.Fprintf(&b, "service accounting:  %d sessions created, %d budget denials\n",
		d.Export.SessionsCreated, d.Export.BudgetDenials)
	return b.String()
}

// spark renders a value sequence as a one-line sparkline — enough to
// see the log-shaped growth of the cumulative bound.
func spark(vs []float64) string {
	if len(vs) == 0 {
		return "(no successes)"
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := vs[0]
	for _, v := range vs {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(vs))
	}
	var b strings.Builder
	for _, v := range vs {
		b.WriteRune(ramp[int(v/max*float64(len(ramp)-1))])
	}
	return b.String()
}

// CSVHeader implements CSV for the sessions experiment.
func (d *SessionsData) CSVHeader() []string {
	return []string{"tenant", "served", "denied", "leakage_bits", "k", "t",
		"budget_bits", "independent_epochs", "bound_matches", "deterministic"}
}

// CSVRows implements CSV for the sessions experiment.
func (d *SessionsData) CSVRows() [][]string {
	rows := make([][]string, 0, len(d.Traces))
	for _, tr := range d.Traces {
		last := 0.0
		if n := len(tr.LeakageBits); n > 0 {
			last = tr.LeakageBits[n-1]
		}
		rows = append(rows, []string{
			tr.Tenant,
			strconv.Itoa(len(tr.Epochs)),
			strconv.Itoa(tr.Denials),
			strconv.FormatFloat(last, 'f', 4, 64),
			strconv.Itoa(tr.CumMitigations),
			strconv.FormatUint(tr.CumTime, 10),
			strconv.FormatFloat(d.BudgetBits, 'f', 1, 64),
			strconv.FormatBool(d.IndependentEpochs),
			strconv.FormatBool(d.BoundMatches),
			strconv.FormatBool(d.Deterministic),
		})
	}
	return rows
}

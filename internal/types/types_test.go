package types

import (
	"strings"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func mustCheck(t *testing.T, src string) *Result {
	t.Helper()
	p := parse(t, src)
	r, err := Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatalf("Check failed: %v", err)
	}
	return r
}

func mustFail(t *testing.T, src, wantSubstr string) error {
	t.Helper()
	p := parse(t, src)
	_, err := Check(p, lattice.TwoPoint())
	if err == nil {
		t.Fatalf("Check unexpectedly succeeded for:\n%s", src)
	}
	if wantSubstr != "" && !strings.Contains(err.Error(), wantSubstr) {
		t.Errorf("error %q does not mention %q", err, wantSubstr)
	}
	return err
}

func TestSimpleLowProgram(t *testing.T) {
	r := mustCheck(t, `
var l : L;
l := 1;
l := l + 2;
`)
	if r.End != r.Lat.Bot() {
		t.Errorf("end label = %v, want L", r.End)
	}
}

func TestExplicitFlowRejected(t *testing.T) {
	mustFail(t, `
var h : H;
var l : L;
l := h;
`, "leaks")
}

func TestImplicitFlowRejected(t *testing.T) {
	mustFail(t, `
var h : H;
var l : L;
if (h) [H,H] { l := 1 [H,H]; } else { l := 0 [H,H]; }
`, "leaks")
}

// The paper's §2.2 example: branches in a high context must not have a
// low write label — the hardware would record the branch in low cache
// state (an implicit flow into the machine environment).
func TestPaperCacheImplicitFlow(t *testing.T) {
	mustFail(t, `
var h1 : H;
var h2 : H;
var l1 : L;
var l2 : L;
var l3 : L;
if (h1) [L,L] {
    h2 := l1 [L,L];
} else {
    h2 := l2 [L,L];
}
l3 := l1 [L,L];
`, "write label")
}

// The secure annotation of the same example: high write labels inside
// the high context. The trailing low assignment still fails because the
// if's timing depends on h1 — exactly the residual external timing
// channel the paper mitigates with mitigate.
func TestPaperCacheExampleNeedsMitigation(t *testing.T) {
	mustFail(t, `
var h1 : H;
var h2 : H;
var l1 : L;
var l2 : L;
var l3 : L;
if (h1) [H,H] {
    h2 := l1 [H,H];
} else {
    h2 := l2 [H,H];
}
l3 := l1 [L,L];
`, "leaks")
}

func TestPaperCacheExampleWithMitigation(t *testing.T) {
	mustCheck(t, `
var h1 : H;
var h2 : H;
var l1 : L;
var l2 : L;
var l3 : L;
mitigate (10, H) [L,L] {
    if (h1) [H,H] {
        h2 := l1 [H,H];
    } else {
        h2 := l2 [H,H];
    }
}
l3 := l1 [L,L];
`)
}

// sleep(h) taints timing at level H (§2.3).
func TestSleepTaintsTiming(t *testing.T) {
	mustFail(t, `
var h : H;
var l : L;
sleep(h) [H,H];
l := 1;
`, "leaks")
	mustCheck(t, `
var h : H;
var l : L;
mitigate (1, H) [L,L] { sleep(h) [H,H]; }
l := 1;
`)
}

// Loops with high guards are permitted (unlike code-transformation
// approaches) — the timing end label just becomes high.
func TestHighGuardLoopAllowed(t *testing.T) {
	r := mustCheck(t, `
var h : H;
var acc : H;
while (h > 0) [H,H] {
    acc := acc + h [H,H];
    h := h - 1 [H,H];
}
`)
	top := r.Lat.Top()
	if r.End != top {
		t.Errorf("end label = %v, want H", r.End)
	}
}

func TestHighGuardLoopThenLowAssignRejected(t *testing.T) {
	mustFail(t, `
var h : H;
var l : L;
while (h > 0) [H,H] { h := h - 1 [H,H]; }
l := 1;
`, "leaks")
}

func TestWhileFixpointLowLoop(t *testing.T) {
	// A low loop whose body stays low: end label must be L.
	r := mustCheck(t, `
var i : L;
var s : L;
while (i < 10) [L,L] {
    s := s + i;
    i := i + 1;
}
s := s + 1;
`)
	if r.End != r.Lat.Bot() {
		t.Errorf("end = %v, want L", r.End)
	}
}

func TestWhileBodyRaisesTiming(t *testing.T) {
	// The loop guard is low but the body reads high into timing via a
	// high-read-label skip; the loop's end label must rise to H, and
	// since the body restarts at the end label, the body's low
	// assignment must be rejected at the fixed point.
	mustFail(t, `
var i : L;
var l : L;
var h : H;
while (i < 10) [L,L] {
    sleep(h) [H,H];
    l := l + 1 [L,L];
    i := i + 1 [H,H];
}
`, "leaks")
}

func TestMitigateBodyLevelBound(t *testing.T) {
	// Mitigation level L cannot cover an H-timed body.
	mustFail(t, `
var h : H;
mitigate (1, L) [L,L] { sleep(h) [H,H]; }
`, "mitigation level")
}

func TestMitigateEndLabelFromInitExpr(t *testing.T) {
	// The mitigate's own end label includes the init expression's
	// level: predicting with a high value taints timing.
	mustFail(t, `
var h : H;
var l : L;
mitigate (h, H) [L,L] { skip; }
l := 1;
`, "leaks")
}

func TestNestedMitigatesFromPaper(t *testing.T) {
	// §6.3's example: mitigate1 in a low context, mitigate2 nested in a
	// high context.
	r := mustCheck(t, `
var high : H;
var h : H;
mitigate@1 (1, H) [L,L] {
    if (high) [H,H] {
        mitigate@2 (1, H) [H,H] { h := h + 1 [H,H]; }
    } else {
        skip [H,H];
    }
}
`)
	if len(r.Mitigates) != 3 { // ids 0 (unused), 1, 2
		t.Fatalf("Mitigates len = %d", len(r.Mitigates))
	}
	L := r.Lat.Bot()
	H := r.Lat.Top()
	if r.Mitigates[1].PC != L {
		t.Errorf("pc(M1) = %v, want L", r.Mitigates[1].PC)
	}
	if r.Mitigates[2].PC != H {
		t.Errorf("pc(M2) = %v, want H", r.Mitigates[2].PC)
	}
	if r.Mitigates[1].Level != H || r.Mitigates[2].Level != H {
		t.Error("lev(M1) and lev(M2) should be H")
	}
}

func TestInferenceSimple(t *testing.T) {
	p := parse(t, `
var h : H;
var l : L;
if (h) { h := h + 1; } else { skip; }
`)
	lat := lattice.TwoPoint()
	if _, err := Check(p, lat); err != nil {
		t.Fatalf("inference failed: %v", err)
	}
	// The branch commands must have inferred ew = H (pc is high).
	iff := p.Body.(*ast.If)
	H := lat.Top()
	thn := iff.Then.(*ast.Assign)
	if thn.Lab.WL != H {
		t.Errorf("inferred ew = %v, want H", thn.Lab.WL)
	}
	if thn.Lab.RL != H {
		t.Errorf("coupled inferred er = %v, want H", thn.Lab.RL)
	}
	// The if itself sits in a low context, but its guard value trains
	// the branch predictor (machine state at ew), so the branch-outcome
	// rule infers ew = pc ⊔ ℓe = H.
	if iff.Lab.WL != H {
		t.Errorf("if ew = %v, want H (branch-outcome rule)", iff.Lab.WL)
	}
}

func TestInferenceUncoupledReadsBot(t *testing.T) {
	p := parse(t, `
var h : H;
if (h) { h := 1; } else { skip; }
`)
	r, err := CheckWith(p, lattice.TwoPoint(), Options{CoupleReadWrite: false})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	iff := p.Body.(*ast.If)
	asg := iff.Then.(*ast.Assign)
	if asg.Lab.RL != r.Lat.Bot() {
		t.Errorf("uncoupled er = %v, want ⊥", asg.Lab.RL)
	}
	if asg.Lab.WL != r.Lat.Top() {
		t.Errorf("ew = %v, want H", asg.Lab.WL)
	}
}

func TestCoupledAnnotationMismatchRejected(t *testing.T) {
	p := parse(t, "var h : H; h := 1 [L,H];")
	if _, err := CheckWith(p, lattice.TwoPoint(), Options{CoupleReadWrite: true}); err == nil {
		t.Error("expected coupling violation")
	}
	if _, err := CheckWith(p, lattice.TwoPoint(), Options{CoupleReadWrite: false}); err != nil {
		t.Errorf("uncoupled check should pass: %v", err)
	}
}

func TestRequireAnnotations(t *testing.T) {
	p := parse(t, "var l : L; l := 1;")
	if _, err := CheckWith(p, lattice.TwoPoint(), Options{RequireAnnotations: true}); err == nil {
		t.Error("expected missing-annotation error")
	}
	p2 := parse(t, "var l : L; l := 1 [L,L];")
	if _, err := CheckWith(p2, lattice.TwoPoint(), Options{RequireAnnotations: true, CoupleReadWrite: true}); err != nil {
		t.Errorf("annotated program should pass: %v", err)
	}
}

func TestUndeclaredVariable(t *testing.T) {
	mustFail(t, "x := 1;", "undeclared")
	mustFail(t, "var l : L; l := y;", "undeclared")
}

func TestArrayScalarConfusion(t *testing.T) {
	mustFail(t, "array a[4] : L; var l : L; l := a;", "used as scalar")
	mustFail(t, "var s : L; var l : L; l := s[0];", "indexed as array")
	mustFail(t, "var s : L; s[0] := 1;", "indexed as array")
}

func TestRedeclaration(t *testing.T) {
	mustFail(t, "var x : L; var x : H; x := 1;", "redeclared")
}

func TestUnknownLabel(t *testing.T) {
	mustFail(t, "var x : Q; x := 1;", "unknown security label")
	mustFail(t, "var x : L; x := 1 [Z,Z];", "unknown security label")
	mustFail(t, "var x : L; mitigate (1, W) { skip; }", "unknown security label")
}

func TestArrayIndexLevel(t *testing.T) {
	mustFail(t, `
array m[8] : L;
var h : H;
var l : L;
l := m[h];
`, "leaks")
	mustCheck(t, `
array m[8] : L;
var i : L;
var l : L;
l := m[i];
`)
	// Storing at a high index into a low array is an implicit flow.
	mustFail(t, `
array m[8] : L;
var h : H;
m[h] := 0;
`, "leaks")
	mustCheck(t, `
array m[8] : H;
var h : H;
m[h] := h [H,H];
`)
}

// The address-level extension rule: any command whose array index is
// confidential must carry a write label at least that high, or the
// hardware would install cache blocks at secret-dependent addresses
// into public partitions (violating Property 7).
func TestAddressLevelRule(t *testing.T) {
	mustFail(t, `
array m[8] : H;
var h : H;
m[h] := h [L,L];
`, "address/branch-outcome level")
	mustFail(t, `
array m[8] : H;
var h : H;
var h2 : H;
h2 := m[h] [L,L];
`, "address/branch-outcome level")
	// Inference picks ew = pc ⊔ addrLevel = H automatically.
	p := parse(t, `
array m[8] : H;
var h : H;
var h2 : H;
h2 := m[h];
`)
	lat := lattice.TwoPoint()
	if _, err := Check(p, lat); err != nil {
		t.Fatalf("inference with address level failed: %v", err)
	}
	asg := findAssign(p.Body)
	if asg == nil {
		t.Fatal("no assign found")
	}
	if asg.Lab.WL != lat.Top() {
		t.Errorf("inferred ew = %v, want H", asg.Lab.WL)
	}
}

func findAssign(c ast.Cmd) *ast.Assign {
	var out *ast.Assign
	ast.WalkCmds(c, func(x ast.Cmd) bool {
		if a, ok := x.(*ast.Assign); ok && out == nil {
			out = a
		}
		return true
	})
	return out
}

func TestSkipReadLabelTaintsTiming(t *testing.T) {
	// skip [H,H] raises the timing end label to H (T-SKIP: t ⊔ er).
	mustFail(t, `
var l : L;
skip [H,H];
l := 1;
`, "leaks")
}

func TestThreeLevelLattice(t *testing.T) {
	p := parse(t, `
var m : M;
var h : H;
var l : L;
m := l;
h := m;
`)
	if _, err := Check(p, lattice.ThreePoint()); err != nil {
		t.Fatalf("upward flows should pass: %v", err)
	}
	p2 := parse(t, `
var m : M;
var h : H;
m := h;
`)
	if _, err := Check(p2, lattice.ThreePoint()); err == nil {
		t.Error("downward flow H→M should fail")
	}
}

func TestMitigateLowersTimingAcrossLevels(t *testing.T) {
	// In L ⊑ M ⊑ H: an M-timed body mitigated at level M lets a
	// subsequent L assignment typecheck... it should NOT: mitigation
	// bounds leakage but the mitigate end label stays low only if the
	// init expression is low. Verify exactly the T-MTG end label.
	p := parse(t, `
var m : M;
var l : L;
mitigate (4, M) [L,L] { sleep(m) [M,M]; }
l := 1;
`)
	if _, err := Check(p, lattice.ThreePoint()); err != nil {
		t.Fatalf("mitigated program should typecheck: %v", err)
	}
}

func TestResultVarLabel(t *testing.T) {
	r := mustCheck(t, "var h : H; h := 1;")
	if l, ok := r.VarLabel("h"); !ok || l != r.Lat.Top() {
		t.Errorf("VarLabel(h) = %v,%v", l, ok)
	}
	if _, ok := r.VarLabel("zzz"); ok {
		t.Error("VarLabel(zzz) should fail")
	}
}

func TestErrorListError(t *testing.T) {
	if ErrorList(nil).Error() != "no errors" {
		t.Error("empty ErrorList message")
	}
	err := mustFail(t, "var l : L; l := h1; l := h2;", "")
	el := err.(ErrorList)
	if len(el) != 2 {
		t.Fatalf("want 2 errors, got %d: %v", len(el), el)
	}
	if !strings.Contains(el.Error(), "more error") {
		t.Errorf("message = %q", el.Error())
	}
}

func TestEndLabelMitigatedProgramIsLow(t *testing.T) {
	r := mustCheck(t, `
var h : H;
var l : L;
mitigate (1, H) [L,L] {
    while (h > 0) [H,H] { h := h - 1 [H,H]; }
}
l := 1;
`)
	if r.End != r.Lat.Bot() {
		t.Errorf("end = %v, want L", r.End)
	}
}

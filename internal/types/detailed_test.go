package types

import (
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lattice"
)

func TestCheckDetailedJudgments(t *testing.T) {
	p := parse(t, `
var h : H;
var l : L;
l := 1;
mitigate (8, H) [L,L] {
    sleep(h) [H,H];
}
l := 2;
`)
	lat := lattice.TwoPoint()
	res, typings, err := CheckDetailed(p, lat, Options{CoupleReadWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	L, H := lat.Bot(), lat.Top()
	if res.End != L {
		t.Errorf("end = %v", res.End)
	}
	var sleepTy, mitTy CmdTyping
	var sawSleep, sawMit bool
	ast.WalkCmds(p.Body, func(c ast.Cmd) bool {
		switch c.(type) {
		case *ast.Sleep:
			sleepTy, sawSleep = typings[c.ID()], true
		case *ast.Mitigate:
			mitTy, sawMit = typings[c.ID()], true
		}
		return true
	})
	if !sawSleep || !sawMit {
		t.Fatal("missing judgments")
	}
	// The sleep inside the mitigate: pc=L, start=L (mitigate init is a
	// literal), end=H (taints timing with h).
	if sleepTy.PC != L || sleepTy.End != H {
		t.Errorf("sleep judgment = %+v", sleepTy)
	}
	// The mitigate itself cuts the taint: end stays L.
	if mitTy.End != L || mitTy.Start != L || mitTy.PC != L {
		t.Errorf("mitigate judgment = %+v", mitTy)
	}
}

func TestCheckDetailedWhileFixpoint(t *testing.T) {
	// The recorded judgment for a while body must reflect the FIXED
	// POINT start label, not the first speculative iteration's.
	p := parse(t, `
var h : H;
var i : H;
while (i < 4) [H,H] {
    sleep(h) [H,H];
    i := i + 1 [H,H];
}
`)
	lat := lattice.TwoPoint()
	_, typings, err := CheckDetailed(p, lat, Options{CoupleReadWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	H := lat.Top()
	w := p.Body.(*ast.While)
	wt := typings[w.ID()]
	if wt.End != H {
		t.Errorf("while end = %v, want H", wt.End)
	}
	// Body's first command starts at the loop's fixed point (H).
	first := w.Body.(*ast.Seq).First
	ft := typings[first.ID()]
	if ft.Start != H {
		t.Errorf("body start = %v, want H (fixed point)", ft.Start)
	}
}

func TestCheckDetailedCoversAllLabeledCommands(t *testing.T) {
	p := parse(t, `
var l : L;
array a[4] : L;
var i : L;
skip;
l := 1;
a[0] := 2;
sleep(3);
if (l) { skip; } else { skip; }
i := 0;
while (i < 2) { i := i + 1; }
mitigate (4, H) { skip; }
`)
	_, typings, err := CheckDetailed(p, lattice.TwoPoint(), Options{CoupleReadWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	ast.WalkCmds(p.Body, func(c ast.Cmd) bool {
		if _, isSeq := c.(*ast.Seq); isSeq {
			return true
		}
		if _, ok := typings[c.ID()]; !ok {
			missing++
			t.Errorf("no judgment for %T at %s", c, c.Pos())
		}
		return true
	})
	if missing > 0 {
		t.Fatalf("%d labeled commands missing judgments", missing)
	}
}

func TestCheckWithoutDetailReturnsNoTypings(t *testing.T) {
	p := parse(t, "var l : L; l := 1;")
	if _, err := Check(p, lattice.TwoPoint()); err != nil {
		t.Fatal(err)
	}
	// CheckDetailed on an ill-typed program errors and returns nil map.
	bad := parse(t, "var h : H; var l : L; l := h;")
	_, typings, err := CheckDetailed(bad, lattice.TwoPoint(), Options{})
	if err == nil || typings != nil {
		t.Error("ill-typed program should not return typings")
	}
}

// Package types implements the security type system of the paper
// (Fig. 4) together with timing-label inference (§8.2).
//
// Typing judgments for commands have the form Γ, pc, t ⊢ c : t', where
// pc is the program-counter label, t the timing start-label, and t' the
// timing end-label: bounds on the level of information that has flowed
// into timing before and after executing c. Every rule enforces t ⊑ t'
// (timing dependencies accumulate), requires pc ⊑ ew (no confidential
// control flow may modify low machine-environment state, Property 5),
// and accumulates read labels er into the end label (reading from
// confidential parts of the machine environment taints timing).
//
// Labels omitted in the source are inferred as the least restrictive
// labels satisfying the typing rules: ew = pc, and er = ew when the
// hardware requires coupled labels (commodity and partitioned cache
// designs, §5.1/§8.1) or er = ⊥ otherwise.
package types

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
	"repro/internal/lattice"
)

// Error is a type error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of type errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

// Options configure checking and inference.
type Options struct {
	// CoupleReadWrite requires er = ew on every command, matching
	// hardware with a single timing-label register (§8.1). Inference
	// then picks er = ew; explicit annotations violating er = ew are
	// rejected.
	CoupleReadWrite bool
	// RequireAnnotations rejects commands with omitted labels instead
	// of inferring them.
	RequireAnnotations bool
}

// MitigateInfo records the statically determined facts about one
// mitigate command that the leakage theory consumes (§6.3): the
// program-counter label pc(M_η) at its program point and its mitigation
// level lev(M_η).
type MitigateInfo struct {
	ID    int
	PC    lattice.Label
	Level lattice.Label
	Pos   token.Pos
}

// CmdTyping records the typing judgment Γ, pc, t ⊢ c : t' at one
// command: the program-counter label and the timing start- and
// end-labels. Produced by CheckDetailed for tooling (timingc explain).
type CmdTyping struct {
	PC    lattice.Label
	Start lattice.Label
	End   lattice.Label
}

// Result is the outcome of a successful check.
type Result struct {
	Lat lattice.Lattice
	// Vars is Γ: the security level of every declared variable.
	Vars map[string]lattice.Label
	// ArraySizes maps array names to their element counts.
	ArraySizes map[string]int64
	// Mitigates has one entry per mitigate command, indexed by MitID.
	Mitigates []MitigateInfo
	// End is the timing end-label of the whole program: Γ,⊥,⊥ ⊢ c : End.
	End lattice.Label
}

// VarLabel returns Γ(name); ok is false for undeclared names.
func (r *Result) VarLabel(name string) (lattice.Label, bool) {
	l, ok := r.Vars[name]
	return l, ok
}

// checker holds state for one Check run.
type checker struct {
	lat    lattice.Lattice
	opts   Options
	errors ErrorList
	vars   map[string]lattice.Label
	arrays map[string]int64
	mits   []MitigateInfo
	// typings, when non-nil, records the judgment at every command
	// node (keyed by node ID). Speculative while-fixpoint iterations
	// also record, but the final authoritative pass overwrites them.
	typings map[int]CmdTyping
}

// Check resolves declarations and label annotations, infers omitted
// labels, and type-checks the program with default options.
func Check(prog *ast.Program, lat lattice.Lattice) (*Result, error) {
	return CheckWith(prog, lat, Options{CoupleReadWrite: true})
}

// CheckWith is Check with explicit options.
func CheckWith(prog *ast.Program, lat lattice.Lattice, opts Options) (*Result, error) {
	res, _, err := checkInternal(prog, lat, opts, false)
	return res, err
}

// CheckDetailed is CheckWith, additionally returning the typing
// judgment recorded at every command node (keyed by ast.Cmd.ID).
func CheckDetailed(prog *ast.Program, lat lattice.Lattice, opts Options) (*Result, map[int]CmdTyping, error) {
	return checkInternal(prog, lat, opts, true)
}

func checkInternal(prog *ast.Program, lat lattice.Lattice, opts Options, detailed bool) (*Result, map[int]CmdTyping, error) {
	c := &checker{
		lat:    lat,
		opts:   opts,
		vars:   make(map[string]lattice.Label),
		arrays: make(map[string]int64),
		mits:   make([]MitigateInfo, prog.NumMitigates),
	}
	if detailed {
		c.typings = make(map[int]CmdTyping)
	}
	c.declarations(prog)
	c.resolveAndInfer(prog.Body, lat.Bot())
	end := c.command(prog.Body, lat.Bot(), lat.Bot())
	if len(c.errors) > 0 {
		return nil, nil, c.errors
	}
	return &Result{
		Lat:        lat,
		Vars:       c.vars,
		ArraySizes: c.arrays,
		Mitigates:  c.mits,
		End:        end,
	}, c.typings, nil
}

// record stores the judgment for one command when detailed checking is
// enabled.
func (c *checker) record(cmd ast.Cmd, pc, start, end lattice.Label) lattice.Label {
	if c.typings != nil {
		c.typings[cmd.ID()] = CmdTyping{PC: pc, Start: start, End: end}
	}
	return end
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errors) < 50 {
		c.errors = append(c.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) lookupLabel(pos token.Pos, name string) lattice.Label {
	l, ok := c.lat.Lookup(name)
	if !ok {
		c.errorf(pos, "unknown security label %q (lattice %s)", name, c.lat.Name())
		return c.lat.Bot()
	}
	return l
}

func (c *checker) declarations(prog *ast.Program) {
	for _, d := range prog.Decls {
		if _, dup := c.vars[d.Name]; dup {
			c.errorf(d.Pos(), "variable %q redeclared", d.Name)
			continue
		}
		d.Label = c.lookupLabel(d.Pos(), d.LabelName)
		c.vars[d.Name] = d.Label
		if d.IsArray {
			c.arrays[d.Name] = d.Size
		}
	}
}

// ---------------------------------------------------------------------------
// Label resolution and inference

// resolveAndInfer walks the command tree computing the program-counter
// label at each node and resolving or inferring the timing labels.
func (c *checker) resolveAndInfer(cmd ast.Cmd, pc lattice.Label) {
	switch cm := cmd.(type) {
	case *ast.Seq:
		c.resolveAndInfer(cm.First, pc)
		c.resolveAndInfer(cm.Second, pc)
		return
	case *ast.If:
		// Branch-outcome rule: the guard's value trains the branch
		// predictor, machine state at level ew, so ℓe joins the
		// inferred write label alongside the address level.
		c.labels(cm, &cm.Lab, pc, c.lat.Join(c.expr(cm.Cond), c.addrLevel(cm.Cond)))
		inner := c.lat.Join(pc, c.expr(cm.Cond))
		c.resolveAndInfer(cm.Then, inner)
		c.resolveAndInfer(cm.Else, inner)
		return
	case *ast.While:
		c.labels(cm, &cm.Lab, pc, c.lat.Join(c.expr(cm.Cond), c.addrLevel(cm.Cond)))
		inner := c.lat.Join(pc, c.expr(cm.Cond))
		c.resolveAndInfer(cm.Body, inner)
		return
	case *ast.Mitigate:
		c.labels(cm, &cm.Lab, pc, c.addrLevel(cm.Init))
		cm.Level = c.lookupLabel(cm.Pos(), cm.LevelName)
		if cm.MitID >= 0 && cm.MitID < len(c.mits) {
			c.mits[cm.MitID] = MitigateInfo{ID: cm.MitID, PC: pc, Level: cm.Level, Pos: cm.Pos()}
		}
		// T-MTG leaves pc unchanged for the body.
		c.resolveAndInfer(cm.Body, pc)
		return
	case *ast.Skip:
		c.labels(cm, &cm.Lab, pc, c.lat.Bot())
		return
	case *ast.Assign:
		c.labels(cm, &cm.Lab, pc, c.addrLevel(cm.X))
		return
	case *ast.Store:
		al := c.lat.Join(c.expr(cm.Idx), c.lat.Join(c.addrLevel(cm.Idx), c.addrLevel(cm.X)))
		c.labels(cm, &cm.Lab, pc, al)
		return
	case *ast.Sleep:
		c.labels(cm, &cm.Lab, pc, c.addrLevel(cm.X))
		return
	}
}

// addrLevel computes the command-extension "address level" of an
// expression: the join of the levels of all array index expressions
// within it. Every array access touches a data-dependent address, so a
// cache fill for it lands at an index-dependent location; Property 7
// (single-step machine-environment noninterference) therefore requires
// the fill to go to a partition at or above the index level, i.e.
// addrLevel ⊑ ew. (The paper's language has only statically addressed
// scalars, making this constraint vacuous there; arrays are our
// extension, documented in DESIGN.md.)
func (c *checker) addrLevel(e ast.Expr) lattice.Label {
	out := c.lat.Bot()
	ast.WalkExprs(e, func(x ast.Expr) {
		if idx, ok := x.(*ast.Index); ok {
			out = c.lat.Join(out, c.expr(idx.Idx))
		}
	})
	return out
}

// labels resolves a command's [er,ew] annotation or infers it from pc
// and the command's address level.
func (c *checker) labels(cmd ast.Cmd, lab *ast.Labels, pc, addr lattice.Label) {
	annotated := lab.ReadName != "" || lab.WriteName != ""
	if annotated {
		lab.RL = c.lookupLabel(cmd.Pos(), lab.ReadName)
		lab.WL = c.lookupLabel(cmd.Pos(), lab.WriteName)
		if c.opts.CoupleReadWrite && lab.RL != lab.WL {
			c.errorf(cmd.Pos(), "hardware requires coupled timing labels: er=%s ≠ ew=%s", lab.RL, lab.WL)
		}
		if !c.lat.Leq(addr, lab.WL) {
			c.errorf(cmd.Pos(), "write label %s below address/branch-outcome level %s: data-dependent machine-state updates would leak (addr ⋢ ew)",
				lab.WL, addr)
		}
		return
	}
	if c.opts.RequireAnnotations {
		c.errorf(cmd.Pos(), "missing [er,ew] annotation")
	}
	// Least restrictive labels: ew must satisfy pc ⊑ ew and
	// addrLevel ⊑ ew, so ew = pc ⊔ addrLevel.
	lab.WL = c.lat.Join(pc, addr)
	if c.opts.CoupleReadWrite {
		lab.RL = lab.WL
	} else {
		lab.RL = c.lat.Bot()
	}
}

// ---------------------------------------------------------------------------
// Expression typing

// expr returns the security level of an expression: the join of the
// levels of all variables it reads (standard rules, omitted in the
// paper's Fig. 4).
func (c *checker) expr(e ast.Expr) lattice.Label {
	switch ex := e.(type) {
	case *ast.IntLit:
		return c.lat.Bot()
	case *ast.Var:
		return c.varLabel(ex.Pos(), ex.Name, false)
	case *ast.Index:
		// The value read depends on both the array contents and the
		// index.
		return c.lat.Join(c.varLabel(ex.Pos(), ex.Name, true), c.expr(ex.Idx))
	case *ast.Unary:
		return c.expr(ex.X)
	case *ast.Binary:
		return c.lat.Join(c.expr(ex.X), c.expr(ex.Y))
	}
	return c.lat.Bot()
}

// varLabel resolves Γ(name), checking scalar/array usage.
func (c *checker) varLabel(pos token.Pos, name string, wantArray bool) lattice.Label {
	l, ok := c.vars[name]
	if !ok {
		c.errorf(pos, "undeclared variable %q", name)
		return c.lat.Bot()
	}
	_, isArray := c.arrays[name]
	if isArray != wantArray {
		if isArray {
			c.errorf(pos, "array %q used as scalar", name)
		} else {
			c.errorf(pos, "scalar %q indexed as array", name)
		}
	}
	return l
}

// ---------------------------------------------------------------------------
// Command typing (Fig. 4)

// command checks Γ, pc, t ⊢ cmd : t' and returns t'.
func (c *checker) command(cmd ast.Cmd, pc, t lattice.Label) lattice.Label {
	switch cm := cmd.(type) {
	case *ast.Skip:
		// T-SKIP: pc ⊑ ew ⊢ skip[er,ew] : t ⊔ er.
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		return c.record(cm, pc, t, c.lat.Join(t, cm.Lab.RL))

	case *ast.Assign:
		// T-ASGN: ℓe ⊔ pc ⊔ t ⊔ er ⊑ Γ(x); end label Γ(x).
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		le := c.expr(cm.X)
		gx := c.varLabel(cm.Pos(), cm.Name, false)
		src := c.lat.Join(c.lat.Join(le, pc), c.lat.Join(t, cm.Lab.RL))
		if !c.lat.Leq(src, gx) {
			c.errorf(cm.Pos(), "assignment to %q leaks: %s ⋢ %s (expr %s, pc %s, timing %s, read label %s)",
				cm.Name, src, gx, le, pc, t, cm.Lab.RL)
		}
		return c.record(cm, pc, t, gx)

	case *ast.Store:
		// Array store: like T-ASGN with the index folded into the
		// source level (the updated element depends on the index).
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		le := c.lat.Join(c.expr(cm.Idx), c.expr(cm.X))
		gx := c.varLabel(cm.Pos(), cm.Name, true)
		src := c.lat.Join(c.lat.Join(le, pc), c.lat.Join(t, cm.Lab.RL))
		if !c.lat.Leq(src, gx) {
			c.errorf(cm.Pos(), "store to %q leaks: %s ⋢ %s", cm.Name, src, gx)
		}
		return c.record(cm, pc, t, gx)

	case *ast.Sleep:
		// T-SLEEP: end label t ⊔ ℓe ⊔ er.
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		le := c.expr(cm.X)
		return c.record(cm, pc, t, c.lat.Join(c.lat.Join(t, le), cm.Lab.RL))

	case *ast.Seq:
		// T-SEQ: thread the end label of First into Second.
		t1 := c.command(cm.First, pc, t)
		return c.command(cm.Second, pc, t1)

	case *ast.If:
		// T-IF: branches check under ℓe ⊔ pc with start ℓe ⊔ t ⊔ er.
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		le := c.expr(cm.Cond)
		innerPC := c.lat.Join(le, pc)
		innerT := c.lat.Join(le, c.lat.Join(t, cm.Lab.RL))
		t1 := c.command(cm.Then, innerPC, innerT)
		t2 := c.command(cm.Else, innerPC, innerT)
		return c.record(cm, pc, t, c.lat.Join(t1, t2))

	case *ast.While:
		// T-WHILE: find the least t' with ℓe ⊔ t ⊔ er ⊑ t' and
		// Γ, ℓe ⊔ pc, t' ⊢ body : t'. The loop body both starts and
		// ends at t' because timing dependencies from one iteration
		// flow into the next; we compute the least fixed point by
		// iteration (the lattice is finite, and end labels are
		// monotone in the start label, so this terminates).
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		le := c.expr(cm.Cond)
		innerPC := c.lat.Join(le, pc)
		tp := c.lat.Join(le, c.lat.Join(t, cm.Lab.RL))
		for {
			// Speculatively check the body without recording errors:
			// only the fixed point's check should report.
			end := c.silently(func() lattice.Label { return c.command(cm.Body, innerPC, tp) })
			next := c.lat.Join(tp, end)
			if next == tp {
				break
			}
			tp = next
		}
		c.command(cm.Body, innerPC, tp)
		return c.record(cm, pc, t, tp)

	case *ast.Mitigate:
		// T-MTG: body checks with start t ⊔ ℓe ⊔ er; its end label t''
		// must satisfy t'' ⊑ ℓ' but does NOT propagate out — the
		// predictive mitigation mechanism controls how the body's
		// timing leaks. The mitigate's own end label accounts only for
		// evaluating the prediction expression.
		c.requirePCWrite(cm, pc, cm.Lab.WL)
		le := c.expr(cm.Init)
		innerT := c.lat.Join(t, c.lat.Join(le, cm.Lab.RL))
		tpp := c.command(cm.Body, pc, innerT)
		if !c.lat.Leq(tpp, cm.Level) {
			c.errorf(cm.Pos(), "mitigate@%d body timing level %s exceeds mitigation level %s",
				cm.MitID, tpp, cm.Level)
		}
		return c.record(cm, pc, t, c.lat.Join(le, c.lat.Join(t, cm.Lab.RL)))
	}
	c.errorf(cmd.Pos(), "unknown command %T", cmd)
	return t
}

// requirePCWrite enforces pc ⊑ ew, the condition shared by every rule:
// together with Property 5 it ensures confidential control flow cannot
// modify low machine-environment state.
func (c *checker) requirePCWrite(cmd ast.Cmd, pc, ew lattice.Label) {
	if !ew.Valid() {
		// Resolution failed earlier; an error was already reported.
		return
	}
	if !c.lat.Leq(pc, ew) {
		c.errorf(cmd.Pos(), "write label %s too low for program-counter label %s (pc ⋢ ew)", ew, pc)
	}
}

// silently runs f with error reporting suppressed and returns its
// result, restoring the error list afterwards.
func (c *checker) silently(f func() lattice.Label) lattice.Label {
	saved := c.errors
	out := f()
	c.errors = saved
	return out
}

package lexer

import (
	"testing"

	"repro/internal/lang/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, errs := All("x := 42; skip [L,H];")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.IDENT, token.ASSIGN, token.INT, token.SEMICOLON,
		token.KwSkip, token.LBRACKET, token.IDENT, token.COMMA, token.IDENT,
		token.RBRACKET, token.SEMICOLON, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / % == != < <= > >= && || & | ^ << >> ! ( ) { } [ ] , ; : @ :="
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ,
		token.LAND, token.LOR, token.AND, token.OR, token.XOR,
		token.SHL, token.SHR, token.NOT,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMICOLON,
		token.COLON, token.AT, token.ASSIGN, token.EOF,
	}
	toks, errs := All(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywords(t *testing.T) {
	toks, errs := All("skip if else while sleep mitigate var array ident")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.KwSkip, token.KwIf, token.KwElse, token.KwWhile,
		token.KwSleep, token.KwMitigate, token.KwVar, token.KwArray,
		token.IDENT, token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHexLiterals(t *testing.T) {
	toks, errs := All("0x1F 0XaB 007")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Lit != "0x1F" || toks[1].Lit != "0XaB" || toks[2].Lit != "007" {
		t.Errorf("literals: %v %v %v", toks[0].Lit, toks[1].Lit, toks[2].Lit)
	}
}

func TestMalformedHex(t *testing.T) {
	_, errs := All("0x")
	if len(errs) == 0 {
		t.Error("expected error for malformed hex literal")
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
x := 1; /* block
comment */ y := 2;
`
	toks, errs := All(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	var idents []string
	for _, tk := range toks {
		if tk.Kind == token.IDENT {
			idents = append(idents, tk.Lit)
		}
	}
	if len(idents) != 2 || idents[0] != "x" || idents[1] != "y" {
		t.Errorf("idents = %v", idents)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := All("x := 1; /* never closed")
	if len(errs) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := All("x :=\n  y;")
	// x at 1:1, := at 1:3, y at 2:3, ; at 2:4
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("x pos = %v", toks[0].Pos)
	}
	if toks[2].Pos.Line != 2 || toks[2].Pos.Column != 3 {
		t.Errorf("y pos = %v", toks[2].Pos)
	}
	if !toks[0].Pos.IsValid() {
		t.Error("position should be valid")
	}
	var zero token.Pos
	if zero.IsValid() {
		t.Error("zero position should be invalid")
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, errs := All("x := $;")
	if len(errs) == 0 {
		t.Fatal("expected error")
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected ILLEGAL token")
	}
}

func TestSingleEquals(t *testing.T) {
	_, errs := All("x = 1;")
	if len(errs) == 0 {
		t.Error("expected error for bare '='")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("")
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tk)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := All("abc 12")
	if got := toks[0].String(); got != `IDENT("abc")` {
		t.Errorf("String = %q", got)
	}
	if got := toks[1].String(); got != `INT("12")` {
		t.Errorf("String = %q", got)
	}
	if got := (token.Token{Kind: token.PLUS}).String(); got != "+" {
		t.Errorf("String = %q", got)
	}
}

func TestPrecedenceTable(t *testing.T) {
	if token.STAR.Precedence() <= token.PLUS.Precedence() {
		t.Error("* should bind tighter than +")
	}
	if token.PLUS.Precedence() <= token.EQ.Precedence() {
		t.Error("+ should bind tighter than ==")
	}
	if token.EQ.Precedence() <= token.LAND.Precedence() {
		t.Error("== should bind tighter than &&")
	}
	if token.LAND.Precedence() <= token.LOR.Precedence() {
		t.Error("&& should bind tighter than ||")
	}
	if token.SEMICOLON.Precedence() != 0 {
		t.Error("non-operators have precedence 0")
	}
	if token.SEMICOLON.IsBinaryOp() {
		t.Error("; is not a binary operator")
	}
	if !token.SHR.IsBinaryOp() {
		t.Error(">> is a binary operator")
	}
}

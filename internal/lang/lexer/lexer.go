// Package lexer converts timing-channel language source text into a
// stream of tokens.
package lexer

import (
	"fmt"

	"repro/internal/lang/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans source text. Create one with New; call Next repeatedly
// until it returns an EOF token.
type Lexer struct {
	src    string
	off    int // byte offset of next unread character
	line   int
	col    int
	errors []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errors }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// peek returns the next byte without consuming it, or 0 at EOF.
func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

// peek2 returns the byte after next, or 0.
func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

// advance consumes one byte.
func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Offset: l.off, Line: l.line, Column: l.col}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return '0' <= c && c <= '9' }
func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}
func isHexDigit(c byte) bool {
	return isDigit(c) || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

// skipWhitespaceAndComments consumes spaces, line comments (// …) and
// block comments (/* … */).
func (l *Lexer) skipWhitespaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. After EOF is returned, subsequent calls
// keep returning EOF.
func (l *Lexer) Next() token.Token {
	l.skipWhitespaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	switch {
	case isLetter(c):
		start := pos.Offset
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}

	case isDigit(c):
		start := pos.Offset
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			if !isHexDigit(l.peek()) {
				l.errorf(pos, "malformed hex literal")
			}
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}

	two := func(second byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}

	switch c {
	case ':':
		return two('=', token.ASSIGN, token.COLON)
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '=':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.EQ, Pos: pos}
		}
		l.errorf(pos, "unexpected '=' (did you mean ':=' or '=='?)")
		return token.Token{Kind: token.ILLEGAL, Lit: "=", Pos: pos}
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.LEQ, Pos: pos}
		}
		return two('<', token.SHL, token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.GEQ, Pos: pos}
		}
		return two('>', token.SHR, token.GT)
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case '@':
		return token.Token{Kind: token.AT, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// All scans the entire input and returns all tokens including the final
// EOF. Useful in tests.
func All(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.Errors()
		}
	}
}

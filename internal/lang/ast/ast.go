// Package ast defines the abstract syntax tree of the timing-channel
// language (paper Fig. 1, extended with arrays and declarations).
//
// Every command node carries a pair of timing labels: the read label er
// (an upper bound on the machine-environment state that may affect the
// command's execution time) and the write label ew (a lower bound on
// the machine-environment state the command may modify). Labels can be
// written in the source as [er,ew] annotations or left to be inferred;
// the types package resolves them into the RL/WL fields.
package ast

import (
	"repro/internal/lang/token"
	"repro/internal/lattice"
)

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node. Expressions are pure: they read variables
// and array elements but have no side effects on memory. (Their
// evaluation does affect the machine environment — reading a variable
// touches the data cache — which is exactly the indirect timing
// dependency the type system tracks.)
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	TokPos token.Pos
	Value  int64
}

// Var is a scalar variable reference.
type Var struct {
	TokPos token.Pos
	Name   string
}

// Index is an array element reference x[e].
type Index struct {
	TokPos token.Pos
	Name   string
	Idx    Expr
}

// Unary is a unary operation: -e or !e.
type Unary struct {
	TokPos token.Pos
	Op     token.Kind // MINUS or NOT
	X      Expr
}

// Binary is a binary operation e1 op e2.
type Binary struct {
	TokPos token.Pos
	Op     token.Kind
	X, Y   Expr
}

func (e *IntLit) Pos() token.Pos { return e.TokPos }
func (e *Var) Pos() token.Pos    { return e.TokPos }
func (e *Index) Pos() token.Pos  { return e.TokPos }
func (e *Unary) Pos() token.Pos  { return e.TokPos }
func (e *Binary) Pos() token.Pos { return e.TokPos }

func (*IntLit) exprNode() {}
func (*Var) exprNode()    {}
func (*Index) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}

// ---------------------------------------------------------------------------
// Commands

// Labels holds a command's timing annotations: the read label er and
// write label ew. Source annotations are recorded as names (empty if
// omitted); the types package resolves or infers them into RL/WL.
type Labels struct {
	// ReadName and WriteName are the source-level annotation names;
	// empty means "infer".
	ReadName  string
	WriteName string
	// RL and WL are the resolved labels (zero Label until resolution).
	RL lattice.Label
	WL lattice.Label
}

// Resolved reports whether both labels have been resolved.
func (l *Labels) Resolved() bool { return l.RL.Valid() && l.WL.Valid() }

// Cmd is a command node. All commands except Seq are "labeled commands"
// c[er,ew] in the paper's terminology and expose their Labels; Seq
// carries no timing labels (paper §3).
type Cmd interface {
	Node
	cmdNode()
	// ID returns the command's unique node identifier, which doubles as
	// its code address for instruction-cache simulation.
	ID() int
}

// base carries the fields shared by labeled commands.
type base struct {
	TokPos token.Pos
	NodeID int
	Lab    Labels
}

func (b *base) Pos() token.Pos  { return b.TokPos }
func (b *base) ID() int         { return b.NodeID }
func (b *base) Labels() *Labels { return &b.Lab }

// Labeled is implemented by every command that carries timing labels —
// all commands except Seq.
type Labeled interface {
	Cmd
	Labels() *Labels
}

// Skip is the no-op command. Unlike the purely syntactic stop marker of
// the semantics, skip is a real command that consumes measurable time
// (e.g. an instruction-cache access).
type Skip struct {
	base
}

// Assign is the scalar assignment x := e.
type Assign struct {
	base
	Name string
	X    Expr
}

// Store is the array assignment x[idx] := e.
type Store struct {
	base
	Name string
	Idx  Expr
	X    Expr
}

// Seq is sequential composition c1; c2. It carries no timing labels.
type Seq struct {
	TokPos token.Pos
	NodeID int
	First  Cmd
	Second Cmd
}

func (s *Seq) Pos() token.Pos { return s.TokPos }
func (s *Seq) ID() int        { return s.NodeID }

// If is the conditional command.
type If struct {
	base
	Cond Expr
	Then Cmd
	Else Cmd
}

// While is the loop command. High (confidential) guards are permitted —
// this is one of the expressiveness gains of the paper's approach over
// code-transformation techniques.
type While struct {
	base
	Cond Expr
	Body Cmd
}

// Sleep suspends execution for the number of cycles its argument
// evaluates to (negative values sleep zero cycles; Property 4).
type Sleep struct {
	base
	X Expr
}

// Mitigate executes Body under predictive timing mitigation. Init is
// the initial prediction of Body's execution time; LevelName is the
// mitigation level ℓ' bounding what can be learned from Body's timing.
// MitID is the unique mitigate identifier η (assigned in source order,
// or given explicitly as mitigate@n).
type Mitigate struct {
	base
	MitID     int
	Init      Expr
	LevelName string
	Level     lattice.Label // resolved by the types package
	Body      Cmd
}

func (*Skip) cmdNode()     {}
func (*Assign) cmdNode()   {}
func (*Store) cmdNode()    {}
func (*Seq) cmdNode()      {}
func (*If) cmdNode()       {}
func (*While) cmdNode()    {}
func (*Sleep) cmdNode()    {}
func (*Mitigate) cmdNode() {}

// ---------------------------------------------------------------------------
// Declarations and programs

// Decl declares a variable or array with its security label.
type Decl struct {
	TokPos    token.Pos
	Name      string
	LabelName string
	Label     lattice.Label // resolved by the types package
	// IsArray and Size describe array declarations; Size is the number
	// of elements.
	IsArray bool
	Size    int64
}

func (d *Decl) Pos() token.Pos { return d.TokPos }

// Program is a parsed program: declarations followed by a command.
type Program struct {
	Decls []*Decl
	Body  Cmd
	// NumNodes is one more than the largest command NodeID, i.e. the
	// size of the program's code-address space.
	NumNodes int
	// NumMitigates is the number of mitigate commands.
	NumMitigates int
}

// Decl returns the declaration of name, or nil.
func (p *Program) Decl(name string) *Decl {
	for _, d := range p.Decls {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Traversal helpers

// WalkCmds calls f on cmd and every command nested within it, in
// pre-order. If f returns false the node's children are skipped.
func WalkCmds(cmd Cmd, f func(Cmd) bool) {
	if cmd == nil || !f(cmd) {
		return
	}
	switch c := cmd.(type) {
	case *Seq:
		WalkCmds(c.First, f)
		WalkCmds(c.Second, f)
	case *If:
		WalkCmds(c.Then, f)
		WalkCmds(c.Else, f)
	case *While:
		WalkCmds(c.Body, f)
	case *Mitigate:
		WalkCmds(c.Body, f)
	}
}

// WalkExprs calls f on expr and every subexpression, in pre-order.
func WalkExprs(expr Expr, f func(Expr)) {
	if expr == nil {
		return
	}
	f(expr)
	switch e := expr.(type) {
	case *Index:
		WalkExprs(e.Idx, f)
	case *Unary:
		WalkExprs(e.X, f)
	case *Binary:
		WalkExprs(e.X, f)
		WalkExprs(e.Y, f)
	}
}

// ExprVars returns the names of all variables (scalar and array) read
// by expr, in first-occurrence order without duplicates.
func ExprVars(expr Expr) []string {
	var names []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	WalkExprs(expr, func(e Expr) {
		switch v := e.(type) {
		case *Var:
			add(v.Name)
		case *Index:
			add(v.Name)
		}
	})
	return names
}

// Vars1 returns the variables that may affect the timing of the single
// next evaluation step of the command (the vars1 function of Property
// 6). For compound commands only the guard/argument expression is
// evaluated in the next step; subcommands are excluded.
func Vars1(cmd Cmd) []string {
	switch c := cmd.(type) {
	case *Skip:
		return nil
	case *Assign:
		return append(ExprVars(c.X), c.Name)
	case *Store:
		names := ExprVars(c.Idx)
		for _, n := range ExprVars(c.X) {
			if !containsStr(names, n) {
				names = append(names, n)
			}
		}
		if !containsStr(names, c.Name) {
			names = append(names, c.Name)
		}
		return names
	case *If:
		return ExprVars(c.Cond)
	case *While:
		return ExprVars(c.Cond)
	case *Sleep:
		return ExprVars(c.X)
	case *Mitigate:
		return ExprVars(c.Init)
	case *Seq:
		return Vars1(c.First)
	}
	return nil
}

func containsStr(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// Mitigates returns all mitigate commands in the program body in
// MitID order.
func (p *Program) Mitigates() []*Mitigate {
	out := make([]*Mitigate, p.NumMitigates)
	WalkCmds(p.Body, func(c Cmd) bool {
		if m, ok := c.(*Mitigate); ok {
			if m.MitID >= 0 && m.MitID < len(out) {
				out[m.MitID] = m
			}
		}
		return true
	})
	return out
}

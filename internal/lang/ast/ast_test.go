package ast

import (
	"testing"

	"repro/internal/lang/token"
)

// Direct structural tests for the traversal helpers, complementing the
// parser-driven coverage.

func lit(v int64) *IntLit       { return &IntLit{Value: v} }
func vr(name string) *Var       { return &Var{Name: name} }
func idx(a string, e Expr) Expr { return &Index{Name: a, Idx: e} }
func bin(x, y Expr) Expr        { return &Binary{Op: token.PLUS, X: x, Y: y} }

func TestExprVarsNested(t *testing.T) {
	e := bin(idx("m", bin(vr("i"), vr("j"))), &Unary{Op: token.MINUS, X: vr("i")})
	got := ExprVars(e)
	want := []string{"m", "i", "j"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestExprVarsNil(t *testing.T) {
	if got := ExprVars(nil); got != nil {
		t.Errorf("ExprVars(nil) = %v", got)
	}
	WalkExprs(nil, func(Expr) { t.Error("callback on nil expr") })
}

func TestWalkCmdsNil(t *testing.T) {
	WalkCmds(nil, func(Cmd) bool { t.Error("callback on nil cmd"); return true })
}

func TestVars1Dedup(t *testing.T) {
	// store m[i] := i: i appears in both index and value once.
	st := &Store{Name: "m", Idx: vr("i"), X: vr("i")}
	got := Vars1(st)
	if len(got) != 2 || got[0] != "i" || got[1] != "m" {
		t.Errorf("Vars1 = %v", got)
	}
}

func TestVars1SeqDescends(t *testing.T) {
	s := &Seq{
		First:  &Seq{First: &Sleep{X: vr("a")}, Second: &Skip{}},
		Second: &Assign{Name: "z", X: vr("b")},
	}
	got := Vars1(s)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("Vars1(seq) = %v, want [a]", got)
	}
}

func TestLabelsResolved(t *testing.T) {
	var lab Labels
	if lab.Resolved() {
		t.Error("zero labels should be unresolved")
	}
}

func TestProgramDeclAndMitigates(t *testing.T) {
	m1 := &Mitigate{MitID: 1, Body: &Skip{}}
	m0 := &Mitigate{MitID: 0, Body: m1}
	p := &Program{
		Decls:        []*Decl{{Name: "x"}},
		Body:         m0,
		NumMitigates: 2,
	}
	if p.Decl("x") == nil || p.Decl("y") != nil {
		t.Error("Decl lookup")
	}
	ms := p.Mitigates()
	if len(ms) != 2 || ms[0] != m0 || ms[1] != m1 {
		t.Errorf("Mitigates = %v", ms)
	}
	// Out-of-range mitigate IDs are ignored rather than panicking.
	bad := &Program{Body: &Mitigate{MitID: 9, Body: &Skip{}}, NumMitigates: 1}
	if got := bad.Mitigates(); len(got) != 1 || got[0] != nil {
		t.Errorf("out-of-range id handling: %v", got)
	}
}

func TestPositions(t *testing.T) {
	s := &Skip{}
	s.TokPos = token.Pos{Line: 3, Column: 7}
	if s.Pos().Line != 3 {
		t.Error("base position")
	}
	sq := &Seq{TokPos: token.Pos{Line: 1, Column: 1}, First: s, Second: s}
	if sq.Pos().Line != 1 {
		t.Error("seq position")
	}
	d := &Decl{TokPos: token.Pos{Line: 2, Column: 2}}
	if d.Pos().Line != 2 {
		t.Error("decl position")
	}
}

package printer

import (
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/progen"
	"repro/internal/types"
)

// TestGeneratedProgramsRoundTrip checks print→parse→print is a fixed
// point over randomly generated programs, and that printing with
// resolved labels yields a program that still parses and type-checks
// to the same resolved labels (inference is idempotent through the
// printer).
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 25; seed++ {
		prog, _, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 400 + seed, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		// Plain round trip.
		out1 := Print(prog, Options{})
		prog2, err := parser.Parse(out1)
		if err != nil {
			t.Fatalf("seed %d: printed output unparsable: %v\nsource:\n%s\nprinted:\n%s",
				seed, err, src, out1)
		}
		out2 := Print(prog2, Options{})
		if out1 != out2 {
			t.Fatalf("seed %d: print not a fixed point", seed)
		}
		// Resolved round trip: annotate everything, re-check, compare.
		resolved := Print(prog, Options{ShowResolved: true})
		prog3, err := parser.Parse(resolved)
		if err != nil {
			t.Fatalf("seed %d: resolved output unparsable: %v\n%s", seed, err, resolved)
		}
		if _, err := types.Check(prog3, lat); err != nil {
			t.Fatalf("seed %d: resolved output fails type checking: %v\n%s", seed, err, resolved)
		}
		resolved2 := Print(prog3, Options{ShowResolved: true})
		if resolved != resolved2 {
			t.Fatalf("seed %d: resolved print not stable:\n%s\nvs\n%s", seed, resolved, resolved2)
		}
	}
}

// TestThreeLevelRoundTrip repeats the resolved round trip on the
// three-point lattice, where inference produces M labels too.
func TestThreeLevelRoundTrip(t *testing.T) {
	lat := lattice.ThreePoint()
	for seed := int64(0); seed < 10; seed++ {
		prog, _, _, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 700 + seed, AllowMitigate: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		resolved := Print(prog, Options{ShowResolved: true})
		prog2, err := parser.Parse(resolved)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := types.Check(prog2, lat); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, resolved)
		}
	}
}

package printer

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
)

// stripIDs zeroes node IDs, mitigate IDs and positions so structural
// comparison ignores layout-dependent fields.
func normalize(p *ast.Program) string {
	return Print(p, Options{})
}

func TestRoundTrip(t *testing.T) {
	sources := []string{
		"skip;",
		"skip [L,H];",
		"x := 1 + 2 * 3;",
		"x := (1 + 2) * 3;",
		"x := 10 - 3 - 2;",
		"x := 10 - (3 - 2);",
		"x := a && b || !c;",
		"x := -y;",
		"x := m[i + 1] [L,L];",
		"m[i] := v [L,H];",
		"sleep(h) [H,H];",
		"if (h) [H,H] { x := 1; } else { x := 2; }",
		"while (i < n) [L,L] { i := i + 1; }",
		"mitigate@0 (1, H) [L,L] { sleep(h) [H,H]; }",
		"var h : H;\nvar l : L;\narray m[16] : H;\nl := m[h];",
		"a := 1; b := 2; c := 3;",
		"x := a << 2 | b >> 1 & c ^ d;",
		"x := a % b / c;",
		"if (a == b) { skip; } else { if (a != b) { skip; } else { skip; } }",
	}
	for _, src := range sources {
		p1, err := parser.Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		out1 := normalize(p1)
		p2, err := parser.Parse(out1)
		if err != nil {
			t.Errorf("re-Parse of %q output failed: %v\noutput:\n%s", src, err, out1)
			continue
		}
		out2 := normalize(p2)
		if out1 != out2 {
			t.Errorf("not a fixed point for %q:\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

// TestRoundTripSemantics checks that printing and re-parsing preserves
// expression structure exactly (not just print-fixpoint) by comparing
// the printed forms of each subexpression tree.
func TestExprParenthesization(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x := 1 + 2 * 3;", "1 + 2 * 3"},
		{"x := (1 + 2) * 3;", "(1 + 2) * 3"},
		{"x := 10 - (3 - 2);", "10 - (3 - 2)"},
		{"x := 10 - 3 - 2;", "10 - 3 - 2"},
		{"x := -(a + b);", "-(a + b)"},
		{"x := !a && b;", "!a && b"},
		{"x := !(a && b);", "!(a && b)"},
		{"x := a * (b + c);", "a * (b + c)"},
	}
	for _, c := range cases {
		p, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		a := p.Body.(*ast.Assign)
		if got := PrintExpr(a.X); got != c.want {
			t.Errorf("PrintExpr(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPrintIndentation(t *testing.T) {
	p, err := parser.Parse("if (x) { if (y) { a := 1; } else { skip; } } else { skip; }")
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p, Options{Indent: "  "})
	if !strings.Contains(out, "\n    a := 1;") {
		t.Errorf("nested indentation missing:\n%s", out)
	}
}

func TestPrintDeclarations(t *testing.T) {
	p, err := parser.Parse("var h : H;\narray m[8] : L;\nskip;")
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p, Options{})
	if !strings.Contains(out, "var h : H;") || !strings.Contains(out, "array m[8] : L;") {
		t.Errorf("declarations missing:\n%s", out)
	}
}

func TestPrintOmitsUnresolvedLabels(t *testing.T) {
	p, err := parser.Parse("x := 1;")
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p, Options{ShowResolved: true})
	if strings.Contains(out, "[") {
		t.Errorf("unresolved labels should not print:\n%s", out)
	}
}

func TestPrintCmdEqualsProgramBody(t *testing.T) {
	p, err := parser.Parse("a := 1; b := 2;")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := PrintCmd(p.Body, Options{}), Print(p, Options{}); got != want {
		t.Errorf("PrintCmd != Print body:\n%q\n%q", got, want)
	}
}

func TestMitigateIDPreserved(t *testing.T) {
	p, err := parser.Parse("mitigate@7 (3, H) { skip; }")
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p, Options{})
	if !strings.Contains(out, "mitigate@7 (3, H)") {
		t.Errorf("mitigate id lost:\n%s", out)
	}
	p2, err := parser.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	m := p2.Body.(*ast.Mitigate)
	if m.MitID != 7 {
		t.Errorf("MitID after round trip = %d", m.MitID)
	}
}

func TestNormalizeIsDeterministic(t *testing.T) {
	src := "var h : H;\nif (h) [H,H] { sleep(h) [H,H]; } else { skip [H,H]; }"
	p1, _ := parser.Parse(src)
	p2, _ := parser.Parse(src)
	if !reflect.DeepEqual(normalize(p1), normalize(p2)) {
		t.Error("printing the same source twice differs")
	}
}

// Package printer renders timing-channel language ASTs back to source
// text. The output re-parses to an equal tree (round-trip property,
// checked by tests), and resolved labels are printed in place of
// omitted annotations when available, which makes the printer useful
// for showing inference results.
package printer

import (
	"fmt"
	"strings"

	"repro/internal/lang/ast"
)

// Options control printing.
type Options struct {
	// ShowResolved prints resolved labels even for annotations omitted
	// in the source (useful after label inference). When false only
	// source-level annotations are printed.
	ShowResolved bool
	// Indent is the indentation unit; default four spaces.
	Indent string
}

// Print renders a whole program.
func Print(p *ast.Program, opts Options) string {
	var b strings.Builder
	pr := &printer{opts: opts, b: &b}
	if pr.opts.Indent == "" {
		pr.opts.Indent = "    "
	}
	for _, d := range p.Decls {
		pr.decl(d)
	}
	if len(p.Decls) > 0 {
		b.WriteString("\n")
	}
	pr.cmd(p.Body, 0)
	return b.String()
}

// PrintCmd renders a single command.
func PrintCmd(c ast.Cmd, opts Options) string {
	var b strings.Builder
	pr := &printer{opts: opts, b: &b}
	if pr.opts.Indent == "" {
		pr.opts.Indent = "    "
	}
	pr.cmd(c, 0)
	return b.String()
}

// PrintExpr renders an expression with minimal parentheses.
func PrintExpr(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

type printer struct {
	opts Options
	b    *strings.Builder
}

func (p *printer) indent(depth int) {
	for i := 0; i < depth; i++ {
		p.b.WriteString(p.opts.Indent)
	}
}

func (p *printer) decl(d *ast.Decl) {
	if d.IsArray {
		fmt.Fprintf(p.b, "array %s[%d] : %s;\n", d.Name, d.Size, p.declLabel(d))
	} else {
		fmt.Fprintf(p.b, "var %s : %s;\n", d.Name, p.declLabel(d))
	}
}

func (p *printer) declLabel(d *ast.Decl) string {
	if p.opts.ShowResolved && d.Label.Valid() {
		return d.Label.String()
	}
	return d.LabelName
}

// annot returns the " [er,ew]" suffix for a labeled command, or "".
func (p *printer) annot(lab *ast.Labels) string {
	if p.opts.ShowResolved && lab.Resolved() {
		return fmt.Sprintf(" [%s,%s]", lab.RL, lab.WL)
	}
	if lab.ReadName != "" && lab.WriteName != "" {
		return fmt.Sprintf(" [%s,%s]", lab.ReadName, lab.WriteName)
	}
	return ""
}

func (p *printer) cmd(c ast.Cmd, depth int) {
	switch c := c.(type) {
	case *ast.Skip:
		p.indent(depth)
		fmt.Fprintf(p.b, "skip%s;\n", p.annot(&c.Lab))
	case *ast.Assign:
		p.indent(depth)
		fmt.Fprintf(p.b, "%s := %s%s;\n", c.Name, PrintExpr(c.X), p.annot(&c.Lab))
	case *ast.Store:
		p.indent(depth)
		fmt.Fprintf(p.b, "%s[%s] := %s%s;\n", c.Name, PrintExpr(c.Idx), PrintExpr(c.X), p.annot(&c.Lab))
	case *ast.Sleep:
		p.indent(depth)
		fmt.Fprintf(p.b, "sleep(%s)%s;\n", PrintExpr(c.X), p.annot(&c.Lab))
	case *ast.Seq:
		p.cmd(c.First, depth)
		p.cmd(c.Second, depth)
	case *ast.If:
		p.indent(depth)
		fmt.Fprintf(p.b, "if (%s)%s {\n", PrintExpr(c.Cond), p.annot(&c.Lab))
		p.cmd(c.Then, depth+1)
		p.indent(depth)
		p.b.WriteString("} else {\n")
		p.cmd(c.Else, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *ast.While:
		p.indent(depth)
		fmt.Fprintf(p.b, "while (%s)%s {\n", PrintExpr(c.Cond), p.annot(&c.Lab))
		p.cmd(c.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	case *ast.Mitigate:
		p.indent(depth)
		lvl := c.LevelName
		if p.opts.ShowResolved && c.Level.Valid() {
			lvl = c.Level.String()
		}
		fmt.Fprintf(p.b, "mitigate@%d (%s, %s)%s {\n", c.MitID, PrintExpr(c.Init), lvl, p.annot(&c.Lab))
		p.cmd(c.Body, depth+1)
		p.indent(depth)
		p.b.WriteString("}\n")
	default:
		fmt.Fprintf(p.b, "/* unknown command %T */\n", c)
	}
}

// writeExpr renders e, parenthesizing subexpressions whose operators
// bind less tightly than the context requires.
func writeExpr(b *strings.Builder, e ast.Expr, minPrec int) {
	switch e := e.(type) {
	case *ast.IntLit:
		fmt.Fprintf(b, "%d", e.Value)
	case *ast.Var:
		b.WriteString(e.Name)
	case *ast.Index:
		b.WriteString(e.Name)
		b.WriteString("[")
		writeExpr(b, e.Idx, 0)
		b.WriteString("]")
	case *ast.Unary:
		b.WriteString(e.Op.String())
		// Unary binds tighter than all binary operators.
		writeExpr(b, e.X, 6)
	case *ast.Binary:
		prec := e.Op.Precedence()
		if prec < minPrec {
			b.WriteString("(")
		}
		writeExpr(b, e.X, prec)
		fmt.Fprintf(b, " %s ", e.Op)
		// Left-associative: the right operand needs strictly higher
		// precedence to avoid re-association on re-parse.
		writeExpr(b, e.Y, prec+1)
		if prec < minPrec {
			b.WriteString(")")
		}
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", e)
	}
}

// Package token defines the lexical tokens of the timing-channel
// language and source positions used in diagnostics.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Operator kinds are grouped so precedence tables in the
// parser can be expressed over contiguous ranges.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT // x, response, L, H
	INT   // 123, 0x1f

	// Operators and delimiters.
	ASSIGN    // :=
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	EQ        // ==
	NEQ       // !=
	LT        // <
	LEQ       // <=
	GT        // >
	GEQ       // >=
	LAND      // &&
	LOR       // ||
	AND       // &
	OR        // |
	XOR       // ^
	SHL       // <<
	SHR       // >>
	NOT       // !
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	AT        // @

	// Keywords.
	KwSkip     // skip
	KwIf       // if
	KwElse     // else
	KwWhile    // while
	KwSleep    // sleep
	KwMitigate // mitigate
	KwVar      // var
	KwArray    // array
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INT: "INT",
	ASSIGN: ":=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	EQ: "==", NEQ: "!=", LT: "<", LEQ: "<=", GT: ">", GEQ: ">=",
	LAND: "&&", LOR: "||", AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>",
	NOT: "!", LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";", COLON: ":", AT: "@",
	KwSkip: "skip", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwSleep: "sleep", KwMitigate: "mitigate", KwVar: "var", KwArray: "array",
}

// String returns the canonical spelling of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"skip":     KwSkip,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"sleep":    KwSleep,
	"mitigate": KwMitigate,
	"var":      KwVar,
	"array":    KwArray,
}

// Pos is a source position: 1-based line and column, 0-based byte offset.
type Pos struct {
	Offset int
	Line   int
	Column int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// IsValid reports whether the position has been set (Line > 0).
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a lexical token with its source position and literal text.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT, INT, ILLEGAL
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsBinaryOp reports whether the kind is a binary operator.
func (k Kind) IsBinaryOp() bool {
	switch k {
	case PLUS, MINUS, STAR, SLASH, PERCENT,
		EQ, NEQ, LT, LEQ, GT, GEQ,
		LAND, LOR, AND, OR, XOR, SHL, SHR:
		return true
	}
	return false
}

// Precedence returns the binding power of a binary operator kind, higher
// binding tighter; 0 for non-operators. The precedence levels follow Go:
//
//	5: * / % << >> &
//	4: + - | ^
//	3: == != < <= > >=
//	2: &&
//	1: ||
func (k Kind) Precedence() int {
	switch k {
	case STAR, SLASH, PERCENT, SHL, SHR, AND:
		return 5
	case PLUS, MINUS, OR, XOR:
		return 4
	case EQ, NEQ, LT, LEQ, GT, GEQ:
		return 3
	case LAND:
		return 2
	case LOR:
		return 1
	}
	return 0
}

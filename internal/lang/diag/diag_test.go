package diag

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/types"
)

func TestFormatTypeError(t *testing.T) {
	src := "var h : H;\nvar l : L;\nl := h;\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = types.Check(prog, lattice.TwoPoint())
	if err == nil {
		t.Fatal("expected type error")
	}
	out := Format("prog.tc", src, err)
	if !strings.Contains(out, "prog.tc:3:1:") {
		t.Errorf("position header missing:\n%s", out)
	}
	if !strings.Contains(out, "    l := h;") {
		t.Errorf("source excerpt missing:\n%s", out)
	}
	if !strings.Contains(out, "    ^") {
		t.Errorf("caret missing:\n%s", out)
	}
}

func TestFormatParseErrors(t *testing.T) {
	src := "x := ;\ny := * 1;\n"
	_, err := parser.Parse(src)
	if err == nil {
		t.Fatal("expected parse errors")
	}
	out := Format("bad.tc", src, err)
	if strings.Count(out, "bad.tc:") < 2 {
		t.Errorf("expected one block per error:\n%s", out)
	}
	if strings.Count(out, "^") < 2 {
		t.Errorf("expected one caret per error:\n%s", out)
	}
}

func TestFormatCaretColumn(t *testing.T) {
	src := "var l : L;\nl := undeclared;\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, terr := types.Check(prog, lattice.TwoPoint())
	out := Format("f.tc", src, terr)
	lines := strings.Split(out, "\n")
	// Find the caret line and check its column lines up with the
	// excerpt above it (the undeclared variable starts at column 6).
	for i, ln := range lines {
		if strings.HasSuffix(ln, "^") && i > 0 {
			// Strip the 4-space prefix and the caret itself: what is
			// left is the padding, whose length is the 0-based column.
			caretCol := len(ln) - 4 - 1
			if caretCol != 5 {
				t.Errorf("caret at offset %d, want 5:\n%s", caretCol, out)
			}
			return
		}
	}
	t.Fatalf("no caret found:\n%s", out)
}

func TestFormatTabAlignment(t *testing.T) {
	src := "var h : H;\nvar l : L;\n\tl := h;\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, terr := types.Check(prog, lattice.TwoPoint())
	out := Format("f.tc", src, terr)
	if !strings.Contains(out, "    \t^") {
		t.Errorf("tab should be preserved before caret:\n%s", out)
	}
}

func TestFormatPlainError(t *testing.T) {
	out := Format("f.tc", "src", errors.New("boom"))
	if out != "f.tc: boom\n" {
		t.Errorf("plain error = %q", out)
	}
	if Format("f", "s", nil) != "" {
		t.Error("nil error should render empty")
	}
}

func TestFormatOutOfRangeLine(t *testing.T) {
	// A stale position past the end of the source must not panic.
	el := types.ErrorList{}
	prog, _ := parser.Parse("var l : L;\nl := x;\n")
	_, err := types.Check(prog, lattice.TwoPoint())
	el = err.(types.ErrorList)
	out := Format("f.tc", "one line only", el)
	if !strings.Contains(out, "f.tc:2:") {
		t.Errorf("header missing: %q", out)
	}
}

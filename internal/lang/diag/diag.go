// Package diag renders compiler diagnostics with source excerpts: the
// offending line with a caret under the reported column, in the style
// of modern compiler drivers.
package diag

import (
	"fmt"
	"strings"

	"repro/internal/lang/parser"
	"repro/internal/lang/token"
	"repro/internal/types"
)

// posError is any error carrying a source position; both parser.Error
// and types.Error satisfy it structurally via accessors below.
type posError struct {
	pos token.Pos
	msg string
}

// extract pulls (position, message) pairs out of the error types the
// front end produces; unknown errors yield a single position-less entry.
func extract(err error) []posError {
	switch e := err.(type) {
	case *parser.Error:
		return []posError{{e.Pos, e.Msg}}
	case parser.ErrorList:
		out := make([]posError, len(e))
		for i, pe := range e {
			out[i] = posError{pe.Pos, pe.Msg}
		}
		return out
	case *types.Error:
		return []posError{{e.Pos, e.Msg}}
	case types.ErrorList:
		out := make([]posError, len(e))
		for i, te := range e {
			out[i] = posError{te.Pos, te.Msg}
		}
		return out
	}
	return []posError{{token.Pos{}, err.Error()}}
}

// Format renders err against the source text, one block per diagnostic:
//
//	file:3:9: assignment to "l" leaks: H ⋢ L
//	    l := h;
//	         ^
func Format(file, src string, err error) string {
	if err == nil {
		return ""
	}
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for _, d := range extract(err) {
		if !d.pos.IsValid() {
			fmt.Fprintf(&b, "%s: %s\n", file, d.msg)
			continue
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s\n", file, d.pos.Line, d.pos.Column, d.msg)
		if d.pos.Line-1 < len(lines) {
			srcLine := lines[d.pos.Line-1]
			fmt.Fprintf(&b, "    %s\n", srcLine)
			col := d.pos.Column - 1
			if col > len(srcLine) {
				col = len(srcLine)
			}
			// Preserve tabs so the caret aligns under tabulated code.
			pad := make([]byte, 0, col)
			for i := 0; i < col && i < len(srcLine); i++ {
				if srcLine[i] == '\t' {
					pad = append(pad, '\t')
				} else {
					pad = append(pad, ' ')
				}
			}
			fmt.Fprintf(&b, "    %s^\n", pad)
		}
	}
	return b.String()
}

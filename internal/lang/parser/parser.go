// Package parser builds abstract syntax trees for the timing-channel
// language from source text.
//
// Grammar (annotations [er,ew] are optional everywhere; omitted labels
// are inferred by the types package):
//
//	program  = { decl } cmdseq .
//	decl     = "var" ident ":" ident ";"
//	         | "array" ident "[" int "]" ":" ident ";" .
//	cmdseq   = cmd { cmd } .                       // folded right into Seq
//	cmd      = "skip" [annot] ";"
//	         | ident ":=" expr [annot] ";"
//	         | ident "[" expr "]" ":=" expr [annot] ";"
//	         | "if" "(" expr ")" [annot] block [ "else" block ]
//	         | "while" "(" expr ")" [annot] block
//	         | "mitigate" [ "@" int ] "(" expr "," ident ")" [annot] block
//	         | "sleep" "(" expr ")" [annot] ";" .
//	block    = "{" [ cmdseq ] "}" .
//	annot    = "[" ident "," ident "]" .
//
// The only grammatical subtlety is distinguishing an array index from a
// trailing annotation in commands like "x := y [L,H];". The expression
// parser resolves it with bounded lookahead: a "[" beginning the token
// sequence "[ ident , ident ]" is always an annotation.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/lang/ast"
	"repro/internal/lang/lexer"
	"repro/internal/lang/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a list of syntax errors; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

const lookahead = 5

type parser struct {
	lex    *lexer.Lexer
	buf    [lookahead]token.Token
	n      int // number of buffered tokens
	errors ErrorList

	nextNodeID int
	nextMitID  int // scan cursor for implicit mitigate identifiers
	maxMitID   int // one past the largest mitigate identifier used
	usedMitIDs map[int]bool
}

// Parse parses a complete program.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lex: lexer.New(src), usedMitIDs: make(map[int]bool)}
	prog := p.parseProgram()
	for _, le := range p.lex.Errors() {
		p.errors = append(p.errors, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errors) > 0 {
		return nil, p.errors
	}
	return prog, nil
}

// ParseCmd parses a bare command sequence with no declarations; useful
// in tests and for embedding fragments.
func ParseCmd(src string) (ast.Cmd, error) {
	p := &parser{lex: lexer.New(src), usedMitIDs: make(map[int]bool)}
	cmd := p.parseCmdSeq(token.EOF)
	p.expect(token.EOF)
	for _, le := range p.lex.Errors() {
		p.errors = append(p.errors, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	if len(p.errors) > 0 {
		return nil, p.errors
	}
	return cmd, nil
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	// Cap the error list so a badly broken input can't accumulate
	// unbounded diagnostics.
	if len(p.errors) < 50 {
		p.errors = append(p.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// peek returns the i-th upcoming token (0 = next) without consuming.
func (p *parser) peek(i int) token.Token {
	for p.n <= i {
		p.buf[p.n] = p.lex.Next()
		p.n++
	}
	return p.buf[i]
}

func (p *parser) next() token.Token {
	t := p.peek(0)
	copy(p.buf[:], p.buf[1:p.n])
	p.n--
	return t
}

func (p *parser) at(k token.Kind) bool { return p.peek(0).Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.peek(0)
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return t
	}
	return p.next()
}

func (p *parser) newID() int {
	id := p.nextNodeID
	p.nextNodeID++
	return id
}

// ---------------------------------------------------------------------------
// Programs and declarations

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.at(token.KwVar) || p.at(token.KwArray) {
		if d := p.parseDecl(); d != nil {
			prog.Decls = append(prog.Decls, d)
		}
	}
	prog.Body = p.parseCmdSeq(token.EOF)
	p.expect(token.EOF)
	prog.NumNodes = p.nextNodeID
	prog.NumMitigates = p.maxMitID
	return prog
}

func (p *parser) parseDecl() *ast.Decl {
	d := &ast.Decl{TokPos: p.peek(0).Pos}
	switch {
	case p.accept(token.KwVar):
	case p.accept(token.KwArray):
		d.IsArray = true
	default:
		p.errorf(p.peek(0).Pos, "expected declaration")
		p.next()
		return nil
	}
	d.Name = p.expect(token.IDENT).Lit
	if d.IsArray {
		p.expect(token.LBRACKET)
		sz := p.expect(token.INT)
		n, err := strconv.ParseInt(sz.Lit, 0, 64)
		if err != nil || n <= 0 {
			p.errorf(sz.Pos, "invalid array size %q", sz.Lit)
			n = 1
		}
		d.Size = n
		p.expect(token.RBRACKET)
	}
	p.expect(token.COLON)
	d.LabelName = p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return d
}

// ---------------------------------------------------------------------------
// Commands

// cmdStart reports whether the next token can begin a command.
func (p *parser) cmdStart() bool {
	switch p.peek(0).Kind {
	case token.KwSkip, token.KwIf, token.KwWhile, token.KwSleep, token.KwMitigate, token.IDENT:
		return true
	}
	return false
}

// parseCmdSeq parses one or more commands until the stop token, folding
// them right-associatively into Seq nodes (c1; (c2; c3)) to match the
// paper's sequential-composition semantics.
func (p *parser) parseCmdSeq(stop token.Kind) ast.Cmd {
	var cmds []ast.Cmd
	for p.cmdStart() {
		start := len(p.errors)
		cmds = append(cmds, p.parseCmd())
		if len(p.errors) > start {
			// Error recovery: skip to the next likely statement start.
			p.sync(stop)
		}
	}
	if len(cmds) == 0 {
		p.errorf(p.peek(0).Pos, "expected command, found %s", p.peek(0))
		// Synthesize an empty body as skip.
		return p.synthSkip(p.peek(0).Pos)
	}
	out := cmds[len(cmds)-1]
	for i := len(cmds) - 2; i >= 0; i-- {
		out = &ast.Seq{TokPos: cmds[i].Pos(), NodeID: p.newID(), First: cmds[i], Second: out}
	}
	return out
}

// sync skips tokens until a semicolon boundary, a brace, the stop
// token, or EOF — a simple panic-mode recovery.
func (p *parser) sync(stop token.Kind) {
	for {
		k := p.peek(0).Kind
		if k == token.EOF || k == stop || k == token.RBRACE {
			return
		}
		if k == token.SEMICOLON {
			p.next()
			return
		}
		p.next()
	}
}

func (p *parser) synthSkip(pos token.Pos) *ast.Skip {
	s := &ast.Skip{}
	s.TokPos = pos
	s.NodeID = p.newID()
	return s
}

// parseAnnot parses an optional [er,ew] annotation into lab.
func (p *parser) parseAnnot(lab *ast.Labels) {
	if !p.isAnnot() {
		return
	}
	p.expect(token.LBRACKET)
	lab.ReadName = p.expect(token.IDENT).Lit
	p.expect(token.COMMA)
	lab.WriteName = p.expect(token.IDENT).Lit
	p.expect(token.RBRACKET)
}

// isAnnot reports whether the upcoming tokens form "[ ident , ident ]".
func (p *parser) isAnnot() bool {
	return p.peek(0).Kind == token.LBRACKET &&
		p.peek(1).Kind == token.IDENT &&
		p.peek(2).Kind == token.COMMA &&
		p.peek(3).Kind == token.IDENT &&
		p.peek(4).Kind == token.RBRACKET
}

func (p *parser) parseBlock() ast.Cmd {
	p.expect(token.LBRACE)
	if p.accept(token.RBRACE) {
		// Empty block: synthesize skip so `else {}` behaves like the
		// paper's two-armed if.
		return p.synthSkip(p.peek(0).Pos)
	}
	c := p.parseCmdSeq(token.RBRACE)
	p.expect(token.RBRACE)
	return c
}

func (p *parser) parseCmd() ast.Cmd {
	t := p.peek(0)
	switch t.Kind {
	case token.KwSkip:
		p.next()
		c := &ast.Skip{}
		c.TokPos = t.Pos
		c.NodeID = p.newID()
		p.parseAnnot(&c.Lab)
		p.expect(token.SEMICOLON)
		return c

	case token.KwSleep:
		p.next()
		c := &ast.Sleep{}
		c.TokPos = t.Pos
		c.NodeID = p.newID()
		p.expect(token.LPAREN)
		c.X = p.parseExpr()
		p.expect(token.RPAREN)
		p.parseAnnot(&c.Lab)
		p.expect(token.SEMICOLON)
		return c

	case token.KwIf:
		p.next()
		c := &ast.If{}
		c.TokPos = t.Pos
		c.NodeID = p.newID()
		p.expect(token.LPAREN)
		c.Cond = p.parseExpr()
		p.expect(token.RPAREN)
		p.parseAnnot(&c.Lab)
		c.Then = p.parseBlock()
		if p.accept(token.KwElse) {
			c.Else = p.parseBlock()
		} else {
			c.Else = p.synthSkip(t.Pos)
		}
		return c

	case token.KwWhile:
		p.next()
		c := &ast.While{}
		c.TokPos = t.Pos
		c.NodeID = p.newID()
		p.expect(token.LPAREN)
		c.Cond = p.parseExpr()
		p.expect(token.RPAREN)
		p.parseAnnot(&c.Lab)
		c.Body = p.parseBlock()
		return c

	case token.KwMitigate:
		p.next()
		c := &ast.Mitigate{}
		c.TokPos = t.Pos
		c.NodeID = p.newID()
		c.MitID = -1
		if p.accept(token.AT) {
			idTok := p.expect(token.INT)
			id, err := strconv.Atoi(idTok.Lit)
			if err != nil || id < 0 {
				p.errorf(idTok.Pos, "invalid mitigate identifier %q", idTok.Lit)
			} else if p.usedMitIDs[id] {
				p.errorf(idTok.Pos, "duplicate mitigate identifier @%d", id)
			} else {
				c.MitID = id
			}
		}
		if c.MitID < 0 {
			// Assign the next unused sequential identifier.
			for p.usedMitIDs[p.nextMitID] {
				p.nextMitID++
			}
			c.MitID = p.nextMitID
		}
		p.usedMitIDs[c.MitID] = true
		if c.MitID >= p.maxMitID {
			p.maxMitID = c.MitID + 1
		}
		p.expect(token.LPAREN)
		c.Init = p.parseExpr()
		p.expect(token.COMMA)
		c.LevelName = p.expect(token.IDENT).Lit
		p.expect(token.RPAREN)
		p.parseAnnot(&c.Lab)
		c.Body = p.parseBlock()
		return c

	case token.IDENT:
		name := p.next().Lit
		if p.at(token.LBRACKET) && !p.isAnnot() {
			// Array store: x[e1] := e2.
			c := &ast.Store{}
			c.TokPos = t.Pos
			c.NodeID = p.newID()
			c.Name = name
			p.expect(token.LBRACKET)
			c.Idx = p.parseExpr()
			p.expect(token.RBRACKET)
			p.expect(token.ASSIGN)
			c.X = p.parseExpr()
			p.parseAnnot(&c.Lab)
			p.expect(token.SEMICOLON)
			return c
		}
		c := &ast.Assign{}
		c.TokPos = t.Pos
		c.NodeID = p.newID()
		c.Name = name
		p.expect(token.ASSIGN)
		c.X = p.parseExpr()
		p.parseAnnot(&c.Lab)
		p.expect(token.SEMICOLON)
		return c
	}
	p.errorf(t.Pos, "expected command, found %s", t)
	p.next()
	return p.synthSkip(t.Pos)
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		op := p.peek(0).Kind
		prec := op.Precedence()
		if !op.IsBinaryOp() || prec < minPrec {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.Binary{TokPos: opTok.Pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() ast.Expr {
	t := p.peek(0)
	switch t.Kind {
	case token.MINUS, token.NOT:
		p.next()
		return &ast.Unary{TokPos: t.Pos, Op: t.Kind, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.peek(0)
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{TokPos: t.Pos, Value: v}
	case token.IDENT:
		p.next()
		// Index, unless the bracket starts a trailing annotation.
		if p.at(token.LBRACKET) && !p.isAnnot() {
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			return &ast.Index{TokPos: t.Pos, Name: t.Lit, Idx: idx}
		}
		return &ast.Var{TokPos: t.Pos, Name: t.Lit}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.IntLit{TokPos: t.Pos, Value: 0}
}

package parser

import (
	"strings"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseDeclarations(t *testing.T) {
	p := mustParse(t, `
var h : H;
var l : L;
array m[64] : H;
skip;
`)
	if len(p.Decls) != 3 {
		t.Fatalf("got %d decls, want 3", len(p.Decls))
	}
	if p.Decls[0].Name != "h" || p.Decls[0].LabelName != "H" || p.Decls[0].IsArray {
		t.Errorf("decl 0: %+v", p.Decls[0])
	}
	d := p.Decl("m")
	if d == nil || !d.IsArray || d.Size != 64 {
		t.Errorf("array decl: %+v", d)
	}
	if p.Decl("nope") != nil {
		t.Error("Decl(nope) should be nil")
	}
}

func TestParseSkipWithAnnotation(t *testing.T) {
	p := mustParse(t, "skip [L,H];")
	s, ok := p.Body.(*ast.Skip)
	if !ok {
		t.Fatalf("body is %T", p.Body)
	}
	if s.Lab.ReadName != "L" || s.Lab.WriteName != "H" {
		t.Errorf("labels = %+v", s.Lab)
	}
}

func TestParseAssignVsStoreVsAnnotation(t *testing.T) {
	// The classic ambiguity: y [L,H] must be an annotation, y[i] an index.
	p := mustParse(t, "x := y [L,H];")
	a, ok := p.Body.(*ast.Assign)
	if !ok {
		t.Fatalf("body is %T", p.Body)
	}
	if _, ok := a.X.(*ast.Var); !ok {
		t.Errorf("rhs is %T, want Var", a.X)
	}
	if a.Lab.ReadName != "L" || a.Lab.WriteName != "H" {
		t.Errorf("labels = %+v", a.Lab)
	}

	p = mustParse(t, "x := y[i];")
	a = p.Body.(*ast.Assign)
	if _, ok := a.X.(*ast.Index); !ok {
		t.Errorf("rhs is %T, want Index", a.X)
	}

	p = mustParse(t, "m[i] := 3 [L,L];")
	st, ok := p.Body.(*ast.Store)
	if !ok {
		t.Fatalf("body is %T", p.Body)
	}
	if st.Name != "m" || st.Lab.ReadName != "L" {
		t.Errorf("store = %+v", st)
	}
}

func TestParseIfElse(t *testing.T) {
	p := mustParse(t, `
if (h) [H,H] {
    x := 1;
} else {
    x := 2;
}
`)
	c, ok := p.Body.(*ast.If)
	if !ok {
		t.Fatalf("body is %T", p.Body)
	}
	if c.Lab.ReadName != "H" || c.Lab.WriteName != "H" {
		t.Errorf("labels = %+v", c.Lab)
	}
	if _, ok := c.Then.(*ast.Assign); !ok {
		t.Errorf("then is %T", c.Then)
	}
}

func TestParseIfWithoutElse(t *testing.T) {
	p := mustParse(t, "if (x) { y := 1; }")
	c := p.Body.(*ast.If)
	if _, ok := c.Else.(*ast.Skip); !ok {
		t.Errorf("synthesized else is %T, want Skip", c.Else)
	}
}

func TestParseEmptyBlock(t *testing.T) {
	p := mustParse(t, "while (x) { }")
	w := p.Body.(*ast.While)
	if _, ok := w.Body.(*ast.Skip); !ok {
		t.Errorf("empty body is %T, want Skip", w.Body)
	}
}

func TestParseSequenceRightFold(t *testing.T) {
	p := mustParse(t, "a := 1; b := 2; c := 3;")
	s1, ok := p.Body.(*ast.Seq)
	if !ok {
		t.Fatalf("body is %T", p.Body)
	}
	if _, ok := s1.First.(*ast.Assign); !ok {
		t.Errorf("first is %T", s1.First)
	}
	s2, ok := s1.Second.(*ast.Seq)
	if !ok {
		t.Fatalf("second is %T, want Seq (right fold)", s1.Second)
	}
	if _, ok := s2.Second.(*ast.Assign); !ok {
		t.Errorf("inner second is %T", s2.Second)
	}
}

func TestParseMitigate(t *testing.T) {
	p := mustParse(t, `
mitigate (1, H) [L,L] {
    sleep(h) [H,H];
}
`)
	m, ok := p.Body.(*ast.Mitigate)
	if !ok {
		t.Fatalf("body is %T", p.Body)
	}
	if m.MitID != 0 {
		t.Errorf("MitID = %d, want 0", m.MitID)
	}
	if m.LevelName != "H" {
		t.Errorf("level = %q", m.LevelName)
	}
	if p.NumMitigates != 1 {
		t.Errorf("NumMitigates = %d", p.NumMitigates)
	}
}

func TestParseMitigateExplicitIDs(t *testing.T) {
	p := mustParse(t, `
mitigate@5 (1, H) { skip; }
mitigate (2, H) { skip; }
`)
	var ids []int
	ast.WalkCmds(p.Body, func(c ast.Cmd) bool {
		if m, ok := c.(*ast.Mitigate); ok {
			ids = append(ids, m.MitID)
		}
		return true
	})
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 0 {
		t.Errorf("ids = %v, want [5 0]", ids)
	}
}

func TestParseDuplicateMitigateID(t *testing.T) {
	_, err := Parse("mitigate@1 (1,H) { skip; } mitigate@1 (1,H) { skip; }")
	if err == nil {
		t.Error("expected duplicate-id error")
	}
}

func TestParseNestedMitigate(t *testing.T) {
	p := mustParse(t, `
mitigate (1, H) {
    if (h) [H,H] {
        mitigate (1, H) { x := x + 1 [H,H]; }
    } else {
        skip;
    }
}
`)
	ms := p.Mitigates()
	if len(ms) != 2 {
		t.Fatalf("got %d mitigates, want 2", len(ms))
	}
	if ms[0] == nil || ms[1] == nil {
		t.Fatal("nil mitigate in table")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	p := mustParse(t, "x := 1 + 2 * 3;")
	a := p.Body.(*ast.Assign)
	b, ok := a.X.(*ast.Binary)
	if !ok || b.Op != token.PLUS {
		t.Fatalf("top op = %v", a.X)
	}
	if r, ok := b.Y.(*ast.Binary); !ok || r.Op != token.STAR {
		t.Errorf("rhs = %v", b.Y)
	}
}

func TestParseLeftAssociativity(t *testing.T) {
	p := mustParse(t, "x := 10 - 3 - 2;")
	a := p.Body.(*ast.Assign)
	b := a.X.(*ast.Binary)
	if b.Op != token.MINUS {
		t.Fatalf("top op = %v", b.Op)
	}
	if l, ok := b.X.(*ast.Binary); !ok || l.Op != token.MINUS {
		t.Errorf("should parse as (10-3)-2, got lhs %T", b.X)
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	p := mustParse(t, "x := -(a + b) * !c;")
	a := p.Body.(*ast.Assign)
	b := a.X.(*ast.Binary)
	if b.Op != token.STAR {
		t.Fatalf("top op = %v", b.Op)
	}
	if _, ok := b.X.(*ast.Unary); !ok {
		t.Errorf("lhs = %T", b.X)
	}
	if _, ok := b.Y.(*ast.Unary); !ok {
		t.Errorf("rhs = %T", b.Y)
	}
}

func TestParseComparisonChain(t *testing.T) {
	p := mustParse(t, "x := a < b && c >= d || e == f;")
	a := p.Body.(*ast.Assign)
	b := a.X.(*ast.Binary)
	if b.Op != token.LOR {
		t.Errorf("top = %v, want ||", b.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x := ;",
		"if x { skip; }",
		"while (x { skip; }",
		"x + 1;",
		"mitigate (1) { skip; }",
		"var x H; skip;",
		"array a[0] : L; skip;",
		"array a[x] : L; skip;",
		"mitigate@-1 (1,H) { skip; }",
		"",
		"x := 99999999999999999999999999;",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorListFormatting(t *testing.T) {
	_, err := Parse("x := ; y := ;")
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error is %T", err)
	}
	if len(el) < 2 {
		t.Fatalf("want ≥2 errors, got %d: %v", len(el), el)
	}
	if !strings.Contains(el.Error(), "more error") {
		t.Errorf("multi-error message = %q", el.Error())
	}
	if ErrorList(nil).Error() != "no errors" {
		t.Error("empty list message")
	}
	if one := ErrorList(el[:1]); strings.Contains(one.Error(), "more") {
		t.Errorf("single-error message = %q", one.Error())
	}
}

func TestParseCmdFragment(t *testing.T) {
	c, err := ParseCmd("x := 1; y := 2;")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*ast.Seq); !ok {
		t.Errorf("fragment is %T", c)
	}
}

func TestNodeIDsUnique(t *testing.T) {
	p := mustParse(t, `
var h : H;
if (h) [H,H] { x := 1 [H,H]; sleep(2) [H,H]; } else { skip [H,H]; }
while (x < 3) { x := x + 1; }
`)
	seen := make(map[int]bool)
	ast.WalkCmds(p.Body, func(c ast.Cmd) bool {
		if seen[c.ID()] {
			t.Errorf("duplicate node ID %d", c.ID())
		}
		seen[c.ID()] = true
		if c.ID() >= p.NumNodes {
			t.Errorf("node ID %d out of range (NumNodes=%d)", c.ID(), p.NumNodes)
		}
		return true
	})
	if len(seen) < 7 {
		t.Errorf("only %d nodes walked", len(seen))
	}
}

func TestVars1(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"skip;", nil},
		{"x := a + b;", []string{"a", "b", "x"}},
		{"m[i] := v;", []string{"i", "v", "m"}},
		{"sleep(e);", []string{"e"}},
		{"if (g) { x := a; } else { skip; }", []string{"g"}},
		{"while (g + h) { x := a; }", []string{"g", "h"}},
		{"mitigate (n, H) { x := a; }", []string{"n"}},
		{"x := a; y := b;", []string{"a", "x"}}, // seq: vars1 of first
	}
	for _, c := range cases {
		cmd, err := ParseCmd(c.src)
		if err != nil {
			t.Fatalf("ParseCmd(%q): %v", c.src, err)
		}
		got := ast.Vars1(cmd)
		if len(got) != len(c.want) {
			t.Errorf("Vars1(%q) = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Vars1(%q) = %v, want %v", c.src, got, c.want)
				break
			}
		}
	}
}

func TestExprVarsDedup(t *testing.T) {
	cmd, err := ParseCmd("x := a + a * m[a+b];")
	if err != nil {
		t.Fatal(err)
	}
	a := cmd.(*ast.Assign)
	got := ast.ExprVars(a.X)
	want := []string{"a", "m", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

func TestWalkCmdsPruning(t *testing.T) {
	p := mustParse(t, "if (x) { a := 1; } else { b := 2; }")
	count := 0
	ast.WalkCmds(p.Body, func(c ast.Cmd) bool {
		count++
		return false // prune: only the root should be visited
	})
	if count != 1 {
		t.Errorf("visited %d nodes, want 1", count)
	}
}

func TestHexLiteralValue(t *testing.T) {
	p := mustParse(t, "x := 0x10;")
	a := p.Body.(*ast.Assign)
	lit := a.X.(*ast.IntLit)
	if lit.Value != 16 {
		t.Errorf("value = %d, want 16", lit.Value)
	}
}

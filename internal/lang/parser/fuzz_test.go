package parser

import (
	"testing"

	"repro/internal/lang/printer"
	"repro/internal/lattice"
	"repro/internal/types"
)

// FuzzParse checks three invariants on arbitrary input: the parser
// never panics; if the input parses, printing and re-parsing succeeds
// and is a print fixed point; and if it additionally type-checks, the
// resolved printout type-checks too. Run with `go test -fuzz=FuzzParse`
// for continuous fuzzing; `go test` alone exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"skip;",
		"var h : H;\nsleep(h) [H,H];",
		"var l : L; l := 1 + 2 * 3;",
		"array a[4] : L; a[0] := a[1];",
		"mitigate@2 (8, H) { skip; }",
		"if (x) { y := 1; } else { while (z) { skip; } }",
		"x := y [L,H];",
		"var x : L; x := 0x1F << 2;",
		"while (1) { }",
		"mitigate (1, H) [L,L] { mitigate (2, H) [H,H] { skip [H,H]; } }",
		"var x : Q; x := $;",
		"((((((",
		"]]]] ;;;; :=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lat := lattice.TwoPoint()
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out := printer.Print(prog, printer.Options{})
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed output unparsable: %v\ninput: %q\nprinted:\n%s", err, src, out)
		}
		out2 := printer.Print(prog2, printer.Options{})
		if out != out2 {
			t.Fatalf("print not a fixed point\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
		if _, err := types.Check(prog, lat); err != nil {
			return
		}
		resolved := printer.Print(prog, printer.Options{ShowResolved: true})
		prog3, err := Parse(resolved)
		if err != nil {
			t.Fatalf("resolved output unparsable: %v\n%s", err, resolved)
		}
		if _, err := types.Check(prog3, lat); err != nil {
			t.Fatalf("resolved output fails re-checking: %v\n%s", err, resolved)
		}
	})
}

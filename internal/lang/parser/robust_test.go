package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics throws random byte soup and random token soup
// at the parser: it must return errors, not panic, and must terminate.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	alphabet := []byte("abcxyzHL0123456789 \t\n(){}[];:=<>!&|^%*/+-,@\"$#")
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", buf, p)
				}
			}()
			Parse(string(buf))
			ParseCmd(string(buf))
		}()
	}
}

// TestParserTokenSoup builds inputs from valid token fragments in
// random order — closer to real parse-error territory than raw bytes.
func TestParserTokenSoup(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	frags := []string{
		"skip", "if", "else", "while", "sleep", "mitigate", "var", "array",
		"x", "h", "L", "H", "42", ":=", ";", "(", ")", "{", "}", "[", "]",
		",", ":", "@", "+", "==", "&&", "<<",
	}
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(40)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(frags[r.Intn(len(frags))])
			sb.WriteByte(' ')
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", sb.String(), p)
				}
			}()
			Parse(sb.String())
		}()
	}
}

// TestDeepNestingTerminates guards against stack or loop pathologies on
// adversarially nested input.
func TestDeepNestingTerminates(t *testing.T) {
	var sb strings.Builder
	depth := 300
	for i := 0; i < depth; i++ {
		sb.WriteString("if (1) { ")
	}
	sb.WriteString("skip;")
	for i := 0; i < depth; i++ {
		sb.WriteString(" } else { skip; }")
	}
	if _, err := Parse(sb.String()); err != nil {
		t.Fatalf("deeply nested valid program rejected: %v", err)
	}
	// Unbalanced deep nesting must error out, not hang.
	open := strings.Repeat("while (1) { ", 500)
	if _, err := Parse(open + "skip;"); err == nil {
		t.Error("unbalanced nesting should fail")
	}
	// Deeply nested expressions.
	expr := strings.Repeat("(", 500) + "1" + strings.Repeat(")", 500)
	if _, err := Parse("x := " + expr + ";"); err != nil {
		t.Errorf("deep parens: %v", err)
	}
}

// TestErrorRecoveryProducesMultipleDiagnostics exercises the sync-based
// recovery: several independent errors should each be reported.
func TestErrorRecoveryProducesMultipleDiagnostics(t *testing.T) {
	src := `
x := ;
y := 1;
z := * 2;
w := 3;
q := ) 4;
`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	el := err.(ErrorList)
	if len(el) < 2 {
		t.Errorf("recovery found only %d errors: %v", len(el), el)
	}
	if len(el) > 50 {
		t.Errorf("error cap exceeded: %d", len(el))
	}
}

// Package cache implements deterministic set-associative caches with
// LRU replacement, used as building blocks of the simulated machine
// environment.
//
// Following §4.1 of the paper, the model is the coarse-grained
// abstraction of cache state: a cache holds only (tag, valid) pairs —
// no data blocks — because for the modeled implementations the contents
// of data blocks do not affect access time. This choice is what lets
// confidential values reside in public cache partitions without
// violating single-step machine-environment noninterference
// (Property 7).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes a cache's geometry and timing.
type Config struct {
	// Name identifies the cache in diagnostics ("L1D", "L2I", …).
	Name string
	// Sets is the number of cache sets; must be a power of two.
	Sets int
	// Assoc is the number of ways per set (issue width in Table 1's
	// terminology).
	Assoc int
	// BlockSize is the line size in bytes; must be a power of two.
	BlockSize int
	// HitLatency is the access time in cycles on a hit.
	HitLatency uint64
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: Sets=%d must be a positive power of two", c.Name, c.Sets)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache %s: Assoc=%d must be positive", c.Name, c.Assoc)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache %s: BlockSize=%d must be a positive power of two", c.Name, c.BlockSize)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	// locked lines are never chosen as victims by Fill (only by
	// FillLocked); they model PL-cache-style line locking.
	locked bool
	// used is the per-set logical timestamp of the last touch, for LRU.
	used uint64
}

// Cache is a set-associative cache over the coarse-grained state
// abstraction. The zero value is unusable; construct with New.
type Cache struct {
	cfg  Config
	sets [][]line
	// blockShift/setShift/setMask are the precomputed log2 geometry
	// (Sets and BlockSize are validated powers of two), so the
	// per-access index split is shifts and masks, not divisions.
	blockShift uint
	setShift   uint
	setMask    uint64
	// clock is a monotonically increasing logical timestamp used to
	// order LRU decisions deterministically.
	clock uint64
	// gen counts membership changes: it is bumped whenever the set of
	// cached blocks (or lock bits) can change — Fill, FillLocked,
	// Invalidate, Flush — and deliberately NOT on LRU touches, which
	// reorder lines without changing which blocks hit. Memoized access
	// paths (hw.Site) use it to detect that a previously observed
	// hit/miss outcome is still valid.
	gen uint64

	// Statistics (not part of the machine-environment state: they do
	// not affect timing and are excluded from equivalence checks).
	hits, misses uint64
}

// Gen returns the membership generation counter (see the gen field).
func (c *Cache) Gen() uint64 { return c.gen }

// TouchRef is a stable reference to one cache line, captured by LineRef
// while the line holds a known block. Refresh replays exactly the state
// change of a refreshing hit on that block — LRU timestamp bump plus the
// hit counter — without re-scanning the set. A TouchRef is valid only
// while the owning cache's Gen() is unchanged: any fill, invalidate, or
// flush may repurpose the line.
type TouchRef struct {
	c  *Cache
	ln *line
}

// Refresh replays a refreshing hit: identical to the hit path of
// Probe(addr, true) for the referenced block.
func (r TouchRef) Refresh() {
	r.c.clock++
	r.ln.used = r.c.clock
	r.c.hits++
}

// LineRef returns a TouchRef for addr's line if the block is cached,
// without modifying any state (a pure probe, like Contains). The
// reference stays valid until the cache's Gen() changes.
func (c *Cache) LineRef(addr uint64) (TouchRef, bool) {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return TouchRef{c: c, ln: &ws[i]}, true
		}
	}
	return TouchRef{}, false
}

// New constructs an empty cache; it panics on invalid configuration
// (construction happens at setup time with static configs).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets)
	backing := make([]line, cfg.Sets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		blockShift: log2(uint64(cfg.BlockSize)),
		setShift:   log2(uint64(cfg.Sets)),
		setMask:    uint64(cfg.Sets) - 1,
	}
}

// log2 of a power of two (v must be one; geometry is validated at
// construction). A power of two has a single set bit, so its trailing
// zero count is its log — one hardware instruction instead of a loop.
func log2(v uint64) uint {
	return uint(bits.TrailingZeros64(v))
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// index returns the set index and tag of an address.
func (c *Cache) index(addr uint64) (set int, tag uint64) {
	block := addr >> c.blockShift
	return int(block & c.setMask), block >> c.setShift
}

// Contains reports whether addr's block is cached, without modifying
// any state (not even LRU order) — a pure probe.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr, updating LRU order on a hit, and reports
// whether it hit. It does NOT fill on a miss; use Fill to model
// allocation so that callers (the hardware models) decide fill policy
// according to write labels.
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		ln := &ws[i]
		if ln.valid && ln.tag == tag {
			c.clock++
			ln.used = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Probe is a fused Contains+Access for lookup paths that decide on the
// refresh separately from the hit test: one scan reports whether addr's
// block is cached and, when refresh is set, touches it exactly as
// Access would (LRU refresh, hit counted). With refresh false it is a
// pure probe like Contains, and a miss never counts against statistics
// (callers probing many partitions would otherwise skew miss counts).
func (c *Cache) Probe(addr uint64, refresh bool) bool {
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		ln := &ws[i]
		if ln.valid && ln.tag == tag {
			if refresh {
				c.clock++
				ln.used = c.clock
				c.hits++
			}
			return true
		}
	}
	return false
}

// Fill installs addr's block, evicting the least recently used
// UNLOCKED line in its set if necessary, and returns the evicted
// block's base address and whether an eviction occurred. If every line
// in the set is locked, the block is not installed at all (the PL-cache
// bypass case); ordinary caches never lock lines, so their behaviour is
// the classic LRU fill.
func (c *Cache) Fill(addr uint64) (evicted uint64, didEvict bool) {
	set, tag := c.index(addr)
	c.clock++
	c.gen++
	// Already present: refresh (idempotent fill).
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.used = c.clock
			return 0, false
		}
	}
	victim := -1
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.locked {
			continue
		}
		if !ln.valid {
			victim = i
			break
		}
		if victim < 0 || ln.used < c.sets[set][victim].used {
			victim = i
		}
	}
	if victim < 0 {
		return 0, false // all ways locked: bypass
	}
	v := &c.sets[set][victim]
	if v.valid {
		evicted = c.blockBase(set, v.tag)
		didEvict = true
	}
	v.tag = tag
	v.valid = true
	v.locked = false
	v.used = c.clock
	return evicted, didEvict
}

// FillLocked installs addr's block and locks its line, choosing the
// LRU victim among ALL lines (locked lines may displace each other).
// It returns the evicted block and whether an eviction occurred.
func (c *Cache) FillLocked(addr uint64) (evicted uint64, didEvict bool) {
	set, tag := c.index(addr)
	c.clock++
	c.gen++
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.used = c.clock
			ln.locked = true
			return 0, false
		}
	}
	victim := 0
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.used < c.sets[set][victim].used {
			victim = i
		}
	}
	v := &c.sets[set][victim]
	if v.valid {
		evicted = c.blockBase(set, v.tag)
		didEvict = true
	}
	v.tag = tag
	v.valid = true
	v.locked = true
	v.used = c.clock
	return evicted, didEvict
}

// LockedCount returns the number of locked lines.
func (c *Cache) LockedCount() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].locked {
				n++
			}
		}
	}
	return n
}

// blockBase reconstructs a block's base address from set and tag.
func (c *Cache) blockBase(set int, tag uint64) uint64 {
	return (tag<<c.setShift | uint64(set)) << c.blockShift
}

// Invalidate removes addr's block if present, reporting whether it was.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			// Only a successful invalidation changes membership; the
			// common no-op case (partitioned fills invalidating absent
			// blocks) must not churn memo generations.
			c.gen++
			return true
		}
	}
	return false
}

// Flush empties the cache; statistics are preserved.
func (c *Cache) Flush() {
	c.gen++
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line{}
		}
	}
}

// Clone returns a deep copy, including LRU state (so timing-relevant
// state is reproduced exactly) but with statistics reset.
func (c *Cache) Clone() *Cache {
	n := New(c.cfg)
	for s := range c.sets {
		copy(n.sets[s], c.sets[s])
	}
	n.clock = c.clock
	return n
}

// StateEqual reports whether two caches hold the same set of valid
// blocks. It deliberately ignores LRU timestamps when the caches hold
// the same blocks in the same sets: the paper's projected equivalence
// on machine environments is about what a timing observer can
// distinguish, and for equality of *future* timing the LRU *order*
// matters, so StateEqual compares relative LRU order, not raw clocks.
func (c *Cache) StateEqual(o *Cache) bool {
	if c.cfg.Sets != o.cfg.Sets || c.cfg.Assoc != o.cfg.Assoc || c.cfg.BlockSize != o.cfg.BlockSize {
		return false
	}
	for s := range c.sets {
		if !setEqual(c.sets[s], o.sets[s]) {
			return false
		}
	}
	return true
}

// setEqual compares two cache sets: same valid tags, same relative LRU
// order among valid lines.
func setEqual(a, b []line) bool {
	// Gather valid lines sorted by used time (ascending).
	av := validByAge(a)
	bv := validByAge(b)
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// validByAge returns the tags of valid lines ordered from least to most
// recently used, with locked lines distinguished by a high marker bit
// so equivalence sees lock state; insertion sort is fine for small
// associativity.
func validByAge(set []line) []uint64 {
	type tu struct {
		tag  uint64
		used uint64
	}
	const lockBit = 1 << 63
	var v []tu
	for _, ln := range set {
		if ln.valid {
			tag := ln.tag
			if ln.locked {
				tag |= lockBit
			}
			v = append(v, tu{tag, ln.used})
		}
	}
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].used < v[j-1].used; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	tags := make([]uint64, len(v))
	for i := range v {
		tags[i] = v[i].tag
	}
	return tags
}

// Stats returns hit and miss counts accumulated since construction (or
// Clone, which resets them).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}

// Blocks returns the base addresses of all cached blocks in a
// deterministic order (set-major, then LRU age). Useful in tests.
func (c *Cache) Blocks() []uint64 {
	var out []uint64
	for s := range c.sets {
		for _, tag := range validByAge(c.sets[s]) {
			out = append(out, c.blockBase(s, tag))
		}
	}
	return out
}

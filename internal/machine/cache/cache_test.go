package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", Sets: 4, Assoc: 2, BlockSize: 16, HitLatency: 1})
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid small", Config{Name: "g", Sets: 4, Assoc: 1, BlockSize: 16}, true},
		{"valid large", Config{Name: "g", Sets: 128, Assoc: 4, BlockSize: 32, HitLatency: 1}, true},
		{"valid direct-mapped single set", Config{Name: "g", Sets: 1, Assoc: 1, BlockSize: 1}, true},
		{"sets not a power of two", Config{Name: "a", Sets: 3, Assoc: 1, BlockSize: 16}, false},
		{"sets not a power of two (large)", Config{Name: "a", Sets: 1000, Assoc: 1, BlockSize: 16}, false},
		{"sets zero", Config{Name: "d", Sets: 0, Assoc: 1, BlockSize: 16}, false},
		{"sets negative", Config{Name: "d", Sets: -4, Assoc: 1, BlockSize: 16}, false},
		{"assoc zero", Config{Name: "b", Sets: 4, Assoc: 0, BlockSize: 16}, false},
		{"assoc negative", Config{Name: "b", Sets: 4, Assoc: -2, BlockSize: 16}, false},
		{"block size not a power of two", Config{Name: "c", Sets: 4, Assoc: 1, BlockSize: 24}, false},
		{"block size zero", Config{Name: "e", Sets: 4, Assoc: 1, BlockSize: 0}, false},
		{"block size negative", Config{Name: "e", Sets: 4, Assoc: 1, BlockSize: -16}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.ok && err != nil {
				t.Errorf("config %+v should be valid: %v", tt.cfg, err)
			}
			if !tt.ok && err == nil {
				t.Errorf("config %+v should be invalid", tt.cfg)
			}
		})
	}
}

// TestLog2 pins the bit-trick log2 against the definition for every
// power of two a cache geometry can use.
func TestLog2(t *testing.T) {
	for s := uint(0); s < 64; s++ {
		if got := log2(uint64(1) << s); got != s {
			t.Errorf("log2(1<<%d) = %d, want %d", s, got, s)
		}
	}
}

// TestIndexGeometry checks the shift/mask address split produced by
// log2 end to end: filling a block makes every address within it hit
// and its set/tag round-trip through blockBase.
func TestIndexGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "g1", Sets: 1, Assoc: 1, BlockSize: 1},
		{Name: "g2", Sets: 8, Assoc: 2, BlockSize: 4},
		{Name: "g3", Sets: 64, Assoc: 4, BlockSize: 64},
	} {
		c := New(cfg)
		base := uint64(5) * uint64(cfg.Sets*cfg.BlockSize) // arbitrary tag ≥ 1
		c.Fill(base)
		for off := 0; off < cfg.BlockSize; off++ {
			if !c.Contains(base + uint64(off)) {
				t.Errorf("%s: offset %d of filled block not contained", cfg.Name, off)
			}
		}
		if c.Contains(base + uint64(cfg.BlockSize)) {
			t.Errorf("%s: adjacent block unexpectedly contained", cfg.Name)
		}
		set, tag := c.index(base)
		if got := c.blockBase(set, tag); got != base {
			t.Errorf("%s: blockBase(index(%#x)) = %#x", cfg.Name, base, got)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Sets: 3, Assoc: 1, BlockSize: 16})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x100) {
		t.Error("cold access should miss")
	}
	c.Fill(0x100)
	if !c.Access(0x100) {
		t.Error("filled block should hit")
	}
	// Same block, different offset.
	if !c.Access(0x10F) {
		t.Error("same block should hit")
	}
	// Next block misses.
	if c.Access(0x110) {
		t.Error("adjacent block should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d, want 2/2", hits, misses)
	}
}

func TestContainsIsPure(t *testing.T) {
	c := small()
	c.Fill(0x0)   // set 0
	c.Fill(0x100) // set 0 (4 sets * 16B = 64B stride); 0x100/16=16, 16%4=0
	// Set 0 now full (assoc 2). LRU is 0x0.
	if !c.Contains(0x0) || !c.Contains(0x100) {
		t.Fatal("both blocks should be present")
	}
	// Probing must not refresh LRU: after probing 0x0, filling a new
	// block must still evict 0x0.
	c.Contains(0x0)
	ev, did := c.Fill(0x200) // also set 0
	if !did || ev != 0x0 {
		t.Errorf("evicted %#x,%v; want 0x0,true", ev, did)
	}
}

func TestAccessRefreshesLRU(t *testing.T) {
	c := small()
	c.Fill(0x0)
	c.Fill(0x100)
	c.Access(0x0) // refresh 0x0; now 0x100 is LRU
	ev, did := c.Fill(0x200)
	if !did || ev != 0x100 {
		t.Errorf("evicted %#x,%v; want 0x100,true", ev, did)
	}
}

func TestFillIdempotent(t *testing.T) {
	c := small()
	c.Fill(0x40)
	ev, did := c.Fill(0x40)
	if did || ev != 0 {
		t.Error("re-filling present block must not evict")
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := small()
	c.Fill(0x40)
	c.Fill(0x80)
	if !c.Invalidate(0x40) {
		t.Error("invalidate should find block")
	}
	if c.Invalidate(0x40) {
		t.Error("second invalidate should miss")
	}
	if c.Contains(0x40) {
		t.Error("block still present after invalidate")
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Error("flush should empty cache")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := small()
	c.Fill(0x40)
	d := c.Clone()
	if !c.StateEqual(d) {
		t.Fatal("clone should equal original")
	}
	d.Fill(0x80)
	if c.Contains(0x80) {
		t.Error("mutating clone affected original")
	}
	if c.StateEqual(d) {
		t.Error("states should now differ")
	}
}

func TestStateEqualIgnoresAbsoluteClock(t *testing.T) {
	// Two caches with the same blocks in the same relative LRU order
	// are equal even if built by different access sequences.
	a := small()
	b := small()
	a.Fill(0x0)
	a.Fill(0x100)
	a.Access(0x0)

	b.Fill(0x100)
	b.Access(0x100) // extra touches shift absolute clocks
	b.Fill(0x0)
	// a: order (LRU→MRU) = 0x100, 0x0. b: 0x100, 0x0. Equal.
	if !a.StateEqual(b) {
		t.Error("same relative LRU order should be equal")
	}
	b.Access(0x100) // now b order = 0x0, 0x100
	if a.StateEqual(b) {
		t.Error("different LRU order should differ")
	}
}

func TestStateEqualDifferentGeometry(t *testing.T) {
	a := small()
	b := New(Config{Name: "t", Sets: 8, Assoc: 2, BlockSize: 16})
	if a.StateEqual(b) {
		t.Error("different geometries should not be equal")
	}
}

func TestBlocksDeterministic(t *testing.T) {
	c := small()
	// Distinct sets (0,1,2,3) plus a second way in set 0: all five fit.
	addrs := []uint64{0x0, 0x10, 0x20, 0x30, 0x40}
	for _, a := range addrs {
		c.Fill(a)
	}
	b1 := c.Blocks()
	b2 := c.Blocks()
	if len(b1) != len(addrs) {
		t.Fatalf("blocks = %v", b1)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("Blocks not deterministic")
		}
	}
}

func TestDirectMapped(t *testing.T) {
	c := New(Config{Name: "dm", Sets: 4, Assoc: 1, BlockSize: 16})
	c.Fill(0x0)
	ev, did := c.Fill(0x40) // maps to set 0 too
	if !did || ev != 0x0 {
		t.Errorf("direct-mapped conflict: evicted %#x,%v", ev, did)
	}
}

// Property: a cache never holds more than Assoc blocks per set, and
// Contains agrees with Access-hit behaviour.
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "q", Sets: 8, Assoc: 2, BlockSize: 32})
		mirror := make(map[uint64]bool) // block base -> present per our model
		_ = mirror
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(4096))
			switch r.Intn(3) {
			case 0:
				pre := c.Contains(addr)
				hit := c.Access(addr)
				if pre != hit {
					return false
				}
			case 1:
				c.Fill(addr)
				if !c.Contains(addr) {
					return false
				}
			case 2:
				c.Invalidate(addr)
				if c.Contains(addr) {
					return false
				}
			}
		}
		// Per-set occupancy bound.
		return c.Occupancy() <= 8*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Clone + identical access sequences ⇒ identical states
// (determinism of the cache model, needed for Property 2 of the paper).
func TestCacheDeterminismQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c1 := New(Config{Name: "q", Sets: 4, Assoc: 4, BlockSize: 16})
		// Random warmup.
		for i := 0; i < 50; i++ {
			c1.Fill(uint64(r.Intn(1024)))
		}
		c2 := c1.Clone()
		seq := make([]uint64, 100)
		for i := range seq {
			seq[i] = uint64(r.Intn(1024))
		}
		for _, a := range seq {
			h1 := c1.Access(a)
			h2 := c2.Access(a)
			if h1 != h2 {
				return false
			}
			if !h1 {
				c1.Fill(a)
				c2.Fill(a)
			}
		}
		return c1.StateEqual(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

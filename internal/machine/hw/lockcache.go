package hw

import (
	"repro/internal/lattice"
)

// LockProtect models a PL-cache-style design in the spirit of Wang &
// Lee (cited in the paper's §2.2): a single shared hierarchy in which
// confidential accesses LOCK the lines they touch, and public fills may
// not displace locked lines. The intent is that once the secret working
// set (e.g. an AES table) is resident and locked, public activity can
// no longer observe it.
//
// The paper's critique — "works only under the assumption that the AES
// lookup table is preloaded into cache and that the load time is not
// observable" — is reproducible here: the *initial* confidential fills
// evict public lines from the shared sets, so a coresident prime+probe
// adversary observes the secret access pattern during warm-up; only
// afterwards does the design go quiet. The props checkers flag exactly
// that: Property 5 (write label) fails on the cold path, while a
// preloaded environment passes the same trials.
type LockProtect struct {
	lat   lattice.Lattice
	cfg   Config
	data  *hier
	instr *hier
	bp    *predictor
	stats Stats
}

var _ Env = (*LockProtect)(nil)

// NewLockProtect constructs the lock-based environment.
func NewLockProtect(lat lattice.Lattice, cfg Config) *LockProtect {
	mustValidate(cfg)
	return &LockProtect{
		lat:   lat,
		cfg:   cfg,
		data:  newHier(cfg.Data, "DTLB"),
		instr: newHier(cfg.Instr, "ITLB"),
		bp:    newPredictor(cfg.BP.Size),
	}
}

// Access implements Env. Public accesses behave normally except that
// fills skip locked lines (bypassing when a set is fully locked);
// confidential accesses lock what they fill.
func (l *LockProtect) Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	h, hcfg := l.data, l.cfg.Data
	st := l.statsFor(kind)
	if kind == Fetch {
		h, hcfg = l.instr, l.cfg.Instr
	}
	confidential := ew != l.lat.Bot()

	var cost uint64
	if h.tlb.Access(addr) {
		*st.tlbh++
	} else {
		*st.tlbm++
		cost += hcfg.TLBMissPenalty
		if confidential {
			h.tlb.FillLocked(addr)
		} else {
			h.tlb.Fill(addr)
		}
	}
	cost += hcfg.L1.HitLatency
	if h.l1.Access(addr) {
		*st.l1h++
		return cost
	}
	*st.l1m++
	cost += hcfg.L2.HitLatency
	fill := func(c interface {
		Fill(uint64) (uint64, bool)
		FillLocked(uint64) (uint64, bool)
	}) {
		if confidential {
			c.FillLocked(addr)
		} else {
			c.Fill(addr)
		}
	}
	if h.l2.Access(addr) {
		*st.l2h++
		fill(h.l1)
		return cost
	}
	*st.l2m++
	cost += hcfg.MemLatency
	fill(h.l2)
	fill(h.l1)
	return cost
}

// Branch implements Env: one shared predictor, like Unpartitioned (the
// design says nothing about predictors — another gap the contract
// exposes).
func (l *LockProtect) Branch(addr uint64, taken bool, er, ew lattice.Label) uint64 {
	c := branchCost(l.bp, l.cfg.BP, addr, taken)
	if !l.bp.enabled() {
		return 0
	}
	if c > 0 {
		l.stats.BPMisses++
	} else {
		l.stats.BPHits++
	}
	return c
}

func (l *LockProtect) statsFor(kind AccessKind) *hierStats {
	if kind == Fetch {
		return &hierStats{&l.stats.L1IHits, &l.stats.L1IMisses, &l.stats.L2IHits, &l.stats.L2IMisses, &l.stats.ITLBHits, &l.stats.ITLBMisses}
	}
	return &hierStats{&l.stats.L1DHits, &l.stats.L1DMisses, &l.stats.L2DHits, &l.stats.L2DMisses, &l.stats.DTLBHits, &l.stats.DTLBMisses}
}

// Preload warms and locks a confidential working set — the very
// assumption the design needs. Call before exposing the machine to an
// adversary; the tests show the difference it makes.
func (l *LockProtect) Preload(addrs []uint64) {
	top := l.lat.Top()
	for _, a := range addrs {
		l.Access(Read, a, top, top)
	}
}

// Clone implements Env.
func (l *LockProtect) Clone() Env {
	return &LockProtect{lat: l.lat, cfg: l.cfg, data: l.data.clone(), instr: l.instr.clone(), bp: l.bp.clone()}
}

// ProjEqual implements Env: all state is nominally public (the design
// has no label-indexed state).
func (l *LockProtect) ProjEqual(other Env, lv lattice.Label) bool {
	o, ok := other.(*LockProtect)
	if !ok {
		return false
	}
	if lv != l.lat.Bot() {
		return true
	}
	return l.data.stateEqual(o.data) && l.instr.stateEqual(o.instr) && l.bp.stateEqual(o.bp)
}

// LowEqual implements Env.
func (l *LockProtect) LowEqual(other Env, lv lattice.Label) bool {
	return lowEqual(l, other, lv)
}

// Reset implements Env.
func (l *LockProtect) Reset() {
	l.data.flush()
	l.instr.flush()
	l.bp.flush()
}

// Lattice implements Env.
func (l *LockProtect) Lattice() lattice.Lattice { return l.lat }

// Name implements Env.
func (l *LockProtect) Name() string { return "lock-protect" }

// Stats implements Env.
func (l *LockProtect) Stats() Stats { return l.stats }

// LockedLines reports the locked line counts (data L1, data L2) for
// inspection in tests.
func (l *LockProtect) LockedLines() (l1, l2 int) {
	return l.data.l1.LockedCount(), l.data.l2.LockedCount()
}

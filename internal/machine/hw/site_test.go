package hw

import (
	"math/rand"
	"testing"

	"repro/internal/lattice"
)

// siteEnvs builds one instance of every SiteEnv implementation over a
// tiny geometry (so random addresses provoke evictions and TLB misses)
// and a non-trivial lattice.
func siteEnvs(lat lattice.Lattice) []SiteEnv {
	cfg := TinyConfig()
	return []SiteEnv{
		NewUnpartitioned(lat, cfg),
		NewNoFill(lat, cfg),
		NewPartitioned(lat, cfg),
		NewFlat(lat, 3),
	}
}

// TestAccessSiteMatchesAccess drives the memoized fast path and the
// generic path with the same random access sequence on clones of the
// same environment and requires bit-identical behaviour: per-access
// costs, final Stats, and state equivalence at every lattice level.
// The sequence mixes a small number of static "sites" (each with a
// fixed kind and mostly-stable address and labels, like program
// instructions) so memos are built, replayed many times, invalidated by
// interleaved evicting traffic, and rebuilt.
func TestAccessSiteMatchesAccess(t *testing.T) {
	for _, lat := range []lattice.Lattice{lattice.TwoPoint(), lattice.Diamond()} {
		levels := lat.Levels()
		for _, se := range siteEnvs(lat) {
			t.Run(lat.Name()+"/"+se.Name(), func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				generic := se.Clone()
				fast := se.Clone().(SiteEnv)

				const nSites = 24
				type siteSpec struct {
					kind   AccessKind
					addr   uint64
					er, ew lattice.Label
				}
				specs := make([]siteSpec, nSites)
				sites := make([]Site, nSites)
				for i := range specs {
					specs[i] = siteSpec{
						kind: AccessKind(rng.Intn(3)),
						addr: uint64(rng.Intn(64)) * 8,
						er:   levels[rng.Intn(len(levels))],
						ew:   levels[rng.Intn(len(levels))],
					}
				}
				for step := 0; step < 20000; step++ {
					i := rng.Intn(nSites)
					sp := specs[i]
					addr := sp.addr
					if rng.Intn(16) == 0 {
						// Occasionally vary the address (an indexed
						// array site) — the memo must re-key.
						addr += uint64(rng.Intn(8)) * 8
					}
					if rng.Intn(64) == 0 {
						// Occasionally vary the labels (a fetch site
						// reached under different SETLBL history).
						sp.er = levels[rng.Intn(len(levels))]
					}
					cg := generic.Access(sp.kind, addr, sp.er, sp.ew)
					cf := fast.AccessSite(&sites[i], sp.kind, addr, sp.er, sp.ew)
					if cg != cf {
						t.Fatalf("step %d site %d: cost %d (generic) != %d (site)", step, i, cg, cf)
					}
				}
				if generic.Stats() != fast.Stats() {
					t.Fatalf("stats diverged:\ngeneric %+v\nsite    %+v", generic.Stats(), fast.Stats())
				}
				for _, lv := range levels {
					if !generic.ProjEqual(fast, lv) {
						t.Fatalf("state diverged at level %v", lv)
					}
				}
			})
		}
	}
}

// TestAccessSiteInterleavedWithAccess checks that a Site survives other
// traffic going through the plain Access path on the same environment —
// the VM mixes AccessSite (memoized instructions) with Access/Branch
// (everything else), and a memo must never replay across a membership
// change caused by non-site traffic.
func TestAccessSiteInterleavedWithAccess(t *testing.T) {
	lat := lattice.TwoPoint()
	for _, se := range siteEnvs(lat) {
		t.Run(se.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			generic := se.Clone()
			fast := se.Clone().(SiteEnv)
			var site Site
			bot := lat.Bot()
			for step := 0; step < 5000; step++ {
				if rng.Intn(3) == 0 {
					// The memoized site.
					cg := generic.Access(Read, 0x100, bot, bot)
					cf := fast.AccessSite(&site, Read, 0x100, bot, bot)
					if cg != cf {
						t.Fatalf("step %d: site cost %d != %d", step, cf, cg)
					}
				} else {
					// Conflicting plain traffic evicting the site's line.
					addr := uint64(rng.Intn(32)) * 16
					cg := generic.Access(Read, addr, bot, bot)
					cf := fast.Access(Read, addr, bot, bot)
					if cg != cf {
						t.Fatalf("step %d: plain cost %d != %d", step, cf, cg)
					}
				}
			}
			if generic.Stats() != fast.Stats() {
				t.Fatalf("stats diverged:\ngeneric %+v\nsite    %+v", generic.Stats(), fast.Stats())
			}
			for _, lv := range lat.Levels() {
				if !generic.ProjEqual(fast, lv) {
					t.Fatalf("state diverged at level %v", lv)
				}
			}
		})
	}
}

package hw

import (
	"repro/internal/lattice"
)

// FlushOnHigh models a flush-based secure design: a single public
// hierarchy that is flushed entirely whenever a command with a
// non-public write label executes; such commands are then served
// straight from memory.
//
// This design is instructive because it is (for well-typed programs)
// end-to-end secure — after any confidential region the public cache
// state is empty in every execution, so Theorem 1's conclusion holds —
// yet it VIOLATES the paper's per-step write-label requirement
// (Property 5): a high-context step does modify public machine state
// (it empties it). The props checkers detect exactly this, which makes
// FlushOnHigh a demonstration that the paper's software–hardware
// contract is sufficient but not necessary: conservative per-step
// conditions can reject globally-secure designs. (It is also an
// ablation point: flushing costs far more than partitioning.)
type FlushOnHigh struct {
	lat   lattice.Lattice
	cfg   Config
	data  *hier
	instr *hier
	bp    *predictor
	stats Stats
}

var _ Env = (*FlushOnHigh)(nil)

// NewFlushOnHigh constructs the flush-based environment.
func NewFlushOnHigh(lat lattice.Lattice, cfg Config) *FlushOnHigh {
	mustValidate(cfg)
	return &FlushOnHigh{
		lat:   lat,
		cfg:   cfg,
		data:  newHier(cfg.Data, "DTLB"),
		instr: newHier(cfg.Instr, "ITLB"),
		bp:    newPredictor(cfg.BP.Size),
	}
}

// Access implements Env. Public-write-label accesses behave normally;
// all others flush the entire machine state and pay the full miss path.
func (f *FlushOnHigh) Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	h, hcfg := f.data, f.cfg.Data
	st := f.statsFor(kind)
	if kind == Fetch {
		h, hcfg = f.instr, f.cfg.Instr
	}
	if ew == f.lat.Bot() {
		return normalAccess(h, hcfg, addr, st)
	}
	// Confidential context: flush everything, serve from memory.
	f.data.flush()
	f.instr.flush()
	f.bp.flush()
	*st.tlbm++
	*st.l1m++
	*st.l2m++
	return hcfg.TLBMissPenalty + hcfg.L1.HitLatency + hcfg.L2.HitLatency + hcfg.MemLatency
}

// Branch implements Env: public branches use the single predictor; a
// confidential branch flushes it along with the rest of the state.
func (f *FlushOnHigh) Branch(addr uint64, taken bool, er, ew lattice.Label) uint64 {
	if !f.bp.enabled() {
		return 0
	}
	if ew == f.lat.Bot() {
		c := branchCost(f.bp, f.cfg.BP, addr, taken)
		if c > 0 {
			f.stats.BPMisses++
		} else {
			f.stats.BPHits++
		}
		return c
	}
	f.data.flush()
	f.instr.flush()
	f.bp.flush()
	f.stats.BPMisses++
	return f.cfg.BP.MissPenalty
}

func (f *FlushOnHigh) statsFor(kind AccessKind) *hierStats {
	if kind == Fetch {
		return &hierStats{&f.stats.L1IHits, &f.stats.L1IMisses, &f.stats.L2IHits, &f.stats.L2IMisses, &f.stats.ITLBHits, &f.stats.ITLBMisses}
	}
	return &hierStats{&f.stats.L1DHits, &f.stats.L1DMisses, &f.stats.L2DHits, &f.stats.L2DMisses, &f.stats.DTLBHits, &f.stats.DTLBMisses}
}

// Clone implements Env.
func (f *FlushOnHigh) Clone() Env {
	return &FlushOnHigh{lat: f.lat, cfg: f.cfg, data: f.data.clone(), instr: f.instr.clone(), bp: f.bp.clone()}
}

// ProjEqual implements Env: all state is public (level ⊥).
func (f *FlushOnHigh) ProjEqual(other Env, lv lattice.Label) bool {
	o, ok := other.(*FlushOnHigh)
	if !ok {
		return false
	}
	if lv != f.lat.Bot() {
		return true
	}
	return f.data.stateEqual(o.data) && f.instr.stateEqual(o.instr) && f.bp.stateEqual(o.bp)
}

// LowEqual implements Env.
func (f *FlushOnHigh) LowEqual(other Env, lv lattice.Label) bool {
	return lowEqual(f, other, lv)
}

// Reset implements Env.
func (f *FlushOnHigh) Reset() {
	f.data.flush()
	f.instr.flush()
	f.bp.flush()
}

// Lattice implements Env.
func (f *FlushOnHigh) Lattice() lattice.Lattice { return f.lat }

// Name implements Env.
func (f *FlushOnHigh) Name() string { return "flush-on-high" }

// Stats implements Env.
func (f *FlushOnHigh) Stats() Stats { return f.stats }

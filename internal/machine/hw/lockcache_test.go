package hw

import (
	"testing"
)

func TestLockProtectLocksConfidentialLines(t *testing.T) {
	lat, L, H := two()
	env := NewLockProtect(lat, TinyConfig())
	env.Access(Read, 0x40, H, H)
	l1, _ := env.LockedLines()
	if l1 != 1 {
		t.Errorf("locked L1 lines = %d, want 1", l1)
	}
	// A conflicting public fill cannot displace the locked line.
	env.Access(Read, 0x40+64, L, L)  // same Tiny L1 set (4 sets × 16B)
	env.Access(Read, 0x40+128, L, L) // fills the other way, set full
	env.Access(Read, 0x40+192, L, L) // bypasses (one way locked, one busy)
	hot := env.Access(Read, 0x40, H, H)
	if hot != TinyConfig().Data.L1.HitLatency {
		t.Errorf("locked line should survive public pressure: cost %d", hot)
	}
}

func TestLockProtectColdLoadObservable(t *testing.T) {
	// The §2.2 critique: the confidential working set's INITIAL load
	// evicts public lines, so the load is observable. After preloading,
	// the same confidential access pattern is silent.
	lat, L, H := two()

	// probeCost primes the victim's cache set with adversary lines,
	// optionally lets the victim run, and returns the probe cost of the
	// oldest primed line. Comparing against a no-victim control run
	// isolates the victim's effect.
	probeCost := func(preload, runVictim bool) uint64 {
		env := NewLockProtect(lat, TinyConfig())
		if preload {
			env.Preload([]uint64{0x40})
		}
		env.Access(Read, 0x40+64, L, L) // same Tiny L1 set as 0x40
		env.Access(Read, 0x40+128, L, L)
		if runVictim {
			env.Access(Read, 0x40, H, H)
		}
		return env.Access(Read, 0x40+64, L, L)
	}
	if probeCost(false, true) <= probeCost(false, false) {
		t.Error("cold confidential load should be observable (the preload assumption)")
	}
	if probeCost(true, true) != probeCost(true, false) {
		t.Error("preloaded confidential access should be silent")
	}
}

func TestLockProtectContractProfile(t *testing.T) {
	// Fresh (not preloaded) lock-protect hardware violates Property 5:
	// a confidential access modifies public-visible shared state.
	lat, L, H := two()
	env := NewLockProtect(lat, TinyConfig())
	env.Access(Read, 0x40+64, L, L)
	before := env.Clone()
	env.Access(Read, 0x40, H, H) // cold: locks a line in the shared set
	if env.ProjEqual(before, L) {
		t.Error("cold confidential fill should modify shared (public) state — the design's flaw")
	}
	// Determinism still holds.
	e1 := NewLockProtect(lat, TinyConfig())
	e2 := NewLockProtect(lat, TinyConfig())
	for i := 0; i < 30; i++ {
		lv := L
		if i%2 == 0 {
			lv = H
		}
		a := uint64(i * 24)
		if e1.Access(Read, a, lv, lv) != e2.Access(Read, a, lv, lv) {
			t.Fatal("nondeterministic")
		}
	}
	if !e1.LowEqual(e2, lat.Top()) {
		t.Error("equal histories should give equal states")
	}
}

func TestLockProtectBasics(t *testing.T) {
	lat, L, _ := two()
	env := NewLockProtect(lat, TinyConfig())
	cold := env.Access(Read, 0x800, L, L)
	warm := env.Access(Read, 0x800, L, L)
	if warm >= cold {
		t.Error("public path should cache normally")
	}
	cl := env.Clone()
	if !env.LowEqual(cl, lat.Top()) {
		t.Error("clone equal")
	}
	env.Reset()
	again := env.Access(Read, 0x800, L, L)
	if again != cold {
		t.Error("reset should clear locks and contents")
	}
	if env.Name() != "lock-protect" {
		t.Error("name")
	}
	if env.Branch(0x4, true, L, L) == 0 {
		t.Error("cold branch should mispredict on the shared predictor")
	}
	if env.ProjEqual(NewFlat(lat, 1), L) {
		t.Error("cross-type equality")
	}
}

package hw

import (
	"repro/internal/lattice"
	"repro/internal/machine/cache"
)

// This file implements the per-access-site memoization fast path used
// by the optimized bytecode VM. The simulated hardware dominates the
// interpreter's host cost (every Access walks TLB and cache partitions
// even in the steady all-hit state), but the simulation itself is
// deterministic: from the same membership state, the same access gets
// the same cost and causes the same state change. A Site caches the
// complete observable effect of one static access site's last access —
// cost, the LRU refreshes it performed, and the statistics counters it
// bumped — guarded by the membership generations (cache.Cache.Gen) of
// every structure the outcome depended on. While no guard structure's
// membership changes, replaying the memo is bit-for-bit identical to
// re-running the full simulation: identical cost, identical simulated
// state (the same lines get the same LRU touches in the same order),
// identical Stats. Any fill, invalidation, or flush bumps a generation
// and sends the next access back to the slow path.
//
// Only outcomes that mutate no membership are memoized (all-hit paths;
// for NoFill's no-fill mode, any outcome — it never mutates anything),
// so a stale memo is impossible: an outcome that changes membership
// bumps a generation itself.

// maxSiteRefs bounds the guard and touch lists a Site may hold. The
// lists are inline arrays so re-memoizing a site allocates nothing.
// Partitioned lookups probe one TLB and one L1 partition per level
// ⊑ er, so 8 covers lattices of up to 4 levels (diamond); larger
// lattices simply stay on the slow path for wide read labels.
const maxSiteRefs = 8

// Site is one static access site's memo. The zero value is an empty
// memo (always slow path first). A Site must be used with a single
// AccessKind and a single environment for its whole lifetime; the VM
// allocates one per program instruction per environment.
type Site struct {
	live   bool
	ngens  uint8
	ntouch uint8
	nstats uint8
	addr   uint64
	er, ew lattice.Label
	cost   uint64
	// gsum is the sum of the guard caches' generations at memo time;
	// replay is valid only while it is unchanged. Generations are
	// monotone, so a sum collision would need one guard to decrease —
	// impossible.
	gsum  uint64
	gens  [maxSiteRefs]*cache.Cache
	touch [maxSiteRefs]cache.TouchRef
	stats [maxSiteRefs]*uint64
}

// tryFast replays the memo if it is still valid for (addr, er, ew),
// returning the access cost and true; false means the caller must run
// the full simulation (and may re-memoize).
func (s *Site) tryFast(addr uint64, er, ew lattice.Label) (uint64, bool) {
	if !s.live || s.addr != addr || s.er != er || s.ew != ew {
		return 0, false
	}
	var g uint64
	for i := uint8(0); i < s.ngens; i++ {
		g += s.gens[i].Gen()
	}
	if g != s.gsum {
		return 0, false
	}
	for i := uint8(0); i < s.ntouch; i++ {
		s.touch[i].Refresh()
	}
	for i := uint8(0); i < s.nstats; i++ {
		*s.stats[i]++
	}
	return s.cost, true
}

// memoBuilder accumulates one memo during a slow-path access.
type memoBuilder struct {
	s  *Site
	ok bool // still within the inline capacity
}

func (m *memoBuilder) guard(c *cache.Cache) {
	if !m.ok {
		return
	}
	if m.s.ngens == maxSiteRefs {
		m.ok = false
		return
	}
	m.s.gens[m.s.ngens] = c
	m.s.ngens++
}

func (m *memoBuilder) touchRef(r cache.TouchRef) {
	if !m.ok {
		return
	}
	if m.s.ntouch == maxSiteRefs {
		m.ok = false
		return
	}
	m.s.touch[m.s.ntouch] = r
	m.s.ntouch++
}

func (m *memoBuilder) stat(p *uint64) {
	if !m.ok {
		return
	}
	if m.s.nstats == maxSiteRefs {
		m.ok = false
		return
	}
	m.s.stats[m.s.nstats] = p
	m.s.nstats++
}

// seal finalizes the memo. It must be called after the access has run:
// the memoized paths mutate no membership, so the generation sum taken
// here equals the pre-access sum and guards future replays.
func (m *memoBuilder) seal(addr uint64, er, ew lattice.Label, cost uint64) {
	s := m.s
	if !m.ok {
		s.live = false
		return
	}
	var g uint64
	for i := uint8(0); i < s.ngens; i++ {
		g += s.gens[i].Gen()
	}
	s.addr, s.er, s.ew, s.cost, s.gsum = addr, er, ew, cost, g
	s.live = true
}

// reset clears a site for re-memoization.
func (s *Site) reset() memoBuilder {
	s.live = false
	s.ngens, s.ntouch, s.nstats = 0, 0, 0
	return memoBuilder{s: s, ok: true}
}

// SiteEnv is implemented by environments that support the memoized
// fast path. AccessSite is exactly Access — same cost, same state
// change, same statistics — plus a per-site memo: callers must pass
// the same *Site for the same static access site (and a fixed kind),
// and distinct Sites for distinct sites. Environments without a
// profitable fast path simply don't implement the interface; callers
// fall back to Access.
type SiteEnv interface {
	Env
	AccessSite(s *Site, kind AccessKind, addr uint64, er, ew lattice.Label) uint64
}

var (
	_ SiteEnv = (*Unpartitioned)(nil)
	_ SiteEnv = (*NoFill)(nil)
	_ SiteEnv = (*Partitioned)(nil)
	_ SiteEnv = (*Flat)(nil)
)

// ---------------------------------------------------------------------------
// Unpartitioned

// AccessSite implements SiteEnv. The memoized outcome is the steady
// all-hit state (TLB hit + L1 hit): cost L1.HitLatency, two LRU
// refreshes, tlb-hit + l1-hit counters.
func (u *Unpartitioned) AccessSite(s *Site, kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	if c, ok := s.tryFast(addr, er, ew); ok {
		return c
	}
	h, hcfg := u.data, u.cfg.Data
	if kind == Fetch {
		h, hcfg = u.instr, u.cfg.Instr
	}
	st := u.statsFor(kind)
	// Capture line refs before the access (pure probes); then run the
	// unchanged generic path so the slow path's semantics are literally
	// normalAccess. An all-hit access performs no fills, so the refs
	// and generations stay valid across it.
	tref, tlbHit := h.tlb.LineRef(addr)
	lref, l1Hit := h.l1.LineRef(addr)
	cost := normalAccess(h, hcfg, addr, st)
	if tlbHit && l1Hit {
		m := s.reset()
		m.guard(h.tlb)
		m.guard(h.l1)
		m.touchRef(tref)
		m.touchRef(lref)
		m.stat(st.tlbh)
		m.stat(st.l1h)
		m.seal(addr, er, ew, cost)
	} else {
		s.live = false
	}
	return cost
}

// ---------------------------------------------------------------------------
// NoFill

// AccessSite implements SiteEnv. Public-write accesses (ew = ⊥) use the
// normal hierarchy and memoize the all-hit outcome like Unpartitioned.
// No-fill accesses mutate nothing at all, so ANY outcome — hit or miss
// — is memoizable: cost plus the stats path it took, guarded by the
// membership of every structure it consulted.
func (n *NoFill) AccessSite(s *Site, kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	if c, ok := s.tryFast(addr, er, ew); ok {
		return c
	}
	h, hcfg := n.data, n.cfg.Data
	if kind == Fetch {
		h, hcfg = n.instr, n.cfg.Instr
	}
	st := n.statsFor(kind)
	if ew == n.lat.Bot() {
		tref, tlbHit := h.tlb.LineRef(addr)
		lref, l1Hit := h.l1.LineRef(addr)
		cost := normalAccess(h, hcfg, addr, st)
		if tlbHit && l1Hit {
			m := s.reset()
			m.guard(h.tlb)
			m.guard(h.l1)
			m.touchRef(tref)
			m.touchRef(lref)
			m.stat(st.tlbh)
			m.stat(st.l1h)
			m.seal(addr, er, ew, cost)
		} else {
			s.live = false
		}
		return cost
	}
	cost := noFillAccess(h, hcfg, addr, st)
	m := s.reset()
	m.guard(h.tlb)
	m.guard(h.l1)
	// Replay the exact stats path noFillAccess took (state untouched,
	// so re-deriving it from membership is faithful).
	if h.tlb.Contains(addr) {
		m.stat(st.tlbh)
	} else {
		m.stat(st.tlbm)
	}
	if h.l1.Contains(addr) {
		m.stat(st.l1h)
	} else {
		m.stat(st.l1m)
		m.guard(h.l2)
		if h.l2.Contains(addr) {
			m.stat(st.l2h)
		} else {
			m.stat(st.l2m)
		}
	}
	m.seal(addr, er, ew, cost)
	return cost
}

// ---------------------------------------------------------------------------
// Partitioned

// AccessSite implements SiteEnv. The memoized outcome is the all-hit
// state across the (er, ew) plan's probed partitions: a TLB hit and an
// L1 hit somewhere in the probe list. The captured touch list replays
// the refreshing probes — every partition holding the block whose level
// the write label may modify — in plan order, which is exactly what
// partLookup does on the generic path.
func (p *Partitioned) AccessSite(s *Site, kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	if c, ok := s.tryFast(addr, er, ew); ok {
		return c
	}
	parts := p.data
	if kind == Fetch {
		parts = p.instr
	}
	plan := &p.plans[er.ID()*p.lat.Size()+ew.ID()]
	st := p.statsFor(kind)
	// Pre-probe (pure) to find out whether this will be an all-hit
	// access, and capture the refresh refs if so.
	m := s.reset()
	tlbHit, l1Hit := false, false
	for _, step := range plan.probe {
		h := parts[step.id]
		m.guard(h.tlb)
		m.guard(h.l1)
		if r, ok := h.tlb.LineRef(addr); ok {
			tlbHit = true
			if step.refresh {
				m.touchRef(r)
			}
		}
		if r, ok := h.l1.LineRef(addr); ok {
			l1Hit = true
			if step.refresh {
				m.touchRef(r)
			}
		}
	}
	cost := p.Access(kind, addr, er, ew)
	if tlbHit && l1Hit {
		m.stat(st.tlbh)
		m.stat(st.l1h)
		m.seal(addr, er, ew, cost)
	} else {
		s.live = false
	}
	return cost
}

// ---------------------------------------------------------------------------
// Flat

// AccessSite implements SiteEnv trivially: Flat has no state to memo.
func (f *Flat) AccessSite(s *Site, kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	return f.Latency
}

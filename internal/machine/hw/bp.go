package hw

// Branch prediction support. The paper lists branch predictors and
// branch target buffers among the machine-environment components whose
// state creates indirect timing dependencies (§2.1, citing Acıiçmez et
// al.'s simple branch prediction analysis). This file adds a bimodal
// predictor (2-bit saturating counters, as in SimpleScalar) to every
// hardware model:
//
//   - Unpartitioned: one shared table, always consulted and updated —
//     vulnerable to branch-prediction analysis by a coresident
//     adversary, like its caches.
//   - NoFill: commands with a public write label use the table
//     normally; all others charge a fixed mispredict penalty and leave
//     the table untouched (the predictor analogue of no-fill mode).
//   - Partitioned: one table per level. A branch uses the partition of
//     its WRITE label (prediction must be read from state the command
//     may also update), and only when ew ⊑ er so that the timing
//     dependence is licensed by the read label; otherwise it charges
//     the fixed penalty and touches nothing.
//   - FlushOnHigh: public branches use the single table; confidential
//     ones flush it along with everything else.
//
// Because the predictor stores branch OUTCOMES, its security needs a
// rule the cache did not: the guard's level must flow to the write
// label (ℓe ⊑ ew for if/while), which the type system enforces — see
// types: the branch-outcome rule.

// predictor is a bimodal branch predictor: 2-bit saturating counters
// indexed by (branch address / 4) mod size.
type predictor struct {
	counters []uint8
}

func newPredictor(size int) *predictor {
	if size <= 0 {
		return &predictor{}
	}
	return &predictor{counters: make([]uint8, size)}
}

func (p *predictor) enabled() bool { return len(p.counters) > 0 }

func (p *predictor) slot(addr uint64) *uint8 {
	return &p.counters[(addr/4)%uint64(len(p.counters))]
}

// predict returns the predicted direction without updating state.
func (p *predictor) predict(addr uint64) bool {
	return *p.slot(addr) >= 2
}

// update trains the counter toward the actual outcome.
func (p *predictor) update(addr uint64, taken bool) {
	s := p.slot(addr)
	if taken {
		if *s < 3 {
			*s++
		}
	} else if *s > 0 {
		*s--
	}
}

func (p *predictor) clone() *predictor {
	return &predictor{counters: append([]uint8(nil), p.counters...)}
}

func (p *predictor) flush() {
	for i := range p.counters {
		p.counters[i] = 0
	}
}

func (p *predictor) stateEqual(o *predictor) bool {
	if len(p.counters) != len(o.counters) {
		return false
	}
	for i := range p.counters {
		if p.counters[i] != o.counters[i] {
			return false
		}
	}
	return true
}

// BPConfig describes the branch predictor.
type BPConfig struct {
	// Size is the number of 2-bit counters; 0 disables prediction
	// (branches then cost nothing extra).
	Size int
	// MissPenalty is the extra cost of a mispredicted branch.
	MissPenalty uint64
}

// branchCost computes the penalty of one branch against a table, with
// training.
func branchCost(p *predictor, cfg BPConfig, addr uint64, taken bool) uint64 {
	if !p.enabled() {
		return 0
	}
	predicted := p.predict(addr)
	p.update(addr, taken)
	if predicted != taken {
		return cfg.MissPenalty
	}
	return 0
}

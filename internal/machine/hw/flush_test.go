package hw

import (
	"testing"

	"repro/internal/lattice"
)

func TestFlushOnHighNormalLowPath(t *testing.T) {
	lat, L, _ := two()
	env := NewFlushOnHigh(lat, TinyConfig())
	cold := env.Access(Read, 0x40, L, L)
	warm := env.Access(Read, 0x40, L, L)
	if warm >= cold {
		t.Errorf("low path should cache normally: %d then %d", cold, warm)
	}
}

func TestFlushOnHighFlushesEverything(t *testing.T) {
	lat, L, H := two()
	env := NewFlushOnHigh(lat, TinyConfig())
	env.Access(Read, 0x40, L, L) // warm low state
	env.Access(Fetch, 0x80, L, L)
	env.Access(Read, 0x1000, H, H) // flush
	fresh := NewFlushOnHigh(lat, TinyConfig())
	if !env.LowEqual(fresh, lat.Top()) {
		t.Error("high access should leave the environment empty")
	}
	// Post-flush, the previously-warm low address misses again.
	again := env.Access(Read, 0x40, L, L)
	cold := fresh.Access(Read, 0x40, L, L)
	if again != cold {
		t.Errorf("post-flush access should be cold: %d vs %d", again, cold)
	}
}

func TestFlushOnHighHighCostConstant(t *testing.T) {
	// Every confidential access costs the same regardless of state:
	// the high path carries no machine-state timing dependence at all.
	lat, L, H := two()
	env := NewFlushOnHigh(lat, TinyConfig())
	c1 := env.Access(Read, 0x40, H, H)
	env.Access(Read, 0x40, L, L)
	c2 := env.Access(Read, 0x40, H, H)
	c3 := env.Access(Fetch, 0x999, H, H)
	if c1 != c2 || c2 != c3 {
		t.Errorf("high access costs vary: %d %d %d", c1, c2, c3)
	}
}

func TestFlushOnHighCloneAndReset(t *testing.T) {
	lat, L, _ := two()
	env := NewFlushOnHigh(lat, TinyConfig())
	env.Access(Read, 0x40, L, L)
	cl := env.Clone()
	if !env.LowEqual(cl, lat.Top()) {
		t.Error("clone should be equal")
	}
	cl.Access(Read, 0x80, L, L)
	if env.LowEqual(cl, lat.Top()) {
		t.Error("clone should now differ")
	}
	env.Reset()
	if env.Stats().L1DHits+env.Stats().L1DMisses == 0 {
		t.Error("stats should persist across reset")
	}
	if env.Name() != "flush-on-high" {
		t.Error("name")
	}
	if env.ProjEqual(NewFlat(lattice.TwoPoint(), 1), lat.Bot()) {
		t.Error("cross-type ProjEqual must be false")
	}
}

package hw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
)

func two() (lattice.Lattice, lattice.Label, lattice.Label) {
	lat := lattice.TwoPoint()
	return lat, lat.Bot(), lat.Top()
}

func TestTable1ConfigValid(t *testing.T) {
	cfg := Table1Config()
	if err := cfg.Data.validate(); err != nil {
		t.Error(err)
	}
	if err := cfg.Instr.validate(); err != nil {
		t.Error(err)
	}
	if cfg.Data.L1.Sets != 128 || cfg.Data.L1.Assoc != 4 || cfg.Data.L1.BlockSize != 32 || cfg.Data.L1.HitLatency != 1 {
		t.Errorf("L1D mismatch with Table 1: %+v", cfg.Data.L1)
	}
	if cfg.Instr.L1.Sets != 512 || cfg.Instr.L1.Assoc != 1 {
		t.Errorf("L1I mismatch with Table 1: %+v", cfg.Instr.L1)
	}
	if cfg.Data.L2.Sets != 1024 || cfg.Data.L2.HitLatency != 6 {
		t.Errorf("L2D mismatch with Table 1: %+v", cfg.Data.L2)
	}
	if cfg.Data.TLBMissPenalty != 30 || cfg.Instr.TLBMissPenalty != 30 {
		t.Error("TLB miss penalty should be 30 cycles per Table 1")
	}
}

func TestSplitConfig(t *testing.T) {
	c := Table1Config().Data.L1 // 128 sets, 4 ways
	s2 := splitConfig(c, 2)
	if s2.Assoc != 2 || s2.Sets != 128 {
		t.Errorf("2-way split: %+v", s2)
	}
	// 1-way cache splits by sets.
	i1 := Table1Config().Instr.L1 // 512 sets, 1 way
	s2 = splitConfig(i1, 2)
	if s2.Sets != 256 || s2.Assoc != 1 {
		t.Errorf("set split: %+v", s2)
	}
	s3 := splitConfig(i1, 3)
	if s3.Sets != 128 { // 512/3=170 → 128
		t.Errorf("3-way set split: %+v", s3)
	}
	if got := splitConfig(c, 1); got != c {
		t.Error("1-way split should be identity")
	}
}

func TestUnpartitionedWarmsUp(t *testing.T) {
	lat, L, _ := two()
	env := NewUnpartitioned(lat, TinyConfig())
	c1 := env.Access(Read, 0x40, L, L)
	c2 := env.Access(Read, 0x40, L, L)
	if c2 >= c1 {
		t.Errorf("second access (%d) should be faster than first (%d)", c2, c1)
	}
	st := env.Stats()
	if st.L1DHits != 1 || st.L1DMisses != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestUnpartitionedIgnoresLabels(t *testing.T) {
	lat, L, H := two()
	env := NewUnpartitioned(lat, TinyConfig())
	env.Access(Read, 0x40, H, H) // fills despite H labels
	env2 := NewUnpartitioned(lat, TinyConfig())
	env2.Access(Read, 0x40, L, L)
	// Both environments cached the block: next L access is equally fast.
	a := env.Access(Read, 0x40, L, L)
	b := env2.Access(Read, 0x40, L, L)
	if a != b {
		t.Errorf("label-dependent behavior in unpartitioned hw: %d vs %d", a, b)
	}
}

func TestNoFillHighDoesNotModify(t *testing.T) {
	lat, L, H := two()
	env := NewNoFill(lat, TinyConfig())
	// Warm up some low state.
	env.Access(Read, 0x40, L, L)
	snapshot := env.Clone()
	// High-context accesses (ew = H) must not modify any state.
	env.Access(Read, 0x40, H, H)  // hit path
	env.Access(Read, 0x800, H, H) // miss path
	env.Access(Fetch, 0x100, H, H)
	if !env.LowEqual(snapshot, H) {
		t.Error("no-fill mode modified machine state")
	}
}

func TestNoFillHighHitStillFast(t *testing.T) {
	lat, L, H := two()
	env := NewNoFill(lat, TinyConfig())
	env.Access(Read, 0x40, L, L)
	hot := env.Access(Read, 0x40, H, H)
	cold := env.Access(Read, 0x840, H, H)
	if hot >= cold {
		t.Errorf("no-fill hit (%d) should be faster than miss (%d)", hot, cold)
	}
}

func TestNoFillHighMissNotCached(t *testing.T) {
	lat, L, H := two()
	env := NewNoFill(lat, TinyConfig())
	c1 := env.Access(Read, 0x40, H, H)
	c2 := env.Access(Read, 0x40, H, H)
	if c1 != c2 {
		t.Errorf("no-fill miss must not fill: %d then %d", c1, c2)
	}
	_ = L
}

func TestPartitionedHighFillsOnlyHigh(t *testing.T) {
	lat, L, H := two()
	env := NewPartitioned(lat, TinyConfig())
	snapshot := env.Clone()
	env.Access(Read, 0x40, H, H)
	// Low projection unchanged (Property 5).
	if !env.ProjEqual(snapshot, L) {
		t.Error("H access modified L partition")
	}
	// High projection changed.
	if env.ProjEqual(snapshot, H) {
		t.Error("H access should modify H partition")
	}
}

func TestPartitionedHighSearchesBoth(t *testing.T) {
	lat, L, H := two()
	env := NewPartitioned(lat, TinyConfig())
	env.Access(Read, 0x40, L, L) // cached in L partition
	// An H-labeled access finds it in the L partition: fast.
	hot := env.Access(Read, 0x40, H, H)
	cold := env.Access(Read, 0x840, H, H)
	if hot >= cold {
		t.Errorf("H access should hit in L partition: hit=%d miss=%d", hot, cold)
	}
}

func TestPartitionedLowDoesNotSeeHigh(t *testing.T) {
	// §4.3: when the timing label is L, only the L partition is
	// searched; data in the H partition loads at L-miss time.
	lat, L, H := two()
	env := NewPartitioned(lat, TinyConfig())
	env.Access(Read, 0x40, H, H) // cached in H partition only
	inH := env.Access(Read, 0x40, L, L)
	env2 := NewPartitioned(lat, TinyConfig())
	notCached := env2.Access(Read, 0x40, L, L)
	if inH != notCached {
		t.Errorf("L access must not reveal H partition: %d vs %d", inH, notCached)
	}
}

func TestPartitionedConsistencyMove(t *testing.T) {
	// After the L access above, the block must have moved to the L
	// partition (single-copy invariant) so a subsequent L access hits.
	lat, L, H := two()
	env := NewPartitioned(lat, TinyConfig())
	env.Access(Read, 0x40, H, H)
	env.Access(Read, 0x40, L, L) // miss timing, but moves block down
	fast := env.Access(Read, 0x40, L, L)
	cfg := TinyConfig().Data
	wantHit := cfg.L1.HitLatency
	if fast != wantHit {
		t.Errorf("post-move L access cost %d, want L1 hit %d", fast, wantHit)
	}
	// And the H partition no longer holds it: an H access that probes
	// both partitions hits (in L), which is fine; verify the H
	// partition's projection equals a fresh env that executed the same
	// H-visible... simpler: verify single-copy via ProjEqual against an
	// env that only did the L fill... the H partitions differ only by
	// the moved-out block.
	_ = L
	_ = H
}

func TestPartitionedTimingIndependentOfHighState(t *testing.T) {
	// Property 6 flavor: with er=L, timing must be identical across
	// environments that agree on the L projection, however the H
	// partitions differ.
	lat, L, H := two()
	e1 := NewPartitioned(lat, TinyConfig())
	e2 := NewPartitioned(lat, TinyConfig())
	// Diverge the H partitions.
	for i := 0; i < 20; i++ {
		e1.Access(Read, uint64(0x1000+i*64), H, H)
	}
	e2.Access(Read, 0x9999, H, H)
	if !e1.ProjEqual(e2, L) {
		t.Fatal("L projections should agree")
	}
	for i := 0; i < 10; i++ {
		addr := uint64(0x40 + i*16)
		c1 := e1.Access(Read, addr, L, L)
		c2 := e2.Access(Read, addr, L, L)
		if c1 != c2 {
			t.Fatalf("L timing differs with different H state: %d vs %d at %#x", c1, c2, addr)
		}
	}
}

func TestPartitionedThreeLevels(t *testing.T) {
	lat := lattice.ThreePoint()
	L, _ := lat.Lookup("L")
	M, _ := lat.Lookup("M")
	H, _ := lat.Lookup("H")
	env := NewPartitioned(lat, TinyConfig())
	env.Access(Read, 0x40, M, M)
	// H read label sees M partition.
	hot := env.Access(Read, 0x40, H, H)
	cold := env.Access(Read, 0x840, H, H)
	if hot >= cold {
		t.Errorf("H should see M partition: %d vs %d", hot, cold)
	}
	// L read label does not see M partition.
	inM := env.Access(Read, 0x940, L, L)
	fresh := NewPartitioned(lat, TinyConfig())
	base := fresh.Access(Read, 0x940, L, L)
	if inM != base {
		t.Errorf("L timing should not depend on M state: %d vs %d", inM, base)
	}
}

func TestFlatConstantCost(t *testing.T) {
	lat, L, H := two()
	env := NewFlat(lat, 7)
	for i := 0; i < 5; i++ {
		if c := env.Access(Read, uint64(i*64), L, H); c != 7 {
			t.Errorf("flat cost = %d, want 7", c)
		}
	}
	if !env.LowEqual(env.Clone(), H) {
		t.Error("flat envs always equal")
	}
	if env.Name() != "flat" {
		t.Error("name")
	}
}

func TestCloneIndependence(t *testing.T) {
	lat, L, H := two()
	for _, env := range []Env{
		NewUnpartitioned(lat, TinyConfig()),
		NewNoFill(lat, TinyConfig()),
		NewPartitioned(lat, TinyConfig()),
	} {
		env.Access(Read, 0x40, L, L)
		snapshot := env.Clone()
		cl := env.Clone()
		if !env.LowEqual(cl, H) {
			t.Errorf("%s: clone differs", env.Name())
		}
		cl.Access(Read, 0x80, L, L)
		// Original untouched: reading 0x80 in env must cost the same
		// as in the pre-mutation snapshot.
		cost := env.Access(Read, 0x80, L, L)
		want := snapshot.Access(Read, 0x80, L, L)
		if cost != want {
			t.Errorf("%s: clone mutation leaked into original (%d vs %d)", env.Name(), cost, want)
		}
	}
}

func TestResetRestoresCold(t *testing.T) {
	lat, L, _ := two()
	for _, env := range []Env{
		NewUnpartitioned(lat, TinyConfig()),
		NewNoFill(lat, TinyConfig()),
		NewPartitioned(lat, TinyConfig()),
	} {
		cold := env.Access(Read, 0x40, L, L)
		env.Access(Read, 0x40, L, L)
		env.Reset()
		again := env.Access(Read, 0x40, L, L)
		if again != cold {
			t.Errorf("%s: reset did not restore cold state (%d vs %d)", env.Name(), again, cold)
		}
	}
}

func TestProjEqualCrossTypeFalse(t *testing.T) {
	lat, L, _ := two()
	a := NewUnpartitioned(lat, TinyConfig())
	b := NewNoFill(lat, TinyConfig())
	if a.ProjEqual(b, L) {
		t.Error("different env types should not compare equal")
	}
	if b.ProjEqual(a, L) {
		t.Error("different env types should not compare equal")
	}
}

// Determinism (Property 2 ingredient): identical access sequences from
// equal states produce identical costs and states, for every model.
func TestEnvDeterminismQuick(t *testing.T) {
	lat := lattice.TwoPoint()
	L, H := lat.Bot(), lat.Top()
	labels := []lattice.Label{L, H}
	mk := []func() Env{
		func() Env { return NewUnpartitioned(lat, TinyConfig()) },
		func() Env { return NewNoFill(lat, TinyConfig()) },
		func() Env { return NewPartitioned(lat, TinyConfig()) },
	}
	for _, make := range mk {
		make := make
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			e1 := make()
			// Warm up.
			for i := 0; i < 30; i++ {
				lv := labels[r.Intn(2)]
				e1.Access(AccessKind(r.Intn(3)), uint64(r.Intn(2048)), lv, lv)
			}
			e2 := e1.Clone()
			for i := 0; i < 60; i++ {
				kind := AccessKind(r.Intn(3))
				addr := uint64(r.Intn(2048))
				er := labels[r.Intn(2)]
				ew := er
				if e1.Access(kind, addr, er, ew) != e2.Access(kind, addr, er, ew) {
					return false
				}
			}
			return e1.LowEqual(e2, H)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", make().Name(), err)
		}
	}
}

// Property 5, empirically: an access with write label ew never changes
// the projection at any level ℓ with ew ⋢ ℓ. Checked across random
// access sequences on the secure models.
func TestWriteLabelPropertyQuick(t *testing.T) {
	lat := lattice.ThreePoint()
	levels := lat.Levels()
	mk := []func() Env{
		func() Env { return NewNoFill(lat, TinyConfig()) },
		func() Env { return NewPartitioned(lat, TinyConfig()) },
	}
	for _, make := range mk {
		make := make
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			env := make()
			for i := 0; i < 20; i++ {
				lv := levels[r.Intn(len(levels))]
				env.Access(AccessKind(r.Intn(3)), uint64(r.Intn(2048)), lv, lv)
			}
			before := env.Clone()
			ew := levels[r.Intn(len(levels))]
			er := ew
			env.Access(AccessKind(r.Intn(3)), uint64(r.Intn(2048)), er, ew)
			for _, lv := range levels {
				if !lat.Leq(ew, lv) && !env.ProjEqual(before, lv) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s violates Property 5: %v", make().Name(), err)
		}
	}
}

// Read-label property (Property 6 hardware side), empirically: two
// environments equal at er-and-below give the same access cost for the
// same address, on the secure models.
func TestReadLabelPropertyQuick(t *testing.T) {
	lat := lattice.TwoPoint()
	L, H := lat.Bot(), lat.Top()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e1 := NewPartitioned(lat, TinyConfig())
		e2 := NewPartitioned(lat, TinyConfig())
		// Identical L history, divergent H history.
		for i := 0; i < 25; i++ {
			addr := uint64(r.Intn(2048))
			e1.Access(Read, addr, L, L)
			e2.Access(Read, addr, L, L)
		}
		for i := 0; i < 10; i++ {
			e1.Access(Read, uint64(r.Intn(2048)), H, H)
		}
		if !e1.LowEqual(e2, L) {
			return true // precondition failed (shouldn't happen); skip
		}
		addr := uint64(r.Intn(2048))
		return e1.Access(Read, addr, L, L) == e2.Access(Read, addr, L, L)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("partitioned violates read-label property: %v", err)
	}
}

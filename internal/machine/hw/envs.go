package hw

import (
	"repro/internal/lattice"
	"repro/internal/machine/cache"
)

// ---------------------------------------------------------------------------
// Unpartitioned (commodity, insecure) hardware — the "nopar" baseline.

// Unpartitioned models a commodity hierarchy that ignores timing
// labels: every access searches and fills the single shared hierarchy.
// It is the insecure baseline of the paper's evaluation (§8.3).
type Unpartitioned struct {
	lat   lattice.Lattice
	cfg   Config
	data  *hier
	instr *hier
	bp    *predictor
	stats Stats
}

var _ Env = (*Unpartitioned)(nil)

// NewUnpartitioned constructs the baseline environment.
func NewUnpartitioned(lat lattice.Lattice, cfg Config) *Unpartitioned {
	mustValidate(cfg)
	return &Unpartitioned{
		lat:   lat,
		cfg:   cfg,
		data:  newHier(cfg.Data, "DTLB"),
		instr: newHier(cfg.Instr, "ITLB"),
		bp:    newPredictor(cfg.BP.Size),
	}
}

func mustValidate(cfg Config) {
	if err := cfg.Data.validate(); err != nil {
		panic(err)
	}
	if err := cfg.Instr.validate(); err != nil {
		panic(err)
	}
}

func (u *Unpartitioned) Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	h, hcfg := u.data, u.cfg.Data
	if kind == Fetch {
		h, hcfg = u.instr, u.cfg.Instr
	}
	return normalAccess(h, hcfg, addr, u.statsFor(kind))
}

// statsFor returns the counter slots for the hierarchy kind touches.
func (u *Unpartitioned) statsFor(kind AccessKind) *hierStats {
	if kind == Fetch {
		return &hierStats{&u.stats.L1IHits, &u.stats.L1IMisses, &u.stats.L2IHits, &u.stats.L2IMisses, &u.stats.ITLBHits, &u.stats.ITLBMisses}
	}
	return &hierStats{&u.stats.L1DHits, &u.stats.L1DMisses, &u.stats.L2DHits, &u.stats.L2DMisses, &u.stats.DTLBHits, &u.stats.DTLBMisses}
}

// Branch implements Env: the single shared predictor is always
// consulted and trained, whatever the labels — insecure by design.
func (u *Unpartitioned) Branch(addr uint64, taken bool, er, ew lattice.Label) uint64 {
	c := branchCost(u.bp, u.cfg.BP, addr, taken)
	u.countBranch(c)
	return c
}

func (u *Unpartitioned) countBranch(c uint64) {
	if c > 0 {
		u.stats.BPMisses++
	} else {
		u.stats.BPHits++
	}
}

func (u *Unpartitioned) Clone() Env {
	return &Unpartitioned{lat: u.lat, cfg: u.cfg, data: u.data.clone(), instr: u.instr.clone(), bp: u.bp.clone()}
}

// ProjEqual: all unpartitioned state is public, i.e. lives at ⊥; the
// projection at any other level is empty and therefore always equal.
func (u *Unpartitioned) ProjEqual(other Env, lv lattice.Label) bool {
	o, ok := other.(*Unpartitioned)
	if !ok {
		return false
	}
	if lv != u.lat.Bot() {
		return true
	}
	return u.data.stateEqual(o.data) && u.instr.stateEqual(o.instr) && u.bp.stateEqual(o.bp)
}

func (u *Unpartitioned) LowEqual(other Env, lv lattice.Label) bool {
	return lowEqual(u, other, lv)
}

func (u *Unpartitioned) Reset() {
	u.data.flush()
	u.instr.flush()
	u.bp.flush()
}

func (u *Unpartitioned) Lattice() lattice.Lattice { return u.lat }
func (u *Unpartitioned) Name() string             { return "unpartitioned" }
func (u *Unpartitioned) Stats() Stats             { return u.stats }

// hierStats points at the six counters an access updates.
type hierStats struct {
	l1h, l1m, l2h, l2m, tlbh, tlbm *uint64
}

// normalAccess performs a conventional TLB + L1 + L2 + memory access
// with fills and LRU updates, returning its cost.
func normalAccess(h *hier, cfg HierarchyConfig, addr uint64, st *hierStats) uint64 {
	var cost uint64
	if h.tlb.Access(addr) {
		*st.tlbh++
	} else {
		*st.tlbm++
		cost += cfg.TLBMissPenalty
		h.tlb.Fill(addr)
	}
	cost += cfg.L1.HitLatency
	if h.l1.Access(addr) {
		*st.l1h++
		return cost
	}
	*st.l1m++
	cost += cfg.L2.HitLatency
	if h.l2.Access(addr) {
		*st.l2h++
		h.l1.Fill(addr)
		return cost
	}
	*st.l2m++
	cost += cfg.MemLatency
	h.l2.Fill(addr)
	h.l1.Fill(addr)
	return cost
}

// lowEqual implements ~ℓ from ProjEqual over all levels ℓ' ⊑ ℓ.
func lowEqual(e Env, other Env, lv lattice.Label) bool {
	lat := e.Lattice()
	for _, l := range lat.Levels() {
		if lat.Leq(l, lv) && !e.ProjEqual(other, l) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// NoFill (standard secure hardware, §4.2)

// NoFill models standard hardware with a no-fill mode, per §4.2: the
// whole hierarchy is treated as public (level ⊥). Commands whose write
// label is not ⊥ execute in no-fill mode: cache and TLB hits are served
// at hit latency but update no state (not even LRU order); misses are
// served from the next level with no fills or evictions. Commands with
// ew = ⊥ use the hierarchy normally.
type NoFill struct {
	lat   lattice.Lattice
	cfg   Config
	data  *hier
	instr *hier
	bp    *predictor
	stats Stats
}

var _ Env = (*NoFill)(nil)

// NewNoFill constructs the §4.2 environment.
func NewNoFill(lat lattice.Lattice, cfg Config) *NoFill {
	mustValidate(cfg)
	return &NoFill{
		lat:   lat,
		cfg:   cfg,
		data:  newHier(cfg.Data, "DTLB"),
		instr: newHier(cfg.Instr, "ITLB"),
		bp:    newPredictor(cfg.BP.Size),
	}
}

func (n *NoFill) Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	h, hcfg := n.data, n.cfg.Data
	st := n.statsFor(kind)
	if kind == Fetch {
		h, hcfg = n.instr, n.cfg.Instr
	}
	if ew == n.lat.Bot() {
		return normalAccess(h, hcfg, addr, st)
	}
	return noFillAccess(h, hcfg, addr, st)
}

func (n *NoFill) statsFor(kind AccessKind) *hierStats {
	if kind == Fetch {
		return &hierStats{&n.stats.L1IHits, &n.stats.L1IMisses, &n.stats.L2IHits, &n.stats.L2IMisses, &n.stats.ITLBHits, &n.stats.ITLBMisses}
	}
	return &hierStats{&n.stats.L1DHits, &n.stats.L1DMisses, &n.stats.L2DHits, &n.stats.L2DMisses, &n.stats.DTLBHits, &n.stats.DTLBMisses}
}

// noFillAccess computes the access cost without modifying any state:
// hits are probed with Contains (no LRU update); misses charge the full
// path with no fills. This is what makes Property 5 hold for commands
// with non-public write labels.
func noFillAccess(h *hier, cfg HierarchyConfig, addr uint64, st *hierStats) uint64 {
	var cost uint64
	if h.tlb.Contains(addr) {
		*st.tlbh++
	} else {
		*st.tlbm++
		cost += cfg.TLBMissPenalty
	}
	cost += cfg.L1.HitLatency
	if h.l1.Contains(addr) {
		*st.l1h++
		return cost
	}
	*st.l1m++
	cost += cfg.L2.HitLatency
	if h.l2.Contains(addr) {
		*st.l2h++
		return cost
	}
	*st.l2m++
	cost += cfg.MemLatency
	return cost
}

// Branch implements Env: public-write-label branches use the (public)
// predictor normally; all others charge a fixed mispredict penalty and
// leave it untouched — the predictor analogue of no-fill mode.
func (n *NoFill) Branch(addr uint64, taken bool, er, ew lattice.Label) uint64 {
	if !n.bp.enabled() {
		return 0
	}
	if ew == n.lat.Bot() {
		c := branchCost(n.bp, n.cfg.BP, addr, taken)
		if c > 0 {
			n.stats.BPMisses++
		} else {
			n.stats.BPHits++
		}
		return c
	}
	n.stats.BPMisses++
	return n.cfg.BP.MissPenalty
}

func (n *NoFill) Clone() Env {
	return &NoFill{lat: n.lat, cfg: n.cfg, data: n.data.clone(), instr: n.instr.clone(), bp: n.bp.clone()}
}

func (n *NoFill) ProjEqual(other Env, lv lattice.Label) bool {
	o, ok := other.(*NoFill)
	if !ok {
		return false
	}
	if lv != n.lat.Bot() {
		return true
	}
	return n.data.stateEqual(o.data) && n.instr.stateEqual(o.instr) && n.bp.stateEqual(o.bp)
}

func (n *NoFill) LowEqual(other Env, lv lattice.Label) bool {
	return lowEqual(n, other, lv)
}

func (n *NoFill) Reset() {
	n.data.flush()
	n.instr.flush()
	n.bp.flush()
}

func (n *NoFill) Lattice() lattice.Lattice { return n.lat }
func (n *NoFill) Name() string             { return "nofill" }
func (n *NoFill) Stats() Stats             { return n.stats }

// ---------------------------------------------------------------------------
// Partitioned (efficient secure hardware, §4.3)

// Partitioned models caches and TLBs statically partitioned per
// security level (§4.3, generalized from two levels to any finite
// lattice):
//
//   - A lookup under read label er searches the partitions of every
//     level ℓ ⊑ er, so timing depends only on ⊑-er state (Property 6).
//   - A hit in partition p updates p's LRU order only when ew ⊑ p
//     (Property 5 forbids modifying state below the write label).
//   - A miss installs the block into partition ew exactly. If the
//     block already resides in an unsearched partition p' and ew ⊑ p',
//     the controller moves it (invalidates it there) to preserve the
//     single-copy invariant; either way the access costs the full miss
//     path, so timing never reveals unsearched-partition state.
type Partitioned struct {
	lat   lattice.Lattice
	cfg   Config  // original (unsplit) configuration
	pcfg  Config  // per-partition configuration
	data  []*hier // indexed by label ID
	instr []*hier // indexed by label ID
	bps   []*predictor
	stats Stats
	// istats/dstats point at the instruction/data counters in stats;
	// precomputed so the per-access statsFor lookup allocates nothing.
	istats, dstats hierStats
	// plans precomputes, for every (er, ew) label pair, which
	// partitions a lookup searches (and whether a hit refreshes LRU)
	// and which partitions a fill invalidates. The lattice is immutable,
	// so this turns the per-access Levels/Leq iteration into a tight
	// walk over a prebuilt list. Indexed by er.ID()*lat.Size()+ew.ID();
	// shared (read-only) between clones.
	plans []accessPlan
}

// probeStep is one partition to search during a lookup.
type probeStep struct {
	id      int
	refresh bool // ew ⊑ level: a hit may refresh LRU (Property 5)
}

// accessPlan is the precomputed partition schedule for one (er, ew)
// label pair: the lookup probes and the fill-time invalidations
// (partitions ≠ ew with ew ⊑ p', in the same deterministic level order
// the dynamic loops used).
type accessPlan struct {
	probe []probeStep
	inval []int
}

// buildPlans computes the per-(er, ew) access plans for a lattice.
func buildPlans(lat lattice.Lattice) []accessPlan {
	n := lat.Size()
	plans := make([]accessPlan, n*n)
	for _, er := range lat.Levels() {
		for _, ew := range lat.Levels() {
			pl := &plans[er.ID()*n+ew.ID()]
			for _, lv := range lat.Levels() {
				if lat.Leq(lv, er) {
					pl.probe = append(pl.probe, probeStep{id: lv.ID(), refresh: lat.Leq(ew, lv)})
				}
				if lv != ew && lat.Leq(ew, lv) {
					pl.inval = append(pl.inval, lv.ID())
				}
			}
		}
	}
	return plans
}

var _ Env = (*Partitioned)(nil)

// NewPartitioned constructs the §4.3 environment with one partition of
// every structure per lattice level.
func NewPartitioned(lat lattice.Lattice, cfg Config) *Partitioned {
	mustValidate(cfg)
	n := lat.Size()
	p := &Partitioned{
		lat:   lat,
		cfg:   cfg,
		pcfg:  Config{Data: splitHierarchy(cfg.Data, n), Instr: splitHierarchy(cfg.Instr, n)},
		plans: buildPlans(lat),
	}
	p.data = make([]*hier, n)
	p.instr = make([]*hier, n)
	p.bps = make([]*predictor, n)
	bpSize := cfg.BP.Size / n
	if cfg.BP.Size > 0 && bpSize < 1 {
		bpSize = 1
	}
	p.pcfg.BP = BPConfig{Size: bpSize, MissPenalty: cfg.BP.MissPenalty}
	for i := 0; i < n; i++ {
		p.data[i] = newHier(p.pcfg.Data, "DTLB")
		p.instr[i] = newHier(p.pcfg.Instr, "ITLB")
		p.bps[i] = newPredictor(bpSize)
	}
	p.wireStats()
	return p
}

// Branch implements Env. The branch trains the predictor partition of
// its WRITE label (the outcome is information the command writes into
// machine state) and may consult it only when ew ⊑ er, so the timing
// dependence stays within the read label; otherwise a fixed penalty is
// charged and no state is touched. The type system's branch-outcome
// rule (guard level ⊑ ew) makes the stored outcomes no more secret
// than the partition holding them.
func (p *Partitioned) Branch(addr uint64, taken bool, er, ew lattice.Label) uint64 {
	if p.cfg.BP.Size <= 0 {
		return 0
	}
	if !p.lat.Leq(ew, er) {
		p.stats.BPMisses++
		return p.pcfg.BP.MissPenalty
	}
	c := branchCost(p.bps[ew.ID()], p.pcfg.BP, addr, taken)
	if c > 0 {
		p.stats.BPMisses++
	} else {
		p.stats.BPHits++
	}
	return c
}

// PartitionConfig returns the per-partition configuration (after
// splitting), for reporting.
func (p *Partitioned) PartitionConfig() Config { return p.pcfg }

func (p *Partitioned) Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	parts, hcfg := p.data, p.pcfg.Data
	if kind == Fetch {
		parts, hcfg = p.instr, p.pcfg.Instr
	}
	plan := &p.plans[er.ID()*p.lat.Size()+ew.ID()]
	ewID := ew.ID()
	st := p.statsFor(kind)
	var cost uint64
	// TLB.
	if hit := p.partLookup(parts, plan, addr, tlbSel); hit {
		*st.tlbh++
	} else {
		*st.tlbm++
		cost += hcfg.TLBMissPenalty
		p.partFill(parts, plan, ewID, addr, tlbSel)
	}
	// L1.
	cost += hcfg.L1.HitLatency
	if p.partLookup(parts, plan, addr, l1Sel) {
		*st.l1h++
		return cost
	}
	*st.l1m++
	// L2.
	cost += hcfg.L2.HitLatency
	if p.partLookup(parts, plan, addr, l2Sel) {
		*st.l2h++
		p.partFill(parts, plan, ewID, addr, l1Sel)
		return cost
	}
	*st.l2m++
	cost += hcfg.MemLatency
	p.partFill(parts, plan, ewID, addr, l2Sel)
	p.partFill(parts, plan, ewID, addr, l1Sel)
	return cost
}

func (p *Partitioned) statsFor(kind AccessKind) *hierStats {
	if kind == Fetch {
		return &p.istats
	}
	return &p.dstats
}

// wireStats points istats/dstats at this instance's counters; called
// after construction and after Clone (the pointers must target the new
// instance's stats, not the prototype's).
func (p *Partitioned) wireStats() {
	p.istats = hierStats{&p.stats.L1IHits, &p.stats.L1IMisses, &p.stats.L2IHits, &p.stats.L2IMisses, &p.stats.ITLBHits, &p.stats.ITLBMisses}
	p.dstats = hierStats{&p.stats.L1DHits, &p.stats.L1DMisses, &p.stats.L2DHits, &p.stats.L2DMisses, &p.stats.DTLBHits, &p.stats.DTLBMisses}
}

// sel selects one structure (TLB, L1 or L2) from a partition.
type sel func(*hier) *cache.Cache

func tlbSel(h *hier) *cache.Cache { return h.tlb }
func l1Sel(h *hier) *cache.Cache  { return h.l1 }
func l2Sel(h *hier) *cache.Cache  { return h.l2 }

// partLookup searches the partitions at levels ⊑ er for addr. On a hit
// it refreshes LRU order only in partitions p with ew ⊑ p (a fused
// probe+refresh per partition, following the precomputed plan).
func (p *Partitioned) partLookup(parts []*hier, plan *accessPlan, addr uint64, s sel) bool {
	hit := false
	for _, step := range plan.probe {
		if s(parts[step.id]).Probe(addr, step.refresh) {
			hit = true
		}
	}
	return hit
}

// partFill installs addr into partition ew and removes stale copies
// from any other partition p' that Property 5 lets us modify (ew ⊑ p').
func (p *Partitioned) partFill(parts []*hier, plan *accessPlan, ewID int, addr uint64, s sel) {
	for _, id := range plan.inval {
		s(parts[id]).Invalidate(addr)
	}
	s(parts[ewID]).Fill(addr)
}

func (p *Partitioned) Clone() Env {
	// plans are immutable and lattice-derived: share them.
	n := &Partitioned{lat: p.lat, cfg: p.cfg, pcfg: p.pcfg, plans: p.plans}
	n.data = make([]*hier, len(p.data))
	n.instr = make([]*hier, len(p.instr))
	n.bps = make([]*predictor, len(p.bps))
	for i := range p.data {
		n.data[i] = p.data[i].clone()
		n.instr[i] = p.instr[i].clone()
		n.bps[i] = p.bps[i].clone()
	}
	n.wireStats()
	return n
}

// ProjEqual compares exactly the level-lv partitions.
func (p *Partitioned) ProjEqual(other Env, lv lattice.Label) bool {
	o, ok := other.(*Partitioned)
	if !ok || len(o.data) != len(p.data) {
		return false
	}
	id := lv.ID()
	return p.data[id].stateEqual(o.data[id]) && p.instr[id].stateEqual(o.instr[id]) &&
		p.bps[id].stateEqual(o.bps[id])
}

func (p *Partitioned) LowEqual(other Env, lv lattice.Label) bool {
	return lowEqual(p, other, lv)
}

func (p *Partitioned) Reset() {
	for i := range p.data {
		p.data[i].flush()
		p.instr[i].flush()
		p.bps[i].flush()
	}
}

func (p *Partitioned) Lattice() lattice.Lattice { return p.lat }
func (p *Partitioned) Name() string             { return "partitioned" }
func (p *Partitioned) Stats() Stats             { return p.stats }

// ---------------------------------------------------------------------------
// Flat (no machine state) — useful for tests and as a degenerate model.

// Flat is a machine environment with no state at all: every access
// costs a fixed latency. It trivially satisfies Properties 5–7 and
// isolates direct timing dependencies from indirect ones in tests.
type Flat struct {
	lat     lattice.Lattice
	Latency uint64
}

var _ Env = (*Flat)(nil)

// NewFlat constructs a stateless environment with the given fixed cost
// per access.
func NewFlat(lat lattice.Lattice, latency uint64) *Flat {
	return &Flat{lat: lat, Latency: latency}
}

func (f *Flat) Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64 {
	return f.Latency
}

// Branch implements Env: stateless, free.
func (f *Flat) Branch(addr uint64, taken bool, er, ew lattice.Label) uint64 { return 0 }
func (f *Flat) Clone() Env                                                  { c := *f; return &c }
func (f *Flat) ProjEqual(other Env, lv lattice.Label) bool {
	_, ok := other.(*Flat)
	return ok
}
func (f *Flat) LowEqual(other Env, lv lattice.Label) bool { return f.ProjEqual(other, lv) }
func (f *Flat) Reset()                                    {}
func (f *Flat) Lattice() lattice.Lattice                  { return f.lat }
func (f *Flat) Name() string                              { return "flat" }
func (f *Flat) Stats() Stats                              { return Stats{} }

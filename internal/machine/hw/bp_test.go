package hw

import (
	"testing"

	"repro/internal/lattice"
)

func TestPredictorTraining(t *testing.T) {
	p := newPredictor(8)
	addr := uint64(0x100)
	if p.predict(addr) {
		t.Error("counters start not-taken")
	}
	p.update(addr, true)
	p.update(addr, true)
	if !p.predict(addr) {
		t.Error("two taken updates should flip the prediction")
	}
	// Saturation: many takens, then one not-taken keeps predicting taken.
	for i := 0; i < 10; i++ {
		p.update(addr, true)
	}
	p.update(addr, false)
	if !p.predict(addr) {
		t.Error("2-bit counter should survive one contrary outcome")
	}
	p.update(addr, false)
	p.update(addr, false)
	if p.predict(addr) {
		t.Error("three not-takens should retrain")
	}
}

func TestPredictorDisabled(t *testing.T) {
	p := newPredictor(0)
	if p.enabled() {
		t.Error("size 0 disables")
	}
	if c := branchCost(p, BPConfig{Size: 0, MissPenalty: 9}, 0x4, true); c != 0 {
		t.Errorf("disabled predictor cost = %d", c)
	}
}

func TestBranchCostPenalty(t *testing.T) {
	p := newPredictor(4)
	cfg := BPConfig{Size: 4, MissPenalty: 7}
	// First taken branch mispredicts (counters start at 0 = not taken).
	if c := branchCost(p, cfg, 0x8, true); c != 7 {
		t.Errorf("cold mispredict cost = %d, want 7", c)
	}
	branchCost(p, cfg, 0x8, true) // train
	if c := branchCost(p, cfg, 0x8, true); c != 0 {
		t.Errorf("trained branch cost = %d, want 0", c)
	}
}

func TestUnpartitionedBranchSharedState(t *testing.T) {
	lat, L, H := two()
	env := NewUnpartitioned(lat, TinyConfig())
	addr := uint64(0x400010)
	// Train with H-labeled branches (insecure: one shared table).
	for i := 0; i < 3; i++ {
		env.Branch(addr, true, H, H)
	}
	// An L-labeled branch at the same address now predicts taken: the
	// confidential history influenced public timing.
	if c := env.Branch(addr, true, L, L); c != 0 {
		t.Errorf("shared predictor should be trained: cost %d", c)
	}
	st := env.Stats()
	if st.BPHits == 0 || st.BPMisses == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPartitionedBranchIsolation(t *testing.T) {
	lat, L, H := two()
	env := NewPartitioned(lat, TinyConfig())
	addr := uint64(0x400010)
	// Train the H partition heavily.
	for i := 0; i < 4; i++ {
		env.Branch(addr, true, H, H)
	}
	// The L partition is untouched: an L branch still mispredicts a
	// taken outcome exactly like on a fresh machine.
	fresh := NewPartitioned(lat, TinyConfig())
	if got, want := env.Branch(addr, true, L, L), fresh.Branch(addr, true, L, L); got != want {
		t.Errorf("H training leaked into L partition: %d vs %d", got, want)
	}
	if !env.ProjEqual(fresh, L) {
		// After one identical L branch each, L projections agree.
		t.Error("L projections should agree")
	}
}

func TestPartitionedBranchUncoupledLabels(t *testing.T) {
	// ew ⋢ er: the prediction may not be consulted; fixed penalty.
	lat := lattice.ThreePoint()
	M, _ := lat.Lookup("M")
	L, _ := lat.Lookup("L")
	env := NewPartitioned(lat, TinyConfig())
	c1 := env.Branch(0x400, true, L, M) // ew=M ⋢ er=L
	c2 := env.Branch(0x400, true, L, M)
	if c1 != c2 || c1 != TinyConfig().BP.MissPenalty {
		t.Errorf("uncoupled branch should cost the fixed penalty: %d, %d", c1, c2)
	}
}

func TestNoFillBranchHighFixedCost(t *testing.T) {
	lat, L, H := two()
	env := NewNoFill(lat, TinyConfig())
	env.Branch(0x40, true, L, L) // trains public table
	snapshot := env.Clone()
	c1 := env.Branch(0x40, true, H, H)
	c2 := env.Branch(0x40, false, H, H)
	if c1 != c2 {
		t.Errorf("no-fill high branches should cost a constant: %d vs %d", c1, c2)
	}
	if !env.LowEqual(snapshot, lat.Top()) {
		t.Error("no-fill high branch must not modify predictor state")
	}
}

func TestFlushBranchWipesPredictor(t *testing.T) {
	lat, L, H := two()
	env := NewFlushOnHigh(lat, TinyConfig())
	// Train public.
	env.Branch(0x40, true, L, L)
	env.Branch(0x40, true, L, L)
	env.Branch(0x40, true, L, L)
	if c := env.Branch(0x40, true, L, L); c != 0 {
		t.Fatal("should be trained")
	}
	env.Branch(0x80, true, H, H) // flush
	if c := env.Branch(0x40, true, L, L); c == 0 {
		t.Error("flush should forget the training")
	}
}

func TestFlatBranchFree(t *testing.T) {
	lat, L, _ := two()
	env := NewFlat(lat, 3)
	if env.Branch(0x40, true, L, L) != 0 {
		t.Error("flat branches are free")
	}
}

func TestBranchDisabledConfig(t *testing.T) {
	lat, L, _ := two()
	cfg := TinyConfig()
	cfg.BP.Size = 0
	for _, env := range []Env{
		NewUnpartitioned(lat, cfg), NewNoFill(lat, cfg),
		NewPartitioned(lat, cfg), NewFlushOnHigh(lat, cfg),
	} {
		if c := env.Branch(0x40, true, L, L); c != 0 {
			t.Errorf("%s: disabled predictor cost %d", env.Name(), c)
		}
	}
}

func TestBranchStateInProjEqual(t *testing.T) {
	lat, L, _ := two()
	a := NewPartitioned(lat, TinyConfig())
	b := NewPartitioned(lat, TinyConfig())
	if !a.ProjEqual(b, L) {
		t.Fatal("fresh envs equal")
	}
	a.Branch(0x40, true, L, L)
	if a.ProjEqual(b, L) {
		t.Error("predictor training must show in projected equivalence")
	}
}

package hw

import (
	"strings"
	"testing"

	"repro/internal/lattice"
)

func TestRegistryBuiltins(t *testing.T) {
	lat := lattice.TwoPoint()
	for _, tc := range []struct {
		name     string
		wantName string
	}{
		{"flat", "flat"},
		{"nopar", "unpartitioned"},
		{"unpartitioned", "unpartitioned"},
		{"nofill", "nofill"},
		{"partitioned", "partitioned"},
		{"flush", "flush-on-high"},
		{"lockcache", "lock-protect"},
		{"lock", "lock-protect"},
		{"", "partitioned"}, // empty name defaults to the paper's design
	} {
		env, err := NewEnv(tc.name, lat, Table1Config())
		if err != nil {
			t.Errorf("NewEnv(%q) error: %v", tc.name, err)
			continue
		}
		if env.Name() != tc.wantName {
			t.Errorf("NewEnv(%q).Name() = %q, want %q", tc.name, env.Name(), tc.wantName)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := NewEnv("bogus", lattice.TwoPoint(), Table1Config())
	if err == nil {
		t.Fatal("NewEnv(bogus) succeeded")
	}
	if !strings.Contains(err.Error(), "unknown hardware") {
		t.Errorf("error %q should name the failure", err)
	}
	// The error lists the valid names so the CLI message is actionable.
	if !strings.Contains(err.Error(), "partitioned") {
		t.Errorf("error %q should list valid names", err)
	}
}

func TestRegistryEnvNamesSorted(t *testing.T) {
	names := EnvNames()
	if len(names) < 6 {
		t.Fatalf("EnvNames = %v, expected all builtins", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("EnvNames not sorted: %v", names)
		}
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"flat", "nopar", "nofill", "partitioned", "flush", "lockcache"} {
		if !seen[want] {
			t.Errorf("EnvNames missing %q: %v", want, names)
		}
	}
}

func TestRegistryRegister(t *testing.T) {
	if err := Register("", func(lat lattice.Lattice, cfg Config) Env { return nil }); err == nil {
		t.Error("Register with empty name should fail")
	}
	if err := Register("partitioned", func(lat lattice.Lattice, cfg Config) Env { return nil }); err == nil {
		t.Error("Register over an existing name should fail")
	}
	name := "test-custom-env"
	if err := Register(name, func(lat lattice.Lattice, cfg Config) Env { return NewFlat(lat, 7) }); err != nil {
		t.Fatalf("Register(%q): %v", name, err)
	}
	env, err := NewEnv(name, lattice.TwoPoint(), Config{})
	if err != nil {
		t.Fatalf("NewEnv(%q): %v", name, err)
	}
	if env.Name() != "flat" {
		t.Errorf("custom factory not used: %q", env.Name())
	}
}

func TestMustEnvPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEnv(bogus) did not panic")
		}
	}()
	MustEnv("bogus-env", lattice.TwoPoint(), Config{})
}

func TestStatsAddAndRates(t *testing.T) {
	a := Stats{L1DHits: 3, L1DMisses: 1, DTLBHits: 8, BPHits: 4, BPMisses: 4}
	b := Stats{L1DHits: 1, L1DMisses: 1, DTLBMisses: 2, BPHits: 2}
	s := a.Add(b)
	if s.L1DHits != 4 || s.L1DMisses != 2 || s.DTLBHits != 8 || s.DTLBMisses != 2 {
		t.Errorf("Add = %+v", s)
	}
	if got := s.L1DHitRate(); got != 4.0/6 {
		t.Errorf("L1DHitRate = %f", got)
	}
	if got := s.DTLBHitRate(); got != 0.8 {
		t.Errorf("DTLBHitRate = %f", got)
	}
	if got := s.BPHitRate(); got != 6.0/10 {
		t.Errorf("BPHitRate = %f", got)
	}
	var zero Stats
	if zero.L1DHitRate() != 0 || zero.L2IHitRate() != 0 || zero.ITLBHitRate() != 0 {
		t.Error("zero stats should report 0 hit rates, not NaN")
	}
}

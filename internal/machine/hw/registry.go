package hw

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lattice"
)

// Factory constructs a machine environment over the given lattice and
// configuration. Factories that model no cache hierarchy (e.g. "flat")
// may ignore cfg.
type Factory func(lat lattice.Lattice, cfg Config) Env

// The registry maps hardware-design names to constructors, replacing
// the switch statements previously copied across the CLI, the
// experiments package, and the benchmarks. Built-in designs are
// registered below; external packages (tests, future backends) can add
// their own with Register.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

func init() {
	builtins := map[string]Factory{
		"flat": func(lat lattice.Lattice, cfg Config) Env { return NewFlat(lat, 2) },
		"nopar": func(lat lattice.Lattice, cfg Config) Env {
			return NewUnpartitioned(lat, cfg)
		},
		"nofill": func(lat lattice.Lattice, cfg Config) Env {
			return NewNoFill(lat, cfg)
		},
		"partitioned": func(lat lattice.Lattice, cfg Config) Env {
			return NewPartitioned(lat, cfg)
		},
		"flush": func(lat lattice.Lattice, cfg Config) Env {
			return NewFlushOnHigh(lat, cfg)
		},
		"lockcache": func(lat lattice.Lattice, cfg Config) Env {
			return NewLockProtect(lat, cfg)
		},
	}
	for name, f := range builtins {
		MustRegister(name, f)
	}
	// Aliases accepted by the original CLI switch.
	MustRegister("unpartitioned", builtins["nopar"])
	MustRegister("lock", builtins["lockcache"])
}

// Register adds a named environment factory. It reports an error when
// the name is already taken.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("hw: Register needs a non-empty name and factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("hw: environment %q already registered", name)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register, panicking on error; for init-time use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// NewEnv constructs a registered environment by name. The empty name
// selects "partitioned", the paper's secure design.
func NewEnv(name string, lat lattice.Lattice, cfg Config) (Env, error) {
	if name == "" {
		name = "partitioned"
	}
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hw: unknown hardware %q (want one of %v)", name, EnvNames())
	}
	return f(lat, cfg), nil
}

// MustEnv is NewEnv, panicking on unknown names; for static name sets.
func MustEnv(name string, lat lattice.Lattice, cfg Config) Env {
	env, err := NewEnv(name, lat, cfg)
	if err != nil {
		panic(err)
	}
	return env
}

// EnvNames lists the registered design names, sorted.
func EnvNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Package hw implements simulated machine environments: the hardware
// state invisible at the language level that determines execution time
// (paper §3.3). Three designs are provided:
//
//   - Unpartitioned: a commodity cache hierarchy that ignores timing
//     labels ("nopar" in §8.3). It is fast and insecure — the baseline
//     the paper's evaluation compares against.
//   - NoFill: standard hardware using a no-fill mode (§4.2). The whole
//     hierarchy is public; commands whose write label is not public run
//     with fills, evictions, and LRU updates disabled.
//   - Partitioned: statically partitioned caches and TLBs (§4.3), one
//     partition per lattice level. Lookups search partitions at or
//     below the read label; misses install into the write label's
//     partition; consistency is preserved by moving blocks down when
//     permitted by Property 5.
//
// All three models are deterministic (Property 2). NoFill and
// Partitioned are designed to satisfy the paper's security requirements
// (Properties 5–7), which the props package verifies empirically.
package hw

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/machine/cache"
)

// AccessKind distinguishes the three ways the processor touches memory.
type AccessKind int

const (
	// Fetch is an instruction fetch (I-cache + I-TLB).
	Fetch AccessKind = iota
	// Read is a data load (D-cache + D-TLB).
	Read
	// Write is a data store; the model is write-allocate, so it
	// behaves like Read for cache-state purposes.
	Write
)

func (k AccessKind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Read:
		return "read"
	case Write:
		return "write"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// Env is a machine environment: the component E of full-semantics
// configurations. Access charges the cycle cost of one memory access
// under the current command's read and write labels and updates the
// environment state. Implementations must be deterministic: equal
// states and equal access sequences yield equal costs and states.
type Env interface {
	// Access performs one memory access of the given kind at addr,
	// under read label er and write label ew, returning its cost in
	// cycles.
	Access(kind AccessKind, addr uint64, er, ew lattice.Label) uint64
	// Branch records the outcome of a conditional branch at the given
	// code address and returns its cost (the mispredict penalty when
	// the hardware models a branch predictor, 0 otherwise).
	Branch(addr uint64, taken bool, er, ew lattice.Label) uint64
	// Clone returns an independent deep copy.
	Clone() Env
	// ProjEqual reports projected equivalence E ≈ℓ E': whether the
	// level-ℓ parts of the two environments are indistinguishable.
	ProjEqual(other Env, lv lattice.Label) bool
	// LowEqual reports ℓ-equivalence E ~ℓ E': projected equivalence at
	// every level ℓ' ⊑ ℓ.
	LowEqual(other Env, lv lattice.Label) bool
	// Reset flushes all state, returning the environment to its
	// initial (empty) condition.
	Reset()
	// Lattice returns the security lattice the environment is
	// configured over.
	Lattice() lattice.Lattice
	// Name identifies the hardware design ("unpartitioned", "nofill",
	// "partitioned").
	Name() string
	// Stats returns cumulative hit/miss counters for reporting.
	Stats() Stats
}

// Stats aggregates hit/miss counts across the hierarchy.
type Stats struct {
	L1DHits, L1DMisses   uint64
	L2DHits, L2DMisses   uint64
	L1IHits, L1IMisses   uint64
	L2IHits, L2IMisses   uint64
	DTLBHits, DTLBMisses uint64
	ITLBHits, ITLBMisses uint64
	BPHits, BPMisses     uint64
}

// Add returns the field-wise sum of two stat sets — the aggregation
// primitive the instrumentation layer uses to combine per-shard
// environments into one report.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		L1DHits: s.L1DHits + o.L1DHits, L1DMisses: s.L1DMisses + o.L1DMisses,
		L2DHits: s.L2DHits + o.L2DHits, L2DMisses: s.L2DMisses + o.L2DMisses,
		L1IHits: s.L1IHits + o.L1IHits, L1IMisses: s.L1IMisses + o.L1IMisses,
		L2IHits: s.L2IHits + o.L2IHits, L2IMisses: s.L2IMisses + o.L2IMisses,
		DTLBHits: s.DTLBHits + o.DTLBHits, DTLBMisses: s.DTLBMisses + o.DTLBMisses,
		ITLBHits: s.ITLBHits + o.ITLBHits, ITLBMisses: s.ITLBMisses + o.ITLBMisses,
		BPHits: s.BPHits + o.BPHits, BPMisses: s.BPMisses + o.BPMisses,
	}
}

// hitRate returns hits/(hits+misses), or 0 when there were no events.
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L1DHitRate returns the L1 data-cache hit rate in [0, 1].
func (s Stats) L1DHitRate() float64 { return hitRate(s.L1DHits, s.L1DMisses) }

// L2DHitRate returns the L2 data-cache hit rate in [0, 1].
func (s Stats) L2DHitRate() float64 { return hitRate(s.L2DHits, s.L2DMisses) }

// L1IHitRate returns the L1 instruction-cache hit rate in [0, 1].
func (s Stats) L1IHitRate() float64 { return hitRate(s.L1IHits, s.L1IMisses) }

// L2IHitRate returns the L2 instruction-cache hit rate in [0, 1].
func (s Stats) L2IHitRate() float64 { return hitRate(s.L2IHits, s.L2IMisses) }

// DTLBHitRate returns the data-TLB hit rate in [0, 1].
func (s Stats) DTLBHitRate() float64 { return hitRate(s.DTLBHits, s.DTLBMisses) }

// ITLBHitRate returns the instruction-TLB hit rate in [0, 1].
func (s Stats) ITLBHitRate() float64 { return hitRate(s.ITLBHits, s.ITLBMisses) }

// BPHitRate returns the branch-predictor hit rate in [0, 1].
func (s Stats) BPHitRate() float64 { return hitRate(s.BPHits, s.BPMisses) }

// HierarchyConfig describes one cache hierarchy (data or instruction).
type HierarchyConfig struct {
	L1 cache.Config
	L2 cache.Config
	// TLBSets and TLBAssoc give the TLB geometry; TLB entries cover
	// PageSize bytes.
	TLBSets  int
	TLBAssoc int
	// PageSize is the virtual page size in bytes (power of two).
	PageSize int
	// TLBMissPenalty is the extra cost in cycles of a TLB miss.
	TLBMissPenalty uint64
	// MemLatency is the cost of going to main memory after an L2 miss.
	MemLatency uint64
}

// Config describes the whole machine environment.
type Config struct {
	Data  HierarchyConfig
	Instr HierarchyConfig
	// BP configures the branch predictor; a zero Size disables it.
	BP BPConfig
}

// Table1Config returns the machine-environment parameters of the
// paper's Table 1 (a SimpleScalar-derived configuration). Main-memory
// latency is not given in the table; 100 cycles is used, a conventional
// value for the simulated era, and is irrelevant to the security
// results (only to absolute slowdowns).
func Table1Config() Config {
	return Config{
		Data: HierarchyConfig{
			L1:             cache.Config{Name: "L1D", Sets: 128, Assoc: 4, BlockSize: 32, HitLatency: 1},
			L2:             cache.Config{Name: "L2D", Sets: 1024, Assoc: 4, BlockSize: 64, HitLatency: 6},
			TLBSets:        16,
			TLBAssoc:       4,
			PageSize:       4096,
			TLBMissPenalty: 30,
			MemLatency:     100,
		},
		Instr: HierarchyConfig{
			L1:             cache.Config{Name: "L1I", Sets: 512, Assoc: 1, BlockSize: 32, HitLatency: 1},
			L2:             cache.Config{Name: "L2I", Sets: 1024, Assoc: 4, BlockSize: 64, HitLatency: 6},
			TLBSets:        32,
			TLBAssoc:       4,
			PageSize:       4096,
			TLBMissPenalty: 30,
			MemLatency:     100,
		},
		// SimpleScalar's default bimodal predictor is 2048 entries; a
		// 3-cycle mispredict penalty matches its short pipeline.
		BP: BPConfig{Size: 2048, MissPenalty: 3},
	}
}

// TinyConfig returns a very small configuration useful for tests that
// need to provoke evictions and TLB misses with few accesses.
func TinyConfig() Config {
	h := HierarchyConfig{
		L1:             cache.Config{Name: "L1", Sets: 4, Assoc: 2, BlockSize: 16, HitLatency: 1},
		L2:             cache.Config{Name: "L2", Sets: 8, Assoc: 2, BlockSize: 32, HitLatency: 6},
		TLBSets:        2,
		TLBAssoc:       2,
		PageSize:       256,
		TLBMissPenalty: 30,
		MemLatency:     100,
	}
	return Config{Data: h, Instr: h, BP: BPConfig{Size: 16, MissPenalty: 8}}
}

func (h HierarchyConfig) validate() error {
	if err := h.L1.Validate(); err != nil {
		return err
	}
	if err := h.L2.Validate(); err != nil {
		return err
	}
	if h.TLBSets <= 0 || h.TLBSets&(h.TLBSets-1) != 0 {
		return fmt.Errorf("TLBSets=%d must be a positive power of two", h.TLBSets)
	}
	if h.TLBAssoc <= 0 {
		return fmt.Errorf("TLBAssoc=%d must be positive", h.TLBAssoc)
	}
	if h.PageSize <= 0 || h.PageSize&(h.PageSize-1) != 0 {
		return fmt.Errorf("PageSize=%d must be a positive power of two", h.PageSize)
	}
	return nil
}

// tlbConfig derives the TLB's cache.Config: a TLB is a cache over page
// numbers, modeled with BlockSize = PageSize.
func (h HierarchyConfig) tlbConfig(name string) cache.Config {
	return cache.Config{Name: name, Sets: h.TLBSets, Assoc: h.TLBAssoc, BlockSize: h.PageSize, HitLatency: 0}
}

// ---------------------------------------------------------------------------
// hierarchy: one partition's worth of L1+L2+TLB

// hier bundles the three caches of one hierarchy partition.
type hier struct {
	l1, l2, tlb *cache.Cache
}

func newHier(cfg HierarchyConfig, tlbName string) *hier {
	return &hier{
		l1:  cache.New(cfg.L1),
		l2:  cache.New(cfg.L2),
		tlb: cache.New(cfg.tlbConfig(tlbName)),
	}
}

func (h *hier) clone() *hier {
	return &hier{l1: h.l1.Clone(), l2: h.l2.Clone(), tlb: h.tlb.Clone()}
}

func (h *hier) flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.tlb.Flush()
}

func (h *hier) stateEqual(o *hier) bool {
	return h.l1.StateEqual(o.l1) && h.l2.StateEqual(o.l2) && h.tlb.StateEqual(o.tlb)
}

// splitConfig divides a cache configuration into n equal partitions: by
// ways when associativity allows, otherwise by sets. The paper's §4.3
// design statically and equally partitions each structure.
func splitConfig(c cache.Config, n int) cache.Config {
	if n <= 1 {
		return c
	}
	out := c
	if c.Assoc >= n {
		out.Assoc = c.Assoc / n
		return out
	}
	// Split sets; round down to a power of two, minimum 1.
	sets := c.Sets / n
	if sets < 1 {
		sets = 1
	}
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	out.Sets = p
	return out
}

func splitHierarchy(cfg HierarchyConfig, n int) HierarchyConfig {
	out := cfg
	out.L1 = splitConfig(cfg.L1, n)
	out.L2 = splitConfig(cfg.L2, n)
	if cfg.TLBAssoc >= n {
		out.TLBAssoc = cfg.TLBAssoc / n
	} else {
		sets := cfg.TLBSets / n
		if sets < 1 {
			sets = 1
		}
		p := 1
		for p*2 <= sets {
			p *= 2
		}
		out.TLBSets = p
	}
	return out
}

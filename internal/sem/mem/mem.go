// Package mem provides program memories (the m component of semantic
// configurations) and the address layout that maps variables and array
// elements to simulated machine addresses.
//
// The paper distinguishes memory m from the machine environment E: both
// affect timing, but only memory affects control flow (§3.3). Memory
// here is a flat store of 64-bit integers for scalars and arrays.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/lang/ast"
	"repro/internal/lattice"
)

// Memory holds the values of all declared scalars and arrays. Values
// live in dense slices; the name→slot index maps are immutable after
// New and shared between clones, so per-request operations (Zero,
// Clone) are slice copies, not map rebuilds.
type Memory struct {
	sidx   map[string]int // scalar name -> index into vals
	vals   []int64
	aidx   map[string]int // array name -> index into arrays
	arrays [][]int64
}

// New creates a zero-initialized memory for the program's declarations.
func New(prog *ast.Program) *Memory {
	m := &Memory{
		sidx: make(map[string]int),
		aidx: make(map[string]int),
	}
	for _, d := range prog.Decls {
		if d.IsArray {
			m.aidx[d.Name] = len(m.arrays)
			m.arrays = append(m.arrays, make([]int64, d.Size))
		} else {
			m.sidx[d.Name] = len(m.vals)
			m.vals = append(m.vals, 0)
		}
	}
	return m
}

// Zero resets every scalar and array element to zero in place, so a
// long-lived service can reuse one memory across requests without
// reallocating the maps.
func (m *Memory) Zero() {
	for i := range m.vals {
		m.vals[i] = 0
	}
	for _, a := range m.arrays {
		for i := range a {
			a[i] = 0
		}
	}
}

// ZeroScalars resets only the scalar variables, leaving arrays alone.
// Engines that alias this memory's arrays onto their own storage (see
// AliasArray) zero that storage themselves and use this for the rest.
func (m *Memory) ZeroScalars() {
	for i := range m.vals {
		m.vals[i] = 0
	}
}

// ScalarSlot returns the dense slot index of a declared scalar (slots
// are assigned in declaration order), or -1 if not declared. Engines
// use this to verify their own storage order before AliasScalars.
func (m *Memory) ScalarSlot(name string) int {
	i, ok := m.sidx[name]
	if !ok {
		return -1
	}
	return i
}

// AliasScalars rebinds the scalar value storage to the caller's backing
// slice (declaration-order slots), so scalar writes through this memory
// land directly in the caller's storage. The backing must have exactly
// one slot per declared scalar. Like AliasArray, this is an
// engine-internal zero-copy hook.
func (m *Memory) AliasScalars(backing []int64) {
	if len(backing) != len(m.vals) {
		panic(fmt.Sprintf("mem: alias length %d != %d declared scalars", len(backing), len(m.vals)))
	}
	m.vals = backing
}

// AliasArray rebinds a declared array to the caller's backing slice, so
// writes through this memory land directly in the caller's storage
// (and vice versa). The backing must have the declared length. This is
// an engine-internal zero-copy hook: a service engine aliases its
// scratch memory onto the machine's arrays once, and request setup
// then writes machine state with no copy pass.
func (m *Memory) AliasArray(name string, backing []int64) {
	i, ok := m.aidx[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	if len(m.arrays[i]) != len(backing) {
		panic(fmt.Sprintf("mem: alias length %d != declared length %d for %q", len(backing), len(m.arrays[i]), name))
	}
	m.arrays[i] = backing
}

// Get returns a scalar's value; it panics on undeclared names (the
// type checker guarantees declaredness before execution).
func (m *Memory) Get(name string) int64 {
	i, ok := m.sidx[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared scalar %q", name))
	}
	return m.vals[i]
}

// Set assigns a scalar.
func (m *Memory) Set(name string, v int64) {
	i, ok := m.sidx[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared scalar %q", name))
	}
	m.vals[i] = v
}

// GetEl returns array element name[i]; out-of-range indices wrap
// modulo the array length (a deterministic total semantics, so that
// erroneous programs still satisfy the determinism properties rather
// than trapping).
func (m *Memory) GetEl(name string, i int64) int64 {
	ai, ok := m.aidx[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	a := m.arrays[ai]
	return a[wrap(i, len(a))]
}

// SetEl assigns array element name[i], with the same wrapping rule.
func (m *Memory) SetEl(name string, i, v int64) {
	ai, ok := m.aidx[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	a := m.arrays[ai]
	a[wrap(i, len(a))] = v
}

// WrapIndex exposes the index-wrapping rule so the layout and the
// interpreters agree on which address an out-of-range access touches.
func (m *Memory) WrapIndex(name string, i int64) int64 {
	ai, ok := m.aidx[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	return wrap(i, len(m.arrays[ai]))
}

func wrap(i int64, n int) int64 {
	if n <= 0 {
		panic("mem: empty array")
	}
	r := i % int64(n)
	if r < 0 {
		r += int64(n)
	}
	return r
}

// ArrayLen returns the length of an array, or 0 if not declared.
func (m *Memory) ArrayLen(name string) int {
	i, ok := m.aidx[name]
	if !ok {
		return 0
	}
	return len(m.arrays[i])
}

// HasScalar reports whether name is a declared scalar.
func (m *Memory) HasScalar(name string) bool {
	_, ok := m.sidx[name]
	return ok
}

// HasArray reports whether name is a declared array.
func (m *Memory) HasArray(name string) bool {
	_, ok := m.aidx[name]
	return ok
}

// Clone returns an independent deep copy of the values. The immutable
// name→slot index maps are shared with the original.
func (m *Memory) Clone() *Memory {
	n := &Memory{
		sidx:   m.sidx,
		aidx:   m.aidx,
		vals:   append([]int64(nil), m.vals...),
		arrays: make([][]int64, len(m.arrays)),
	}
	for i, a := range m.arrays {
		n.arrays[i] = append([]int64(nil), a...)
	}
	return n
}

// Equal reports full equality of two memories.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.sidx) != len(o.sidx) || len(m.aidx) != len(o.aidx) {
		return false
	}
	for k, i := range m.sidx {
		oi, ok := o.sidx[k]
		if !ok || o.vals[oi] != m.vals[i] {
			return false
		}
	}
	for k, i := range m.aidx {
		oi, ok := o.aidx[k]
		if !ok || len(o.arrays[oi]) != len(m.arrays[i]) {
			return false
		}
		ov, v := o.arrays[oi], m.arrays[i]
		for j := range v {
			if v[j] != ov[j] {
				return false
			}
		}
	}
	return true
}

// ProjEquiv reports m ≈ℓ o: equality of all variables with exactly
// level lv under Γ (§3.4's projected equivalence).
func (m *Memory) ProjEquiv(o *Memory, gamma map[string]lattice.Label, lv lattice.Label) bool {
	return m.equivWhere(o, gamma, func(l lattice.Label) bool { return l == lv })
}

// LowEquiv reports m ~ℓ o: equality of all variables at levels ⊑ lv.
func (m *Memory) LowEquiv(o *Memory, lat lattice.Lattice, gamma map[string]lattice.Label, lv lattice.Label) bool {
	return m.equivWhere(o, gamma, func(l lattice.Label) bool { return lat.Leq(l, lv) })
}

func (m *Memory) equivWhere(o *Memory, gamma map[string]lattice.Label, include func(lattice.Label) bool) bool {
	for k, i := range m.sidx {
		l, ok := gamma[k]
		if !ok || !include(l) {
			continue
		}
		if oi, ok := o.sidx[k]; !ok || o.vals[oi] != m.vals[i] {
			return false
		}
	}
	for k, i := range m.aidx {
		l, ok := gamma[k]
		if !ok || !include(l) {
			continue
		}
		oi, ok := o.aidx[k]
		if !ok || len(o.arrays[oi]) != len(m.arrays[i]) {
			return false
		}
		ov, v := o.arrays[oi], m.arrays[i]
		for j := range v {
			if v[j] != ov[j] {
				return false
			}
		}
	}
	return true
}

// Names returns all declared names (scalars then arrays), sorted.
func (m *Memory) Names() []string {
	var out []string
	for k := range m.sidx {
		out = append(out, k)
	}
	for k := range m.aidx {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Layout

// Layout assigns simulated machine addresses: each scalar gets one
// 8-byte slot and each array a contiguous run of 8-byte elements, in
// declaration order from DataBase. Command nodes get code addresses
// from CodeBase with CodeStride bytes per node, so distinct commands
// fall in distinct (or at least spread-out) instruction-cache blocks.
type Layout struct {
	addrs      map[string]uint64
	dataBase   uint64
	codeBase   uint64
	codeStride uint64
	end        uint64
}

// LayoutConfig controls address assignment; the zero value selects the
// defaults below.
type LayoutConfig struct {
	DataBase   uint64 // default 0x1_0000
	CodeBase   uint64 // default 0x40_0000
	CodeStride uint64 // bytes of instruction space per command node; default 16
	ElemSize   uint64 // bytes per scalar/element; fixed at 8
}

// NewLayout computes the address layout for a program.
func NewLayout(prog *ast.Program, cfg LayoutConfig) *Layout {
	if cfg.DataBase == 0 {
		cfg.DataBase = 0x10000
	}
	if cfg.CodeBase == 0 {
		cfg.CodeBase = 0x400000
	}
	if cfg.CodeStride == 0 {
		cfg.CodeStride = 16
	}
	l := &Layout{
		addrs:      make(map[string]uint64),
		dataBase:   cfg.DataBase,
		codeBase:   cfg.CodeBase,
		codeStride: cfg.CodeStride,
	}
	next := cfg.DataBase
	for _, d := range prog.Decls {
		l.addrs[d.Name] = next
		if d.IsArray {
			next += 8 * uint64(d.Size)
		} else {
			next += 8
		}
	}
	l.end = next
	return l
}

// Addr returns the address of a scalar (or an array's base address).
func (l *Layout) Addr(name string) uint64 {
	a, ok := l.addrs[name]
	if !ok {
		panic(fmt.Sprintf("layout: unknown variable %q", name))
	}
	return a
}

// ElemAddr returns the address of array element name[i]; the caller is
// responsible for wrapping i into range first (Memory.WrapIndex).
func (l *Layout) ElemAddr(name string, i int64) uint64 {
	return l.Addr(name) + 8*uint64(i)
}

// CodeAddr returns the instruction address of a command node.
func (l *Layout) CodeAddr(nodeID int) uint64 {
	return l.codeBase + l.codeStride*uint64(nodeID)
}

// DataEnd returns the first address past the data segment.
func (l *Layout) DataEnd() uint64 { return l.end }

// Package mem provides program memories (the m component of semantic
// configurations) and the address layout that maps variables and array
// elements to simulated machine addresses.
//
// The paper distinguishes memory m from the machine environment E: both
// affect timing, but only memory affects control flow (§3.3). Memory
// here is a flat store of 64-bit integers for scalars and arrays.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/lang/ast"
	"repro/internal/lattice"
)

// Memory holds the values of all declared scalars and arrays.
type Memory struct {
	scalars map[string]int64
	arrays  map[string][]int64
}

// New creates a zero-initialized memory for the program's declarations.
func New(prog *ast.Program) *Memory {
	m := &Memory{
		scalars: make(map[string]int64),
		arrays:  make(map[string][]int64),
	}
	for _, d := range prog.Decls {
		if d.IsArray {
			m.arrays[d.Name] = make([]int64, d.Size)
		} else {
			m.scalars[d.Name] = 0
		}
	}
	return m
}

// Get returns a scalar's value; it panics on undeclared names (the
// type checker guarantees declaredness before execution).
func (m *Memory) Get(name string) int64 {
	v, ok := m.scalars[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared scalar %q", name))
	}
	return v
}

// Set assigns a scalar.
func (m *Memory) Set(name string, v int64) {
	if _, ok := m.scalars[name]; !ok {
		panic(fmt.Sprintf("mem: undeclared scalar %q", name))
	}
	m.scalars[name] = v
}

// GetEl returns array element name[i]; out-of-range indices wrap
// modulo the array length (a deterministic total semantics, so that
// erroneous programs still satisfy the determinism properties rather
// than trapping).
func (m *Memory) GetEl(name string, i int64) int64 {
	a, ok := m.arrays[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	return a[wrap(i, len(a))]
}

// SetEl assigns array element name[i], with the same wrapping rule.
func (m *Memory) SetEl(name string, i, v int64) {
	a, ok := m.arrays[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	a[wrap(i, len(a))] = v
}

// WrapIndex exposes the index-wrapping rule so the layout and the
// interpreters agree on which address an out-of-range access touches.
func (m *Memory) WrapIndex(name string, i int64) int64 {
	a, ok := m.arrays[name]
	if !ok {
		panic(fmt.Sprintf("mem: undeclared array %q", name))
	}
	return wrap(i, len(a))
}

func wrap(i int64, n int) int64 {
	if n <= 0 {
		panic("mem: empty array")
	}
	r := i % int64(n)
	if r < 0 {
		r += int64(n)
	}
	return r
}

// ArrayLen returns the length of an array, or 0 if not declared.
func (m *Memory) ArrayLen(name string) int {
	return len(m.arrays[name])
}

// HasScalar reports whether name is a declared scalar.
func (m *Memory) HasScalar(name string) bool {
	_, ok := m.scalars[name]
	return ok
}

// HasArray reports whether name is a declared array.
func (m *Memory) HasArray(name string) bool {
	_, ok := m.arrays[name]
	return ok
}

// Clone returns an independent deep copy.
func (m *Memory) Clone() *Memory {
	n := &Memory{
		scalars: make(map[string]int64, len(m.scalars)),
		arrays:  make(map[string][]int64, len(m.arrays)),
	}
	for k, v := range m.scalars {
		n.scalars[k] = v
	}
	for k, v := range m.arrays {
		n.arrays[k] = append([]int64(nil), v...)
	}
	return n
}

// Equal reports full equality of two memories.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.scalars) != len(o.scalars) || len(m.arrays) != len(o.arrays) {
		return false
	}
	for k, v := range m.scalars {
		ov, ok := o.scalars[k]
		if !ok || ov != v {
			return false
		}
	}
	for k, v := range m.arrays {
		ov, ok := o.arrays[k]
		if !ok || len(ov) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != ov[i] {
				return false
			}
		}
	}
	return true
}

// ProjEquiv reports m ≈ℓ o: equality of all variables with exactly
// level lv under Γ (§3.4's projected equivalence).
func (m *Memory) ProjEquiv(o *Memory, gamma map[string]lattice.Label, lv lattice.Label) bool {
	return m.equivWhere(o, gamma, func(l lattice.Label) bool { return l == lv })
}

// LowEquiv reports m ~ℓ o: equality of all variables at levels ⊑ lv.
func (m *Memory) LowEquiv(o *Memory, lat lattice.Lattice, gamma map[string]lattice.Label, lv lattice.Label) bool {
	return m.equivWhere(o, gamma, func(l lattice.Label) bool { return lat.Leq(l, lv) })
}

func (m *Memory) equivWhere(o *Memory, gamma map[string]lattice.Label, include func(lattice.Label) bool) bool {
	for k, v := range m.scalars {
		l, ok := gamma[k]
		if !ok || !include(l) {
			continue
		}
		if ov, ok := o.scalars[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range m.arrays {
		l, ok := gamma[k]
		if !ok || !include(l) {
			continue
		}
		ov, ok := o.arrays[k]
		if !ok || len(ov) != len(v) {
			return false
		}
		for i := range v {
			if v[i] != ov[i] {
				return false
			}
		}
	}
	return true
}

// Names returns all declared names (scalars then arrays), sorted.
func (m *Memory) Names() []string {
	var out []string
	for k := range m.scalars {
		out = append(out, k)
	}
	for k := range m.arrays {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Layout

// Layout assigns simulated machine addresses: each scalar gets one
// 8-byte slot and each array a contiguous run of 8-byte elements, in
// declaration order from DataBase. Command nodes get code addresses
// from CodeBase with CodeStride bytes per node, so distinct commands
// fall in distinct (or at least spread-out) instruction-cache blocks.
type Layout struct {
	addrs      map[string]uint64
	dataBase   uint64
	codeBase   uint64
	codeStride uint64
	end        uint64
}

// LayoutConfig controls address assignment; the zero value selects the
// defaults below.
type LayoutConfig struct {
	DataBase   uint64 // default 0x1_0000
	CodeBase   uint64 // default 0x40_0000
	CodeStride uint64 // bytes of instruction space per command node; default 16
	ElemSize   uint64 // bytes per scalar/element; fixed at 8
}

// NewLayout computes the address layout for a program.
func NewLayout(prog *ast.Program, cfg LayoutConfig) *Layout {
	if cfg.DataBase == 0 {
		cfg.DataBase = 0x10000
	}
	if cfg.CodeBase == 0 {
		cfg.CodeBase = 0x400000
	}
	if cfg.CodeStride == 0 {
		cfg.CodeStride = 16
	}
	l := &Layout{
		addrs:      make(map[string]uint64),
		dataBase:   cfg.DataBase,
		codeBase:   cfg.CodeBase,
		codeStride: cfg.CodeStride,
	}
	next := cfg.DataBase
	for _, d := range prog.Decls {
		l.addrs[d.Name] = next
		if d.IsArray {
			next += 8 * uint64(d.Size)
		} else {
			next += 8
		}
	}
	l.end = next
	return l
}

// Addr returns the address of a scalar (or an array's base address).
func (l *Layout) Addr(name string) uint64 {
	a, ok := l.addrs[name]
	if !ok {
		panic(fmt.Sprintf("layout: unknown variable %q", name))
	}
	return a
}

// ElemAddr returns the address of array element name[i]; the caller is
// responsible for wrapping i into range first (Memory.WrapIndex).
func (l *Layout) ElemAddr(name string, i int64) uint64 {
	return l.Addr(name) + 8*uint64(i)
}

// CodeAddr returns the instruction address of a command node.
func (l *Layout) CodeAddr(nodeID int) uint64 {
	return l.codeBase + l.codeStride*uint64(nodeID)
}

// DataEnd returns the first address past the data segment.
func (l *Layout) DataEnd() uint64 { return l.end }

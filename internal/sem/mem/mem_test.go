package mem

import (
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
)

func prog(t *testing.T, src string) *Memory {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return New(p)
}

func TestScalarGetSet(t *testing.T) {
	m := prog(t, "var x : L; var y : H; skip;")
	if m.Get("x") != 0 {
		t.Error("zero-initialized")
	}
	m.Set("x", 42)
	if m.Get("x") != 42 {
		t.Error("set/get")
	}
	if !m.HasScalar("x") || m.HasScalar("zz") || m.HasArray("x") {
		t.Error("HasScalar/HasArray")
	}
}

func TestUndeclaredPanics(t *testing.T) {
	m := prog(t, "var x : L; skip;")
	for _, f := range []func(){
		func() { m.Get("nope") },
		func() { m.Set("nope", 1) },
		func() { m.GetEl("nope", 0) },
		func() { m.SetEl("nope", 0, 1) },
		func() { m.WrapIndex("nope", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestArrayWrapping(t *testing.T) {
	m := prog(t, "array a[4] : L; skip;")
	m.SetEl("a", 1, 10)
	if m.GetEl("a", 1) != 10 {
		t.Error("basic element")
	}
	if m.GetEl("a", 5) != 10 {
		t.Error("index 5 should wrap to 1")
	}
	if m.GetEl("a", -3) != 10 {
		t.Error("index -3 should wrap to 1")
	}
	if m.WrapIndex("a", -1) != 3 {
		t.Errorf("WrapIndex(-1) = %d, want 3", m.WrapIndex("a", -1))
	}
	if m.ArrayLen("a") != 4 || m.ArrayLen("zz") != 0 {
		t.Error("ArrayLen")
	}
}

func TestCloneAndEqual(t *testing.T) {
	m := prog(t, "var x : L; array a[4] : H; skip;")
	m.Set("x", 7)
	m.SetEl("a", 2, 9)
	c := m.Clone()
	if !m.Equal(c) || !c.Equal(m) {
		t.Fatal("clone should be equal")
	}
	c.Set("x", 8)
	if m.Equal(c) {
		t.Error("scalar change should break equality")
	}
	c.Set("x", 7)
	c.SetEl("a", 0, 1)
	if m.Equal(c) {
		t.Error("array change should break equality")
	}
	if m.Get("x") != 7 || m.GetEl("a", 0) != 0 {
		t.Error("clone mutation leaked")
	}
}

func TestEquivalences(t *testing.T) {
	lat := lattice.TwoPoint()
	L, H := lat.Bot(), lat.Top()
	gamma := map[string]lattice.Label{"l": L, "h": H, "ha": H}
	m1 := prog(t, "var l : L; var h : H; array ha[2] : H; skip;")
	m2 := m1.Clone()
	m2.Set("h", 99)
	m2.SetEl("ha", 0, 1)
	if !m1.LowEquiv(m2, lat, gamma, L) {
		t.Error("m1 ~L m2 should hold (only H differs)")
	}
	if m1.LowEquiv(m2, lat, gamma, H) {
		t.Error("m1 ~H m2 should fail")
	}
	if m1.ProjEquiv(m2, gamma, H) {
		t.Error("m1 ≈H m2 should fail")
	}
	if !m1.ProjEquiv(m2, gamma, L) {
		t.Error("m1 ≈L m2 should hold")
	}
	m2.Set("h", 0)
	m2.SetEl("ha", 0, 0)
	m2.Set("l", 5)
	if m1.LowEquiv(m2, lat, gamma, L) {
		t.Error("L difference should break ~L")
	}
	if !m1.ProjEquiv(m2, gamma, H) {
		t.Error("≈H ignores L variables")
	}
}

func TestNamesSorted(t *testing.T) {
	m := prog(t, "var z : L; array a[2] : L; var k : L; skip;")
	names := m.Names()
	want := []string{"a", "k", "z"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names = %v, want %v", names, want)
		}
	}
}

func TestLayoutAddresses(t *testing.T) {
	p, err := parser.Parse("var x : L; array a[4] : H; var y : L; skip;")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(p, LayoutConfig{})
	if l.Addr("x") != 0x10000 {
		t.Errorf("x at %#x", l.Addr("x"))
	}
	if l.Addr("a") != 0x10008 {
		t.Errorf("a at %#x", l.Addr("a"))
	}
	if l.ElemAddr("a", 2) != 0x10008+16 {
		t.Errorf("a[2] at %#x", l.ElemAddr("a", 2))
	}
	if l.Addr("y") != 0x10008+32 {
		t.Errorf("y at %#x", l.Addr("y"))
	}
	if l.DataEnd() != 0x10008+32+8 {
		t.Errorf("end at %#x", l.DataEnd())
	}
	if l.CodeAddr(0) != 0x400000 || l.CodeAddr(3) != 0x400000+48 {
		t.Error("code addresses")
	}
}

func TestLayoutCustomBases(t *testing.T) {
	p, err := parser.Parse("var x : L; skip;")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(p, LayoutConfig{DataBase: 0x2000, CodeBase: 0x8000, CodeStride: 32})
	if l.Addr("x") != 0x2000 || l.CodeAddr(1) != 0x8020 {
		t.Error("custom bases not honored")
	}
}

func TestLayoutUnknownPanics(t *testing.T) {
	p, _ := parser.Parse("var x : L; skip;")
	l := NewLayout(p, LayoutConfig{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.Addr("nope")
}

func TestDistinctVariablesDistinctAddresses(t *testing.T) {
	p, err := parser.Parse("var a : L; var b : L; array c[8] : L; var d : L; skip;")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(p, LayoutConfig{})
	seen := map[uint64]string{}
	check := func(name string, addr uint64) {
		if prev, ok := seen[addr]; ok {
			t.Errorf("%s and %s share address %#x", prev, name, addr)
		}
		seen[addr] = name
	}
	check("a", l.Addr("a"))
	check("b", l.Addr("b"))
	for i := int64(0); i < 8; i++ {
		check("c[i]", l.ElemAddr("c", i))
	}
	check("d", l.Addr("d"))
}

package events

import (
	"testing"

	"repro/internal/lattice"
)

func TestEventString(t *testing.T) {
	e := Event{Var: "x", Value: 5, Time: 100}
	if e.String() != "(x, 5, 100)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestBaseVar(t *testing.T) {
	if (Event{Var: "m[3]"}).BaseVar() != "m" {
		t.Error("array event base var")
	}
	if (Event{Var: "x"}).BaseVar() != "x" {
		t.Error("scalar event base var")
	}
}

func TestTraceKeyDistinguishesTimes(t *testing.T) {
	a := Trace{{Var: "x", Value: 1, Time: 10}}
	b := Trace{{Var: "x", Value: 1, Time: 11}}
	if a.Key() == b.Key() {
		t.Error("keys must distinguish times")
	}
	if !a.ValuesEqual(b) {
		t.Error("values are equal")
	}
	if a.Equal(b) {
		t.Error("traces differ in time")
	}
	if !a.Equal(Trace{{Var: "x", Value: 1, Time: 10}}) {
		t.Error("identical traces equal")
	}
}

func TestValuesEqualLength(t *testing.T) {
	a := Trace{{Var: "x", Value: 1, Time: 1}}
	if a.ValuesEqual(Trace{}) {
		t.Error("length mismatch")
	}
	if a.Equal(Trace{}) {
		t.Error("length mismatch")
	}
}

func TestObservableAt(t *testing.T) {
	lat := lattice.TwoPoint()
	L, H := lat.Bot(), lat.Top()
	gamma := map[string]lattice.Label{"l": L, "h": H, "m": H}
	tr := Trace{
		{Var: "l", Value: 1, Time: 10},
		{Var: "h", Value: 2, Time: 20},
		{Var: "m[4]", Value: 3, Time: 30},
		{Var: "unknown", Value: 4, Time: 40},
	}
	lowView := tr.ObservableAt(lat, gamma, L)
	if len(lowView) != 1 || lowView[0].Var != "l" {
		t.Errorf("low view = %v", lowView)
	}
	highView := tr.ObservableAt(lat, gamma, H)
	if len(highView) != 3 {
		t.Errorf("high view = %v", highView)
	}
}

func TestMitRecordString(t *testing.T) {
	m := MitRecord{ID: 3, Duration: 128}
	if m.String() != "(M3, 128)" {
		t.Errorf("String = %q", m.String())
	}
	tr := MitTrace{m, {ID: 1, Duration: 4}}
	if tr.String() != "(M3, 128) (M1, 4)" {
		t.Errorf("trace String = %q", tr.String())
	}
}

func TestMitTraceFilterAndIDs(t *testing.T) {
	tr := MitTrace{{ID: 0, Duration: 4}, {ID: 1, Duration: 8}, {ID: 0, Duration: 16}}
	f := tr.Filter(func(m MitRecord) bool { return m.ID == 0 })
	if len(f) != 2 || f[0].Duration != 4 || f[1].Duration != 16 {
		t.Errorf("filtered = %v", f)
	}
	ids := tr.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 0 {
		t.Errorf("ids = %v", ids)
	}
	if tr.DurationsKey() != "4,8,16" {
		t.Errorf("durations key = %q", tr.DurationsKey())
	}
}

func TestTraceStringEmpty(t *testing.T) {
	if Trace(nil).String() != "" {
		t.Error("empty trace string")
	}
	if MitTrace(nil).DurationsKey() != "" {
		t.Error("empty durations key")
	}
}

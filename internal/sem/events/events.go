// Package events defines observable assignment events and adversary
// projections of event traces (paper §3.4 and §6.1).
//
// An adversary at level ℓA observes assignments to variables whose
// level flows to ℓA — including *when* those assignments happen,
// because the coresident adversary can monitor shared memory for
// changes. Traces of events are therefore the adversary's full view of
// an execution; the leakage package counts distinguishable traces.
package events

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
)

// Event is an observable assignment event (x, v, t): variable x was
// assigned value v at global time t. Array stores record the element as
// "name[i]". The empty event ε of the paper is represented by simply
// not emitting anything.
type Event struct {
	Var   string
	Value int64
	Time  uint64
}

// String formats the event as "(x, v, t)".
func (e Event) String() string {
	return fmt.Sprintf("(%s, %d, %d)", e.Var, e.Value, e.Time)
}

// Trace is a sequence of events in emission order.
type Trace []Event

// String renders the whole trace.
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, e := range t {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Key returns a canonical string identifying the trace exactly —
// variables, values, and times. Two executions are distinguishable to
// an observer of these events iff their Keys differ; the leakage
// measure counts distinct Keys.
func (t Trace) Key() string { return t.String() }

// BaseVar returns the variable name of an event with any array index
// stripped: "m[3]" → "m".
func (e Event) BaseVar() string {
	if i := strings.IndexByte(e.Var, '['); i >= 0 {
		return e.Var[:i]
	}
	return e.Var
}

// ObservableAt filters the trace to the events an adversary at level
// adv can see: those whose variable level flows to adv (=>ℓA in §6.1).
func (t Trace) ObservableAt(lat lattice.Lattice, gamma map[string]lattice.Label, adv lattice.Label) Trace {
	var out Trace
	for _, e := range t {
		lv, ok := gamma[e.BaseVar()]
		if !ok {
			continue
		}
		if lat.Leq(lv, adv) {
			out = append(out, e)
		}
	}
	return out
}

// Equal reports exact equality of two traces.
func (t Trace) Equal(o Trace) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// ValuesEqual reports whether the traces agree on variables and values,
// ignoring times — useful for separating storage-channel from
// timing-channel differences in tests.
func (t Trace) ValuesEqual(o Trace) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i].Var != o[i].Var || t[i].Value != o[i].Value {
			return false
		}
	}
	return true
}

// MitRecord records one completed mitigate command execution: its
// identifier η and the total time the command took, including padding
// (the (M_η, t) tuples of §6.3), ordered by completion time.
type MitRecord struct {
	ID int
	// Duration is the total execution time of the mitigate command,
	// including padding.
	Duration uint64
	// Elapsed is the body's raw execution time before padding; with
	// mitigation disabled Duration == Elapsed. Useful for sampling
	// initial predictions (§8.2).
	Elapsed uint64
	// Start is the global time at which the mitigate began.
	Start uint64
	// Mispredicted reports whether this execution overran its
	// prediction and forced a penalty.
	Mispredicted bool
}

// String formats the record as "(M3, 128)".
func (m MitRecord) String() string { return fmt.Sprintf("(M%d, %d)", m.ID, m.Duration) }

// MitTrace is the vector of mitigate executions of one run.
type MitTrace []MitRecord

// String renders the whole mitigation trace.
func (t MitTrace) String() string {
	parts := make([]string, len(t))
	for i, m := range t {
		parts[i] = m.String()
	}
	return strings.Join(parts, " ")
}

// Filter returns the subsequence whose records satisfy keep — the
// projection (M,t)|φ of §6.3.
func (t MitTrace) Filter(keep func(MitRecord) bool) MitTrace {
	var out MitTrace
	for _, m := range t {
		if keep(m) {
			out = append(out, m)
		}
	}
	return out
}

// IDs returns just the mitigate identifiers, in completion order.
func (t MitTrace) IDs() []int {
	out := make([]int, len(t))
	for i, m := range t {
		out[i] = m.ID
	}
	return out
}

// DurationsKey returns a canonical string of the durations only —
// Definition 2 counts distinct timing components of the projection.
func (t MitTrace) DurationsKey() string {
	parts := make([]string, len(t))
	for i, m := range t {
		parts[i] = fmt.Sprintf("%d", m.Duration)
	}
	return strings.Join(parts, ",")
}

// Package core implements the core operational semantics of the
// language (paper Fig. 2): a standard, untimed small-step semantics in
// which mitigate is the identity and sleep behaves like skip.
//
// The interpreter takes exactly the steps of Fig. 2: one step per
// labeled command, with sequential composition transparent (a Seq is
// decomposed without consuming a step, matching the (c1;c2) rules that
// step the head command in place). This makes the adequacy property
// (Property 1) checkable structurally against the full semantics.
package core

import (
	"errors"
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/lang/token"
	"repro/internal/sem/events"
	"repro/internal/sem/mem"
)

// ErrStepLimit is returned by Run when the program does not terminate
// within the step budget.
var ErrStepLimit = errors.New("core: step limit exceeded")

// Eval evaluates an expression in a memory (big-step, as in the paper).
// The semantics is total and deterministic: division and modulo by zero
// yield 0, shift counts are masked to 0–63, out-of-range array indices
// wrap, and booleans are 0/1 with any nonzero value counting as true.
// Logical && and || do NOT short-circuit: all variables in an
// expression are read, matching the vars1 over-approximation used by
// Property 6.
func Eval(e ast.Expr, m *mem.Memory) int64 {
	switch ex := e.(type) {
	case *ast.IntLit:
		return ex.Value
	case *ast.Var:
		return m.Get(ex.Name)
	case *ast.Index:
		return m.GetEl(ex.Name, Eval(ex.Idx, m))
	case *ast.Unary:
		v := Eval(ex.X, m)
		switch ex.Op {
		case token.MINUS:
			return -v
		case token.NOT:
			if v == 0 {
				return 1
			}
			return 0
		}
	case *ast.Binary:
		a := Eval(ex.X, m)
		b := Eval(ex.Y, m)
		return EvalBinop(ex.Op, a, b)
	}
	panic(fmt.Sprintf("core: unknown expression %T", e))
}

// EvalBinop applies a binary operator with the language's total
// semantics; it is shared with the full semantics so both evaluators
// agree exactly (required by adequacy, Property 1).
func EvalBinop(op token.Kind, a, b int64) int64 {
	switch op {
	case token.PLUS:
		return a + b
	case token.MINUS:
		return a - b
	case token.STAR:
		return a * b
	case token.SLASH:
		if b == 0 {
			return 0
		}
		if a == int64(-1)<<63 && b == -1 {
			return a // wraparound like hardware, avoid Go's panic
		}
		return a / b
	case token.PERCENT:
		if b == 0 {
			return 0
		}
		if a == int64(-1)<<63 && b == -1 {
			return 0
		}
		return a % b
	case token.EQ:
		return b2i(a == b)
	case token.NEQ:
		return b2i(a != b)
	case token.LT:
		return b2i(a < b)
	case token.LEQ:
		return b2i(a <= b)
	case token.GT:
		return b2i(a > b)
	case token.GEQ:
		return b2i(a >= b)
	case token.LAND:
		return b2i(a != 0 && b != 0)
	case token.LOR:
		return b2i(a != 0 || b != 0)
	case token.AND:
		return a & b
	case token.OR:
		return a | b
	case token.XOR:
		return a ^ b
	case token.SHL:
		return a << (uint64(b) & 63)
	case token.SHR:
		return a >> (uint64(b) & 63)
	}
	panic(fmt.Sprintf("core: unknown operator %v", op))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Machine is a core-semantics interpreter state: the pair (c, m) of
// Fig. 2, with the command represented as a stack of pending commands
// (head first) so sequential composition needs no rewriting.
type Machine struct {
	stack []ast.Cmd
	mem   *mem.Memory
	steps int
	trace events.Trace
}

// New creates a machine for the program body with the given memory.
// The memory is used in place (not copied): callers who need the
// initial memory later should Clone it first.
func New(prog *ast.Program, m *mem.Memory) *Machine {
	return &Machine{stack: []ast.Cmd{prog.Body}, mem: m}
}

// NewCmd creates a machine for a bare command.
func NewCmd(c ast.Cmd, m *mem.Memory) *Machine {
	return &Machine{stack: []ast.Cmd{c}, mem: m}
}

// Memory returns the machine's current memory.
func (k *Machine) Memory() *mem.Memory { return k.mem }

// Steps returns the number of small steps taken so far.
func (k *Machine) Steps() int { return k.steps }

// Trace returns the assignment events emitted so far. Core-semantics
// events carry the step count as their time, since the core semantics
// has no clock; they are used for value (not timing) comparisons.
func (k *Machine) Trace() events.Trace { return k.trace }

// Done reports whether execution has reached stop.
func (k *Machine) Done() bool { return len(k.stack) == 0 }

// top pops Seq frames until the head of the stack is a labeled command,
// returning it (or nil when done). Decomposing Seq is not a step.
func (k *Machine) top() ast.Cmd {
	for len(k.stack) > 0 {
		head := k.stack[len(k.stack)-1]
		seq, ok := head.(*ast.Seq)
		if !ok {
			return head
		}
		k.stack = k.stack[:len(k.stack)-1]
		k.stack = append(k.stack, seq.Second, seq.First)
	}
	return nil
}

// Step performs one small step of Fig. 2. It returns false when the
// machine has already stopped.
func (k *Machine) Step() bool {
	head := k.top()
	if head == nil {
		return false
	}
	k.steps++
	k.stack = k.stack[:len(k.stack)-1] // pop head; rules below may push
	switch c := head.(type) {
	case *ast.Skip:
		// (skip, m) → (stop, m)
	case *ast.Sleep:
		// (sleep e, m) → (stop, m): like skip in the core semantics,
		// but the argument is still evaluated (it is read).
		Eval(c.X, k.mem)
	case *ast.Assign:
		v := Eval(c.X, k.mem)
		k.mem.Set(c.Name, v)
		k.trace = append(k.trace, events.Event{Var: c.Name, Value: v, Time: uint64(k.steps)})
	case *ast.Store:
		i := k.mem.WrapIndex(c.Name, Eval(c.Idx, k.mem))
		v := Eval(c.X, k.mem)
		k.mem.SetEl(c.Name, i, v)
		k.trace = append(k.trace, events.Event{
			Var: fmt.Sprintf("%s[%d]", c.Name, i), Value: v, Time: uint64(k.steps)})
	case *ast.If:
		if Eval(c.Cond, k.mem) != 0 {
			k.stack = append(k.stack, c.Then)
		} else {
			k.stack = append(k.stack, c.Else)
		}
	case *ast.While:
		if Eval(c.Cond, k.mem) != 0 {
			// (while e do c, m) → (c; while e do c, m)
			k.stack = append(k.stack, c, c.Body)
		}
	case *ast.Mitigate:
		// Core semantics: mitigate (e, ℓ) c → c (identity), though e
		// is evaluated.
		Eval(c.Init, k.mem)
		k.stack = append(k.stack, c.Body)
	default:
		panic(fmt.Sprintf("core: unknown command %T", head))
	}
	return true
}

// Run executes until stop or until maxSteps is exceeded.
func (k *Machine) Run(maxSteps int) error {
	for !k.Done() {
		if k.steps >= maxSteps {
			return fmt.Errorf("%w (%d steps)", ErrStepLimit, maxSteps)
		}
		k.Step()
	}
	return nil
}

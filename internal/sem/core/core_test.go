package core

import (
	"errors"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/sem/mem"
)

func run(t *testing.T, src string, setup func(*mem.Memory)) *Machine {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(p)
	if setup != nil {
		setup(m)
	}
	k := New(p, m)
	if err := k.Run(100000); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestArithmetic(t *testing.T) {
	k := run(t, `
var a : L; var b : L; var c : L;
a := 7; b := 3;
c := a * b + a / b - a % b;
`, nil)
	if got := k.Memory().Get("c"); got != 21+2-1 {
		t.Errorf("c = %d, want 22", got)
	}
}

func TestDivisionByZeroTotal(t *testing.T) {
	k := run(t, `
var a : L; var b : L; var c : L;
a := 5;
b := a / c;
c := a % c + 1;
`, nil)
	if k.Memory().Get("b") != 0 || k.Memory().Get("c") != 1 {
		t.Error("div/mod by zero should be 0")
	}
}

func TestMinInt64Division(t *testing.T) {
	k := run(t, `
var a : L; var b : L; var c : L; var d : L;
a := 0 - 1; // -1
b := 1 << 63; // min int64
c := b / a;
d := b % a;
`, nil)
	if k.Memory().Get("c") != -1<<63 {
		t.Errorf("minInt/−1 = %d, want wraparound", k.Memory().Get("c"))
	}
	if k.Memory().Get("d") != 0 {
		t.Errorf("minInt%%−1 = %d, want 0", k.Memory().Get("d"))
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	k := run(t, `
var a : L; var b : L; var r : L;
a := 4; b := 9;
r := (a < b) + (a <= b) + (a > b) + (a >= b) + (a == b) + (a != b);
`, nil)
	if got := k.Memory().Get("r"); got != 3 {
		t.Errorf("r = %d, want 3", got)
	}
	k = run(t, `
var a : L; var r : L;
a := 5;
r := (a && 0) + (a || 0) * 2 + (!a) * 4 + (!0) * 8;
`, nil)
	if got := k.Memory().Get("r"); got != 0+2+0+8 {
		t.Errorf("r = %d, want 10", got)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	k := run(t, `
var r : L;
r := (12 & 10) + (12 | 10) * 100 + (12 ^ 10) * 10000;
`, nil)
	if got := k.Memory().Get("r"); got != 8+1400+60000 {
		t.Errorf("r = %d", got)
	}
	k = run(t, `
var r : L; var s : L;
r := 1 << 4;
s := 256 >> 70; // shift masked to 6 bits: 70&63 = 6
`, nil)
	if k.Memory().Get("r") != 16 || k.Memory().Get("s") != 4 {
		t.Errorf("shifts: %d %d", k.Memory().Get("r"), k.Memory().Get("s"))
	}
}

func TestUnaryOps(t *testing.T) {
	k := run(t, "var r : L; var s : L; r := -5; s := !(3 - 3);", nil)
	if k.Memory().Get("r") != -5 || k.Memory().Get("s") != 1 {
		t.Error("unary ops")
	}
}

func TestIfBranching(t *testing.T) {
	k := run(t, `
var h : H; var r : L;
if (h > 10) { r := 1; } else { r := 2; }
`, func(m *mem.Memory) { m.Set("h", 50) })
	if k.Memory().Get("r") != 1 {
		t.Error("then branch")
	}
	k = run(t, `
var h : H; var r : L;
if (h > 10) { r := 1; } else { r := 2; }
`, func(m *mem.Memory) { m.Set("h", 3) })
	if k.Memory().Get("r") != 2 {
		t.Error("else branch")
	}
}

func TestWhileLoop(t *testing.T) {
	k := run(t, `
var i : L; var s : L;
while (i < 10) { s := s + i; i := i + 1; }
`, nil)
	if k.Memory().Get("s") != 45 {
		t.Errorf("s = %d, want 45", k.Memory().Get("s"))
	}
}

func TestWhileZeroIterations(t *testing.T) {
	k := run(t, "var s : L; while (0) { s := 99; }", nil)
	if k.Memory().Get("s") != 0 {
		t.Error("loop body should not run")
	}
}

func TestArrays(t *testing.T) {
	k := run(t, `
array a[8] : L; var i : L; var s : L;
while (i < 8) { a[i] := i * i; i := i + 1; }
s := a[3] + a[7];
`, nil)
	if got := k.Memory().Get("s"); got != 9+49 {
		t.Errorf("s = %d, want 58", got)
	}
}

func TestMitigateIsIdentityInCore(t *testing.T) {
	k := run(t, `
var h : H; var r : H;
mitigate (1, H) { r := h + 1 [H,H]; }
`, func(m *mem.Memory) { m.Set("h", 10) })
	if k.Memory().Get("r") != 11 {
		t.Error("mitigate body should run")
	}
}

func TestSleepIsSkipInCore(t *testing.T) {
	k := run(t, "var r : L; sleep(1000); r := 1;", nil)
	if k.Memory().Get("r") != 1 {
		t.Error("sleep should not block core semantics")
	}
}

func TestStepLimit(t *testing.T) {
	p, err := parser.Parse("var x : L; while (1) { x := x + 1; }")
	if err != nil {
		t.Fatal(err)
	}
	k := New(p, mem.New(p))
	err = k.Run(100)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestTraceEvents(t *testing.T) {
	k := run(t, `
var x : L; array a[4] : L;
x := 5;
a[2] := 7;
x := 6;
`, nil)
	tr := k.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].Var != "x" || tr[0].Value != 5 {
		t.Errorf("event 0 = %v", tr[0])
	}
	if tr[1].Var != "a[2]" || tr[1].Value != 7 {
		t.Errorf("event 1 = %v", tr[1])
	}
	if tr[2].Var != "x" || tr[2].Value != 6 {
		t.Errorf("event 2 = %v", tr[2])
	}
}

func TestStepCount(t *testing.T) {
	// skip; x:=1; if → branch skip: 4 labeled-command steps, and the
	// Seq decomposition is free.
	k := run(t, "var x : L; skip; x := 1; if (x) { skip; } else { x := 0; }", nil)
	if k.Steps() != 4 {
		t.Errorf("steps = %d, want 4", k.Steps())
	}
}

func TestStepAfterDone(t *testing.T) {
	p, _ := parser.Parse("skip;")
	k := New(p, mem.New(p))
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if k.Step() {
		t.Error("Step after done should return false")
	}
	if !k.Done() {
		t.Error("Done should remain true")
	}
}

func TestNewCmdFragment(t *testing.T) {
	p, err := parser.Parse("var x : L; x := 1; x := x + 1;")
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(p)
	k := NewCmd(p.Body, m)
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Get("x") != 2 {
		t.Error("NewCmd execution")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
var h : H; var i : L; var s : H; array a[4] : H;
while (i < 20) {
    a[i] := a[i] + h [H,H];
    if (a[i] > 10) [H,H] { s := s + 1 [H,H]; } else { s := s [H,H]; }
    i := i + 1;
}
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	run1 := func() *Machine {
		m := mem.New(p)
		m.Set("h", 3)
		k := New(p, m)
		if err := k.Run(100000); err != nil {
			t.Fatal(err)
		}
		return k
	}
	a, b := run1(), run1()
	if !a.Memory().Equal(b.Memory()) {
		t.Error("core semantics must be deterministic")
	}
	if !a.Trace().Equal(b.Trace()) {
		t.Error("traces must agree")
	}
}

func TestEvalPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Eval(nil, nil)
}

func TestWalkFreeVarsAgreement(t *testing.T) {
	// Eval reads exactly the variables ExprVars reports (non-short-
	// circuit &&/||): evaluate an expression with && whose right side
	// references an undeclared... instead check that all of ExprVars
	// are needed by constructing memories: here simply evaluate both
	// operands of && even when left is false.
	p, err := parser.Parse("var a : L; var b : L; var r : L; r := a && b;")
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(p)
	m.Set("b", 1)
	k := New(p, m)
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Get("r") != 0 {
		t.Error("0 && 1 = 0")
	}
	asg := findAssign(p.Body, "r")
	vars := ast.ExprVars(asg.X)
	if len(vars) != 2 {
		t.Errorf("ExprVars = %v", vars)
	}
}

func findAssign(c ast.Cmd, name string) *ast.Assign {
	var out *ast.Assign
	ast.WalkCmds(c, func(x ast.Cmd) bool {
		if a, ok := x.(*ast.Assign); ok && a.Name == name {
			out = a
		}
		return true
	})
	return out
}

package full

import (
	"testing"

	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
)

// Low events inside a mitigate body occur before the padding; because
// the type system keeps everything ahead of them low, their absolute
// times are secret-independent even though the enclosing mitigate's
// duration varies (within the schedule).
func TestLowEventInsideMitigate(t *testing.T) {
	src := `
var h : H;
var lo : L;
var done : L;
mitigate (4096, H) [L,L] {
    lo := 7;
    sleep(h) [H,H];
}
done := 1;
`
	p, r := build(t, src)
	run := func(h int64) (loTime, doneTime uint64) {
		env := hw.NewPartitioned(r.Lat, hw.TinyConfig())
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", h) }, 100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Trace {
			switch e.Var {
			case "lo":
				loTime = e.Time
			case "done":
				doneTime = e.Time
			}
		}
		return loTime, doneTime
	}
	lo1, done1 := run(5)
	lo2, done2 := run(3000)
	if lo1 != lo2 {
		t.Errorf("inner low event times differ: %d vs %d", lo1, lo2)
	}
	if done1 != done2 {
		t.Errorf("post-mitigation event times differ: %d vs %d", done1, done2)
	}
	if lo1 >= done1 {
		t.Error("inner event should precede the padded completion")
	}
}

// Cloning a machine mid-mitigation must preserve the open region: both
// copies finish it identically.
func TestCloneMidMitigation(t *testing.T) {
	src := `
var h : H;
var done : L;
mitigate (512, H) [L,L] {
    sleep(h) [H,H];
    sleep(1) [H,H];
}
done := 1;
`
	p, r := build(t, src)
	env := hw.NewFlat(r.Lat, 2)
	m, err := New(p, r, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Set("h", 40)
	// Step into the mitigate body (mitigate entry + first sleep).
	m.Step()
	m.Step()
	c := m.Clone()
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if m.Clock() != c.Clock() {
		t.Errorf("clone diverged: %d vs %d", m.Clock(), c.Clock())
	}
	if len(m.Mitigations()) != 1 || len(c.Mitigations()) != 1 ||
		m.Mitigations()[0] != c.Mitigations()[0] {
		t.Errorf("mitigation records differ: %v vs %v", m.Mitigations(), c.Mitigations())
	}
}

// A step-limited run still exposes the partial trace collected so far.
func TestPartialTraceOnStepLimit(t *testing.T) {
	src := `
var i : L;
while (1) {
    i := i + 1;
}
`
	p, r := build(t, src)
	env := hw.NewFlat(r.Lat, 1)
	m, err := New(p, r, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(41); err == nil {
		t.Fatal("expected step limit")
	}
	if len(m.Trace()) == 0 {
		t.Error("partial trace should be available")
	}
	if m.Trace()[len(m.Trace())-1].Value < 2 {
		t.Error("loop should have iterated")
	}
}

// The branch predictor makes a repeated loop's later iterations cheaper
// (trained branch), observable in event spacing.
func TestBranchPredictorWarmup(t *testing.T) {
	src := `
var i : L;
array out[16] : L;
while (i < 12) {
    out[i] := i;
    i := i + 1;
}
`
	p, r := build(t, src)
	env := hw.NewPartitioned(r.Lat, hw.Table1Config())
	res, err := Execute(p, r, env, Options{}, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	var outs []uint64
	for _, e := range res.Trace {
		if e.BaseVar() == "out" {
			outs = append(outs, e.Time)
		}
	}
	if len(outs) != 12 {
		t.Fatalf("trace = %v", res.Trace)
	}
	early := outs[1] - outs[0]
	late := outs[11] - outs[10]
	if late >= early {
		t.Errorf("trained iterations (%d) should be cheaper than cold ones (%d)", late, early)
	}
}

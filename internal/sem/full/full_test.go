package full

import (
	"errors"
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/core"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// build parses and type-checks a program over the two-point lattice.
func build(t *testing.T, src string) (*ast.Program, *types.Result) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return p, r
}

func execFlat(t *testing.T, src string, setup func(*mem.Memory)) *Result {
	t.Helper()
	p, r := build(t, src)
	env := hw.NewFlat(r.Lat, 2)
	res, err := Execute(p, r, env, Options{}, setup, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestClockAdvances(t *testing.T) {
	res := execFlat(t, "var x : L; x := 1; x := 2;", nil)
	if res.Clock == 0 {
		t.Error("clock should advance")
	}
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2", res.Steps)
	}
}

func TestSleepDurationExact(t *testing.T) {
	// Property 4: sleep(n) adds exactly max(n,0) on top of the step's
	// fixed overhead — measure by differencing two sleeps.
	r10 := execFlat(t, "var l : L; sleep(10);", nil)
	r50 := execFlat(t, "var l : L; sleep(50);", nil)
	if r50.Clock-r10.Clock != 40 {
		t.Errorf("sleep delta = %d, want 40", r50.Clock-r10.Clock)
	}
	rNeg := execFlat(t, "var l : L; sleep(0 - 7);", nil)
	rZero := execFlat(t, "var l : L; sleep(0 - 0);", nil)
	if rNeg.Clock != rZero.Clock {
		t.Errorf("negative sleep should cost like zero: %d vs %d", rNeg.Clock, rZero.Clock)
	}
}

func TestSleepOnVariable(t *testing.T) {
	src := "var h : H; var r : H; sleep(h) [H,H]; r := 1 [H,H];"
	p, r := build(t, src)
	run := func(h int64) uint64 {
		env := hw.NewFlat(r.Lat, 2)
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", h) }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Clock
	}
	if run(100)-run(0) != 100 {
		t.Errorf("sleep(h) delta = %d, want 100", run(100)-run(0))
	}
}

func TestEventsCarryTimes(t *testing.T) {
	res := execFlat(t, "var x : L; x := 1; sleep(100); x := 2;", nil)
	if len(res.Trace) != 2 {
		t.Fatalf("trace = %v", res.Trace)
	}
	if res.Trace[1].Time-res.Trace[0].Time <= 100 {
		t.Errorf("second event should be >100 cycles later: %v", res.Trace)
	}
	if res.Trace[0].Time == 0 {
		t.Error("event times should be post-step clock values")
	}
}

func TestAdequacyWithCore(t *testing.T) {
	// Property 1: the full semantics computes the same memory and the
	// same (valuewise) event trace as the core semantics.
	srcs := []string{
		"var x : L; var i : L; while (i < 7) { x := x + i * 2; i := i + 1; }",
		`var h : H; var r : H; var i : L;
         mitigate (1, H) [L,L] {
             if (h > 3) [H,H] { r := 1 [H,H]; } else { r := 2 [H,H]; }
             sleep(h) [H,H];
         }
         i := 5;`,
		`array a[8] : L; var i : L; var s : L;
         while (i < 8) { a[i] := 7 - i; i := i + 1; }
         s := a[0] * 10 + a[7];`,
	}
	for _, src := range srcs {
		p, r := build(t, src)
		setH := func(m *mem.Memory) {
			if m.HasScalar("h") {
				m.Set("h", 5)
			}
		}
		// Core run.
		cm := mem.New(p)
		setH(cm)
		ck := core.New(p, cm)
		if err := ck.Run(100000); err != nil {
			t.Fatal(err)
		}
		// Full run.
		env := hw.NewPartitioned(r.Lat, hw.TinyConfig())
		res, err := Execute(p, r, env, Options{}, setH, 100000)
		if err != nil {
			t.Fatal(err)
		}
		fm := res.Trace
		if !ck.Trace().ValuesEqual(fm) {
			t.Errorf("trace values differ for %q:\ncore: %v\nfull: %v", src, ck.Trace(), fm)
		}
	}
}

func TestAdequacyFinalMemory(t *testing.T) {
	src := `
var h : H; var acc : H; var i : H;
while (i < 10) [H,H] {
    if ((h >> i) & 1) [H,H] { acc := acc + i [H,H]; } else { skip [H,H]; }
    i := i + 1 [H,H];
}
`
	p, r := build(t, src)
	cm := mem.New(p)
	cm.Set("h", 0b1011011)
	ck := core.New(p, cm)
	if err := ck.Run(100000); err != nil {
		t.Fatal(err)
	}
	env := hw.NewNoFill(r.Lat, hw.TinyConfig())
	m, err := New(p, r, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Set("h", 0b1011011)
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !m.Memory().Equal(cm) {
		t.Error("final memories differ between core and full semantics")
	}
	if m.Steps() != ck.Steps() {
		t.Errorf("step counts differ: full %d, core %d", m.Steps(), ck.Steps())
	}
}

func TestDeterminismProperty2(t *testing.T) {
	src := `
var h : H; var i : H; array a[4] : H;
while (i < 16) {
    a[h % 4] := a[h % 4] + 1;
    h := h * 1103515245 + 12345;
    i := i + 1;
}
`
	p, r := build(t, src)
	run := func() *Result {
		env := hw.NewPartitioned(r.Lat, hw.TinyConfig())
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", 99) }, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Clock != b.Clock {
		t.Errorf("clocks differ: %d vs %d", a.Clock, b.Clock)
	}
	if !a.Trace.Equal(b.Trace) {
		t.Error("traces differ")
	}
}

func TestCacheMakesReuseFaster(t *testing.T) {
	// Two reads of the same variable: the second should be faster on
	// real cache models, observable via assignment event spacing.
	src := "var a : L; var x : L; var y : L; x := a; y := a;"
	p, r := build(t, src)
	env := hw.NewUnpartitioned(r.Lat, hw.Table1Config())
	res, err := Execute(p, r, env, Options{}, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	d1 := res.Trace[0].Time
	d2 := res.Trace[1].Time - res.Trace[0].Time
	if d2 >= d1 {
		t.Errorf("warm access (%d) should beat cold (%d)", d2, d1)
	}
}

func TestMitigationPadsToPrediction(t *testing.T) {
	// With a generous initial prediction, the mitigate's duration is
	// exactly the prediction regardless of the secret sleep inside.
	src := `
var h : H;
mitigate (1000, H) [L,L] { sleep(h) [H,H]; }
`
	p, r := build(t, src)
	run := func(h int64) *Result {
		env := hw.NewFlat(r.Lat, 2)
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", h) }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(900)
	if len(a.Mitigations) != 1 || len(b.Mitigations) != 1 {
		t.Fatal("expected one mitigation record")
	}
	if a.Mitigations[0].Duration != 1000 || b.Mitigations[0].Duration != 1000 {
		t.Errorf("durations %d/%d, want 1000", a.Mitigations[0].Duration, b.Mitigations[0].Duration)
	}
	if a.Clock != b.Clock {
		t.Errorf("mitigated clocks should coincide: %d vs %d", a.Clock, b.Clock)
	}
	if a.Mitigations[0].Mispredicted || b.Mitigations[0].Mispredicted {
		t.Error("no misprediction expected")
	}
}

func TestMitigationDoublesOnMiss(t *testing.T) {
	src := `
var h : H;
mitigate (16, H) [L,L] { sleep(h) [H,H]; }
`
	p, r := build(t, src)
	env := hw.NewFlat(r.Lat, 2)
	res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", 100) }, 10000)
	if err != nil {
		t.Fatal(err)
	}
	mrec := res.Mitigations[0]
	if !mrec.Mispredicted {
		t.Error("expected misprediction")
	}
	// Schedule: 16, 32, 64, 128 — body takes ~104 cycles, so 128.
	if mrec.Duration != 128 {
		t.Errorf("duration = %d, want 128 (doubling schedule)", mrec.Duration)
	}
}

func TestMitigationDurationsAreQuantized(t *testing.T) {
	// Across many secrets, the set of observed durations must be a
	// subset of the doubling schedule {16, 32, 64, 128, ...}.
	src := `
var h : H;
mitigate (16, H) [L,L] { sleep(h) [H,H]; }
`
	p, r := build(t, src)
	seen := map[uint64]bool{}
	for h := int64(0); h < 200; h += 7 {
		env := hw.NewFlat(r.Lat, 2)
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", h) }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.Mitigations[0].Duration] = true
	}
	for d := range seen {
		ok := false
		for p := uint64(16); p <= 1<<20; p *= 2 {
			if d == p {
				ok = true
			}
		}
		if !ok {
			t.Errorf("duration %d is not on the doubling schedule", d)
		}
	}
	if len(seen) > 5 {
		t.Errorf("too many distinct durations: %d", len(seen))
	}
}

func TestNestedMitigationTiming(t *testing.T) {
	// The outer mitigate absorbs the inner one's padded duration.
	// The inner prediction (64) covers its body so the inner mitigate
	// never misses; otherwise the per-level policy would let inner
	// misses inflate the outer prediction (see
	// TestPerLevelInflationAcrossNesting).
	src := `
var h : H;
mitigate@1 (4096, H) [L,L] {
    if (h) [H,H] {
        mitigate@2 (64, H) [H,H] { h := h + 1 [H,H]; }
    } else {
        skip [H,H];
    }
}
`
	p, r := build(t, src)
	run := func(h int64) *Result {
		env := hw.NewFlat(r.Lat, 2)
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", h) }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1) // executes inner mitigate
	b := run(0) // skips it
	// Outer duration identical (inner fits inside the outer prediction).
	outerA := a.Mitigations[len(a.Mitigations)-1]
	outerB := b.Mitigations[len(b.Mitigations)-1]
	if outerA.ID != 1 || outerB.ID != 1 {
		t.Fatalf("outer records: %v / %v", a.Mitigations, b.Mitigations)
	}
	if outerA.Duration != outerB.Duration {
		t.Errorf("outer durations differ: %d vs %d", outerA.Duration, outerB.Duration)
	}
	// The inner mitigate appears only in the h=1 trace (it is in a high
	// context — Lemma 1 says only low-context mitigates are
	// deterministic).
	if len(a.Mitigations) != 2 || len(b.Mitigations) != 1 {
		t.Errorf("mitigation counts: %d vs %d", len(a.Mitigations), len(b.Mitigations))
	}
}

func TestPerLevelInflationAcrossNesting(t *testing.T) {
	// With the paper's per-level penalty policy, misses of a nested
	// mitigate at level H inflate the predictions of every H-level
	// mitigate — including its enclosing one. The outer duration then
	// still takes only schedule values (bounded leakage), but differs
	// across secrets.
	src := `
var h : H;
mitigate@1 (4096, H) [L,L] {
    if (h) [H,H] {
        mitigate@2 (1, H) [H,H] { h := h + 1 [H,H]; }
    } else {
        skip [H,H];
    }
}
`
	p, r := build(t, src)
	run := func(h int64) *Result {
		env := hw.NewFlat(r.Lat, 2)
		res, err := Execute(p, r, env, Options{}, func(m *mem.Memory) { m.Set("h", h) }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1) // inner mitigate misses, inflating Miss[H]
	b := run(0)
	outerA := a.Mitigations[len(a.Mitigations)-1]
	outerB := b.Mitigations[len(b.Mitigations)-1]
	if outerA.Duration <= outerB.Duration {
		t.Errorf("expected inner misses to inflate the outer prediction: %d vs %d",
			outerA.Duration, outerB.Duration)
	}
	// Both durations must lie on the outer doubling schedule.
	for _, d := range []uint64{outerA.Duration, outerB.Duration} {
		on := false
		for s := uint64(4096); s <= 1<<30; s *= 2 {
			if d == s {
				on = true
			}
		}
		if !on {
			t.Errorf("outer duration %d off schedule", d)
		}
	}
}

func TestDisableMitigation(t *testing.T) {
	src := `
var h : H;
mitigate (1000, H) [L,L] { sleep(h) [H,H]; }
`
	p, r := build(t, src)
	run := func(h int64) *Result {
		env := hw.NewFlat(r.Lat, 2)
		res, err := Execute(p, r, env, Options{DisableMitigation: true},
			func(m *mem.Memory) { m.Set("h", h) }, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(800)
	if a.Clock == b.Clock {
		t.Error("unmitigated clocks should differ with the secret")
	}
	// Disabled mitigation still records raw body times for sampling.
	if len(a.Mitigations) != 1 || a.Mitigations[0].Duration != a.Mitigations[0].Elapsed {
		t.Errorf("disabled mitigation should record raw elapsed: %v", a.Mitigations)
	}
	if b.Mitigations[0].Elapsed-a.Mitigations[0].Elapsed != 795 {
		t.Errorf("elapsed delta = %d, want 795", b.Mitigations[0].Elapsed-a.Mitigations[0].Elapsed)
	}
}

func TestMissCountersPersistAcrossMitigates(t *testing.T) {
	// The local penalty policy: a miss at level H inflates the next
	// prediction at H.
	src := `
var h : H;
mitigate@0 (8, H) [L,L] { sleep(h) [H,H]; }
mitigate@1 (8, H) [L,L] { sleep(1) [H,H]; }
`
	p, r := build(t, src)
	env := hw.NewFlat(r.Lat, 2)
	m, err := New(p, r, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Set("h", 100)
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	recs := m.Mitigations()
	if len(recs) != 2 {
		t.Fatalf("records: %v", recs)
	}
	if !recs[0].Mispredicted {
		t.Error("first mitigate should miss")
	}
	if recs[1].Duration != recs[0].Duration {
		t.Errorf("second prediction should inherit inflation: %d vs %d",
			recs[1].Duration, recs[0].Duration)
	}
	if m.MitigationState().TotalMisses() == 0 {
		t.Error("miss counters should be positive")
	}
}

func TestPerSitePolicyIsolatesSites(t *testing.T) {
	src := `
var h : H;
mitigate@0 (8, H) [L,L] { sleep(h) [H,H]; }
mitigate@1 (8, H) [L,L] { sleep(1) [H,H]; }
`
	p, r := build(t, src)
	env := hw.NewFlat(r.Lat, 2)
	m, err := New(p, r, env, Options{Policy: mitigation.PerSite})
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Set("h", 100)
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	recs := m.Mitigations()
	if recs[1].Duration >= recs[0].Duration {
		t.Errorf("per-site: second site should not inherit inflation: %v", recs)
	}
}

func TestStepLimitError(t *testing.T) {
	p, r := build(t, "var x : L; while (1) { x := x + 1; }")
	env := hw.NewFlat(r.Lat, 1)
	_, err := Execute(p, r, env, Options{}, nil, 50)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestUnresolvedLabelsRejected(t *testing.T) {
	p, err := parser.Parse("var x : L; x := 1;")
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately skip type checking.
	lat := lattice.TwoPoint()
	fake := &types.Result{Lat: lat}
	if _, err := New(p, fake, hw.NewFlat(lat, 1), Options{}); err == nil {
		t.Error("expected unresolved-labels error")
	}
}

func TestCloneIndependence(t *testing.T) {
	p, r := build(t, "var x : L; var i : L; while (i < 5) { x := x + i; i := i + 1; }")
	env := hw.NewFlat(r.Lat, 2)
	m, err := New(p, r, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Step()
	}
	c := m.Clone()
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10000); err != nil {
		t.Fatal(err)
	}
	if m.Clock() != c.Clock() {
		t.Errorf("clone diverged: %d vs %d", m.Clock(), c.Clock())
	}
	if !m.Memory().Equal(c.Memory()) {
		t.Error("memories diverged")
	}
}

func TestExecuteCollectsStats(t *testing.T) {
	p, r := build(t, "var x : L; x := 1; x := x + 1;")
	env := hw.NewUnpartitioned(r.Lat, hw.Table1Config())
	res, err := Execute(p, r, env, Options{}, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.L1DHits+res.Stats.L1DMisses == 0 {
		t.Error("expected data accesses in stats")
	}
	if res.Stats.L1IHits+res.Stats.L1IMisses == 0 {
		t.Error("expected instruction fetches in stats")
	}
}

package full

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/machine/hw"
	"repro/internal/obs"
)

const loopSrc = `
var i : L;
i := 0;
while (i < 100000) {
    i := i + 1;
}
`

func TestRunBudgetStepLimit(t *testing.T) {
	p, r := build(t, loopSrc)
	m, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunBudget(context.Background(), Budget{MaxSteps: 100})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("RunBudget = %v, want ErrStepLimit", err)
	}
}

func TestRunBudgetCycleLimit(t *testing.T) {
	p, r := build(t, loopSrc)
	m, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunBudget(context.Background(), Budget{MaxCycles: 50})
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("RunBudget = %v, want ErrCycleLimit", err)
	}
}

func TestRunBudgetUnlimited(t *testing.T) {
	p, r := build(t, "var x : L; x := 1;")
	m, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Zero budget means unlimited, and a nil context is tolerated.
	if err := m.RunBudget(nil, Budget{}); err != nil {
		t.Fatalf("RunBudget = %v", err)
	}
	if !m.Done() {
		t.Error("machine should have terminated")
	}
}

func TestRunBudgetContextCancel(t *testing.T) {
	p, r := build(t, `
var i : L;
i := 0;
while (i < 1000000000) {
    i := i + 1;
}
`)
	m, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = m.RunBudget(ctx, Budget{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunBudget = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunMatchesRunBudget(t *testing.T) {
	// The legacy Run(maxSteps) must behave exactly like RunBudget with a
	// step budget: same traces, same clock.
	src := `
var h : H;
var x : L;
mitigate (1, H) [L,L] {
    sleep(h % 10) [H,H];
}
x := 1;
`
	p, r := build(t, src)
	m1, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1.Memory().Set("h", 7)
	if err := m1.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	m2, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2.Memory().Set("h", 7)
	if err := m2.RunBudget(context.Background(), Budget{MaxSteps: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if m1.Clock() != m2.Clock() || m1.Steps() != m2.Steps() {
		t.Errorf("Run: %d cycles/%d steps; RunBudget: %d cycles/%d steps",
			m1.Clock(), m1.Steps(), m2.Clock(), m2.Steps())
	}
}

func TestMetricsObservationalOnly(t *testing.T) {
	// Instrumented and uninstrumented runs must be cycle-identical:
	// recording metrics never perturbs simulated time.
	src := `
var h : H;
var x : L;
mitigate (1, H) [L,L] {
    sleep(h % 32) [H,H];
}
x := 1;
`
	p, r := build(t, src)
	run := func(metrics *obs.Metrics) uint64 {
		m, err := New(p, r, hw.NewFlat(r.Lat, 2), Options{Metrics: metrics})
		if err != nil {
			t.Fatal(err)
		}
		m.Memory().Set("h", 21)
		if err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Clock()
	}
	plain := run(nil)
	metrics := obs.NewMetrics()
	instrumented := run(metrics)
	if plain != instrumented {
		t.Errorf("instrumentation changed simulated time: %d vs %d", plain, instrumented)
	}
	s := metrics.Snapshot()
	if s.Mitigations != 1 {
		t.Errorf("mitigations = %d, want 1", s.Mitigations)
	}
	if s.Mispredictions != 1 {
		t.Errorf("mispredictions = %d, want 1 (init estimate 1 < body)", s.Mispredictions)
	}
	if s.PaddingCycles == 0 {
		t.Error("expected padding cycles to be recorded")
	}
	if s.ScheduleBumps == 0 {
		t.Error("expected schedule bumps to be recorded")
	}
	if s.Cycles != instrumented {
		t.Errorf("metrics cycles = %d, machine clock = %d", s.Cycles, instrumented)
	}
	if s.Steps == 0 {
		t.Error("expected steps to be recorded")
	}
}

// Package full implements the full language semantics (paper §3.2–3.3):
// configurations (c, m, E, G) where E is a machine environment and G a
// global clock in cycles, extended with the predictive-mitigation
// semantics of Fig. 6.
//
// The full semantics takes exactly the core semantics' steps (so
// adequacy, Property 1, holds by construction and is verified by
// tests), additionally charging each step's duration:
//
//	cost(step) = BaseCost                      // issue/ALU
//	           + E.Access(Fetch, code address) // instruction fetch
//	           + Σ E.Access(Read, var/elem)    // operands, left-to-right
//	           + OpCost per operator
//	           + E.Access(Write, target)       // for assignments/stores
//	           + max(n, 0)                     // for sleep(n), Property 4
//
// Every access carries the command's read and write labels, which is
// the software→hardware half of the paper's contract (the timing-label
// register of §8.1).
package full

import (
	"context"
	"fmt"

	"repro/internal/exec/budget"
	"repro/internal/lang/ast"
	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/sem/core"
	"repro/internal/sem/events"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// ErrStepLimit is returned by Run when the program does not terminate
// within the step budget. It is the shared budget.ErrStepLimit
// sentinel, so errors.Is matches it regardless of execution engine.
//
// Deprecated: match budget.ErrStepLimit directly.
var ErrStepLimit = budget.ErrStepLimit

// ErrCycleLimit is returned by RunBudget when the program exceeds its
// simulated-cycle budget. It is the shared budget.ErrCycleLimit
// sentinel.
//
// Deprecated: match budget.ErrCycleLimit directly.
var ErrCycleLimit = budget.ErrCycleLimit

// Options configure a Machine. The zero value selects the defaults
// noted on each field.
type Options struct {
	// Layout controls address assignment; zero value = defaults.
	Layout mem.LayoutConfig
	// BaseCost is the fixed per-step cost; default 1.
	BaseCost uint64
	// OpCost is the cost per evaluated operator; default 1.
	OpCost uint64
	// Scheme is the mitigation prediction scheme; default FastDoubling.
	Scheme mitigation.Scheme
	// Policy is the mitigation penalty policy; default PerLevel (the
	// paper's local penalty policy).
	Policy mitigation.Policy
	// DisableMitigation makes mitigate behave as in the core semantics
	// (identity); used for the unmitigated baselines of §8.
	DisableMitigation bool
	// CostSet, when true, takes BaseCost and OpCost literally — an
	// explicit zero is honored instead of selecting the default of 1.
	CostSet bool
	// Metrics, when non-nil, receives instrumentation (steps, cycles,
	// padding, mitigation outcomes). Recording is observational only
	// and never changes execution or simulated time.
	Metrics *obs.Metrics
}

func (o Options) withDefaults() Options {
	if !o.CostSet {
		if o.BaseCost == 0 {
			o.BaseCost = 1
		}
		if o.OpCost == 0 {
			o.OpCost = 1
		}
	}
	if o.Scheme == nil {
		o.Scheme = mitigation.FastDoubling{}
	}
	return o
}

// mitExit is a continuation frame marking the completion point of a
// mitigate command's body.
type mitExit struct {
	m     *ast.Mitigate
	start uint64 // clock when the body started
	init  int64  // evaluated initial estimate
}

// frame is either an ast.Cmd or a *mitExit.
type frame any

// Machine is a full-semantics interpreter: the configuration
// (c, m, E, G) plus mitigation state and the event trace.
type Machine struct {
	prog   *ast.Program
	res    *types.Result
	opts   Options
	layout *mem.Layout

	stack []frame
	mem   *mem.Memory
	env   hw.Env
	clock uint64

	steps int
	trace events.Trace
	mits  events.MitTrace
	mit   *mitigation.State
}

// New constructs a machine for a type-checked program. The program
// must have been checked (labels resolved) — New reports an error on
// unresolved labels. The environment is used in place; Clone it first
// if the caller needs to keep the initial state.
func New(prog *ast.Program, res *types.Result, env hw.Env, opts Options) (*Machine, error) {
	opts = opts.withDefaults()
	var unresolved error
	ast.WalkCmds(prog.Body, func(c ast.Cmd) bool {
		if lc, ok := c.(ast.Labeled); ok && !lc.Labels().Resolved() {
			unresolved = fmt.Errorf("full: command at %s has unresolved labels (run types.Check first)", c.Pos())
			return false
		}
		return true
	})
	if unresolved != nil {
		return nil, unresolved
	}
	m := &Machine{
		prog:   prog,
		res:    res,
		opts:   opts,
		layout: mem.NewLayout(prog, opts.Layout),
		stack:  []frame{frame(prog.Body)},
		mem:    mem.New(prog),
		env:    env,
		mit:    mitigation.NewState(res.Lat, opts.Scheme, opts.Policy),
	}
	if opts.Metrics != nil {
		m.mit.SetOnMiss(func(lattice.Label, int) { opts.Metrics.AddScheduleBumps(1) })
	}
	return m, nil
}

// Memory returns the machine's memory (for setting inputs and reading
// outputs).
func (k *Machine) Memory() *mem.Memory { return k.mem }

// Env returns the machine environment.
func (k *Machine) Env() hw.Env { return k.env }

// Clock returns the global time G in cycles.
func (k *Machine) Clock() uint64 { return k.clock }

// Steps returns the number of language-level steps taken.
func (k *Machine) Steps() int { return k.steps }

// Trace returns the observable assignment events so far.
func (k *Machine) Trace() events.Trace { return k.trace }

// Mitigations returns the completed mitigate records so far.
func (k *Machine) Mitigations() events.MitTrace { return k.mits }

// MitigationState exposes the Miss counters (for reporting).
func (k *Machine) MitigationState() *mitigation.State { return k.mit }

// Layout returns the machine's address layout.
func (k *Machine) Layout() *mem.Layout { return k.layout }

// Done reports whether execution has reached stop.
func (k *Machine) Done() bool { return len(k.stack) == 0 }

// Clone returns an independent copy of the machine, deep-copying
// memory, environment, mitigation state, and continuation stack.
func (k *Machine) Clone() *Machine {
	n := *k
	n.stack = append([]frame(nil), k.stack...)
	n.mem = k.mem.Clone()
	n.env = k.env.Clone()
	n.mit = k.mit.Clone()
	n.trace = append(events.Trace(nil), k.trace...)
	n.mits = append(events.MitTrace(nil), k.mits...)
	return &n
}

// top pops Seq frames (not a step) and resolves completed mitigate
// bodies (runtime bookkeeping, also not a language step) until the head
// is a labeled command; it returns nil when execution is complete.
func (k *Machine) top() ast.Cmd {
	for len(k.stack) > 0 {
		head := k.stack[len(k.stack)-1]
		switch h := head.(type) {
		case *ast.Seq:
			k.stack = k.stack[:len(k.stack)-1]
			k.stack = append(k.stack, frame(h.Second), frame(h.First))
		case *mitExit:
			k.stack = k.stack[:len(k.stack)-1]
			k.finishMitigation(h)
		case ast.Cmd:
			return h
		default:
			panic(fmt.Sprintf("full: unknown frame %T", head))
		}
	}
	return nil
}

// finishMitigation implements the update + sleep tail of Fig. 6's
// (S-MTGPRED): penalize the miss counter until the prediction covers
// the elapsed time, then idle until the prediction boundary. With
// mitigation disabled only the raw elapsed time is recorded — no
// penalty, no padding — which is how §8.2's prediction sampling
// measures body times.
func (k *Machine) finishMitigation(x *mitExit) {
	elapsed := k.clock - x.start
	if k.opts.DisableMitigation {
		k.mits = append(k.mits, events.MitRecord{
			ID: x.m.MitID, Duration: elapsed, Elapsed: elapsed, Start: x.start,
		})
		if k.opts.Metrics != nil {
			k.opts.Metrics.AddMitigation(false)
		}
		return
	}
	pred, missed := k.mit.Penalize(x.init, x.m.Level, x.m.MitID, elapsed)
	if pred > elapsed {
		k.clock = x.start + pred
	}
	k.mits = append(k.mits, events.MitRecord{
		ID:           x.m.MitID,
		Duration:     k.clock - x.start,
		Elapsed:      elapsed,
		Start:        x.start,
		Mispredicted: missed,
	})
	if k.opts.Metrics != nil {
		k.opts.Metrics.AddMitigation(missed)
		if pred > elapsed {
			k.opts.Metrics.AddPadding(pred - elapsed)
		}
	}
}

// access charges one machine-environment access under the current
// command's labels.
func (k *Machine) access(kind hw.AccessKind, addr uint64, lab *ast.Labels) uint64 {
	return k.env.Access(kind, addr, lab.RL, lab.WL)
}

// eval evaluates an expression, charging data-access and operator
// costs, and returns (value, cost). Evaluation order is left-to-right,
// matching core.Eval.
func (k *Machine) eval(e ast.Expr, lab *ast.Labels) (int64, uint64) {
	switch ex := e.(type) {
	case *ast.IntLit:
		return ex.Value, 0
	case *ast.Var:
		c := k.access(hw.Read, k.layout.Addr(ex.Name), lab)
		return k.mem.Get(ex.Name), c
	case *ast.Index:
		iv, ic := k.eval(ex.Idx, lab)
		wrapped := k.mem.WrapIndex(ex.Name, iv)
		c := k.access(hw.Read, k.layout.ElemAddr(ex.Name, wrapped), lab)
		return k.mem.GetEl(ex.Name, iv), ic + c
	case *ast.Unary:
		v, c := k.eval(ex.X, lab)
		// Reuse the core evaluator's operator semantics on a detached
		// literal to guarantee value agreement between semantics.
		switch ex.Op {
		case token.MINUS:
			return -v, c + k.opts.OpCost
		case token.NOT:
			if v == 0 {
				return 1, c + k.opts.OpCost
			}
			return 0, c + k.opts.OpCost
		}
	case *ast.Binary:
		a, ca := k.eval(ex.X, lab)
		b, cb := k.eval(ex.Y, lab)
		return core.EvalBinop(ex.Op, a, b), ca + cb + k.opts.OpCost
	}
	panic(fmt.Sprintf("full: unknown expression %T", e))
}

// Peek returns the next labeled command the machine will execute, or
// nil if execution is complete. Peeking resolves pending sequence
// decomposition and mitigation-exit bookkeeping (which belong to the
// previous step), so the clock may advance past mitigation padding.
func (k *Machine) Peek() ast.Cmd { return k.top() }

// Step performs one language-level step, returning false if execution
// had already stopped.
func (k *Machine) Step() bool {
	head := k.top()
	if head == nil {
		return false
	}
	k.steps++
	k.stack = k.stack[:len(k.stack)-1]

	lab := head.(ast.Labeled).Labels()
	cost := k.opts.BaseCost
	cost += k.access(hw.Fetch, k.layout.CodeAddr(head.ID()), lab)

	switch c := head.(type) {
	case *ast.Skip:
		// Fetch cost only.

	case *ast.Sleep:
		v, ec := k.eval(c.X, lab)
		cost += ec
		if v > 0 {
			cost += uint64(v) // Property 4: exactly max(n, 0) extra
		}

	case *ast.Assign:
		v, ec := k.eval(c.X, lab)
		cost += ec
		cost += k.access(hw.Write, k.layout.Addr(c.Name), lab)
		k.mem.Set(c.Name, v)
		k.clock += cost
		k.trace = append(k.trace, events.Event{Var: c.Name, Value: v, Time: k.clock})
		return true

	case *ast.Store:
		iv, ic := k.eval(c.Idx, lab)
		v, ec := k.eval(c.X, lab)
		cost += ic + ec
		wrapped := k.mem.WrapIndex(c.Name, iv)
		cost += k.access(hw.Write, k.layout.ElemAddr(c.Name, wrapped), lab)
		k.mem.SetEl(c.Name, wrapped, v)
		k.clock += cost
		k.trace = append(k.trace, events.Event{
			Var: fmt.Sprintf("%s[%d]", c.Name, wrapped), Value: v, Time: k.clock})
		return true

	case *ast.If:
		v, ec := k.eval(c.Cond, lab)
		cost += ec
		cost += k.env.Branch(k.layout.CodeAddr(c.ID()), v != 0, lab.RL, lab.WL)
		if v != 0 {
			k.stack = append(k.stack, frame(c.Then))
		} else {
			k.stack = append(k.stack, frame(c.Else))
		}

	case *ast.While:
		v, ec := k.eval(c.Cond, lab)
		cost += ec
		cost += k.env.Branch(k.layout.CodeAddr(c.ID()), v != 0, lab.RL, lab.WL)
		if v != 0 {
			k.stack = append(k.stack, frame(c), frame(c.Body))
		}

	case *ast.Mitigate:
		v, ec := k.eval(c.Init, lab)
		cost += ec
		k.clock += cost
		k.stack = append(k.stack, frame(&mitExit{m: c, start: k.clock, init: v}), frame(c.Body))
		return true

	default:
		panic(fmt.Sprintf("full: unknown command %T", head))
	}
	k.clock += cost
	return true
}

// Run executes to completion or until maxSteps language steps.
func (k *Machine) Run(maxSteps int) error {
	return k.RunBudget(context.Background(), Budget{MaxSteps: maxSteps})
}

// Budget bounds one RunBudget call. Zero fields are unlimited. It is
// an alias for the engine-shared budget.Budget; for this engine
// MaxSteps counts language-level steps.
type Budget = budget.Budget

// ctxCheckInterval is how many steps elapse between context polls in
// RunBudget. Polling is observational, so the interval affects only
// abort latency, never simulated behavior.
const ctxCheckInterval = 1024

// RunBudget executes to completion, a budget violation (ErrStepLimit /
// ErrCycleLimit), or context cancellation — in the last case it
// returns ctx.Err(), so callers can test errors.Is(err,
// context.DeadlineExceeded). The machine's instrumentation (Options.
// Metrics) is charged for the steps and cycles consumed, whether or
// not the run completes.
func (k *Machine) RunBudget(ctx context.Context, b Budget) (err error) {
	if k.opts.Metrics != nil {
		startSteps, startClock := k.steps, k.clock
		defer func() {
			k.opts.Metrics.AddSteps(uint64(k.steps - startSteps))
			k.opts.Metrics.AddCycles(k.clock - startClock)
		}()
	}
	nextPoll := k.steps + ctxCheckInterval
	for !k.Done() {
		if b.MaxSteps > 0 && k.steps >= b.MaxSteps {
			return fmt.Errorf("%w (%d steps)", ErrStepLimit, b.MaxSteps)
		}
		if b.MaxCycles > 0 && k.clock > b.MaxCycles {
			return fmt.Errorf("%w (%d cycles > %d)", ErrCycleLimit, k.clock, b.MaxCycles)
		}
		if ctx != nil && k.steps >= nextPoll {
			nextPoll = k.steps + ctxCheckInterval
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		k.Step()
	}
	// Drain any trailing mitExit frames (top() handles them; calling it
	// once more after the last command finishes the bookkeeping). The
	// drain may pad the clock past the cycle budget; that still counts.
	k.top()
	if b.MaxCycles > 0 && k.clock > b.MaxCycles {
		return fmt.Errorf("%w (%d cycles > %d)", ErrCycleLimit, k.clock, b.MaxCycles)
	}
	return nil
}

// Result bundles the observable outcome of a completed run.
type Result struct {
	Clock       uint64
	Steps       int
	Trace       events.Trace
	Mitigations events.MitTrace
	Stats       hw.Stats
}

// Execute is a convenience wrapper: build a machine, apply setup to its
// memory (e.g. to set secret inputs), run it, and return the result.
func Execute(prog *ast.Program, res *types.Result, env hw.Env, opts Options,
	setup func(*mem.Memory), maxSteps int) (*Result, error) {
	m, err := New(prog, res, env, opts)
	if err != nil {
		return nil, err
	}
	if setup != nil {
		setup(m.Memory())
	}
	if err := m.Run(maxSteps); err != nil {
		return nil, err
	}
	return &Result{
		Clock:       m.Clock(),
		Steps:       m.Steps(),
		Trace:       m.Trace(),
		Mitigations: m.Mitigations(),
		Stats:       env.Stats(),
	}, nil
}

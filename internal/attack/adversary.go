package attack

import (
	"context"
	"fmt"
	"math"

	"repro/internal/certify"
	"repro/internal/machine/hw"
)

// This file promotes the package's attackers into certify.Adversary
// implementations, so the microarchitectural channels — cache
// prime+probe and branch-prediction analysis — run inside the same
// certification harness as the pure timing battery. The measurement
// loop every attack needs (warm pass, then shuffled probe rounds)
// lives in Collect; tests and adversaries share it instead of each
// keeping its own copy.

// Collect runs the standard measurement protocol against a target: one
// warm pass over every secret whose observations are discarded
// (cold-cache and first-misprediction costs depend on the probe's
// position, not the secret), then rounds shuffled passes recording
// (secret, time) pairs in probe order. It returns the pairs plus the
// total probes spent, warm pass included.
func Collect(ctx context.Context, t certify.Target, rounds int, rng *certify.RNG) (secrets []int, times []uint64, probes int, err error) {
	n := t.Secrets()
	for s := 0; s < n; s++ {
		if _, err = t.Probe(ctx, s); err != nil {
			return nil, nil, probes, err
		}
		probes++
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for r := 0; r < rounds; r++ {
		rng.Shuffle(idx)
		for _, s := range idx {
			tm, perr := t.Probe(ctx, s)
			if perr != nil {
				return nil, nil, probes, perr
			}
			probes++
			secrets = append(secrets, s)
			times = append(times, tm)
		}
	}
	return secrets, times, probes, nil
}

// PrimeProbeAdversary is the §2.1 coresident cache attacker as a
// certify.Adversary: it builds an eviction set covering every L1 data
// set from the target's published geometry, primes the shared
// environment before each victim run, probes after, and estimates the
// mutual information between the secret and the eviction signature.
// The signature — WHICH lines the victim displaced — is a richer
// observable than response time, which is exactly why the partitioned
// and no-fill designs must silence it. Targets that are not
// coresident (the HTTP binding) are skipped via ErrNotApplicable.
type PrimeProbeAdversary struct {
	// Rounds is the number of recorded passes over the secret space;
	// default 2.
	Rounds int
}

// Name implements certify.Adversary.
func (a *PrimeProbeAdversary) Name() string { return "prime-probe" }

// Mount implements certify.Adversary.
func (a *PrimeProbeAdversary) Mount(ctx context.Context, t certify.Target, rng *certify.RNG) (certify.Attack, error) {
	c, ok := t.(certify.Coresident)
	if !ok {
		return certify.Attack{}, certify.ErrNotApplicable
	}
	env := c.SharedEnv()
	l1 := c.HWConfig().Data.L1
	var addrs []uint64
	for set := 0; set < l1.Sets; set++ {
		base := uint64(0x80000 + set*l1.BlockSize)
		addrs = append(addrs, ConflictAddrs(base, l1.Sets, l1.BlockSize, l1.Assoc)...)
	}
	rounds := a.Rounds
	if rounds == 0 {
		rounds = 2
	}
	n := t.Secrets()
	probes := 0
	for s := 0; s < n; s++ {
		if _, err := t.Probe(ctx, s); err != nil {
			return certify.Attack{}, err
		}
		probes++
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var secrets []int
	var sigs []uint64
	for r := 0; r < rounds; r++ {
		rng.Shuffle(idx)
		for _, s := range idx {
			var perr error
			res := PrimeProbe(env, addrs, func(hw.Env) {
				_, perr = t.Probe(ctx, s)
			})
			if perr != nil {
				return certify.Attack{}, perr
			}
			probes++
			secrets = append(secrets, s)
			sigs = append(sigs, signatureHash(res.Evicted()))
		}
	}
	mi := certify.EstimateMI(secrets, sigs, certify.EstimatorOptions{}, rng)
	return certify.Attack{
		Adversary: a.Name(),
		Probes:    probes,
		Bits:      mi.Bits,
		Upper:     mi.Upper,
		Detail: fmt.Sprintf("MI of %d-line eviction signatures over %d recorded probes",
			len(addrs), mi.N),
	}, nil
}

// signatureHash folds an eviction signature into one observation
// symbol (FNV-1a over the bits). Distinct signatures map to distinct
// symbols with overwhelming probability, which is all the MI estimator
// needs — it never interprets the value.
func signatureHash(sig []bool) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range sig {
		v := uint64(0)
		if b {
			v = 1
		}
		h = (h ^ v) * 1099511628211
	}
	return h
}

// BranchPairAdversary is the branch-prediction-analysis attacker
// (Acıiçmez et al., cited by the paper) as a certify.Adversary: it
// probes a chosen PAIR of secrets and estimates the mutual information
// between which-of-the-two and the response time — at most 1 bit by
// construction. Its teeth come from the pair the mounting test picks:
// in the RSA case study, two keys of EQUAL Hamming weight and equal
// bit length whose patterns train the square-and-multiply branch
// differently, so any measured bit is the predictor's doing, not the
// multiply count's.
type BranchPairAdversary struct {
	// A and B are the secret indices to distinguish; the zero value
	// selects the extremes (0, N−1).
	A, B int
	// Rounds is the number of recorded probes per secret; default 8.
	Rounds int
}

// Name implements certify.Adversary.
func (a *BranchPairAdversary) Name() string { return "branch-pair" }

// Mount implements certify.Adversary.
func (a *BranchPairAdversary) Mount(ctx context.Context, t certify.Target, rng *certify.RNG) (certify.Attack, error) {
	n := t.Secrets()
	pa, pb := a.A, a.B
	if pa == pb {
		pa, pb = 0, n-1
	}
	if pa < 0 || pa >= n || pb < 0 || pb >= n {
		return certify.Attack{}, fmt.Errorf("attack: branch pair (%d, %d) outside secret space [0, %d)", pa, pb, n)
	}
	rounds := a.Rounds
	if rounds == 0 {
		rounds = 8
	}
	probes := 0
	for _, s := range []int{pa, pb} {
		if _, err := t.Probe(ctx, s); err != nil {
			return certify.Attack{}, err
		}
		probes++
	}
	pair := []int{pa, pb}
	var labels []int
	var times []uint64
	for r := 0; r < rounds; r++ {
		rng.Shuffle(pair)
		for _, s := range pair {
			tm, err := t.Probe(ctx, s)
			if err != nil {
				return certify.Attack{}, err
			}
			probes++
			labels = append(labels, s)
			times = append(times, tm)
		}
	}
	mi := certify.EstimateMI(labels, times, certify.EstimatorOptions{}, rng)
	bits := math.Min(mi.Bits, 1)
	upper := math.Min(mi.Upper, 1)
	return certify.Attack{
		Adversary: a.Name(),
		Probes:    probes,
		Bits:      bits,
		Upper:     upper,
		Detail:    fmt.Sprintf("MI over secret pair (%d, %d), %d recorded probes", pa, pb, mi.N),
	}, nil
}

package attack

import (
	"math/bits"
	"testing"

	"repro/internal/apps/rsa"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

// Branch-prediction analysis (Acıiçmez et al., cited by the paper):
// even among keys of EQUAL Hamming weight — indistinguishable to the
// cache/multiply-count channel — the branch predictor leaks the key's
// bit PATTERN: clustered bits train the square-and-multiply branch and
// run fast, alternating bits mispredict every iteration and run slow.
func TestBranchPredictionAnalysisUnmitigated(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 2, Modulus: 2147483647}, rsa.LanguageLevel, lat)
	if err != nil {
		t.Fatal(err)
	}
	msg := rsa.Message(1, 5)
	timeOf := func(key int64, env hw.Env, mitigate bool, pred int64) uint64 {
		res, err := app.Run(env, key, msg, pred, mitigate)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := rsa.ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}

	clustered := int64(0x00000000FFFFFFFF)   // 32 bits, one run
	alternating := int64(0x5555555555555555) // 32 bits, maximally alternating
	if bits.OnesCount64(uint64(clustered)) != bits.OnesCount64(uint64(alternating)) {
		t.Fatal("test keys must have equal weight")
	}

	// With the predictor, the patterns separate...
	cfg := hw.Table1Config()
	tClustered := timeOf(clustered, hw.NewUnpartitioned(lat, cfg), false, 1)
	tAlternating := timeOf(alternating, hw.NewUnpartitioned(lat, cfg), false, 1)
	if tAlternating <= tClustered {
		t.Errorf("alternating key (%d) should be slower than clustered (%d): predictor channel",
			tAlternating, tClustered)
	}

	// ...and the separation is the predictor's doing: with it disabled,
	// the bit-length difference dominates instead (alternating's top
	// bit is lower, so it does FEWER iterations — compare exactly).
	cfg.BP.Size = 0
	nClustered := timeOf(clustered, hw.NewUnpartitioned(lat, cfg), false, 1)
	nAlternating := timeOf(alternating, hw.NewUnpartitioned(lat, cfg), false, 1)
	withBPGap := int64(tAlternating) - int64(tClustered)
	withoutBPGap := int64(nAlternating) - int64(nClustered)
	if withBPGap <= withoutBPGap {
		t.Errorf("predictor should add to the gap: %d (with) vs %d (without)",
			withBPGap, withoutBPGap)
	}
}

// Mitigation closes the branch-prediction channel along with the rest:
// mitigated decryption time is identical for both patterns.
func TestBranchPredictionChannelMitigated(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 2, Modulus: 2147483647}, rsa.LanguageLevel, lat)
	if err != nil {
		t.Fatal(err)
	}
	msg := rsa.Message(1, 5)
	pred, err := app.SamplePrediction(func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) },
		[]int64{0x5555555555555555}, [][]int64{msg})
	if err != nil {
		t.Fatal(err)
	}
	timeOf := func(key int64) uint64 {
		res, err := app.Run(hw.NewPartitioned(lat, hw.Table1Config()), key, msg, pred, true)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := rsa.ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	if a, b := timeOf(0x00000000FFFFFFFF), timeOf(0x5555555555555555); a != b {
		t.Errorf("mitigated times differ: %d vs %d", a, b)
	}
}

package attack

import (
	"context"
	"testing"

	"repro/internal/certify"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// arrayReadWorkload is §2.1's indirect-dependency victim as a
// certification workload: one secret-indexed high array read, whose
// cache fill lands at a secret-dependent set on shared hardware.
func arrayReadWorkload(t *testing.T, n int) *certify.Workload {
	t.Helper()
	prog, err := parser.Parse(`
var h1 : H;
var h2 : H;
array m[16] : H;
mitigate (1, H) [L,L] {
    h2 := m[h1] [H,H];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.TwoPoint()
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	return &certify.Workload{
		Name: "array-read",
		Prog: prog,
		Res:  res,
		Lat:  lat,
		N:    n,
		Set: func(secret int, m *mem.Memory) {
			m.Set("h1", int64(secret))
		},
		HW: hw.TinyConfig,
	}
}

// TestPrimeProbeAdversary mounts the promoted cache attacker through
// the certification harness: on commodity (unpartitioned) hardware the
// eviction signature carries the secret; the paper's partitioned
// design silences it completely.
func TestPrimeProbeAdversary(t *testing.T) {
	ctx := context.Background()
	w := arrayReadWorkload(t, 8)

	unmit, err := certify.NewEngineTarget(w, certify.TargetConfig{Hardware: "unpartitioned", Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	att, err := (&PrimeProbeAdversary{}).Mount(ctx, unmit, certify.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if att.Bits < 1 {
		t.Errorf("unpartitioned eviction signature should carry ≥ 1 bit, measured %.3f", att.Bits)
	}

	part, err := certify.NewEngineTarget(w, certify.TargetConfig{Hardware: "partitioned", Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	att, err = (&PrimeProbeAdversary{}).Mount(ctx, part, certify.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if att.Bits != 0 {
		t.Errorf("partitioned hardware should silence the cache channel, measured %.3f bits", att.Bits)
	}
}

// TestPrimeProbeNotApplicableRemote: a remote (HTTP) target shares no
// hardware with the adversary, so the cache attacker skips it and
// Certify falls back to the timing battery.
func TestPrimeProbeNotApplicableRemote(t *testing.T) {
	w, err := certify.SleepWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := certify.NewHTTPTarget(w, certify.TargetConfig{Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	_, err = (&PrimeProbeAdversary{}).Mount(context.Background(), tgt, certify.NewRNG(1))
	if err != certify.ErrNotApplicable {
		t.Fatalf("want ErrNotApplicable, got %v", err)
	}
	res, err := certify.Certify(context.Background(), tgt, certify.Options{
		Seed:        1,
		Adversaries: append(certify.DefaultAdversaries(), &PrimeProbeAdversary{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attacks) != 3 {
		t.Errorf("the skipped adversary should not appear in the report: %d attacks", len(res.Attacks))
	}
}

// TestCertifyWithMicroarchAdversaries runs the full battery PLUS both
// promoted attackers against the mitigated array-read workload on
// partitioned hardware — the complete threat model of the paper, and
// it still certifies.
func TestCertifyWithMicroarchAdversaries(t *testing.T) {
	w := arrayReadWorkload(t, 8)
	tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{Hardware: "partitioned", Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := certify.Certify(context.Background(), tgt, certify.Options{
		Seed:        9,
		Adversaries: append(certify.DefaultAdversaries(), &PrimeProbeAdversary{}, &BranchPairAdversary{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attacks) != 5 {
		t.Fatalf("all 5 adversaries should mount on a coresident target, got %d", len(res.Attacks))
	}
	if !res.Certified {
		t.Errorf("mitigated partitioned array-read should survive the full battery: upper %.3f vs reported %.3f",
			res.UpperBits, res.ReportedBits)
	}
}

// equalWeightKeys returns two RSA keys of equal Hamming weight (32)
// and equal bit length (63): indistinguishable to the multiply-count
// and iteration-count channels, separable only by how their patterns
// train the branch predictor — clustered bits predict well,
// alternating bits mispredict every iteration.
func equalWeightKeys() (clustered, alternating int64) {
	return 0x7FFFFFFF80000000, 0x5555555555555555
}

// TestBranchPairAdversaryPredictorChannel isolates the predictor as
// the channel: with the branch predictor modeled, the promoted
// attacker separates the equal-weight pair; with the predictor
// disabled (and nothing else changed) the pair is indistinguishable.
func TestBranchPairAdversaryPredictorChannel(t *testing.T) {
	ctx := context.Background()
	clustered, alternating := equalWeightKeys()
	w, err := certify.RSAWorkload([]int64{clustered, alternating})
	if err != nil {
		t.Fatal(err)
	}

	tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{Hardware: "unpartitioned", Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	att, err := (&BranchPairAdversary{}).Mount(ctx, tgt, certify.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if att.Bits != 1 {
		t.Errorf("predictor should fully separate the equal-weight pair: %.3f bits", att.Bits)
	}

	noBP := *w
	noBP.HW = func() hw.Config {
		cfg := hw.Table1Config()
		cfg.BP.Size = 0
		return cfg
	}
	tgt, err = certify.NewEngineTarget(&noBP, certify.TargetConfig{Hardware: "unpartitioned", Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	att, err = (&BranchPairAdversary{}).Mount(ctx, tgt, certify.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if att.Bits != 0 {
		t.Errorf("without the predictor the equal-weight pair must be indistinguishable: %.3f bits", att.Bits)
	}
}

// TestBranchPairAdversaryMitigated: mitigation closes the predictor
// channel along with the rest, and the configuration certifies under
// the extended battery.
func TestBranchPairAdversaryMitigated(t *testing.T) {
	clustered, alternating := equalWeightKeys()
	w, err := certify.RSAWorkload([]int64{clustered, alternating})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{Hardware: "partitioned", Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := certify.Certify(context.Background(), tgt, certify.Options{
		Seed:        4,
		Adversaries: append(certify.DefaultAdversaries(), &BranchPairAdversary{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Errorf("mitigated RSA should certify against the branch attacker: upper %.3f vs reported %.3f",
			res.UpperBits, res.ReportedBits)
	}
	for _, a := range res.Attacks {
		if a.Adversary == "branch-pair" && a.Bits != 0 {
			t.Errorf("mitigated branch channel should be silent, measured %.3f bits", a.Bits)
		}
	}
}

// TestBranchPairAdversaryBadPair: indices outside the secret space are
// a mount error, not a silent skip.
func TestBranchPairAdversaryBadPair(t *testing.T) {
	w, err := certify.SleepWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&BranchPairAdversary{A: 0, B: 99}).Mount(context.Background(), tgt, certify.NewRNG(1)); err == nil {
		t.Error("out-of-range pair should error")
	}
}

// TestCollect: the shared measurement loop discards exactly one warm
// pass, records rounds·N pairs, and is deterministic in the rng.
func TestCollect(t *testing.T) {
	w, err := certify.SleepWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	secrets, times, probes, err := Collect(context.Background(), tgt, 3, certify.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(secrets) != 12 || len(times) != 12 {
		t.Fatalf("want 3 rounds × 4 secrets = 12 pairs, got %d/%d", len(secrets), len(times))
	}
	if probes != 16 {
		t.Errorf("probes = %d, want 16 (12 recorded + 4 warm)", probes)
	}
	// The unmitigated sleep channel is exact: time determines secret.
	bySecret := map[int]uint64{}
	for i, s := range secrets {
		if prev, ok := bySecret[s]; ok && prev != times[i] {
			t.Fatalf("secret %d timed inconsistently: %d vs %d", s, prev, times[i])
		}
		bySecret[s] = times[i]
	}
	if len(bySecret) != 4 {
		t.Errorf("all 4 secrets should appear, got %d", len(bySecret))
	}
}

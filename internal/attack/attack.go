// Package attack implements the adversaries of the paper's threat
// model as reusable analyses over observed timings: a two-cluster
// threshold classifier (the Bortz–Boneh username prober of §8.3), a
// linear timing regression (Kocher-style key-weight estimation for
// §8.4), and an exact empirical mutual-information estimator that
// quantifies how many bits the observed timings carry about the
// secrets. The tests use these to show the attacks succeed against
// unmitigated executions and collapse against mitigated ones —
// the operational counterpart of the leakage package's trace counting.
package attack

import (
	"fmt"
	"math"
	"sort"
)

// BestThreshold finds the split of a 1-D sample that maximizes the
// between-cluster separation (the midpoint of the largest gap between
// consecutive sorted values). It returns the threshold and the gap
// width; a gap of zero means the sample is a single cluster (all values
// equal or uniformly spread).
func BestThreshold(times []uint64) (threshold uint64, gap uint64) {
	if len(times) < 2 {
		return 0, 0
	}
	sorted := append([]uint64(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bestGap := uint64(0)
	best := sorted[0]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > bestGap {
			bestGap = g
			best = sorted[i-1] + g/2
		}
	}
	return best, bestGap
}

// Classify labels each observation as above-threshold (true) or not.
func Classify(times []uint64, threshold uint64) []bool {
	out := make([]bool, len(times))
	for i, t := range times {
		out[i] = t > threshold
	}
	return out
}

// Accuracy scores a classification against ground truth, returning the
// fraction correct under whichever polarity (above = positive or
// above = negative) fits better — the attacker does not know which
// cluster is which a priori.
func Accuracy(guess, truth []bool) float64 {
	if len(guess) != len(truth) || len(guess) == 0 {
		return 0
	}
	same, diff := 0, 0
	for i := range guess {
		if guess[i] == truth[i] {
			same++
		} else {
			diff++
		}
	}
	best := same
	if diff > best {
		best = diff
	}
	return float64(best) / float64(len(guess))
}

// ProbeResult summarizes a username-probing attack.
type ProbeResult struct {
	Threshold uint64
	Gap       uint64
	Accuracy  float64
}

// ProbeUsernames runs the full §8.3 attack pipeline on observed login
// times and ground-truth validity.
func ProbeUsernames(times []uint64, valid []bool) (ProbeResult, error) {
	if len(times) != len(valid) {
		return ProbeResult{}, fmt.Errorf("attack: %d times but %d labels", len(times), len(valid))
	}
	th, gap := BestThreshold(times)
	return ProbeResult{
		Threshold: th,
		Gap:       gap,
		Accuracy:  Accuracy(Classify(times, th), valid),
	}, nil
}

// ---------------------------------------------------------------------------
// Linear timing regression (key-weight estimation)

// LinearFit is a least-squares line fit t ≈ Intercept + Slope·x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLinear performs ordinary least squares of y against x. It returns
// an error if fewer than two distinct x values are given.
func FitLinear(x []float64, y []uint64) (LinearFit, error) {
	if len(x) != len(y) || len(x) < 2 {
		return LinearFit{}, fmt.Errorf("attack: need ≥2 paired samples, got %d/%d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += float64(y[i])
		sxx += x[i] * x[i]
		sxy += x[i] * float64(y[i])
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("attack: x values are all equal")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R².
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := intercept + slope*x[i]
		ssTot += (float64(y[i]) - meanY) * (float64(y[i]) - meanY)
		ssRes += (float64(y[i]) - pred) * (float64(y[i]) - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2}, nil
}

// Predict evaluates the fit at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Invert estimates the x that would produce observation t. It returns
// an error when the slope is (near) zero — the defining signature of a
// successfully mitigated system, where time carries no information
// about x.
func (f LinearFit) Invert(t uint64) (float64, error) {
	if math.Abs(f.Slope) < 1e-9 {
		return 0, fmt.Errorf("attack: timing is flat; nothing to invert")
	}
	return (float64(t) - f.Intercept) / f.Slope, nil
}

// ---------------------------------------------------------------------------
// Empirical mutual information

// MutualInformationBits computes the exact mutual information (in bits)
// of the empirical joint distribution of (secret, time) pairs. For
// deterministic timing this equals the entropy of the time marginal,
// which is also what Definition 1's log-count measure bounds; unlike
// the count it weights observations by frequency.
func MutualInformationBits(secrets []int64, times []uint64) float64 {
	if len(secrets) != len(times) || len(secrets) == 0 {
		return 0
	}
	n := float64(len(secrets))
	joint := make(map[[2]uint64]float64)
	ms := make(map[uint64]float64)
	mt := make(map[uint64]float64)
	for i := range secrets {
		s := uint64(secrets[i])
		t := times[i]
		joint[[2]uint64{s, t}]++
		ms[s]++
		mt[t]++
	}
	mi := 0.0
	for k, c := range joint {
		pxy := c / n
		px := ms[k[0]] / n
		py := mt[k[1]] / n
		mi += pxy * math.Log2(pxy/(px*py))
	}
	if mi < 0 {
		mi = 0 // numerical noise
	}
	return mi
}

// TimeEntropyBits is the Shannon entropy of the observed time marginal
// — an upper bound on what any function of time can reveal.
func TimeEntropyBits(times []uint64) float64 {
	if len(times) == 0 {
		return 0
	}
	n := float64(len(times))
	counts := make(map[uint64]float64)
	for _, t := range times {
		counts[t]++
	}
	h := 0.0
	for _, c := range counts {
		p := c / n
		h -= p * math.Log2(p)
	}
	return h
}

package attack

import (
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// victimProgram is §2.1's indirect-dependency example: a single
// high-indexed array read. On commodity hardware its cache fill lands
// at a secret-dependent address in the shared cache.
const victimProgram = `
var h1 : H;
var h2 : H;
array m[16] : H;
h2 := m[h1] [H,H];
`

// runVictim executes the victim with secret h1 on the SHARED machine
// environment (the coresident threat model).
func runVictim(t *testing.T, env hw.Env, lat lattice.Lattice, h1 int64) {
	t.Helper()
	prog, err := parser.Parse(victimProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := full.New(prog, res, env, full.Options{
		// Use a data layout far from the attacker's probe range only in
		// page terms; cache sets still collide by construction.
		Layout: mem.LayoutConfig{DataBase: 0x10000},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Memory().Set("h1", h1)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
}

// primeAddrs fills every set of the Tiny L1D (4 sets × 2 ways, 16-byte
// blocks) with attacker lines.
func primeAddrs() []uint64 {
	cfg := hw.TinyConfig().Data.L1
	var out []uint64
	for set := 0; set < cfg.Sets; set++ {
		base := uint64(0x80000 + set*cfg.BlockSize)
		out = append(out, ConflictAddrs(base, cfg.Sets, cfg.BlockSize, cfg.Assoc)...)
	}
	return out
}

func TestConflictAddrsSameSet(t *testing.T) {
	cfg := hw.TinyConfig().Data.L1
	addrs := ConflictAddrs(0x1000, cfg.Sets, cfg.BlockSize, 4)
	set := func(a uint64) uint64 { return (a / uint64(cfg.BlockSize)) % uint64(cfg.Sets) }
	for _, a := range addrs[1:] {
		if set(a) != set(addrs[0]) {
			t.Fatalf("addresses not set-aligned: %#x vs %#x", a, addrs[0])
		}
	}
	if len(addrs) != 4 {
		t.Error("count")
	}
}

// TestPrimeProbeUnpartitionedLeaks reproduces the §2.1 attack: on
// commodity (unpartitioned) hardware, the victim's single high read
// evicts an attacker line whose cache set depends on the secret index.
func TestPrimeProbeUnpartitionedLeaks(t *testing.T) {
	lat := lattice.TwoPoint()
	signature := func(h1 int64) []bool {
		env := hw.NewUnpartitioned(lat, hw.TinyConfig())
		r := PrimeProbe(env, primeAddrs(), func(shared hw.Env) {
			runVictim(t, shared, lat, h1)
		})
		return r.Evicted()
	}
	// Distinct secrets map to distinct cache sets (elements are 8 bytes,
	// blocks 16 bytes: indices 0 and 4 are two sets apart).
	s0 := signature(0)
	s4 := signature(4)
	any0, any4, differ := false, false, false
	for i := range s0 {
		if s0[i] {
			any0 = true
		}
		if s4[i] {
			any4 = true
		}
		if s0[i] != s4[i] {
			differ = true
		}
	}
	if !any0 || !any4 {
		t.Fatal("victim access should evict at least one primed line on shared cache")
	}
	if !differ {
		t.Error("eviction signature should depend on the secret index")
	}
}

// TestPrimeProbePartitionedSilent shows the paper's fix: with the §4.3
// partitioned design, the victim's fill goes to the confidential
// partition and the attacker's probes see nothing at all.
func TestPrimeProbePartitionedSilent(t *testing.T) {
	lat := lattice.TwoPoint()
	for _, h1 := range []int64{0, 4, 9} {
		env := hw.NewPartitioned(lat, hw.TinyConfig())
		r := PrimeProbe(env, primeAddrs(), func(shared hw.Env) {
			runVictim(t, shared, lat, h1)
		})
		if n := r.EvictedCount(); n != 0 {
			t.Errorf("h1=%d: partitioned hardware leaked %d evictions", h1, n)
		}
	}
}

// TestPrimeProbeNoFillSilent: the §4.2 no-fill design also resists —
// high-context accesses never fill the shared cache.
func TestPrimeProbeNoFillSilent(t *testing.T) {
	lat := lattice.TwoPoint()
	env := hw.NewNoFill(lat, hw.TinyConfig())
	r := PrimeProbe(env, primeAddrs(), func(shared hw.Env) {
		runVictim(t, shared, lat, 7)
	})
	if n := r.EvictedCount(); n != 0 {
		t.Errorf("no-fill hardware leaked %d evictions", n)
	}
}

// TestPrimeProbeFlushSignalsButUniformly: flush-on-high wipes ALL
// primed lines regardless of the secret — the attacker sees a massive
// but secret-independent signal (every probe misses for every secret).
func TestPrimeProbeFlushSignalsButUniformly(t *testing.T) {
	lat := lattice.TwoPoint()
	signature := func(h1 int64) []bool {
		env := hw.NewFlushOnHigh(lat, hw.TinyConfig())
		r := PrimeProbe(env, primeAddrs(), func(shared hw.Env) {
			runVictim(t, shared, lat, h1)
		})
		return r.Evicted()
	}
	s0 := signature(0)
	s9 := signature(9)
	for i := range s0 {
		if s0[i] != s9[i] {
			t.Fatalf("flush design signature depends on secret at line %d", i)
		}
		if !s0[i] {
			t.Fatalf("flush design should evict every primed line (index %d survived)", i)
		}
	}
}

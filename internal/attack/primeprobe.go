package attack

import (
	"repro/internal/machine/hw"
)

// Prime+probe (§2.1's coresident adversary): the attacker controls a
// concurrent thread that can fill public cache sets with its own lines
// (prime), let the victim run, and then time re-accesses to those lines
// (probe). Lines the victim's secret-dependent accesses evicted now
// miss, so probe times image the victim's access pattern — unless the
// hardware confines victim fills to confidential partitions.

// PrimeProbeResult records one prime+probe round.
type PrimeProbeResult struct {
	// Addrs are the primed addresses, in prime order.
	Addrs []uint64
	// PrimeTimes and ProbeTimes are per-address access costs before and
	// after the victim ran.
	PrimeTimes []uint64
	ProbeTimes []uint64
}

// Evicted reports which primed lines became slower after the victim ran
// — the attacker's signal.
func (r PrimeProbeResult) Evicted() []bool {
	out := make([]bool, len(r.Addrs))
	for i := range r.Addrs {
		out[i] = r.ProbeTimes[i] > r.PrimeTimes[i]
	}
	return out
}

// EvictedCount is the number of signaled lines.
func (r PrimeProbeResult) EvictedCount() int {
	n := 0
	for _, e := range r.Evicted() {
		if e {
			n++
		}
	}
	return n
}

// PrimeProbe runs one round: prime the given public addresses on env,
// run the victim (which shares the environment, modeling coresidency),
// then probe. The adversary is public: all of its accesses carry the
// bottom label on both sides, exactly what a coresident unprivileged
// thread can do.
func PrimeProbe(env hw.Env, addrs []uint64, victim func(hw.Env)) PrimeProbeResult {
	lat := env.Lattice()
	bot := lat.Bot()
	res := PrimeProbeResult{
		Addrs:      append([]uint64(nil), addrs...),
		PrimeTimes: make([]uint64, len(addrs)),
		ProbeTimes: make([]uint64, len(addrs)),
	}
	// Prime twice: the first pass loads, the second records the warm
	// (hit) baseline.
	for _, a := range addrs {
		env.Access(hw.Read, a, bot, bot)
	}
	for i, a := range addrs {
		res.PrimeTimes[i] = env.Access(hw.Read, a, bot, bot)
	}
	victim(env)
	for i, a := range addrs {
		res.ProbeTimes[i] = env.Access(hw.Read, a, bot, bot)
	}
	return res
}

// ConflictAddrs returns n distinct addresses that all map to the same
// set of a cache with the given geometry — the attacker's eviction set
// for one cache set. Addresses start at base and are spaced one full
// cache stride apart.
func ConflictAddrs(base uint64, sets, blockSize, n int) []uint64 {
	stride := uint64(sets * blockSize)
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*stride
	}
	return out
}

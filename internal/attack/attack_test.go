package attack

import (
	"context"
	"math"
	"math/bits"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/certify"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
)

func TestBestThreshold(t *testing.T) {
	th, gap := BestThreshold([]uint64{10, 11, 12, 100, 101})
	if gap != 88 {
		t.Errorf("gap = %d, want 88", gap)
	}
	if th <= 12 || th >= 100 {
		t.Errorf("threshold %d not in the gap", th)
	}
	if _, g := BestThreshold([]uint64{5, 5, 5}); g != 0 {
		t.Error("constant sample should have zero gap")
	}
	if _, g := BestThreshold([]uint64{7}); g != 0 {
		t.Error("single sample")
	}
	if _, g := BestThreshold(nil); g != 0 {
		t.Error("empty sample")
	}
}

func TestClassifyAndAccuracy(t *testing.T) {
	times := []uint64{1, 2, 100, 101}
	truth := []bool{false, false, true, true}
	th, _ := BestThreshold(times)
	if acc := Accuracy(Classify(times, th), truth); acc != 1.0 {
		t.Errorf("accuracy = %f", acc)
	}
	// Inverted polarity also scores 1.0 (the attacker flips labels).
	inverted := []bool{true, true, false, false}
	if acc := Accuracy(Classify(times, th), inverted); acc != 1.0 {
		t.Errorf("inverted accuracy = %f", acc)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
	if Accuracy([]bool{true}, []bool{true, false}) != 0 {
		t.Error("length mismatch")
	}
}

func TestProbeUsernamesLengthMismatch(t *testing.T) {
	if _, err := ProbeUsernames([]uint64{1}, []bool{true, false}); err == nil {
		t.Error("expected error")
	}
}

func TestFitLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []uint64{12, 14, 16, 18} // t = 10 + 2x
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-10) > 1e-9 {
		t.Errorf("fit = %+v", f)
	}
	if f.R2 < 0.999 {
		t.Errorf("R2 = %f", f.R2)
	}
	if got := f.Predict(10); math.Abs(got-30) > 1e-9 {
		t.Errorf("Predict(10) = %f", got)
	}
	inv, err := f.Invert(20)
	if err != nil || math.Abs(inv-5) > 1e-9 {
		t.Errorf("Invert(20) = %f, %v", inv, err)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []uint64{2}); err == nil {
		t.Error("too few samples")
	}
	if _, err := FitLinear([]float64{3, 3, 3}, []uint64{1, 2, 3}); err == nil {
		t.Error("constant x")
	}
	flat, err := FitLinear([]float64{1, 2, 3}, []uint64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Invert(7); err == nil {
		t.Error("flat fit should refuse to invert")
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfect 1-bit channel.
	secrets := []int64{0, 0, 1, 1}
	times := []uint64{10, 10, 20, 20}
	if mi := MutualInformationBits(secrets, times); math.Abs(mi-1) > 1e-9 {
		t.Errorf("MI = %f, want 1", mi)
	}
	// Constant time: zero information.
	if mi := MutualInformationBits(secrets, []uint64{5, 5, 5, 5}); mi != 0 {
		t.Errorf("MI = %f, want 0", mi)
	}
	// Independent: zero.
	if mi := MutualInformationBits([]int64{0, 1, 0, 1}, []uint64{3, 3, 9, 9}); mi != 0 {
		t.Errorf("independent MI = %f", mi)
	}
	if MutualInformationBits(nil, nil) != 0 {
		t.Error("empty MI")
	}
	if MutualInformationBits([]int64{1}, []uint64{1, 2}) != 0 {
		t.Error("length mismatch MI")
	}
}

func TestTimeEntropy(t *testing.T) {
	if h := TimeEntropyBits([]uint64{1, 2, 3, 4}); math.Abs(h-2) > 1e-9 {
		t.Errorf("H = %f, want 2", h)
	}
	if h := TimeEntropyBits([]uint64{9, 9}); h != 0 {
		t.Errorf("H = %f, want 0", h)
	}
	if TimeEntropyBits(nil) != 0 {
		t.Error("empty entropy")
	}
}

// ---------------------------------------------------------------------------
// End-to-end attacks against the case studies, measured through the
// certification harness: each test wraps its case study as a
// certify.Workload (the "secret" indexes what the attacker varies) and
// drives probes through the shared Collect loop instead of a private
// one.

// timesBySecret runs one recorded Collect round and indexes the times
// by secret — the layout the classical analyses want.
func timesBySecret(t *testing.T, tgt certify.Target, seed int64) []uint64 {
	t.Helper()
	secrets, times, _, err := Collect(context.Background(), tgt, 1, certify.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, tgt.Secrets())
	for i, s := range secrets {
		out[s] = times[i]
	}
	return out
}

func TestUsernameProbingEndToEnd(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 24, WorkFactor: 64, WorkTableSize: 128}, lat)
	if err != nil {
		t.Fatal(err)
	}
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }
	secretCreds := login.MakeCredentials(9)
	probes := login.MakeCredentials(18)
	p1, p2, err := app.SamplePredictions(newEnv, secretCreds, []login.Attempt{
		{User: secretCreds[8].User, Pass: "wrong"},
		{User: "ghost", Pass: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The Bortz–Boneh prober varies the USERNAME: secret index i means
	// "probe username i", the first 9 of which exist in the table.
	w := &certify.Workload{
		Name: "login-probe", Prog: app.Prog, Res: app.Res, Lat: lat, N: len(probes),
		Set: func(i int, m *mem.Memory) {
			app.Setup(m, secretCreds, login.Attempt{User: probes[i].User, Pass: "guess"}, p1, p2)
		},
	}
	truth := make([]bool, len(probes))
	for i := range truth {
		truth[i] = i < len(secretCreds)
	}

	unmit, err := certify.NewEngineTarget(w, certify.TargetConfig{Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProbeUsernames(timesBySecret(t, unmit, 1), truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Errorf("unmitigated probe accuracy = %f, want 1.0", res.Accuracy)
	}

	mit, err := certify.NewEngineTarget(w, certify.TargetConfig{Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	mitRes, err := ProbeUsernames(timesBySecret(t, mit, 1), truth)
	if err != nil {
		t.Fatal(err)
	}
	if mitRes.Gap != 0 {
		t.Errorf("mitigated timings should be constant; gap = %d", mitRes.Gap)
	}
	// With constant times, accuracy collapses to the base rate of the
	// majority class (9/18 here → 0.5).
	if mitRes.Accuracy > 0.51 {
		t.Errorf("mitigated probe accuracy = %f; should be chance", mitRes.Accuracy)
	}
}

func TestRSAWeightRecoveryEndToEnd(t *testing.T) {
	// Offline calibration with chosen keys of the same bit length,
	// plus the victim as the last secret index.
	calKeys := []int64{
		0x4000000000000001, 0x400000FF000000FF, 0x4FFF0FFF0FFF0FFF, 0x7FFFFFFFFFFFFFFF,
	}
	victim := int64(0x5A5A5A5A5A5A5A5B)
	w, err := certify.RSAWorkload(append(append([]int64(nil), calKeys...), victim))
	if err != nil {
		t.Fatal(err)
	}
	// Disable the branch predictor for this analysis: the regression
	// models time as linear in key WEIGHT, which holds for the cache
	// model but not under a trained predictor (alternating-bit keys
	// mispredict every iteration — the separate signal the promoted
	// BranchPairAdversary exploits instead).
	w.HW = func() hw.Config {
		cfg := hw.Table1Config()
		cfg.BP.Size = 0
		return cfg
	}

	unmit, err := certify.NewEngineTarget(w, certify.TargetConfig{Mitigated: false})
	if err != nil {
		t.Fatal(err)
	}
	times := timesBySecret(t, unmit, 1)
	var xs []float64
	for _, k := range calKeys {
		xs = append(xs, float64(bits.OnesCount64(uint64(k))))
	}
	fit, err := FitLinear(xs, times[:len(calKeys)])
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("timing should be near-linear in weight; R2 = %f", fit.R2)
	}

	// Attack the victim key: recover its Hamming weight from one timing.
	wTrue := bits.OnesCount64(uint64(victim))
	wEst, err := fit.Invert(times[len(calKeys)])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wEst-float64(wTrue)) > 1.0 {
		t.Errorf("recovered weight %.1f, true %d", wEst, wTrue)
	}

	// Mitigated: the same attack finds a flat line and cannot invert.
	mit, err := certify.NewEngineTarget(w, certify.TargetConfig{Mitigated: true})
	if err != nil {
		t.Fatal(err)
	}
	mitTimes := timesBySecret(t, mit, 1)
	mitFit, err := FitLinear(xs, mitTimes[:len(calKeys)])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mitFit.Invert(mitTimes[len(calKeys)]); err == nil {
		t.Error("mitigated timing should be uninvertible (flat)")
	}
}

func TestMutualInformationOnMitigatedRSA(t *testing.T) {
	w, err := certify.RSAWorkload(nil)
	if err != nil {
		t.Fatal(err)
	}
	mi := func(mitigated bool) float64 {
		tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{Mitigated: mitigated})
		if err != nil {
			t.Fatal(err)
		}
		times := timesBySecret(t, tgt, 3)
		secrets := make([]int64, len(times))
		for i := range secrets {
			secrets[i] = int64(i)
		}
		return MutualInformationBits(secrets, times)
	}
	if miU := mi(false); miU < 1.5 {
		t.Errorf("unmitigated MI = %f bits; attack should extract >1.5", miU)
	}
	if miM := mi(true); miM != 0 {
		t.Errorf("mitigated MI = %f bits, want 0", miM)
	}
}

package attack

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

func TestBestThreshold(t *testing.T) {
	th, gap := BestThreshold([]uint64{10, 11, 12, 100, 101})
	if gap != 88 {
		t.Errorf("gap = %d, want 88", gap)
	}
	if th <= 12 || th >= 100 {
		t.Errorf("threshold %d not in the gap", th)
	}
	if _, g := BestThreshold([]uint64{5, 5, 5}); g != 0 {
		t.Error("constant sample should have zero gap")
	}
	if _, g := BestThreshold([]uint64{7}); g != 0 {
		t.Error("single sample")
	}
	if _, g := BestThreshold(nil); g != 0 {
		t.Error("empty sample")
	}
}

func TestClassifyAndAccuracy(t *testing.T) {
	times := []uint64{1, 2, 100, 101}
	truth := []bool{false, false, true, true}
	th, _ := BestThreshold(times)
	if acc := Accuracy(Classify(times, th), truth); acc != 1.0 {
		t.Errorf("accuracy = %f", acc)
	}
	// Inverted polarity also scores 1.0 (the attacker flips labels).
	inverted := []bool{true, true, false, false}
	if acc := Accuracy(Classify(times, th), inverted); acc != 1.0 {
		t.Errorf("inverted accuracy = %f", acc)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
	if Accuracy([]bool{true}, []bool{true, false}) != 0 {
		t.Error("length mismatch")
	}
}

func TestProbeUsernamesLengthMismatch(t *testing.T) {
	if _, err := ProbeUsernames([]uint64{1}, []bool{true, false}); err == nil {
		t.Error("expected error")
	}
}

func TestFitLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []uint64{12, 14, 16, 18} // t = 10 + 2x
	f, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-10) > 1e-9 {
		t.Errorf("fit = %+v", f)
	}
	if f.R2 < 0.999 {
		t.Errorf("R2 = %f", f.R2)
	}
	if got := f.Predict(10); math.Abs(got-30) > 1e-9 {
		t.Errorf("Predict(10) = %f", got)
	}
	inv, err := f.Invert(20)
	if err != nil || math.Abs(inv-5) > 1e-9 {
		t.Errorf("Invert(20) = %f, %v", inv, err)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []uint64{2}); err == nil {
		t.Error("too few samples")
	}
	if _, err := FitLinear([]float64{3, 3, 3}, []uint64{1, 2, 3}); err == nil {
		t.Error("constant x")
	}
	flat, err := FitLinear([]float64{1, 2, 3}, []uint64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flat.Invert(7); err == nil {
		t.Error("flat fit should refuse to invert")
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfect 1-bit channel.
	secrets := []int64{0, 0, 1, 1}
	times := []uint64{10, 10, 20, 20}
	if mi := MutualInformationBits(secrets, times); math.Abs(mi-1) > 1e-9 {
		t.Errorf("MI = %f, want 1", mi)
	}
	// Constant time: zero information.
	if mi := MutualInformationBits(secrets, []uint64{5, 5, 5, 5}); mi != 0 {
		t.Errorf("MI = %f, want 0", mi)
	}
	// Independent: zero.
	if mi := MutualInformationBits([]int64{0, 1, 0, 1}, []uint64{3, 3, 9, 9}); mi != 0 {
		t.Errorf("independent MI = %f", mi)
	}
	if MutualInformationBits(nil, nil) != 0 {
		t.Error("empty MI")
	}
	if MutualInformationBits([]int64{1}, []uint64{1, 2}) != 0 {
		t.Error("length mismatch MI")
	}
}

func TestTimeEntropy(t *testing.T) {
	if h := TimeEntropyBits([]uint64{1, 2, 3, 4}); math.Abs(h-2) > 1e-9 {
		t.Errorf("H = %f, want 2", h)
	}
	if h := TimeEntropyBits([]uint64{9, 9}); h != 0 {
		t.Errorf("H = %f, want 0", h)
	}
	if TimeEntropyBits(nil) != 0 {
		t.Error("empty entropy")
	}
}

// ---------------------------------------------------------------------------
// End-to-end attacks against the case studies

func TestUsernameProbingEndToEnd(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := login.Build(login.Config{TableSize: 24, WorkFactor: 64, WorkTableSize: 128}, lat)
	if err != nil {
		t.Fatal(err)
	}
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, hw.Table1Config()) }
	secretCreds := login.MakeCredentials(9)
	probes := login.MakeCredentials(18)
	p1, p2, err := app.SamplePredictions(newEnv, secretCreds, []login.Attempt{
		{User: secretCreds[8].User, Pass: "wrong"},
		{User: "ghost", Pass: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}

	collect := func(mitigate bool) ([]uint64, []bool) {
		times := make([]uint64, len(probes))
		truth := make([]bool, len(probes))
		for i, p := range probes {
			res, err := app.Run(login.RunOptions{
				Env: newEnv(), Mitigate: mitigate, Pred1: p1, Pred2: p2,
			}, secretCreds, login.Attempt{User: p.User, Pass: "guess"})
			if err != nil {
				t.Fatal(err)
			}
			tm, err := login.ResponseTime(res)
			if err != nil {
				t.Fatal(err)
			}
			times[i] = tm
			truth[i] = i < len(secretCreds)
		}
		return times, truth
	}

	times, truth := collect(false)
	res, err := ProbeUsernames(times, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Errorf("unmitigated probe accuracy = %f, want 1.0", res.Accuracy)
	}

	mitTimes, truth := collect(true)
	mitRes, err := ProbeUsernames(mitTimes, truth)
	if err != nil {
		t.Fatal(err)
	}
	if mitRes.Gap != 0 {
		t.Errorf("mitigated timings should be constant; gap = %d", mitRes.Gap)
	}
	// With constant times, accuracy collapses to the base rate of the
	// majority class (9/18 here → 0.5).
	if mitRes.Accuracy > 0.51 {
		t.Errorf("mitigated probe accuracy = %f; should be chance", mitRes.Accuracy)
	}
}

func TestRSAWeightRecoveryEndToEnd(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 4, Modulus: 2147483647}, rsa.LanguageLevel, lat)
	if err != nil {
		t.Fatal(err)
	}
	// Disable the branch predictor for this analysis: the regression
	// models time as linear in key WEIGHT, which holds for the cache
	// model but not under a trained predictor (alternating-bit keys
	// mispredict every iteration — the separate signal that
	// branch-prediction-analysis attacks exploit).
	cfg := hw.Table1Config()
	cfg.BP.Size = 0
	newEnv := func() hw.Env { return hw.NewPartitioned(lat, cfg) }
	msg := rsa.Message(2, 3)

	timeOf := func(key int64, mitigate bool, pred int64) uint64 {
		res, err := app.Run(newEnv(), key, msg, pred, mitigate)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := rsa.ResponseTime(res)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}

	// Offline calibration with chosen keys of the same bit length.
	calKeys := []int64{
		0x4000000000000001, 0x400000FF000000FF, 0x4FFF0FFF0FFF0FFF, 0x7FFFFFFFFFFFFFFF,
	}
	var xs []float64
	var ys []uint64
	for _, k := range calKeys {
		xs = append(xs, float64(bits.OnesCount64(uint64(k))))
		ys = append(ys, timeOf(k, false, 1))
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("timing should be near-linear in weight; R2 = %f", fit.R2)
	}

	// Attack a victim key: recover its Hamming weight from one timing.
	victim := int64(0x5A5A5A5A5A5A5A5B)
	wTrue := bits.OnesCount64(uint64(victim))
	wEst, err := fit.Invert(timeOf(victim, false, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wEst-float64(wTrue)) > 1.0 {
		t.Errorf("recovered weight %.1f, true %d", wEst, wTrue)
	}

	// Mitigated: the same attack finds a flat line and cannot invert.
	pred, err := app.SamplePrediction(newEnv, []int64{0x7FFFFFFFFFFFFFFF}, [][]int64{msg})
	if err != nil {
		t.Fatal(err)
	}
	ys = ys[:0]
	for _, k := range calKeys {
		ys = append(ys, timeOf(k, true, pred))
	}
	mitFit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mitFit.Invert(timeOf(victim, true, pred)); err == nil {
		t.Error("mitigated timing should be uninvertible (flat)")
	}
}

func TestMutualInformationOnMitigatedRSA(t *testing.T) {
	lat := lattice.TwoPoint()
	app, err := rsa.Build(rsa.Config{MaxBlocks: 2, Modulus: 1000003}, rsa.LanguageLevel, lat)
	if err != nil {
		t.Fatal(err)
	}
	newEnv := func() hw.Env { return hw.NewFlat(lat, 2) }
	msg := rsa.Message(1, 1)
	keys := []int64{0x11, 0x7F, 0xFF1, 0xABCDE, 0xFFFFF, 0x100001, 0x155555, 0x1FFFFF}

	collect := func(mitigate bool, pred int64) ([]int64, []uint64) {
		var ts []uint64
		for _, k := range keys {
			res, err := app.Run(newEnv(), k, msg, pred, mitigate)
			if err != nil {
				t.Fatal(err)
			}
			tm, _ := rsa.ResponseTime(res)
			ts = append(ts, tm)
		}
		return keys, ts
	}

	s, tsU := collect(false, 1)
	miU := MutualInformationBits(s, tsU)
	s, tsM := collect(true, 1<<13)
	miM := MutualInformationBits(s, tsM)
	if miU < 1.5 {
		t.Errorf("unmitigated MI = %f bits; attack should extract >1.5", miU)
	}
	if miM != 0 {
		t.Errorf("mitigated MI = %f bits, want 0", miM)
	}
}

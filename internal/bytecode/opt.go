package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/lang/token"
	"repro/internal/lattice"
)

// This file defines the optimized program representation executed by
// the VM's register-lowered hot loop (vm_opt.go). The representation is
// produced by the passes in internal/bytecode/optimize; it lives here
// so the VM can execute it without an import cycle (optimize imports
// bytecode, never the reverse).
//
// The contract of every optimized opcode is timing transparency: the
// instruction commits exactly the clock costs, machine-environment
// accesses, trace events, and mitigation transitions of the original
// instruction sequence it replaces. Fused opcodes carry the pc and
// length of their original expansion so the step counter, the
// micro-timing model's per-instruction fetches, and the per-site
// hardware memos all remain keyed to original instructions.

// OptOp is an opcode of the optimized (register-file) ISA.
type OptOp uint8

const (
	// ONop does nothing.
	ONop OptOp = iota
	// OHalt stops execution.
	OHalt
	// OSetLbl installs the predecoded labels ER/EW and the AST node.
	OSetLbl
	// OImm sets R[Dst] = Val.
	OImm
	// OLoad reads scalar A into R[Dst].
	OLoad
	// OLoadIdx reads arrays[A][wrap(R[S1])] into R[Dst].
	OLoadIdx
	// OStore writes R[S1] to scalar A and emits an observable event.
	OStore
	// OStoreIdx writes R[S2] to arrays[A][wrap(R[S1])] and emits an
	// observable event.
	OStoreIdx
	// OUnop sets R[Dst] = Kind(R[S1]).
	OUnop
	// OBinop sets R[Dst] = R[S1] ⟨Kind⟩ R[S2].
	OBinop
	// OJmp jumps to instruction A.
	OJmp
	// OJz jumps to A if R[S1] is zero.
	OJz
	// OSleep advances the clock by max(R[S1], 0).
	OSleep
	// OMitEnter opens mitigation region A at level ER with initial
	// prediction R[S1].
	OMitEnter
	// OMitExit closes mitigation region A.
	OMitExit

	// Fused superinstructions (produced at OptFuse). Each one's comment
	// gives its original expansion; Len and OrigPC record it at runtime.

	// OImmBinop = PUSH Val; BINOP — R[Dst] = R[S1] ⟨Kind⟩ Val.
	OImmBinop
	// OLoadBinop = LOAD B; BINOP — R[Dst] = R[S1] ⟨Kind⟩ scalars[B],
	// with the load's data access.
	OLoadBinop
	// OImmLoadBinop = PUSH Val; LOAD B; BINOP — R[Dst] = Val ⟨Kind⟩
	// scalars[B], with the load's data access.
	OImmLoadBinop
	// OLoadJz = LOAD B; JZ A — jump to A if scalars[B] is zero, with
	// the load's data access.
	OLoadJz
	// OCmpJz = BINOP; JZ A — jump to A if R[S1] ⟨Kind⟩ R[S2] is zero.
	OCmpJz
	// OImmCmpJz = PUSH Val; BINOP; JZ A — jump to A if R[S1] ⟨Kind⟩ Val
	// is zero.
	OImmCmpJz
	// OLoadCmpJz = LOAD B; BINOP; JZ A — jump to A if R[S1] ⟨Kind⟩
	// scalars[B] is zero, with the load's data access.
	OLoadCmpJz
	// OImmStore = PUSH Val; STORE A — write Val to scalar A, with the
	// store's access and event.
	OImmStore
	// OLoadStore = LOAD B; STORE A — copy scalar B to scalar A, with
	// both data accesses and the store event.
	OLoadStore
	// OLoadIdxStore = LOADIDX B; STORE A — read arrays[B][wrap(R[S1])]
	// into scalar A, with both data accesses and the store event.
	OLoadIdxStore
	// OImmBinop2 = PUSH Val; BINOP Kind; PUSH Val2; BINOP Kind2 — a
	// second-order fusion of two adjacent OImmBinop over the same
	// register: R[Dst] = (R[S1] ⟨Kind⟩ Val) ⟨Kind2⟩ Val2. One dispatch
	// covers four original instructions; immediate-arithmetic chains
	// halve their dispatch count again.
	OImmBinop2
)

var optOpNames = [...]string{
	ONop: "NOP", OHalt: "HALT", OSetLbl: "SETLBL", OImm: "IMM",
	OLoad: "LOAD", OLoadIdx: "LOADIDX", OStore: "STORE", OStoreIdx: "STOREIDX",
	OUnop: "UNOP", OBinop: "BINOP", OJmp: "JMP", OJz: "JZ",
	OSleep: "SLEEP", OMitEnter: "MITENTER", OMitExit: "MITEXIT",
	OImmBinop: "IMM.BINOP", OLoadBinop: "LOAD.BINOP", OImmLoadBinop: "IMM.LOAD.BINOP",
	OLoadJz: "LOAD.JZ", OCmpJz: "CMP.JZ", OImmCmpJz: "IMM.CMP.JZ", OLoadCmpJz: "LOAD.CMP.JZ",
	OImmStore: "IMM.STORE", OLoadStore: "LOAD.STORE", OLoadIdxStore: "LOADIDX.STORE",
	OImmBinop2: "IMM.BINOP2",
}

// String returns the opcode mnemonic.
func (o OptOp) String() string {
	if int(o) < len(optOpNames) && optOpNames[o] != "" {
		return optOpNames[o]
	}
	return fmt.Sprintf("OptOp(%d)", uint8(o))
}

// Fused reports whether the opcode replaces more than one original
// instruction.
func (o OptOp) Fused() bool { return o >= OImmBinop }

// OptInstr is one instruction of the optimized ISA. Operands are fully
// predecoded: labels are resolved lattice.Labels, jump targets are
// direct indices into the optimized code, and memory operands are
// indices into the VM's scalar/array tables — the hot loop touches no
// maps and performs no per-instruction decoding.
type OptInstr struct {
	Op   OptOp
	Kind token.Kind // operator for UNOP/BINOP-carrying opcodes
	// Kind2 is the second operator of OImmBinop2.
	Kind2 token.Kind
	// Dst, S1, S2 are register-file indices. Register i corresponds to
	// evaluation-stack slot i in the original program (see optimize).
	Dst, S1, S2 uint8
	// Len is the number of original instructions this one expands to
	// (1 for unfused opcodes). The step counter advances by Len and the
	// micro timing model fetches Len instructions at OrigPC..OrigPC+Len-1.
	Len uint8
	// A is the primary integer operand: scalar/array index for memory
	// opcodes, jump target for OJmp/OJz and every fused *Jz, mitigate
	// ID for OMitEnter/OMitExit.
	A int32
	// B is the secondary memory operand of fused opcodes: the scalar
	// index loaded by OLoadBinop/OImmLoadBinop/OLoadJz/OLoadCmpJz/
	// OLoadStore, or the array index of OLoadIdxStore.
	B int32
	// OrigPC is the index of the first original instruction this one
	// replaces; per-site hardware memos are keyed by original pc.
	OrigPC int32
	// Val is the immediate of OImm and the IMM-fused opcodes; Val2 is
	// the second immediate of OImmBinop2.
	Val, Val2 int64
	// Node is the AST node ID carried by OSetLbl (the tree timing
	// model charges command fetch and branch costs at its code address).
	Node int64
	// ER/EW are the predecoded labels of OSetLbl; ER doubles as the
	// mitigation level of OMitEnter.
	ER, EW lattice.Label
}

// String disassembles one optimized instruction.
func (i OptInstr) String() string {
	switch i.Op {
	case ONop, OHalt:
		return i.Op.String()
	case OSetLbl:
		return fmt.Sprintf("%s %v %v", i.Op, i.ER, i.EW)
	case OImm:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Dst, i.Val)
	case OLoad:
		return fmt.Sprintf("%s r%d, s%d", i.Op, i.Dst, i.A)
	case OLoadIdx:
		return fmt.Sprintf("%s r%d, a%d[r%d]", i.Op, i.Dst, i.A, i.S1)
	case OStore:
		return fmt.Sprintf("%s s%d, r%d", i.Op, i.A, i.S1)
	case OStoreIdx:
		return fmt.Sprintf("%s a%d[r%d], r%d", i.Op, i.A, i.S1, i.S2)
	case OUnop:
		return fmt.Sprintf("%s r%d, %v r%d", i.Op, i.Dst, i.Kind, i.S1)
	case OBinop:
		return fmt.Sprintf("%s r%d, r%d %v r%d", i.Op, i.Dst, i.S1, i.Kind, i.S2)
	case OJmp:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	case OJz:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.S1, i.A)
	case OSleep:
		return fmt.Sprintf("%s r%d", i.Op, i.S1)
	case OMitEnter:
		return fmt.Sprintf("%s %d %v, r%d", i.Op, i.A, i.ER, i.S1)
	case OMitExit:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	case OImmBinop:
		return fmt.Sprintf("%s r%d, r%d %v %d", i.Op, i.Dst, i.S1, i.Kind, i.Val)
	case OLoadBinop:
		return fmt.Sprintf("%s r%d, r%d %v s%d", i.Op, i.Dst, i.S1, i.Kind, i.B)
	case OImmLoadBinop:
		return fmt.Sprintf("%s r%d, %d %v s%d", i.Op, i.Dst, i.Val, i.Kind, i.B)
	case OLoadJz:
		return fmt.Sprintf("%s s%d, %d", i.Op, i.B, i.A)
	case OCmpJz:
		return fmt.Sprintf("%s r%d %v r%d, %d", i.Op, i.S1, i.Kind, i.S2, i.A)
	case OImmCmpJz:
		return fmt.Sprintf("%s r%d %v %d, %d", i.Op, i.S1, i.Kind, i.Val, i.A)
	case OLoadCmpJz:
		return fmt.Sprintf("%s r%d %v s%d, %d", i.Op, i.S1, i.Kind, i.B, i.A)
	case OImmStore:
		return fmt.Sprintf("%s s%d, %d", i.Op, i.A, i.Val)
	case OLoadStore:
		return fmt.Sprintf("%s s%d, s%d", i.Op, i.A, i.B)
	case OLoadIdxStore:
		return fmt.Sprintf("%s s%d, a%d[r%d]", i.Op, i.A, i.B, i.S1)
	case OImmBinop2:
		return fmt.Sprintf("%s r%d, (r%d %v %d) %v %d", i.Op, i.Dst, i.S1, i.Kind, i.Val, i.Kind2, i.Val2)
	}
	return i.Op.String()
}

// OptStats reports what the pipeline did to a program.
type OptStats struct {
	// OrigInstrs and OptInstrs are the instruction counts before and
	// after the pipeline.
	OrigInstrs int
	OptInstrs  int
	// FusedInstrs counts emitted superinstructions; FusedOrig counts
	// the original instructions they absorbed.
	FusedInstrs int
	FusedOrig   int
	// Patterns counts emitted superinstructions by mnemonic.
	Patterns map[string]int
}

// OptProgram is the optimized form of a Program, attached as
// Program.Opt. It is immutable after construction, like the Program it
// derives from, so one OptProgram can back any number of VMs.
type OptProgram struct {
	Code []OptInstr
	// NumRegs is the register-file size: the original program's maximum
	// evaluation-stack depth.
	NumRegs int
	// OrigLen is len of the original Program.Code; the VM sizes its
	// per-original-instruction site tables from it.
	OrigLen int
	// Level records the pipeline level that produced this program
	// (1 = lowering + predecode, 2 = + fusion).
	Level int
	// IdxNames[a][i] is the precomputed event name "arr[i]" for array
	// a's element i, so STOREIDX events allocate no format buffer.
	IdxNames [][]string
	// Stats describes the pipeline's work, for reporting.
	Stats OptStats
}

// Disassemble renders the optimized program.
func (p *OptProgram) Disassemble() string {
	var b strings.Builder
	for i, ins := range p.Code {
		fmt.Fprintf(&b, "%4d  %s", i, ins)
		if ins.Op.Fused() {
			fmt.Fprintf(&b, "    ; pc %d +%d", ins.OrigPC, ins.Len)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

package optimize

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/lang/parser"
	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/progen"
	"repro/internal/types"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	lat := lattice.TwoPoint()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

const loopSrc = `
var n : L;
var f : L;
var i : L;
n := 5;
f := 1;
i := 1;
while (i <= n) {
    f := f * i;
    i := i + 1;
}
if (f > 100) { n := 1; } else { n := 0; }
`

func TestCompileLevels(t *testing.T) {
	bc := compileSrc(t, loopSrc)
	if op, err := Compile(bc, LevelOff); err != nil || op != nil {
		t.Fatalf("level 0 = %v, %v; want nil, nil", op, err)
	}
	lowered, err := Compile(bc, LevelLower)
	if err != nil {
		t.Fatal(err)
	}
	if lowered.Level != LevelLower {
		t.Errorf("Level = %d", lowered.Level)
	}
	// Lowering is 1:1: every original instruction appears once, in
	// order, and no fused opcodes exist yet.
	if len(lowered.Code) != len(bc.Code) || lowered.OrigLen != len(bc.Code) {
		t.Fatalf("lowered %d instrs from %d", len(lowered.Code), len(bc.Code))
	}
	for i, ins := range lowered.Code {
		if ins.Op.Fused() {
			t.Fatalf("fused opcode %v at level 1", ins.Op)
		}
		if int(ins.OrigPC) != i || ins.Len != 1 {
			t.Fatalf("instr %d: OrigPC %d Len %d", i, ins.OrigPC, ins.Len)
		}
	}
	if lowered.Stats.FusedInstrs != 0 {
		t.Errorf("level-1 fused count %d", lowered.Stats.FusedInstrs)
	}

	fused, err := Compile(bc, LevelFuse)
	if err != nil {
		t.Fatal(err)
	}
	if fused.Level != LevelFuse {
		t.Errorf("Level = %d", fused.Level)
	}
	if fused.Stats.FusedInstrs == 0 {
		t.Fatalf("fusion found nothing in a loop program:\n%s", fused.Disassemble())
	}
	if fused.Stats.OrigInstrs != len(bc.Code) || fused.Stats.OptInstrs != len(fused.Code) {
		t.Errorf("stats counts: %+v", fused.Stats)
	}
	// The absorbed-original accounting must balance: unfused + absorbed
	// = original instruction count.
	unfused := fused.Stats.OptInstrs - fused.Stats.FusedInstrs
	if unfused+fused.Stats.FusedOrig != fused.Stats.OrigInstrs {
		t.Errorf("instruction accounting: %+v", fused.Stats)
	}
	// The loop program exercises the compare-and-branch and
	// load/store patterns.
	for _, pat := range []string{"LOAD.CMP.JZ", "IMM.STORE"} {
		if fused.Stats.Patterns[pat] == 0 {
			t.Errorf("pattern %s not used:\n%s", pat, fused.Disassemble())
		}
	}
}

// TestFuseIdempotent checks the pass-ordering contract: Fuse runs to a
// fixpoint, so applying it again (or Compile at the same level twice)
// changes nothing.
func TestFuseIdempotent(t *testing.T) {
	srcs := []string{loopSrc}
	for seed := int64(1); seed <= 20; seed++ {
		_, _, src, err := progen.GenerateTyped(progen.Config{
			Lat: lattice.TwoPoint(), Seed: seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	for i, src := range srcs {
		bc := compileSrc(t, src)
		once, err := Compile(bc, LevelFuse)
		if err != nil {
			t.Fatal(err)
		}
		again := &bytecode.OptProgram{Code: append([]bytecode.OptInstr(nil), once.Code...)}
		Fuse(again)
		if !reflect.DeepEqual(once.Code, again.Code) {
			t.Fatalf("program %d: Fuse is not idempotent", i)
		}
	}
}

// TestLowerRegisterBudget checks that NumRegs equals the evaluation
// stack's high-water mark, not the instruction count.
func TestLowerRegisterBudget(t *testing.T) {
	bc := compileSrc(t, `
var a : L;
var b : L;
a := ((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + b));
`)
	op, err := Lower(bc)
	if err != nil {
		t.Fatal(err)
	}
	if op.NumRegs < 3 || op.NumRegs > 6 {
		t.Errorf("NumRegs = %d for depth-3 expression tree", op.NumRegs)
	}
}

// TestFuseJumpTargetGuard builds a program where a fusable pair's
// second instruction is a jump target: fusing it would let the jump
// land mid-group, so the pair must stay unfused — and the jump target
// must still be remapped correctly past earlier fusions.
func TestFuseJumpTargetGuard(t *testing.T) {
	p := &bytecode.Program{
		Code: []bytecode.Instr{
			{Op: bytecode.OpLoad, A: 0},  // 0: cond
			{Op: bytecode.OpJz, A: 4},    // 1: else-arm
			{Op: bytecode.OpPush, A: 7},  // 2
			{Op: bytecode.OpJmp, A: 5},   // 3: join
			{Op: bytecode.OpPush, A: 9},  // 4
			{Op: bytecode.OpStore, A: 1}, // 5: join point, depth 1
			{Op: bytecode.OpHalt},        // 6
		},
		ScalarNames: []string{"c", "out"},
		Lat:         lattice.TwoPoint(),
	}
	op, err := Compile(p, LevelFuse)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range op.Code {
		if ins.Op == bytecode.OImmStore {
			t.Fatalf("fused across a jump target:\n%s", op.Disassemble())
		}
	}
	// LOAD;JZ at the top fuses, shifting every index down by one; the
	// JMP and JZ targets must follow.
	if op.Code[0].Op != bytecode.OLoadJz {
		t.Fatalf("expected LOAD.JZ head:\n%s", op.Disassemble())
	}
	if got := op.Code[0].A; got != 3 {
		t.Errorf("JZ target remap: got %d want 3\n%s", got, op.Disassemble())
	}
	var jmp *bytecode.OptInstr
	for i := range op.Code {
		if op.Code[i].Op == bytecode.OJmp {
			jmp = &op.Code[i]
		}
	}
	if jmp == nil || jmp.A != 4 {
		t.Errorf("JMP target remap: %v\n%s", jmp, op.Disassemble())
	}
}

// TestLowerInconsistentDepth: a hand-built program whose join point is
// reached at two different stack depths is rejected as unsupported.
func TestLowerInconsistentDepth(t *testing.T) {
	p := &bytecode.Program{
		Code: []bytecode.Instr{
			{Op: bytecode.OpLoad, A: 0}, // 0
			{Op: bytecode.OpJz, A: 3},   // 1: target depth 0...
			{Op: bytecode.OpPush, A: 1}, // 2: ...fallthrough depth 1
			{Op: bytecode.OpHalt},       // 3
		},
		ScalarNames: []string{"c"},
		Lat:         lattice.TwoPoint(),
	}
	if _, err := Lower(p); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

// TestLowerUnreachable: instructions no path reaches lower to NOP
// placeholders, preserving the 1:1 index map.
func TestLowerUnreachable(t *testing.T) {
	p := &bytecode.Program{
		Code: []bytecode.Instr{
			{Op: bytecode.OpJmp, A: 2},   // 0
			{Op: bytecode.OpStore, A: 0}, // 1: unreachable (would underflow)
			{Op: bytecode.OpHalt},        // 2
		},
		ScalarNames: []string{"x"},
		Lat:         lattice.TwoPoint(),
	}
	op, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if op.Code[1].Op != bytecode.ONop {
		t.Errorf("unreachable instr lowered to %v", op.Code[1].Op)
	}
}

// TestLowerPredecode checks operator kinds, labels, and event names are
// resolved at compile time.
func TestLowerPredecode(t *testing.T) {
	bc := compileSrc(t, `
var h : H;
array a[4] : L;
var i : L;
a[i] := i + 1;
sleep(h) [H,H];
`)
	op, err := Lower(bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(op.IdxNames) != 1 || len(op.IdxNames[0]) != 4 || op.IdxNames[0][2] != "a[2]" {
		t.Errorf("IdxNames = %v", op.IdxNames)
	}
	var sawBinop, sawHighLabel bool
	for _, ins := range op.Code {
		if ins.Op == bytecode.OBinop && ins.Kind == token.PLUS {
			sawBinop = true
		}
		if ins.Op == bytecode.OSetLbl && ins.ER.String() == "H" {
			sawHighLabel = true
		}
	}
	if !sawBinop || !sawHighLabel {
		t.Errorf("predecode missing: binop %v highLabel %v\n%s", sawBinop, sawHighLabel, op.Disassemble())
	}
}

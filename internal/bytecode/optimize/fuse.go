package optimize

import (
	"repro/internal/bytecode"
)

// Fuse rewrites a lowered program in place, combining adjacent
// instruction pairs into superinstructions. It applies the pairwise
// pattern table repeatedly until a fixpoint, so chains compose (e.g.
// IMM + BINOP → IMM.BINOP, then IMM.BINOP + JZ → IMM.CMP.JZ), and it is
// idempotent: running it on already-fused code changes nothing, because
// every pattern's left side requires at least one opcode shape that a
// previous application consumed.
//
// Soundness has three parts:
//
//   - Control flow: the second instruction of a pair must not be a jump
//     target, so no branch can enter the middle of a fused group, and
//     the pair must be contiguous in the original program
//     (b.OrigPC == a.OrigPC + a.Len), so the group's recorded original
//     range is exactly the instructions it replaces.
//
//   - Timing: each superinstruction's VM case commits the same machine
//     accesses in the same per-hierarchy order and the same clock costs
//     as the pair it replaces (vm_opt.go); no pattern crosses a SETLBL
//     or an event-committing boundary except as the group's final
//     instruction.
//
//   - Data flow: patterns require the producing instruction's
//     destination register to be the consuming instruction's operand
//     (stack discipline guarantees the value dies there), so dropping
//     the intermediate register write is unobservable.
func Fuse(op *bytecode.OptProgram) {
	code := op.Code
	for {
		var changed bool
		code, changed = fuseOnce(code)
		if !changed {
			break
		}
	}
	op.Code = code
}

// fuseOnce performs one left-to-right sweep, fusing non-overlapping
// adjacent pairs, and remaps jump targets to the rewritten indices.
func fuseOnce(code []bytecode.OptInstr) ([]bytecode.OptInstr, bool) {
	targets := jumpTargets(code)
	out := make([]bytecode.OptInstr, 0, len(code))
	old2new := make([]int, len(code)+1)
	changed := false
	for i := 0; i < len(code); i++ {
		old2new[i] = len(out)
		if i+1 < len(code) && !targets[i+1] {
			if f, ok := fusePair(&code[i], &code[i+1]); ok {
				out = append(out, f)
				old2new[i+1] = len(out) - 1 // never a jump target; mapped for completeness
				i++
				changed = true
				continue
			}
		}
		out = append(out, code[i])
	}
	old2new[len(code)] = len(out)
	if !changed {
		return code, false
	}
	for i := range out {
		if isJump(out[i].Op) {
			out[i].A = int32(old2new[out[i].A])
		}
	}
	return out, true
}

// isJump reports whether the opcode's A operand is a jump target.
func isJump(o bytecode.OptOp) bool {
	switch o {
	case bytecode.OJmp, bytecode.OJz, bytecode.OLoadJz, bytecode.OCmpJz,
		bytecode.OImmCmpJz, bytecode.OLoadCmpJz:
		return true
	}
	return false
}

// jumpTargets returns the set of instruction indices any jump may enter.
func jumpTargets(code []bytecode.OptInstr) []bool {
	t := make([]bool, len(code)+1)
	for i := range code {
		if isJump(code[i].Op) {
			a := code[i].A
			if a >= 0 && int(a) < len(t) {
				t[a] = true
			}
		}
	}
	return t
}

// fusePair returns the superinstruction for an adjacent pair, if the
// pattern table has one. The caller has already checked that b is not a
// jump target.
func fusePair(a, b *bytecode.OptInstr) (bytecode.OptInstr, bool) {
	if b.OrigPC != a.OrigPC+int32(a.Len) {
		// Non-contiguous original ranges (can only happen in a
		// hand-modified program): the group could not account its
		// original instructions correctly, so leave it alone.
		return bytecode.OptInstr{}, false
	}
	f := bytecode.OptInstr{
		Len:    a.Len + b.Len,
		OrigPC: a.OrigPC,
	}
	switch {
	// IMM r; BINOP  →  IMM.BINOP (the immediate is always the right
	// operand: the push writes the deeper slot's successor).
	case a.Op == bytecode.OImm && b.Op == bytecode.OBinop && b.S2 == a.Dst && b.S1 != a.Dst:
		f.Op, f.Kind, f.Dst, f.S1, f.Val = bytecode.OImmBinop, b.Kind, b.Dst, b.S1, a.Val

	// IMM.BINOP; IMM.BINOP  →  IMM.BINOP2 (second-order fusion over a
	// chain on one register; requiring b to both read and overwrite
	// a's destination keeps the intermediate value dead).
	case a.Op == bytecode.OImmBinop && b.Op == bytecode.OImmBinop && b.S1 == a.Dst && b.Dst == a.Dst:
		f.Op, f.Dst, f.S1 = bytecode.OImmBinop2, a.Dst, a.S1
		f.Kind, f.Val = a.Kind, a.Val
		f.Kind2, f.Val2 = b.Kind, b.Val

	// LOAD r; BINOP  →  LOAD.BINOP.
	case a.Op == bytecode.OLoad && b.Op == bytecode.OBinop && b.S2 == a.Dst && b.S1 != a.Dst:
		f.Op, f.Kind, f.Dst, f.S1, f.B = bytecode.OLoadBinop, b.Kind, b.Dst, b.S1, a.A

	// IMM r; LOAD.BINOP  →  IMM.LOAD.BINOP (immediate is the left
	// operand: it was pushed first).
	case a.Op == bytecode.OImm && b.Op == bytecode.OLoadBinop && b.S1 == a.Dst:
		f.Op, f.Kind, f.Dst, f.Val, f.B = bytecode.OImmLoadBinop, b.Kind, b.Dst, a.Val, b.B

	// LOAD r; JZ  →  LOAD.JZ.
	case a.Op == bytecode.OLoad && b.Op == bytecode.OJz && b.S1 == a.Dst:
		f.Op, f.A, f.B = bytecode.OLoadJz, b.A, a.A

	// BINOP; JZ  →  CMP.JZ.
	case a.Op == bytecode.OBinop && b.Op == bytecode.OJz && b.S1 == a.Dst:
		f.Op, f.Kind, f.S1, f.S2, f.A = bytecode.OCmpJz, a.Kind, a.S1, a.S2, b.A

	// IMM.BINOP; JZ  →  IMM.CMP.JZ.
	case a.Op == bytecode.OImmBinop && b.Op == bytecode.OJz && b.S1 == a.Dst:
		f.Op, f.Kind, f.S1, f.Val, f.A = bytecode.OImmCmpJz, a.Kind, a.S1, a.Val, b.A

	// LOAD.BINOP; JZ  →  LOAD.CMP.JZ.
	case a.Op == bytecode.OLoadBinop && b.Op == bytecode.OJz && b.S1 == a.Dst:
		f.Op, f.Kind, f.S1, f.B, f.A = bytecode.OLoadCmpJz, a.Kind, a.S1, a.B, b.A

	// IMM r; STORE  →  IMM.STORE.
	case a.Op == bytecode.OImm && b.Op == bytecode.OStore && b.S1 == a.Dst:
		f.Op, f.A, f.Val = bytecode.OImmStore, b.A, a.Val

	// LOAD r; STORE  →  LOAD.STORE.
	case a.Op == bytecode.OLoad && b.Op == bytecode.OStore && b.S1 == a.Dst:
		f.Op, f.A, f.B = bytecode.OLoadStore, b.A, a.A

	// LOADIDX r; STORE  →  LOADIDX.STORE (S1 is the index register).
	case a.Op == bytecode.OLoadIdx && b.Op == bytecode.OStore && b.S1 == a.Dst:
		f.Op, f.S1, f.A, f.B = bytecode.OLoadIdxStore, a.S1, b.A, a.A

	default:
		return bytecode.OptInstr{}, false
	}
	return f, true
}

// Package optimize implements the bytecode optimization pipeline: a
// stack-to-register lowering pass with full operand predecoding,
// followed by a peephole superinstruction-fusion pass. The output
// (bytecode.OptProgram) executes on the VM's register-lowered hot loop
// with bit-identical observable behaviour to the stack interpreter —
// the same simulated clock, event trace, mitigation schedule, final
// memory, and machine-environment state — because every pass preserves
// the exact sequence of machine-environment accesses and clock commits
// at observable points (see DESIGN.md §12).
//
// Pass ordering is fixed: Lower must run first (fusion patterns are
// defined over the register form), and Fuse is idempotent (it runs to
// an internal fixpoint, so fusing an already-fused program changes
// nothing). Compile applies the passes for a requested level.
package optimize

import (
	"errors"
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/lang/token"
	"repro/internal/lattice"
)

// ErrUnsupported marks programs the pipeline declines to optimize
// (e.g. evaluation-stack depth beyond the register file's addressing).
// Callers fall back to the unoptimized program; any other error is a
// real inconsistency worth surfacing.
var ErrUnsupported = errors.New("optimize: program shape unsupported")

// maxRegs is the register-file addressing limit (register indices are
// uint8). Structured programs need stack depth ~ expression nesting
// depth, so the limit is effectively never hit outside adversarial
// inputs — which fall back to the stack interpreter.
const maxRegs = 256

// Levels of the pipeline.
const (
	// LevelOff disables the pipeline.
	LevelOff = 0
	// LevelLower applies register lowering and operand predecoding.
	LevelLower = 1
	// LevelFuse additionally applies superinstruction fusion.
	LevelFuse = 2
)

// Compile runs the pipeline at the given level. Level <= 0 returns
// (nil, nil): no optimized program. Errors wrapping ErrUnsupported mean
// "this program can't be optimized, run it unoptimized"; other errors
// indicate a malformed program.
func Compile(p *bytecode.Program, level int) (*bytecode.OptProgram, error) {
	if level <= LevelOff {
		return nil, nil
	}
	op, err := Lower(p)
	if err != nil {
		return nil, err
	}
	if level >= LevelFuse {
		Fuse(op)
		op.Level = LevelFuse
	}
	finalizeStats(op)
	return op, nil
}

// Lower translates a stack program 1:1 into the register form: stack
// slot i becomes register i (the compiler's structured output gives
// every instruction a statically known entry depth, verified here by
// abstract interpretation), labels and operator kinds are predecoded,
// and array-element event names are precomputed. The result has
// Level = LevelLower.
func Lower(p *bytecode.Program) (*bytecode.OptProgram, error) {
	n := len(p.Code)
	depth, maxDepth, err := stackDepths(p)
	if err != nil {
		return nil, err
	}
	if maxDepth > maxRegs {
		return nil, fmt.Errorf("%w: stack depth %d exceeds %d registers", ErrUnsupported, maxDepth, maxRegs)
	}

	labels := make([]lattice.Label, p.Lat.Size())
	for _, l := range p.Lat.Levels() {
		labels[l.ID()] = l
	}
	label := func(id int64) (lattice.Label, error) {
		if id < 0 || id >= int64(len(labels)) {
			return lattice.Label{}, fmt.Errorf("optimize: bad label id %d", id)
		}
		return labels[id], nil
	}

	out := &bytecode.OptProgram{
		Code:    make([]bytecode.OptInstr, 0, n),
		NumRegs: maxDepth,
		OrigLen: n,
		Level:   LevelLower,
	}
	for pc, ins := range p.Code {
		d := depth[pc]
		oi := bytecode.OptInstr{Len: 1, OrigPC: int32(pc)}
		if d < 0 {
			// Unreachable instruction (can only arise in hand-built
			// programs): it can never execute, so a NOP placeholder
			// keeps the 1:1 index mapping without inventing register
			// operands for it.
			oi.Op = bytecode.ONop
			out.Code = append(out.Code, oi)
			continue
		}
		need := func(k int) error {
			if d < k {
				return fmt.Errorf("optimize: pc %d: %v needs stack depth %d, have %d", pc, ins.Op, k, d)
			}
			return nil
		}
		switch ins.Op {
		case bytecode.OpNop:
			oi.Op = bytecode.ONop
		case bytecode.OpHalt:
			oi.Op = bytecode.OHalt
		case bytecode.OpSetLbl:
			oi.Op = bytecode.OSetLbl
			if oi.ER, err = label(ins.A); err != nil {
				return nil, err
			}
			if oi.EW, err = label(ins.B); err != nil {
				return nil, err
			}
			oi.Node = ins.C
		case bytecode.OpPush:
			oi.Op, oi.Dst, oi.Val = bytecode.OImm, uint8(d), ins.A
		case bytecode.OpLoad:
			oi.Op, oi.Dst, oi.A = bytecode.OLoad, uint8(d), int32(ins.A)
		case bytecode.OpLoadIdx:
			if err := need(1); err != nil {
				return nil, err
			}
			oi.Op, oi.Dst, oi.S1, oi.A = bytecode.OLoadIdx, uint8(d-1), uint8(d-1), int32(ins.A)
		case bytecode.OpStore:
			if err := need(1); err != nil {
				return nil, err
			}
			oi.Op, oi.S1, oi.A = bytecode.OStore, uint8(d-1), int32(ins.A)
		case bytecode.OpStoreIdx:
			if err := need(2); err != nil {
				return nil, err
			}
			oi.Op, oi.S2, oi.S1, oi.A = bytecode.OStoreIdx, uint8(d-1), uint8(d-2), int32(ins.A)
		case bytecode.OpUnop:
			if err := need(1); err != nil {
				return nil, err
			}
			oi.Op, oi.Dst, oi.S1, oi.Kind = bytecode.OUnop, uint8(d-1), uint8(d-1), token.Kind(ins.A)
		case bytecode.OpBinop:
			if err := need(2); err != nil {
				return nil, err
			}
			oi.Op, oi.Dst, oi.S1, oi.S2, oi.Kind = bytecode.OBinop, uint8(d-2), uint8(d-2), uint8(d-1), token.Kind(ins.A)
		case bytecode.OpJmp:
			oi.Op, oi.A = bytecode.OJmp, int32(ins.A)
		case bytecode.OpJz:
			if err := need(1); err != nil {
				return nil, err
			}
			oi.Op, oi.S1, oi.A = bytecode.OJz, uint8(d-1), int32(ins.A)
		case bytecode.OpSleep:
			if err := need(1); err != nil {
				return nil, err
			}
			oi.Op, oi.S1 = bytecode.OSleep, uint8(d-1)
		case bytecode.OpMitEnter:
			if err := need(1); err != nil {
				return nil, err
			}
			oi.Op, oi.S1, oi.A = bytecode.OMitEnter, uint8(d-1), int32(ins.A)
			if oi.ER, err = label(ins.B); err != nil {
				return nil, err
			}
		case bytecode.OpMitExit:
			oi.Op, oi.A = bytecode.OMitExit, int32(ins.A)
		default:
			return nil, fmt.Errorf("%w: unknown opcode %v at pc %d", ErrUnsupported, ins.Op, pc)
		}
		out.Code = append(out.Code, oi)
	}

	// Precompute per-element event names so STOREIDX commits events
	// without a per-event format allocation; contents are exactly the
	// stack interpreter's fmt.Sprintf("%s[%d]", name, idx).
	out.IdxNames = make([][]string, len(p.ArrayNames))
	for i, name := range p.ArrayNames {
		names := make([]string, p.ArraySizes[i])
		for j := range names {
			names[j] = fmt.Sprintf("%s[%d]", name, j)
		}
		out.IdxNames[i] = names
	}
	return out, nil
}

// stackDepths computes each instruction's entry stack depth by abstract
// interpretation over the control-flow graph, verifying that every
// instruction is reached at a single consistent depth (true for all
// compiler output: expressions are evaluated without crossing control
// flow). The second result is the maximum depth reached (the register
// file size). Unreachable instructions report depth -1.
func stackDepths(p *bytecode.Program) ([]int, int, error) {
	n := len(p.Code)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	if n == 0 {
		return depth, 0, nil
	}
	maxDepth := 0
	type item struct{ pc, d int }
	work := []item{{0, 0}}
	visit := func(pc, d int) error {
		if pc < 0 || pc >= n {
			return fmt.Errorf("optimize: jump target %d out of range", pc)
		}
		if d < 0 {
			return fmt.Errorf("optimize: stack underflow reaching pc %d", pc)
		}
		if depth[pc] >= 0 {
			if depth[pc] != d {
				return fmt.Errorf("%w: pc %d reached at depths %d and %d", ErrUnsupported, pc, depth[pc], d)
			}
			return nil
		}
		depth[pc] = d
		work = append(work, item{pc, d})
		return nil
	}
	depth[0] = 0
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d := it.pc, it.d
		ins := p.Code[pc]
		next := d
		switch ins.Op {
		case bytecode.OpPush, bytecode.OpLoad:
			next = d + 1
		case bytecode.OpStore, bytecode.OpBinop, bytecode.OpSleep, bytecode.OpMitEnter:
			next = d - 1
		case bytecode.OpStoreIdx:
			next = d - 2
		case bytecode.OpHalt:
			continue
		case bytecode.OpJmp:
			if err := visit(int(ins.A), d); err != nil {
				return nil, 0, err
			}
			continue
		case bytecode.OpJz:
			next = d - 1
			if err := visit(int(ins.A), next); err != nil {
				return nil, 0, err
			}
		}
		if next < 0 {
			return nil, 0, fmt.Errorf("optimize: stack underflow at pc %d (%v)", pc, ins.Op)
		}
		if next > maxDepth {
			maxDepth = next
		}
		if pc+1 < n {
			if err := visit(pc+1, next); err != nil {
				return nil, 0, err
			}
		}
	}
	return depth, maxDepth, nil
}

// finalizeStats recomputes the pipeline statistics from the final code.
func finalizeStats(op *bytecode.OptProgram) {
	st := bytecode.OptStats{
		OrigInstrs: op.OrigLen,
		OptInstrs:  len(op.Code),
		Patterns:   map[string]int{},
	}
	for _, ins := range op.Code {
		if ins.Op.Fused() {
			st.FusedInstrs++
			st.FusedOrig += int(ins.Len)
			st.Patterns[ins.Op.String()]++
		}
	}
	op.Stats = st
}

package bytecode

import (
	"context"
	"fmt"

	"repro/internal/exec/budget"
	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/core"
	"repro/internal/sem/events"
)

// runLoopOpt executes prog.Opt with the register-lowered hot loop. It
// is observationally identical to runLoop over prog.Code: the same
// machine-environment access sequence per hierarchy, the same clock
// commits at every event point, the same trace and mitigation records,
// and the same final memory. What changes is host cost only: operands
// are predecoded (no map lookups, no label decoding), the evaluation
// stack is a fixed register file (no append/pop slice traffic), fused
// superinstructions cut dispatches, and steady-state hardware accesses
// replay per-site memos (hw.Site) instead of re-walking the cache
// hierarchy.
//
// Cost accounting matches the stack loop's: costs accumulate into a
// local across each (possibly fused) group and commit at the group
// boundary. The stack loop commits after every original instruction,
// but intermediate commits are unobservable — no event, mitigation
// frame, or halt can occur inside a fused group — so the sums agree at
// every observable point. Budget and cancellation checks run per group
// rather than per original instruction, which can move the exact
// failure step of an over-budget run by at most one group; the error
// class and every successful run are unchanged.
func (vm *VM) runLoopOpt(ctx context.Context, b budget.Budget) error {
	o := vm.prog.Opt
	code := o.Code
	regs := vm.regs
	env := vm.env
	senv := vm.senv
	scalars := vm.scalars
	arrays := vm.arrays
	scalarAddr := vm.scalarAddr
	arrayBase := vm.arrayBase
	tree := vm.opts.Timing == TimingTree
	base := vm.opts.BaseCost
	opCost := vm.opts.OpCost
	codeBase := vm.opts.CodeBase
	isize := vm.opts.InstrSize
	stride := vm.opts.CodeStride

	pc := vm.optPC
	er, ew := vm.er, vm.ew
	curNode := vm.curNode
	clock := vm.clock
	steps := vm.steps
	nextPoll := steps + ctxCheckInterval

	// Unlimited budgets and a nil context are folded into sentinels so
	// the per-group guards are one compare each, not a flag test plus a
	// compare.
	maxSteps := b.MaxSteps
	if maxSteps <= 0 {
		maxSteps = int(^uint(0) >> 1)
	}
	maxCycles := b.MaxCycles
	if maxCycles == 0 {
		maxCycles = ^uint64(0)
	}
	if ctx == nil {
		nextPoll = int(^uint(0) >> 1)
	}

	var err error
loop:
	for {
		if steps >= maxSteps {
			err = fmt.Errorf("%w (%d steps)", budget.ErrStepLimit, b.MaxSteps)
			break loop
		}
		if clock > maxCycles {
			err = fmt.Errorf("%w (%d cycles > %d)", budget.ErrCycleLimit, clock, b.MaxCycles)
			break loop
		}
		if steps >= nextPoll {
			nextPoll = steps + ctxCheckInterval
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
				break loop
			}
		}
		if uint(pc) >= uint(len(code)) {
			err = fmt.Errorf("bytecode: pc %d out of range", pc)
			break loop
		}
		ins := &code[pc]
		steps += int(ins.Len)
		pc++

		var cost uint64
		if !tree {
			// Micro model: every original instruction pays base + fetch
			// at its own code address, under the labels in force before
			// the group executes (fused groups never contain SETLBL, and
			// SETLBL itself fetches before updating the register —
			// matching the stack loop exactly).
			org := uint64(ins.OrigPC)
			if senv != nil {
				for k := uint64(0); k < uint64(ins.Len); k++ {
					cost += base + senv.AccessSite(&vm.fetchSites[org+k], hw.Fetch, codeBase+(org+k)*isize, er, ew)
				}
			} else {
				for k := uint64(0); k < uint64(ins.Len); k++ {
					cost += base + env.Access(hw.Fetch, codeBase+(org+k)*isize, er, ew)
				}
			}
		}

		switch ins.Op {
		case ONop:

		case OHalt:
			clock += cost
			vm.clock = clock
			for len(vm.open) > 0 {
				vm.exitMitigation()
			}
			clock = vm.clock
			break loop

		case OSetLbl:
			er, ew = ins.ER, ins.EW
			curNode = ins.Node
			if tree {
				// The command's single fetch, at the AST node's code
				// address, under the command's own labels.
				addr := codeBase + stride*uint64(curNode)
				if senv != nil {
					cost = base + senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Fetch, addr, er, ew)
				} else {
					cost = base + env.Access(hw.Fetch, addr, er, ew)
				}
			}

		case OImm:
			regs[ins.Dst] = ins.Val

		case OLoad:
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, scalarAddr[ins.A], er, ew)
			} else {
				cost += env.Access(hw.Read, scalarAddr[ins.A], er, ew)
			}
			regs[ins.Dst] = scalars[ins.A]

		case OLoadIdx:
			idx := wrap(regs[ins.S1], len(arrays[ins.A]))
			addr := arrayBase[ins.A] + 8*uint64(idx)
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, addr, er, ew)
			} else {
				cost += env.Access(hw.Read, addr, er, ew)
			}
			regs[ins.Dst] = arrays[ins.A][idx]

		case OStore:
			v := regs[ins.S1]
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Write, scalarAddr[ins.A], er, ew)
			} else {
				cost += env.Access(hw.Write, scalarAddr[ins.A], er, ew)
			}
			scalars[ins.A] = v
			clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: vm.prog.ScalarNames[ins.A], Value: v, Time: clock})
			continue

		case OStoreIdx:
			v := regs[ins.S2]
			idx := wrap(regs[ins.S1], len(arrays[ins.A]))
			addr := arrayBase[ins.A] + 8*uint64(idx)
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Write, addr, er, ew)
			} else {
				cost += env.Access(hw.Write, addr, er, ew)
			}
			arrays[ins.A][idx] = v
			clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: o.IdxNames[ins.A][idx], Value: v, Time: clock})
			continue

		case OUnop:
			v := regs[ins.S1]
			switch ins.Kind {
			case token.MINUS:
				regs[ins.Dst] = -v
			case token.NOT:
				if v == 0 {
					regs[ins.Dst] = 1
				} else {
					regs[ins.Dst] = 0
				}
			default:
				err = fmt.Errorf("bytecode: bad unary operator %v", ins.Kind)
				break loop
			}
			if tree {
				cost += opCost
			}

		case OBinop:
			regs[ins.Dst] = binop(ins.Kind, regs[ins.S1], regs[ins.S2])
			if tree {
				cost += opCost
			}

		case OJmp:
			pc = int(ins.A)

		case OJz:
			taken := regs[ins.S1] == 0
			cost += vm.optBranch(tree, taken, curNode, ins, codeBase, isize, stride, er, ew)
			if taken {
				pc = int(ins.A)
			}

		case OSleep:
			if n := regs[ins.S1]; n > 0 {
				cost += uint64(n)
			}

		case OMitEnter:
			init := regs[ins.S1]
			clock += cost
			vm.open = append(vm.open, mitFrame{
				id:    int(ins.A),
				level: ins.ER,
				init:  init,
				start: clock,
			})
			continue

		case OMitExit:
			clock += cost
			if len(vm.open) == 0 {
				err = fmt.Errorf("bytecode: MITEXIT with no open region")
				break loop
			}
			if vm.open[len(vm.open)-1].id != int(ins.A) {
				err = fmt.Errorf("bytecode: mismatched MITEXIT %d", ins.A)
				break loop
			}
			vm.clock = clock
			vm.exitMitigation()
			clock = vm.clock
			continue

		// --- fused superinstructions ---

		case OImmBinop: // PUSH Val; BINOP
			// The hottest arithmetic site: expand the common operators
			// in place (no call, no inline-budget limit inside the loop
			// body). Every branch computes exactly core.EvalBinop's
			// result; the guarded %-case falls back for the operand
			// signs where EvalBinop's zero/overflow rules kick in.
			a, v := regs[ins.S1], ins.Val
			switch ins.Kind {
			case token.PLUS:
				v = a + v
			case token.STAR:
				v = a * v
			case token.PERCENT:
				if v > 0 && a >= 0 {
					v = a % v
				} else {
					v = core.EvalBinop(token.PERCENT, a, v)
				}
			default:
				v = core.EvalBinop(ins.Kind, a, v)
			}
			regs[ins.Dst] = v
			if tree {
				cost += opCost
			}

		case OImmBinop2: // PUSH Val; BINOP Kind; PUSH Val2; BINOP Kind2
			// Two chained immediate operations in one dispatch, each
			// expanded exactly like OImmBinop's arms.
			a := regs[ins.S1]
			v := ins.Val
			switch ins.Kind {
			case token.PLUS:
				a += v
			case token.STAR:
				a *= v
			case token.PERCENT:
				if v > 0 && a >= 0 {
					a %= v
				} else {
					a = core.EvalBinop(token.PERCENT, a, v)
				}
			default:
				a = core.EvalBinop(ins.Kind, a, v)
			}
			v = ins.Val2
			switch ins.Kind2 {
			case token.PLUS:
				a += v
			case token.STAR:
				a *= v
			case token.PERCENT:
				if v > 0 && a >= 0 {
					a %= v
				} else {
					a = core.EvalBinop(token.PERCENT, a, v)
				}
			default:
				a = core.EvalBinop(ins.Kind2, a, v)
			}
			regs[ins.Dst] = a
			if tree {
				cost += opCost * 2
			}

		case OLoadBinop: // LOAD B; BINOP — the load is original pc OrigPC.
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, scalarAddr[ins.B], er, ew)
			} else {
				cost += env.Access(hw.Read, scalarAddr[ins.B], er, ew)
			}
			regs[ins.Dst] = binop(ins.Kind, regs[ins.S1], scalars[ins.B])
			if tree {
				cost += opCost
			}

		case OImmLoadBinop: // PUSH Val; LOAD B; BINOP — the load is OrigPC+1.
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC+1], hw.Read, scalarAddr[ins.B], er, ew)
			} else {
				cost += env.Access(hw.Read, scalarAddr[ins.B], er, ew)
			}
			regs[ins.Dst] = binop(ins.Kind, ins.Val, scalars[ins.B])
			if tree {
				cost += opCost
			}

		case OLoadJz: // LOAD B; JZ — the load is OrigPC.
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, scalarAddr[ins.B], er, ew)
			} else {
				cost += env.Access(hw.Read, scalarAddr[ins.B], er, ew)
			}
			taken := scalars[ins.B] == 0
			cost += vm.optBranch(tree, taken, curNode, ins, codeBase, isize, stride, er, ew)
			if taken {
				pc = int(ins.A)
			}

		case OCmpJz: // BINOP; JZ
			taken := binop(ins.Kind, regs[ins.S1], regs[ins.S2]) == 0
			if tree {
				cost += opCost
			}
			cost += vm.optBranch(tree, taken, curNode, ins, codeBase, isize, stride, er, ew)
			if taken {
				pc = int(ins.A)
			}

		case OImmCmpJz: // PUSH Val; BINOP; JZ
			taken := binop(ins.Kind, regs[ins.S1], ins.Val) == 0
			if tree {
				cost += opCost
			}
			cost += vm.optBranch(tree, taken, curNode, ins, codeBase, isize, stride, er, ew)
			if taken {
				pc = int(ins.A)
			}

		case OLoadCmpJz: // LOAD B; BINOP; JZ — the load is OrigPC.
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, scalarAddr[ins.B], er, ew)
			} else {
				cost += env.Access(hw.Read, scalarAddr[ins.B], er, ew)
			}
			taken := binop(ins.Kind, regs[ins.S1], scalars[ins.B]) == 0
			if tree {
				cost += opCost
			}
			cost += vm.optBranch(tree, taken, curNode, ins, codeBase, isize, stride, er, ew)
			if taken {
				pc = int(ins.A)
			}

		case OImmStore: // PUSH Val; STORE A — the store is OrigPC+1.
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC+1], hw.Write, scalarAddr[ins.A], er, ew)
			} else {
				cost += env.Access(hw.Write, scalarAddr[ins.A], er, ew)
			}
			scalars[ins.A] = ins.Val
			clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: vm.prog.ScalarNames[ins.A], Value: ins.Val, Time: clock})
			continue

		case OLoadStore: // LOAD B; STORE A — load at OrigPC, store at OrigPC+1.
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, scalarAddr[ins.B], er, ew)
			} else {
				cost += env.Access(hw.Read, scalarAddr[ins.B], er, ew)
			}
			v := scalars[ins.B]
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC+1], hw.Write, scalarAddr[ins.A], er, ew)
			} else {
				cost += env.Access(hw.Write, scalarAddr[ins.A], er, ew)
			}
			scalars[ins.A] = v
			clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: vm.prog.ScalarNames[ins.A], Value: v, Time: clock})
			continue

		case OLoadIdxStore: // LOADIDX B; STORE A — load at OrigPC, store at OrigPC+1.
			idx := wrap(regs[ins.S1], len(arrays[ins.B]))
			addr := arrayBase[ins.B] + 8*uint64(idx)
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC], hw.Read, addr, er, ew)
			} else {
				cost += env.Access(hw.Read, addr, er, ew)
			}
			v := arrays[ins.B][idx]
			if senv != nil {
				cost += senv.AccessSite(&vm.dataSites[ins.OrigPC+1], hw.Write, scalarAddr[ins.A], er, ew)
			} else {
				cost += env.Access(hw.Write, scalarAddr[ins.A], er, ew)
			}
			scalars[ins.A] = v
			clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: vm.prog.ScalarNames[ins.A], Value: v, Time: clock})
			continue

		default:
			err = fmt.Errorf("bytecode: unknown optimized opcode %v", ins.Op)
			break loop
		}
		clock += cost
	}

	vm.optPC = pc
	vm.er, vm.ew = er, ew
	vm.curNode = curNode
	vm.clock = clock
	vm.steps = steps
	if err != nil {
		return err
	}
	// HALT drains open mitigation regions; padding may push the clock
	// past the cycle budget, and that still counts (matching runLoop).
	if b.MaxCycles > 0 && vm.clock > b.MaxCycles {
		return fmt.Errorf("%w (%d cycles > %d)", budget.ErrCycleLimit, vm.clock, b.MaxCycles)
	}
	return nil
}

// binop is core.EvalBinop with the operators progen and the example
// corpus emit most often peeled into an inlinable prefix; every result
// is identical to core.EvalBinop's (the fallback IS core.EvalBinop).
// The full switch is too large for the inliner, and the call overhead
// is measurable at one call per arithmetic superinstruction.
func binop(k token.Kind, a, b int64) int64 {
	if k == token.PLUS {
		return a + b
	}
	if k == token.STAR {
		return a * b
	}
	return core.EvalBinop(k, a, b)
}

// optBranch charges the branch cost of a (possibly fused) JZ exactly as
// the stack loop does: the tree model charges at the current command's
// code address with full's taken polarity (condition true, i.e.
// !taken); the micro model charges at the JZ's own original code
// address with the jump polarity. Branch predictor state changes on
// every call, so there is no memoized path.
func (vm *VM) optBranch(tree, taken bool, curNode int64, ins *OptInstr, codeBase, isize, stride uint64, er, ew lattice.Label) uint64 {
	if tree {
		return vm.env.Branch(codeBase+stride*uint64(curNode), !taken, er, ew)
	}
	jzPC := uint64(ins.OrigPC) + uint64(ins.Len) - 1
	return vm.env.Branch(codeBase+jzPC*isize, taken, er, ew)
}

// Package bytecode implements the compilation half of the paper's §8.2:
// a small stack-machine ISA with an explicit timing-label register, a
// compiler from the timing-channel language into it, and a virtual
// machine that executes the bytecode against the same machine-
// environment contract (hw.Env) as the tree-walking full semantics.
//
// The ISA makes the software→hardware interface concrete: the compiler
// inserts SETLBL instructions before each command block, modeling the
// paper's "new register ... added as an interface to communicate the
// timing label from the software to the hardware"; every instruction
// fetch and data access the VM performs carries the current register
// value. Because the VM fetches one instruction at a time, its
// instruction-cache behaviour is finer-grained than the tree-walker's
// one-fetch-per-command model — demonstrating that the contract admits
// multiple language implementations with different timing, all secure.
package bytecode

import (
	"fmt"
	"strings"

	"repro/internal/lang/token"
	"repro/internal/lattice"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Operand meanings are noted per opcode; A and B are the
// instruction's integer operands.
const (
	// OpNop does nothing (alignment/padding).
	OpNop Op = iota
	// OpSetLbl sets the timing-label register: A = read label ID,
	// B = write label ID.
	OpSetLbl
	// OpPush pushes the immediate A onto the evaluation stack.
	OpPush
	// OpLoad pushes the scalar variable numbered A.
	OpLoad
	// OpLoadIdx pops an index and pushes element [idx] of array A.
	OpLoadIdx
	// OpStore pops a value into scalar A and emits an observable event.
	OpStore
	// OpStoreIdx pops a value, then an index, and stores into array A.
	OpStoreIdx
	// OpUnop applies unary operator A (a token.Kind) to the stack top.
	OpUnop
	// OpBinop pops y then x and pushes x ⟨A⟩ y (A is a token.Kind).
	OpBinop
	// OpJmp jumps to instruction A.
	OpJmp
	// OpJz pops a value and jumps to A if it is zero.
	OpJz
	// OpSleep pops n and advances the clock by max(n, 0).
	OpSleep
	// OpMitEnter pops the initial prediction and opens mitigation
	// region A (the mitigate identifier) at level B (a label ID).
	OpMitEnter
	// OpMitExit closes mitigation region A: penalize and pad.
	OpMitExit
	// OpHalt stops execution.
	OpHalt
)

var opNames = map[Op]string{
	OpNop: "NOP", OpSetLbl: "SETLBL", OpPush: "PUSH",
	OpLoad: "LOAD", OpLoadIdx: "LOADIDX", OpStore: "STORE", OpStoreIdx: "STOREIDX",
	OpUnop: "UNOP", OpBinop: "BINOP", OpJmp: "JMP", OpJz: "JZ",
	OpSleep: "SLEEP", OpMitEnter: "MITENTER", OpMitExit: "MITEXIT", OpHalt: "HALT",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one instruction.
type Instr struct {
	Op Op
	A  int64
	B  int64
	// C is instruction metadata: for OpSetLbl it records the AST node
	// ID of the source command the label write belongs to, which the
	// tree-compatible timing model uses to charge the command's fetch
	// and branch costs at the same code address as the tree-walking
	// semantics. It is not shown in disassembly.
	C int64
}

// String disassembles one instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpHalt, OpSleep:
		return i.Op.String()
	case OpUnop, OpBinop:
		return fmt.Sprintf("%s %s", i.Op, token.Kind(i.A))
	case OpSetLbl, OpMitEnter:
		return fmt.Sprintf("%s %d %d", i.Op, i.A, i.B)
	default:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	}
}

// Program is a compiled bytecode program.
type Program struct {
	Code []Instr
	// ScalarNames and ArrayNames map the compiler's variable numbers
	// back to source names (for events and debugging).
	ScalarNames []string
	ArrayNames  []string
	// ArraySizes gives each array's element count, parallel to
	// ArrayNames.
	ArraySizes []int64
	// ScalarOffsets and ArrayOffsets give each variable's byte offset
	// from the VM's DataBase, parallel to ScalarNames/ArrayNames. The
	// compiler assigns them in declaration order, matching
	// mem.NewLayout, so the VM's data accesses hit the same addresses
	// as the tree-walking semantics. Programs without offsets (hand
	// built, or decoded from the v1 wire format) fall back to the VM's
	// legacy scalars-then-arrays assignment.
	ScalarOffsets []uint64
	ArrayOffsets  []uint64
	// Lat is the lattice the label IDs in SETLBL/MITENTER refer to.
	Lat lattice.Lattice
	// NumMitigates is one past the largest mitigate identifier.
	NumMitigates int
	// Opt, when non-nil, is the optimized form produced by
	// internal/bytecode/optimize; a VM constructed over this program
	// executes it with the register-lowered hot loop instead of the
	// stack interpreter, with bit-identical observable behaviour. It is
	// derived state: the wire encoding ignores it, and the exec-layer
	// program cache attaches it per optimization level.
	Opt *OptProgram
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, ins := range p.Code {
		fmt.Fprintf(&b, "%4d  %s\n", i, ins)
	}
	return b.String()
}

package bytecode

import (
	"strings"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/core"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

func compileSrc(t *testing.T, src string, lat lattice.Lattice) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

func TestCompileStructure(t *testing.T) {
	bc := compileSrc(t, `
var h : H;
var l : L;
l := 1;
mitigate (8, H) [L,L] { sleep(h) [H,H]; }
l := 2;
`, lattice.TwoPoint())
	dis := bc.Disassemble()
	for _, want := range []string{"SETLBL", "PUSH", "STORE", "MITENTER", "MITEXIT", "SLEEP", "HALT"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %s:\n%s", want, dis)
		}
	}
	// Labels flip to H (id 1) for the sleep and back for the last
	// store: at least two distinct SETLBL operand patterns appear.
	if !strings.Contains(dis, "SETLBL 0 0") || !strings.Contains(dis, "SETLBL 1 1") {
		t.Errorf("label register writes missing:\n%s", dis)
	}
	if bc.NumMitigates != 1 {
		t.Error("NumMitigates")
	}
}

func TestVMBasicExecution(t *testing.T) {
	bc := compileSrc(t, `
var x : L;
var y : L;
x := 6;
y := x * 7;
`, lattice.TwoPoint())
	vm := NewVM(bc, hw.NewFlat(lattice.TwoPoint(), 2), VMOptions{})
	if err := vm.Run(1000); err != nil {
		t.Fatal(err)
	}
	if v, _ := vm.Scalar("y"); v != 42 {
		t.Errorf("y = %d", v)
	}
	if vm.Clock() == 0 || vm.Steps() == 0 {
		t.Error("clock/steps should advance")
	}
	if _, err := vm.Scalar("zzz"); err == nil {
		t.Error("unknown scalar")
	}
	if err := vm.SetScalar("zzz", 1); err == nil {
		t.Error("unknown scalar set")
	}
	if err := vm.SetArrayEl("zzz", 0, 1); err == nil {
		t.Error("unknown array set")
	}
}

func TestVMControlFlow(t *testing.T) {
	bc := compileSrc(t, `
var n : L;
var f : L;
var i : L;
f := 1;
i := 1;
while (i <= n) {
    f := f * i;
    i := i + 1;
}
if (f > 100) { n := 1; } else { n := 0; }
`, lattice.TwoPoint())
	vm := NewVM(bc, hw.NewFlat(lattice.TwoPoint(), 1), VMOptions{})
	if err := vm.SetScalar("n", 5); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(10000); err != nil {
		t.Fatal(err)
	}
	if f, _ := vm.Scalar("f"); f != 120 {
		t.Errorf("5! = %d", f)
	}
	if n, _ := vm.Scalar("n"); n != 1 {
		t.Errorf("branch result = %d", n)
	}
}

func TestVMArrays(t *testing.T) {
	bc := compileSrc(t, `
array a[8] : L;
var i : L;
var s : L;
while (i < 8) {
    a[i] := i * i;
    i := i + 1;
}
s := a[3] + a[7];
`, lattice.TwoPoint())
	vm := NewVM(bc, hw.NewFlat(lattice.TwoPoint(), 1), VMOptions{})
	if err := vm.Run(10000); err != nil {
		t.Fatal(err)
	}
	if s, _ := vm.Scalar("s"); s != 58 {
		t.Errorf("s = %d", s)
	}
	// Events include array stores with wrapped indices.
	found := false
	for _, e := range vm.Trace() {
		if e.Var == "a[3]" && e.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("trace missing a[3]: %v", vm.Trace())
	}
}

// Value adequacy: the VM computes the same final memory and the same
// event values as the core semantics, over generated programs.
func TestVMValueAdequacy(t *testing.T) {
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 15; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 1100 + seed, AllowMitigate: true, AllowSleep: true, MaxDepth: 4,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Compile(prog, res)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		// Core run.
		ck := core.New(prog, mem.New(prog))
		if err := ck.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		// VM run.
		vm := NewVM(bc, hw.NewPartitioned(lat, hw.TinyConfig()), VMOptions{})
		if err := vm.Run(20_000_000); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if !vm.Trace().ValuesEqual(ck.Trace()) {
			t.Fatalf("seed %d: event values differ\ncore: %v\nvm:   %v\n%s",
				seed, ck.Trace(), vm.Trace(), src)
		}
		// Final scalars agree.
		for _, d := range prog.Decls {
			if d.IsArray {
				continue
			}
			v, err := vm.Scalar(d.Name)
			if err != nil {
				t.Fatal(err)
			}
			if v != ck.Memory().Get(d.Name) {
				t.Fatalf("seed %d: %s = %d (vm) vs %d (core)", seed, d.Name, v, ck.Memory().Get(d.Name))
			}
		}
	}
}

// The VM's mitigated timing is secret-independent, just like the
// tree-walker's — the contract survives a change of implementation.
func TestVMMitigatedTimingConstant(t *testing.T) {
	lat := lattice.TwoPoint()
	bc := compileSrc(t, `
var h : H;
var done : L;
mitigate (2048, H) [L,L] {
    sleep(h) [H,H];
}
done := 1;
`, lat)
	timeOf := func(h int64) uint64 {
		vm := NewVM(bc, hw.NewPartitioned(lat, hw.Table1Config()), VMOptions{})
		if err := vm.SetScalar("h", h); err != nil {
			t.Fatal(err)
		}
		if err := vm.Run(100000); err != nil {
			t.Fatal(err)
		}
		if len(vm.Trace()) != 1 {
			t.Fatal("expected one event")
		}
		return vm.Trace()[0].Time
	}
	t1, t2, t3 := timeOf(3), timeOf(500), timeOf(1500)
	if t1 != t2 || t2 != t3 {
		t.Errorf("mitigated VM times differ: %d %d %d", t1, t2, t3)
	}
}

func TestVMUnmitigatedTimingLeaks(t *testing.T) {
	lat := lattice.TwoPoint()
	bc := compileSrc(t, `
var h : H;
var done : L;
mitigate (2048, H) [L,L] { sleep(h) [H,H]; }
done := 1;
`, lat)
	timeOf := func(h int64) uint64 {
		vm := NewVM(bc, hw.NewFlat(lat, 2), VMOptions{DisableMitigation: true})
		vm.SetScalar("h", h)
		if err := vm.Run(100000); err != nil {
			t.Fatal(err)
		}
		return vm.Clock()
	}
	if timeOf(10) == timeOf(500) {
		t.Error("unmitigated VM timing should depend on the secret")
	}
}

func TestVMDeterminism(t *testing.T) {
	lat := lattice.TwoPoint()
	prog, res, _, err := progen.GenerateTyped(progen.Config{
		Lat: lat, Seed: 77, AllowMitigate: true, AllowSleep: true,
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (uint64, string) {
		vm := NewVM(bc, hw.NewPartitioned(lat, hw.TinyConfig()), VMOptions{})
		if err := vm.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return vm.Clock(), vm.Trace().Key()
	}
	c1, k1 := run()
	c2, k2 := run()
	if c1 != c2 || k1 != k2 {
		t.Error("VM must be deterministic")
	}
}

// The VM's finer instruction-fetch granularity yields different (but
// still deterministic and secure) timing from the tree-walker: code
// layout is part of the language implementation.
func TestVMTimingDiffersFromTreeWalker(t *testing.T) {
	lat := lattice.TwoPoint()
	src := "var x : L; var i : L; while (i < 10) { x := x + i; i := i + 1; }"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(bc, hw.NewPartitioned(lat, hw.Table1Config()), VMOptions{})
	if err := vm.Run(100000); err != nil {
		t.Fatal(err)
	}
	if vm.Steps() <= 12 {
		t.Errorf("VM executes more, finer steps than the %d-step tree walk", 12)
	}
}

func TestCompileRejectsUnresolvedLabels(t *testing.T) {
	prog, err := parser.Parse("var l : L; l := 1;")
	if err != nil {
		t.Fatal(err)
	}
	res := &types.Result{Lat: lattice.TwoPoint()}
	if _, err := Compile(prog, res); err == nil {
		t.Error("expected unresolved-label error")
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"HALT":       {Op: OpHalt},
		"PUSH 7":     {Op: OpPush, A: 7},
		"SETLBL 0 1": {Op: OpSetLbl, A: 0, B: 1},
		"BINOP +":    {Op: OpBinop, A: int64(token.PLUS)},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if Op(200).String() == "" {
		t.Error("unknown op should print")
	}
}

package bytecode

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/types"
)

// FuzzDecode feeds arbitrary bytes to the bytecode decoder. The
// contract under attack: Decode must return a typed error for any
// malformed image — never panic, never hang, never hand back a program
// that fails validation — and any image it does accept must round-trip
// (decode → encode → decode is a fixpoint), since accepted programs are
// executed without further structural checks.
func FuzzDecode(f *testing.F) {
	lat := lattice.TwoPoint()

	// Seed the corpus with structured prefixes and one real compiled
	// program, so the fuzzer starts at the interesting boundaries
	// instead of rediscovering the magic number.
	f.Add([]byte{})
	f.Add([]byte("TCBC"))
	f.Add([]byte("TCBC\x01"))
	f.Add([]byte("TCBC\x02"))
	f.Add([]byte("TCBC\x03"))
	f.Add([]byte("XXXX\x02"))
	prog, err := parser.Parse(`
var h : H;
array a[4] : L;
mitigate (1, H) [L,L] {
    sleep(h % 8) [H,H];
}
a[0] := 1;
`)
	if err != nil {
		f.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		f.Fatal(err)
	}
	bp, err := Compile(prog, res)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bp.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(bytes.NewReader(data), lat)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Accepted images must satisfy the validator's own invariants...
		if verr := p.validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid program: %v", verr)
		}
		// ...and re-encode to an image that decodes to the same program.
		var out bytes.Buffer
		if err := p.Encode(&out); err != nil {
			t.Fatalf("re-encoding accepted program: %v", err)
		}
		p2, err := Decode(bytes.NewReader(out.Bytes()), lat)
		if err != nil {
			t.Fatalf("re-decoding re-encoded program: %v", err)
		}
		// Offsets may be materialized by the round-trip (legacy v1 images
		// decode without them; Encode synthesizes the equivalent layout),
		// so compare the programs after normalizing both to explicit
		// offsets.
		normalize(p)
		normalize(p2)
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round-trip mismatch:\n first: %+v\nsecond: %+v", p, p2)
		}
	})
}

// normalize materializes implicit (legacy) data offsets so programs can
// be compared structurally.
func normalize(p *Program) {
	if len(p.ScalarOffsets) != len(p.ScalarNames) {
		p.ScalarOffsets = nil
		for i := range p.ScalarNames {
			p.ScalarOffsets = append(p.ScalarOffsets, p.scalarOffset(i))
		}
	}
	if len(p.ArrayOffsets) != len(p.ArrayNames) {
		p.ArrayOffsets = nil
		for i := range p.ArrayNames {
			p.ArrayOffsets = append(p.ArrayOffsets, p.arrayOffset(i))
		}
	}
}

package bytecode

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/lattice"
)

// Binary serialization of compiled programs, so bytecode can be built
// once and shipped/executed separately (timingc compile -o / -exec-file
// workflows). The format is a small tagged container:
//
//	magic "TCBC" | version u8 | lattice name | mitigates uvarint
//	scalars: count + names (v2: + offset uvarint each)
//	arrays: count + (name, size) pairs (v2: + offset uvarint each)
//	code: count + (op u8, A varint, B varint) triples
//	      (v2: SETLBL additionally carries C varint, the AST node ID)
//
// Strings are uvarint-length-prefixed UTF-8. Labels inside SETLBL and
// MITENTER operands are lattice element IDs; Decode therefore needs the
// same lattice, which is recorded by name and validated.
//
// Version 2 added the declaration-order data offsets and SETLBL node
// IDs that the VM's tree-compatible timing model needs; Decode still
// accepts version 1, yielding a program that runs under TimingMicro
// with the legacy address assignment.

const (
	encodeMagic   = "TCBC"
	encodeVersion = 2
)

// Encode writes the program to w.
func (p *Program) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(encodeMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(encodeVersion); err != nil {
		return err
	}
	writeString := func(s string) {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], uint64(len(s)))
		bw.Write(buf[:n])
		bw.WriteString(s)
	}
	writeUvarint := func(v uint64) {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	writeVarint := func(v int64) {
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v)
		bw.Write(buf[:n])
	}
	writeString(p.Lat.Name())
	writeUvarint(uint64(p.NumMitigates))
	writeUvarint(uint64(len(p.ScalarNames)))
	for i, s := range p.ScalarNames {
		writeString(s)
		writeUvarint(p.scalarOffset(i))
	}
	writeUvarint(uint64(len(p.ArrayNames)))
	for i, s := range p.ArrayNames {
		writeString(s)
		writeUvarint(uint64(p.ArraySizes[i]))
		writeUvarint(p.arrayOffset(i))
	}
	writeUvarint(uint64(len(p.Code)))
	for _, ins := range p.Code {
		bw.WriteByte(byte(ins.Op))
		writeVarint(ins.A)
		writeVarint(ins.B)
		if ins.Op == OpSetLbl {
			writeVarint(ins.C)
		}
	}
	return bw.Flush()
}

// scalarOffset and arrayOffset reconstruct legacy scalars-then-arrays
// offsets when a program has none, so every v2 image round-trips with
// offsets and re-decoding preserves the addresses the program would
// have used.
func (p *Program) scalarOffset(i int) uint64 {
	if len(p.ScalarOffsets) == len(p.ScalarNames) {
		return p.ScalarOffsets[i]
	}
	return 8 * uint64(i)
}

func (p *Program) arrayOffset(i int) uint64 {
	if len(p.ArrayOffsets) == len(p.ArrayNames) {
		return p.ArrayOffsets[i]
	}
	off := 8 * uint64(len(p.ScalarNames))
	for j := 0; j < i; j++ {
		off += 8 * uint64(p.ArraySizes[j])
	}
	return off
}

// Decode reads a program from r. The caller supplies the lattice the
// program was compiled against; its name must match the recorded one.
func Decode(r io.Reader, lat lattice.Lattice) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(encodeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("bytecode: reading magic: %w", err)
	}
	if string(magic) != encodeMagic {
		return nil, fmt.Errorf("bytecode: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != 1 && ver != encodeVersion {
		return nil, fmt.Errorf("bytecode: unsupported version %d", ver)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("bytecode: string length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	latName, err := readString()
	if err != nil {
		return nil, err
	}
	if latName != lat.Name() {
		return nil, fmt.Errorf("bytecode: compiled for lattice %q, decoding with %q", latName, lat.Name())
	}
	p := &Program{Lat: lat}
	mits, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	p.NumMitigates = int(mits)
	nScalars, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nScalars > 1<<20 {
		return nil, fmt.Errorf("bytecode: scalar count %d too large", nScalars)
	}
	for i := uint64(0); i < nScalars; i++ {
		s, err := readString()
		if err != nil {
			return nil, err
		}
		p.ScalarNames = append(p.ScalarNames, s)
		if ver >= 2 {
			off, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			p.ScalarOffsets = append(p.ScalarOffsets, off)
		}
	}
	nArrays, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nArrays > 1<<20 {
		return nil, fmt.Errorf("bytecode: array count %d too large", nArrays)
	}
	for i := uint64(0); i < nArrays; i++ {
		s, err := readString()
		if err != nil {
			return nil, err
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if size == 0 || size > 1<<30 {
			return nil, fmt.Errorf("bytecode: array %q size %d out of range", s, size)
		}
		p.ArrayNames = append(p.ArrayNames, s)
		p.ArraySizes = append(p.ArraySizes, int64(size))
		if ver >= 2 {
			off, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			p.ArrayOffsets = append(p.ArrayOffsets, off)
		}
	}
	nCode, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nCode > 1<<24 {
		return nil, fmt.Errorf("bytecode: code length %d too large", nCode)
	}
	for i := uint64(0); i < nCode; i++ {
		op, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		a, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		b, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		var c int64
		if ver >= 2 && Op(op) == OpSetLbl {
			c, err = binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
		}
		p.Code = append(p.Code, Instr{Op: Op(op), A: a, B: b, C: c})
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validate performs structural checks on a decoded program so a
// corrupted file fails fast instead of panicking mid-execution.
func (p *Program) validate() error {
	n := int64(len(p.Code))
	levels := int64(p.Lat.Size())
	for i, ins := range p.Code {
		switch ins.Op {
		case OpJmp, OpJz:
			if ins.A < 0 || ins.A > n {
				return fmt.Errorf("bytecode: instr %d: jump target %d out of range", i, ins.A)
			}
		case OpLoad, OpStore:
			if ins.A < 0 || ins.A >= int64(len(p.ScalarNames)) {
				return fmt.Errorf("bytecode: instr %d: scalar %d out of range", i, ins.A)
			}
		case OpLoadIdx, OpStoreIdx:
			if ins.A < 0 || ins.A >= int64(len(p.ArrayNames)) {
				return fmt.Errorf("bytecode: instr %d: array %d out of range", i, ins.A)
			}
		case OpSetLbl:
			if ins.A < 0 || ins.A >= levels || ins.B < 0 || ins.B >= levels {
				return fmt.Errorf("bytecode: instr %d: label id out of range", i)
			}
			if ins.C < 0 {
				return fmt.Errorf("bytecode: instr %d: negative node id %d", i, ins.C)
			}
		case OpMitEnter:
			if ins.B < 0 || ins.B >= levels {
				return fmt.Errorf("bytecode: instr %d: mitigation level out of range", i)
			}
		}
	}
	return nil
}

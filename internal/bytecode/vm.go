package bytecode

import (
	"errors"
	"fmt"

	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/core"
	"repro/internal/sem/events"
)

// ErrStepLimit is returned by Run when the instruction budget runs out.
var ErrStepLimit = errors.New("bytecode: instruction limit exceeded")

// VMOptions configure the virtual machine's timing model.
type VMOptions struct {
	// BaseCost is the fixed per-instruction cost; default 1.
	BaseCost uint64
	// CodeBase is the address of instruction 0; default 0x400000.
	CodeBase uint64
	// InstrSize is the encoded size of one instruction in bytes
	// (controls instruction-cache behaviour); default 4.
	InstrSize uint64
	// DataBase is the address of the data segment; default 0x10000.
	DataBase uint64
	// Scheme and Policy configure predictive mitigation; defaults are
	// FastDoubling and PerLevel.
	Scheme mitigation.Scheme
	Policy mitigation.Policy
	// DisableMitigation makes MITENTER/MITEXIT record but not pad.
	DisableMitigation bool
}

func (o VMOptions) withDefaults() VMOptions {
	if o.BaseCost == 0 {
		o.BaseCost = 1
	}
	if o.CodeBase == 0 {
		o.CodeBase = 0x400000
	}
	if o.InstrSize == 0 {
		o.InstrSize = 4
	}
	if o.DataBase == 0 {
		o.DataBase = 0x10000
	}
	if o.Scheme == nil {
		o.Scheme = mitigation.FastDoubling{}
	}
	return o
}

// mitFrame tracks one open mitigation region.
type mitFrame struct {
	id    int
	level lattice.Label
	init  int64
	start uint64
}

// VM executes a bytecode program against a machine environment. It is
// an alternative language implementation: same observable values as the
// tree-walking semantics (value adequacy), different — finer-grained —
// timing, still governed by the same label contract.
type VM struct {
	prog *Program
	opts VMOptions
	env  hw.Env

	pc      int
	stack   []int64
	scalars []int64
	arrays  [][]int64
	// arrayBase[i] is the data address of array i's first element.
	arrayBase  []uint64
	scalarAddr []uint64

	// er/ew mirror the timing-label register.
	er, ew lattice.Label

	clock  uint64
	steps  int
	trace  events.Trace
	mits   events.MitTrace
	mstate *mitigation.State
	open   []mitFrame
}

// NewVM creates a VM for a compiled program.
func NewVM(prog *Program, env hw.Env, opts VMOptions) *VM {
	opts = opts.withDefaults()
	vm := &VM{
		prog:    prog,
		opts:    opts,
		env:     env,
		scalars: make([]int64, len(prog.ScalarNames)),
		arrays:  make([][]int64, len(prog.ArrayNames)),
		er:      prog.Lat.Bot(),
		ew:      prog.Lat.Bot(),
		mstate:  mitigation.NewState(prog.Lat, opts.Scheme, opts.Policy),
	}
	next := opts.DataBase
	vm.scalarAddr = make([]uint64, len(prog.ScalarNames))
	for i := range prog.ScalarNames {
		vm.scalarAddr[i] = next
		next += 8
	}
	vm.arrayBase = make([]uint64, len(prog.ArrayNames))
	for i, n := range prog.ArraySizes {
		vm.arrays[i] = make([]int64, n)
		vm.arrayBase[i] = next
		next += 8 * uint64(n)
	}
	return vm
}

// SetScalar sets an input variable by source name.
func (vm *VM) SetScalar(name string, v int64) error {
	for i, n := range vm.prog.ScalarNames {
		if n == name {
			vm.scalars[i] = v
			return nil
		}
	}
	return fmt.Errorf("bytecode: no scalar %q", name)
}

// Scalar reads a variable by source name.
func (vm *VM) Scalar(name string) (int64, error) {
	for i, n := range vm.prog.ScalarNames {
		if n == name {
			return vm.scalars[i], nil
		}
	}
	return 0, fmt.Errorf("bytecode: no scalar %q", name)
}

// SetArrayEl sets one array element by source name.
func (vm *VM) SetArrayEl(name string, idx, v int64) error {
	for i, n := range vm.prog.ArrayNames {
		if n == name {
			vm.arrays[i][wrap(idx, len(vm.arrays[i]))] = v
			return nil
		}
	}
	return fmt.Errorf("bytecode: no array %q", name)
}

// Clock returns the global time in cycles.
func (vm *VM) Clock() uint64 { return vm.clock }

// Steps returns the number of instructions executed.
func (vm *VM) Steps() int { return vm.steps }

// Trace returns the observable assignment events.
func (vm *VM) Trace() events.Trace { return vm.trace }

// Mitigations returns the completed mitigation records.
func (vm *VM) Mitigations() events.MitTrace { return vm.mits }

func wrap(i int64, n int) int64 {
	if n <= 0 {
		panic("bytecode: empty array")
	}
	r := i % int64(n)
	if r < 0 {
		r += int64(n)
	}
	return r
}

func (vm *VM) push(v int64) { vm.stack = append(vm.stack, v) }

func (vm *VM) pop() int64 {
	if len(vm.stack) == 0 {
		panic("bytecode: stack underflow (miscompiled program)")
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v
}

// Run executes until HALT or the instruction budget is exhausted.
func (vm *VM) Run(maxInstrs int) error {
	for vm.steps < maxInstrs {
		if vm.pc < 0 || vm.pc >= len(vm.prog.Code) {
			return fmt.Errorf("bytecode: pc %d out of range", vm.pc)
		}
		ins := vm.prog.Code[vm.pc]
		vm.steps++
		cost := vm.opts.BaseCost
		cost += vm.env.Access(hw.Fetch, vm.opts.CodeBase+uint64(vm.pc)*vm.opts.InstrSize, vm.er, vm.ew)
		vm.pc++

		switch ins.Op {
		case OpNop:
		case OpHalt:
			vm.clock += cost
			// Close any regions left open by a miscompiled program.
			for len(vm.open) > 0 {
				vm.exitMitigation()
			}
			return nil
		case OpSetLbl:
			vm.er = vm.label(ins.A)
			vm.ew = vm.label(ins.B)
		case OpPush:
			vm.push(ins.A)
		case OpLoad:
			cost += vm.env.Access(hw.Read, vm.scalarAddr[ins.A], vm.er, vm.ew)
			vm.push(vm.scalars[ins.A])
		case OpLoadIdx:
			idx := wrap(vm.pop(), len(vm.arrays[ins.A]))
			cost += vm.env.Access(hw.Read, vm.arrayBase[ins.A]+8*uint64(idx), vm.er, vm.ew)
			vm.push(vm.arrays[ins.A][idx])
		case OpStore:
			v := vm.pop()
			cost += vm.env.Access(hw.Write, vm.scalarAddr[ins.A], vm.er, vm.ew)
			vm.scalars[ins.A] = v
			vm.clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: vm.prog.ScalarNames[ins.A], Value: v, Time: vm.clock})
			continue
		case OpStoreIdx:
			v := vm.pop()
			idx := wrap(vm.pop(), len(vm.arrays[ins.A]))
			cost += vm.env.Access(hw.Write, vm.arrayBase[ins.A]+8*uint64(idx), vm.er, vm.ew)
			vm.arrays[ins.A][idx] = v
			vm.clock += cost
			vm.trace = append(vm.trace, events.Event{
				Var: fmt.Sprintf("%s[%d]", vm.prog.ArrayNames[ins.A], idx), Value: v, Time: vm.clock})
			continue
		case OpUnop:
			v := vm.pop()
			switch token.Kind(ins.A) {
			case token.MINUS:
				vm.push(-v)
			case token.NOT:
				if v == 0 {
					vm.push(1)
				} else {
					vm.push(0)
				}
			default:
				return fmt.Errorf("bytecode: bad unary operator %v", token.Kind(ins.A))
			}
		case OpBinop:
			y := vm.pop()
			x := vm.pop()
			vm.push(core.EvalBinop(token.Kind(ins.A), x, y))
		case OpJmp:
			vm.pc = int(ins.A)
		case OpJz:
			taken := vm.pop() == 0
			cost += vm.env.Branch(vm.opts.CodeBase+uint64(vm.pc-1)*vm.opts.InstrSize,
				taken, vm.er, vm.ew)
			if taken {
				vm.pc = int(ins.A)
			}
		case OpSleep:
			if n := vm.pop(); n > 0 {
				cost += uint64(n)
			}
		case OpMitEnter:
			init := vm.pop()
			vm.clock += cost
			vm.open = append(vm.open, mitFrame{
				id:    int(ins.A),
				level: vm.label(ins.B),
				init:  init,
				start: vm.clock,
			})
			continue
		case OpMitExit:
			vm.clock += cost
			if len(vm.open) == 0 {
				return fmt.Errorf("bytecode: MITEXIT with no open region")
			}
			if vm.open[len(vm.open)-1].id != int(ins.A) {
				return fmt.Errorf("bytecode: mismatched MITEXIT %d", ins.A)
			}
			vm.exitMitigation()
			continue
		default:
			return fmt.Errorf("bytecode: unknown opcode %v", ins.Op)
		}
		vm.clock += cost
	}
	return fmt.Errorf("%w (%d instructions)", ErrStepLimit, vm.steps)
}

// exitMitigation closes the innermost region: penalize and pad exactly
// as the tree-walking semantics does.
func (vm *VM) exitMitigation() {
	f := vm.open[len(vm.open)-1]
	vm.open = vm.open[:len(vm.open)-1]
	elapsed := vm.clock - f.start
	if vm.opts.DisableMitigation {
		vm.mits = append(vm.mits, events.MitRecord{
			ID: f.id, Duration: elapsed, Elapsed: elapsed, Start: f.start})
		return
	}
	pred, missed := vm.mstate.Penalize(f.init, f.level, f.id, elapsed)
	if pred > elapsed {
		vm.clock = f.start + pred
	}
	vm.mits = append(vm.mits, events.MitRecord{
		ID: f.id, Duration: vm.clock - f.start, Elapsed: elapsed,
		Start: f.start, Mispredicted: missed,
	})
}

func (vm *VM) label(id int64) lattice.Label {
	levels := vm.prog.Lat.Levels()
	for _, l := range levels {
		if int64(l.ID()) == id {
			return l
		}
	}
	panic(fmt.Sprintf("bytecode: bad label id %d", id))
}

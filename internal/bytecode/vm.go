package bytecode

import (
	"context"
	"fmt"

	"repro/internal/exec/budget"
	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/sem/core"
	"repro/internal/sem/events"
	"repro/internal/sem/mem"
)

// ErrStepLimit is returned by Run when the instruction budget runs out.
//
// Deprecated: it is now an alias for the engine-shared
// budget.ErrStepLimit, so errors.Is matches across engines; match that
// sentinel directly in new code.
var ErrStepLimit = budget.ErrStepLimit

// ErrCycleLimit is returned by RunBudget when the cycle budget runs
// out. It is an alias for the engine-shared budget.ErrCycleLimit.
var ErrCycleLimit = budget.ErrCycleLimit

// TimingModel selects the VM's cost model.
type TimingModel int

const (
	// TimingMicro charges BaseCost plus an instruction fetch for every
	// bytecode instruction — the finer-grained model described in the
	// package comment, demonstrating that the label contract admits
	// implementations with different timing.
	TimingMicro TimingModel = iota
	// TimingTree reproduces the tree-walking semantics' cost model
	// exactly: one BaseCost plus a command fetch per SETLBL (one per
	// language-level step, at mem.Layout's code address for the
	// command's AST node), OpCost per operator, and the branch charge
	// at the command's code address with full's taken polarity
	// (condition true). Run on the same environment with a program
	// compiled by this package (which records layout-compatible data
	// offsets), traces are identical to sem/full's, times included.
	TimingTree
)

// VMOptions configure the virtual machine's timing model.
type VMOptions struct {
	// BaseCost is the fixed per-instruction cost (per-command under
	// TimingTree); default 1 unless CostSet.
	BaseCost uint64
	// OpCost is the per-operator cost charged by TimingTree for unary
	// and binary operators, matching full.Options.OpCost; default 1
	// unless CostSet. TimingMicro folds operator cost into the
	// per-instruction BaseCost and ignores it.
	OpCost uint64
	// CostSet, when true, takes BaseCost and OpCost literally — an
	// explicit zero is honored instead of selecting the default of 1.
	CostSet bool
	// CodeBase is the address of instruction 0; default 0x400000.
	CodeBase uint64
	// InstrSize is the encoded size of one instruction in bytes
	// (controls instruction-cache behaviour); default 4.
	InstrSize uint64
	// CodeStride is the code-address stride per AST node used by
	// TimingTree, matching mem.LayoutConfig.CodeStride; default 16.
	CodeStride uint64
	// DataBase is the address of the data segment; default 0x10000.
	DataBase uint64
	// Timing selects the cost model; default TimingMicro.
	Timing TimingModel
	// Scheme and Policy configure predictive mitigation; defaults are
	// FastDoubling and PerLevel.
	Scheme mitigation.Scheme
	Policy mitigation.Policy
	// DisableMitigation makes MITENTER/MITEXIT record but not pad.
	DisableMitigation bool
	// Metrics, when non-nil, receives instrumentation (instructions,
	// cycles, padding, mitigation outcomes). Recording is
	// observational only and never changes execution or simulated
	// time.
	Metrics *obs.Metrics
}

func (o VMOptions) withDefaults() VMOptions {
	if !o.CostSet {
		if o.BaseCost == 0 {
			o.BaseCost = 1
		}
		if o.OpCost == 0 {
			o.OpCost = 1
		}
	}
	if o.CodeBase == 0 {
		o.CodeBase = 0x400000
	}
	if o.InstrSize == 0 {
		o.InstrSize = 4
	}
	if o.CodeStride == 0 {
		o.CodeStride = 16
	}
	if o.DataBase == 0 {
		o.DataBase = 0x10000
	}
	if o.Scheme == nil {
		o.Scheme = mitigation.FastDoubling{}
	}
	return o
}

// mitFrame tracks one open mitigation region.
type mitFrame struct {
	id    int
	level lattice.Label
	init  int64
	start uint64
}

// VM executes a bytecode program against a machine environment. Under
// the default TimingMicro model it is an alternative language
// implementation: same observable values as the tree-walking semantics
// (value adequacy), different — finer-grained — timing, still governed
// by the same label contract. Under TimingTree it reproduces the
// tree-walker's timing exactly (see TimingModel).
//
// A VM is not safe for concurrent use; like server.Server, each
// goroutine owns its own.
type VM struct {
	prog *Program
	opts VMOptions
	env  hw.Env

	pc      int
	stack   []int64
	scalars []int64
	arrays  [][]int64
	// arrayBase[i] is the data address of array i's first element.
	arrayBase  []uint64
	scalarAddr []uint64

	// er/ew mirror the timing-label register.
	er, ew lattice.Label
	// curNode is the AST node ID carried by the last SETLBL; TimingTree
	// charges branch costs at its code address.
	curNode int64

	clock  uint64
	steps  int
	trace  events.Trace
	mits   events.MitTrace
	mstate *mitigation.State
	open   []mitFrame

	// labels maps label ID -> Label for O(1) SETLBL/MITENTER decoding.
	labels []lattice.Label

	// Register-lowered execution state, populated when prog.Opt is set
	// (see vm_opt.go). regs is the fixed register file (one slot per
	// original evaluation-stack slot), optPC the program counter into
	// prog.Opt.Code, and senv/fetchSites/dataSites the per-original-
	// instruction hardware-access memos when the environment supports
	// the memoized fast path.
	regs       []int64
	optPC      int
	senv       hw.SiteEnv
	fetchSites []hw.Site
	dataSites  []hw.Site
}

// NewVM creates a VM for a compiled program.
func NewVM(prog *Program, env hw.Env, opts VMOptions) *VM {
	opts = opts.withDefaults()
	vm := &VM{
		prog:    prog,
		opts:    opts,
		env:     env,
		scalars: make([]int64, len(prog.ScalarNames)),
		arrays:  make([][]int64, len(prog.ArrayNames)),
		er:      prog.Lat.Bot(),
		ew:      prog.Lat.Bot(),
		mstate:  mitigation.NewState(prog.Lat, opts.Scheme, opts.Policy),
	}
	vm.labels = make([]lattice.Label, prog.Lat.Size())
	for _, l := range prog.Lat.Levels() {
		vm.labels[l.ID()] = l
	}
	vm.wireMetrics()
	// Use the compiler's declaration-order offsets when present (they
	// make data addresses match mem.NewLayout's); fall back to the
	// legacy scalars-then-arrays assignment for hand-built programs and
	// v1-decoded images.
	useOffsets := len(prog.ScalarOffsets) == len(prog.ScalarNames) &&
		len(prog.ArrayOffsets) == len(prog.ArrayNames)
	next := opts.DataBase
	vm.scalarAddr = make([]uint64, len(prog.ScalarNames))
	for i := range prog.ScalarNames {
		if useOffsets {
			vm.scalarAddr[i] = opts.DataBase + prog.ScalarOffsets[i]
		} else {
			vm.scalarAddr[i] = next
			next += 8
		}
	}
	vm.arrayBase = make([]uint64, len(prog.ArrayNames))
	for i, n := range prog.ArraySizes {
		vm.arrays[i] = make([]int64, n)
		if useOffsets {
			vm.arrayBase[i] = opts.DataBase + prog.ArrayOffsets[i]
		} else {
			vm.arrayBase[i] = next
			next += 8 * uint64(n)
		}
	}
	if opt := prog.Opt; opt != nil {
		nr := opt.NumRegs
		if nr < 1 {
			nr = 1
		}
		vm.regs = make([]int64, nr)
		if senv, ok := env.(hw.SiteEnv); ok {
			vm.senv = senv
			// One memo per original instruction: dataSites for data
			// accesses (and the tree model's per-command fetch, which
			// SETLBL owns), fetchSites for the micro model's
			// per-instruction fetches. Sites deliberately survive
			// Reset: their validity is guarded by the environment's
			// membership generations, and a service keeps the
			// environment warm across requests.
			vm.dataSites = make([]hw.Site, opt.OrigLen)
			if opts.Timing == TimingMicro {
				vm.fetchSites = make([]hw.Site, opt.OrigLen)
			}
		}
	}
	return vm
}

// Optimized reports whether this VM executes the register-lowered
// optimized program (prog.Opt) rather than the stack interpreter.
func (vm *VM) Optimized() bool { return vm.prog.Opt != nil }

func (vm *VM) wireMetrics() {
	if vm.opts.Metrics != nil {
		m := vm.opts.Metrics
		vm.mstate.SetOnMiss(func(lattice.Label, int) { m.AddScheduleBumps(1) })
	}
}

// Reset rewinds the VM to its initial state — program counter, stack,
// data, labels, clock, traces, and a fresh mitigation state — so a
// service can reuse one VM (and its compiled program) across requests.
// The machine environment is NOT reset; the caller owns it (a service
// deliberately keeps cache/predictor state warm across requests, and
// resets it only between experiment arms).
func (vm *VM) Reset() {
	vm.pc = 0
	vm.optPC = 0
	vm.stack = vm.stack[:0]
	for i := range vm.regs {
		vm.regs[i] = 0
	}
	for i := range vm.scalars {
		vm.scalars[i] = 0
	}
	for _, a := range vm.arrays {
		for j := range a {
			a[j] = 0
		}
	}
	vm.er = vm.prog.Lat.Bot()
	vm.ew = vm.prog.Lat.Bot()
	vm.curNode = 0
	vm.clock = 0
	vm.steps = 0
	// Trace storage is handed out to the caller (Trace/Mitigations), so
	// it can never be reused — but the last run's lengths are a good
	// capacity hint for a service replaying the same program, turning
	// O(log n) append regrowth into one right-sized allocation. Empty
	// traces stay nil (see Trace) so they compare equal to a fresh run.
	if n := len(vm.trace); n > 0 {
		vm.trace = make(events.Trace, 0, n)
	} else {
		vm.trace = nil
	}
	if n := len(vm.mits); n > 0 {
		vm.mits = make(events.MitTrace, 0, n)
	} else {
		vm.mits = nil
	}
	vm.open = vm.open[:0]
	vm.mstate.Reset()
}

// SetScalar sets an input variable by source name.
func (vm *VM) SetScalar(name string, v int64) error {
	for i, n := range vm.prog.ScalarNames {
		if n == name {
			vm.scalars[i] = v
			return nil
		}
	}
	return fmt.Errorf("bytecode: no scalar %q", name)
}

// Scalar reads a variable by source name.
func (vm *VM) Scalar(name string) (int64, error) {
	for i, n := range vm.prog.ScalarNames {
		if n == name {
			return vm.scalars[i], nil
		}
	}
	return 0, fmt.Errorf("bytecode: no scalar %q", name)
}

// SetArrayEl sets one array element by source name.
func (vm *VM) SetArrayEl(name string, idx, v int64) error {
	for i, n := range vm.prog.ArrayNames {
		if n == name {
			vm.arrays[i][wrap(idx, len(vm.arrays[i]))] = v
			return nil
		}
	}
	return fmt.Errorf("bytecode: no array %q", name)
}

// LoadFrom copies every variable the program declares out of m into
// the VM's registers. Variables missing from m are left at zero.
func (vm *VM) LoadFrom(m *mem.Memory) {
	for i, n := range vm.prog.ScalarNames {
		if m.HasScalar(n) {
			vm.scalars[i] = m.Get(n)
		}
	}
	for i, n := range vm.prog.ArrayNames {
		if !m.HasArray(n) {
			continue
		}
		for j := range vm.arrays[i] {
			vm.arrays[i][j] = m.GetEl(n, int64(j))
		}
	}
}

// LoadScalarsFrom copies only the scalar variables from m. Engines
// that alias m's arrays onto this VM's array storage (mem.AliasArray)
// use this: array writes already landed in place, so only scalars need
// the copy pass.
func (vm *VM) LoadScalarsFrom(m *mem.Memory) {
	for i, n := range vm.prog.ScalarNames {
		if m.HasScalar(n) {
			vm.scalars[i] = m.Get(n)
		}
	}
}

// ArrayStorage exposes the backing slice of array i (by declaration
// order), for engines that alias a scratch memory onto VM storage.
func (vm *VM) ArrayStorage(i int) []int64 { return vm.arrays[i] }

// ScalarStorage exposes the scalar value slice (indexed like
// Program.ScalarNames), for the same aliasing purpose.
func (vm *VM) ScalarStorage() []int64 { return vm.scalars }

// StoreTo copies the VM's variables into m (which must declare them —
// typically a mem.New of the same program).
func (vm *VM) StoreTo(m *mem.Memory) {
	for i, n := range vm.prog.ScalarNames {
		m.Set(n, vm.scalars[i])
	}
	for i, n := range vm.prog.ArrayNames {
		for j, v := range vm.arrays[i] {
			m.SetEl(n, int64(j), v)
		}
	}
}

// Clock returns the global time in cycles.
func (vm *VM) Clock() uint64 { return vm.clock }

// Steps returns the number of instructions executed.
func (vm *VM) Steps() int { return vm.steps }

// Trace returns the observable assignment events. An empty trace is
// nil, even when Reset preallocated capacity, so traces from reused
// and single-use VMs compare equal structurally.
func (vm *VM) Trace() events.Trace {
	if len(vm.trace) == 0 {
		return nil
	}
	return vm.trace
}

// Mitigations returns the completed mitigation records (nil when
// empty, like Trace).
func (vm *VM) Mitigations() events.MitTrace {
	if len(vm.mits) == 0 {
		return nil
	}
	return vm.mits
}

// MitigationState exposes the Miss counters (for reporting, and for
// services that splice persistent mitigation state across requests).
func (vm *VM) MitigationState() *mitigation.State { return vm.mstate }

// Env returns the machine environment.
func (vm *VM) Env() hw.Env { return vm.env }

func wrap(i int64, n int) int64 {
	if n <= 0 {
		panic("bytecode: empty array")
	}
	r := i % int64(n)
	if r < 0 {
		r += int64(n)
	}
	return r
}

func (vm *VM) push(v int64) { vm.stack = append(vm.stack, v) }

func (vm *VM) pop() int64 {
	if len(vm.stack) == 0 {
		panic("bytecode: stack underflow (miscompiled program)")
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v
}

// cmdAddr is the command's code address under the tree-walker's layout.
func (vm *VM) cmdAddr(node int64) uint64 {
	return vm.opts.CodeBase + vm.opts.CodeStride*uint64(node)
}

// Run executes until HALT or the instruction budget is exhausted.
//
// Deprecated: use RunBudget, which adds context cancellation and cycle
// budgets. Note one semantic difference: Run(0) is now an unlimited
// run, where it used to fail immediately.
func (vm *VM) Run(maxInstrs int) error {
	return vm.RunBudget(context.Background(), budget.Budget{MaxSteps: maxInstrs})
}

// ctxCheckInterval is how many instructions elapse between context
// polls in RunBudget. Polling is observational, so the interval affects
// only abort latency, never simulated behavior.
const ctxCheckInterval = 1024

// RunBudget executes to completion, a budget violation
// (budget.ErrStepLimit / budget.ErrCycleLimit — for this engine
// MaxSteps counts instructions), or context cancellation — in the last
// case it returns ctx.Err(), so callers can test errors.Is(err,
// context.DeadlineExceeded). The VM's instrumentation
// (VMOptions.Metrics) is charged for the instructions and cycles
// consumed, whether or not the run completes.
func (vm *VM) RunBudget(ctx context.Context, b budget.Budget) error {
	// Metrics are recorded on every exit path without a deferred
	// closure: the capture would heap-allocate per call, which matters
	// on the service hot path.
	startSteps, startClock := vm.steps, vm.clock
	var err error
	if vm.prog.Opt != nil {
		err = vm.runLoopOpt(ctx, b)
	} else {
		err = vm.runLoop(ctx, b)
	}
	if vm.opts.Metrics != nil {
		vm.opts.Metrics.AddSteps(uint64(vm.steps - startSteps))
		vm.opts.Metrics.AddCycles(vm.clock - startClock)
	}
	return err
}

func (vm *VM) runLoop(ctx context.Context, b budget.Budget) error {
	nextPoll := vm.steps + ctxCheckInterval
	for {
		if b.MaxSteps > 0 && vm.steps >= b.MaxSteps {
			return fmt.Errorf("%w (%d steps)", budget.ErrStepLimit, b.MaxSteps)
		}
		if b.MaxCycles > 0 && vm.clock > b.MaxCycles {
			return fmt.Errorf("%w (%d cycles > %d)", budget.ErrCycleLimit, vm.clock, b.MaxCycles)
		}
		if ctx != nil && vm.steps >= nextPoll {
			nextPoll = vm.steps + ctxCheckInterval
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		halted, err := vm.step()
		if err != nil {
			return err
		}
		if halted {
			break
		}
	}
	// HALT drains open mitigation regions; padding may push the clock
	// past the cycle budget, and that still counts (matching full).
	if b.MaxCycles > 0 && vm.clock > b.MaxCycles {
		return fmt.Errorf("%w (%d cycles > %d)", budget.ErrCycleLimit, vm.clock, b.MaxCycles)
	}
	return nil
}

// step executes one instruction, reporting whether the program halted.
func (vm *VM) step() (bool, error) {
	if vm.pc < 0 || vm.pc >= len(vm.prog.Code) {
		return false, fmt.Errorf("bytecode: pc %d out of range", vm.pc)
	}
	ins := vm.prog.Code[vm.pc]
	vm.steps++
	tree := vm.opts.Timing == TimingTree
	var cost uint64
	if !tree {
		// Micro model: every instruction pays base + fetch, charged
		// under the labels in force when the fetch happens (i.e. before
		// SETLBL updates them).
		cost = vm.opts.BaseCost +
			vm.env.Access(hw.Fetch, vm.opts.CodeBase+uint64(vm.pc)*vm.opts.InstrSize, vm.er, vm.ew)
	}
	vm.pc++

	switch ins.Op {
	case OpNop:
	case OpHalt:
		vm.clock += cost
		// Close any regions left open by a miscompiled program.
		for len(vm.open) > 0 {
			vm.exitMitigation()
		}
		return true, nil
	case OpSetLbl:
		vm.er = vm.label(ins.A)
		vm.ew = vm.label(ins.B)
		vm.curNode = ins.C
		if tree {
			// Tree model: the command's single fetch, at the AST
			// node's code address, under the command's own labels —
			// exactly full.Machine.Step's first access.
			cost = vm.opts.BaseCost + vm.env.Access(hw.Fetch, vm.cmdAddr(ins.C), vm.er, vm.ew)
		}
	case OpPush:
		vm.push(ins.A)
	case OpLoad:
		cost += vm.env.Access(hw.Read, vm.scalarAddr[ins.A], vm.er, vm.ew)
		vm.push(vm.scalars[ins.A])
	case OpLoadIdx:
		idx := wrap(vm.pop(), len(vm.arrays[ins.A]))
		cost += vm.env.Access(hw.Read, vm.arrayBase[ins.A]+8*uint64(idx), vm.er, vm.ew)
		vm.push(vm.arrays[ins.A][idx])
	case OpStore:
		v := vm.pop()
		cost += vm.env.Access(hw.Write, vm.scalarAddr[ins.A], vm.er, vm.ew)
		vm.scalars[ins.A] = v
		vm.clock += cost
		vm.trace = append(vm.trace, events.Event{
			Var: vm.prog.ScalarNames[ins.A], Value: v, Time: vm.clock})
		return false, nil
	case OpStoreIdx:
		v := vm.pop()
		idx := wrap(vm.pop(), len(vm.arrays[ins.A]))
		cost += vm.env.Access(hw.Write, vm.arrayBase[ins.A]+8*uint64(idx), vm.er, vm.ew)
		vm.arrays[ins.A][idx] = v
		vm.clock += cost
		vm.trace = append(vm.trace, events.Event{
			Var: fmt.Sprintf("%s[%d]", vm.prog.ArrayNames[ins.A], idx), Value: v, Time: vm.clock})
		return false, nil
	case OpUnop:
		v := vm.pop()
		switch token.Kind(ins.A) {
		case token.MINUS:
			vm.push(-v)
		case token.NOT:
			if v == 0 {
				vm.push(1)
			} else {
				vm.push(0)
			}
		default:
			return false, fmt.Errorf("bytecode: bad unary operator %v", token.Kind(ins.A))
		}
		if tree {
			cost += vm.opts.OpCost
		}
	case OpBinop:
		y := vm.pop()
		x := vm.pop()
		vm.push(core.EvalBinop(token.Kind(ins.A), x, y))
		if tree {
			cost += vm.opts.OpCost
		}
	case OpJmp:
		vm.pc = int(ins.A)
	case OpJz:
		taken := vm.pop() == 0
		if tree {
			// full charges the branch at the command's code address
			// with taken = condition-true.
			cost += vm.env.Branch(vm.cmdAddr(vm.curNode), !taken, vm.er, vm.ew)
		} else {
			cost += vm.env.Branch(vm.opts.CodeBase+uint64(vm.pc-1)*vm.opts.InstrSize,
				taken, vm.er, vm.ew)
		}
		if taken {
			vm.pc = int(ins.A)
		}
	case OpSleep:
		if n := vm.pop(); n > 0 {
			cost += uint64(n)
		}
	case OpMitEnter:
		init := vm.pop()
		vm.clock += cost
		vm.open = append(vm.open, mitFrame{
			id:    int(ins.A),
			level: vm.label(ins.B),
			init:  init,
			start: vm.clock,
		})
		return false, nil
	case OpMitExit:
		vm.clock += cost
		if len(vm.open) == 0 {
			return false, fmt.Errorf("bytecode: MITEXIT with no open region")
		}
		if vm.open[len(vm.open)-1].id != int(ins.A) {
			return false, fmt.Errorf("bytecode: mismatched MITEXIT %d", ins.A)
		}
		vm.exitMitigation()
		return false, nil
	default:
		return false, fmt.Errorf("bytecode: unknown opcode %v", ins.Op)
	}
	vm.clock += cost
	return false, nil
}

// exitMitigation closes the innermost region: penalize and pad exactly
// as the tree-walking semantics does.
func (vm *VM) exitMitigation() {
	f := vm.open[len(vm.open)-1]
	vm.open = vm.open[:len(vm.open)-1]
	elapsed := vm.clock - f.start
	if vm.opts.DisableMitigation {
		vm.mits = append(vm.mits, events.MitRecord{
			ID: f.id, Duration: elapsed, Elapsed: elapsed, Start: f.start})
		if vm.opts.Metrics != nil {
			vm.opts.Metrics.AddMitigation(false)
		}
		return
	}
	pred, missed := vm.mstate.Penalize(f.init, f.level, f.id, elapsed)
	if pred > elapsed {
		vm.clock = f.start + pred
	}
	vm.mits = append(vm.mits, events.MitRecord{
		ID: f.id, Duration: vm.clock - f.start, Elapsed: elapsed,
		Start: f.start, Mispredicted: missed,
	})
	if vm.opts.Metrics != nil {
		vm.opts.Metrics.AddMitigation(missed)
		if pred > elapsed {
			vm.opts.Metrics.AddPadding(pred - elapsed)
		}
	}
}

func (vm *VM) label(id int64) lattice.Label {
	if id >= 0 && id < int64(len(vm.labels)) {
		return vm.labels[id]
	}
	panic(fmt.Sprintf("bytecode: bad label id %d", id))
}

package bytecode_test

// Differential tests for the optimizing pipeline: the register-lowered
// hot loop (at every optimization level) must be observationally
// indistinguishable from the stack interpreter — same clock, same step
// count, same event trace, same mitigation records, same final memory,
// and same machine-environment state (counters and every label-level
// projection of the cache/predictor state).

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/bytecode/optimize"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
	"repro/internal/sem/events"
	"repro/internal/types"
)

func compileOpt(t *testing.T, src string, lat lattice.Lattice) *bytecode.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := bytecode.Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	return bc
}

// withOpt returns a shallow copy of bc carrying the optimized form for
// the given level (nil for level 0), leaving bc itself untouched.
func withOpt(t *testing.T, bc *bytecode.Program, level int) *bytecode.Program {
	t.Helper()
	op, err := optimize.Compile(bc, level)
	if err != nil {
		t.Fatalf("optimize level %d: %v", level, err)
	}
	p2 := *bc
	p2.Opt = op
	return &p2
}

// optEnvs builds the machine environments the differential matrix runs
// against, keyed by name; fresh state per call.
func optEnvs(lat lattice.Lattice) map[string]func() hw.Env {
	return map[string]func() hw.Env{
		"flat":          func() hw.Env { return hw.NewFlat(lat, 3) },
		"unpartitioned": func() hw.Env { return hw.NewUnpartitioned(lat, hw.TinyConfig()) },
		"nofill":        func() hw.Env { return hw.NewNoFill(lat, hw.TinyConfig()) },
		"partitioned":   func() hw.Env { return hw.NewPartitioned(lat, hw.TinyConfig()) },
	}
}

type optSnap struct {
	err     error
	clock   uint64
	steps   int
	trace   events.Trace
	mits    events.MitTrace
	scalars []int64
	arrays  [][]int64
	stats   hw.Stats
	env     hw.Env
}

// runSnap executes prog on a fresh env and snapshots everything
// observable. Inputs are seeded deterministically from variable order.
func runSnap(t *testing.T, prog *bytecode.Program, env hw.Env, opts bytecode.VMOptions, maxInstrs int) optSnap {
	t.Helper()
	vm := bytecode.NewVM(prog, env, opts)
	for i, name := range prog.ScalarNames {
		if err := vm.SetScalar(name, int64(i*7%13+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, name := range prog.ArrayNames {
		for j := int64(0); j < prog.ArraySizes[i]; j++ {
			if err := vm.SetArrayEl(name, j, (int64(i)+3)*j%17); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := optSnap{err: vm.Run(maxInstrs), env: env}
	s.clock = vm.Clock()
	s.steps = vm.Steps()
	s.trace = append(events.Trace(nil), vm.Trace()...)
	s.mits = append(events.MitTrace(nil), vm.Mitigations()...)
	s.scalars = append([]int64(nil), vm.ScalarStorage()...)
	for i := range prog.ArrayNames {
		s.arrays = append(s.arrays, append([]int64(nil), vm.ArrayStorage(i)...))
	}
	s.stats = env.Stats()
	return s
}

func diffSnaps(t *testing.T, lat lattice.Lattice, want, got optSnap) {
	t.Helper()
	if (want.err == nil) != (got.err == nil) {
		t.Fatalf("error mismatch: baseline %v, optimized %v", want.err, got.err)
	}
	if want.clock != got.clock {
		t.Errorf("clock: baseline %d, optimized %d", want.clock, got.clock)
	}
	if want.steps != got.steps {
		t.Errorf("steps: baseline %d, optimized %d", want.steps, got.steps)
	}
	if !reflect.DeepEqual(want.trace, got.trace) {
		t.Errorf("trace:\nbaseline:  %v\noptimized: %v", want.trace, got.trace)
	}
	if !reflect.DeepEqual(want.mits, got.mits) {
		t.Errorf("mitigations:\nbaseline:  %v\noptimized: %v", want.mits, got.mits)
	}
	if !reflect.DeepEqual(want.scalars, got.scalars) {
		t.Errorf("scalars: baseline %v, optimized %v", want.scalars, got.scalars)
	}
	if !reflect.DeepEqual(want.arrays, got.arrays) {
		t.Errorf("arrays: baseline %v, optimized %v", want.arrays, got.arrays)
	}
	if want.stats != got.stats {
		t.Errorf("hw stats:\nbaseline:  %+v\noptimized: %+v", want.stats, got.stats)
	}
	for _, lv := range lat.Levels() {
		if !want.env.ProjEqual(got.env, lv) {
			t.Errorf("hw state differs at level %v", lv)
		}
	}
}

// optTestSources covers every opcode and every fusion pattern: constant
// and variable stores (IMM.STORE/LOAD.STORE), array element copies
// (LOADIDX.STORE), while loops with the three compare-and-branch forms,
// unary operators, sleeps, and nested mitigations.
var optTestSources = []struct{ name, src string }{
	{"straightline", `
var x : L;
var y : L;
var z : L;
x := 6;
y := x * 7;
z := y;
z := z + x * 2 - 1;
`},
	{"loops", `
var n : L;
var f : L;
var i : L;
f := 1;
i := 1;
while (i <= n) {
    f := f * i;
    i := i + 1;
}
if (f > 100) { n := 1; } else { n := 0; }
while (!(i == 0)) { i := i - 1; }
`},
	{"arrays", `
array a[8] : L;
array b[8] : L;
var i : L;
var s : L;
while (i < 8) {
    a[i] := i * i;
    b[i] := a[i];
    s := s + a[i];
    i := i + 1;
}
s := b[3];
`},
	{"unops", `
var x : L;
var y : L;
x := 0 - 5;
y := -x;
if (!(y == 5)) { x := 1; } else { x := 2; }
`},
	{"mitigated", `
var h : H;
var l : L;
var i : H;
l := 1;
mitigate (8, H) [L,L] {
    while (i < 3) [H,H] {
        sleep(h + i) [H,H];
        i := i + 1 [H,H];
    }
}
l := 2;
mitigate (4, H) [L,L] { sleep(h * 2) [H,H]; }
l := 3;
`},
	{"highbranches", `
var h : H;
var g : H;
var i : H;
while (i < 4) [H,H] {
    if (h > i) [H,H] { g := g + h [H,H]; } else { g := g - 1 [H,H]; }
    i := i + 1 [H,H];
}
`},
}

func TestOptDifferentialTestdata(t *testing.T) {
	lat := lattice.TwoPoint()
	for _, tc := range optTestSources {
		bc := compileOpt(t, tc.src, lat)
		for envName, mkEnv := range optEnvs(lat) {
			for _, timing := range []bytecode.TimingModel{bytecode.TimingMicro, bytecode.TimingTree} {
				for _, level := range []int{1, 2} {
					name := fmt.Sprintf("%s/%s/timing%d/o%d", tc.name, envName, timing, level)
					t.Run(name, func(t *testing.T) {
						opts := bytecode.VMOptions{Timing: timing}
						base := runSnap(t, bc, mkEnv(), opts, 100000)
						opt := runSnap(t, withOpt(t, bc, level), mkEnv(), opts, 100000)
						diffSnaps(t, lat, base, opt)
					})
				}
			}
		}
	}
}

func TestOptDifferentialProgen(t *testing.T) {
	lat := lattice.TwoPoint()
	envs := optEnvs(lat)
	for seed := int64(1); seed <= 40; seed++ {
		_, _, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bc := compileOpt(t, src, lat)
		envName := []string{"flat", "unpartitioned", "nofill", "partitioned"}[seed%4]
		timing := bytecode.TimingMicro
		if seed%2 == 0 {
			timing = bytecode.TimingTree
		}
		t.Run(fmt.Sprintf("seed%d/%s", seed, envName), func(t *testing.T) {
			opts := bytecode.VMOptions{Timing: timing}
			base := runSnap(t, bc, envs[envName](), opts, 2_000_000)
			opt := runSnap(t, withOpt(t, bc, 2), envs[envName](), opts, 2_000_000)
			diffSnaps(t, lat, base, opt)
		})
	}
}

// TestOptZeroAllocPerInstruction pins the optimized hot loop at zero
// allocations per instruction: per-run allocations (Reset's right-sized
// trace buffer, mitigation bookkeeping) are constant, so a 20×-longer
// run must allocate exactly as much as a short one. Any per-instruction
// or per-access allocation — event name formatting, site memo growth,
// stack regrowth — would scale with the iteration count and fail.
func TestOptZeroAllocPerInstruction(t *testing.T) {
	lat := lattice.TwoPoint()
	bc := compileOpt(t, `
var n : L;
var acc : L;
var i : L;
array a[8] : L;
i := 0;
while (i < n) {
    acc := acc + i * 3;
    a[i] := acc;
    i := i + 1;
}
`, lat)
	allocsAt := func(n int64) float64 {
		env := hw.NewUnpartitioned(lat, hw.TinyConfig())
		vm := bytecode.NewVM(withOpt(t, bc, 2), env, bytecode.VMOptions{})
		run := func() {
			vm.Reset()
			if err := vm.SetScalar("n", n); err != nil {
				t.Fatal(err)
			}
			if err := vm.Run(0); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm: sizes the trace hint and the site memos
		run()
		return testing.AllocsPerRun(20, run)
	}
	short, long := allocsAt(50), allocsAt(1000)
	if short != long {
		t.Errorf("allocs scale with instruction count: %v at n=50, %v at n=1000", short, long)
	}
	if long > 4 {
		t.Errorf("per-run allocation budget: %v > 4", long)
	}
}

// TestOptResumeAfterBudget checks that the optimized loop's suspended
// state (pc, registers, labels) survives a step-budget stop and resumes
// to the same observable result as an uninterrupted run.
func TestOptResumeAfterBudget(t *testing.T) {
	lat := lattice.TwoPoint()
	bc := compileOpt(t, optTestSources[1].src, lat)
	opts := bytecode.VMOptions{}
	full := runSnap(t, withOpt(t, bc, 2), hw.NewUnpartitioned(lat, hw.TinyConfig()), opts, 100000)

	env := hw.NewUnpartitioned(lat, hw.TinyConfig())
	vm := bytecode.NewVM(withOpt(t, bc, 2), env, opts)
	for i, name := range bc.ScalarNames {
		if err := vm.SetScalar(name, int64(i*7%13+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 10000; i++ {
		// MaxSteps is an absolute step count, so grow it a little each
		// slice to stop-and-resume through the whole program.
		if err := vm.Run(7 * i); err == nil {
			if vm.Clock() != full.clock || vm.Steps() != full.steps {
				t.Fatalf("resumed run: clock %d steps %d, want %d/%d",
					vm.Clock(), vm.Steps(), full.clock, full.steps)
			}
			if !reflect.DeepEqual(append(events.Trace(nil), vm.Trace()...), full.trace) {
				t.Fatal("resumed trace differs")
			}
			return
		}
	}
	t.Fatal("program did not finish in budget slices")
}

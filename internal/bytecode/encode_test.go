package bytecode

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/progen"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lat := lattice.TwoPoint()
	for seed := int64(0); seed < 10; seed++ {
		prog, res, src, err := progen.GenerateTyped(progen.Config{
			Lat: lat, Seed: 4400 + seed, AllowMitigate: true, AllowSleep: true,
		}, 50)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Compile(prog, res)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := bc.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(bytes.NewReader(buf.Bytes()), lat)
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, src)
		}
		if back.Disassemble() != bc.Disassemble() {
			t.Fatalf("seed %d: code changed across round trip", seed)
		}
		if back.NumMitigates != bc.NumMitigates {
			t.Error("mitigate count lost")
		}
		// The decoded program executes identically.
		vm1 := NewVM(bc, hw.NewFlat(lat, 2), VMOptions{})
		vm2 := NewVM(back, hw.NewFlat(lat, 2), VMOptions{})
		if err := vm1.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if err := vm2.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if vm1.Clock() != vm2.Clock() || vm1.Trace().Key() != vm2.Trace().Key() {
			t.Fatalf("seed %d: decoded program behaves differently", seed)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	lat := lattice.TwoPoint()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01"),
		"bad version": []byte("TCBC\x09"),
		"truncated":   []byte("TCBC\x01\x05two"),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data), lat); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeLatticeMismatch(t *testing.T) {
	bc := compileSrc(t, "var l : L; l := 1;", lattice.TwoPoint())
	var buf bytes.Buffer
	if err := bc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Decode(bytes.NewReader(buf.Bytes()), lattice.ThreePoint())
	if err == nil || !strings.Contains(err.Error(), "lattice") {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeValidatesStructure(t *testing.T) {
	lat := lattice.TwoPoint()
	bad := []*Program{
		{Lat: lat, Code: []Instr{{Op: OpJmp, A: 99}}},
		{Lat: lat, Code: []Instr{{Op: OpLoad, A: 0}}},           // no scalars
		{Lat: lat, Code: []Instr{{Op: OpSetLbl, A: 7, B: 0}}},   // bad label
		{Lat: lat, Code: []Instr{{Op: OpMitEnter, A: 0, B: 9}}}, // bad level
		{Lat: lat, Code: []Instr{{Op: OpStoreIdx, A: 2}}},       // no arrays
	}
	for i, p := range bad {
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes()), lat); err == nil {
			t.Errorf("case %d: corrupted program accepted", i)
		}
	}
}

// Corrupting arbitrary bytes of a valid image must yield an error or a
// valid program — never a panic in Decode.
func TestDecodeFuzzedCorruption(t *testing.T) {
	lat := lattice.TwoPoint()
	bc := compileSrc(t, `
var h : H;
var l : L;
l := 1;
mitigate (8, H) [L,L] { sleep(h) [H,H]; }
l := 2;
`, lat)
	var buf bytes.Buffer
	if err := bc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := 0; i < len(orig); i++ {
		for _, delta := range []byte{1, 0x80} {
			mut := append([]byte(nil), orig...)
			mut[i] ^= delta
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("Decode panicked on corruption at byte %d: %v", i, p)
					}
				}()
				Decode(bytes.NewReader(mut), lat)
			}()
		}
	}
}

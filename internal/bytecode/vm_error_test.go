package bytecode

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lang/token"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

// handProgram builds a raw bytecode program for error-path testing.
func handProgram(code ...Instr) *Program {
	return &Program{Code: code, Lat: lattice.TwoPoint(), NumMitigates: 4}
}

func runHand(p *Program, budget int) error {
	vm := NewVM(p, hw.NewFlat(lattice.TwoPoint(), 1), VMOptions{})
	return vm.Run(budget)
}

func TestVMInstructionBudget(t *testing.T) {
	// An infinite JMP loop exhausts the budget.
	p := handProgram(Instr{Op: OpJmp, A: 0})
	err := runHand(p, 100)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v", err)
	}
}

func TestVMPCOutOfRange(t *testing.T) {
	p := handProgram(Instr{Op: OpJmp, A: 99})
	if err := runHand(p, 10); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
	// Falling off the end (no HALT) is also out of range.
	p = handProgram(Instr{Op: OpNop})
	if err := runHand(p, 10); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestVMBadUnaryOp(t *testing.T) {
	p := handProgram(
		Instr{Op: OpPush, A: 1},
		Instr{Op: OpUnop, A: int64(token.PLUS)}, // + is not unary
		Instr{Op: OpHalt},
	)
	if err := runHand(p, 10); err == nil || !strings.Contains(err.Error(), "unary") {
		t.Errorf("err = %v", err)
	}
}

func TestVMUnknownOpcode(t *testing.T) {
	p := handProgram(Instr{Op: Op(200)}, Instr{Op: OpHalt})
	if err := runHand(p, 10); err == nil || !strings.Contains(err.Error(), "unknown opcode") {
		t.Errorf("err = %v", err)
	}
}

func TestVMMismatchedMitExit(t *testing.T) {
	p := handProgram(Instr{Op: OpMitExit, A: 0}, Instr{Op: OpHalt})
	if err := runHand(p, 10); err == nil || !strings.Contains(err.Error(), "no open region") {
		t.Errorf("err = %v", err)
	}
	p = handProgram(
		Instr{Op: OpPush, A: 1},
		Instr{Op: OpMitEnter, A: 0, B: 1},
		Instr{Op: OpMitExit, A: 3}, // wrong id
		Instr{Op: OpHalt},
	)
	if err := runHand(p, 10); err == nil || !strings.Contains(err.Error(), "mismatched") {
		t.Errorf("err = %v", err)
	}
}

func TestVMHaltClosesOpenRegions(t *testing.T) {
	// A region left open at HALT is closed (padded) so the record
	// exists — defensive behaviour for miscompiled programs.
	p := handProgram(
		Instr{Op: OpPush, A: 64},
		Instr{Op: OpMitEnter, A: 2, B: 1},
		Instr{Op: OpHalt},
	)
	vm := NewVM(p, hw.NewFlat(lattice.TwoPoint(), 1), VMOptions{})
	if err := vm.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(vm.Mitigations()) != 1 || vm.Mitigations()[0].ID != 2 {
		t.Errorf("mitigations = %v", vm.Mitigations())
	}
}

func TestVMStackUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	runHand(handProgram(Instr{Op: OpStore, A: 0}, Instr{Op: OpHalt}), 10)
}

func TestVMBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	runHand(handProgram(Instr{Op: OpSetLbl, A: 99, B: 99}, Instr{Op: OpHalt}), 10)
}

func TestVMSleepNegative(t *testing.T) {
	p := handProgram(
		Instr{Op: OpPush, A: -5},
		Instr{Op: OpSleep},
		Instr{Op: OpPush, A: 0},
		Instr{Op: OpSleep},
		Instr{Op: OpHalt},
	)
	vm := NewVM(p, hw.NewFlat(lattice.TwoPoint(), 1), VMOptions{})
	if err := vm.Run(10); err != nil {
		t.Fatal(err)
	}
	// 5 instructions at (1 base + 1 flat fetch) each, no extra sleep.
	if vm.Clock() != 10 {
		t.Errorf("clock = %d, want 10", vm.Clock())
	}
}

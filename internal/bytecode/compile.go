package bytecode

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/types"
)

// Compile translates a type-checked program to bytecode. Every labeled
// command is prefixed with a SETLBL carrying its resolved [er,ew], so
// the VM's timing-label register always matches the command being
// executed — the §8.2 compilation scheme.
func Compile(prog *ast.Program, res *types.Result) (*Program, error) {
	c := &compiler{
		out:     &Program{Lat: res.Lat, NumMitigates: prog.NumMitigates},
		scalars: make(map[string]int64),
		arrays:  make(map[string]int64),
	}
	// Assign data offsets in declaration order, mirroring mem.NewLayout,
	// so the VM's tree-compatible timing model touches the same data
	// addresses as the tree-walking semantics.
	var off uint64
	for _, d := range prog.Decls {
		if d.IsArray {
			c.arrays[d.Name] = int64(len(c.out.ArrayNames))
			c.out.ArrayNames = append(c.out.ArrayNames, d.Name)
			c.out.ArraySizes = append(c.out.ArraySizes, d.Size)
			c.out.ArrayOffsets = append(c.out.ArrayOffsets, off)
			off += 8 * uint64(d.Size)
		} else {
			c.scalars[d.Name] = int64(len(c.out.ScalarNames))
			c.out.ScalarNames = append(c.out.ScalarNames, d.Name)
			c.out.ScalarOffsets = append(c.out.ScalarOffsets, off)
			off += 8
		}
	}
	if err := c.cmd(prog.Body); err != nil {
		return nil, err
	}
	c.emit(Instr{Op: OpHalt})
	return c.out, nil
}

type compiler struct {
	out     *Program
	scalars map[string]int64
	arrays  map[string]int64
}

func (c *compiler) emit(i Instr) int {
	c.out.Code = append(c.out.Code, i)
	return len(c.out.Code) - 1
}

// patch sets the jump target of a previously emitted branch.
func (c *compiler) patch(at int, target int) {
	c.out.Code[at].A = int64(target)
}

func (c *compiler) here() int { return len(c.out.Code) }

// setlbl emits the timing-label register write for a labeled command.
// The command's AST node ID rides along in C so the tree-compatible
// timing model can charge the command fetch at the same code address as
// the tree-walking semantics (mem.Layout.CodeAddr).
func (c *compiler) setlbl(cmd ast.Cmd, lab *ast.Labels) error {
	if !lab.Resolved() {
		return fmt.Errorf("bytecode: unresolved labels (run types.Check first)")
	}
	c.emit(Instr{Op: OpSetLbl, A: int64(lab.RL.ID()), B: int64(lab.WL.ID()), C: int64(cmd.ID())})
	return nil
}

func (c *compiler) cmd(cmd ast.Cmd) error {
	switch cm := cmd.(type) {
	case *ast.Seq:
		if err := c.cmd(cm.First); err != nil {
			return err
		}
		return c.cmd(cm.Second)

	case *ast.Skip:
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		c.emit(Instr{Op: OpNop})
		return nil

	case *ast.Assign:
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		if err := c.expr(cm.X); err != nil {
			return err
		}
		idx, ok := c.scalars[cm.Name]
		if !ok {
			return fmt.Errorf("bytecode: unknown scalar %q", cm.Name)
		}
		c.emit(Instr{Op: OpStore, A: idx})
		return nil

	case *ast.Store:
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		if err := c.expr(cm.Idx); err != nil {
			return err
		}
		if err := c.expr(cm.X); err != nil {
			return err
		}
		idx, ok := c.arrays[cm.Name]
		if !ok {
			return fmt.Errorf("bytecode: unknown array %q", cm.Name)
		}
		c.emit(Instr{Op: OpStoreIdx, A: idx})
		return nil

	case *ast.Sleep:
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		if err := c.expr(cm.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpSleep})
		return nil

	case *ast.If:
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		if err := c.expr(cm.Cond); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJz})
		if err := c.cmd(cm.Then); err != nil {
			return err
		}
		jend := c.emit(Instr{Op: OpJmp})
		c.patch(jz, c.here())
		if err := c.cmd(cm.Else); err != nil {
			return err
		}
		c.patch(jend, c.here())
		return nil

	case *ast.While:
		top := c.here()
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		if err := c.expr(cm.Cond); err != nil {
			return err
		}
		jz := c.emit(Instr{Op: OpJz})
		if err := c.cmd(cm.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpJmp, A: int64(top)})
		c.patch(jz, c.here())
		return nil

	case *ast.Mitigate:
		if err := c.setlbl(cm, &cm.Lab); err != nil {
			return err
		}
		if err := c.expr(cm.Init); err != nil {
			return err
		}
		if !cm.Level.Valid() {
			return fmt.Errorf("bytecode: unresolved mitigation level (run types.Check first)")
		}
		c.emit(Instr{Op: OpMitEnter, A: int64(cm.MitID), B: int64(cm.Level.ID())})
		if err := c.cmd(cm.Body); err != nil {
			return err
		}
		c.emit(Instr{Op: OpMitExit, A: int64(cm.MitID)})
		return nil
	}
	return fmt.Errorf("bytecode: unknown command %T", cmd)
}

func (c *compiler) expr(e ast.Expr) error {
	switch ex := e.(type) {
	case *ast.IntLit:
		c.emit(Instr{Op: OpPush, A: ex.Value})
		return nil
	case *ast.Var:
		idx, ok := c.scalars[ex.Name]
		if !ok {
			return fmt.Errorf("bytecode: unknown scalar %q", ex.Name)
		}
		c.emit(Instr{Op: OpLoad, A: idx})
		return nil
	case *ast.Index:
		if err := c.expr(ex.Idx); err != nil {
			return err
		}
		idx, ok := c.arrays[ex.Name]
		if !ok {
			return fmt.Errorf("bytecode: unknown array %q", ex.Name)
		}
		c.emit(Instr{Op: OpLoadIdx, A: idx})
		return nil
	case *ast.Unary:
		if err := c.expr(ex.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpUnop, A: int64(ex.Op)})
		return nil
	case *ast.Binary:
		if err := c.expr(ex.X); err != nil {
			return err
		}
		if err := c.expr(ex.Y); err != nil {
			return err
		}
		c.emit(Instr{Op: OpBinop, A: int64(ex.Op)})
		return nil
	}
	return fmt.Errorf("bytecode: unknown expression %T", e)
}

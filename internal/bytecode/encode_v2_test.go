package bytecode

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/types"
)

const v2TestSrc = `
var h: H;
array tab[4]: L;
var reply: L;
mitigate (1, H) [L, L] {
    sleep(h % 9) [H, H];
}
reply := tab[1];
`

// TestEncodeV2PreservesTreeMetadata checks that the version-2 format
// round-trips the metadata the tree-compatible timing model depends
// on: declaration-order data offsets and the AST node IDs on SETLBL.
func TestEncodeV2PreservesTreeMetadata(t *testing.T) {
	lat := lattice.TwoPoint()
	prog, err := parser.Parse(v2TestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Compile(prog, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.ScalarOffsets) != len(bc.ScalarNames) || len(bc.ArrayOffsets) != len(bc.ArrayNames) {
		t.Fatalf("compiler did not emit offsets: %v / %v", bc.ScalarOffsets, bc.ArrayOffsets)
	}
	var sawNode bool
	for _, ins := range bc.Code {
		if ins.Op == OpSetLbl && ins.C != 0 {
			sawNode = true
		}
	}
	if !sawNode {
		t.Fatal("no SETLBL carries a node ID")
	}
	var buf bytes.Buffer
	if err := bc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()), lat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Code, bc.Code) {
		t.Error("instruction stream (including SETLBL node IDs) changed across round trip")
	}
	if !reflect.DeepEqual(back.ScalarOffsets, bc.ScalarOffsets) {
		t.Errorf("scalar offsets changed: %v -> %v", bc.ScalarOffsets, back.ScalarOffsets)
	}
	if !reflect.DeepEqual(back.ArrayOffsets, bc.ArrayOffsets) {
		t.Errorf("array offsets changed: %v -> %v", bc.ArrayOffsets, back.ArrayOffsets)
	}
}

// TestDecodeAcceptsV1 hand-crafts a version-1 image (no offsets, no
// node IDs) and checks Decode still accepts it, yielding a program
// that runs under the legacy micro timing model.
func TestDecodeAcceptsV1(t *testing.T) {
	lat := lattice.TwoPoint()
	var buf bytes.Buffer
	buf.WriteString("TCBC")
	buf.WriteByte(1)
	writeUvarint := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeVarint := func(v int64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeString := func(s string) {
		writeUvarint(uint64(len(s)))
		buf.WriteString(s)
	}
	writeString(lat.Name())
	writeUvarint(0) // mitigates
	writeUvarint(1) // one scalar, no offset in v1
	writeString("x")
	writeUvarint(0) // no arrays
	code := []Instr{
		{Op: OpSetLbl, A: 0, B: 0},
		{Op: OpPush, A: 42},
		{Op: OpStore, A: 0},
		{Op: OpHalt},
	}
	writeUvarint(uint64(len(code)))
	for _, ins := range code {
		buf.WriteByte(byte(ins.Op))
		writeVarint(ins.A)
		writeVarint(ins.B)
	}
	p, err := Decode(bytes.NewReader(buf.Bytes()), lat)
	if err != nil {
		t.Fatalf("decoding v1 image: %v", err)
	}
	if len(p.ScalarOffsets) != 0 || len(p.ArrayOffsets) != 0 {
		t.Errorf("v1 decode invented offsets: %v / %v", p.ScalarOffsets, p.ArrayOffsets)
	}
	if !reflect.DeepEqual(p.Code, code) {
		t.Errorf("v1 code mismatch: %v", p.Code)
	}
}

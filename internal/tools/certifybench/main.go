// Command certifybench runs the adversarial leakage-certification
// sweep (internal/certify) and prints the rows as `go test -bench`
// format lines for internal/tools/benchjson. Every metric is a pure
// function of -seed — no wall-clock units appear — so equal seeds
// yield byte-identical output and therefore a byte-identical
// BENCH_certify.json.
//
// The command exits 1 if the sweep's acceptance claims fail: a
// mitigated configuration on partitioned hardware whose measured MI
// upper confidence bound exceeds its reported §7 bound, or no
// unmitigated baseline measuring ≥ 1 bit (the positive control).
//
// Usage:
//
//	go run ./internal/tools/certifybench [-seed 1] [-quick] | go run ./internal/tools/benchjson -o BENCH_certify.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/certify"
)

func main() {
	seed := flag.Int64("seed", 1, "sweep seed (equal seeds replay bit-for-bit)")
	quick := flag.Bool("quick", false, "run the smoke slice instead of the full matrix")
	flag.Parse()

	ctx := context.Background()
	rows, err := certify.Sweep(ctx, certify.SweepOptions{Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintln(os.Stderr, "certifybench:", err)
		os.Exit(1)
	}
	for _, line := range certify.BenchLines(rows) {
		fmt.Println(line)
	}
	if err := certify.Check(rows); err != nil {
		fmt.Fprintln(os.Stderr, "certifybench:", err)
		os.Exit(1)
	}
	certified := 0
	for _, r := range rows {
		if r.Result.Certified {
			certified++
		}
	}
	fmt.Fprintf(os.Stderr, "certifybench: %d rows, %d certified, positive control passed\n",
		len(rows), certified)
}

// Command smokeserve is the end-to-end smoke test for `timingc serve
// -listen`: it builds the real binary, starts it on an ephemeral
// loopback port, drives it through the client SDK (health, a
// 100-request batch, a metrics scrape in both formats, a pipelined
// /v1/stream exchange), then sends SIGINT mid-stream and checks the
// two-phase drain: the open stream gets a terminal shutting_down line
// and a clean end before the process exits. Run via `make smoke-serve`.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/transport/client"
	"repro/internal/transport/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "smoke-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("smoke-serve: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "smokeserve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "timingc")

	build := exec.Command("go", "build", "-o", bin, "./cmd/timingc")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build timingc: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	srv := exec.CommandContext(ctx, bin,
		"serve", "-listen", "127.0.0.1:0", "-workers", "2",
		filepath.Join("testdata", "mitigated.tc"))
	srv.Stderr = os.Stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return fmt.Errorf("start serve: %w", err)
	}
	defer srv.Process.Kill()

	// The serve command announces its bound address first; everything
	// after that is the shutdown transcript, drained in the background
	// so the final checks can read it.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "listening on http://"); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		return fmt.Errorf("serve never announced its address (scan err: %v)", sc.Err())
	}
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteString("\n")
		}
		rest <- b.String()
	}()

	base := "http://" + addr
	c := client.New(base, client.Options{MaxRetries: 3, RetrySeed: 1})

	health, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("health: %w", err)
	}
	if health.Status != wire.StatusOK || health.Workers != 2 {
		return fmt.Errorf("health = %+v", health)
	}

	const n = 100
	reqs := make([]wire.RunRequest, n)
	for i := range reqs {
		reqs[i] = wire.RunRequest{Inputs: map[string]int64{"h": int64(i % 64)}}
	}
	batch, err := c.RunBatch(ctx, reqs)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if len(batch.Results) != n {
		return fmt.Errorf("batch returned %d results, want %d", len(batch.Results), n)
	}
	for i, res := range batch.Results {
		if err := client.Err(res); err != nil {
			return fmt.Errorf("batch item %d: %w", i, err)
		}
		if res.Response.Time == 0 {
			return fmt.Errorf("batch item %d: zero simulated time", i)
		}
	}

	export, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if export.Requests < n {
		return fmt.Errorf("metrics count %d requests, want >= %d", export.Requests, n)
	}
	if export.Mitigations == 0 {
		return fmt.Errorf("no mitigations recorded: %+v", export)
	}
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("prometheus scrape: %w", err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"timingc_requests_total", "timingc_mitigations_total",
		"timingc_latency_cycles_bucket", "timingc_stream_items_total", "timingc_streams_active"} {
		if !strings.Contains(string(prom), want) {
			return fmt.Errorf("prometheus exposition missing %s:\n%s", want, prom)
		}
	}

	// Streaming phase: pipeline a burst over /v1/stream, then SIGINT
	// while the stream is still open. Two-phase drain means the open
	// stream is not cut off: the next request line is answered with a
	// terminal shutting_down error, the stream ends cleanly, and only
	// then does the process exit.
	s, err := c.Stream(ctx)
	if err != nil {
		return fmt.Errorf("stream open: %w", err)
	}
	const streamN = 8
	for i := 0; i < streamN; i++ {
		if err := s.Send(wire.RunRequest{Inputs: map[string]int64{"h": int64(i % 64)}}); err != nil {
			return fmt.Errorf("stream send %d: %w", i, err)
		}
	}
	for i := 0; i < streamN; i++ {
		res, err := s.Recv()
		if err != nil {
			return fmt.Errorf("stream recv %d: %w", i, err)
		}
		if res.Response == nil || res.Response.Time == 0 {
			return fmt.Errorf("stream item %d failed: %+v", i, res)
		}
	}

	if err := srv.Process.Signal(os.Interrupt); err != nil {
		return fmt.Errorf("interrupt: %w", err)
	}
	// The drain flag is set asynchronously to the signal; keep the
	// stream busy until the service starts refusing lines.
	sawDrain := false
	for i := 0; i < 200 && !sawDrain; i++ {
		if err := s.Send(wire.RunRequest{Inputs: map[string]int64{"h": 1}}); err != nil {
			return fmt.Errorf("mid-drain send: %w", err)
		}
		res, err := s.Recv()
		if err != nil {
			return fmt.Errorf("mid-drain recv: %w", err)
		}
		if res.Error != nil {
			if res.Error.Code != wire.CodeShuttingDown {
				return fmt.Errorf("mid-drain error = %+v, want %s", res.Error, wire.CodeShuttingDown)
			}
			sawDrain = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDrain {
		return fmt.Errorf("open stream never saw the shutting_down drain line after SIGINT")
	}
	// The drain line is terminal: the service closes its side.
	if _, err := s.Recv(); err != io.EOF {
		return fmt.Errorf("stream after drain line: err = %v, want io.EOF", err)
	}
	if err := s.Close(); err != nil {
		return fmt.Errorf("stream close: %w", err)
	}

	if err := srv.Wait(); err != nil {
		return fmt.Errorf("serve exited uncleanly: %w", err)
	}
	tail := <-rest
	for _, want := range []string{"draining", "served"} {
		if !strings.Contains(tail, want) {
			return fmt.Errorf("shutdown transcript missing %q:\n%s", want, tail)
		}
	}
	return nil
}

// Command gentestdata regenerates the case-study program listings in
// testdata/ from their builders, so the browsable .tc files can never
// drift from the code (a sync test enforces it).
package main

import (
	"log"
	"os"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
)

func main() {
	files := map[string]string{
		"testdata/login.tc":      login.Source(login.DefaultConfig()),
		"testdata/rsa.tc":        rsa.Source(rsa.DefaultConfig(), rsa.LanguageLevel),
		"testdata/rsa_system.tc": rsa.Source(rsa.DefaultConfig(), rsa.SystemLevel),
	}
	for name, src := range files {
		if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// Command benchjson converts `go test -bench` output into a JSON
// report. The raw benchmark lines are preserved verbatim (so benchstat
// can still consume them after extraction), every metric pair is
// parsed into a map, and two derived summaries are computed:
// engine-vs-engine throughput ratios for BenchmarkServerPool (the
// service-path headline), and per-worker-count speedup plus scaling
// efficiency (req/s at N workers ÷ N·req/s at 1) for
// BenchmarkPoolScaling (the multi-core scaling record).
//
// Usage:
//
//	go test -run '^$' -bench . ... | go run ./internal/tools/benchjson -o BENCH_engines.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix trimmed.
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the
	// line (ns/op, req/s, us/req, B/op, allocs/op, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full document written to the output file.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// MaxProcs is GOMAXPROCS for the run, recovered from the -N suffix
	// Go appends to benchmark names. Scaling numbers are meaningless
	// without it: worker counts beyond MaxProcs cannot speed up
	// wall-clock time.
	MaxProcs int `json:"maxprocs,omitempty"`
	// Raw holds the benchmark result lines verbatim, in input order —
	// feed them to benchstat to compare runs.
	Raw []string `json:"raw"`
	// Benchmarks holds the parsed lines, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Summary maps a derived-statistic name to its value; see
	// summarize for the engine throughput ratios.
	Summary map[string]float64 `json:"summary,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := parse(bufio.NewScanner(os.Stdin))
	rep.Summary = summarize(rep.Benchmarks)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) *Report {
	rep := &Report{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			if rep.Pkg == "" {
				rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			}
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       trimProcs(m[1]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		if rep.MaxProcs == 0 && b.Name != m[1] {
			if n, err := strconv.Atoi(m[1][strings.LastIndex(m[1], "-")+1:]); err == nil {
				rep.MaxProcs = n
			}
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Raw = append(rep.Raw, line)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	// Go only appends the -N suffix when GOMAXPROCS != 1, so absence
	// of a suffix on parsed lines means the run was single-proc.
	if rep.MaxProcs == 0 && len(rep.Benchmarks) > 0 {
		rep.MaxProcs = 1
	}
	return rep
}

// trimProcs drops the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// summarize derives engine throughput ratios: for every
// BenchmarkServerPool worker count that has both an engine=tree and an
// engine=vm run, it emits the mean req/s of each and their ratio as
// vm_vs_tree_req_per_s/workers=N. Multiple -count runs average.
func summarize(benches []Benchmark) map[string]float64 {
	type acc struct {
		sum float64
		n   int
	}
	// key: engine|workers
	groups := map[string]*acc{}
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkServerPool/") {
			continue
		}
		rps, ok := b.Metrics["req/s"]
		if !ok {
			continue
		}
		key := strings.TrimPrefix(b.Name, "BenchmarkServerPool/")
		a := groups[key]
		if a == nil {
			a = &acc{}
			groups[key] = a
		}
		a.sum += rps
		a.n++
	}
	sum := map[string]float64{}
	for key, a := range groups {
		sum["mean_req_per_s/"+key] = a.sum / float64(a.n)
	}
	for key, tree := range groups {
		if !strings.HasPrefix(key, "engine=tree/") {
			continue
		}
		rest := strings.TrimPrefix(key, "engine=tree/")
		vm, ok := groups["engine=vm/"+rest]
		if !ok || tree.sum == 0 {
			continue
		}
		ratio := (vm.sum / float64(vm.n)) / (tree.sum / float64(tree.n))
		sum["vm_vs_tree_req_per_s/"+rest] = ratio
	}
	scaling(benches, sum)
	vmopt(benches, sum)
	transport(benches, sum)
	certifySummary(benches, sum)
	if len(sum) == 0 {
		return nil
	}
	return sum
}

// vmoptName parses "BenchmarkVMOpt/opt=N/workers=M".
var vmoptName = regexp.MustCompile(`^BenchmarkVMOpt/opt=(\d+)/(workers=\d+)$`)

// vmopt derives the bytecode-pipeline record from BenchmarkVMOpt runs:
// the mean req/s of each opt level per worker count, and the
// opt2-vs-opt0 throughput ratio — the pipeline's speedup on the
// service path. Multiple -count runs average.
func vmopt(benches []Benchmark, sum map[string]float64) {
	type acc struct {
		sum float64
		n   int
	}
	// key: "opt=N/workers=M"
	groups := map[string]*acc{}
	for _, b := range benches {
		m := vmoptName.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		rps, ok := b.Metrics["req/s"]
		if !ok {
			continue
		}
		key := "opt=" + m[1] + "/" + m[2]
		a := groups[key]
		if a == nil {
			a = &acc{}
			groups[key] = a
		}
		a.sum += rps
		a.n++
	}
	for key, a := range groups {
		sum["mean_req_per_s/"+key] = a.sum / float64(a.n)
	}
	for key, base := range groups {
		if !strings.HasPrefix(key, "opt=0/") {
			continue
		}
		rest := strings.TrimPrefix(key, "opt=0/")
		opt2, ok := groups["opt=2/"+rest]
		if !ok || base.sum == 0 {
			continue
		}
		sum["opt2_vs_opt0_req_per_s/"+rest] =
			(opt2.sum / float64(opt2.n)) / (base.sum / float64(base.n))
	}
}

// transportName parses "BenchmarkTransport/mode=M/codec=C".
var transportName = regexp.MustCompile(`^BenchmarkTransport/mode=([a-z]+)/codec=([a-z]+)$`)

// transport derives the wire fast-path record from BenchmarkTransport
// runs: mean req/s per mode × codec, the fast-vs-std codec speedup per
// submission mode, and the headline fastpath-vs-baseline ratio — the
// pipelined stream with the fast codec over the per-request stdlib
// baseline, which is the ISSUE's ≥3× submit-path acceptance line.
// Multiple -count runs average.
func transport(benches []Benchmark, sum map[string]float64) {
	type acc struct {
		sum float64
		n   int
	}
	// key: "mode=M/codec=C"
	groups := map[string]*acc{}
	for _, b := range benches {
		m := transportName.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		rps, ok := b.Metrics["req/s"]
		if !ok {
			continue
		}
		key := "mode=" + m[1] + "/codec=" + m[2]
		a := groups[key]
		if a == nil {
			a = &acc{}
			groups[key] = a
		}
		a.sum += rps
		a.n++
	}
	mean := func(a *acc) float64 { return a.sum / float64(a.n) }
	for key, a := range groups {
		sum["mean_req_per_s/"+key] = mean(a)
	}
	for key, std := range groups {
		if !strings.HasSuffix(key, "/codec=std") {
			continue
		}
		mode := strings.TrimSuffix(key, "/codec=std")
		fast, ok := groups[mode+"/codec=fast"]
		if !ok || std.sum == 0 {
			continue
		}
		sum["fast_vs_std_req_per_s/"+mode] = mean(fast) / mean(std)
	}
	base, okBase := groups["mode=run/codec=std"]
	stream, okStream := groups["mode=stream/codec=fast"]
	if okBase && okStream && base.sum > 0 {
		sum["fastpath_stream_vs_std_run_req_per_s"] = mean(stream) / mean(base)
	}
}

// certifySummary derives the leakage-certification record from
// BenchmarkCertify rows (internal/tools/certifybench output): row and
// certified-row counts, how many mitigated rows certified out of how
// many ran, and the worst measured leakage on each side of the
// mitigation switch. All inputs are deterministic functions of the
// sweep seed, so the summary — like the rows — is byte-stable.
func certifySummary(benches []Benchmark, sum map[string]float64) {
	var rows, certified, mit, mitCertified float64
	maxUnmit, maxMitUpper := 0.0, 0.0
	for _, b := range benches {
		if !strings.HasPrefix(b.Name, "BenchmarkCertify/") {
			continue
		}
		rows++
		certified += b.Metrics["certified"]
		mitigated := strings.HasSuffix(b.Name, "/mit=on")
		if mitigated {
			mit++
			mitCertified += b.Metrics["certified"]
			if u := b.Metrics["upper_bits"]; u > maxMitUpper {
				maxMitUpper = u
			}
		} else if m := b.Metrics["measured_bits"]; m > maxUnmit {
			maxUnmit = m
		}
	}
	if rows == 0 {
		return
	}
	sum["certify_rows"] = rows
	sum["certify_certified"] = certified
	sum["certify_mitigated_rows"] = mit
	sum["certify_mitigated_certified"] = mitCertified
	sum["certify_max_unmitigated_measured_bits"] = maxUnmit
	sum["certify_max_mitigated_upper_bits"] = maxMitUpper
}

// scalingName parses "BenchmarkPoolScaling/<group>/workers=N" into the
// group key and worker count.
var scalingName = regexp.MustCompile(`^BenchmarkPoolScaling/(.+)/workers=(\d+)$`)

// scaling derives the scaling record from BenchmarkPoolScaling runs:
// for every mode/engine group it emits the mean req/s per worker
// count, the speedup over the 1-worker baseline, and the scaling
// efficiency speedup/N (1.0 = perfectly linear). Multiple -count runs
// average.
func scaling(benches []Benchmark, sum map[string]float64) {
	type acc struct {
		sum float64
		n   int
	}
	// group ("mode=batch/engine=vm") -> workers -> mean accumulator
	groups := map[string]map[int]*acc{}
	for _, b := range benches {
		m := scalingName.FindStringSubmatch(b.Name)
		if m == nil {
			continue
		}
		rps, ok := b.Metrics["req/s"]
		if !ok {
			continue
		}
		workers, err := strconv.Atoi(m[2])
		if err != nil || workers <= 0 {
			continue
		}
		byWorkers := groups[m[1]]
		if byWorkers == nil {
			byWorkers = map[int]*acc{}
			groups[m[1]] = byWorkers
		}
		a := byWorkers[workers]
		if a == nil {
			a = &acc{}
			byWorkers[workers] = a
		}
		a.sum += rps
		a.n++
	}
	for group, byWorkers := range groups {
		base, ok := byWorkers[1]
		for workers, a := range byWorkers {
			mean := a.sum / float64(a.n)
			key := fmt.Sprintf("%s/workers=%d", group, workers)
			sum["mean_req_per_s/"+key] = mean
			if ok && base.sum > 0 {
				speedup := mean / (base.sum / float64(base.n))
				sum["speedup/"+key] = speedup
				sum["scaling_efficiency/"+key] = speedup / float64(workers)
			}
		}
	}
}

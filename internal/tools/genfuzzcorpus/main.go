// Command genfuzzcorpus regenerates the checked-in seed corpora for the
// native fuzz targets (parser.FuzzParse, bytecode.FuzzDecode) from the
// example programs in testdata/. Run it from anywhere inside the repo
// after adding or changing example programs:
//
//	go run ./internal/tools/genfuzzcorpus
//
// Seeds are written in the `go test fuzz v1` corpus-file format, so
// plain `go test` exercises them and `go test -fuzz` mutates from them.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/bytecode"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/types"
)

func write(dir, name, body string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	content := "go test fuzz v1\n" + body + "\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		panic(err)
	}
}

func main() {
	repo := repoRoot()
	// Parser corpus: every checked-in example program.
	pdir := filepath.Join(repo, "internal/lang/parser/testdata/fuzz/FuzzParse")
	tcs, _ := filepath.Glob(filepath.Join(repo, "testdata", "*.tc"))
	for _, tc := range tcs {
		src, err := os.ReadFile(tc)
		if err != nil {
			panic(err)
		}
		name := "seed-" + filepath.Base(tc)
		write(pdir, name, "string("+strconv.Quote(string(src))+")")
	}

	// Optimizer corpus: every example program, crossed over machine
	// environment and timing-model selectors, so the differential
	// target starts from real programs on both timing models.
	odir := filepath.Join(repo, "internal/bytecode/optimize/testdata/fuzz/FuzzOptTraceIdentity")
	for i, tc := range tcs {
		src, err := os.ReadFile(tc)
		if err != nil {
			panic(err)
		}
		for _, micro := range []bool{false, true} {
			name := fmt.Sprintf("seed-%s-%v", filepath.Base(tc), micro)
			body := fmt.Sprintf("string(%s)\nbyte(%d)\nbool(%v)\nbyte(%d)",
				strconv.Quote(string(src)), i%4, micro, i%11)
			write(odir, name, body)
		}
	}

	// Bytecode corpus: structural prefixes plus real compiled images.
	bdir := filepath.Join(repo, "internal/bytecode/testdata/fuzz/FuzzDecode")
	write(bdir, "seed-empty", "[]byte(\"\")")
	write(bdir, "seed-magic", "[]byte("+strconv.Quote("TCBC")+")")
	write(bdir, "seed-v1-header", "[]byte("+strconv.Quote("TCBC\x01")+")")
	write(bdir, "seed-v2-header", "[]byte("+strconv.Quote("TCBC\x02")+")")
	write(bdir, "seed-bad-version", "[]byte("+strconv.Quote("TCBC\x09")+")")
	lat := lattice.TwoPoint()
	for _, tc := range []string{"mitigated.tc", "rsa.tc", "login.tc"} {
		src, err := os.ReadFile(filepath.Join(repo, "testdata", tc))
		if err != nil {
			panic(err)
		}
		prog, err := parser.Parse(string(src))
		if err != nil {
			fmt.Println("skip", tc, err)
			continue
		}
		res, err := types.Check(prog, lat)
		if err != nil {
			fmt.Println("skip", tc, err)
			continue
		}
		bp, err := bytecode.Compile(prog, res)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := bp.Encode(&buf); err != nil {
			panic(err)
		}
		write(bdir, "seed-"+tc, "[]byte("+strconv.Quote(buf.String())+")")
	}
	fmt.Println("done")
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			panic("genfuzzcorpus: no go.mod found above the working directory")
		}
		dir = parent
	}
}

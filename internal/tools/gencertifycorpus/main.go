// Command gencertifycorpus regenerates the progen certification
// corpus checked in at internal/certify/testdata/progen_corpus.json.
//
// A random well-typed program is only a useful certification workload
// when it actually has a timing channel to close: the tool scans
// generator seeds and keeps one only if (a) the unmitigated program's
// response time distinguishes ≥ 1 bit of the secret scalar on
// partitioned hardware — otherwise the positive control proves
// nothing — and (b) every secret's mitigated run executes at least one
// mitigate command, so the reported §7 bound is a real claim (K ≥ 1)
// rather than a vacuous zero; and (c) the mitigated configuration
// certifies on both engines, so a checked-in seed cannot make
// `make certify` flaky.
//
// Usage:
//
//	go run ./internal/tools/gencertifycorpus [-n 2] [-max-seed 500] [-o path]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/certify"
	"repro/internal/exec"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
)

func main() {
	n := flag.Int("n", 2, "corpus size (seeds to keep)")
	maxSeed := flag.Int64("max-seed", 500, "highest generator seed to scan")
	secrets := flag.Int("secrets", 8, "secret-space size per workload")
	out := flag.String("o", "internal/certify/testdata/progen_corpus.json", "output file")
	flag.Parse()

	var kept []certify.CorpusEntry
	ctx := context.Background()
	for seed := int64(1); seed <= *maxSeed && len(kept) < *n; seed++ {
		for _, v := range []string{"s_H_0", "s_H_1"} {
			ok, err := vet(ctx, seed, v, *secrets)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed %d var %s: %v\n", seed, v, err)
				continue
			}
			if ok {
				kept = append(kept, certify.CorpusEntry{Seed: seed, Var: v, N: *secrets})
				fmt.Printf("kept seed %d var %s\n", seed, v)
				break
			}
		}
	}
	if len(kept) < *n {
		fmt.Fprintf(os.Stderr, "gencertifycorpus: only %d of %d seeds qualified\n", len(kept), *n)
		os.Exit(1)
	}
	doc := struct {
		Programs []certify.CorpusEntry `json:"programs"`
	}{Programs: kept}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gencertifycorpus:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gencertifycorpus:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d programs)\n", *out, len(kept))
}

// vet applies the three corpus criteria to one (seed, var) candidate.
func vet(ctx context.Context, seed int64, secretVar string, n int) (bool, error) {
	w, err := certify.ProgenWorkload(seed, secretVar, n)
	if err != nil {
		return false, nil // no such variable or generation failed: skip quietly
	}

	// (a) Unmitigated signal: the exhaustive distinguisher must
	// extract ≥ 1 bit on partitioned hardware.
	unmit, err := certify.NewEngineTarget(w, certify.TargetConfig{Engine: "tree", Mitigated: false})
	if err != nil {
		return false, err
	}
	att, err := (&certify.Exhaustive{}).Mount(ctx, unmit, certify.NewRNG(seed))
	if err != nil {
		return false, err
	}
	if att.Bits < 1 {
		return false, nil
	}

	// (b) Mitigate coverage: every secret's mitigated run must
	// execute at least one mitigate command (K ≥ 1 per probe), or the
	// reported bound is vacuous for part of the secret space.
	env := hw.NewPartitioned(w.Lat, w.Config())
	eng, err := exec.NewEngine("tree", w.Prog, w.Res, env, exec.Options{
		Limits: exec.Limits{MaxSteps: 10_000_000},
	})
	if err != nil {
		return false, err
	}
	for i := 0; i < n; i++ {
		res, err := eng.Run(ctx, exec.Request{Setup: func(m *mem.Memory) { w.Set(i, m) }})
		if err != nil {
			return false, nil // step-limit blowups etc.: skip the seed
		}
		if len(res.Mitigations) == 0 {
			return false, nil
		}
	}

	// (c) The mitigated configuration must certify on both engines.
	for _, engine := range []string{"tree", "vm"} {
		t, err := certify.NewEngineTarget(w, certify.TargetConfig{Engine: engine, Mitigated: true})
		if err != nil {
			return false, err
		}
		res, err := certify.Certify(ctx, t, certify.Options{Seed: seed})
		if err != nil {
			return false, err
		}
		if !res.Certified {
			return false, nil
		}
	}
	return true, nil
}

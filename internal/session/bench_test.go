package session

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lattice"
)

// benchManager builds a manager sized for the benchmark at hand.
func benchManager(b *testing.B, opts Options) *Manager {
	b.Helper()
	if opts.Lat == nil {
		opts.Lat = lattice.TwoPoint()
	}
	m, err := NewManager(opts)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// tenantNames pre-renders n tenant IDs so the hot loop measures the
// manager, not fmt.
func tenantNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%05d", i)
	}
	return names
}

// BenchmarkSessionManager measures the admission hot path — Begin,
// budget check, Commit — across tenant working-set sizes: 1 (maximum
// per-session serialization), 100 (typical), and 10k (map- and
// LRU-heavy). Goroutines hit the manager concurrently, as transport
// handlers do.
func BenchmarkSessionManager(b *testing.B) {
	for _, tenants := range []int{1, 100, 10_000} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			m := benchManager(b, Options{})
			names := tenantNames(tenants)
			var next atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					tk, err := m.Begin(names[next.Add(1)%uint64(len(names))])
					if err != nil {
						b.Fatal(err)
					}
					tk.Commit(1024, 1)
				}
			})
		})
	}

	// Eviction churn: the working set is far larger than the cap, so
	// nearly every Begin evicts an LRU victim first — the worst case
	// for the shard lists.
	b.Run("eviction-churn", func(b *testing.B) {
		m := benchManager(b, Options{MaxSessions: 64})
		names := tenantNames(8192)
		var next atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tk, err := m.Begin(names[next.Add(1)%uint64(len(names))])
				if err != nil {
					b.Fatal(err)
				}
				tk.Commit(1024, 1)
			}
		})
	})

	// Budget-checked admission: every Begin recomputes the §7 bound
	// against a budget high enough to always admit — the enforcement
	// arithmetic itself is on the hot path here.
	b.Run("budget-checked", func(b *testing.B) {
		m := benchManager(b, Options{BudgetBits: 1e12, TTL: time.Hour})
		names := tenantNames(100)
		var next atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tk, err := m.Begin(names[next.Add(1)%uint64(len(names))])
				if err != nil {
					b.Fatal(err)
				}
				tk.Commit(1024, 1)
			}
		})
	})
}

// Package session gives each tenant of the mitigation service its own
// persistent predictive-mitigation state and a cumulative leakage
// account, enforced as a quantitative budget at admission.
//
// The paper's §7 mitigation is stateful per principal: prediction
// epochs, penalty doubling, and the log-shaped leakage bound
//
//	|L↑| · log2(K+1) · (1 + log2 T)  bits
//
// all accumulate across a client's interactions. A service that resets
// this state between requests (or shares it between unrelated clients)
// either loses the bound or lets tenants pollute each other's
// schedules. The Manager here keys that state by tenant ID: every
// request runs against its tenant's own mitigation.State (spliced into
// a shared server.Pool via HandleWith), and after every request the
// tenant's cumulative elapsed time T and mitigation count K advance,
// moving its leakage account up the log curve.
//
// Admission is where the budget bites: Begin denies a request with a
// typed *BudgetError once the tenant's accumulated bound has reached
// the configured budget, so the quantified leak is an enforceable
// resource, not an offline report. Counting every completed mitigation
// record toward K (rather than only secret-dependent ones) makes the
// account conservative — the service layer cannot see which mitigate
// sites the relevant projection of §7 would keep, so it assumes all of
// them leak.
//
// Sessions live in a sharded LRU with idle-TTL expiry, so an unbounded
// tenant population cannot exhaust memory: stale tenants age out (and
// their budget resets with their state — the epoch schedule restarts
// from a fresh session), and the LRU cap bounds the worst case.
//
// Concurrency: a session's lock is held from Begin until
// Commit/Abort, serializing same-tenant requests; that is what makes
// splicing one mitigation.State through a concurrent pool safe, and it
// matches the semantics of a tenant's requests forming one serial
// epoch sequence. Distinct tenants proceed in parallel (bounded only
// by the shard count of the underlying pool).
package session

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/mitigation"
	"repro/internal/obs"
)

// ErrBudgetExceeded is the sentinel matched by errors.Is for budget
// denials; the concrete error is always a *BudgetError.
var ErrBudgetExceeded = errors.New("session: leakage budget exceeded")

// ErrBadOptions is returned by NewManager on invalid configuration.
var ErrBadOptions = errors.New("session: invalid options")

// BudgetError reports a request denied at admission because the
// tenant's cumulative leakage bound reached its budget.
type BudgetError struct {
	// Tenant is the denied tenant ID.
	Tenant string
	// SpentBits is the tenant's accumulated leakage bound; BudgetBits
	// the configured cap it reached.
	SpentBits, BudgetBits float64
	// RetryAfter is how long until the tenant's session expires and its
	// account resets (0 when the session never expires — the budget is
	// then permanent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("session: tenant %q leakage budget exceeded (%.2f of %.2f bits)",
		e.Tenant, e.SpentBits, e.BudgetBits)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) work.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Options configure a Manager.
type Options struct {
	// Lat is the security lattice of the served program; required. It
	// sizes each session's per-level miss counters and the closure term
	// of the leakage bound.
	Lat lattice.Lattice
	// Scheme and Policy configure each session's prediction state,
	// with the same defaults as internal/mitigation (FastDoubling,
	// PerLevel).
	Scheme mitigation.Scheme
	Policy mitigation.Policy
	// ClosureSize is the |L↑| term of the leakage bound: the number of
	// levels an observer at the bottom of the lattice can see mitigated
	// timing at. Default Lat.Size()-1 (everything above bottom) — the
	// conservative service-layer choice, since the manager cannot see
	// which levels a particular program actually mitigates.
	ClosureSize int
	// BudgetBits caps each tenant's cumulative leakage bound; a tenant
	// whose account has reached it is denied at Begin until its session
	// expires. 0 disables enforcement (accounting still runs).
	BudgetBits float64
	// TTL expires sessions idle longer than this; expiry resets the
	// tenant's mitigation state and leakage account. 0 never expires.
	TTL time.Duration
	// MaxSessions bounds the live-session count; admitting a tenant
	// past the bound evicts the least-recently-used idle session.
	// Default 65536.
	MaxSessions int
	// Shards is the lock-striping factor of the session table; default
	// 16.
	Shards int
	// Metrics, when non-nil, receives session lifecycle and budget
	// counters.
	Metrics *obs.Metrics
	// Now is the clock, injectable for deterministic TTL tests; default
	// time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ClosureSize == 0 {
		o.ClosureSize = o.Lat.Size() - 1
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = 65536
	}
	if o.Shards == 0 {
		o.Shards = 16
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

func (o Options) validate() error {
	if o.Lat == nil {
		return fmt.Errorf("%w: lattice required", ErrBadOptions)
	}
	if o.BudgetBits < 0 {
		return fmt.Errorf("%w: BudgetBits must be ≥ 0", ErrBadOptions)
	}
	if o.TTL < 0 {
		return fmt.Errorf("%w: TTL must be ≥ 0", ErrBadOptions)
	}
	if o.MaxSessions < 0 {
		return fmt.Errorf("%w: MaxSessions must be ≥ 0", ErrBadOptions)
	}
	if o.Shards < 0 {
		return fmt.Errorf("%w: Shards must be ≥ 0", ErrBadOptions)
	}
	if o.ClosureSize < 0 {
		return fmt.Errorf("%w: ClosureSize must be ≥ 0", ErrBadOptions)
	}
	return nil
}

// session is one tenant's state. The shard lock guards the table
// fields (busy, lastSeen, LRU links); mu serializes the tenant's
// requests and guards the accounting fields.
type session struct {
	tenant string

	// LRU intrusive list links + table state, guarded by shard.mu.
	prev, next *session
	busy       int
	lastSeen   time.Time

	// mu is held from Begin to Commit/Abort: one request per tenant at
	// a time, which is exactly the serial epoch sequence of §7.
	mu      sync.Mutex
	mit     *mitigation.State
	epoch   int
	cumTime uint64 // T: total simulated cycles across the session
	cumMits int    // K: total completed mitigation records
	denials uint64
}

// shard is one stripe of the session table with an intrusive LRU list
// (head = most recent).
type shard struct {
	mu   sync.Mutex
	byID map[string]*session
	head *session
	tail *session
}

func (s *shard) pushFront(e *session) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) remove(e *session) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveFront(e *session) {
	if s.head == e {
		return
	}
	s.remove(e)
	s.pushFront(e)
}

// Manager is the sharded session table. Safe for concurrent use.
type Manager struct {
	opts     Options
	shards   []*shard
	perShard int // LRU cap per shard
}

// NewManager constructs a session manager.
func NewManager(opts Options) (*Manager, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	m := &Manager{opts: opts}
	m.perShard = (opts.MaxSessions + opts.Shards - 1) / opts.Shards
	if m.perShard < 1 {
		m.perShard = 1
	}
	for i := 0; i < opts.Shards; i++ {
		m.shards = append(m.shards, &shard{byID: make(map[string]*session)})
	}
	return m, nil
}

// BudgetBits returns the configured per-tenant budget (0 = unlimited).
func (m *Manager) BudgetBits() float64 { return m.opts.BudgetBits }

// TTL returns the configured idle expiry.
func (m *Manager) TTL() time.Duration { return m.opts.TTL }

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for _, s := range m.shards {
		s.mu.Lock()
		n += len(s.byID)
		s.mu.Unlock()
	}
	return n
}

// shardFor stripes tenants with FNV-1a: a fixed hash, so shard
// assignment (and with it LRU eviction order) is reproducible across
// runs — the session layer adds no nondeterminism to experiments.
func (m *Manager) shardFor(tenant string) *shard {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	return m.shards[h.Sum64()%uint64(len(m.shards))]
}

// spentBits is the tenant's accumulated §7 bound. Caller holds e.mu.
func (m *Manager) spentBits(e *session) float64 {
	return leakage.Bound(m.opts.ClosureSize, e.cumMits, e.cumTime)
}

// expired reports whether an idle session has outlived the TTL.
// Caller holds the shard lock.
func (m *Manager) expired(e *session, now time.Time) bool {
	return m.opts.TTL > 0 && e.busy == 0 && now.Sub(e.lastSeen) >= m.opts.TTL
}

// Ticket is one admitted request: the right to run against the
// tenant's mitigation state. Exactly one of Commit or Abort must be
// called; until then the tenant's session lock is held and further
// requests from the same tenant block.
type Ticket struct {
	m *Manager
	e *session
}

// Tenant returns the session's tenant ID.
func (t *Ticket) Tenant() string { return t.e.tenant }

// Mit returns the tenant's persistent mitigation state, to be spliced
// into the serving engine (Pool.HandleWith / Server.HandleWith).
func (t *Ticket) Mit() *mitigation.State { return t.e.mit }

// Epoch returns the session's request epoch (0 for the first request).
func (t *Ticket) Epoch() int { return t.e.epoch }

// SpentBits returns the leakage bound accumulated before this request.
func (t *Ticket) SpentBits() float64 { return t.m.spentBits(t.e) }

// Info is an accounting snapshot of one session.
type Info struct {
	Tenant string
	// Epoch counts committed requests.
	Epoch int
	// SpentBits is the cumulative §7 leakage bound; CumTime (T, cycles)
	// and CumMitigations (K) are its inputs.
	SpentBits      float64
	CumTime        uint64
	CumMitigations int
	// Denials counts budget rejections.
	Denials uint64
}

// Commit records a served request — elapsed simulated cycles and
// completed mitigation records — advancing the tenant's epoch and
// leakage account, and releases the session. It returns the updated
// accounting snapshot (the response's leakage_bits field).
func (t *Ticket) Commit(elapsed uint64, mitigations int) Info {
	e, m := t.e, t.m
	e.cumTime += elapsed
	e.cumMits += mitigations
	e.epoch++
	info := Info{
		Tenant:         e.tenant,
		Epoch:          e.epoch,
		SpentBits:      m.spentBits(e),
		CumTime:        e.cumTime,
		CumMitigations: e.cumMits,
		Denials:        e.denials,
	}
	e.mu.Unlock()
	m.checkIn(e)
	return info
}

// Abort releases the session without advancing its account — the
// request failed or was never run, and a failed run does not update
// mitigation state either, so the session is exactly as admitted.
func (t *Ticket) Abort() {
	t.e.mu.Unlock()
	t.m.checkIn(t.e)
}

// checkIn drops a session's busy mark and stamps its idle clock.
func (m *Manager) checkIn(e *session) {
	s := m.shardFor(e.tenant)
	s.mu.Lock()
	e.busy--
	e.lastSeen = m.opts.Now()
	s.mu.Unlock()
}

// Begin admits one request for a tenant: it finds or creates the
// session, waits for the tenant's previous request to finish, and
// checks the leakage budget. On success the returned Ticket holds the
// session locked; the caller must Commit or Abort it. A budget denial
// returns a *BudgetError (errors.Is ErrBudgetExceeded).
func (m *Manager) Begin(tenant string) (*Ticket, error) {
	if tenant == "" {
		return nil, fmt.Errorf("session: empty tenant ID")
	}
	s := m.shardFor(tenant)
	now := m.opts.Now()

	s.mu.Lock()
	e, ok := s.byID[tenant]
	if ok && m.expired(e, now) {
		// Idle past the TTL: the session ages out now and the tenant
		// starts fresh — new mitigation state, empty leakage account.
		s.remove(e)
		delete(s.byID, tenant)
		if m.opts.Metrics != nil {
			m.opts.Metrics.AddSessionEvicted(true)
		}
		ok = false
	}
	if !ok {
		m.evict(s, now)
		e = &session{
			tenant:   tenant,
			mit:      mitigation.NewState(m.opts.Lat, m.opts.Scheme, m.opts.Policy),
			lastSeen: now,
		}
		s.byID[tenant] = e
		s.pushFront(e)
		if m.opts.Metrics != nil {
			m.opts.Metrics.AddSessionCreated()
		}
	} else {
		s.moveFront(e)
		e.lastSeen = now
	}
	e.busy++
	s.mu.Unlock()

	// Serialize the tenant's requests: block here until the previous
	// request commits or aborts. The shard lock is NOT held across this
	// wait, so other tenants on the shard proceed.
	e.mu.Lock()

	if m.opts.BudgetBits > 0 {
		if spent := m.spentBits(e); spent >= m.opts.BudgetBits {
			e.denials++
			denErr := &BudgetError{
				Tenant:     tenant,
				SpentBits:  spent,
				BudgetBits: m.opts.BudgetBits,
				RetryAfter: m.retryAfter(),
			}
			e.mu.Unlock()
			m.checkIn(e)
			if m.opts.Metrics != nil {
				m.opts.Metrics.AddBudgetDenial()
			}
			return nil, denErr
		}
	}
	return &Ticket{m: m, e: e}, nil
}

// retryAfter derives the denial's Retry-After from the session
// schedule: the budget resets when the session idles out, and the
// denial itself counts as activity (checkIn stamps the idle clock),
// so the earliest useful retry is one full TTL from now. 0 when
// sessions never expire — the budget is then permanent.
func (m *Manager) retryAfter() time.Duration {
	if m.opts.TTL <= 0 {
		return 0
	}
	return m.opts.TTL
}

// evict makes room on a shard before an insert: expired sessions at
// the LRU tail go first, then — when the shard is at capacity — the
// least recently used idle session. Busy sessions are never evicted.
// Caller holds s.mu.
func (m *Manager) evict(s *shard, now time.Time) {
	// Opportunistic TTL sweep from the tail (oldest first).
	for e := s.tail; e != nil; {
		prev := e.prev
		if m.expired(e, now) {
			s.remove(e)
			delete(s.byID, e.tenant)
			if m.opts.Metrics != nil {
				m.opts.Metrics.AddSessionEvicted(true)
			}
		}
		e = prev
	}
	for len(s.byID) >= m.perShard {
		victim := s.tail
		for victim != nil && victim.busy > 0 {
			victim = victim.prev
		}
		if victim == nil {
			// Every session is busy; admit over cap rather than deadlock.
			return
		}
		s.remove(victim)
		delete(s.byID, victim.tenant)
		if m.opts.Metrics != nil {
			m.opts.Metrics.AddSessionEvicted(false)
		}
	}
}

// Peek returns a tenant's accounting snapshot without admitting a
// request (and without refreshing its LRU position). ok is false when
// the tenant has no live session.
func (m *Manager) Peek(tenant string) (Info, bool) {
	s := m.shardFor(tenant)
	s.mu.Lock()
	e, ok := s.byID[tenant]
	if ok {
		e.busy++ // pin against eviction while we read
	}
	s.mu.Unlock()
	if !ok {
		return Info{}, false
	}
	e.mu.Lock()
	info := Info{
		Tenant:         e.tenant,
		Epoch:          e.epoch,
		SpentBits:      m.spentBits(e),
		CumTime:        e.cumTime,
		CumMitigations: e.cumMits,
		Denials:        e.denials,
	}
	e.mu.Unlock()
	s.mu.Lock()
	e.busy--
	s.mu.Unlock()
	return info, true
}

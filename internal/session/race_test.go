package session_test

// This file lives in the external test package so it can drive the
// REAL serving stack — a server.Pool spliced with per-tenant
// mitigation state — against the session manager, exactly the way the
// transport layer does. The internal tests in session_test.go cover
// the manager's own locking; this one covers the interleaving the
// paper's accounting cannot afford to get wrong: many concurrent
// requests on ONE tenant racing TTL eviction, where a lost or
// double-counted epoch would silently corrupt the §7 leakage account.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/types"
)

// commit is one raw epoch-log record: what the caller handed Commit,
// and the Info the manager returned for it.
type commit struct {
	elapsed uint64
	mits    int
	info    session.Info
}

// TestSessionRaceEvictionAccounting hammers a single tenant from many
// goroutines — each doing the full Begin → pool.HandleWith → Commit
// cycle — while the injected clock jumps past the TTL mid-stream so
// generations of the session are evicted and recreated under load.
// Run with -race; the assertions reconstruct the account from the raw
// commit log and fail if any epoch was lost, double-counted, or
// mis-billed.
func TestSessionRaceEvictionAccounting(t *testing.T) {
	prog, err := parser.Parse(`
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 64) [H,H];
}
reply := 1;
`)
	if err != nil {
		t.Fatal(err)
	}
	lat := lattice.TwoPoint()
	res, err := types.Check(prog, lat)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := server.NewPool(prog, res, server.PoolOptions{
		Options: server.Options{Env: hw.NewPartitioned(lat, hw.Table1Config())},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const ttl = time.Minute
	var clock atomic.Int64 // nanoseconds since epoch 0
	met := obs.NewMetrics()
	mgr, err := session.NewManager(session.Options{
		Lat:     lat,
		TTL:     ttl,
		Metrics: met,
		Now:     func() time.Time { return time.Unix(0, clock.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		iters      = 25
	)
	ctx := context.Background()
	log := make([][]commit, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Periodically jump the clock past the TTL so the NEXT
				// Begin on the tenant finds the session expired and
				// rebuilds it — racing every other goroutine's cycle.
				if i%5 == 4 {
					clock.Add(int64(ttl) + 1)
				}
				tk, err := mgr.Begin("alice")
				if err != nil {
					t.Errorf("goroutine %d: Begin: %v", g, err)
					return
				}
				h := int64(g*iters + i)
				resp, err := pool.HandleWith(ctx, func(m *mem.Memory) {
					m.Set("h", h)
				}, tk.Mit())
				if err != nil {
					tk.Abort()
					t.Errorf("goroutine %d: HandleWith: %v", g, err)
					return
				}
				info := tk.Commit(resp.Time, len(resp.Mitigations))
				log[g] = append(log[g], commit{resp.Time, len(resp.Mitigations), info})
			}
		}(g)
	}
	wg.Wait()

	var all []commit
	for _, l := range log {
		all = append(all, l...)
	}
	if len(all) != goroutines*iters {
		t.Fatalf("commit log has %d records, want %d", len(all), goroutines*iters)
	}

	closure := lat.Size() - 1
	epochs := map[int]int{} // epoch number -> occurrences across generations
	// Post-states (CumTime, CumMitigations) and the pre-states each
	// commit claims to have advanced from.
	type state struct {
		t uint64
		k int
	}
	post := map[state]int{}
	pre := map[state]int{}
	for _, c := range all {
		// (a) The billed bits are exactly the §7 bound, recomputed
		// independently from the cumulative counters.
		if want := leakage.Bound(closure, c.info.CumMitigations, c.info.CumTime); c.info.SpentBits != want {
			t.Fatalf("SpentBits = %v, want Bound(%d, %d, %d) = %v",
				c.info.SpentBits, closure, c.info.CumMitigations, c.info.CumTime, want)
		}
		// (b) The program runs exactly one mitigation per request, so
		// the cumulative count must equal the epoch counter — any
		// drift means a commit was applied twice or dropped.
		if c.mits != 1 {
			t.Fatalf("each run must record exactly 1 mitigation, got %d", c.mits)
		}
		if c.info.CumMitigations != c.info.Epoch {
			t.Fatalf("CumMitigations = %d but Epoch = %d: epochs and mitigations disagree",
				c.info.CumMitigations, c.info.Epoch)
		}
		epochs[c.info.Epoch]++
		post[state{c.info.CumTime, c.info.CumMitigations}]++
		pre[state{c.info.CumTime - c.elapsed, c.info.CumMitigations - c.mits}]++
	}

	// (c) Epoch numbers across all generations must form prefixes of
	// 1..n: epoch k+1 can only exist in a generation that also
	// committed epoch k, so occurrence counts are non-increasing in k.
	for k := 1; epochs[k+1] > 0 || epochs[k] > 0; k++ {
		if epochs[k+1] > epochs[k] {
			t.Fatalf("epoch %d committed %d times but epoch %d only %d: a generation lost an epoch",
				k+1, epochs[k+1], k, epochs[k])
		}
	}

	// (d) Chain check from the raw log: every commit's pre-state is
	// either a fresh account (0,0) — the start of a generation — or
	// the post-state of exactly one other commit. A double-counted
	// elapsed or a lost update breaks the matching.
	generations := 0
	for s, n := range pre {
		if s == (state{0, 0}) {
			generations = n
			continue
		}
		if post[s] < n {
			t.Fatalf("%d commits advanced from state (T=%d, K=%d) but only %d commits produced it",
				n, s.t, s.k, post[s])
		}
	}
	if generations != epochs[1] {
		t.Fatalf("%d generation starts but %d first epochs", generations, epochs[1])
	}

	// The clock jumps must have actually forced evictions mid-stream;
	// otherwise this test degenerates to the serial one.
	if generations < 2 {
		t.Fatalf("want ≥ 2 session generations under TTL pressure, got %d", generations)
	}
	if s := met.Snapshot(); s.SessionsEvictedTTL != uint64(generations-1) {
		t.Errorf("SessionsEvictedTTL = %d, want %d (one per non-initial generation)",
			s.SessionsEvictedTTL, generations-1)
	}

	// Final visible account must be the last link of the longest chain.
	final, ok := mgr.Peek("alice")
	if !ok {
		t.Fatal("tenant session vanished")
	}
	if want := leakage.Bound(closure, final.CumMitigations, final.CumTime); final.SpentBits != want {
		t.Errorf("final SpentBits = %v, want %v", final.SpentBits, want)
	}
	if post[state{final.CumTime, final.CumMitigations}] == 0 {
		t.Errorf("final account (T=%d, K=%d) was never produced by any commit", final.CumTime, final.CumMitigations)
	}
}

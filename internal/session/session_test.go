package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/obs"
)

// fakeClock is an injectable deterministic clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Lat == nil {
		opts.Lat = lattice.TwoPoint()
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerValidates(t *testing.T) {
	if _, err := NewManager(Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("missing lattice: got %v, want ErrBadOptions", err)
	}
	if _, err := NewManager(Options{Lat: lattice.TwoPoint(), BudgetBits: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative budget: got %v, want ErrBadOptions", err)
	}
	if _, err := NewManager(Options{Lat: lattice.TwoPoint(), TTL: -time.Second}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative TTL: got %v, want ErrBadOptions", err)
	}
}

func TestAccountFollowsLeakageBound(t *testing.T) {
	m := newManager(t, Options{})
	closure := lattice.TwoPoint().Size() - 1

	var cumT uint64
	cumK := 0
	for epoch := 0; epoch < 5; epoch++ {
		tk, err := m.Begin("alice")
		if err != nil {
			t.Fatal(err)
		}
		if tk.Epoch() != epoch {
			t.Errorf("epoch = %d, want %d", tk.Epoch(), epoch)
		}
		info := tk.Commit(1000, 2)
		cumT += 1000
		cumK += 2
		want := leakage.Bound(closure, cumK, cumT)
		if info.SpentBits != want {
			t.Errorf("epoch %d: SpentBits = %v, want Bound(%d,%d,%d) = %v",
				epoch, info.SpentBits, closure, cumK, cumT, want)
		}
	}
}

func TestAbortLeavesAccountUntouched(t *testing.T) {
	m := newManager(t, Options{})
	tk, err := m.Begin("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk.Commit(500, 1)

	tk, err = m.Begin("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk.Abort()

	info, ok := m.Peek("alice")
	if !ok || info.Epoch != 1 || info.CumTime != 500 || info.CumMitigations != 1 {
		t.Errorf("abort must not advance the account: %+v (ok=%v)", info, ok)
	}
}

func TestTenantsAreIndependent(t *testing.T) {
	m := newManager(t, Options{})
	for i := 0; i < 3; i++ {
		tk, _ := m.Begin("alice")
		tk.Commit(1000, 1)
	}
	tk, err := m.Begin("bob")
	if err != nil {
		t.Fatal(err)
	}
	if tk.Epoch() != 0 || tk.SpentBits() != 0 {
		t.Errorf("bob must start fresh: epoch=%d spent=%v", tk.Epoch(), tk.SpentBits())
	}
	tk.Abort()
	if a, _ := m.Peek("alice"); a.Epoch != 3 {
		t.Errorf("alice's epochs must be untouched by bob: %+v", a)
	}
}

func TestBudgetDenialIsTypedAndCounted(t *testing.T) {
	met := obs.NewMetrics()
	m := newManager(t, Options{BudgetBits: 5, TTL: time.Minute, Metrics: met})

	// Spend past the budget: one big epoch.
	tk, err := m.Begin("bob")
	if err != nil {
		t.Fatal(err)
	}
	tk.Commit(1_000_000, 100) // bound ≫ 5 bits

	_, err = m.Begin("bob")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget Begin = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error must be a *BudgetError, got %T", err)
	}
	if be.Tenant != "bob" || be.BudgetBits != 5 || be.SpentBits <= 5 {
		t.Errorf("budget error fields: %+v", be)
	}
	if be.RetryAfter != time.Minute {
		t.Errorf("RetryAfter = %v, want the TTL (%v)", be.RetryAfter, time.Minute)
	}
	if s := met.Snapshot(); s.BudgetDenials != 1 {
		t.Errorf("BudgetDenials = %d, want 1", s.BudgetDenials)
	}
	if info, _ := m.Peek("bob"); info.Denials != 1 {
		t.Errorf("session denial count = %d, want 1", info.Denials)
	}
}

func TestZeroBudgetDisablesEnforcement(t *testing.T) {
	m := newManager(t, Options{})
	tk, _ := m.Begin("alice")
	tk.Commit(1_000_000_000, 1_000_000)
	if _, err := m.Begin("alice"); err != nil {
		t.Errorf("unlimited budget must always admit: %v", err)
	}
}

func TestTTLExpiryResetsAccount(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	met := obs.NewMetrics()
	m := newManager(t, Options{BudgetBits: 5, TTL: time.Minute, Metrics: met, Now: clk.now})

	tk, _ := m.Begin("bob")
	tk.Commit(1_000_000, 100)
	if _, err := m.Begin("bob"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want denial before expiry, got %v", err)
	}

	clk.advance(2 * time.Minute)
	tk, err := m.Begin("bob")
	if err != nil {
		t.Fatalf("expired session must reset the budget: %v", err)
	}
	if tk.Epoch() != 0 || tk.SpentBits() != 0 {
		t.Errorf("reset session must start fresh: epoch=%d spent=%v", tk.Epoch(), tk.SpentBits())
	}
	tk.Abort()
	if s := met.Snapshot(); s.SessionsEvictedTTL != 1 || s.SessionsCreated != 2 {
		t.Errorf("TTL eviction accounting: %+v", s)
	}
}

func TestLRUCapEvictsOldest(t *testing.T) {
	met := obs.NewMetrics()
	m := newManager(t, Options{MaxSessions: 4, Shards: 1, Metrics: met})

	for i := 0; i < 6; i++ {
		tk, err := m.Begin(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		tk.Commit(1, 0)
	}
	if n := m.Len(); n > 4 {
		t.Errorf("live sessions = %d, want ≤ cap 4", n)
	}
	// t0 and t1 were least recently used and must be gone.
	if _, ok := m.Peek("t0"); ok {
		t.Error("t0 must have been LRU-evicted")
	}
	if _, ok := m.Peek("t5"); !ok {
		t.Error("t5 (most recent) must survive")
	}
	if s := met.Snapshot(); s.SessionsEvictedLRU == 0 {
		t.Error("LRU evictions must be counted")
	}
	if s := met.Snapshot(); s.SessionsActive != int64(m.Len()) {
		t.Errorf("gauge %d disagrees with Len %d", met.Snapshot().SessionsActive, m.Len())
	}
}

func TestBusySessionsSurviveEviction(t *testing.T) {
	m := newManager(t, Options{MaxSessions: 1, Shards: 1})
	tk, err := m.Begin("pinned")
	if err != nil {
		t.Fatal(err)
	}
	// Admitting a second tenant at cap 1 must not evict the busy one.
	tk2, err := m.Begin("other")
	if err != nil {
		t.Fatal(err)
	}
	tk2.Commit(1, 0)
	tk.Commit(1, 0)
	// The busy session must have survived the over-cap admission.
	if _, ok := m.Peek("pinned"); !ok {
		t.Error("busy session must never be evicted")
	}
}

func TestSameTenantRequestsSerialize(t *testing.T) {
	m := newManager(t, Options{})
	tk, err := m.Begin("alice")
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan struct{})
	go func() {
		tk2, err := m.Begin("alice")
		if err == nil {
			tk2.Commit(1, 0)
		}
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("second request must block until the first commits")
	case <-time.After(20 * time.Millisecond):
	}
	tk.Commit(1, 0)
	select {
	case <-second:
	case <-time.After(2 * time.Second):
		t.Fatal("second request must proceed after commit")
	}
}

func TestConcurrentTenantsRace(t *testing.T) {
	m := newManager(t, Options{MaxSessions: 32, Shards: 4, Metrics: obs.NewMetrics(), BudgetBits: 1e9})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tenant := fmt.Sprintf("t%d", (g*200+i)%48)
				tk, err := m.Begin(tenant)
				if err != nil {
					continue
				}
				if i%7 == 0 {
					tk.Abort()
				} else {
					tk.Commit(uint64(i), i%3)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := m.Len(); n > 32 {
		t.Errorf("live sessions = %d, want ≤ 32", n)
	}
}

func TestEpochSequenceMatchesSerialReference(t *testing.T) {
	// Interleaving two tenants through one manager must give each the
	// same account it would get from a dedicated manager of its own —
	// the session layer's core independence property.
	shared := newManager(t, Options{})
	solo := newManager(t, Options{})

	runs := []struct {
		tenant  string
		elapsed uint64
		mits    int
	}{
		{"a", 100, 1}, {"b", 900, 3}, {"a", 200, 0}, {"b", 50, 1},
		{"a", 1000, 2}, {"b", 1, 0}, {"a", 5, 5},
	}
	for _, r := range runs {
		tk, err := shared.Begin(r.tenant)
		if err != nil {
			t.Fatal(err)
		}
		tk.Commit(r.elapsed, r.mits)
	}
	for _, r := range runs {
		if r.tenant != "a" {
			continue
		}
		tk, err := solo.Begin("a")
		if err != nil {
			t.Fatal(err)
		}
		tk.Commit(r.elapsed, r.mits)
	}
	got, _ := shared.Peek("a")
	want, _ := solo.Peek("a")
	if got != want {
		t.Errorf("interleaved account %+v != serial reference %+v", got, want)
	}
}

package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

func buildProg(t *testing.T, src string) (*ast.Program, *types.Result) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

const echoSrc = `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 64) [H,H];
}
reply := 1;
`

func setH(h int64) Request {
	return func(m *mem.Memory) { m.Set("h", h) }
}

func ctxb() context.Context { return context.Background() }

func TestServerRequiresEnv(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	_, err := New(p, r, Options{})
	if !errors.Is(err, ErrNoEnv) {
		t.Errorf("New without Env = %v, want ErrNoEnv", err)
	}
}

func TestServerRejectsBadOptions(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	_, err := New(p, r, Options{Env: hw.NewFlat(lat, 2), Limits: exec.Limits{MaxSteps: -1}})
	if !errors.Is(err, ErrBadOptions) {
		t.Errorf("New with negative step budget = %v, want ErrBadOptions", err)
	}
}

func TestServerSettlesAndStaysConstant(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewPartitioned(lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, setH(int64(i*13)%64))
	}
	resps, err := srv.HandleAll(ctxb(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	settled := SettledAfter(resps)
	if settled < 0 {
		t.Fatal("server never settled")
	}
	if settled > 10 {
		t.Errorf("settled only after %d requests", settled)
	}
	// After settling, every request takes the same time — regardless of
	// the secret — because the persistent schedule covers them all.
	base := resps[len(resps)-1].Time
	for _, resp := range resps[settled+5:] {
		if resp.Time != base {
			t.Errorf("post-settlement time varies: request %d took %d, want %d",
				resp.Index, resp.Time, base)
		}
	}
	if srv.Served() != 40 {
		t.Errorf("Served = %d", srv.Served())
	}
}

func TestServerMissCountersPersist(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// First request with a big secret inflates the schedule...
	first, err := srv.Handle(ctxb(), setH(63))
	if err != nil {
		t.Fatal(err)
	}
	if first.Mispredictions == 0 {
		t.Fatal("first request should mispredict (init estimate is 1)")
	}
	missesAfterFirst := srv.MitigationState().TotalMisses()
	// ...so an identical later request does not mispredict at all.
	second, err := srv.Handle(ctxb(), setH(63))
	if err != nil {
		t.Fatal(err)
	}
	if second.Mispredictions != 0 {
		t.Error("second identical request should be covered")
	}
	if srv.MitigationState().TotalMisses() != missesAfterFirst {
		t.Error("miss counters should not grow on covered requests")
	}
}

func TestServerTotalLeakageBounded(t *testing.T) {
	// Across a whole request sequence with adversarially spread
	// secrets, the number of distinct response times stays
	// logarithmic: one per schedule step, not one per secret.
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2)})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		resp, err := srv.Handle(ctxb(), setH(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		distinct[resp.Time] = true
	}
	// 64 distinct secrets; schedule values are ≤ log2(maxTime) many.
	if len(distinct) > 10 {
		t.Errorf("%d distinct response times across 64 secrets; expected few schedule steps",
			len(distinct))
	}
}

func TestServerUnmitigatedLeaksEachSecret(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2), DisableMitigation: true})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		resp, err := srv.Handle(ctxb(), setH(int64(i*3)))
		if err != nil {
			t.Fatal(err)
		}
		distinct[resp.Time] = true
	}
	if len(distinct) < 16 {
		t.Errorf("unmitigated server should leak every secret: %d distinct", len(distinct))
	}
}

func TestServerPerSitePolicy(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{
		Env:    hw.NewFlat(lat, 2),
		Policy: mitigation.PerSite,
		Scheme: mitigation.FastDoubling{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(ctxb(), setH(40)); err != nil {
		t.Fatal(err)
	}
	if srv.MitigationState().TotalMisses() == 0 {
		t.Error("per-site counters should persist too")
	}
}

func TestServerStepBudgetExceeded(t *testing.T) {
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 100000) {
    i := i + 1;
}
`)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2), Limits: exec.Limits{MaxSteps: 100}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.Handle(ctxb(), nil)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Handle over step budget = %v, want ErrBudgetExceeded", err)
	}
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *RequestError", err)
	}
	if re.Index != 0 {
		t.Errorf("RequestError.Index = %d, want 0", re.Index)
	}
	if srv.Served() != 0 {
		t.Errorf("failed request counted as served: %d", srv.Served())
	}
}

func TestServerCycleBudgetExceeded(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2), Limits: exec.Limits{MaxCycles: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(ctxb(), setH(63)); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Handle over cycle budget = %v, want ErrBudgetExceeded", err)
	}
}

func TestServerContextDeadline(t *testing.T) {
	// A long-running request aborts cleanly at the deadline with a
	// typed error, and the aborted run does not perturb the persistent
	// mitigation state.
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 100000000) {
    i := i + 1;
}
`)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2), Limits: exec.Limits{MaxSteps: 1 << 60}})
	if err != nil {
		t.Fatal(err)
	}
	before := srv.MitigationState().Clone()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = srv.Handle(ctx, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Handle past deadline = %v, want context.DeadlineExceeded", err)
	}
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *RequestError", err)
	}
	if !srv.MitigationState().Equal(before) {
		t.Error("aborted request mutated persistent mitigation state")
	}
}

func TestServerContextAlreadyCanceled(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Handle(ctx, setH(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Handle with canceled ctx = %v, want context.Canceled", err)
	}
}

func TestServerSnapshotMetrics(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewPartitioned(lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := srv.Handle(ctxb(), setH(int64(i*7)%64)); err != nil {
			t.Fatal(err)
		}
	}
	snap := srv.Snapshot()
	if snap.Requests != 8 {
		t.Errorf("snapshot requests = %d, want 8", snap.Requests)
	}
	if snap.Mitigations != 8 {
		t.Errorf("snapshot mitigations = %d, want 8", snap.Mitigations)
	}
	if snap.Mispredictions == 0 {
		t.Error("expected at least one misprediction while settling")
	}
	if snap.PaddingCycles == 0 {
		t.Error("expected padding cycles under mitigation")
	}
	if snap.UsefulCycles() == 0 || snap.UsefulCycles() >= snap.Cycles {
		t.Errorf("useful cycles = %d of %d, want a proper share", snap.UsefulCycles(), snap.Cycles)
	}
	if snap.Steps == 0 {
		t.Error("expected steps to be recorded")
	}
	if snap.Latency.Count != 8 {
		t.Errorf("latency count = %d, want 8", snap.Latency.Count)
	}
	if snap.HW.L1DHits+snap.HW.L1DMisses == 0 {
		t.Error("expected data-cache traffic in hardware stats")
	}
	if rate := snap.HW.L1DHitRate(); rate < 0 || rate > 1 {
		t.Errorf("L1D hit rate = %f out of range", rate)
	}
	if snap.String() == "" {
		t.Error("snapshot rendering is empty")
	}
}

func TestSettledAfterEdgeCases(t *testing.T) {
	if got := SettledAfter(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
	if got := SettledAfter([]*Response{}); got != 0 {
		t.Errorf("empty non-nil = %d", got)
	}
	// Single request.
	if got := SettledAfter([]*Response{{}}); got != 0 {
		t.Errorf("single clean = %d", got)
	}
	if got := SettledAfter([]*Response{{Mispredictions: 1}}); got != -1 {
		t.Errorf("single miss = %d", got)
	}
	clean := []*Response{{}, {}}
	if got := SettledAfter(clean); got != 0 {
		t.Errorf("clean = %d", got)
	}
	tailMiss := []*Response{{}, {Mispredictions: 1}}
	if got := SettledAfter(tailMiss); got != -1 {
		t.Errorf("tail miss = %d", got)
	}
	// Every request mispredicts: the tail never settles.
	allMiss := []*Response{{Mispredictions: 1}, {Mispredictions: 2}, {Mispredictions: 1}}
	if got := SettledAfter(allMiss); got != -1 {
		t.Errorf("all missing = %d", got)
	}
	midMiss := []*Response{{Mispredictions: 2}, {}}
	if got := SettledAfter(midMiss); got != 1 {
		t.Errorf("mid miss = %d", got)
	}
}

func TestTimesHelper(t *testing.T) {
	resps := []*Response{{Time: 5}, {Time: 9}}
	ts := Times(resps)
	if len(ts) != 2 || ts[0] != 5 || ts[1] != 9 {
		t.Errorf("Times = %v", ts)
	}
}

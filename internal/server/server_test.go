package server

import (
	"testing"

	"repro/internal/lang/ast"
	"repro/internal/lang/parser"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

func buildProg(t *testing.T, src string) (*ast.Program, *types.Result) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := types.Check(p, lattice.TwoPoint())
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

const echoSrc = `
var h : H;
var reply : L;
mitigate (1, H) [L,L] {
    sleep(h % 64) [H,H];
}
reply := 1;
`

func setH(h int64) Request {
	return func(m *mem.Memory) { m.Set("h", h) }
}

func TestServerRequiresEnv(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	if _, err := New(p, r, Options{}); err == nil {
		t.Error("expected error without Env")
	}
}

func TestServerSettlesAndStaysConstant(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewPartitioned(lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, setH(int64(i*13)%64))
	}
	resps, err := srv.HandleAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	settled := SettledAfter(resps)
	if settled < 0 {
		t.Fatal("server never settled")
	}
	if settled > 10 {
		t.Errorf("settled only after %d requests", settled)
	}
	// After settling, every request takes the same time — regardless of
	// the secret — because the persistent schedule covers them all.
	base := resps[len(resps)-1].Time
	for _, resp := range resps[settled+5:] {
		if resp.Time != base {
			t.Errorf("post-settlement time varies: request %d took %d, want %d",
				resp.Index, resp.Time, base)
		}
	}
	if srv.Served() != 40 {
		t.Errorf("Served = %d", srv.Served())
	}
}

func TestServerMissCountersPersist(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// First request with a big secret inflates the schedule...
	first, err := srv.Handle(setH(63))
	if err != nil {
		t.Fatal(err)
	}
	if first.Mispredictions == 0 {
		t.Fatal("first request should mispredict (init estimate is 1)")
	}
	missesAfterFirst := srv.MitigationState().TotalMisses()
	// ...so an identical later request does not mispredict at all.
	second, err := srv.Handle(setH(63))
	if err != nil {
		t.Fatal(err)
	}
	if second.Mispredictions != 0 {
		t.Error("second identical request should be covered")
	}
	if srv.MitigationState().TotalMisses() != missesAfterFirst {
		t.Error("miss counters should not grow on covered requests")
	}
}

func TestServerTotalLeakageBounded(t *testing.T) {
	// Across a whole request sequence with adversarially spread
	// secrets, the number of distinct response times stays
	// logarithmic: one per schedule step, not one per secret.
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2)})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		resp, err := srv.Handle(setH(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		distinct[resp.Time] = true
	}
	// 64 distinct secrets; schedule values are ≤ log2(maxTime) many.
	if len(distinct) > 10 {
		t.Errorf("%d distinct response times across 64 secrets; expected few schedule steps",
			len(distinct))
	}
}

func TestServerUnmitigatedLeaksEachSecret(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{Env: hw.NewFlat(lat, 2), DisableMitigation: true})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		resp, err := srv.Handle(setH(int64(i * 3)))
		if err != nil {
			t.Fatal(err)
		}
		distinct[resp.Time] = true
	}
	if len(distinct) < 16 {
		t.Errorf("unmitigated server should leak every secret: %d distinct", len(distinct))
	}
}

func TestServerPerSitePolicy(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	srv, err := New(p, r, Options{
		Env:    hw.NewFlat(lat, 2),
		Policy: mitigation.PerSite,
		Scheme: mitigation.FastDoubling{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(setH(40)); err != nil {
		t.Fatal(err)
	}
	if srv.MitigationState().TotalMisses() == 0 {
		t.Error("per-site counters should persist too")
	}
}

func TestSettledAfterEdgeCases(t *testing.T) {
	if got := SettledAfter(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
	clean := []*Response{{}, {}}
	if got := SettledAfter(clean); got != 0 {
		t.Errorf("clean = %d", got)
	}
	tailMiss := []*Response{{}, {Mispredictions: 1}}
	if got := SettledAfter(tailMiss); got != -1 {
		t.Errorf("tail miss = %d", got)
	}
	midMiss := []*Response{{Mispredictions: 2}, {}}
	if got := SettledAfter(midMiss); got != 1 {
		t.Errorf("mid miss = %d", got)
	}
}

func TestTimesHelper(t *testing.T) {
	resps := []*Response{{Time: 5}, {Time: 9}}
	ts := Times(resps)
	if len(ts) != 2 || ts[0] != 5 || ts[1] != 9 {
		t.Errorf("Times = %v", ts)
	}
}

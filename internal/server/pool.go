package server

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/types"
)

// PoolOptions configure a Pool. The embedded Options configure every
// worker; Options.Env is a prototype that is cloned once per worker,
// so each shard owns its own partitioned hardware state and the
// prototype itself is never mutated.
type PoolOptions struct {
	Options
	// Workers is the number of shards; default GOMAXPROCS.
	Workers int
	// QueueDepth is the per-worker bounded submission queue; Submit
	// blocks (backpressure) once a shard has QueueDepth pending
	// requests. Default 2.
	QueueDepth int
	// Shard maps a submission index to a worker. The default is
	// round-robin (index % Workers). The result is reduced modulo
	// Workers, so any total function is safe. For a FIXED shard
	// function the pool is deterministic: shard i's responses are
	// identical, trace for trace, to a serial Server over shard i's
	// subsequence on a clone of the same environment.
	Shard func(index int) int
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 2
	}
	if o.Shard == nil {
		workers := o.Workers
		o.Shard = func(index int) int { return index % workers }
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewMetrics()
	}
	return o
}

func (o PoolOptions) validate() error {
	if err := o.Options.validate(); err != nil {
		return err
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers must be ≥ 0", ErrBadOptions)
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("%w: QueueDepth must be ≥ 0", ErrBadOptions)
	}
	return nil
}

// job is one queue entry: either a single request or a batch of
// same-shard requests (when batch is non-nil, the other fields are
// unused).
type job struct {
	ctx   context.Context
	req   Request
	index int
	out   chan result
	batch *batch
}

// batch is a run of same-shard requests processed as one queue entry.
// HandleAll groups a burst by shard so queue sends, channel receives,
// and lock acquisitions amortize over the run instead of costing one
// round-trip per request; within a shard the requests still run
// serially in submission order, so per-shard determinism is untouched.
type batch struct {
	ctx   context.Context
	reqs  []Request
	idxs  []int       // global submission indices, parallel to reqs
	resps []*Response // filled by the worker, parallel to reqs
	errs  []error     // parallel to reqs
	done  chan *batch // buffered (1); self-sent when the run finishes
}

type result struct {
	resp *Response
	err  error
}

// worker owns one shard: a serial Server over a private clone of the
// machine environment and private persistent mitigation state.
type worker struct {
	shard int
	srv   *Server
	jobs  chan job
}

// Pool shards requests across workers. Each worker owns its own
// machine environment and persistent mitigation state, so the
// per-shard leakage bound is exactly the serial Server's bound — the
// per-domain state partitioning that makes concurrent sharing safe.
// Submission is bounded (backpressure via QueueDepth) and shutdown is
// graceful: Close drains in-flight work before returning.
//
// Submit/Handle/HandleAll are safe for concurrent use.
type Pool struct {
	opts    PoolOptions
	workers []*worker
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed; held (R) across queue sends
	nMu    sync.Mutex   // guards n
	n      int
	closed bool
}

// NewPool constructs a pool over a type-checked program. Errors are
// sentinel-typed like New's.
func NewPool(prog *ast.Program, res *types.Result, opts PoolOptions) (*Pool, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	p := &Pool{opts: opts}
	for i := 0; i < opts.Workers; i++ {
		wopts := opts.Options
		wopts.Env = opts.Env.Clone()
		srv, err := New(prog, res, wopts)
		if err != nil {
			return nil, err
		}
		w := &worker{shard: i, srv: srv, jobs: make(chan job, opts.QueueDepth)}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go p.run(w)
	}
	return p, nil
}

// run is one worker's loop: drain the shard queue in order, preserving
// the serial per-shard semantics.
func (p *Pool) run(w *worker) {
	defer p.wg.Done()
	for j := range w.jobs {
		if b := j.batch; b != nil {
			// A failed request does not stop the rest of the batch:
			// same behavior as independent single-request jobs.
			for i, req := range b.reqs {
				b.resps[i], b.errs[i] = p.serve(w, b.ctx, req, b.idxs[i])
			}
			b.done <- b
			continue
		}
		resp, err := p.serve(w, j.ctx, j.req, j.index)
		j.out <- result{resp, err}
	}
}

// serve runs one request on a worker's shard server and rewrites the
// shard-local index/shard fields to the pool-global view.
func (p *Pool) serve(w *worker, ctx context.Context, req Request, index int) (*Response, error) {
	resp, err := w.srv.Handle(ctx, req)
	if resp != nil {
		resp.ShardIndex = resp.Index
		resp.Index = index
		resp.Shard = w.shard
	}
	if re, ok := err.(*RequestError); ok {
		re.Index = index
		re.Shard = w.shard
	}
	return resp, err
}

// resultChans recycles the one-shot response channels: every request
// allocates one, and on the service hot path that was the single
// largest allocation source. A channel is recycled only after its
// result has been received (it is then provably empty); a Wait aborted
// by context cancellation leaves the channel to the garbage collector,
// since the worker's send may still be in flight.
var resultChans = sync.Pool{
	New: func() any { return make(chan result, 1) },
}

// Future is a pending response.
type Future struct {
	out  chan result
	done result
	got  bool
}

// Wait blocks until the response is ready or the context is done.
func (f *Future) Wait(ctx context.Context) (*Response, error) {
	if f.got {
		return f.done.resp, f.done.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast path: the result is usually already buffered by the time the
	// submitter waits (HandleAll submits ahead of waiting), and a plain
	// receive is much cheaper than a select.
	select {
	case r := <-f.out:
		f.done, f.got = r, true
		resultChans.Put(f.out)
		f.out = nil
		return r.resp, r.err
	default:
	}
	select {
	case r := <-f.out:
		f.done, f.got = r, true
		resultChans.Put(f.out)
		f.out = nil
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submit enqueues a request on its shard's bounded queue, blocking for
// backpressure when the shard is saturated (or until ctx is done). The
// request's context is ctx as well: it bounds both queue wait and
// execution.
func (p *Pool) Submit(ctx context.Context, req Request) (*Future, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	p.nMu.Lock()
	index := p.n
	p.n++
	p.nMu.Unlock()
	w := p.workers[mod(p.opts.Shard(index), len(p.workers))]
	j := job{ctx: ctx, req: req, index: index, out: resultChans.Get().(chan result)}
	// Fast path: queue has room, skip the select.
	select {
	case w.jobs <- j:
		return &Future{out: j.out}, nil
	default:
	}
	select {
	case w.jobs <- j:
		return &Future{out: j.out}, nil
	case <-ctx.Done():
		// The job never reached a worker, so its channel is still empty
		// and safe to recycle.
		resultChans.Put(j.out)
		return nil, &RequestError{Index: index, Shard: w.shard, Err: ctx.Err()}
	}
}

// Handle submits a request and waits for its response.
func (p *Pool) Handle(ctx context.Context, req Request) (*Response, error) {
	f, err := p.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return f.Wait(ctx)
}

// HandleAll submits a request sequence and waits for every response,
// returned in submission order. The first error (by submission order)
// is returned; entries whose requests failed are nil. Unlike the
// serial Server, later requests still run — both across shards and
// within one, mirroring independent Submit calls.
//
// The burst is grouped into one batch per shard (each a single queue
// entry), so the per-request queue/channel round-trip of Submit+Wait
// amortizes over the burst. Request execution order within each shard
// is still submission order, so responses are identical to the
// Submit-per-request path.
func (p *Pool) HandleAll(ctx context.Context, reqs []Request) ([]*Response, error) {
	out := make([]*Response, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return out, ErrPoolClosed
	}
	// Reserve a contiguous index block for the burst.
	p.nMu.Lock()
	base := p.n
	p.n += len(reqs)
	p.nMu.Unlock()
	// Group into per-shard batches, preserving submission order. Two
	// passes: shard sizes first, so every batch slice is allocated
	// exactly once at its final length.
	batches := make([]*batch, len(p.workers))
	shards := make([]int, len(reqs))
	counts := make([]int, len(p.workers))
	for i := range reqs {
		shard := mod(p.opts.Shard(base+i), len(p.workers))
		shards[i] = shard
		counts[shard]++
	}
	for shard, n := range counts {
		if n > 0 {
			batches[shard] = &batch{
				ctx:   ctx,
				done:  make(chan *batch, 1),
				reqs:  make([]Request, 0, n),
				idxs:  make([]int, 0, n),
				resps: make([]*Response, n),
				errs:  make([]error, n),
			}
		}
	}
	for i, r := range reqs {
		b := batches[shards[i]]
		b.reqs = append(b.reqs, r)
		b.idxs = append(b.idxs, base+i)
	}
	errs := make([]error, len(reqs))
	for shard, b := range batches {
		if b == nil {
			continue
		}
		w := p.workers[shard]
		select {
		case w.jobs <- job{batch: b}:
		case <-ctx.Done():
			// This shard's run never reached its worker.
			for _, index := range b.idxs {
				errs[index-base] = &RequestError{Index: index, Shard: shard, Err: ctx.Err()}
			}
			batches[shard] = nil
		}
	}
	p.mu.RUnlock()
	for _, b := range batches {
		if b == nil {
			continue
		}
		<-b.done
		for i, index := range b.idxs {
			out[index-base] = b.resps[i]
			errs[index-base] = b.errs[i]
		}
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	return out, firstErr
}

// Workers returns the number of shards.
func (p *Pool) Workers() int { return len(p.workers) }

// Served returns the number of requests completed across all shards.
func (p *Pool) Served() int {
	total := 0
	for _, w := range p.workers {
		total += w.srv.Served()
	}
	return total
}

// Shard exposes one shard's serial server (for inspection — e.g.
// comparing per-shard mitigation state against a serial reference).
func (p *Pool) Shard(i int) *Server { return p.workers[i].srv }

// Metrics returns the shared instrumentation accumulator.
func (p *Pool) Metrics() *obs.Metrics { return p.opts.Metrics }

// Snapshot returns the pooled instrumentation, with hardware counters
// summed across every shard's environment. Call after Close (or while
// quiescent) for exact numbers; concurrent snapshots are approximate.
func (p *Pool) Snapshot() obs.Snapshot {
	snap := p.opts.Metrics.Snapshot()
	var hwStats hw.Stats
	for _, w := range p.workers {
		hwStats = hwStats.Add(w.srv.Env().Stats())
	}
	snap.HW = hwStats
	return snap
}

// Close gracefully shuts the pool down: it stops accepting new
// requests, drains every shard's queue, and waits for in-flight
// requests to finish. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, w := range p.workers {
		close(w.jobs)
	}
	p.wg.Wait()
}

// mod reduces i into [0, n), tolerating negative shard results.
func mod(i, n int) int {
	m := i % n
	if m < 0 {
		m += n
	}
	return m
}

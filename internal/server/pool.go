package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/types"
)

// PoolOptions configure a Pool. The embedded Options configure every
// worker; Options.Env is a prototype that is cloned once per worker,
// so each shard owns its own partitioned hardware state and the
// prototype itself is never mutated.
type PoolOptions struct {
	Options
	// Workers is the number of shards; default GOMAXPROCS.
	Workers int
	// QueueDepth is the per-worker bounded submission queue; Submit
	// blocks (backpressure) once a shard has QueueDepth pending
	// requests. Default 2.
	QueueDepth int
	// Shard maps a submission index to a worker. The default is
	// round-robin (index % Workers). The result is reduced modulo
	// Workers, so any total function is safe. For a FIXED shard
	// function the pool is deterministic: shard i's responses are
	// identical, trace for trace, to a serial Server over shard i's
	// subsequence on a clone of the same environment. (With the circuit
	// breaker enabled, requests may be redistributed away from ejected
	// shards, which trades per-shard determinism for availability.)
	Shard func(index int) int

	// ShedOnSaturation turns backpressure into load shedding: a
	// submission that finds its shard queue full fails immediately with
	// ErrOverloaded instead of blocking until space frees up. Bounded
	// latency for the caller, bounded queues for the pool.
	ShedOnSaturation bool

	// MaxRetries, when positive, makes Handle transparently re-submit a
	// request after a retryable failure (see Retryable), up to this
	// many extra attempts, with exponential backoff and deterministic
	// jitter between attempts.
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles each attempt
	// (capped at 100ms) with jitter in [delay/2, delay]. Default 1ms.
	RetryBase time.Duration
	// RetrySeed seeds the deterministic jitter sequence.
	RetrySeed int64

	// BreakerThreshold, when positive, arms a per-shard circuit
	// breaker: after this many consecutive serve failures a shard is
	// ejected (its traffic redistributes to the next healthy shard)
	// until a cooldown passes and a half-open probe succeeds. Context
	// cancellation by the caller is neutral; engine errors and deadline
	// expiries count as failures.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects traffic
	// before allowing a probe. Default 10ms.
	BreakerCooldown time.Duration
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 2
	}
	if o.Shard == nil {
		workers := o.Workers
		o.Shard = func(index int) int { return index % workers }
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewMetrics()
	}
	if o.RetryBase == 0 {
		o.RetryBase = time.Millisecond
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 10 * time.Millisecond
	}
	return o
}

func (o PoolOptions) validate() error {
	if err := o.Options.validate(); err != nil {
		return err
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers must be ≥ 0", ErrBadOptions)
	}
	if o.QueueDepth < 0 {
		return fmt.Errorf("%w: QueueDepth must be ≥ 0", ErrBadOptions)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("%w: MaxRetries must be ≥ 0", ErrBadOptions)
	}
	if o.RetryBase < 0 {
		return fmt.Errorf("%w: RetryBase must be ≥ 0", ErrBadOptions)
	}
	if o.BreakerThreshold < 0 {
		return fmt.Errorf("%w: BreakerThreshold must be ≥ 0", ErrBadOptions)
	}
	if o.BreakerCooldown < 0 {
		return fmt.Errorf("%w: BreakerCooldown must be ≥ 0", ErrBadOptions)
	}
	return nil
}

// job is one queue entry: either a single request or a batch of
// same-shard requests (when batch is non-nil, the other fields are
// unused).
type job struct {
	ctx   context.Context
	req   Request
	index int
	out   chan result
	batch *batch
	// mit, when non-nil, overrides the shard's persistent mitigation
	// state for this request (per-tenant session state; see
	// Server.HandleWith). The submitter owns mit and must serialize
	// access to it across its own requests.
	mit *mitigation.State
}

// batch is a run of same-shard requests processed as one queue entry.
// HandleAll groups a burst by shard so queue sends, channel receives,
// and atomic operations amortize over the run instead of costing one
// round-trip per request; within a shard the requests still run
// serially in submission order, so per-shard determinism is untouched.
// Batches are recycled through batchPool; the done channel (buffered 1,
// provably empty after the receive in HandleAll) is reused with them.
type batch struct {
	ctx   context.Context
	reqs  []Request
	idxs  []int       // global submission indices, parallel to reqs
	resps []*Response // filled by the worker, parallel to reqs
	errs  []error     // parallel to reqs
	done  chan *batch // buffered (1); self-sent when the run finishes
}

// reset prepares a recycled batch for n requests, clearing any stale
// pointers from its previous burst.
func (b *batch) reset(ctx context.Context, n int) {
	b.ctx = ctx
	b.reqs = b.reqs[:0]
	b.idxs = b.idxs[:0]
	if cap(b.resps) < n {
		b.resps = make([]*Response, n)
		b.errs = make([]error, n)
	} else {
		b.resps = b.resps[:n]
		b.errs = b.errs[:n]
		clear(b.resps)
		clear(b.errs)
	}
}

var batchPool = sync.Pool{
	New: func() any { return &batch{done: make(chan *batch, 1)} },
}

// releaseBatch returns a drained batch to the pool, dropping references
// so recycled batches never pin request closures or responses.
func releaseBatch(b *batch) {
	b.ctx = nil
	clear(b.reqs)
	b.reqs = b.reqs[:0]
	b.idxs = b.idxs[:0]
	clear(b.resps)
	b.resps = b.resps[:0]
	clear(b.errs)
	b.errs = b.errs[:0]
	batchPool.Put(b)
}

// burstScratch holds HandleAll's per-call bookkeeping slices so a
// steady stream of bursts allocates nothing but the returned responses.
type burstScratch struct {
	batches []*batch
	shards  []int
	counts  []int
	errs    []error
}

var burstPool = sync.Pool{New: func() any { return new(burstScratch) }}

// grow resizes the scratch for a burst of n requests over w workers.
func (s *burstScratch) grow(n, w int) {
	if cap(s.batches) < w {
		s.batches = make([]*batch, w)
		s.counts = make([]int, w)
	} else {
		s.batches = s.batches[:w]
		s.counts = s.counts[:w]
		clear(s.batches)
		clear(s.counts)
	}
	if cap(s.shards) < n {
		s.shards = make([]int, n)
		s.errs = make([]error, n)
	} else {
		s.shards = s.shards[:n]
		s.errs = s.errs[:n]
		clear(s.errs)
	}
}

func releaseScratch(s *burstScratch) {
	clear(s.batches)
	clear(s.errs)
	burstPool.Put(s)
}

type result struct {
	resp *Response
	err  error
}

// Circuit-breaker states (worker.brState).
const (
	brClosed int32 = iota // healthy: traffic flows, failures counted
	brOpen                // ejected: traffic redistributes until cooldown
	brProbe               // half-open: exactly one probe admitted
)

// worker owns one shard: a serial Server over a private clone of the
// machine environment and private persistent mitigation state.
type worker struct {
	shard int
	srv   *Server
	jobs  chan job

	// Circuit-breaker state, used only when BreakerThreshold > 0.
	// brFails counts consecutive serve failures while closed; brOpenedAt
	// is the UnixNano timestamp of the last open transition, gating the
	// cooldown before a probe.
	brFails    atomic.Int64
	brState    atomic.Int32
	brOpenedAt atomic.Int64
}

// poolClosed is the lifecycle bit of Pool.state; the low bits count
// in-flight submitters.
const poolClosed = int64(1) << 62

// Pool shards requests across workers. Each worker owns its own
// machine environment and persistent mitigation state, so the
// per-shard leakage bound is exactly the serial Server's bound — the
// per-domain state partitioning that makes concurrent sharing safe.
// Submission is bounded (backpressure via QueueDepth) and shutdown is
// graceful: Close drains accepted work before returning.
//
// Submit/Handle/HandleAll are safe for concurrent use. The submit path
// is lock-free: the global submission index is an atomic counter and
// the open/closed lifecycle is a refcounted atomic word, so concurrent
// submitters never serialize on a mutex and never hold a lock across a
// blocking queue send.
type Pool struct {
	opts    PoolOptions
	workers []*worker
	wg      sync.WaitGroup

	// n is the next global submission index.
	n atomic.Int64
	// state is the lifecycle word: poolClosed bit | in-flight submitter
	// count. acquire/release maintain the count; Close sets the bit.
	state atomic.Int64
	// stopc is closed by Close to abort submitters parked on a full
	// shard queue, so Close never waits for backpressure to clear.
	stopc chan struct{}
	// drained is closed by the final in-flight submitter to leave after
	// Close set the closed bit.
	drained chan struct{}
	// donec is closed when shutdown (drain + worker exit) completes;
	// concurrent Close calls wait on it.
	donec     chan struct{}
	closeOnce sync.Once
	// retrySeq numbers Handle's backoff sleeps so their jitter is a
	// deterministic function of (RetrySeed, sequence number).
	retrySeq atomic.Uint64
}

// NewPool constructs a pool over a type-checked program. Errors are
// sentinel-typed like New's. Worker i's instrumentation is stripe i of
// the shared metrics accumulator, so per-request counter updates from
// different shards land on different cache lines.
func NewPool(prog *ast.Program, res *types.Result, opts PoolOptions) (*Pool, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	p := &Pool{
		opts:    opts,
		stopc:   make(chan struct{}),
		drained: make(chan struct{}),
		donec:   make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		wopts := opts.Options
		wopts.Env = opts.Env.Clone()
		wopts.Metrics = opts.Metrics.Stripe(i)
		wopts.shard = i
		srv, err := New(prog, res, wopts)
		if err != nil {
			return nil, err
		}
		w := &worker{shard: i, srv: srv, jobs: make(chan job, opts.QueueDepth)}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go p.run(w)
	}
	return p, nil
}

// acquire registers an in-flight submitter, failing once the pool is
// closed.
func (p *Pool) acquire() bool {
	for {
		s := p.state.Load()
		if s&poolClosed != 0 {
			return false
		}
		if p.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// release drops an in-flight submitter registration. The submitter
// whose release leaves a closed pool with no others signals Close.
func (p *Pool) release() {
	if p.state.Add(-1) == poolClosed {
		close(p.drained)
	}
}

// run is one worker's loop: drain the shard queue in order, preserving
// the serial per-shard semantics.
func (p *Pool) run(w *worker) {
	defer p.wg.Done()
	for j := range w.jobs {
		p.maybeStall(w)
		if b := j.batch; b != nil {
			// A failed request does not stop the rest of the batch:
			// same behavior as independent single-request jobs.
			for i, req := range b.reqs {
				b.resps[i], b.errs[i] = p.serve(w, b.ctx, req, b.idxs[i], nil)
			}
			b.done <- b
			continue
		}
		resp, err := p.serve(w, j.ctx, j.req, j.index, j.mit)
		j.out <- result{resp, err}
	}
}

// serve runs one request on a worker's shard server and rewrites the
// shard-local index/shard fields to the pool-global view.
func (p *Pool) serve(w *worker, ctx context.Context, req Request, index int, mit *mitigation.State) (*Response, error) {
	resp, err := w.srv.HandleWith(ctx, req, mit)
	if resp != nil {
		resp.ShardIndex = resp.Index
		resp.Index = index
		resp.Shard = w.shard
	}
	if re, ok := err.(*RequestError); ok {
		re.Index = index
		re.Shard = w.shard
	}
	p.recordBreaker(w, err)
	return resp, err
}

// maybeStall evaluates the shard-stall fault point before a worker
// touches its next job: an injected stall parks the worker (a GC
// pause, a noisy neighbor) for the scheduled duration. Close
// interrupts the stall, so shutdown never waits out an injected pause.
func (p *Pool) maybeStall(w *worker) {
	f, ok := p.opts.Injector.Fire(fault.ShardStall, w.shard)
	if !ok {
		return
	}
	w.srv.Metrics().AddFault()
	if f.Stall <= 0 {
		return
	}
	t := time.NewTimer(f.Stall)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.stopc:
	}
}

// pickShard maps a submission index to a worker index, steering around
// shards whose breaker is open. An open breaker past its cooldown
// transitions to probe (half-open) and admits this one submission; an
// open breaker inside its cooldown, or one already probing, is skipped
// and the submission redistributes to the next healthy shard. If every
// shard is ejected the home shard takes it anyway — rejecting all
// traffic would turn a partial outage into a total one.
func (p *Pool) pickShard(index int) int {
	home := mod(p.opts.Shard(index), len(p.workers))
	if p.opts.BreakerThreshold <= 0 {
		return home
	}
	for off := 0; off < len(p.workers); off++ {
		s := mod(home+off, len(p.workers))
		if p.admit(p.workers[s]) {
			return s
		}
	}
	return home
}

// admit asks a worker's breaker whether it may take a submission.
func (p *Pool) admit(w *worker) bool {
	switch w.brState.Load() {
	case brClosed:
		return true
	case brOpen:
		if time.Now().UnixNano()-w.brOpenedAt.Load() < int64(p.opts.BreakerCooldown) {
			return false
		}
		// Cooldown elapsed: exactly one submitter wins the CAS and
		// carries the probe; the rest keep redistributing until the
		// probe's outcome settles the state.
		return w.brState.CompareAndSwap(brOpen, brProbe)
	default: // brProbe: a probe is already in flight
		return false
	}
}

// recordBreaker feeds one serve outcome into the worker's breaker.
// Caller cancellation is neutral — it says nothing about shard health —
// but a deadline expiry counts as a failure: a shard that cannot finish
// inside the request timeout is exactly the slow shard the breaker
// exists to eject.
func (p *Pool) recordBreaker(w *worker, err error) {
	if p.opts.BreakerThreshold <= 0 || errors.Is(err, context.Canceled) {
		return
	}
	if err == nil {
		if w.brState.Load() == brProbe && w.brState.CompareAndSwap(brProbe, brClosed) {
			w.srv.Metrics().AddBreakerClose()
		}
		w.brFails.Store(0)
		return
	}
	if w.brState.Load() == brProbe {
		// Failed probe: reopen and restart the cooldown. The timestamp is
		// written first so a racing admit never sees a stale cooldown.
		w.brOpenedAt.Store(time.Now().UnixNano())
		if w.brState.CompareAndSwap(brProbe, brOpen) {
			w.srv.Metrics().AddBreakerOpen()
		}
		return
	}
	if w.brFails.Add(1) >= int64(p.opts.BreakerThreshold) {
		w.brOpenedAt.Store(time.Now().UnixNano())
		if w.brState.CompareAndSwap(brClosed, brOpen) {
			w.brFails.Store(0)
			w.srv.Metrics().AddBreakerOpen()
		}
	}
}

// injectSaturation evaluates the queue-saturation fault point for a
// shard. An injected saturation models a full queue regardless of real
// occupancy and always sheds, so chaos schedules can exercise the
// overload path without actually filling queues.
func (p *Pool) injectSaturation(shard int) bool {
	_, ok := p.opts.Injector.Fire(fault.QueueSaturation, shard)
	if ok {
		p.opts.Metrics.AddFault()
	}
	return ok
}

// resultChans recycles the one-shot response channels: every request
// allocates one, and on the service hot path that was the single
// largest allocation source. A channel is recycled only after its
// result has been received (it is then provably empty); a Wait aborted
// by context cancellation leaves the channel to the garbage collector,
// since the worker's send may still be in flight.
var resultChans = sync.Pool{
	New: func() any { return make(chan result, 1) },
}

// Future is a pending response.
type Future struct {
	out  chan result
	done result
	got  bool
}

// Wait blocks until the response is ready or the context is done.
func (f *Future) Wait(ctx context.Context) (*Response, error) {
	if f.got {
		return f.done.resp, f.done.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast path: the result is usually already buffered by the time the
	// submitter waits (HandleAll submits ahead of waiting), and a plain
	// receive is much cheaper than a select.
	select {
	case r := <-f.out:
		f.done, f.got = r, true
		resultChans.Put(f.out)
		f.out = nil
		return r.resp, r.err
	default:
	}
	select {
	case r := <-f.out:
		f.done, f.got = r, true
		resultChans.Put(f.out)
		f.out = nil
		return r.resp, r.err
	case <-ctx.Done():
		// Final non-blocking drain: the worker may have delivered in the
		// race window between ctx firing and this select choosing. Taking
		// that result both returns the real response and proves the
		// channel empty (safe to recycle). Otherwise the channel is left
		// to the GC — a late send may still be in flight, and recycling a
		// channel that can still receive a send would cross responses
		// between unrelated requests.
		select {
		case r := <-f.out:
			f.done, f.got = r, true
			resultChans.Put(f.out)
			f.out = nil
			return r.resp, r.err
		default:
		}
		return nil, ctx.Err()
	}
}

// Submit enqueues a request on its shard's bounded queue, blocking for
// backpressure when the shard is saturated (or until ctx is done, or
// the pool is closed). The request's context is ctx as well: it bounds
// both queue wait and execution.
func (p *Pool) Submit(ctx context.Context, req Request) (*Future, error) {
	return p.SubmitWith(ctx, req, nil)
}

// SubmitWith is Submit with an explicit mitigation state: when mit is
// non-nil the served request uses it in place of the shard's
// persistent state (per-tenant session state; see Server.HandleWith).
// The caller owns mit and must not submit two requests sharing one mit
// concurrently — a session lock upstream provides that serialization.
func (p *Pool) SubmitWith(ctx context.Context, req Request, mit *mitigation.State) (*Future, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.acquire() {
		return nil, ErrPoolClosed
	}
	defer p.release()
	index := int(p.n.Add(1) - 1)
	w := p.workers[p.pickShard(index)]
	if p.injectSaturation(w.shard) {
		p.opts.Metrics.AddShed()
		return nil, &RequestError{Index: index, Shard: w.shard, Err: ErrOverloaded}
	}
	j := job{ctx: ctx, req: req, index: index, out: resultChans.Get().(chan result), mit: mit}
	// Fast path: queue has room, skip the select.
	select {
	case w.jobs <- j:
		return &Future{out: j.out}, nil
	default:
	}
	if p.opts.ShedOnSaturation {
		// Bounded-latency mode: a saturated shard sheds instead of
		// blocking the submitter.
		p.opts.Metrics.AddShed()
		resultChans.Put(j.out)
		return nil, &RequestError{Index: index, Shard: w.shard, Err: ErrOverloaded}
	}
	select {
	case w.jobs <- j:
		return &Future{out: j.out}, nil
	case <-ctx.Done():
		// The job never reached a worker, so its channel is still empty
		// and safe to recycle.
		resultChans.Put(j.out)
		return nil, &RequestError{Index: index, Shard: w.shard, Err: ctx.Err()}
	case <-p.stopc:
		// Close aborts backpressured submitters instead of waiting for
		// their queue space; the request was never accepted.
		resultChans.Put(j.out)
		return nil, &RequestError{Index: index, Shard: w.shard, Err: ErrPoolClosed}
	}
}

// handleOnce is one submit-and-wait attempt.
func (p *Pool) handleOnce(ctx context.Context, req Request, mit *mitigation.State) (*Response, error) {
	f, err := p.SubmitWith(ctx, req, mit)
	if err != nil {
		return nil, err
	}
	return f.Wait(ctx)
}

// Handle submits a request and waits for its response. When MaxRetries
// is set, retryable failures (see Retryable) are transparently
// re-submitted — each attempt gets a fresh submission index and may
// route to a different shard — with exponential backoff between
// attempts. ErrPoolClosed is never self-retried: this pool will not
// reopen.
func (p *Pool) Handle(ctx context.Context, req Request) (*Response, error) {
	return p.HandleWith(ctx, req, nil)
}

// HandleWith is Handle with an explicit mitigation state (see
// SubmitWith); retries reuse the same state, which is safe because a
// failed attempt never updates it.
func (p *Pool) HandleWith(ctx context.Context, req Request, mit *mitigation.State) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := p.handleOnce(ctx, req, mit)
	for attempt := 1; err != nil && attempt <= p.opts.MaxRetries; attempt++ {
		if !Retryable(err) || errors.Is(err, ErrPoolClosed) || ctx.Err() != nil {
			break
		}
		if !p.backoff(ctx, attempt) {
			break
		}
		p.opts.Metrics.AddRetry()
		resp, err = p.handleOnce(ctx, req, mit)
	}
	return resp, err
}

// backoff parks a retrying caller between attempts: exponential from
// RetryBase, capped at 100ms, with deterministic jitter in
// [delay/2, delay] drawn from the Mix64 stream seeded by RetrySeed.
// Returns false if the context ended or the pool closed first.
func (p *Pool) backoff(ctx context.Context, attempt int) bool {
	const maxDelay = 100 * time.Millisecond
	d := p.opts.RetryBase
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	frac := float64(fault.Mix64(uint64(p.opts.RetrySeed), p.retrySeq.Add(1))>>11) / float64(1<<53)
	d = d/2 + time.Duration(frac*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-p.stopc:
		return false
	}
}

// HandleAll submits a request sequence and waits for every response,
// returned in submission order. The first error (by submission order)
// is returned; entries whose requests failed are nil. Unlike the
// serial Server, later requests still run — both across shards and
// within one, mirroring independent Submit calls.
//
// The burst is grouped into one batch per shard (each a single queue
// entry), so the per-request queue/channel round-trip of Submit+Wait
// amortizes over the burst. Request execution order within each shard
// is still submission order, so responses are identical to the
// Submit-per-request path.
func (p *Pool) HandleAll(ctx context.Context, reqs []Request) ([]*Response, error) {
	return p.handleAll(ctx, reqs, nil)
}

// HandleAllErrs is HandleAll with per-request error reporting: errs[i]
// is the outcome of reqs[i] (nil on success), so callers that must
// account for every item — the batch endpoint of internal/transport —
// see exactly which requests failed and why, not just the first
// failure.
func (p *Pool) HandleAllErrs(ctx context.Context, reqs []Request) ([]*Response, []error) {
	errs := make([]error, len(reqs))
	out, _ := p.handleAll(ctx, reqs, errs)
	return out, errs
}

// handleAll is the shared burst path; when errsOut is non-nil it is
// filled with per-request outcomes (it must have len(reqs) entries).
func (p *Pool) handleAll(ctx context.Context, reqs []Request, errsOut []error) ([]*Response, error) {
	out := make([]*Response, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.acquire() {
		for i := range errsOut {
			errsOut[i] = ErrPoolClosed
		}
		return out, ErrPoolClosed
	}
	// Reserve a contiguous index block for the burst.
	base := int(p.n.Add(int64(len(reqs)))) - len(reqs)
	// Group into per-shard batches, preserving submission order. Two
	// passes: shard sizes first, so every batch slice is sized exactly
	// once at its final length.
	sc := burstPool.Get().(*burstScratch)
	sc.grow(len(reqs), len(p.workers))
	batches, shards, counts, errs := sc.batches, sc.shards, sc.counts, sc.errs
	for i := range reqs {
		shard := p.pickShard(base + i)
		shards[i] = shard
		counts[shard]++
	}
	for shard, n := range counts {
		if n > 0 {
			b := batchPool.Get().(*batch)
			b.reset(ctx, n)
			batches[shard] = b
		}
	}
	for i, r := range reqs {
		b := batches[shards[i]]
		b.reqs = append(b.reqs, r)
		b.idxs = append(b.idxs, base+i)
	}
	for shard, b := range batches {
		if b == nil {
			continue
		}
		w := p.workers[shard]
		if p.injectSaturation(shard) {
			// The whole shard run sheds: same fate as independent Submit
			// calls racing a saturated queue.
			for _, index := range b.idxs {
				errs[index-base] = &RequestError{Index: index, Shard: shard, Err: ErrOverloaded}
				p.opts.Metrics.AddShed()
			}
			releaseBatch(b)
			batches[shard] = nil
			continue
		}
		if p.opts.ShedOnSaturation {
			select {
			case w.jobs <- job{batch: b}:
			default:
				for _, index := range b.idxs {
					errs[index-base] = &RequestError{Index: index, Shard: shard, Err: ErrOverloaded}
					p.opts.Metrics.AddShed()
				}
				releaseBatch(b)
				batches[shard] = nil
			}
			continue
		}
		select {
		case w.jobs <- job{batch: b}:
		case <-ctx.Done():
			// This shard's run never reached its worker.
			for _, index := range b.idxs {
				errs[index-base] = &RequestError{Index: index, Shard: shard, Err: ctx.Err()}
			}
			releaseBatch(b)
			batches[shard] = nil
		case <-p.stopc:
			for _, index := range b.idxs {
				errs[index-base] = &RequestError{Index: index, Shard: shard, Err: ErrPoolClosed}
			}
			releaseBatch(b)
			batches[shard] = nil
		}
	}
	// Accepted batches are queued; drop the in-flight registration so a
	// concurrent Close can proceed to drain them.
	p.release()
	for shard, b := range batches {
		if b == nil {
			continue
		}
		<-b.done
		for i, index := range b.idxs {
			out[index-base] = b.resps[i]
			errs[index-base] = b.errs[i]
		}
		releaseBatch(b)
		batches[shard] = nil
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	copy(errsOut, errs)
	releaseScratch(sc)
	return out, firstErr
}

// Workers returns the number of shards.
func (p *Pool) Workers() int { return len(p.workers) }

// Served returns the number of requests completed across all shards.
func (p *Pool) Served() int {
	total := 0
	for _, w := range p.workers {
		total += w.srv.Served()
	}
	return total
}

// Shard exposes one shard's serial server (for inspection — e.g.
// comparing per-shard mitigation state against a serial reference).
func (p *Pool) Shard(i int) *Server { return p.workers[i].srv }

// Metrics returns the shared instrumentation accumulator.
func (p *Pool) Metrics() *obs.Metrics { return p.opts.Metrics }

// Snapshot returns the pooled instrumentation, with hardware counters
// summed across every shard's environment. Call after Close (or while
// quiescent) for exact numbers; concurrent snapshots are approximate.
func (p *Pool) Snapshot() obs.Snapshot {
	snap := p.opts.Metrics.Snapshot()
	var hwStats hw.Stats
	for _, w := range p.workers {
		hwStats = hwStats.Add(w.srv.Env().Stats())
	}
	snap.HW = hwStats
	return snap
}

// Close gracefully shuts the pool down: it stops accepting new
// requests, aborts submitters parked on backpressure (they get
// ErrPoolClosed; their requests were never accepted), drains every
// shard's queue, and waits for accepted in-flight requests to finish.
// Close is idempotent, and concurrent Close calls all wait for the
// shutdown to complete.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		var inFlight int64
		for {
			s := p.state.Load()
			if p.state.CompareAndSwap(s, s|poolClosed) {
				inFlight = s
				break
			}
		}
		// Wake backpressured submitters, then wait for every in-flight
		// submitter to finish or abort — after that no goroutine can be
		// sending on a shard queue, so closing the queues is safe.
		close(p.stopc)
		if inFlight != 0 {
			<-p.drained
		}
		for _, w := range p.workers {
			close(w.jobs)
		}
		p.wg.Wait()
		close(p.donec)
	})
	<-p.donec
}

// mod reduces i into [0, n), tolerating negative shard results.
func mod(i, n int) int {
	m := i % n
	if m < 0 {
		m += n
	}
	return m
}

package server

// Chaos tests: drive the pool under randomized fault schedules and
// assert the service invariants hold regardless of what the fault layer
// throws at it — no deadlock (every schedule drains within its
// watchdog), no lost or duplicated response (successes delivered to
// callers match Served exactly, submission indices are unique), and
// every failure is a typed, classified error. All schedules are
// deterministic functions of their seed, so a failing seed reproduces.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/machine/hw"
)

// chaosPlan draws a random fault plan. CacheFactory is deliberately
// excluded: it fires during NewPool, which these schedules want to
// succeed (construction faults get their own test).
func chaosPlan(rng *rand.Rand) fault.Plan {
	plan := fault.Plan{}
	if rng.Intn(2) == 0 {
		plan[fault.EngineError] = fault.Rule{Rate: rng.Float64() * 0.3}
	}
	if rng.Intn(2) == 0 {
		plan[fault.ShardStall] = fault.Rule{
			Rate:  rng.Float64() * 0.3,
			Stall: time.Duration(rng.Intn(2000)) * time.Microsecond,
		}
	}
	if rng.Intn(3) == 0 {
		plan[fault.ClockSkew] = fault.Rule{Rate: rng.Float64() * 0.2, Skew: uint64(rng.Intn(1000))}
	}
	if rng.Intn(3) == 0 {
		plan[fault.QueueSaturation] = fault.Rule{Rate: rng.Float64() * 0.2}
	}
	return plan
}

// chaosErrOK reports whether a chaos-schedule failure is one of the
// typed outcomes the service is allowed to produce.
func chaosErrOK(err error) bool {
	var re *RequestError
	if !errors.As(err, &re) {
		return false
	}
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, context.DeadlineExceeded)
}

func TestChaosSchedules(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	engines := []string{"tree", "vm"}
	for seed := int64(0); seed < 100; seed++ {
		t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			opts := PoolOptions{
				Options: Options{
					Env:      hw.NewFlat(r.Lat, 2),
					Engine:   engines[rng.Intn(len(engines))],
					Injector: fault.New(seed, chaosPlan(rng)),
				},
				Workers:          1 + rng.Intn(3),
				QueueDepth:       1 + rng.Intn(2),
				MaxRetries:       rng.Intn(3),
				RetryBase:        100 * time.Microsecond,
				RetrySeed:        seed,
				ShedOnSaturation: rng.Intn(2) == 0,
			}
			if rng.Intn(2) == 0 {
				opts.BreakerThreshold = 2 + rng.Intn(2)
				opts.BreakerCooldown = time.Millisecond
			}
			pool, err := NewPool(p, r, opts)
			if err != nil {
				t.Fatal(err)
			}

			var (
				mu         sync.Mutex
				successIdx []int
				violation  error
			)
			record := func(resp *Response, err error) {
				mu.Lock()
				defer mu.Unlock()
				switch {
				case resp != nil && err != nil:
					violation = fmt.Errorf("request %d returned both response and error %v", resp.Index, err)
				case resp == nil && err == nil:
					violation = errors.New("request returned neither response nor error")
				case resp != nil:
					successIdx = append(successIdx, resp.Index)
				case !chaosErrOK(err):
					violation = fmt.Errorf("untyped failure: %v", err)
				}
			}

			nG := 2 + rng.Intn(3)
			perG := 4 + rng.Intn(4)
			done := make(chan struct{})
			go func() {
				defer close(done)
				var wg sync.WaitGroup
				for g := 0; g < nG; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						if g == 0 {
							// One driver exercises the batched path.
							reqs := make([]Request, perG)
							for i := range reqs {
								reqs[i] = setH(int64(i))
							}
							resps, err := pool.HandleAll(ctxb(), reqs)
							mu.Lock()
							if err != nil && !chaosErrOK(err) {
								violation = fmt.Errorf("untyped burst failure: %v", err)
							}
							for _, resp := range resps {
								if resp != nil {
									successIdx = append(successIdx, resp.Index)
								}
							}
							mu.Unlock()
							return
						}
						for i := 0; i < perG; i++ {
							record(pool.Handle(ctxb(), setH(int64(g*100+i))))
						}
					}(g)
				}
				wg.Wait()
				pool.Close()
			}()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("chaos schedule deadlocked: pool did not drain within 30s")
			}

			if violation != nil {
				t.Fatal(violation)
			}
			seen := make(map[int]bool, len(successIdx))
			for _, idx := range successIdx {
				if seen[idx] {
					t.Fatalf("duplicated response for submission index %d", idx)
				}
				seen[idx] = true
			}
			if served := pool.Served(); served != len(successIdx) {
				t.Fatalf("lost or phantom responses: workers served %d, callers received %d", served, len(successIdx))
			}
		})
	}
}

// TestChaosOffPathDeterminism pins that off-path faults — shard stalls,
// which delay workers but never touch machine state — leave every
// response bit-identical to an undisturbed pool's.
func TestChaosOffPathDeterminism(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	run := func(inj *fault.Injector) []*Response {
		pool, err := NewPool(p, r, PoolOptions{
			Options: Options{Env: hw.NewFlat(r.Lat, 2), Engine: "vm", Injector: inj},
			Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		reqs := make([]Request, 12)
		for i := range reqs {
			reqs[i] = setH(int64(i * 7 % 64))
		}
		resps, err := pool.HandleAll(ctxb(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		return resps
	}
	stalled := run(fault.New(7, fault.Plan{
		fault.ShardStall: {Rate: 0.8, Stall: 300 * time.Microsecond},
	}))
	clean := run(nil)
	for i := range clean {
		if stalled[i].Time != clean[i].Time ||
			stalled[i].Shard != clean[i].Shard ||
			stalled[i].Mispredictions != clean[i].Mispredictions {
			t.Fatalf("request %d: stalled response (time=%d shard=%d) differs from clean (time=%d shard=%d)",
				i, stalled[i].Time, stalled[i].Shard, clean[i].Time, clean[i].Shard)
		}
	}
}

// TestBreakerEjectsAndRecovers drives a shard into persistent failure,
// watches the breaker eject it (traffic redistributes to the healthy
// shard), and then watches the half-open probe bring it back once the
// fault clears.
func TestBreakerEjectsAndRecovers(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	inj := fault.New(3, fault.Plan{
		fault.EngineError: {Rate: 1, Count: 3, Shards: []int{0}},
	})
	pool, err := NewPool(p, r, PoolOptions{
		Options: Options{Env: hw.NewFlat(r.Lat, 2), Engine: "vm", Injector: inj},
		Workers: 2,
		// All traffic homes on shard 0; only the breaker can move it.
		Shard:            func(int) int { return 0 },
		BreakerThreshold: 3,
		BreakerCooldown:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The first three requests land on shard 0 and fail on the injected
	// engine error, tripping the breaker.
	for i := 0; i < 3; i++ {
		if _, err := pool.Handle(ctxb(), setH(1)); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("request %d: got %v, want injected engine error", i, err)
		}
	}
	// The breaker is open: traffic redistributes to shard 1 and succeeds.
	resp, err := pool.Handle(ctxb(), setH(1))
	if err != nil {
		t.Fatalf("redistributed request failed: %v", err)
	}
	if resp.Shard != 1 {
		t.Fatalf("redistributed request served by shard %d, want 1", resp.Shard)
	}
	// After the cooldown a probe is admitted to shard 0; the fault
	// budget (Count: 3) is exhausted, so it succeeds and closes the
	// breaker for good.
	time.Sleep(5 * time.Millisecond)
	recovered := false
	for i := 0; i < 4; i++ {
		resp, err := pool.Handle(ctxb(), setH(1))
		if err != nil {
			t.Fatalf("post-cooldown request failed: %v", err)
		}
		if resp.Shard == 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("shard 0 never recovered after the fault cleared")
	}
	snap := pool.Snapshot()
	if snap.BreakerOpens != 1 || snap.BreakerCloses != 1 {
		t.Errorf("breaker transitions = %d opens / %d closes, want 1 / 1", snap.BreakerOpens, snap.BreakerCloses)
	}
	if snap.Faults != 3 {
		t.Errorf("faults = %d, want 3", snap.Faults)
	}
}

// TestDeadlineStorm floods a pool whose every request times out and
// checks the pool stays live: all failures are typed deadline errors
// and shutdown drains cleanly.
func TestDeadlineStorm(t *testing.T) {
	// A spin loop long enough that every request is still running at its
	// deadline (engines poll the context every ~1k instructions).
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 10000000) {
    i := i + 1;
}
`)
	pool, err := NewPool(p, r, PoolOptions{
		Options: Options{
			Env:    hw.NewFlat(r.Lat, 2),
			Engine: "vm",
			Limits: exec.Limits{Timeout: 200 * time.Microsecond},
		},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := pool.Handle(ctxb(), nil); !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("got %v, want context.DeadlineExceeded", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	pool.Close()
	if served := pool.Served(); served != 0 {
		t.Errorf("served %d requests despite universal deadline expiry", served)
	}
}

// TestCancelledWaitNoCrosstalk is the regression test for the response
// channel lifecycle: a Wait abandoned by context cancellation must not
// recycle its channel while the stalled worker's late send is still in
// flight, or a later request would receive the dead request's response.
func TestCancelledWaitNoCrosstalk(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	inj := fault.New(11, fault.Plan{
		fault.ShardStall: {Rate: 1, Count: 1, Stall: 50 * time.Millisecond},
	})
	pool, err := NewPool(p, r, PoolOptions{
		Options: Options{Env: hw.NewFlat(r.Lat, 2), Engine: "vm", Injector: inj},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Submit request 0; the worker stalls before serving it. Cancel and
	// abandon the Wait while the send is still pending.
	ctx, cancel := context.WithCancel(context.Background())
	f, err := pool.Submit(ctx, setH(1))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned Wait = %v, want context.Canceled", err)
	}

	// Hammer the pool. If the abandoned channel had been recycled, some
	// later request would receive request 0's late result and report the
	// wrong submission index.
	for i := 0; i < 200; i++ {
		resp, err := pool.Handle(ctxb(), setH(int64(i%64)))
		if err != nil {
			t.Fatalf("request %d failed: %v", i+1, err)
		}
		if resp.Index != i+1 {
			t.Fatalf("response crosstalk: got index %d, want %d", resp.Index, i+1)
		}
	}
}

// TestSameSeedSameFaults pins end-to-end schedule reproducibility: two
// pools with identical seeds and plans, driven identically, produce the
// same per-request outcome sequence.
func TestSameSeedSameFaults(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	type outcome struct {
		ok   bool
		time uint64
	}
	run := func() []outcome {
		pool, err := NewPool(p, r, PoolOptions{
			Options: Options{
				Env:    hw.NewFlat(r.Lat, 2),
				Engine: "vm",
				Injector: fault.New(42, fault.Plan{
					fault.EngineError: {Rate: 0.4},
					fault.ClockSkew:   {Rate: 0.3, Skew: 7},
				}),
			},
			Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		out := make([]outcome, 30)
		for i := range out {
			resp, err := pool.Handle(ctxb(), setH(int64(i%64)))
			if err != nil {
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("request %d: unexpected error %v", i, err)
				}
				continue
			}
			out[i] = outcome{ok: true, time: resp.Time}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged between identical schedules: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestInjectedConstructionFault pins that a cache-factory fault fails
// pool construction with a typed, retryable error rather than
// misconfiguration.
func TestInjectedConstructionFault(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	inj := fault.New(5, fault.Plan{fault.CacheFactory: {Rate: 1, Count: 1}})
	_, err := NewPool(p, r, PoolOptions{
		Options: Options{Env: hw.NewFlat(r.Lat, 2), Engine: "vm", Injector: inj},
		Workers: 1,
	})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("NewPool under construction fault = %v, want fault.ErrInjected", err)
	}
	if errors.Is(err, ErrBadOptions) {
		t.Fatal("construction fault misclassified as bad options")
	}
	if !Retryable(err) {
		t.Fatal("construction fault should be retryable")
	}
}

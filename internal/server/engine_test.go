package server

import (
	"errors"
	"testing"

	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
)

// newEchoServer builds a server over fresh partitioned hardware for
// the shared echo program.
func newEchoServer(t *testing.T, engine string) *Server {
	t.Helper()
	p, r := buildProg(t, echoSrc)
	env := hw.MustEnv("partitioned", lattice.TwoPoint(), hw.Table1Config())
	s, err := New(p, r, Options{Env: env, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerRejectsUnknownEngine(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	env := hw.MustEnv("partitioned", lattice.TwoPoint(), hw.Table1Config())
	_, err := New(p, r, Options{Env: env, Engine: "bogus"})
	if !errors.Is(err, ErrBadOptions) {
		t.Errorf("New with unknown engine = %v, want ErrBadOptions", err)
	}
}

// TestServerEngineParity runs the same request sequence — including
// persistent mitigation state evolving across requests — through a
// tree-engine server and a vm-engine server, and requires identical
// responses: times, traces, and misprediction counts.
func TestServerEngineParity(t *testing.T) {
	tree := newEchoServer(t, "tree")
	vm := newEchoServer(t, "vm")
	secrets := []int64{0, 63, 7, 7, 31, 1, 63, 0, 15, 44, 44, 2}
	for i, h := range secrets {
		want, err := tree.Handle(ctxb(), setH(h))
		if err != nil {
			t.Fatalf("tree request %d: %v", i, err)
		}
		got, err := vm.Handle(ctxb(), setH(h))
		if err != nil {
			t.Fatalf("vm request %d: %v", i, err)
		}
		if got.Time != want.Time {
			t.Errorf("request %d: time %d (vm) != %d (tree)", i, got.Time, want.Time)
		}
		if !got.Trace.Equal(want.Trace) {
			t.Errorf("request %d: traces differ\nvm:   %v\ntree: %v", i, got.Trace, want.Trace)
		}
		if got.Mispredictions != want.Mispredictions {
			t.Errorf("request %d: mispredictions %d (vm) != %d (tree)",
				i, got.Mispredictions, want.Mispredictions)
		}
	}
	if tree.Engine() != "tree" || vm.Engine() != "vm" {
		t.Errorf("engine names: %q, %q", tree.Engine(), vm.Engine())
	}
}

// TestPoolEngineParity checks the sharded pool end to end on the vm
// engine: responses must match the tree pool's for a fixed shard
// assignment.
func TestPoolEngineParity(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	newPool := func(engine string) *Pool {
		env := hw.MustEnv("partitioned", lattice.TwoPoint(), hw.Table1Config())
		pool, err := NewPool(p, r, PoolOptions{
			Workers: 3,
			Options: Options{Env: env, Engine: engine},
		})
		if err != nil {
			t.Fatal(err)
		}
		return pool
	}
	reqs := make([]Request, 24)
	for i := range reqs {
		reqs[i] = setH(int64(i*13) % 64)
	}
	treePool := newPool("tree")
	want, err := treePool.HandleAll(ctxb(), reqs)
	treePool.Close()
	if err != nil {
		t.Fatal(err)
	}
	vmPool := newPool("vm")
	got, err := vmPool.HandleAll(ctxb(), reqs)
	vmPool.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("response counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Shard != want[i].Shard || got[i].Time != want[i].Time ||
			!got[i].Trace.Equal(want[i].Trace) {
			t.Errorf("response %d differs between engines", i)
		}
	}
}

// TestServerEngineBudget checks budget enforcement flows through the
// vm engine with the same ErrBudgetExceeded wrapping as the tree path.
func TestServerEngineBudget(t *testing.T) {
	p, r := buildProg(t, `
var x : L;
x := 0;
while (x < 100000) [L,L] {
    x := x + 1;
}
`)
	for _, engine := range []string{"tree", "vm"} {
		env := hw.MustEnv("flat", lattice.TwoPoint(), hw.TinyConfig())
		s, err := New(p, r, Options{Env: env, Engine: engine, Limits: exec.Limits{MaxSteps: 100}})
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Handle(ctxb(), nil)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: got %v, want ErrBudgetExceeded", engine, err)
		}
		var re *RequestError
		if !errors.As(err, &re) {
			t.Errorf("%s: error is not a *RequestError: %v", engine, err)
		}
	}
}

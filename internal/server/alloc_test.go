package server

import (
	"context"
	"testing"

	"repro/internal/machine/hw"
)

// Allocation budgets for the vm-engine pool hot path, in allocations
// per request. These pin the zero-copy and pooling work (recycled
// result channels, batch structs, and Response values): a change that
// silently adds per-request allocations fails here rather than rotting
// until the next benchmark run. The budgets have headroom over the
// measured steady state (~6 for Submit+Wait, ~2 amortized for bursts)
// so GC clearing a sync.Pool mid-run does not flake the test, while
// still catching an O(1)-per-request regression.
const (
	handleAllocBudget    = 12
	handleAllAllocBudget = 6
)

// newVMPool builds a single-worker vm-engine pool over the echo
// program, with queue depth covering a whole burst.
func newVMPool(t *testing.T, depth int) *Pool {
	t.Helper()
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	pool, err := NewPool(p, r, PoolOptions{
		Workers:    1,
		QueueDepth: depth,
		Options: Options{
			Env:    hw.MustEnv("partitioned", lat, hw.Table1Config()),
			Engine: "vm",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestPoolHandleAllocBudget(t *testing.T) {
	pool := newVMPool(t, 4)
	defer pool.Close()
	ctx := context.Background()
	req := setH(7)
	// Warm the pools (result channels, responses, the VM's scratch).
	for i := 0; i < 32; i++ {
		resp, err := pool.Handle(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseResponse(resp)
	}
	avg := testing.AllocsPerRun(200, func() {
		resp, err := pool.Handle(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseResponse(resp)
	})
	t.Logf("Handle: %.2f allocs/request (budget %d)", avg, handleAllocBudget)
	if avg > handleAllocBudget {
		t.Errorf("Handle allocates %.2f per request, budget %d — hot-path pooling regressed",
			avg, handleAllocBudget)
	}
}

func TestPoolHandleAllAllocBudget(t *testing.T) {
	const nreq = 32
	pool := newVMPool(t, nreq)
	defer pool.Close()
	ctx := context.Background()
	reqs := make([]Request, nreq)
	for i := range reqs {
		reqs[i] = setH(int64(i % 64))
	}
	burst := func() {
		resps, err := pool.HandleAll(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resps {
			ReleaseResponse(r)
		}
	}
	for i := 0; i < 8; i++ {
		burst() // warm batch/scratch pools
	}
	avg := testing.AllocsPerRun(50, burst) / nreq
	t.Logf("HandleAll: %.2f allocs/request (budget %d)", avg, handleAllAllocBudget)
	if avg > handleAllAllocBudget {
		t.Errorf("HandleAll allocates %.2f per request, budget %d — batch pooling regressed",
			avg, handleAllAllocBudget)
	}
}

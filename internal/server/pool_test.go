package server

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/login"
	"repro/internal/apps/rsa"
	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/machine/hw"
	"repro/internal/sem/mem"
)

// poolWorkload is a program plus a deterministic request sequence.
type poolWorkload struct {
	name   string
	pool   func(t *testing.T, workers int) *Pool
	serial func(t *testing.T) *Server
	reqs   []Request
}

// mixedWorkloads builds the acceptance workload: 64 requests total,
// half against the login service and half against RSA decryption, each
// program served by its own pool (a pool serves one program).
func mixedWorkloads(t *testing.T) []poolWorkload {
	t.Helper()
	lat := lattice.TwoPoint()

	lapp, err := login.Build(login.Config{TableSize: 16, WorkFactor: 48, WorkTableSize: 256}, lat)
	if err != nil {
		t.Fatal(err)
	}
	creds := login.MakeCredentials(8)
	var loginReqs []Request
	for i := 0; i < 32; i++ {
		att := login.Attempt{User: creds[i%8].User, Pass: creds[i%8].Pass}
		if i%3 == 0 {
			att.Pass = "wrong"
		}
		loginReqs = append(loginReqs, func(m *mem.Memory) {
			lapp.Setup(m, creds, att, 1, 1)
		})
	}

	rapp, err := rsa.Build(rsa.Config{MaxBlocks: 2, Modulus: 1000003}, rsa.LanguageLevel, lat)
	if err != nil {
		t.Fatal(err)
	}
	var rsaReqs []Request
	for i := 0; i < 32; i++ {
		key := int64(0x5F00FF) + int64(i%5)
		msg := rsa.Message(2, int64(i))
		rsaReqs = append(rsaReqs, func(m *mem.Memory) {
			rapp.Setup(m, key, msg, 64)
		})
	}

	return []poolWorkload{
		{
			name: "login",
			pool: func(t *testing.T, workers int) *Pool {
				p, err := NewPool(lapp.Prog, lapp.Res, PoolOptions{
					Workers: workers,
					Options: Options{Env: hw.MustEnv("partitioned", lat, hw.Table1Config())},
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			serial: func(t *testing.T) *Server {
				s, err := New(lapp.Prog, lapp.Res, Options{
					Env: hw.MustEnv("partitioned", lat, hw.Table1Config()),
				})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			reqs: loginReqs,
		},
		{
			name: "rsa",
			pool: func(t *testing.T, workers int) *Pool {
				p, err := NewPool(rapp.Prog, rapp.Res, PoolOptions{
					Workers: workers,
					Options: Options{Env: hw.MustEnv("partitioned", lat, hw.Table1Config())},
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			serial: func(t *testing.T) *Server {
				s, err := New(rapp.Prog, rapp.Res, Options{
					Env: hw.MustEnv("partitioned", lat, hw.Table1Config()),
				})
				if err != nil {
					t.Fatal(err)
				}
				return s
			},
			reqs: rsaReqs,
		},
	}
}

// TestPoolDeterministicSharding is the acceptance check: a 4-worker
// pool over a 64-request mixed login/RSA workload produces, shard by
// shard, exactly the responses a serial Server produces over that
// shard's subsequence on an equal environment — trace for trace.
func TestPoolDeterministicSharding(t *testing.T) {
	const workers = 4
	ctx := context.Background()
	for _, wl := range mixedWorkloads(t) {
		t.Run(wl.name, func(t *testing.T) {
			pool := wl.pool(t, workers)
			resps, err := pool.HandleAll(ctx, wl.reqs)
			if err != nil {
				t.Fatal(err)
			}
			pool.Close()

			// Group pooled responses by shard, in shard order.
			byShard := make([][]*Response, workers)
			for _, r := range resps {
				if r == nil {
					t.Fatal("nil response without error")
				}
				byShard[r.Shard] = append(byShard[r.Shard], r)
			}

			for shard := 0; shard < workers; shard++ {
				// The default shard function is round-robin, so shard
				// i's subsequence is reqs[i], reqs[i+workers], ...
				ref := wl.serial(t)
				var want []*Response
				for i := shard; i < len(wl.reqs); i += workers {
					resp, err := ref.Handle(ctx, wl.reqs[i])
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, resp)
				}
				got := byShard[shard]
				if len(got) != len(want) {
					t.Fatalf("shard %d served %d requests, want %d", shard, len(got), len(want))
				}
				for k := range got {
					g, w := got[k], want[k]
					if g.ShardIndex != w.Index {
						t.Errorf("shard %d req %d: shard-local index %d, want %d",
							shard, k, g.ShardIndex, w.Index)
					}
					if g.Time != w.Time {
						t.Errorf("shard %d req %d: time %d, serial reference %d",
							shard, k, g.Time, w.Time)
					}
					if g.Mispredictions != w.Mispredictions {
						t.Errorf("shard %d req %d: %d mispredictions, serial reference %d",
							shard, k, g.Mispredictions, w.Mispredictions)
					}
					if !reflect.DeepEqual(g.Trace, w.Trace) {
						t.Errorf("shard %d req %d: event trace diverges from serial reference",
							shard, k)
					}
					if !reflect.DeepEqual(g.Mitigations, w.Mitigations) {
						t.Errorf("shard %d req %d: mitigation trace diverges from serial reference",
							shard, k)
					}
				}
				// The shard's persistent mitigation state must match the
				// serial reference's too.
				if !pool.Shard(shard).MitigationState().Equal(ref.MitigationState()) {
					t.Errorf("shard %d: persistent mitigation state diverges from serial reference", shard)
				}
			}
		})
	}
}

// TestPoolDeterminismAcrossRuns: two identical pool runs produce
// identical response sequences.
func TestPoolDeterminismAcrossRuns(t *testing.T) {
	ctx := context.Background()
	wl := mixedWorkloads(t)[0]
	run := func() []uint64 {
		pool := wl.pool(t, 4)
		defer pool.Close()
		resps, err := pool.HandleAll(ctx, wl.reqs)
		if err != nil {
			t.Fatal(err)
		}
		times := make([]uint64, len(resps))
		for i, r := range resps {
			times[i] = r.Time
		}
		return times
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical pool runs produced different response times")
	}
}

func poolProg(t *testing.T) *Pool {
	t.Helper()
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	pool, err := NewPool(p, r, PoolOptions{
		Workers: 3,
		Options: Options{Env: hw.MustEnv("partitioned", lat, hw.Table1Config())},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestPoolSubmitAfterClose(t *testing.T) {
	pool := poolProg(t)
	if _, err := pool.Handle(ctxb(), setH(1)); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Submit(ctxb(), setH(2)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	if _, err := pool.Handle(ctxb(), setH(2)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Handle after Close = %v, want ErrPoolClosed", err)
	}
	if pool.Served() != 1 {
		t.Errorf("Served = %d, want 1", pool.Served())
	}
}

func TestPoolBackpressure(t *testing.T) {
	// With QueueDepth 1, submissions beyond capacity block; a canceled
	// context unblocks them with a typed error.
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 200000) {
    i := i + 1;
}
`)
	lat := r.Lat
	pool, err := NewPool(p, r, PoolOptions{
		Workers:    1,
		QueueDepth: 1,
		Options:    Options{Env: hw.MustEnv("flat", lat, hw.Config{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Fill the worker: one in flight, one queued.
	var futures []*Future
	for i := 0; i < 2; i++ {
		f, err := pool.Submit(ctxb(), nil)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	// The next submission must hit backpressure until ctx expires.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = pool.Submit(ctx, nil)
	if err == nil {
		// The queue may have drained before the deadline on a fast
		// machine; that is fine — just verify nothing deadlocked.
		t.Log("queue drained before deadline")
	} else {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("backpressured Submit = %v, want context.DeadlineExceeded", err)
		}
		var re *RequestError
		if !errors.As(err, &re) {
			t.Fatalf("error %T is not a *RequestError", err)
		}
		if time.Since(start) < 5*time.Millisecond {
			t.Error("Submit returned before the deadline without queueing")
		}
	}
	for _, f := range futures {
		if _, err := f.Wait(ctxb()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPoolClosePromptWhileBackpressured is the regression test for the
// old submit path, which held a pool-wide RLock across a blocking queue
// send: Close had to wait for backpressure to clear before it could
// even stop accepting work. Now a submitter parked on a full shard
// queue must be aborted by Close with ErrPoolClosed, and Close must
// complete as soon as accepted work drains — never waiting on the
// parked submitter's queue space.
func TestPoolClosePromptWhileBackpressured(t *testing.T) {
	// A program slow enough (~hundreds of µs) that the queue stays full
	// while we close.
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 50000) {
    i := i + 1;
}
`)
	lat := r.Lat
	pool, err := NewPool(p, r, PoolOptions{
		Workers:    1,
		QueueDepth: 1,
		Options:    Options{Env: hw.MustEnv("flat", lat, hw.Config{})},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the shard: one in flight, one queued.
	var futures []*Future
	for i := 0; i < 2; i++ {
		f, err := pool.Submit(ctxb(), nil)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	// Park a submitter on backpressure.
	type res struct {
		f   *Future
		err error
	}
	parked := make(chan res, 1)
	go func() {
		f, err := pool.Submit(ctxb(), nil)
		parked <- res{f, err}
	}()
	// Give the submitter a moment to reach the blocking send, then
	// close; Close must return even though the submitter may still be
	// parked when it starts.
	time.Sleep(5 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		pool.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not complete while a submitter was backpressured")
	}
	// The parked submitter was either accepted before Close (its queue
	// slot opened first) or aborted with ErrPoolClosed — never left
	// hanging.
	select {
	case pr := <-parked:
		if pr.err != nil {
			if !errors.Is(pr.err, ErrPoolClosed) {
				t.Errorf("parked Submit = %v, want ErrPoolClosed", pr.err)
			}
			var re *RequestError
			if !errors.As(pr.err, &re) {
				t.Errorf("parked Submit error %T is not a *RequestError", pr.err)
			}
		} else if _, err := pr.f.Wait(ctxb()); err != nil {
			t.Errorf("accepted parked submission failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("backpressured submitter still parked after Close")
	}
	// Accepted work drained before Close returned.
	for _, f := range futures {
		if _, err := f.Wait(ctxb()); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Served(); got < 2 {
		t.Errorf("Served = %d, want at least the 2 accepted requests", got)
	}
}

// TestPoolCloseConcurrentWithHandleAll closes the pool while bursts are
// in flight: every request either completes or fails with a typed
// error, and Close returns.
func TestPoolCloseConcurrentWithHandleAll(t *testing.T) {
	pool := poolProg(t)
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = setH(int64(i % 64))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				resps, err := pool.HandleAll(ctxb(), reqs)
				if err != nil && !errors.Is(err, ErrPoolClosed) {
					t.Errorf("HandleAll = %v", err)
					return
				}
				for _, r := range resps {
					if r == nil && err == nil {
						t.Error("nil response without error")
					}
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	pool.Close()
	wg.Wait()
	pool.Close() // idempotent, and waits for the same shutdown
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	// Many goroutines hammering Submit while another closes the pool
	// must not race (run under -race) or lose accepted work.
	pool := poolProg(t)
	var wg sync.WaitGroup
	accepted := make(chan *Future, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				f, err := pool.Submit(ctxb(), setH(int64(g*16+i)%64))
				if err != nil {
					if !errors.Is(err, ErrPoolClosed) {
						t.Errorf("Submit = %v", err)
					}
					return
				}
				accepted <- f
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for f := range accepted {
			if _, err := f.Wait(ctxb()); err != nil {
				t.Errorf("Wait = %v", err)
			}
		}
	}()
	wg.Wait()
	close(accepted)
	<-done
	pool.Close()
	if pool.Served() == 0 {
		t.Error("no requests served")
	}
}

func TestPoolCustomShardFunction(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	pool, err := NewPool(p, r, PoolOptions{
		Workers: 2,
		// Everything to shard 1 — including via a negative result,
		// which must be reduced safely.
		Shard:   func(index int) int { return -1 },
		Options: Options{Env: hw.MustEnv("partitioned", lat, hw.Table1Config())},
	})
	if err != nil {
		t.Fatal(err)
	}
	resps, err := pool.HandleAll(ctxb(), []Request{setH(1), setH(2), setH(3)})
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	for _, resp := range resps {
		if resp.Shard != 1 {
			t.Errorf("request %d on shard %d, want 1", resp.Index, resp.Shard)
		}
	}
	if pool.Shard(0).Served() != 0 || pool.Shard(1).Served() != 3 {
		t.Errorf("shard loads = %d/%d, want 0/3", pool.Shard(0).Served(), pool.Shard(1).Served())
	}
}

func TestPoolValidation(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	if _, err := NewPool(p, r, PoolOptions{}); !errors.Is(err, ErrNoEnv) {
		t.Errorf("NewPool without env = %v, want ErrNoEnv", err)
	}
	lat := r.Lat
	opts := Options{Env: hw.MustEnv("flat", lat, hw.Config{})}
	if _, err := NewPool(p, r, PoolOptions{Options: opts, Workers: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("NewPool with negative workers = %v, want ErrBadOptions", err)
	}
	if _, err := NewPool(p, r, PoolOptions{Options: opts, QueueDepth: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("NewPool with negative queue = %v, want ErrBadOptions", err)
	}
}

func TestPoolSnapshot(t *testing.T) {
	pool := poolProg(t)
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = setH(int64(i * 5 % 64))
	}
	if _, err := pool.HandleAll(ctxb(), reqs); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	snap := pool.Snapshot()
	if snap.Requests != 12 {
		t.Errorf("snapshot requests = %d, want 12", snap.Requests)
	}
	if snap.Mitigations != 12 {
		t.Errorf("snapshot mitigations = %d, want 12", snap.Mitigations)
	}
	if snap.Cycles == 0 || snap.Steps == 0 {
		t.Error("expected cycles and steps recorded")
	}
	if snap.HW.L1DHits+snap.HW.L1DMisses == 0 {
		t.Error("expected summed hardware counters across shards")
	}
	if snap.Latency.Count != 12 {
		t.Errorf("latency count = %d, want 12", snap.Latency.Count)
	}
	if pool.Metrics() == nil {
		t.Error("Metrics accessor returned nil")
	}
}

func TestPoolBudgetErrorCarriesShard(t *testing.T) {
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 100000) {
    i := i + 1;
}
`)
	lat := r.Lat
	pool, err := NewPool(p, r, PoolOptions{
		Workers: 2,
		Options: Options{Env: hw.MustEnv("flat", lat, hw.Config{}), Limits: exec.Limits{MaxSteps: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	_, err = pool.Handle(ctxb(), nil)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Handle = %v, want ErrBudgetExceeded", err)
	}
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("error %T is not a *RequestError", err)
	}
	if re.Index != 0 {
		t.Errorf("RequestError.Index = %d, want submission index 0", re.Index)
	}
}

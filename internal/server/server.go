// Package server simulates a long-running service built on the
// timing-channel language: one program handles a sequence of requests
// on shared, persistent hardware state (caches stay warm) and — unlike
// the per-request machines used in one-shot experiments — persistent
// predictive-mitigation state, so miss counters carry over between
// requests exactly as in the epoch-based mitigation of the paper's
// predecessors [5, 38]. This exposes the realistic dynamics: early
// requests may mispredict and inflate the schedule; the system then
// settles, and total leakage across a whole request sequence stays
// within the log-bound.
//
// Two service surfaces share one request API:
//
//   - Server processes requests strictly sequentially — the reference
//     semantics, and the per-shard engine.
//   - Pool shards requests across workers, each owning its own
//     partitioned machine environment and persistent mitigation state,
//     so per-shard leakage bounds still hold and a fixed shard
//     assignment reproduces the serial per-request traces shard by
//     shard (see pool.go).
//
// Both take a context.Context: cancellation and deadlines abort the
// in-flight request cleanly with a *RequestError wrapping ctx.Err(),
// and per-request step/cycle budgets abort with ErrBudgetExceeded.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/exec"
	"repro/internal/exec/budget"
	"repro/internal/fault"
	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/obs"
	"repro/internal/sem/events"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Sentinel errors returned by the service layer. Test with errors.Is.
var (
	// ErrNoEnv is returned by New/NewPool when Options.Env is missing.
	ErrNoEnv = errors.New("server: machine environment required")
	// ErrBadOptions is returned by New/NewPool on invalid options.
	ErrBadOptions = errors.New("server: invalid options")
	// ErrBudgetExceeded is returned (wrapped in a *RequestError) when a
	// request exhausts its step or cycle budget.
	ErrBudgetExceeded = errors.New("server: request budget exceeded")
	// ErrPoolClosed is returned when submitting to a closed pool.
	ErrPoolClosed = errors.New("server: pool closed")
	// ErrOverloaded is returned (wrapped in a *RequestError) when a
	// submission is load-shed because its shard queue is saturated,
	// instead of blocking unboundedly. Shedding happens when
	// PoolOptions.ShedOnSaturation is set, or when the fault layer
	// injects queue saturation.
	ErrOverloaded = errors.New("server: overloaded")
)

// Retryable reports whether err is worth retrying: load sheds
// (ErrOverloaded), pool shutdown races (ErrPoolClosed — useful to
// callers that can re-dial a replacement pool; Pool.Handle itself does
// not re-submit to a closed pool, which never reopens), and transient
// injected faults. Budget exhaustion, context errors, and
// configuration errors are deterministic and not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrPoolClosed) || fault.IsTransient(err)
}

// RequestError identifies which request failed and why. Unwrap exposes
// the cause, so errors.Is(err, ErrBudgetExceeded) and errors.Is(err,
// context.DeadlineExceeded) work as expected.
type RequestError struct {
	// Index is the request's position in the sequence (the submission
	// index under a Pool).
	Index int
	// Shard is the worker that processed the request (0 for a serial
	// Server).
	Shard int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("server: request %d (shard %d): %v", e.Index, e.Shard, e.Err)
}

// Unwrap exposes the cause.
func (e *RequestError) Unwrap() error { return e.Err }

// Request sets the per-request public inputs (and, for simulation
// purposes, the secrets) in the program memory before a run.
type Request func(*mem.Memory)

// responsePool recycles Response structs on the service hot path.
// Handle allocates from it; callers that are done with a response may
// hand it back with ReleaseResponse to shed per-request GC pressure.
var responsePool = sync.Pool{New: func() any { return new(Response) }}

// ReleaseResponse returns a response to the internal pool for reuse by
// a later request. It is optional — responses are ordinary
// garbage-collected values — but high-throughput callers (benchmarks,
// load drivers) that release responses keep the hot path allocation
// profile flat. The response and everything it references (Trace,
// Mitigations) must not be used after release. ReleaseResponse is
// safe for concurrent use; a nil response is a no-op.
func ReleaseResponse(resp *Response) {
	if resp == nil {
		return
	}
	*resp = Response{}
	responsePool.Put(resp)
}

// Response summarizes one processed request.
type Response struct {
	// Index is the request's position in the submission sequence.
	Index int
	// Shard is the worker that served the request (always 0 for a
	// serial Server); ShardIndex is its position within that shard's
	// sequence. For a serial server ShardIndex == Index.
	Shard      int
	ShardIndex int
	// Time is the request's total processing time in cycles.
	Time uint64
	// Trace holds the request's observable events (times are
	// request-relative: the clock starts at 0 for each request, as a
	// client measures round-trip latency).
	Trace events.Trace
	// Mitigations holds the request's mitigation records.
	Mitigations events.MitTrace
	// Mispredictions counts mitigation misses during this request.
	Mispredictions int
}

// Options configure a Server (and, via PoolOptions, each pool worker).
// Construction is validated: New returns ErrNoEnv / ErrBadOptions
// rather than accepting a half-configured service.
type Options struct {
	// Env is the machine environment; required. A Server uses it in
	// place (caches stay warm across requests); a Pool clones it once
	// per worker so every shard owns partitioned hardware state.
	Env hw.Env
	// Engine selects the execution engine by registered name: "tree"
	// (the default) interprets the AST per request; "vm" compiles the
	// program to bytecode once (shared across shards via the program
	// cache) and reuses the machine — the fast path. Both produce
	// identical traces. Unknown names fail New with ErrBadOptions.
	Engine string
	// Scheme and Policy configure the persistent mitigation state.
	Scheme mitigation.Scheme
	Policy mitigation.Policy
	// DisableMitigation runs the program unmitigated.
	DisableMitigation bool
	// OptLevel selects the VM engine's bytecode optimization level
	// (0 = stack interpreter, 1 = register lowering, 2 = + fusion);
	// observationally identical at every level. Honored only when
	// OptSet is true — otherwise exec.DefaultOptLevel applies. The
	// tree engine ignores both.
	OptLevel int
	OptSet   bool
	// Limits bounds each request: engine steps (MaxSteps, default
	// 10_000_000), simulated cycles (MaxCycles), and wall-clock time
	// (Timeout). Exceeding a step or cycle bound fails the request
	// with ErrBudgetExceeded; exceeding the timeout fails it with
	// context.DeadlineExceeded. The same struct configures the
	// execution engines (exec.Options), so the knobs are no longer
	// duplicated across the two layers.
	exec.Limits
	// Metrics receives instrumentation. Leave nil to have the server
	// allocate its own; a Pool installs one shared accumulator across
	// its workers.
	Metrics *obs.Metrics
	// Injector, when non-nil, threads scheduled faults through the
	// engine (and, under a Pool, the submit and serve paths). Nil — the
	// default — injects nothing.
	Injector *fault.Injector
	// shard identifies the pool worker this Options copy configures;
	// NewPool sets it so shard-filtered fault rules and breaker state
	// target the right worker. Serial servers leave it 0.
	shard int
}

// withDefaults fills zero fields; the embedded Limits is the single
// source of truth for every per-request bound.
func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 10_000_000
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewMetrics()
	}
	return o
}

// validate reports the first configuration error. Limit checking is
// delegated to the one exec.Limits.Validate.
func (o Options) validate() error {
	if o.Env == nil {
		return ErrNoEnv
	}
	if err := o.Limits.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	return nil
}

// Server processes requests against one program with persistent
// hardware and mitigation state, strictly sequentially. It is not safe
// for concurrent use; wrap it in a Pool for that.
type Server struct {
	prog   *ast.Program
	res    *types.Result
	opts   Options
	engine exec.Engine
	mit    *mitigation.State
	n      int
}

// New constructs a server. The program must be type-checked. Errors
// are sentinel-typed: errors.Is(err, ErrNoEnv) when the environment is
// missing, errors.Is(err, ErrBadOptions) for other bad configuration
// (including an unknown Options.Engine).
func New(prog *ast.Program, res *types.Result, opts Options) (*Server, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	engine, err := exec.NewEngine(opts.Engine, prog, res, opts.Env, exec.Options{
		Scheme:            opts.Scheme,
		Policy:            opts.Policy,
		DisableMitigation: opts.DisableMitigation,
		OptLevel:          opts.OptLevel,
		OptSet:            opts.OptSet,
		Limits:            opts.Limits,
		Metrics:           opts.Metrics,
		Injector:          opts.Injector,
		Shard:             opts.shard,
	})
	if err != nil {
		// An injected construction fault is transient infrastructure
		// trouble, not misconfiguration; keep it typed for Retryable.
		if errors.Is(err, fault.ErrInjected) {
			return nil, fmt.Errorf("server: engine construction: %w", err)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	return &Server{
		prog:   prog,
		res:    res,
		opts:   opts,
		engine: engine,
		mit:    mitigation.NewState(res.Lat, opts.Scheme, opts.Policy),
	}, nil
}

// Engine returns the server's execution engine name.
func (s *Server) Engine() string { return s.engine.Name() }

// MitigationState exposes the persistent miss counters.
func (s *Server) MitigationState() *mitigation.State { return s.mit }

// Served returns the number of requests processed.
func (s *Server) Served() int { return s.n }

// Env returns the server's machine environment.
func (s *Server) Env() hw.Env { return s.opts.Env }

// Metrics returns the server's instrumentation accumulator.
func (s *Server) Metrics() *obs.Metrics { return s.opts.Metrics }

// Snapshot returns the current instrumentation, including the machine
// environment's cache/TLB/branch-predictor counters.
func (s *Server) Snapshot() obs.Snapshot {
	snap := s.opts.Metrics.Snapshot()
	snap.HW = s.opts.Env.Stats()
	return snap
}

// Handle processes one request and returns its response. The context
// bounds the request: cancellation or a deadline aborts the in-flight
// machine cleanly (persistent mitigation state is NOT updated by an
// aborted request), returning a *RequestError wrapping ctx.Err().
// Exhausting the step or cycle budget returns a *RequestError wrapping
// ErrBudgetExceeded.
func (s *Server) Handle(ctx context.Context, req Request) (*Response, error) {
	return s.HandleWith(ctx, req, nil)
}

// HandleWith is Handle with an explicit mitigation state: when mit is
// non-nil it is used for this request in place of the server's own
// persistent state. This is how tenant sessions thread per-tenant
// epoch counters through a shared server or pool shard — the caller
// owns mit and must serialize access to it (a session lock); the
// server only splices it into the engine for the duration of the run.
// A nil mit selects the server's shard-global state, preserving the
// anonymous-request semantics.
func (s *Server) HandleWith(ctx context.Context, req Request, mit *mitigation.State) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, s.fail(err)
	}
	if mit == nil {
		mit = s.mit
	}
	// The request's wall-clock bound (Limits.Timeout) is applied by the
	// engine itself, which derives a deadline context per Run.
	// The engine splices the persistent mitigation state in before the
	// run and copies the (possibly inflated) counters back only on
	// success, so an aborted request never updates it.
	result, err := s.engine.Run(ctx, exec.Request{Setup: req, Mit: mit})
	if err != nil {
		if errors.Is(err, budget.ErrStepLimit) || errors.Is(err, budget.ErrCycleLimit) {
			err = fmt.Errorf("%w: %v", ErrBudgetExceeded, err)
		}
		return nil, s.fail(err)
	}

	resp := responsePool.Get().(*Response)
	*resp = Response{
		Index:       s.n,
		ShardIndex:  s.n,
		Time:        result.Clock,
		Trace:       result.Trace,
		Mitigations: result.Mitigations,
	}
	for _, r := range result.Mitigations {
		if r.Mispredicted {
			resp.Mispredictions++
		}
	}
	s.n++
	s.opts.Metrics.AddRequest(resp.Time)
	return resp, nil
}

// fail records a failure and wraps the cause with the request index.
func (s *Server) fail(err error) error {
	s.opts.Metrics.AddFailure()
	return &RequestError{Index: s.n, Err: err}
}

// HandleAll processes a sequence of requests, stopping at the first
// failure (returning the responses completed so far alongside the
// error).
func (s *Server) HandleAll(ctx context.Context, reqs []Request) ([]*Response, error) {
	out := make([]*Response, 0, len(reqs))
	for _, r := range reqs {
		resp, err := s.Handle(ctx, r)
		if err != nil {
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// Times extracts the per-request processing times from responses.
func Times(resps []*Response) []uint64 {
	out := make([]uint64, len(resps))
	for i, r := range resps {
		out[i] = r.Time
	}
	return out
}

// SettledAfter returns the index of the first request after which no
// request ever mispredicts again, or -1 if the tail keeps missing —
// the server's convergence point.
func SettledAfter(resps []*Response) int {
	last := -1
	for i, r := range resps {
		if r.Mispredictions > 0 {
			last = i
		}
	}
	if last == len(resps)-1 && len(resps) > 0 && resps[last].Mispredictions > 0 {
		return -1
	}
	return last + 1
}

// Package server simulates a long-running service built on the
// timing-channel language: one program handles a sequence of requests
// on shared, persistent hardware state (caches stay warm) and — unlike
// the per-request machines used in one-shot experiments — persistent
// predictive-mitigation state, so miss counters carry over between
// requests exactly as in the epoch-based mitigation of the paper's
// predecessors [5, 38]. This exposes the realistic dynamics: early
// requests may mispredict and inflate the schedule; the system then
// settles, and total leakage across a whole request sequence stays
// within the log-bound.
package server

import (
	"fmt"

	"repro/internal/lang/ast"
	"repro/internal/machine/hw"
	"repro/internal/mitigation"
	"repro/internal/sem/events"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/types"
)

// Request sets the per-request public inputs (and, for simulation
// purposes, the secrets) in the program memory before a run.
type Request func(*mem.Memory)

// Response summarizes one processed request.
type Response struct {
	// Index is the request's position in the sequence.
	Index int
	// Time is the request's total processing time in cycles.
	Time uint64
	// Trace holds the request's observable events (times are
	// request-relative: the clock starts at 0 for each request, as a
	// client measures round-trip latency).
	Trace events.Trace
	// Mitigations holds the request's mitigation records.
	Mitigations events.MitTrace
	// Mispredictions counts mitigation misses during this request.
	Mispredictions int
}

// Options configure a Server.
type Options struct {
	// Env is the shared machine environment; required.
	Env hw.Env
	// Scheme and Policy configure the persistent mitigation state.
	Scheme mitigation.Scheme
	Policy mitigation.Policy
	// DisableMitigation runs the program unmitigated.
	DisableMitigation bool
	// MaxStepsPerRequest bounds each request; default 10_000_000.
	MaxStepsPerRequest int
}

// Server processes requests against one program with persistent
// hardware and mitigation state.
type Server struct {
	prog *ast.Program
	res  *types.Result
	opts Options
	mit  *mitigation.State
	n    int
}

// New constructs a server. The program must be type-checked.
func New(prog *ast.Program, res *types.Result, opts Options) (*Server, error) {
	if opts.Env == nil {
		return nil, fmt.Errorf("server: Env is required")
	}
	if opts.MaxStepsPerRequest == 0 {
		opts.MaxStepsPerRequest = 10_000_000
	}
	return &Server{
		prog: prog,
		res:  res,
		opts: opts,
		mit:  mitigation.NewState(res.Lat, opts.Scheme, opts.Policy),
	}, nil
}

// MitigationState exposes the persistent miss counters.
func (s *Server) MitigationState() *mitigation.State { return s.mit }

// Served returns the number of requests processed.
func (s *Server) Served() int { return s.n }

// Handle processes one request and returns its response.
func (s *Server) Handle(req Request) (*Response, error) {
	m, err := full.New(s.prog, s.res, s.opts.Env, full.Options{
		Scheme:            s.opts.Scheme,
		Policy:            s.opts.Policy,
		DisableMitigation: s.opts.DisableMitigation,
	})
	if err != nil {
		return nil, err
	}
	// Splice the persistent mitigation state into the fresh machine.
	s.mit.CopyInto(m.MitigationState())
	if req != nil {
		req(m.Memory())
	}
	if err := m.Run(s.opts.MaxStepsPerRequest); err != nil {
		return nil, fmt.Errorf("server: request %d: %w", s.n, err)
	}
	// Persist the (possibly inflated) counters for the next request.
	m.MitigationState().CopyInto(s.mit)

	resp := &Response{
		Index:       s.n,
		Time:        m.Clock(),
		Trace:       m.Trace(),
		Mitigations: m.Mitigations(),
	}
	for _, r := range m.Mitigations() {
		if r.Mispredicted {
			resp.Mispredictions++
		}
	}
	s.n++
	return resp, nil
}

// HandleAll processes a sequence of requests.
func (s *Server) HandleAll(reqs []Request) ([]*Response, error) {
	out := make([]*Response, 0, len(reqs))
	for _, r := range reqs {
		resp, err := s.Handle(r)
		if err != nil {
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// Times extracts the per-request processing times from responses.
func Times(resps []*Response) []uint64 {
	out := make([]uint64, len(resps))
	for i, r := range resps {
		out[i] = r.Time
	}
	return out
}

// SettledAfter returns the index of the first request after which no
// request ever mispredicts again, or -1 if the tail keeps missing —
// the server's convergence point.
func SettledAfter(resps []*Response) int {
	last := -1
	for i, r := range resps {
		if r.Mispredictions > 0 {
			last = i
		}
	}
	if last == len(resps)-1 && len(resps) > 0 && resps[last].Mispredictions > 0 {
		return -1
	}
	return last + 1
}

package server

import (
	"testing"

	"repro/internal/machine/hw"
	"repro/internal/mitigation"
)

// HandleWith must splice the caller's mitigation state in for exactly
// one request: the caller's state accumulates the request's misses and
// the server's own persistent state stays untouched.

func TestHandleWithUsesCallerState(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	srv, err := New(p, r, Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}
	mine := mitigation.NewState(r.Lat, srv.opts.Scheme, srv.opts.Policy)

	// A large secret forces a misprediction on the first epoch.
	if _, err := srv.HandleWith(ctxb(), setH(63), mine); err != nil {
		t.Fatal(err)
	}
	if mine.TotalMisses() == 0 {
		t.Error("caller state must accumulate the request's misses")
	}
	if got := srv.MitigationState().TotalMisses(); got != 0 {
		t.Errorf("server's persistent state must stay untouched, got %d misses", got)
	}

	// A nil state selects the server's own, preserving Handle semantics.
	if _, err := srv.HandleWith(ctxb(), setH(63), nil); err != nil {
		t.Fatal(err)
	}
	if srv.MitigationState().TotalMisses() == 0 {
		t.Error("nil state must fall back to the server's persistent state")
	}
}

// Two states driven through the same server must evolve independently
// and identically to two serial servers — per-tenant epochs do not
// interfere even on shared hardware.
func TestHandleWithStatesAreIndependent(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	srv, err := New(p, r, Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}
	a := mitigation.NewState(r.Lat, srv.opts.Scheme, srv.opts.Policy)
	b := mitigation.NewState(r.Lat, srv.opts.Scheme, srv.opts.Policy)

	ref, err := New(p, r, Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())})
	if err != nil {
		t.Fatal(err)
	}

	// Interleave: a sees big secrets (mispredicts), b sees zero
	// (settles immediately). The reference server runs only a's
	// sequence.
	for i := 0; i < 4; i++ {
		if _, err := srv.HandleWith(ctxb(), setH(63), a); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.HandleWith(ctxb(), setH(0), b); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Handle(ctxb(), setH(63)); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Equal(ref.MitigationState()) {
		t.Error("interleaved state a must match a serial server over a's subsequence")
	}
	if b.TotalMisses() >= a.TotalMisses() {
		t.Errorf("independent states must diverge: a=%d misses, b=%d", a.TotalMisses(), b.TotalMisses())
	}
}

// The pool's SubmitWith/HandleWith must deliver the override to
// whichever shard serves the request.
func TestPoolHandleWithThreadsState(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	pool, err := NewPool(p, r, PoolOptions{
		Options: Options{Env: hw.NewPartitioned(r.Lat, hw.Table1Config())},
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	mine := mitigation.NewState(r.Lat, nil, mitigation.PerLevel)
	for i := 0; i < 3; i++ {
		if _, err := pool.HandleWith(ctxb(), setH(63), mine); err != nil {
			t.Fatal(err)
		}
	}
	if mine.TotalMisses() == 0 {
		t.Error("session state must accumulate misses across shards")
	}
	for i := 0; i < pool.Workers(); i++ {
		if got := pool.Shard(i).MitigationState().TotalMisses(); got != 0 {
			t.Errorf("shard %d persistent state must stay untouched, got %d misses", i, got)
		}
	}
}

package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/machine/hw"
)

// The embedded exec.Limits is the single source of truth for every
// per-request bound: budget enforcement, wall-clock timeout, and
// validation all flow through it.

func TestLimitsEnforceStepBudget(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat

	srv, err := New(p, r, Options{
		Env:    hw.NewPartitioned(lat, hw.Table1Config()),
		Limits: exec.Limits{MaxSteps: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.Handle(ctxb(), setH(5))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("tiny step budget must exhaust, got %v", err)
	}
}

func TestLimitsValidationIsUnified(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	for name, opts := range map[string]Options{
		"negative MaxSteps": {Env: hw.NewFlat(lat, 2), Limits: exec.Limits{MaxSteps: -1}},
		"negative Timeout":  {Env: hw.NewFlat(lat, 2), Limits: exec.Limits{Timeout: -time.Second}},
	} {
		if _, err := New(p, r, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: got %v, want ErrBadOptions", name, err)
		}
	}
}

func TestLimitsTimeoutEnforced(t *testing.T) {
	// A long-running loop so the engine's periodic context poll is
	// guaranteed to observe the expired deadline.
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 1000000000) {
    i := i + 1;
}
`)
	lat := r.Lat
	srv, err := New(p, r, Options{
		Env:    hw.NewFlat(lat, 2),
		Limits: exec.Limits{Timeout: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.Handle(ctxb(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Limits.Timeout must expire the request, got %v", err)
	}
}

package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/machine/hw"
)

// The unified exec.Limits and the deprecated per-field aliases must
// configure identical servers: same budget enforcement, same
// validation.

func TestLimitsAndDeprecatedAliasesAgree(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat

	viaLimits, err := New(p, r, Options{
		Env:    hw.NewPartitioned(lat, hw.Table1Config()),
		Limits: exec.Limits{MaxSteps: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	viaAlias, err := New(p, r, Options{
		Env:                hw.NewPartitioned(lat, hw.Table1Config()),
		MaxStepsPerRequest: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, srv := range map[string]*Server{"limits": viaLimits, "alias": viaAlias} {
		_, err := srv.Handle(ctxb(), setH(5))
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: tiny step budget must exhaust, got %v", name, err)
		}
	}
}

func TestLimitsFieldWinsOverAlias(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	// A generous explicit limit beats a starvation-level alias.
	srv, err := New(p, r, Options{
		Env:                hw.NewPartitioned(lat, hw.Table1Config()),
		Limits:             exec.Limits{MaxSteps: 1_000_000},
		MaxStepsPerRequest: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(ctxb(), setH(5)); err != nil {
		t.Errorf("explicit MaxSteps must win over deprecated alias: %v", err)
	}
}

func TestLimitsValidationIsUnified(t *testing.T) {
	p, r := buildProg(t, echoSrc)
	lat := r.Lat
	for name, opts := range map[string]Options{
		"negative MaxSteps":       {Env: hw.NewFlat(lat, 2), Limits: exec.Limits{MaxSteps: -1}},
		"negative Timeout":        {Env: hw.NewFlat(lat, 2), Limits: exec.Limits{Timeout: -time.Second}},
		"negative RequestTimeout": {Env: hw.NewFlat(lat, 2), RequestTimeout: -time.Second},
	} {
		if _, err := New(p, r, opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: got %v, want ErrBadOptions", name, err)
		}
	}
}

func TestRequestTimeoutAliasStillEnforced(t *testing.T) {
	// A long-running loop so the engine's periodic context poll is
	// guaranteed to observe the expired deadline.
	p, r := buildProg(t, `
var i : L;
i := 0;
while (i < 1000000000) {
    i := i + 1;
}
`)
	lat := r.Lat
	srv, err := New(p, r, Options{
		Env:            hw.NewFlat(lat, 2),
		RequestTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.Handle(ctxb(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deprecated RequestTimeout must still expire the request, got %v", err)
	}
}

package obs

// Export is the stable, versioned export schema of a metrics snapshot.
// It is the one shape external consumers — the /v1/metrics endpoint of
// internal/transport and the harness's JSON output — see, so the
// internal Snapshot (and the stripe layout behind it) can evolve
// without breaking them. Field names are frozen by the JSON tags and
// the golden wire fixtures in internal/transport/testdata/wire; any
// incompatible change must bump ExportSchemaVersion.
type Export struct {
	// SchemaVersion identifies this export layout; consumers should
	// reject versions they do not understand.
	SchemaVersion int `json:"schema_version"`
	// Requests and Failures count completed and aborted requests.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// Steps, Cycles, PaddingCycles, and UsefulCycles account for the
	// work executed; UsefulCycles = Cycles - PaddingCycles is
	// precomputed so consumers need no arithmetic over the schema.
	Steps         uint64 `json:"steps"`
	Cycles        uint64 `json:"cycles"`
	PaddingCycles uint64 `json:"padding_cycles"`
	UsefulCycles  uint64 `json:"useful_cycles"`
	// Mitigation accounting (paper §6: completed mitigate commands,
	// mispredictions, and schedule inflations).
	Mitigations    uint64 `json:"mitigations"`
	Mispredictions uint64 `json:"mispredictions"`
	ScheduleBumps  uint64 `json:"schedule_bumps"`
	// Fault-tolerance accounting.
	Faults        uint64 `json:"faults"`
	Retries       uint64 `json:"retries"`
	Sheds         uint64 `json:"sheds"`
	BreakerOpens  uint64 `json:"breaker_opens"`
	BreakerCloses uint64 `json:"breaker_closes"`
	// Tenant-session accounting (schema v2).
	SessionsActive     int64  `json:"sessions_active"`
	SessionsCreated    uint64 `json:"sessions_created"`
	SessionsEvictedTTL uint64 `json:"sessions_evicted_ttl"`
	SessionsEvictedLRU uint64 `json:"sessions_evicted_lru"`
	BudgetDenials      uint64 `json:"budget_denials"`
	// Wire accounting (schema v3): request/response body bytes moved by
	// the transport, items served over /v1/stream, and the open-streams
	// gauge.
	BytesIn       uint64 `json:"bytes_in"`
	BytesOut      uint64 `json:"bytes_out"`
	StreamItems   uint64 `json:"stream_items"`
	StreamsActive int64  `json:"streams_active"`
	// Latency is the per-request response-time distribution in
	// simulated cycles.
	Latency LatencyExport `json:"latency"`
	// HW holds the hardware counters summed over the service's machine
	// environments.
	HW HWExport `json:"hw"`
}

// ExportSchemaVersion is the current Export layout version. Version 2
// added the tenant-session gauge and counters; version 3 the wire
// byte/stream accounting. Both purely additive: earlier consumers can
// still read a v3 document.
const ExportSchemaVersion = 3

// LatencyExport is the stable form of the latency histogram: summary
// statistics plus sparse cumulative power-of-two buckets.
type LatencyExport struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	// P50/P99/Max are quantile upper bounds (bucket upper edges).
	P50 uint64 `json:"p50"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
	// Buckets are cumulative observation counts at increasing upper
	// bounds (Prometheus-style `le`); empty buckets are omitted, and
	// the final bucket's Count equals Count.
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// LatencyBucket is one cumulative histogram bucket: Count observations
// were ≤ Le cycles.
type LatencyBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HWExport is the stable form of the hardware counters, with hit rates
// precomputed.
type HWExport struct {
	L1DHits     uint64  `json:"l1d_hits"`
	L1DMisses   uint64  `json:"l1d_misses"`
	L2DHits     uint64  `json:"l2d_hits"`
	L2DMisses   uint64  `json:"l2d_misses"`
	L1IHits     uint64  `json:"l1i_hits"`
	L1IMisses   uint64  `json:"l1i_misses"`
	L2IHits     uint64  `json:"l2i_hits"`
	L2IMisses   uint64  `json:"l2i_misses"`
	DTLBHits    uint64  `json:"dtlb_hits"`
	DTLBMisses  uint64  `json:"dtlb_misses"`
	ITLBHits    uint64  `json:"itlb_hits"`
	ITLBMisses  uint64  `json:"itlb_misses"`
	BPHits      uint64  `json:"bp_hits"`
	BPMisses    uint64  `json:"bp_misses"`
	L1DHitRate  float64 `json:"l1d_hit_rate"`
	L2DHitRate  float64 `json:"l2d_hit_rate"`
	L1IHitRate  float64 `json:"l1i_hit_rate"`
	L2IHitRate  float64 `json:"l2i_hit_rate"`
	DTLBHitRate float64 `json:"dtlb_hit_rate"`
	ITLBHitRate float64 `json:"itlb_hit_rate"`
	BPHitRate   float64 `json:"bp_hit_rate"`
}

// Export converts the snapshot into the stable export schema.
func (s Snapshot) Export() Export {
	return Export{
		SchemaVersion:      ExportSchemaVersion,
		Requests:           s.Requests,
		Failures:           s.Failures,
		Steps:              s.Steps,
		Cycles:             s.Cycles,
		PaddingCycles:      s.PaddingCycles,
		UsefulCycles:       s.UsefulCycles(),
		Mitigations:        s.Mitigations,
		Mispredictions:     s.Mispredictions,
		ScheduleBumps:      s.ScheduleBumps,
		Faults:             s.Faults,
		Retries:            s.Retries,
		Sheds:              s.Sheds,
		BreakerOpens:       s.BreakerOpens,
		BreakerCloses:      s.BreakerCloses,
		SessionsActive:     s.SessionsActive,
		SessionsCreated:    s.SessionsCreated,
		SessionsEvictedTTL: s.SessionsEvictedTTL,
		SessionsEvictedLRU: s.SessionsEvictedLRU,
		BudgetDenials:      s.BudgetDenials,
		BytesIn:            s.BytesIn,
		BytesOut:           s.BytesOut,
		StreamItems:        s.StreamItems,
		StreamsActive:      s.StreamsActive,
		Latency:            s.Latency.Export(),
		HW: HWExport{
			L1DHits: s.HW.L1DHits, L1DMisses: s.HW.L1DMisses,
			L2DHits: s.HW.L2DHits, L2DMisses: s.HW.L2DMisses,
			L1IHits: s.HW.L1IHits, L1IMisses: s.HW.L1IMisses,
			L2IHits: s.HW.L2IHits, L2IMisses: s.HW.L2IMisses,
			DTLBHits: s.HW.DTLBHits, DTLBMisses: s.HW.DTLBMisses,
			ITLBHits: s.HW.ITLBHits, ITLBMisses: s.HW.ITLBMisses,
			BPHits: s.HW.BPHits, BPMisses: s.HW.BPMisses,
			L1DHitRate: s.HW.L1DHitRate(), L2DHitRate: s.HW.L2DHitRate(),
			L1IHitRate: s.HW.L1IHitRate(), L2IHitRate: s.HW.L2IHitRate(),
			DTLBHitRate: s.HW.DTLBHitRate(), ITLBHitRate: s.HW.ITLBHitRate(),
			BPHitRate: s.HW.BPHitRate(),
		},
	}
}

// Export converts the histogram snapshot into its stable form. Bucket
// upper bounds follow the internal power-of-two layout (bit length k
// covers values < 2^k), published as cumulative counts so consumers
// can difference or plot them directly.
func (s HistogramSnapshot) Export() LatencyExport {
	e := LatencyExport{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P99:   s.Quantile(0.99),
		Max:   s.Quantile(1),
	}
	var cum uint64
	for k, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := ^uint64(0)
		if k < 64 {
			le = 1<<uint(k) - 1
		}
		e.Buckets = append(e.Buckets, LatencyBucket{Le: le, Count: cum})
	}
	return e
}

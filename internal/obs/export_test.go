package obs

import (
	"encoding/json"
	"testing"

	"repro/internal/machine/hw"
)

func TestSnapshotExportCopiesCounters(t *testing.T) {
	m := NewMetrics()
	m.AddRequest(100)
	m.AddRequest(3)
	m.AddFailure()
	m.AddSteps(7)
	m.AddCycles(1000)
	m.AddPadding(250)
	m.AddMitigation(true)
	m.AddScheduleBumps(2)
	m.AddFault()
	m.AddRetry()
	m.AddShed()
	m.AddBreakerOpen()
	m.AddBreakerClose()
	m.AddSessionCreated()
	m.AddSessionCreated()
	m.AddSessionEvicted(true)
	m.AddBudgetDenial()

	s := m.Snapshot()
	s.HW = hw.Stats{L1DHits: 9, L1DMisses: 1, BPHits: 3, BPMisses: 1}
	e := s.Export()

	if e.SchemaVersion != ExportSchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", e.SchemaVersion, ExportSchemaVersion)
	}
	if e.Requests != 2 || e.Failures != 1 || e.Steps != 7 {
		t.Errorf("counters: %+v", e)
	}
	if e.Cycles != 1000 || e.PaddingCycles != 250 || e.UsefulCycles != 750 {
		t.Errorf("cycle accounting: %+v", e)
	}
	if e.Mitigations != 1 || e.Mispredictions != 1 || e.ScheduleBumps != 2 {
		t.Errorf("mitigation accounting: %+v", e)
	}
	if e.Faults != 1 || e.Retries != 1 || e.Sheds != 1 || e.BreakerOpens != 1 || e.BreakerCloses != 1 {
		t.Errorf("fault accounting: %+v", e)
	}
	if e.SessionsCreated != 2 || e.SessionsActive != 1 || e.SessionsEvictedTTL != 1 ||
		e.SessionsEvictedLRU != 0 || e.BudgetDenials != 1 {
		t.Errorf("session accounting: %+v", e)
	}
	if e.Latency.Count != 2 || e.Latency.Sum != 103 {
		t.Errorf("latency summary: %+v", e.Latency)
	}
	if e.HW.L1DHits != 9 || e.HW.L1DHitRate != 0.9 || e.HW.BPHitRate != 0.75 {
		t.Errorf("hw export: %+v", e.HW)
	}
}

func TestLatencyExportBucketsAreCumulative(t *testing.T) {
	var h Histogram
	h.Observe(0)  // bit length 0
	h.Observe(1)  // bit length 1, le 1
	h.Observe(3)  // bit length 2, le 3
	h.Observe(2)  // bit length 2
	h.Observe(70) // bit length 7, le 127

	e := h.Snapshot().Export()
	want := []LatencyBucket{{Le: 0, Count: 1}, {Le: 1, Count: 2}, {Le: 3, Count: 4}, {Le: 127, Count: 5}}
	if len(e.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", e.Buckets, want)
	}
	for i, b := range e.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if last := e.Buckets[len(e.Buckets)-1]; last.Count != e.Count {
		t.Errorf("final cumulative count %d must equal Count %d", last.Count, e.Count)
	}
}

// The JSON field names are the contract with /v1/metrics consumers and
// the harness output; renaming one is a schema break.
func TestExportJSONFieldNames(t *testing.T) {
	raw, err := json.Marshal(Snapshot{}.Export())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema_version", "requests", "failures", "steps", "cycles",
		"padding_cycles", "useful_cycles", "mitigations", "mispredictions",
		"schedule_bumps", "faults", "retries", "sheds", "breaker_opens",
		"breaker_closes", "sessions_active", "sessions_created",
		"sessions_evicted_ttl", "sessions_evicted_lru", "budget_denials",
		"latency", "hw",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("export JSON missing key %q", key)
		}
	}
}

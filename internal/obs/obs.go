// Package obs is a lightweight instrumentation layer for the service
// runtime: concurrency-safe counters and a power-of-two latency
// histogram, aggregated into an immutable Snapshot for reporting.
//
// The counters are deliberately observational — recording them never
// changes simulated time or machine state, so instrumented runs remain
// bit-for-bit deterministic. All mutators are safe for concurrent use;
// a single Metrics value can be shared by every worker of a pool.
//
// Internally the accumulator is striped: Stripe(i) returns a handle
// whose mutators write to stripe i's cache-line-isolated counters, so
// concurrent workers never contend on shared cache lines; Snapshot
// merges every stripe. A handle obtained from NewMetrics writes to
// stripe 0, so single-writer callers need never know about striping.
package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/machine/hw"
)

// maxStripes bounds the stripe array; Stripe indices are reduced
// modulo this bound, which comfortably exceeds any realistic worker
// count while keeping pathological indices from allocating gigabytes.
const maxStripes = 256

// stripe holds one writer's private counters. Stripes are allocated
// individually (each lands in its own size class slot, a multiple of
// the cache line), so two stripes never share a cache line and
// cross-core writes never bounce.
type stripe struct {
	requests       atomic.Uint64
	failures       atomic.Uint64
	steps          atomic.Uint64
	cycles         atomic.Uint64
	paddingCycles  atomic.Uint64
	mitigations    atomic.Uint64
	mispredictions atomic.Uint64
	scheduleBumps  atomic.Uint64
	faults         atomic.Uint64
	retries        atomic.Uint64
	sheds          atomic.Uint64
	breakerOpens   atomic.Uint64
	breakerCloses  atomic.Uint64
	sessionsNew    atomic.Uint64
	sessionsTTL    atomic.Uint64
	sessionsLRU    atomic.Uint64
	budgetDenials  atomic.Uint64
	bytesIn        atomic.Uint64
	bytesOut       atomic.Uint64
	streamItems    atomic.Uint64
	latency        Histogram
}

// metricsState is the shared backing of every handle onto one
// accumulator: a copy-on-write stripe list, grown on demand by Stripe.
type metricsState struct {
	mu      sync.Mutex // serializes growth
	stripes atomic.Pointer[[]*stripe]
	// sessionsActive is a gauge, not a counter, so it cannot be striped:
	// increments and decrements from different handles must cancel in
	// one place. A single shared atomic is fine — session create/evict
	// is orders of magnitude rarer than per-request counter traffic.
	sessionsActive atomic.Int64
	// streamsActive gauges open /v1/stream connections; like
	// sessionsActive it is a shared gauge, and stream open/close is far
	// rarer than the per-item traffic it carries.
	streamsActive atomic.Int64
}

// Metrics accumulates service-layer counters. Construct with
// NewMetrics; handles derived with Stripe share one accumulator and may
// be used from any number of goroutines (each handle's writes land on
// its own stripe — point different workers at different stripes for a
// contention-free hot path).
type Metrics struct {
	state *metricsState
	local *stripe
}

// NewMetrics returns an empty metrics accumulator whose handle writes
// to stripe 0.
func NewMetrics() *Metrics {
	st := &metricsState{}
	s := &stripe{}
	sl := []*stripe{s}
	st.stripes.Store(&sl)
	return &Metrics{state: st, local: s}
}

// Stripe returns a handle onto the same accumulator whose mutators
// write to stripe i (reduced into range), growing the stripe list as
// needed. Snapshots taken through any handle see the merged totals.
// Typical use: a pool gives worker i the handle Stripe(i), so each
// shard's per-request counter updates stay on core-private cache lines.
func (m *Metrics) Stripe(i int) *Metrics {
	if i < 0 {
		i = -i
	}
	i %= maxStripes
	st := m.state
	if sl := *st.stripes.Load(); i < len(sl) {
		return &Metrics{state: st, local: sl[i]}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	sl := *st.stripes.Load()
	if i < len(sl) {
		return &Metrics{state: st, local: sl[i]}
	}
	grown := make([]*stripe, i+1)
	copy(grown, sl)
	for k := len(sl); k <= i; k++ {
		grown[k] = &stripe{}
	}
	st.stripes.Store(&grown)
	return &Metrics{state: st, local: grown[i]}
}

// Stripes returns the number of allocated stripes (mostly useful in
// tests and diagnostics).
func (m *Metrics) Stripes() int { return len(*m.state.stripes.Load()) }

// AddRequest records one served request and its response latency in
// simulated cycles.
func (m *Metrics) AddRequest(latency uint64) {
	m.local.requests.Add(1)
	m.local.latency.Observe(latency)
}

// AddFailure records one failed (aborted, over-budget, or canceled)
// request.
func (m *Metrics) AddFailure() { m.local.failures.Add(1) }

// AddSteps records language-level steps executed.
func (m *Metrics) AddSteps(n uint64) { m.local.steps.Add(n) }

// AddCycles records simulated cycles spent (useful work and padding
// together; padding is broken out by AddPadding).
func (m *Metrics) AddCycles(n uint64) { m.local.cycles.Add(n) }

// AddPadding records cycles spent idling to a mitigation prediction
// boundary rather than doing useful work.
func (m *Metrics) AddPadding(n uint64) { m.local.paddingCycles.Add(n) }

// AddMitigation records one completed mitigate command and whether it
// mispredicted.
func (m *Metrics) AddMitigation(mispredicted bool) {
	m.local.mitigations.Add(1)
	if mispredicted {
		m.local.mispredictions.Add(1)
	}
}

// AddScheduleBumps records miss-counter increments (schedule
// inflations); one misprediction may bump the counter several times.
func (m *Metrics) AddScheduleBumps(n uint64) { m.local.scheduleBumps.Add(n) }

// AddFault records one injected fault delivered by the fault layer
// (stall, engine error, skew, shed, or cache failure), so every
// degradation a chaos schedule causes is visible in the snapshot.
func (m *Metrics) AddFault() { m.local.faults.Add(1) }

// AddRetry records one retry attempt after a retryable failure.
func (m *Metrics) AddRetry() { m.local.retries.Add(1) }

// AddShed records one request rejected by load shedding (the caller
// got ErrOverloaded instead of unbounded queueing).
func (m *Metrics) AddShed() { m.local.sheds.Add(1) }

// AddBreakerOpen records a per-shard circuit breaker tripping open.
func (m *Metrics) AddBreakerOpen() { m.local.breakerOpens.Add(1) }

// AddBreakerClose records a circuit breaker closing after a
// successful half-open probe.
func (m *Metrics) AddBreakerClose() { m.local.breakerCloses.Add(1) }

// AddSessionCreated records a new tenant session being admitted and
// bumps the sessions-active gauge.
func (m *Metrics) AddSessionCreated() {
	m.local.sessionsNew.Add(1)
	m.state.sessionsActive.Add(1)
}

// AddSessionEvicted records one session eviction and drops the gauge.
// ttl distinguishes idle-expiry evictions from LRU capacity evictions.
func (m *Metrics) AddSessionEvicted(ttl bool) {
	if ttl {
		m.local.sessionsTTL.Add(1)
	} else {
		m.local.sessionsLRU.Add(1)
	}
	m.state.sessionsActive.Add(-1)
}

// AddBudgetDenial records one request rejected at admission because
// the tenant's cumulative leakage budget would be exceeded.
func (m *Metrics) AddBudgetDenial() { m.local.budgetDenials.Add(1) }

// AddBytesIn records wire bytes read from request bodies.
func (m *Metrics) AddBytesIn(n int) { m.local.bytesIn.Add(uint64(n)) }

// AddBytesOut records wire bytes written to response bodies.
func (m *Metrics) AddBytesOut(n int) { m.local.bytesOut.Add(uint64(n)) }

// AddStreamItems records items served over /v1/stream connections.
func (m *Metrics) AddStreamItems(n int) { m.local.streamItems.Add(uint64(n)) }

// StreamOpened bumps the open-streams gauge; StreamClosed drops it.
func (m *Metrics) StreamOpened() { m.state.streamsActive.Add(1) }

// StreamClosed drops the open-streams gauge.
func (m *Metrics) StreamClosed() { m.state.streamsActive.Add(-1) }

// Snapshot returns a consistent-enough point-in-time copy of the
// counters, merged across every stripe. (Counters are read
// individually; a snapshot taken while requests are in flight may tear
// across fields, which is fine for reporting.) The HW field is left
// zero — the service layer that owns the machine environments fills it
// in.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	for _, st := range *m.state.stripes.Load() {
		s.Requests += st.requests.Load()
		s.Failures += st.failures.Load()
		s.Steps += st.steps.Load()
		s.Cycles += st.cycles.Load()
		s.PaddingCycles += st.paddingCycles.Load()
		s.Mitigations += st.mitigations.Load()
		s.Mispredictions += st.mispredictions.Load()
		s.ScheduleBumps += st.scheduleBumps.Load()
		s.Faults += st.faults.Load()
		s.Retries += st.retries.Load()
		s.Sheds += st.sheds.Load()
		s.BreakerOpens += st.breakerOpens.Load()
		s.BreakerCloses += st.breakerCloses.Load()
		s.SessionsCreated += st.sessionsNew.Load()
		s.SessionsEvictedTTL += st.sessionsTTL.Load()
		s.SessionsEvictedLRU += st.sessionsLRU.Load()
		s.BudgetDenials += st.budgetDenials.Load()
		s.BytesIn += st.bytesIn.Load()
		s.BytesOut += st.bytesOut.Load()
		s.StreamItems += st.streamItems.Load()
		s.Latency = s.Latency.Merge(st.latency.Snapshot())
	}
	s.SessionsActive = m.state.sessionsActive.Load()
	s.StreamsActive = m.state.streamsActive.Load()
	return s
}

// Snapshot is a plain-value copy of the metrics, suitable for
// rendering, JSON export, and assertions.
type Snapshot struct {
	// Requests and Failures count completed and aborted requests.
	Requests, Failures uint64
	// Steps and Cycles are the total language steps and simulated
	// cycles executed; PaddingCycles is the share of Cycles spent
	// idling to mitigation prediction boundaries.
	Steps, Cycles, PaddingCycles uint64
	// Mitigations counts completed mitigate commands; Mispredictions
	// those that missed; ScheduleBumps the miss-counter increments.
	Mitigations, Mispredictions, ScheduleBumps uint64
	// Faults counts injected faults delivered; Retries the retry
	// attempts they (and organic transient failures) triggered; Sheds
	// the requests rejected by load shedding; BreakerOpens and
	// BreakerCloses the per-shard circuit-breaker transitions.
	Faults, Retries, Sheds      uint64
	BreakerOpens, BreakerCloses uint64
	// Session accounting: SessionsCreated counts tenant sessions ever
	// admitted; SessionsEvictedTTL/LRU the evictions by cause;
	// BudgetDenials the requests rejected over leakage budget;
	// SessionsActive the point-in-time gauge of live sessions.
	SessionsCreated    uint64
	SessionsEvictedTTL uint64
	SessionsEvictedLRU uint64
	BudgetDenials      uint64
	SessionsActive     int64
	// Wire accounting: BytesIn/BytesOut are request/response body bytes
	// moved by the transport; StreamItems counts items served over
	// /v1/stream; StreamsActive gauges open stream connections.
	BytesIn, BytesOut uint64
	StreamItems       uint64
	StreamsActive     int64
	// Latency is the distribution of per-request response times.
	Latency HistogramSnapshot
	// HW holds cumulative cache/TLB/branch-predictor counters, summed
	// over the service's machine environments.
	HW hw.Stats
}

// UsefulCycles returns the cycles spent on actual execution rather
// than padding.
func (s Snapshot) UsefulCycles() uint64 {
	if s.PaddingCycles > s.Cycles {
		return 0
	}
	return s.Cycles - s.PaddingCycles
}

// PaddingFraction returns padding cycles as a fraction of all cycles.
func (s Snapshot) PaddingFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.PaddingCycles) / float64(s.Cycles)
}

// Merge returns the field-wise sum of two snapshots.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	out.Requests += o.Requests
	out.Failures += o.Failures
	out.Steps += o.Steps
	out.Cycles += o.Cycles
	out.PaddingCycles += o.PaddingCycles
	out.Mitigations += o.Mitigations
	out.Mispredictions += o.Mispredictions
	out.ScheduleBumps += o.ScheduleBumps
	out.Faults += o.Faults
	out.Retries += o.Retries
	out.Sheds += o.Sheds
	out.BreakerOpens += o.BreakerOpens
	out.BreakerCloses += o.BreakerCloses
	out.SessionsCreated += o.SessionsCreated
	out.SessionsEvictedTTL += o.SessionsEvictedTTL
	out.SessionsEvictedLRU += o.SessionsEvictedLRU
	out.BudgetDenials += o.BudgetDenials
	out.SessionsActive += o.SessionsActive
	out.BytesIn += o.BytesIn
	out.BytesOut += o.BytesOut
	out.StreamItems += o.StreamItems
	out.StreamsActive += o.StreamsActive
	out.Latency = s.Latency.Merge(o.Latency)
	out.HW = s.HW.Add(o.HW)
	return out
}

// String renders the snapshot as the human-readable report printed by
// cmd/harness and the CLI.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests served:      %d (%d failed)\n", s.Requests, s.Failures)
	fmt.Fprintf(&b, "language steps:       %d\n", s.Steps)
	fmt.Fprintf(&b, "cycles:               %d total = %d useful + %d padding (%.1f%% padding)\n",
		s.Cycles, s.UsefulCycles(), s.PaddingCycles, 100*s.PaddingFraction())
	fmt.Fprintf(&b, "mitigations:          %d (%d mispredicted, %d schedule bumps)\n",
		s.Mitigations, s.Mispredictions, s.ScheduleBumps)
	if s.Faults+s.Retries+s.Sheds+s.BreakerOpens > 0 {
		fmt.Fprintf(&b, "fault tolerance:      %d faults injected, %d retries, %d shed, breaker %d opens / %d closes\n",
			s.Faults, s.Retries, s.Sheds, s.BreakerOpens, s.BreakerCloses)
	}
	if s.SessionsCreated+s.BudgetDenials > 0 {
		fmt.Fprintf(&b, "tenant sessions:      %d active / %d created, evicted %d ttl + %d lru, %d budget denials\n",
			s.SessionsActive, s.SessionsCreated, s.SessionsEvictedTTL, s.SessionsEvictedLRU, s.BudgetDenials)
	}
	fmt.Fprintf(&b, "latency cycles:       mean %.0f, p50 ≤ %d, p99 ≤ %d, max ≤ %d\n",
		s.Latency.Mean(), s.Latency.Quantile(0.50), s.Latency.Quantile(0.99), s.Latency.Quantile(1))
	fmt.Fprintf(&b, "cache hit rates:      L1D %.1f%%  L2D %.1f%%  L1I %.1f%%  L2I %.1f%%\n",
		100*s.HW.L1DHitRate(), 100*s.HW.L2DHitRate(), 100*s.HW.L1IHitRate(), 100*s.HW.L2IHitRate())
	fmt.Fprintf(&b, "TLB/BP hit rates:     DTLB %.1f%%  ITLB %.1f%%  BP %.1f%%\n",
		100*s.HW.DTLBHitRate(), 100*s.HW.ITLBHitRate(), 100*s.HW.BPHitRate())
	return b.String()
}

// ---------------------------------------------------------------------------
// Histogram

// histBuckets is one bucket per possible bit length of a uint64 value
// (0 → bucket 0, [2^(k-1), 2^k) → bucket k).
const histBuckets = 65

// Histogram is a concurrency-safe power-of-two histogram. The zero
// value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram into a plain value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Buckets[k] counts observations with bit length k, i.e. values in
	// [2^(k-1), 2^k) for k ≥ 1 and the value 0 for k = 0.
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Mean returns the exact mean of all observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]):
// the upper edge of the bucket containing it. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for k, n := range s.Buckets {
		seen += n
		if seen > rank {
			if k == 0 {
				return 0
			}
			if k == 64 {
				return ^uint64(0)
			}
			return 1<<uint(k) - 1
		}
	}
	return ^uint64(0)
}

// Merge returns the bucket-wise sum of two snapshots.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	return out
}

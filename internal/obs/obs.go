// Package obs is a lightweight instrumentation layer for the service
// runtime: concurrency-safe counters and a power-of-two latency
// histogram, aggregated into an immutable Snapshot for reporting.
//
// The counters are deliberately observational — recording them never
// changes simulated time or machine state, so instrumented runs remain
// bit-for-bit deterministic. All mutators are safe for concurrent use;
// a single Metrics value can be shared by every worker of a pool.
package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"repro/internal/machine/hw"
)

// Metrics accumulates service-layer counters. The zero value is ready
// to use; share one value across goroutines freely.
type Metrics struct {
	requests       atomic.Uint64
	failures       atomic.Uint64
	steps          atomic.Uint64
	cycles         atomic.Uint64
	paddingCycles  atomic.Uint64
	mitigations    atomic.Uint64
	mispredictions atomic.Uint64
	scheduleBumps  atomic.Uint64
	latency        Histogram
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics { return &Metrics{} }

// AddRequest records one served request and its response latency in
// simulated cycles.
func (m *Metrics) AddRequest(latency uint64) {
	m.requests.Add(1)
	m.latency.Observe(latency)
}

// AddFailure records one failed (aborted, over-budget, or canceled)
// request.
func (m *Metrics) AddFailure() { m.failures.Add(1) }

// AddSteps records language-level steps executed.
func (m *Metrics) AddSteps(n uint64) { m.steps.Add(n) }

// AddCycles records simulated cycles spent (useful work and padding
// together; padding is broken out by AddPadding).
func (m *Metrics) AddCycles(n uint64) { m.cycles.Add(n) }

// AddPadding records cycles spent idling to a mitigation prediction
// boundary rather than doing useful work.
func (m *Metrics) AddPadding(n uint64) { m.paddingCycles.Add(n) }

// AddMitigation records one completed mitigate command and whether it
// mispredicted.
func (m *Metrics) AddMitigation(mispredicted bool) {
	m.mitigations.Add(1)
	if mispredicted {
		m.mispredictions.Add(1)
	}
}

// AddScheduleBumps records miss-counter increments (schedule
// inflations); one misprediction may bump the counter several times.
func (m *Metrics) AddScheduleBumps(n uint64) { m.scheduleBumps.Add(n) }

// Snapshot returns a consistent-enough point-in-time copy of the
// counters. (Counters are read individually; a snapshot taken while
// requests are in flight may tear across fields, which is fine for
// reporting.) The HW field is left zero — the service layer that owns
// the machine environments fills it in.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Requests:       m.requests.Load(),
		Failures:       m.failures.Load(),
		Steps:          m.steps.Load(),
		Cycles:         m.cycles.Load(),
		PaddingCycles:  m.paddingCycles.Load(),
		Mitigations:    m.mitigations.Load(),
		Mispredictions: m.mispredictions.Load(),
		ScheduleBumps:  m.scheduleBumps.Load(),
		Latency:        m.latency.Snapshot(),
	}
}

// Snapshot is a plain-value copy of the metrics, suitable for
// rendering, JSON export, and assertions.
type Snapshot struct {
	// Requests and Failures count completed and aborted requests.
	Requests, Failures uint64
	// Steps and Cycles are the total language steps and simulated
	// cycles executed; PaddingCycles is the share of Cycles spent
	// idling to mitigation prediction boundaries.
	Steps, Cycles, PaddingCycles uint64
	// Mitigations counts completed mitigate commands; Mispredictions
	// those that missed; ScheduleBumps the miss-counter increments.
	Mitigations, Mispredictions, ScheduleBumps uint64
	// Latency is the distribution of per-request response times.
	Latency HistogramSnapshot
	// HW holds cumulative cache/TLB/branch-predictor counters, summed
	// over the service's machine environments.
	HW hw.Stats
}

// UsefulCycles returns the cycles spent on actual execution rather
// than padding.
func (s Snapshot) UsefulCycles() uint64 {
	if s.PaddingCycles > s.Cycles {
		return 0
	}
	return s.Cycles - s.PaddingCycles
}

// PaddingFraction returns padding cycles as a fraction of all cycles.
func (s Snapshot) PaddingFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.PaddingCycles) / float64(s.Cycles)
}

// Merge returns the field-wise sum of two snapshots.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	out.Requests += o.Requests
	out.Failures += o.Failures
	out.Steps += o.Steps
	out.Cycles += o.Cycles
	out.PaddingCycles += o.PaddingCycles
	out.Mitigations += o.Mitigations
	out.Mispredictions += o.Mispredictions
	out.ScheduleBumps += o.ScheduleBumps
	out.Latency = s.Latency.Merge(o.Latency)
	out.HW = s.HW.Add(o.HW)
	return out
}

// String renders the snapshot as the human-readable report printed by
// cmd/harness and the CLI.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests served:      %d (%d failed)\n", s.Requests, s.Failures)
	fmt.Fprintf(&b, "language steps:       %d\n", s.Steps)
	fmt.Fprintf(&b, "cycles:               %d total = %d useful + %d padding (%.1f%% padding)\n",
		s.Cycles, s.UsefulCycles(), s.PaddingCycles, 100*s.PaddingFraction())
	fmt.Fprintf(&b, "mitigations:          %d (%d mispredicted, %d schedule bumps)\n",
		s.Mitigations, s.Mispredictions, s.ScheduleBumps)
	fmt.Fprintf(&b, "latency cycles:       mean %.0f, p50 ≤ %d, p99 ≤ %d, max ≤ %d\n",
		s.Latency.Mean(), s.Latency.Quantile(0.50), s.Latency.Quantile(0.99), s.Latency.Quantile(1))
	fmt.Fprintf(&b, "cache hit rates:      L1D %.1f%%  L2D %.1f%%  L1I %.1f%%  L2I %.1f%%\n",
		100*s.HW.L1DHitRate(), 100*s.HW.L2DHitRate(), 100*s.HW.L1IHitRate(), 100*s.HW.L2IHitRate())
	fmt.Fprintf(&b, "TLB/BP hit rates:     DTLB %.1f%%  ITLB %.1f%%  BP %.1f%%\n",
		100*s.HW.DTLBHitRate(), 100*s.HW.ITLBHitRate(), 100*s.HW.BPHitRate())
	return b.String()
}

// ---------------------------------------------------------------------------
// Histogram

// histBuckets is one bucket per possible bit length of a uint64 value
// (0 → bucket 0, [2^(k-1), 2^k) → bucket k).
const histBuckets = 65

// Histogram is a concurrency-safe power-of-two histogram. The zero
// value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram into a plain value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Buckets[k] counts observations with bit length k, i.e. values in
	// [2^(k-1), 2^k) for k ≥ 1 and the value 0 for k = 0.
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Mean returns the exact mean of all observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]):
// the upper edge of the bucket containing it. Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for k, n := range s.Buckets {
		seen += n
		if seen > rank {
			if k == 0 {
				return 0
			}
			if k == 64 {
				return ^uint64(0)
			}
			return 1<<uint(k) - 1
		}
	}
	return ^uint64(0)
}

// Merge returns the bucket-wise sum of two snapshots.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	return out
}

package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine/hw"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.AddRequest(100)
	m.AddRequest(200)
	m.AddFailure()
	m.AddSteps(50)
	m.AddCycles(300)
	m.AddPadding(120)
	m.AddMitigation(false)
	m.AddMitigation(true)
	m.AddScheduleBumps(3)
	s := m.Snapshot()
	if s.Requests != 2 || s.Failures != 1 {
		t.Errorf("requests/failures = %d/%d", s.Requests, s.Failures)
	}
	if s.Steps != 50 || s.Cycles != 300 || s.PaddingCycles != 120 {
		t.Errorf("steps/cycles/padding = %d/%d/%d", s.Steps, s.Cycles, s.PaddingCycles)
	}
	if s.Mitigations != 2 || s.Mispredictions != 1 || s.ScheduleBumps != 3 {
		t.Errorf("mitigations/misses/bumps = %d/%d/%d",
			s.Mitigations, s.Mispredictions, s.ScheduleBumps)
	}
	if got := s.UsefulCycles(); got != 180 {
		t.Errorf("UsefulCycles = %d, want 180", got)
	}
	if got := s.PaddingFraction(); got != 0.4 {
		t.Errorf("PaddingFraction = %f, want 0.4", got)
	}
	if s.Latency.Count != 2 || s.Latency.Sum != 300 {
		t.Errorf("latency count/sum = %d/%d", s.Latency.Count, s.Latency.Sum)
	}
}

func TestSnapshotEdgeCases(t *testing.T) {
	var s Snapshot
	if s.UsefulCycles() != 0 || s.PaddingFraction() != 0 {
		t.Error("zero snapshot should report zero cycles split")
	}
	// Padding reported past cycles (tearing between atomic loads) must
	// not underflow.
	s = Snapshot{Cycles: 10, PaddingCycles: 15}
	if s.UsefulCycles() != 0 {
		t.Errorf("UsefulCycles under tear = %d, want 0", s.UsefulCycles())
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{Requests: 1, Cycles: 10, Mitigations: 2,
		HW: hw.Stats{L1DHits: 5}}
	a.Latency.Buckets[3] = 1
	a.Latency.Count, a.Latency.Sum = 1, 5
	b := Snapshot{Requests: 2, Cycles: 20, Mispredictions: 1,
		HW: hw.Stats{L1DHits: 7, L1DMisses: 1}}
	b.Latency.Buckets[3] = 2
	b.Latency.Count, b.Latency.Sum = 2, 12
	m := a.Merge(b)
	if m.Requests != 3 || m.Cycles != 30 || m.Mitigations != 2 || m.Mispredictions != 1 {
		t.Errorf("merged = %+v", m)
	}
	if m.HW.L1DHits != 12 || m.HW.L1DMisses != 1 {
		t.Errorf("merged HW = %+v", m.HW)
	}
	if m.Latency.Buckets[3] != 3 || m.Latency.Count != 3 || m.Latency.Sum != 17 {
		t.Errorf("merged latency = %+v", m.Latency)
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewMetrics()
	m.AddRequest(64)
	m.AddMitigation(true)
	m.AddCycles(100)
	m.AddPadding(25)
	s := m.Snapshot()
	s.HW = hw.Stats{L1DHits: 9, L1DMisses: 1}
	out := s.String()
	for _, want := range []string{
		"requests served:      1",
		"mitigations:          1 (1 mispredicted",
		"75 useful + 25 padding (25.0% padding)",
		"cache hit rates:      L1D 90.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1
	h.Observe(2)    // bucket 2
	h.Observe(3)    // bucket 2
	h.Observe(1000) // bucket 10 ([512, 1024))
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[10] != 1 {
		t.Errorf("buckets = %v", s.Buckets[:11])
	}
	if s.Count != 5 || s.Sum != 1006 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 1006.0/5 {
		t.Errorf("Mean = %f", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4, upper edge 15
	}
	h.Observe(100_000) // bucket 17, upper edge 131071
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	if q := s.Quantile(1); q != 131071 {
		t.Errorf("p100 = %d, want 131071", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	// Out-of-range q is clamped.
	if s.Quantile(-1) != 15 || s.Quantile(2) != 131071 {
		t.Error("quantile clamping failed")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddRequest(uint64(i))
				m.AddCycles(2)
				m.AddMitigation(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Requests != 8000 || s.Cycles != 16000 || s.Mitigations != 8000 || s.Mispredictions != 4000 {
		t.Errorf("concurrent totals: %+v", s)
	}
	if s.Latency.Count != 8000 {
		t.Errorf("latency count = %d", s.Latency.Count)
	}
}

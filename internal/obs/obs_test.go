package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine/hw"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.AddRequest(100)
	m.AddRequest(200)
	m.AddFailure()
	m.AddSteps(50)
	m.AddCycles(300)
	m.AddPadding(120)
	m.AddMitigation(false)
	m.AddMitigation(true)
	m.AddScheduleBumps(3)
	s := m.Snapshot()
	if s.Requests != 2 || s.Failures != 1 {
		t.Errorf("requests/failures = %d/%d", s.Requests, s.Failures)
	}
	if s.Steps != 50 || s.Cycles != 300 || s.PaddingCycles != 120 {
		t.Errorf("steps/cycles/padding = %d/%d/%d", s.Steps, s.Cycles, s.PaddingCycles)
	}
	if s.Mitigations != 2 || s.Mispredictions != 1 || s.ScheduleBumps != 3 {
		t.Errorf("mitigations/misses/bumps = %d/%d/%d",
			s.Mitigations, s.Mispredictions, s.ScheduleBumps)
	}
	if got := s.UsefulCycles(); got != 180 {
		t.Errorf("UsefulCycles = %d, want 180", got)
	}
	if got := s.PaddingFraction(); got != 0.4 {
		t.Errorf("PaddingFraction = %f, want 0.4", got)
	}
	if s.Latency.Count != 2 || s.Latency.Sum != 300 {
		t.Errorf("latency count/sum = %d/%d", s.Latency.Count, s.Latency.Sum)
	}
}

func TestSnapshotEdgeCases(t *testing.T) {
	var s Snapshot
	if s.UsefulCycles() != 0 || s.PaddingFraction() != 0 {
		t.Error("zero snapshot should report zero cycles split")
	}
	// Padding reported past cycles (tearing between atomic loads) must
	// not underflow.
	s = Snapshot{Cycles: 10, PaddingCycles: 15}
	if s.UsefulCycles() != 0 {
		t.Errorf("UsefulCycles under tear = %d, want 0", s.UsefulCycles())
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{Requests: 1, Cycles: 10, Mitigations: 2,
		HW: hw.Stats{L1DHits: 5}}
	a.Latency.Buckets[3] = 1
	a.Latency.Count, a.Latency.Sum = 1, 5
	b := Snapshot{Requests: 2, Cycles: 20, Mispredictions: 1,
		HW: hw.Stats{L1DHits: 7, L1DMisses: 1}}
	b.Latency.Buckets[3] = 2
	b.Latency.Count, b.Latency.Sum = 2, 12
	m := a.Merge(b)
	if m.Requests != 3 || m.Cycles != 30 || m.Mitigations != 2 || m.Mispredictions != 1 {
		t.Errorf("merged = %+v", m)
	}
	if m.HW.L1DHits != 12 || m.HW.L1DMisses != 1 {
		t.Errorf("merged HW = %+v", m.HW)
	}
	if m.Latency.Buckets[3] != 3 || m.Latency.Count != 3 || m.Latency.Sum != 17 {
		t.Errorf("merged latency = %+v", m.Latency)
	}
}

func TestSnapshotString(t *testing.T) {
	m := NewMetrics()
	m.AddRequest(64)
	m.AddMitigation(true)
	m.AddCycles(100)
	m.AddPadding(25)
	s := m.Snapshot()
	s.HW = hw.Stats{L1DHits: 9, L1DMisses: 1}
	out := s.String()
	for _, want := range []string{
		"requests served:      1",
		"mitigations:          1 (1 mispredicted",
		"75 useful + 25 padding (25.0% padding)",
		"cache hit rates:      L1D 90.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1
	h.Observe(2)    // bucket 2
	h.Observe(3)    // bucket 2
	h.Observe(1000) // bucket 10 ([512, 1024))
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[10] != 1 {
		t.Errorf("buckets = %v", s.Buckets[:11])
	}
	if s.Count != 5 || s.Sum != 1006 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 1006.0/5 {
		t.Errorf("Mean = %f", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4, upper edge 15
	}
	h.Observe(100_000) // bucket 17, upper edge 131071
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	if q := s.Quantile(1); q != 131071 {
		t.Errorf("p100 = %d, want 131071", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	// Out-of-range q is clamped.
	if s.Quantile(-1) != 15 || s.Quantile(2) != 131071 {
		t.Error("quantile clamping failed")
	}
}

func TestMetricsStripes(t *testing.T) {
	m := NewMetrics()
	if m.Stripes() != 1 {
		t.Fatalf("fresh accumulator has %d stripes, want 1", m.Stripes())
	}
	// Handles share one accumulator: writes through any stripe handle
	// are visible in every handle's snapshot.
	s0 := m.Stripe(0)
	s3 := m.Stripe(3)
	if m.Stripes() != 4 {
		t.Fatalf("after Stripe(3): %d stripes, want 4", m.Stripes())
	}
	m.AddRequest(8)
	s0.AddRequest(16)
	s3.AddRequest(32)
	s3.AddFailure()
	for name, h := range map[string]*Metrics{"root": m, "s0": s0, "s3": s3} {
		s := h.Snapshot()
		if s.Requests != 3 || s.Failures != 1 {
			t.Errorf("%s snapshot requests/failures = %d/%d, want 3/1", name, s.Requests, s.Failures)
		}
		if s.Latency.Count != 3 || s.Latency.Sum != 56 {
			t.Errorf("%s latency count/sum = %d/%d, want 3/56", name, s.Latency.Count, s.Latency.Sum)
		}
	}
	// Stripe is stable: the same index maps to the same stripe, and the
	// root handle writes to stripe 0.
	if m.Stripe(3) == s3 {
		t.Error("Stripe should return a fresh handle value")
	}
	// Negative and huge indices are reduced into range, not grown
	// without bound.
	m.Stripe(-7).AddSteps(5)
	m.Stripe(maxStripes + 2).AddSteps(7)
	if m.Stripes() > maxStripes {
		t.Errorf("stripes grew past bound: %d", m.Stripes())
	}
	if s := m.Snapshot(); s.Steps != 12 {
		t.Errorf("steps = %d, want 12", s.Steps)
	}
}

func TestMetricsStripedConcurrent(t *testing.T) {
	// Each goroutine writes through its own stripe — the pool's usage
	// pattern — and the merged snapshot must still be exact.
	m := NewMetrics()
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		h := m.Stripe(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.AddRequest(uint64(i))
				h.AddCycles(3)
				h.AddPadding(1)
				h.AddMitigation(i%4 == 0)
				h.AddScheduleBumps(2)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	const n = writers * perWriter
	if s.Requests != n || s.Cycles != 3*n || s.PaddingCycles != n {
		t.Errorf("requests/cycles/padding = %d/%d/%d", s.Requests, s.Cycles, s.PaddingCycles)
	}
	if s.Mitigations != n || s.Mispredictions != n/4 || s.ScheduleBumps != 2*n {
		t.Errorf("mitigations/misses/bumps = %d/%d/%d", s.Mitigations, s.Mispredictions, s.ScheduleBumps)
	}
	if s.Latency.Count != n {
		t.Errorf("latency count = %d, want %d", s.Latency.Count, n)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddRequest(uint64(i))
				m.AddCycles(2)
				m.AddMitigation(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Requests != 8000 || s.Cycles != 16000 || s.Mitigations != 8000 || s.Mispredictions != 4000 {
		t.Errorf("concurrent totals: %+v", s)
	}
	if s.Latency.Count != 8000 {
		t.Errorf("latency count = %d", s.Latency.Count)
	}
}

func TestFaultToleranceCounters(t *testing.T) {
	m := NewMetrics()
	w := m.Stripe(1) // counters merge across stripes like the others
	m.AddFault()
	w.AddFault()
	m.AddRetry()
	w.AddShed()
	m.AddBreakerOpen()
	w.AddBreakerClose()
	s := m.Snapshot()
	if s.Faults != 2 || s.Retries != 1 || s.Sheds != 1 {
		t.Errorf("faults/retries/sheds = %d/%d/%d, want 2/1/1", s.Faults, s.Retries, s.Sheds)
	}
	if s.BreakerOpens != 1 || s.BreakerCloses != 1 {
		t.Errorf("breaker opens/closes = %d/%d, want 1/1", s.BreakerOpens, s.BreakerCloses)
	}
	merged := s.Merge(s)
	if merged.Faults != 4 || merged.Retries != 2 || merged.Sheds != 2 ||
		merged.BreakerOpens != 2 || merged.BreakerCloses != 2 {
		t.Errorf("Merge dropped fault-tolerance counters: %+v", merged)
	}
	if !strings.Contains(s.String(), "fault tolerance:") {
		t.Errorf("String omits fault-tolerance line:\n%s", s)
	}
	// A fault-free snapshot keeps the report uncluttered.
	if strings.Contains(NewMetrics().Snapshot().String(), "fault tolerance:") {
		t.Error("fault-free snapshot renders a fault-tolerance line")
	}
}

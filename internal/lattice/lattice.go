// Package lattice provides security lattices: partially ordered sets of
// confidentiality labels with joins and meets.
//
// The paper (Zhang, Askarov, Myers, PLDI 2012) assumes an arbitrary
// security lattice with at least two distinct labels L ⊑ H such that
// H ⋢ L. All analyses in this repository — the type system, the leakage
// theory, and the labeled hardware models — are parameterized over the
// Lattice interface so that two-point, linear multilevel, powerset, and
// product lattices can all be used.
package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Label is an element of a security lattice. Labels are immutable and
// comparable only through the lattice that produced them: a Label from
// one lattice must not be passed to another lattice's operations.
type Label struct {
	// id indexes the lattice's internal element table.
	id int
	// lat identifies the owning lattice.
	lat *table
}

// ID returns the label's dense index within its lattice, in the range
// [0, Lattice.Size()). IDs are stable for the lifetime of the lattice
// and are suitable as slice indices for per-level bookkeeping (e.g. the
// Miss array of the predictive mitigation runtime).
func (l Label) ID() int { return l.id }

// String returns the label's name as registered with its lattice.
func (l Label) String() string {
	if l.lat == nil {
		return "<invalid label>"
	}
	return l.lat.names[l.id]
}

// Valid reports whether the label belongs to some lattice. The zero
// Label is invalid; using it with lattice operations panics.
func (l Label) Valid() bool { return l.lat != nil }

// Lattice is a finite security lattice. Implementations must be
// bounded (have Bot and Top), and Join/Meet must be total.
type Lattice interface {
	// Bot returns the least restrictive label (public; ⊥).
	Bot() Label
	// Top returns the most restrictive label (⊤).
	Top() Label
	// Leq reports whether a ⊑ b, i.e. information may flow from a to b.
	Leq(a, b Label) bool
	// Join returns the least upper bound a ⊔ b.
	Join(a, b Label) Label
	// Meet returns the greatest lower bound a ⊓ b.
	Meet(a, b Label) Label
	// Levels returns all labels in the lattice in a deterministic order
	// (topologically sorted: if a ⊑ b and a ≠ b then a precedes b).
	Levels() []Label
	// Lookup resolves a label by name; ok is false if no such label.
	Lookup(name string) (Label, bool)
	// Size returns the number of labels in the lattice.
	Size() int
	// Name returns a human-readable description of the lattice.
	Name() string
}

// table is the shared concrete representation behind every lattice in
// this package: a dense element table with a precomputed order relation.
type table struct {
	name  string
	names []string
	// leq[i][j] reports whether element i ⊑ element j.
	leq [][]bool
	// join[i][j] and meet[i][j] hold precomputed bounds.
	join   [][]int
	meet   [][]int
	bot    int
	top    int
	byName map[string]int
	order  []int // topological order of element ids
	// levels caches the Levels() result. Lattices are immutable after
	// build, and Levels() sits on the hardware-access hot path, so the
	// slice is computed once and shared; callers must not mutate it.
	levels []Label
}

func (t *table) label(id int) Label { return Label{id: id, lat: t} }

func (t *table) Bot() Label { return t.label(t.bot) }
func (t *table) Top() Label { return t.label(t.top) }

func (t *table) check(l Label) int {
	if l.lat != t {
		panic(fmt.Sprintf("lattice %q: label %q belongs to a different lattice", t.name, l))
	}
	return l.id
}

func (t *table) Leq(a, b Label) bool {
	return t.leq[t.check(a)][t.check(b)]
}

func (t *table) Join(a, b Label) Label {
	return t.label(t.join[t.check(a)][t.check(b)])
}

func (t *table) Meet(a, b Label) Label {
	return t.label(t.meet[t.check(a)][t.check(b)])
}

func (t *table) Levels() []Label {
	return t.levels
}

func (t *table) Lookup(name string) (Label, bool) {
	id, ok := t.byName[name]
	if !ok {
		return Label{}, false
	}
	return t.label(id), true
}

func (t *table) Size() int    { return len(t.names) }
func (t *table) Name() string { return t.name }

// build constructs a lattice table from element names and a covering
// relation given as explicit ⊑ pairs (the relation is closed reflexively
// and transitively). It validates that the result is a bounded lattice:
// unique bot and top, and total join/meet.
func build(name string, names []string, below func(i, j int) bool) (*table, error) {
	n := len(names)
	if n == 0 {
		return nil, fmt.Errorf("lattice %q: no elements", name)
	}
	t := &table{name: name, names: names, byName: make(map[string]int, n)}
	for i, nm := range names {
		if nm == "" {
			return nil, fmt.Errorf("lattice %q: empty label name at index %d", name, i)
		}
		if _, dup := t.byName[nm]; dup {
			return nil, fmt.Errorf("lattice %q: duplicate label name %q", name, nm)
		}
		t.byName[nm] = i
	}
	// Close the relation reflexively and transitively (Floyd–Warshall).
	leq := make([][]bool, n)
	for i := range leq {
		leq[i] = make([]bool, n)
		leq[i][i] = true
		for j := 0; j < n; j++ {
			if below(i, j) {
				leq[i][j] = true
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !leq[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if leq[k][j] {
					leq[i][j] = true
				}
			}
		}
	}
	// Antisymmetry.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && leq[i][j] && leq[j][i] {
				return nil, fmt.Errorf("lattice %q: %q and %q are mutually ordered (not a partial order)",
					name, names[i], names[j])
			}
		}
	}
	t.leq = leq
	// Compute joins and meets; verify existence and uniqueness.
	t.join = make([][]int, n)
	t.meet = make([][]int, n)
	for i := 0; i < n; i++ {
		t.join[i] = make([]int, n)
		t.meet[i] = make([]int, n)
		for j := 0; j < n; j++ {
			jn, err := bound(leq, i, j, true)
			if err != nil {
				return nil, fmt.Errorf("lattice %q: %v", name, err)
			}
			mt, err := bound(leq, i, j, false)
			if err != nil {
				return nil, fmt.Errorf("lattice %q: %v", name, err)
			}
			t.join[i][j] = jn
			t.meet[i][j] = mt
		}
	}
	// Bot and top.
	t.bot, t.top = -1, -1
	for i := 0; i < n; i++ {
		isBot, isTop := true, true
		for j := 0; j < n; j++ {
			if !leq[i][j] {
				isBot = false
			}
			if !leq[j][i] {
				isTop = false
			}
		}
		if isBot {
			t.bot = i
		}
		if isTop {
			t.top = i
		}
	}
	if t.bot < 0 || t.top < 0 {
		return nil, fmt.Errorf("lattice %q: not bounded (missing bot or top)", name)
	}
	// Topological order: stable sort by number of elements below.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	countBelow := func(i int) int {
		c := 0
		for j := 0; j < n; j++ {
			if leq[j][i] {
				c++
			}
		}
		return c
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := countBelow(order[a]), countBelow(order[b])
		if ca != cb {
			return ca < cb
		}
		return names[order[a]] < names[order[b]]
	})
	t.order = order
	t.levels = make([]Label, n)
	for i, id := range order {
		t.levels[i] = t.label(id)
	}
	return t, nil
}

// bound computes the least upper bound (if upper) or greatest lower
// bound (if !upper) of elements i and j under leq, reporting an error if
// none exists or it is not unique.
func bound(leq [][]bool, i, j int, upper bool) (int, error) {
	n := len(leq)
	le := func(a, b int) bool {
		if upper {
			return leq[a][b]
		}
		return leq[b][a]
	}
	var cands []int
	for k := 0; k < n; k++ {
		if le(i, k) && le(j, k) {
			cands = append(cands, k)
		}
	}
	if len(cands) == 0 {
		return 0, fmt.Errorf("elements %d and %d have no common bound", i, j)
	}
	// The bound is the candidate below (above) all other candidates.
	for _, c := range cands {
		ok := true
		for _, d := range cands {
			if !le2(leq, c, d, upper) {
				ok = false
				break
			}
		}
		if ok {
			return c, nil
		}
	}
	return 0, fmt.Errorf("elements %d and %d have no unique bound (not a lattice)", i, j)
}

func le2(leq [][]bool, a, b int, upper bool) bool {
	if upper {
		return leq[a][b]
	}
	return leq[b][a]
}

// New constructs a lattice from explicit elements and covering pairs.
// Each pair {lo, hi} asserts lo ⊑ hi; the relation is closed under
// reflexivity and transitivity. New reports an error if the result is
// not a bounded lattice.
func New(name string, elements []string, covers [][2]string) (Lattice, error) {
	idx := make(map[string]int, len(elements))
	for i, e := range elements {
		idx[e] = i
	}
	rel := make(map[[2]int]bool, len(covers))
	for _, c := range covers {
		lo, ok1 := idx[c[0]]
		hi, ok2 := idx[c[1]]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("lattice %q: cover %q ⊑ %q references unknown element", name, c[0], c[1])
		}
		rel[[2]int{lo, hi}] = true
	}
	return build(name, elements, func(i, j int) bool { return rel[[2]int{i, j}] })
}

// The stock lattices are shared singletons: labels are only comparable
// through the lattice instance that produced them, so handing every
// caller the same instance removes a whole class of mixed-instance
// bugs. (Lattices are immutable after construction, so sharing is
// safe.) Custom lattices from New/Linear/Powerset/Product are fresh
// instances each call.
var (
	twoPointLat   = mustBuild("two-point", []string{"L", "H"}, func(i, j int) bool { return i == 0 && j == 1 })
	threePointLat = mustLinear("L", "M", "H")
	diamondLat    = mustDiamond()
)

func mustBuild(name string, names []string, below func(i, j int) bool) Lattice {
	t, err := build(name, names, below)
	if err != nil {
		panic(err)
	}
	return t
}

func mustLinear(names ...string) Lattice {
	t, err := build("linear:"+strings.Join(names, "⊑"), append([]string(nil), names...),
		func(i, j int) bool { return i < j })
	if err != nil {
		panic(err)
	}
	return t
}

func mustDiamond() Lattice {
	t, err := New("diamond",
		[]string{"L", "A", "B", "H"},
		[][2]string{{"L", "A"}, {"L", "B"}, {"A", "H"}, {"B", "H"}})
	if err != nil {
		panic(err)
	}
	return t
}

// TwoPoint returns the standard two-point lattice L ⊑ H used throughout
// the paper's examples; L is bot and H is top. All calls return the
// same shared instance.
func TwoPoint() Lattice { return twoPointLat }

// Linear returns a totally ordered lattice over the given names, ordered
// from least to most restrictive. Linear panics if names is empty or
// contains duplicates (programmer error).
func Linear(names ...string) Lattice {
	t, err := build("linear:"+strings.Join(names, "⊑"), append([]string(nil), names...),
		func(i, j int) bool { return i < j })
	if err != nil {
		panic(err)
	}
	return t
}

// ThreePoint returns the linear lattice L ⊑ M ⊑ H used by the paper's
// multilevel examples (§4, §6). All calls return the same shared
// instance.
func ThreePoint() Lattice { return threePointLat }

// Powerset returns the powerset lattice over the given principals,
// ordered by subset inclusion; ∅ is bot (public) and the full set is
// top. Element names are comma-joined sorted principal subsets, with
// "{}" for the empty set. Powerset panics if len(principals) > 10 to
// keep the element table small, or if principals repeat.
func Powerset(principals ...string) Lattice {
	if len(principals) > 10 {
		panic("lattice.Powerset: too many principals (max 10)")
	}
	ps := append([]string(nil), principals...)
	sort.Strings(ps)
	n := 1 << len(ps)
	names := make([]string, n)
	for s := 0; s < n; s++ {
		var parts []string
		for i, p := range ps {
			if s&(1<<i) != 0 {
				parts = append(parts, p)
			}
		}
		if len(parts) == 0 {
			names[s] = "{}"
		} else {
			names[s] = "{" + strings.Join(parts, ",") + "}"
		}
	}
	t, err := build("powerset", names, func(i, j int) bool { return i&j == i })
	if err != nil {
		panic(err)
	}
	return t
}

// Product returns the product lattice of a and b: elements are pairs
// "x*y" ordered componentwise. Products model orthogonal concerns —
// e.g. confidentiality per principal crossed with a clearance ladder.
// Product panics if the result would exceed 64 elements.
func Product(a, b Lattice) Lattice {
	la, lb := a.Levels(), b.Levels()
	if len(la)*len(lb) > 64 {
		panic("lattice.Product: result too large (max 64 elements)")
	}
	names := make([]string, 0, len(la)*len(lb))
	type pair struct{ i, j int }
	idx := make(map[string]pair)
	for i, x := range la {
		for j, y := range lb {
			n := x.String() + "*" + y.String()
			idx[n] = pair{i, j}
			names = append(names, n)
		}
	}
	t, err := build("product("+a.Name()+","+b.Name()+")", names, func(m, n int) bool {
		pm, pn := idx[names[m]], idx[names[n]]
		return a.Leq(la[pm.i], la[pn.i]) && b.Leq(lb[pm.j], lb[pn.j])
	})
	if err != nil {
		panic(err) // products of lattices are lattices
	}
	return t
}

// Diamond returns the four-point diamond lattice L ⊑ {A, B} ⊑ H with A
// and B incomparable — the smallest lattice exercising incomparable
// levels, useful for testing the multilevel leakage theory. All calls
// return the same shared instance.
func Diamond() Lattice { return diamondLat }

// UpwardClosure returns the upward closure S↑ = {ℓ' | ∃ℓ ∈ S. ℓ ⊑ ℓ'} of
// the given set of labels, in the lattice's deterministic level order.
// Used by the leakage theory (§6.3): leakage from levels S must account
// for all levels at least as restrictive as some member of S.
func UpwardClosure(lat Lattice, set []Label) []Label {
	var out []Label
	for _, lv := range lat.Levels() {
		for _, s := range set {
			if lat.Leq(s, lv) {
				out = append(out, lv)
				break
			}
		}
	}
	return out
}

// ExcludeObservable returns L_ℓA: the subset of set whose members do NOT
// flow to the adversary level adv (§6.2). Levels the adversary observes
// directly provide no new information through timing.
func ExcludeObservable(lat Lattice, set []Label, adv Label) []Label {
	var out []Label
	for _, l := range set {
		if !lat.Leq(l, adv) {
			out = append(out, l)
		}
	}
	return out
}

// Contains reports whether set contains l.
func Contains(set []Label, l Label) bool {
	for _, s := range set {
		if s == l {
			return true
		}
	}
	return false
}

// JoinAll returns the join of all labels in set, or the lattice bottom
// if set is empty.
func JoinAll(lat Lattice, set []Label) Label {
	out := lat.Bot()
	for _, l := range set {
		out = lat.Join(out, l)
	}
	return out
}

package lattice

// Property tests: the algebraic laws every security lattice must
// satisfy, checked over randomized label pairs/triples drawn with a
// fixed seed from each concrete lattice this package ships. The type
// system, the leakage theory, and the mitigation runtime all assume
// these laws; a lattice that violates one breaks soundness silently,
// which is why they are pinned here rather than trusted to the
// constructors.

import (
	"fmt"
	"math/rand"
	"testing"
)

// propertyLattices returns one instance of every lattice family.
func propertyLattices() []Lattice {
	return []Lattice{
		TwoPoint(),
		ThreePoint(),
		Diamond(),
		Powerset("alice", "bob", "carol"),
		Product(TwoPoint(), ThreePoint()),
	}
}

const propertyTrials = 500

// draw picks a uniformly random label.
func draw(rng *rand.Rand, lat Lattice) Label {
	levels := lat.Levels()
	return levels[rng.Intn(len(levels))]
}

func forEachLattice(t *testing.T, f func(t *testing.T, lat Lattice, rng *rand.Rand)) {
	for _, lat := range propertyLattices() {
		t.Run(lat.Name(), func(t *testing.T) {
			// Fixed seed per lattice: failures reproduce exactly.
			f(t, lat, rand.New(rand.NewSource(1)))
		})
	}
}

func TestJoinMeetCommutative(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		for i := 0; i < propertyTrials; i++ {
			a, b := draw(rng, lat), draw(rng, lat)
			if lat.Join(a, b) != lat.Join(b, a) {
				t.Fatalf("join not commutative: %v ⊔ %v = %v but %v ⊔ %v = %v",
					a, b, lat.Join(a, b), b, a, lat.Join(b, a))
			}
			if lat.Meet(a, b) != lat.Meet(b, a) {
				t.Fatalf("meet not commutative: %v ⊓ %v ≠ %v ⊓ %v", a, b, b, a)
			}
		}
	})
}

func TestJoinMeetAssociative(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		for i := 0; i < propertyTrials; i++ {
			a, b, c := draw(rng, lat), draw(rng, lat), draw(rng, lat)
			if lat.Join(lat.Join(a, b), c) != lat.Join(a, lat.Join(b, c)) {
				t.Fatalf("join not associative on (%v, %v, %v)", a, b, c)
			}
			if lat.Meet(lat.Meet(a, b), c) != lat.Meet(a, lat.Meet(b, c)) {
				t.Fatalf("meet not associative on (%v, %v, %v)", a, b, c)
			}
		}
	})
}

func TestJoinMeetIdempotent(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		for i := 0; i < propertyTrials; i++ {
			a := draw(rng, lat)
			if lat.Join(a, a) != a || lat.Meet(a, a) != a {
				t.Fatalf("not idempotent at %v: join=%v meet=%v", a, lat.Join(a, a), lat.Meet(a, a))
			}
		}
	})
}

func TestAbsorption(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		for i := 0; i < propertyTrials; i++ {
			a, b := draw(rng, lat), draw(rng, lat)
			if lat.Join(a, lat.Meet(a, b)) != a {
				t.Fatalf("absorption failed: %v ⊔ (%v ⊓ %v) = %v, want %v",
					a, a, b, lat.Join(a, lat.Meet(a, b)), a)
			}
			if lat.Meet(a, lat.Join(a, b)) != a {
				t.Fatalf("absorption failed: %v ⊓ (%v ⊔ %v) = %v, want %v",
					a, a, b, lat.Meet(a, lat.Join(a, b)), a)
			}
		}
	})
}

// TestOrderConsistency pins the equivalence between the order relation
// and the bounds: a ⊑ b ⟺ a ⊔ b = b ⟺ a ⊓ b = a, and the bounds
// really bound: a, b ⊑ a ⊔ b and a ⊓ b ⊑ a, b.
func TestOrderConsistency(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		for i := 0; i < propertyTrials; i++ {
			a, b := draw(rng, lat), draw(rng, lat)
			j, m := lat.Join(a, b), lat.Meet(a, b)
			if lat.Leq(a, b) != (j == b) {
				t.Fatalf("Leq(%v,%v)=%v inconsistent with join %v", a, b, lat.Leq(a, b), j)
			}
			if lat.Leq(a, b) != (m == a) {
				t.Fatalf("Leq(%v,%v)=%v inconsistent with meet %v", a, b, lat.Leq(a, b), m)
			}
			if !lat.Leq(a, j) || !lat.Leq(b, j) {
				t.Fatalf("%v ⊔ %v = %v is not an upper bound", a, b, j)
			}
			if !lat.Leq(m, a) || !lat.Leq(m, b) {
				t.Fatalf("%v ⊓ %v = %v is not a lower bound", a, b, m)
			}
		}
	})
}

// TestMonotonicity pins ⊑-monotonicity of join and meet: a ⊑ b implies
// a ⊔ c ⊑ b ⊔ c and a ⊓ c ⊑ b ⊓ c.
func TestMonotonicity(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		for i := 0; i < propertyTrials; i++ {
			a, b, c := draw(rng, lat), draw(rng, lat), draw(rng, lat)
			if !lat.Leq(a, b) {
				// Force a comparable pair: any a ⊑ a ⊔ b.
				b = lat.Join(a, b)
			}
			if !lat.Leq(lat.Join(a, c), lat.Join(b, c)) {
				t.Fatalf("join not monotone: %v ⊑ %v but %v ⊔ %v ⋢ %v ⊔ %v", a, b, a, c, b, c)
			}
			if !lat.Leq(lat.Meet(a, c), lat.Meet(b, c)) {
				t.Fatalf("meet not monotone: %v ⊑ %v but %v ⊓ %v ⋢ %v ⊓ %v", a, b, a, c, b, c)
			}
		}
	})
}

// TestBounds pins ⊥ and ⊤ as the global extremes, and Levels() as a
// topological order.
func TestBounds(t *testing.T) {
	forEachLattice(t, func(t *testing.T, lat Lattice, rng *rand.Rand) {
		levels := lat.Levels()
		if len(levels) != lat.Size() {
			t.Fatalf("Levels() has %d elements, Size() says %d", len(levels), lat.Size())
		}
		for _, a := range levels {
			if !lat.Leq(lat.Bot(), a) {
				t.Fatalf("⊥ ⋢ %v", a)
			}
			if !lat.Leq(a, lat.Top()) {
				t.Fatalf("%v ⋢ ⊤", a)
			}
		}
		for i, a := range levels {
			for j, b := range levels {
				if j <= i {
					continue
				}
				if lat.Leq(b, a) && a != b {
					t.Fatalf("Levels() not topological: %v (pos %d) ⊒ %v (pos %d)", a, i, b, j)
				}
				_ = fmt.Sprintf("%v%v", a, b) // labels stringify without panicking
			}
		}
	})
}

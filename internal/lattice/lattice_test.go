package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTwoPointBasics(t *testing.T) {
	lat := TwoPoint()
	L, ok := lat.Lookup("L")
	if !ok {
		t.Fatal("missing L")
	}
	H, ok := lat.Lookup("H")
	if !ok {
		t.Fatal("missing H")
	}
	if !lat.Leq(L, H) {
		t.Error("want L ⊑ H")
	}
	if lat.Leq(H, L) {
		t.Error("want H ⋢ L")
	}
	if lat.Bot() != L {
		t.Errorf("Bot = %v, want L", lat.Bot())
	}
	if lat.Top() != H {
		t.Errorf("Top = %v, want H", lat.Top())
	}
	if got := lat.Join(L, H); got != H {
		t.Errorf("L ⊔ H = %v, want H", got)
	}
	if got := lat.Meet(L, H); got != L {
		t.Errorf("L ⊓ H = %v, want L", got)
	}
	if lat.Size() != 2 {
		t.Errorf("Size = %d, want 2", lat.Size())
	}
}

func TestLookupUnknown(t *testing.T) {
	lat := TwoPoint()
	if _, ok := lat.Lookup("Q"); ok {
		t.Error("Lookup(Q) should fail")
	}
}

func TestLabelString(t *testing.T) {
	lat := ThreePoint()
	M, _ := lat.Lookup("M")
	if M.String() != "M" {
		t.Errorf("String = %q, want M", M.String())
	}
	var zero Label
	if zero.String() != "<invalid label>" {
		t.Errorf("zero label String = %q", zero.String())
	}
	if zero.Valid() {
		t.Error("zero label should be invalid")
	}
	if !M.Valid() {
		t.Error("M should be valid")
	}
}

func TestThreePointOrder(t *testing.T) {
	lat := ThreePoint()
	L, _ := lat.Lookup("L")
	M, _ := lat.Lookup("M")
	H, _ := lat.Lookup("H")
	cases := []struct {
		a, b Label
		want bool
	}{
		{L, M, true}, {M, H, true}, {L, H, true},
		{M, L, false}, {H, M, false}, {H, L, false},
		{L, L, true}, {M, M, true}, {H, H, true},
	}
	for _, c := range cases {
		if got := lat.Leq(c.a, c.b); got != c.want {
			t.Errorf("Leq(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDiamondIncomparable(t *testing.T) {
	lat := Diamond()
	A, _ := lat.Lookup("A")
	B, _ := lat.Lookup("B")
	L, _ := lat.Lookup("L")
	H, _ := lat.Lookup("H")
	if lat.Leq(A, B) || lat.Leq(B, A) {
		t.Error("A and B must be incomparable")
	}
	if got := lat.Join(A, B); got != H {
		t.Errorf("A ⊔ B = %v, want H", got)
	}
	if got := lat.Meet(A, B); got != L {
		t.Errorf("A ⊓ B = %v, want L", got)
	}
}

func TestPowersetStructure(t *testing.T) {
	lat := Powerset("alice", "bob")
	if lat.Size() != 4 {
		t.Fatalf("Size = %d, want 4", lat.Size())
	}
	empty, ok := lat.Lookup("{}")
	if !ok {
		t.Fatal("missing {}")
	}
	if lat.Bot() != empty {
		t.Error("bot should be empty set")
	}
	ab, ok := lat.Lookup("{alice,bob}")
	if !ok {
		t.Fatal("missing {alice,bob}")
	}
	if lat.Top() != ab {
		t.Error("top should be full set")
	}
	a, _ := lat.Lookup("{alice}")
	b, _ := lat.Lookup("{bob}")
	if got := lat.Join(a, b); got != ab {
		t.Errorf("join = %v, want {alice,bob}", got)
	}
	if got := lat.Meet(a, b); got != empty {
		t.Errorf("meet = %v, want {}", got)
	}
}

func TestPowersetTooManyPrincipals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for >10 principals")
		}
	}()
	Powerset("a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k")
}

func TestNewRejectsCycles(t *testing.T) {
	_, err := New("cyc", []string{"A", "B"}, [][2]string{{"A", "B"}, {"B", "A"}})
	if err == nil {
		t.Error("expected error for cyclic order")
	}
}

func TestNewRejectsUnbounded(t *testing.T) {
	// Two incomparable elements with no bounds: not a lattice.
	_, err := New("unb", []string{"A", "B"}, nil)
	if err == nil {
		t.Error("expected error for unbounded poset")
	}
}

func TestNewRejectsNonLattice(t *testing.T) {
	// "M" shape: A,B below C,D, plus bot/top would fix it — without a
	// unique join of A,B this is not a lattice.
	_, err := New("m",
		[]string{"bot", "A", "B", "C", "D", "top"},
		[][2]string{
			{"bot", "A"}, {"bot", "B"},
			{"A", "C"}, {"B", "C"}, {"A", "D"}, {"B", "D"},
			{"C", "top"}, {"D", "top"},
		})
	if err == nil {
		t.Error("expected error: A ⊔ B is not unique")
	}
}

func TestNewRejectsUnknownCoverElement(t *testing.T) {
	_, err := New("bad", []string{"A"}, [][2]string{{"A", "Z"}})
	if err == nil {
		t.Error("expected error for unknown element in cover")
	}
}

func TestNewRejectsDuplicateNames(t *testing.T) {
	_, err := New("dup", []string{"A", "A"}, nil)
	if err == nil {
		t.Error("expected error for duplicate names")
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	_, err := New("empty", nil, nil)
	if err == nil {
		t.Error("expected error for empty element list")
	}
}

func TestLevelsTopologicalOrder(t *testing.T) {
	for _, lat := range []Lattice{TwoPoint(), ThreePoint(), Diamond(), Powerset("a", "b", "c")} {
		levels := lat.Levels()
		if len(levels) != lat.Size() {
			t.Fatalf("%s: Levels returned %d, want %d", lat.Name(), len(levels), lat.Size())
		}
		pos := make(map[Label]int)
		for i, l := range levels {
			pos[l] = i
		}
		for _, a := range levels {
			for _, b := range levels {
				if a != b && lat.Leq(a, b) && pos[a] > pos[b] {
					t.Errorf("%s: %v ⊑ %v but order is reversed", lat.Name(), a, b)
				}
			}
		}
	}
}

func TestCrossLatticePanics(t *testing.T) {
	a := Linear("L", "H")
	b := Linear("L", "H")
	defer func() {
		if recover() == nil {
			t.Error("expected panic mixing labels across lattices")
		}
	}()
	a.Leq(a.Bot(), b.Bot())
}

func TestStockLatticesAreSingletons(t *testing.T) {
	// Labels from separate TwoPoint() calls interoperate: the stock
	// lattices are shared instances.
	a := TwoPoint()
	b := TwoPoint()
	if !a.Leq(a.Bot(), b.Top()) {
		t.Error("singleton labels should interoperate")
	}
	if ThreePoint() != ThreePoint() || Diamond() != Diamond() {
		t.Error("stock lattices should be shared")
	}
}

func TestUpwardClosure(t *testing.T) {
	lat := ThreePoint()
	L, _ := lat.Lookup("L")
	M, _ := lat.Lookup("M")
	H, _ := lat.Lookup("H")
	got := UpwardClosure(lat, []Label{M})
	if len(got) != 2 || !Contains(got, M) || !Contains(got, H) {
		t.Errorf("closure({M}) = %v, want {M,H}", got)
	}
	got = UpwardClosure(lat, []Label{L})
	if len(got) != 3 {
		t.Errorf("closure({L}) = %v, want all", got)
	}
	if got := UpwardClosure(lat, nil); got != nil {
		t.Errorf("closure(∅) = %v, want ∅", got)
	}
	_ = H
}

func TestUpwardClosureDiamond(t *testing.T) {
	lat := Diamond()
	A, _ := lat.Lookup("A")
	H, _ := lat.Lookup("H")
	got := UpwardClosure(lat, []Label{A})
	if len(got) != 2 || !Contains(got, A) || !Contains(got, H) {
		t.Errorf("closure({A}) = %v, want {A,H}", got)
	}
}

func TestExcludeObservable(t *testing.T) {
	lat := ThreePoint()
	L, _ := lat.Lookup("L")
	M, _ := lat.Lookup("M")
	H, _ := lat.Lookup("H")
	// Adversary at M observes L and M; only H gives new information.
	got := ExcludeObservable(lat, []Label{L, M, H}, M)
	if len(got) != 1 || got[0] != H {
		t.Errorf("ExcludeObservable = %v, want {H}", got)
	}
}

func TestJoinAll(t *testing.T) {
	lat := Diamond()
	A, _ := lat.Lookup("A")
	B, _ := lat.Lookup("B")
	if got := JoinAll(lat, []Label{A, B}); got != lat.Top() {
		t.Errorf("JoinAll = %v, want H", got)
	}
	if got := JoinAll(lat, nil); got != lat.Bot() {
		t.Errorf("JoinAll(∅) = %v, want bot", got)
	}
}

// Property-based lattice laws, checked over random label pairs in all
// the stock lattices.
func TestLatticeLawsQuick(t *testing.T) {
	lats := []Lattice{TwoPoint(), ThreePoint(), Diamond(), Powerset("a", "b", "c"), Linear("p0", "p1", "p2", "p3", "p4")}
	for _, lat := range lats {
		lat := lat
		levels := lat.Levels()
		pick := func(r *rand.Rand) Label { return levels[r.Intn(len(levels))] }
		cfg := &quick.Config{MaxCount: 200, Values: nil}

		// Commutativity and idempotence of join/meet; absorption;
		// consistency of Leq with join.
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b, c := pick(r), pick(r), pick(r)
			if lat.Join(a, b) != lat.Join(b, a) {
				return false
			}
			if lat.Meet(a, b) != lat.Meet(b, a) {
				return false
			}
			if lat.Join(a, a) != a || lat.Meet(a, a) != a {
				return false
			}
			// Absorption laws.
			if lat.Join(a, lat.Meet(a, b)) != a {
				return false
			}
			if lat.Meet(a, lat.Join(a, b)) != a {
				return false
			}
			// Associativity.
			if lat.Join(lat.Join(a, b), c) != lat.Join(a, lat.Join(b, c)) {
				return false
			}
			if lat.Meet(lat.Meet(a, b), c) != lat.Meet(a, lat.Meet(b, c)) {
				return false
			}
			// Leq ⇔ join/meet characterization.
			if lat.Leq(a, b) != (lat.Join(a, b) == b) {
				return false
			}
			if lat.Leq(a, b) != (lat.Meet(a, b) == a) {
				return false
			}
			// Bounds.
			if !lat.Leq(lat.Bot(), a) || !lat.Leq(a, lat.Top()) {
				return false
			}
			// Join is an upper bound.
			j := lat.Join(a, b)
			if !lat.Leq(a, j) || !lat.Leq(b, j) {
				return false
			}
			m := lat.Meet(a, b)
			if !lat.Leq(m, a) || !lat.Leq(m, b) {
				return false
			}
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: lattice law violated: %v", lat.Name(), err)
		}
	}
}

func TestLeqTransitivityQuick(t *testing.T) {
	lat := Powerset("a", "b", "c", "d")
	levels := lat.Levels()
	f := func(i, j, k uint8) bool {
		a := levels[int(i)%len(levels)]
		b := levels[int(j)%len(levels)]
		c := levels[int(k)%len(levels)]
		if lat.Leq(a, b) && lat.Leq(b, c) && !lat.Leq(a, c) {
			return false
		}
		// Antisymmetry.
		if a != b && lat.Leq(a, b) && lat.Leq(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestProductLattice(t *testing.T) {
	p := Product(TwoPoint(), TwoPoint())
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
	ll, ok := p.Lookup("L*L")
	if !ok {
		t.Fatal("missing L*L")
	}
	if p.Bot() != ll {
		t.Error("bot should be L*L")
	}
	hh, _ := p.Lookup("H*H")
	if p.Top() != hh {
		t.Error("top should be H*H")
	}
	lh, _ := p.Lookup("L*H")
	hl, _ := p.Lookup("H*L")
	if p.Leq(lh, hl) || p.Leq(hl, lh) {
		t.Error("L*H and H*L must be incomparable")
	}
	if p.Join(lh, hl) != hh || p.Meet(lh, hl) != ll {
		t.Error("componentwise bounds")
	}
	// Product with a 3-chain: 6 elements, still a lattice.
	p2 := Product(TwoPoint(), ThreePoint())
	if p2.Size() != 6 {
		t.Errorf("2×3 product size = %d", p2.Size())
	}
}

func TestProductTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Product(Powerset("a", "b", "c"), Powerset("x", "y", "z", "w"))
}

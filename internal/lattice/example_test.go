package lattice_test

import (
	"fmt"

	"repro/internal/lattice"
)

// The two-point lattice L ⊑ H is the paper's default setting.
func ExampleTwoPoint() {
	lat := lattice.TwoPoint()
	L, H := lat.Bot(), lat.Top()
	fmt.Println(lat.Leq(L, H), lat.Leq(H, L))
	fmt.Println(lat.Join(L, H), lat.Meet(L, H))
	// Output:
	// true false
	// H L
}

// Upward closures drive the multilevel leakage bound (§6.3): leakage
// from a set of levels must account for everything above them.
func ExampleUpwardClosure() {
	lat := lattice.ThreePoint()
	M, _ := lat.Lookup("M")
	for _, l := range lattice.UpwardClosure(lat, []lattice.Label{M}) {
		fmt.Println(l)
	}
	// Output:
	// M
	// H
}

// Product lattices model orthogonal concerns componentwise.
func ExampleProduct() {
	p := lattice.Product(lattice.TwoPoint(), lattice.TwoPoint())
	lh, _ := p.Lookup("L*H")
	hl, _ := p.Lookup("H*L")
	fmt.Println(p.Leq(lh, hl), p.Join(lh, hl))
	// Output:
	// false H*H
}

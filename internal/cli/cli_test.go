package cli

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testdataPath resolves a file in the repository's testdata directory.
func testdataPath(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "testdata", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("missing testdata file: %v", err)
	}
	return p
}

// run invokes the CLI and returns (exit code, stdout, stderr).
func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := Run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestNoArgs(t *testing.T) {
	code, _, errOut := run()
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Error("usage expected on stderr")
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, errOut := run("frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestHelp(t *testing.T) {
	code, out, _ := run("help")
	if code != 0 || !strings.Contains(out, "verify") {
		t.Errorf("help: exit=%d out=%q", code, out)
	}
}

func TestCheckMitigated(t *testing.T) {
	code, out, errOut := run("check", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "OK (end timing label L)") {
		t.Errorf("missing OK line:\n%s", out)
	}
	if !strings.Contains(out, "mitigate@0") || !strings.Contains(out, "pc=L, level=H") {
		t.Errorf("missing mitigate summary:\n%s", out)
	}
	if !strings.Contains(out, "[H,H]") {
		t.Errorf("resolved labels not printed:\n%s", out)
	}
}

func TestCheckInsecure(t *testing.T) {
	code, _, errOut := run("check", testdataPath(t, "insecure.tc"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "leaks") {
		t.Errorf("stderr = %q", errOut)
	}
	// Diagnostics come with a source excerpt and caret.
	if !strings.Contains(errOut, "done := 1;") || !strings.Contains(errOut, "^") {
		t.Errorf("source excerpt missing:\n%s", errOut)
	}
	if !strings.Contains(errOut, "insecure.tc:7:1:") {
		t.Errorf("file:line:col header missing:\n%s", errOut)
	}
}

func TestCheckThreeLevel(t *testing.T) {
	code, out, errOut := run("check", "-lattice", "three", testdataPath(t, "threelevel.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "level=M") {
		t.Errorf("expected M-level mitigate:\n%s", out)
	}
	// The same program under the two-point lattice fails (unknown M).
	code, _, errOut = run("check", testdataPath(t, "threelevel.tc"))
	if code != 1 || !strings.Contains(errOut, "unknown security label") {
		t.Errorf("two-point check: exit=%d stderr=%q", code, errOut)
	}
}

func TestCheckInference(t *testing.T) {
	code, out, errOut := run("check", testdataPath(t, "inferme.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	// The if under mitigate has a high guard: branches inferred [H,H].
	if !strings.Contains(out, "acc := acc + h [H,H];") {
		t.Errorf("inference output missing:\n%s", out)
	}
}

func TestFmtPlainAndResolved(t *testing.T) {
	code, plain, _ := run("fmt", testdataPath(t, "inferme.tc"))
	if code != 0 {
		t.Fatal("fmt failed")
	}
	if strings.Contains(plain, "[H,H]") {
		t.Errorf("plain fmt should not invent labels:\n%s", plain)
	}
	code, resolved, _ := run("fmt", "-resolved", testdataPath(t, "inferme.tc"))
	if code != 0 {
		t.Fatal("fmt -resolved failed")
	}
	if !strings.Contains(resolved, "[H,H]") {
		t.Errorf("resolved fmt should print inferred labels:\n%s", resolved)
	}
}

func TestRunMitigated(t *testing.T) {
	code, out, errOut := run("run", "-set", "h=25", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"terminated", "partitioned hardware", "(done, 1,", "mitigate@0"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDeterministicAcrossSecrets(t *testing.T) {
	// The adversary-visible parts — events and padded mitigation
	// durations — must be secret-independent. (The printed raw body
	// time is runtime-internal diagnostics and legitimately varies.)
	observable := func(out string) string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "terminated") || strings.Contains(line, "(done,") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	_, out1, _ := run("run", "-set", "h=3", testdataPath(t, "mitigated.tc"))
	_, out2, _ := run("run", "-set", "h=61", testdataPath(t, "mitigated.tc"))
	if observable(out1) != observable(out2) {
		t.Errorf("mitigated observables should be secret-independent:\n%s\nvs\n%s", out1, out2)
	}
}

func TestRunUnmitigatedDiffers(t *testing.T) {
	_, out1, _ := run("run", "-mitigate=false", "-set", "h=3", testdataPath(t, "mitigated.tc"))
	_, out2, _ := run("run", "-mitigate=false", "-set", "h=61", testdataPath(t, "mitigated.tc"))
	if out1 == out2 {
		t.Error("unmitigated runs should differ with the secret")
	}
}

func TestRunBadVariable(t *testing.T) {
	code, _, errOut := run("run", "-set", "nope=1", testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "no such scalar") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestRunBadSetSyntax(t *testing.T) {
	code, _, _ := run("run", "-set", "h", testdataPath(t, "mitigated.tc"))
	if code == 0 {
		t.Error("expected failure for malformed -set")
	}
	code, _, _ = run("run", "-set", "h=xyz", testdataPath(t, "mitigated.tc"))
	if code == 0 {
		t.Error("expected failure for non-numeric -set")
	}
}

func TestRunFlatHardware(t *testing.T) {
	code, out, _ := run("run", "-hw", "flat", testdataPath(t, "mitigated.tc"))
	if code != 0 || !strings.Contains(out, "flat hardware") {
		t.Errorf("exit=%d out=%q", code, out)
	}
}

func TestBadHardwareAndLattice(t *testing.T) {
	code, _, errOut := run("run", "-hw", "quantum", testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "unknown hardware") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
	code, _, errOut = run("check", "-lattice", "moebius", testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "unknown lattice") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestMissingFile(t *testing.T) {
	code, _, errOut := run("check", "/no/such/file.tc")
	if code != 1 || errOut == "" {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
	code, _, _ = run("check")
	if code != 1 {
		t.Errorf("exit=%d for missing operand", code)
	}
}

func TestTrace(t *testing.T) {
	code, out, errOut := run("trace", "-set", "h=20", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"mitigate@0", "sleep", "assign done",
		"mitigate@0 completed", "total: 3 steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Step budget exhaustion is an error.
	code, _, errOut = run("trace", "-max-steps", "1", testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "step budget") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestExplain(t *testing.T) {
	code, out, errOut := run("explain", "-lattice", "three", testdataPath(t, "threelevel.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"timing start → end", "L → M", "L → H", "mitigate@0", "mitigate@1"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Mitigates cut the timing label: their own rows end at L.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mitigate@") && !strings.Contains(line, "L → L") {
			t.Errorf("mitigate row should end low: %s", line)
		}
	}
	code, _, _ = run("explain", testdataPath(t, "insecure.tc"))
	if code != 1 {
		t.Error("explain should fail on ill-typed programs")
	}
}

func TestTraceFlushHardware(t *testing.T) {
	code, out, _ := run("trace", "-hw", "flush", testdataPath(t, "mitigated.tc"))
	if code != 0 || !strings.Contains(out, "total:") {
		t.Errorf("flush trace: exit=%d\n%s", code, out)
	}
}

func TestRunWithOptimizer(t *testing.T) {
	src := "var x : L;\nif (3 > 2) { x := 4 * 4; } else { x := 0; }\n"
	tmp := filepath.Join(t.TempDir(), "opt.tc")
	if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := run("run", "-opt", tmp)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "optimizer: 2 expressions folded, 1 branches eliminated") {
		t.Errorf("optimizer summary missing:\n%s", out)
	}
	if !strings.Contains(out, "(x, 16,") {
		t.Errorf("result missing:\n%s", out)
	}
	if !strings.Contains(out, "terminated in 1 steps") {
		t.Errorf("dead branch should be gone:\n%s", out)
	}
}

func TestCompileDisassembles(t *testing.T) {
	code, out, errOut := run("compile", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"SETLBL", "MITENTER", "MITEXIT", "HALT"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestCompileExec(t *testing.T) {
	code, out, errOut := run("compile", "-exec", "-set", "h=9", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "VM:") || !strings.Contains(out, "(done, 1,") {
		t.Errorf("VM output missing:\n%s", out)
	}
	// VM mitigated timing is also secret-independent.
	_, out2, _ := run("compile", "-exec", "-set", "h=55", testdataPath(t, "mitigated.tc"))
	if out != out2 {
		t.Error("mitigated VM output should be secret-independent")
	}
	// Bad inputs.
	if code, _, _ := run("compile", "-exec", "-set", "nope=1", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("bad -set should fail")
	}
}

func TestLeakSubcommand(t *testing.T) {
	code, out, errOut := run("leak", "-secret", "h=0:100:10", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"secrets tried:", "distinct observations:", "Theorem 2 holds"} {
		if !strings.Contains(out, want) {
			t.Errorf("leak output missing %q:\n%s", want, out)
		}
	}
	// Unmitigated measurement leaks more.
	_, outU, _ := run("leak", "-mitigate=false", "-secret", "h=0:100:10", testdataPath(t, "mitigated.tc"))
	if outU == out {
		t.Error("mitigated and unmitigated measurements should differ")
	}
	// Error paths.
	if code, _, _ := run("leak", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("missing -secret should fail")
	}
	if code, _, _ := run("leak", "-secret", "zzz=0:1:1", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("unknown secret variable should fail")
	}
	if code, _, _ := run("leak", "-secret", "h=0:1", testdataPath(t, "mitigated.tc")); code == 0 {
		t.Error("malformed range should fail flag parsing")
	}
	if code, _, _ := run("leak", "-secret", "h=5:1:1", testdataPath(t, "mitigated.tc")); code == 0 {
		t.Error("inverted range should fail")
	}
	if code, _, _ := run("leak", "-max-combos", "3", "-secret", "h=0:100:10",
		testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("combo cap should fail")
	}
	// Public variable warning.
	_, _, warnErr := run("leak", "-secret", "done=0:2:1", testdataPath(t, "mitigated.tc"))
	if !strings.Contains(warnErr, "warning") {
		t.Errorf("public-secret warning missing: %q", warnErr)
	}
}

func TestCompileToFileAndExec(t *testing.T) {
	out := filepath.Join(t.TempDir(), "prog.tcbc")
	code, stdout, errOut := run("compile", "-o", out, testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(stdout, "wrote "+out) {
		t.Errorf("write summary missing:\n%s", stdout)
	}
	code, stdout, errOut = run("exec", "-set", "h=9", out)
	if code != 0 {
		t.Fatalf("exec exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(stdout, "VM:") || !strings.Contains(stdout, "(done, 1,") {
		t.Errorf("exec output:\n%s", stdout)
	}
	// Wrong lattice is rejected.
	code, _, errOut = run("exec", "-lattice", "three", out)
	if code != 1 || !strings.Contains(errOut, "lattice") {
		t.Errorf("lattice mismatch: exit=%d stderr=%q", code, errOut)
	}
	// Missing / garbage files error out cleanly.
	if code, _, _ := run("exec", "/no/such.tcbc"); code != 1 {
		t.Error("missing file should fail")
	}
	garbage := filepath.Join(t.TempDir(), "junk.tcbc")
	os.WriteFile(garbage, []byte("not bytecode"), 0o644)
	if code, _, _ := run("exec", garbage); code != 1 {
		t.Error("garbage file should fail")
	}
}

func TestVerifyPartitioned(t *testing.T) {
	code, out, errOut := run("verify", "-trials", "4", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q out=%s", code, errOut, out)
	}
	if !strings.Contains(out, "all contract checks passed") {
		t.Errorf("verify output:\n%s", out)
	}
	if strings.Count(out, "ok   ") != 9 {
		t.Errorf("expected 9 passing checks:\n%s", out)
	}
}

func TestVerifyNoparFails(t *testing.T) {
	code, out, errOut := run("verify", "-trials", "4", "-hw", "nopar", testdataPath(t, "mitigated.tc"))
	if code != 1 {
		t.Fatalf("nopar should fail the contract; exit=%d", code)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(errOut, "contract checks failed") {
		t.Errorf("out=%s stderr=%q", out, errOut)
	}
}

func TestFmtRoundTripsThroughCheck(t *testing.T) {
	// fmt -resolved output must itself type-check.
	_, resolved, _ := run("fmt", "-resolved", testdataPath(t, "inferme.tc"))
	tmp := filepath.Join(t.TempDir(), "resolved.tc")
	if err := os.WriteFile(tmp, []byte(resolved), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := run("check", tmp)
	if code != 0 {
		t.Errorf("resolved output does not re-check: %s", errOut)
	}
}

func TestServeSubcommand(t *testing.T) {
	code, out, errOut := run("serve",
		"-workers", "2", "-queue", "1", "-requests", "8",
		"-vary", "h=0:70:10",
		testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "served 8 requests across 2 shards") {
		t.Errorf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "shard 0:") || !strings.Contains(out, "shard 1:") {
		t.Errorf("missing per-shard lines:\n%s", out)
	}
	// The instrumentation snapshot must surface the acceptance metrics.
	for _, want := range []string{"mitigations", "mispredicted", "padding", "cache hit rates"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestServeOptLevels(t *testing.T) {
	// The vm engine's optimization pipeline must be invisible in every
	// adversary-observable output: a single-worker serve run (fully
	// deterministic request schedule) prints byte-identical summaries
	// and instrumentation snapshots at -opt 0 and -opt 2.
	serve := func(opt string) string {
		code, out, errOut := run("serve",
			"-workers", "1", "-requests", "8", "-engine", "vm", "-opt", opt,
			"-vary", "h=0:70:10",
			testdataPath(t, "mitigated.tc"))
		if code != 0 {
			t.Fatalf("-opt %s: exit=%d stderr=%q", opt, code, errOut)
		}
		if !strings.Contains(out, "served 8 requests across 1 shards") {
			t.Errorf("-opt %s: missing summary line:\n%s", opt, out)
		}
		return out
	}
	unopt, opt := serve("0"), serve("2")
	if unopt != opt {
		t.Errorf("serve output differs across opt levels:\n--- opt 0 ---\n%s--- opt 2 ---\n%s", unopt, opt)
	}
	// Out-of-range levels clamp to the supported pipeline rather than
	// erroring: -opt 9 behaves as the full pipeline.
	if clamped := serve("9"); clamped != opt {
		t.Errorf("-opt 9 should clamp to the full pipeline:\n%s", clamped)
	}
}

func TestServePprof(t *testing.T) {
	// A serve run with -pprof announces the profiling endpoint on
	// stderr and still completes normally.
	code, out, errOut := run("serve",
		"-workers", "1", "-requests", "2", "-pprof", "127.0.0.1:0",
		testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "/debug/pprof/") {
		t.Errorf("missing pprof announcement on stderr: %q", errOut)
	}
	if !strings.Contains(out, "served 2 requests") {
		t.Errorf("missing summary line:\n%s", out)
	}
}

func TestServePprofBadAddress(t *testing.T) {
	code, _, errOut := run("serve", "-pprof", "500.1.2.3:99999",
		testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "-pprof") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestServeBadVary(t *testing.T) {
	code, _, errOut := run("serve", "-vary", "nosuch=0:1:1", testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "no such variable") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestServeBadHardware(t *testing.T) {
	code, _, errOut := run("serve", "-hw", "bogus", testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "unknown hardware") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestServeFaultInjection(t *testing.T) {
	// A finite engine-error budget with enough retries to outlast it
	// (worst case all 4 faults land on one request): every request
	// eventually succeeds, and the fault/retry accounting surfaces in
	// the output.
	code, out, errOut := run("serve",
		"-workers", "2", "-requests", "8", "-engine", "vm",
		"-retries", "4", "-fault", "engine-error=1:4", "-fault-seed", "7",
		"-vary", "h=0:70:10",
		testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "served 8 requests across 2 shards") {
		t.Errorf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "fault: engine-error=4/") {
		t.Errorf("missing injector accounting:\n%s", out)
	}
	if !strings.Contains(out, "fault tolerance:") {
		t.Errorf("missing fault tolerance metrics:\n%s", out)
	}
}

func TestServeBadFaultFlag(t *testing.T) {
	for _, bad := range []string{"nonsense=0.5", "engine-error=2", "engine-error"} {
		code, _, errOut := run("serve", "-fault", bad, testdataPath(t, "mitigated.tc"))
		if code == 0 {
			t.Errorf("-fault %s accepted; stderr=%q", bad, errOut)
		}
	}
}

// serveListen drives a `serve -listen` run in-process: the hook fires
// once the listener is bound, probes it, and stops the server, which
// then drains and prints its final snapshot.
func serveListen(t *testing.T, hook func(addr string), extra ...string) (int, string, string) {
	t.Helper()
	serveListenHook = func(addr string, stop func()) {
		defer stop()
		hook(addr)
	}
	defer func() { serveListenHook = nil }()
	args := append([]string{"serve", "-listen", "127.0.0.1:0", "-workers", "2"}, extra...)
	args = append(args, testdataPath(t, "mitigated.tc"))
	return run(args...)
}

// httpGet fetches a URL and returns (status, body).
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestServeListen(t *testing.T) {
	// -listen alone: the API serves, pprof is NOT mounted.
	var runStatus, pprofStatus int
	var runBody string
	code, out, errOut := serveListen(t, func(addr string) {
		resp, err := http.Post("http://"+addr+"/v1/run", "application/json",
			strings.NewReader(`{"inputs":{"h":3}}`))
		if err != nil {
			t.Fatalf("POST /v1/run: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		runStatus, runBody = resp.StatusCode, string(body)
		pprofStatus, _ = httpGet(t, "http://"+addr+"/debug/pprof/")
	})
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if runStatus != 200 || !strings.Contains(runBody, `"time"`) {
		t.Errorf("/v1/run: status=%d body=%q", runStatus, runBody)
	}
	if pprofStatus != 404 {
		t.Errorf("pprof reachable without -pprof: status=%d", pprofStatus)
	}
	if !strings.Contains(out, "listening on http://") {
		t.Errorf("missing listen announcement:\n%s", out)
	}
	if !strings.Contains(out, "draining") || !strings.Contains(out, "served 1 requests") {
		t.Errorf("missing drain summary:\n%s", out)
	}
}

func TestServeListenSharedPprof(t *testing.T) {
	// -pprof equal to -listen: profiles share the API listener.
	var pprofStatus, healthStatus int
	code, _, errOut := serveListen(t, func(addr string) {
		pprofStatus, _ = httpGet(t, "http://"+addr+"/debug/pprof/")
		healthStatus, _ = httpGet(t, "http://"+addr+"/v1/healthz")
	}, "-pprof", "127.0.0.1:0")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if pprofStatus != 200 {
		t.Errorf("shared pprof: status=%d, want 200", pprofStatus)
	}
	if healthStatus != 200 {
		t.Errorf("healthz on shared mux: status=%d", healthStatus)
	}
	if !strings.Contains(errOut, "/debug/pprof/") {
		t.Errorf("missing pprof announcement on stderr: %q", errOut)
	}
}

func TestServeListenSeparatePprof(t *testing.T) {
	// -pprof on a different address: a standalone pprof listener comes
	// up, and the API listener does NOT serve profiles.
	var apiPprofStatus, sepPprofStatus, runStatus int
	var errBuf *bytes.Buffer
	serveListenHook = func(addr string, stop func()) {
		defer stop()
		apiPprofStatus, _ = httpGet(t, "http://"+addr+"/debug/pprof/")
		st, _ := httpGet(t, "http://"+addr+"/v1/healthz")
		runStatus = st
		// The standalone listener announced itself on stderr before the
		// pool came up; pull its address from there.
		line := errBuf.String()
		i := strings.Index(line, "http://")
		j := strings.Index(line[i:], "/debug")
		if i < 0 || j < 0 {
			t.Fatalf("no pprof announcement in %q", line)
		}
		sepPprofStatus, _ = httpGet(t, line[i:i+j]+"/debug/pprof/")
	}
	defer func() { serveListenHook = nil }()
	var out bytes.Buffer
	errBuf = &bytes.Buffer{}
	code := Run([]string{"serve", "-listen", "127.0.0.1:0", "-pprof", "localhost:0",
		"-workers", "1", testdataPath(t, "mitigated.tc")}, &out, errBuf)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errBuf.String())
	}
	if apiPprofStatus != 404 {
		t.Errorf("API listener serves pprof with split addresses: status=%d", apiPprofStatus)
	}
	if sepPprofStatus != 200 {
		t.Errorf("standalone pprof: status=%d, want 200", sepPprofStatus)
	}
	if runStatus != 200 {
		t.Errorf("healthz: status=%d", runStatus)
	}
}

func TestServeListenBadAddress(t *testing.T) {
	code, _, errOut := run("serve", "-listen", "500.1.2.3:99999",
		testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "-listen") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestServeDeadlineAndShedFlagsAccepted(t *testing.T) {
	code, out, errOut := run("serve",
		"-workers", "2", "-requests", "8",
		"-timeout", "1s", "-shed", "-breaker-threshold", "3",
		"-vary", "h=0:70:10",
		testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "served 8 requests") {
		t.Errorf("missing summary line:\n%s", out)
	}
}

func TestServeSessionFlags(t *testing.T) {
	// -session-budget with -listen: tenant requests carry session
	// accounting, and the budget is enforced with 429s while the
	// service keeps serving other tenants.
	var firstBody, deniedBody, aliceBody, metricsBody string
	var deniedStatus, aliceStatus int
	code, out, errOut := serveListen(t, func(addr string) {
		post := func(body string) (int, string) {
			resp, err := http.Post("http://"+addr+"/v1/run", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Fatalf("POST /v1/run: %v", err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			return resp.StatusCode, string(raw)
		}
		var st int
		st, firstBody = post(`{"tenant":"bob","inputs":{"h":63}}`)
		if st != 200 {
			t.Fatalf("first tenant request: status=%d body=%q", st, firstBody)
		}
		for i := 0; i < 50; i++ {
			deniedStatus, deniedBody = post(`{"tenant":"bob","inputs":{"h":63}}`)
			if deniedStatus != 200 {
				break
			}
		}
		aliceStatus, aliceBody = post(`{"tenant":"alice","inputs":{"h":1}}`)
		_, metricsBody = httpGet(t, "http://"+addr+"/v1/metrics")
	}, "-session-budget", "25", "-session-ttl", "1m", "-session-max", "100")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "tenant sessions: budget 25.0 bits per tenant, ttl 1m0s") {
		t.Errorf("missing session announcement:\n%s", out)
	}
	if !strings.Contains(firstBody, `"tenant":"bob"`) || !strings.Contains(firstBody, `"epoch":1`) {
		t.Errorf("first response missing session fields: %q", firstBody)
	}
	if deniedStatus != 429 || !strings.Contains(deniedBody, "leakage_budget_exceeded") {
		t.Errorf("budget denial: status=%d body=%q", deniedStatus, deniedBody)
	}
	if !strings.Contains(deniedBody, `"retry_after_ms":60000`) {
		t.Errorf("denial missing Retry-After from TTL: %q", deniedBody)
	}
	if aliceStatus != 200 || !strings.Contains(aliceBody, `"tenant":"alice"`) {
		t.Errorf("other tenant must be admitted: status=%d body=%q", aliceStatus, aliceBody)
	}
	if !strings.Contains(metricsBody, "timingc_sessions_active") ||
		!strings.Contains(metricsBody, "timingc_budget_denials_total") {
		t.Errorf("metrics missing session series:\n%s", metricsBody)
	}
}

func TestServeSessionFlagsRequireListen(t *testing.T) {
	code, _, errOut := run("serve", "-session-budget", "10",
		testdataPath(t, "mitigated.tc"))
	if code != 1 || !strings.Contains(errOut, "require -listen") {
		t.Errorf("exit=%d stderr=%q", code, errOut)
	}
}

func TestCertifySubcommandFile(t *testing.T) {
	// File mode: the mitigated testdata program certifies, and the
	// unmitigated baseline is reported as leaking in the same run.
	code, out, errOut := run("certify", "-var", "h", "-n", "8", testdataPath(t, "mitigated.tc"))
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q stdout=%q", code, errOut, out)
	}
	for _, want := range []string{
		"unmitigated", "LEAKS",
		"mitigated", "CERTIFIED",
		"exhaustive", "binary-search", "mi-estimator",
		"reported §7 bound",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("certify output missing %q:\n%s", want, out)
		}
	}

	// Determinism: equal seeds replay the exact report.
	_, again, _ := run("certify", "-var", "h", "-n", "8", testdataPath(t, "mitigated.tc"))
	if again != out {
		t.Error("equal seeds must produce identical reports")
	}

	// Error paths: missing -var, bad -n, unknown variable, bad engine.
	if code, _, _ := run("certify", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("missing -var should fail")
	}
	if code, _, _ := run("certify", "-var", "h", "-n", "1", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("n < 2 should fail")
	}
	if code, _, _ := run("certify", "-var", "zzz", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("unknown secret variable should fail")
	}
	if code, _, _ := run("certify", "-var", "h", "-engine", "warp", testdataPath(t, "mitigated.tc")); code != 1 {
		t.Error("unknown engine should fail")
	}
}

func TestCertifySubcommandSweep(t *testing.T) {
	code, out, errOut := run("certify")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{
		"configuration", "verdict",
		"bind=engine", "bind=pool", "bind=http",
		"certification passed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

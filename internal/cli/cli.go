// Package cli implements the timingc command: the compiler driver and
// interpreter for the timing-channel language. It type-checks programs
// (inferring omitted timing labels), pretty-prints them with resolved
// labels, runs them on a choice of simulated hardware, and verifies
// hardware models against the paper's software–hardware contract.
//
// The entry point is Run, which takes argv-style arguments and output
// writers so the whole command surface is testable in-process;
// cmd/timingc is a thin wrapper.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	httppprof "net/http/pprof" // profiling handlers for serve -pprof (also registers on DefaultServeMux)
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bytecode"
	"repro/internal/certify"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/lang/ast"
	"repro/internal/lang/diag"
	"repro/internal/lang/parser"
	"repro/internal/lang/printer"
	"repro/internal/lattice"
	"repro/internal/leakage"
	"repro/internal/machine/hw"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/props"
	"repro/internal/sem/full"
	"repro/internal/sem/mem"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/transport/wire"
	"repro/internal/transport/wire/fastjson"
	"repro/internal/types"
)

// Run executes the timingc command line and returns a process exit
// code: 0 on success, 1 on command failure, 2 on usage errors.
func Run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(rest, stdout, stderr)
	case "fmt":
		err = runFmt(rest, stdout, stderr)
	case "run":
		err = runRun(rest, stdout, stderr)
	case "trace":
		err = runTrace(rest, stdout, stderr)
	case "explain":
		err = runExplain(rest, stdout, stderr)
	case "compile":
		err = runCompile(rest, stdout, stderr)
	case "exec":
		err = runExec(rest, stdout, stderr)
	case "leak":
		err = runLeak(rest, stdout, stderr)
	case "serve":
		err = runServe(rest, stdout, stderr)
	case "verify":
		err = runVerify(rest, stdout, stderr)
	case "certify":
		err = runCertify(rest, stdout, stderr)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "timingc: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintf(stderr, "timingc: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: timingc <command> [flags] file

commands:
  check    type-check a program, reporting inferred timing labels
  fmt      pretty-print a program
  run      execute a program on simulated hardware
  trace    execute step by step, printing each command's cost
  explain  show the typing judgment (pc, timing start/end) per command
  compile  compile to bytecode (disassemble, -exec to run, -o to save)
  exec     run a saved bytecode file on the VM
  leak     measure leakage over secret ranges (Theorem 2 / §7 bound)
  serve    run a program as a sharded mitigation service over a request sequence
           (-listen ADDR serves the HTTP/JSON API instead, including NDJSON
           pipelining on /v1/stream; -codec picks the wire codec, fast or std;
           -pprof ADDR exposes net/http/pprof, sharing -listen's listener when
           the addresses match)
  verify   check a hardware model against the software-hardware contract
  certify  mount the black-box attack battery and check measured leakage
           against the reported §7 bound (no file: run the built-in sweep;
           with a file: certify that program, -var naming the secret)
`)
}

func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func latticeFlag(fs *flag.FlagSet) *string {
	return fs.String("lattice", "two", "security lattice: two, three, diamond")
}

// PickLattice resolves a lattice by its CLI name.
func PickLattice(name string) (lattice.Lattice, error) {
	switch name {
	case "two":
		return lattice.TwoPoint(), nil
	case "three":
		return lattice.ThreePoint(), nil
	case "diamond":
		return lattice.Diamond(), nil
	}
	return nil, fmt.Errorf("unknown lattice %q (want two, three, or diamond)", name)
}

// PickEnv resolves a hardware model by its CLI name through the hw
// registry; the empty name means partitioned (the paper's design).
func PickEnv(name string, lat lattice.Lattice) (hw.Env, error) {
	return hw.NewEnv(name, lat, hw.Table1Config())
}

func load(fs *flag.FlagSet, latName string) (*ast.Program, *types.Result, lattice.Lattice, error) {
	if fs.NArg() != 1 {
		return nil, nil, nil, fmt.Errorf("expected exactly one source file")
	}
	file := fs.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, nil, nil, err
	}
	lat, err := PickLattice(latName)
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, nil, nil, &diagError{diag.Format(file, string(src), err)}
	}
	res, err := types.Check(prog, lat)
	if err != nil {
		return nil, nil, nil, &diagError{diag.Format(file, string(src), err)}
	}
	return prog, res, lat, nil
}

// diagError carries pre-rendered multi-line diagnostics.
type diagError struct{ rendered string }

func (e *diagError) Error() string { return strings.TrimSuffix(e.rendered, "\n") }

func runCheck(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("check", stderr)
	latName := latticeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, res, _, err := load(fs, *latName)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: OK (end timing label %s)\n", fs.Arg(0), res.End)
	for _, m := range res.Mitigates {
		if m.Level.Valid() {
			fmt.Fprintf(stdout, "  mitigate@%d at %s: pc=%s, level=%s\n", m.ID, m.Pos, m.PC, m.Level)
		}
	}
	fmt.Fprint(stdout, printer.Print(prog, printer.Options{ShowResolved: true}))
	return nil
}

func runFmt(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("fmt", stderr)
	latName := latticeFlag(fs)
	resolved := fs.Bool("resolved", false, "print inferred labels")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resolved {
		prog, _, _, err := load(fs, *latName)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, printer.Print(prog, printer.Options{ShowResolved: true}))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, printer.Print(prog, printer.Options{}))
	return nil
}

// setFlags collects repeated -set x=v flags.
type setFlags map[string]int64

func (s setFlags) String() string { return fmt.Sprintf("%v", map[string]int64(s)) }

// Set implements flag.Value.
func (s setFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want -set name=value, got %q", v)
	}
	n, err := strconv.ParseInt(val, 0, 64)
	if err != nil {
		return err
	}
	s[name] = n
	return nil
}

func runRun(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("run", stderr)
	latName := latticeFlag(fs)
	hwName := fs.String("hw", "partitioned", "hardware model: flat, nopar, nofill, partitioned")
	mitigate := fs.Bool("mitigate", true, "enable predictive mitigation")
	optimize := fs.Bool("opt", false, "apply timing-aware optimizations before running")
	maxSteps := fs.Int("max-steps", 10_000_000, "step budget")
	sets := setFlags{}
	fs.Var(sets, "set", "set an input variable, e.g. -set h=42 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	if *optimize {
		folds, branches := opt.Program(prog)
		fmt.Fprintf(stdout, "optimizer: %d expressions folded, %d branches eliminated\n",
			folds, branches)
	}
	env, err := PickEnv(*hwName, lat)
	if err != nil {
		return err
	}
	m, err := full.New(prog, res, env, full.Options{DisableMitigation: !*mitigate})
	if err != nil {
		return err
	}
	for name, v := range sets {
		if !m.Memory().HasScalar(name) {
			return fmt.Errorf("-set %s: no such scalar variable", name)
		}
		m.Memory().Set(name, v)
	}
	if err := m.Run(*maxSteps); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "terminated in %d steps, %d cycles on %s hardware\n",
		m.Steps(), m.Clock(), env.Name())
	if tr := m.Trace(); len(tr) > 0 {
		fmt.Fprintln(stdout, "events:")
		for _, e := range tr {
			fmt.Fprintf(stdout, "  %s\n", e)
		}
	}
	if mt := m.Mitigations(); len(mt) > 0 {
		fmt.Fprintln(stdout, "mitigations:")
		for _, r := range mt {
			miss := ""
			if r.Mispredicted {
				miss = " (mispredicted)"
			}
			fmt.Fprintf(stdout, "  mitigate@%d: %d cycles (body %d)%s\n", r.ID, r.Duration, r.Elapsed, miss)
		}
	}
	return nil
}

func runCompile(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("compile", stderr)
	latName := latticeFlag(fs)
	exec := fs.Bool("exec", false, "execute the bytecode on the VM after compiling")
	outFile := fs.String("o", "", "write encoded bytecode to this file instead of disassembling")
	hwName := fs.String("hw", "partitioned", "hardware model for -exec")
	sets := setFlags{}
	fs.Var(sets, "set", "set an input variable for -exec (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	bc, err := bytecode.Compile(prog, res)
	if err != nil {
		return err
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		if err := bc.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d instructions)\n", *outFile, len(bc.Code))
	} else {
		fmt.Fprint(stdout, bc.Disassemble())
	}
	if !*exec {
		return nil
	}
	env, err := PickEnv(*hwName, lat)
	if err != nil {
		return err
	}
	vm := bytecode.NewVM(bc, env, bytecode.VMOptions{})
	for name, v := range sets {
		if err := vm.SetScalar(name, v); err != nil {
			return err
		}
	}
	if err := vm.Run(50_000_000); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "VM: %d instructions, %d cycles on %s hardware\n",
		vm.Steps(), vm.Clock(), env.Name())
	for _, e := range vm.Trace() {
		fmt.Fprintf(stdout, "  %s\n", e)
	}
	return nil
}

func runExec(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("exec", stderr)
	latName := latticeFlag(fs)
	hwName := fs.String("hw", "partitioned", "hardware model")
	sets := setFlags{}
	fs.Var(sets, "set", "set an input variable (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one bytecode file")
	}
	lat, err := PickLattice(*latName)
	if err != nil {
		return err
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	bc, err := bytecode.Decode(f, lat)
	if err != nil {
		return err
	}
	env, err := PickEnv(*hwName, lat)
	if err != nil {
		return err
	}
	vm := bytecode.NewVM(bc, env, bytecode.VMOptions{})
	for name, v := range sets {
		if err := vm.SetScalar(name, v); err != nil {
			return err
		}
	}
	if err := vm.Run(50_000_000); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "VM: %d instructions, %d cycles on %s hardware\n",
		vm.Steps(), vm.Clock(), env.Name())
	for _, e := range vm.Trace() {
		fmt.Fprintf(stdout, "  %s\n", e)
	}
	return nil
}

func runExplain(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("explain", stderr)
	latName := latticeFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one source file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	lat, err := PickLattice(*latName)
	if err != nil {
		return err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return err
	}
	_, typings, err := types.CheckDetailed(prog, lat, types.Options{CoupleReadWrite: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-8s %-14s %-4s %-8s %s\n", "pos", "command", "pc", "[er,ew]", "timing start → end")
	ast.WalkCmds(prog.Body, func(c ast.Cmd) bool {
		lc, ok := c.(ast.Labeled)
		if !ok {
			return true // Seq carries no judgment of its own
		}
		ty, ok := typings[c.ID()]
		if !ok {
			return true
		}
		lab := lc.Labels()
		fmt.Fprintf(stdout, "%-8s %-14s %-4s [%s,%s]%*s %s → %s\n",
			c.Pos().String(), cmdKind(c), ty.PC.String(), lab.RL, lab.WL,
			5-len(lab.RL.String())-len(lab.WL.String()), "",
			ty.Start, ty.End)
		return true
	})
	return nil
}

// cmdKind names a command node for the trace listing.
func cmdKind(c ast.Cmd) string {
	switch c := c.(type) {
	case *ast.Skip:
		return "skip"
	case *ast.Assign:
		return "assign " + c.Name
	case *ast.Store:
		return "store " + c.Name
	case *ast.If:
		return "if"
	case *ast.While:
		return "while"
	case *ast.Sleep:
		return "sleep"
	case *ast.Mitigate:
		return fmt.Sprintf("mitigate@%d", c.MitID)
	}
	return fmt.Sprintf("%T", c)
}

func runTrace(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("trace", stderr)
	latName := latticeFlag(fs)
	hwName := fs.String("hw", "partitioned", "hardware model")
	mitigate := fs.Bool("mitigate", true, "enable predictive mitigation")
	maxSteps := fs.Int("max-steps", 100_000, "step budget")
	sets := setFlags{}
	fs.Var(sets, "set", "set an input variable (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	env, err := PickEnv(*hwName, lat)
	if err != nil {
		return err
	}
	m, err := full.New(prog, res, env, full.Options{DisableMitigation: !*mitigate})
	if err != nil {
		return err
	}
	for name, v := range sets {
		if !m.Memory().HasScalar(name) {
			return fmt.Errorf("-set %s: no such scalar variable", name)
		}
		m.Memory().Set(name, v)
	}
	fmt.Fprintf(stdout, "%5s %8s %8s %-8s %-6s %s\n", "step", "clock", "cost", "pos", "labels", "command")
	mitsSeen := 0
	for step := 0; step < *maxSteps; step++ {
		head := m.Peek()
		if head == nil {
			break
		}
		// Completed mitigations resolved by Peek (padding applied).
		for ; mitsSeen < len(m.Mitigations()); mitsSeen++ {
			r := m.Mitigations()[mitsSeen]
			fmt.Fprintf(stdout, "%5s %8d %8s %-8s %-6s mitigate@%d completed: %d cycles (body %d)\n",
				"", m.Clock(), "", "", "", r.ID, r.Duration, r.Elapsed)
		}
		lab := head.(ast.Labeled).Labels()
		before := m.Clock()
		m.Step()
		fmt.Fprintf(stdout, "%5d %8d %8d %-8s [%s,%s] %s\n",
			m.Steps(), m.Clock(), m.Clock()-before, head.Pos().String(), lab.RL, lab.WL, cmdKind(head))
	}
	if m.Peek() != nil {
		return fmt.Errorf("step budget exhausted")
	}
	for ; mitsSeen < len(m.Mitigations()); mitsSeen++ {
		r := m.Mitigations()[mitsSeen]
		fmt.Fprintf(stdout, "%5s %8d %8s %-8s %-6s mitigate@%d completed: %d cycles (body %d)\n",
			"", m.Clock(), "", "", "", r.ID, r.Duration, r.Elapsed)
	}
	fmt.Fprintf(stdout, "total: %d steps, %d cycles\n", m.Steps(), m.Clock())
	return nil
}

func runServe(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("serve", stderr)
	latName := latticeFlag(fs)
	hwName := fs.String("hw", "partitioned",
		fmt.Sprintf("hardware model: one of %v", hw.EnvNames()))
	workers := fs.Int("workers", 4, "number of pool shards")
	queue := fs.Int("queue", 2, "per-shard submission queue depth")
	requests := fs.Int("requests", 32, "number of requests to serve")
	mitigate := fs.Bool("mitigate", true, "enable predictive mitigation")
	maxSteps := fs.Int("max-steps", 10_000_000, "per-request step budget")
	engine := fs.String("engine", "tree",
		fmt.Sprintf("execution engine: one of %v", exec.EngineNames()))
	optLevel := fs.Int("opt", exec.DefaultOptLevel,
		"vm-engine bytecode optimization level: 0 = stack interpreter, 1 = register lowering, 2 = + superinstruction fusion (identical observable timing at every level)")
	listen := fs.String("listen", "",
		"serve the HTTP/JSON API on this address (e.g. 127.0.0.1:8080) until interrupted, instead of driving -requests locally")
	maxInflight := fs.Int("max-inflight", 0,
		"with -listen, shed (503) beyond this many concurrent requests (0 = unbounded)")
	codecName := fs.String("codec", "fast",
		"with -listen, wire codec for the hot endpoints: fast (pooled zero-allocation encoder) or std (encoding/json)")
	streamWindow := fs.Int("stream-window", 0,
		"with -listen, max in-flight requests pipelined per /v1/stream connection (0 = default 256)")
	sessionBudget := fs.Float64("session-budget", 0,
		"with -listen, per-tenant leakage budget in bits before requests are refused with 429 (0 = unlimited)")
	sessionTTL := fs.Duration("session-ttl", 0,
		"with -listen, idle lifetime of a tenant session before its leakage account resets (0 = never)")
	sessionMax := fs.Int("session-max", 0,
		"with -listen, live tenant sessions kept before LRU eviction (0 = default 65536)")
	pprofAddr := fs.String("pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060) while requests run; with -listen and an equal address the profiles share the API listener")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = none)")
	retries := fs.Int("retries", 0, "extra attempts for retryable request failures")
	retryBackoff := fs.Duration("retry-backoff", time.Millisecond, "initial retry backoff (doubles per attempt)")
	breakerThreshold := fs.Int("breaker-threshold", 0,
		"consecutive failures that eject a shard (0 = breaker off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 10*time.Millisecond,
		"how long an ejected shard rests before a recovery probe")
	shed := fs.Bool("shed", false,
		"fail fast (overloaded) instead of blocking when a shard queue is full")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	var faults faultFlags
	fs.Var(&faults, "fault",
		fmt.Sprintf("inject faults: point=rate[:count], point one of %v (repeatable)", fault.Points))
	var vary rangeFlags
	fs.Var(&vary, "vary", "vary a variable across requests, e.g. -vary h=0:63:1 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofAddr != "" && *pprofAddr != *listen {
		// A standalone pprof listener: the historical behavior when only
		// -pprof is given, and the split-address form alongside -listen.
		// (When the two addresses are equal the profiles are mounted on
		// the API listener instead — one port to firewall.)
		// Listen synchronously so address errors surface immediately;
		// the HTTP server then runs for the lifetime of the serve
		// command (use a large -requests to hold it open while
		// capturing a profile).
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer ln.Close()
		hs := &http.Server{Handler: http.DefaultServeMux}
		go hs.Serve(ln)
		defer hs.Close()
		fmt.Fprintf(stderr, "pprof: serving profiles on http://%s/debug/pprof/\n", ln.Addr())
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	for _, s := range vary {
		if _, ok := res.VarLabel(s.name); !ok {
			return fmt.Errorf("-vary %s: no such variable", s.name)
		}
	}
	env, err := PickEnv(*hwName, lat)
	if err != nil {
		return err
	}
	var injector *fault.Injector
	if len(faults.plan) > 0 {
		injector = fault.New(*faultSeed, faults.plan)
	}
	// Tenant sessions are a transport-layer feature: any -session-* flag
	// enables the manager, which only the HTTP path consults.
	sessionsOn := false
	fs.Visit(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "session-") {
			sessionsOn = true
		}
	})
	if sessionsOn && *listen == "" {
		return fmt.Errorf("serve: -session-budget/-session-ttl/-session-max require -listen")
	}
	var codec wire.Codec
	switch *codecName {
	case "fast":
		codec = fastjson.Codec{}
	case "std":
		codec = wire.Std{}
	default:
		return fmt.Errorf("serve: -codec must be fast or std, got %q", *codecName)
	}
	// One metrics accumulator shared by the pool and the session
	// manager, so /v1/metrics reports both.
	met := obs.NewMetrics()
	var sessions *session.Manager
	if sessionsOn {
		sessions, err = session.NewManager(session.Options{
			Lat:         lat,
			BudgetBits:  *sessionBudget,
			TTL:         *sessionTTL,
			MaxSessions: *sessionMax,
			Metrics:     met,
		})
		if err != nil {
			return err
		}
	}
	pool, err := server.NewPool(prog, res, server.PoolOptions{
		Workers:          *workers,
		QueueDepth:       *queue,
		ShedOnSaturation: *shed,
		MaxRetries:       *retries,
		RetryBase:        *retryBackoff,
		RetrySeed:        *faultSeed,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Options: server.Options{
			Env:               env,
			Engine:            *engine,
			OptLevel:          *optLevel,
			OptSet:            true,
			DisableMitigation: !*mitigate,
			Limits:            exec.Limits{MaxSteps: *maxSteps, Timeout: *timeout},
			Injector:          injector,
			Metrics:           met,
		},
	})
	if err != nil {
		return err
	}
	if *listen != "" {
		return serveHTTP(pool, prog, sessions, *listen, *pprofAddr == *listen, *maxInflight, codec, *streamWindow, stdout, stderr)
	}
	reqs := make([]server.Request, *requests)
	for i := range reqs {
		i := i
		reqs[i] = func(m *mem.Memory) {
			for _, s := range vary {
				vals := s.values()
				m.Set(s.name, vals[i%len(vals)])
			}
		}
	}
	var resps []*server.Response
	failed := 0
	if injector != nil || *retries > 0 || *timeout > 0 || *shed {
		// Fault-tolerant mode drives requests individually through the
		// retry/deadline path; typed failures are tallied, not fatal.
		for _, req := range reqs {
			resp, err := pool.Handle(context.Background(), req)
			if err != nil {
				if server.Retryable(err) || errors.Is(err, context.DeadlineExceeded) ||
					errors.Is(err, server.ErrBudgetExceeded) {
					failed++
					continue
				}
				pool.Close()
				return err
			}
			resps = append(resps, resp)
		}
		pool.Close()
	} else {
		resps, err = pool.HandleAll(context.Background(), reqs)
		pool.Close()
		if err != nil {
			return err
		}
	}
	distinct := map[uint64]bool{}
	byShard := make([][]*server.Response, pool.Workers())
	for _, r := range resps {
		distinct[r.Time] = true
		byShard[r.Shard] = append(byShard[r.Shard], r)
	}
	fmt.Fprintf(stdout, "served %d requests across %d shards on %s hardware (%s engine)\n",
		pool.Served(), pool.Workers(), env.Name(), *engine)
	if failed > 0 {
		fmt.Fprintf(stdout, "failed requests: %d of %d\n", failed, len(reqs))
	}
	if injector != nil {
		fmt.Fprintf(stdout, "%s\n", injector)
	}
	fmt.Fprintf(stdout, "distinct response times: %d\n", len(distinct))
	for shard, rs := range byShard {
		fmt.Fprintf(stdout, "shard %d: %d requests, settled after %d\n",
			shard, len(rs), server.SettledAfter(rs))
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, pool.Snapshot())
	return nil
}

// serveListenHook, when non-nil, is called with the bound address and a
// stop function once serveHTTP is accepting connections. Production
// leaves it nil (shutdown then comes from SIGINT/SIGTERM); CLI tests
// install it to drive a serve run in-process.
var serveListenHook func(addr string, stop func())

// serveHTTP runs the pool behind the HTTP/JSON transport until
// interrupted, then drains gracefully: stop admitting, finish in-flight
// requests, close the pool, print the final snapshot.
func serveHTTP(pool *server.Pool, prog *ast.Program, sessions *session.Manager, addr string, sharePprof bool, maxInflight int, codec wire.Codec, streamWindow int, stdout, stderr io.Writer) error {
	h, err := transport.New(transport.Options{
		Pool: pool, Prog: prog, MaxInFlight: maxInflight, Sessions: sessions,
		Codec: codec, StreamWindow: streamWindow,
	})
	if err != nil {
		pool.Close()
		return err
	}
	if sessions != nil {
		budget := "unlimited"
		if sessions.BudgetBits() > 0 {
			budget = fmt.Sprintf("%.1f bits", sessions.BudgetBits())
		}
		ttl := "never expires"
		if sessions.TTL() > 0 {
			ttl = fmt.Sprintf("ttl %v", sessions.TTL())
		}
		fmt.Fprintf(stdout, "tenant sessions: budget %s per tenant, %s\n", budget, ttl)
	}
	if sharePprof {
		mux := h.Mux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		pool.Close()
		return fmt.Errorf("-listen: %w", err)
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	if sharePprof {
		fmt.Fprintf(stderr, "pprof: serving profiles on http://%s/debug/pprof/\n", ln.Addr())
	}
	hs := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if serveListenHook != nil {
		serveListenHook(ln.Addr().String(), stop)
	}
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		pool.Close()
		return err
	}
	fmt.Fprintln(stdout, "shutting down: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	drainErr := h.Shutdown(sctx) // drains admissions, then closes the pool
	_ = hs.Shutdown(sctx)
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintf(stdout, "served %d requests across %d shards\n", pool.Served(), pool.Workers())
	fmt.Fprint(stdout, pool.Snapshot())
	return nil
}

func runVerify(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("verify", stderr)
	latName := latticeFlag(fs)
	hwName := fs.String("hw", "partitioned", "hardware model to verify")
	trials := fs.Int("trials", 20, "trials per property")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	if _, err := PickEnv(*hwName, lat); err != nil {
		return err
	}
	factory := func() hw.Env {
		env, err := PickEnv(*hwName, lat)
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return env
	}
	c := &props.Checker{
		Prog:   prog,
		Res:    res,
		NewEnv: factory,
		Rand:   rand.New(rand.NewSource(*seed)),
	}
	checks := []struct {
		name string
		run  func() error
	}{
		{"Property 1 (adequacy)", func() error { return c.CheckAdequacy(*trials) }},
		{"Property 2 (determinism)", func() error { return c.CheckDeterminism(*trials) }},
		{"Property 3 (sequential composition)", func() error { return c.CheckSequentialComposition(*trials) }},
		{"Property 4 (sleep accuracy)", func() error {
			return props.CheckSleepAccuracy(lat, factory, []int64{0, 1, 100, -5})
		}},
		{"Property 5 (write label)", func() error { return c.CheckWriteLabel(*trials) }},
		{"Property 6 (read label)", func() error { return c.CheckReadLabel(*trials * 4) }},
		{"Property 7 (single-step NI)", func() error { return c.CheckSingleStepNI(*trials * 4) }},
		{"Theorem 1 (noninterference)", func() error { return c.CheckNoninterference(*trials) }},
		{"Lemma 1 (low determinism)", func() error { return c.CheckLowDeterminism(*trials, lat.Bot()) }},
	}
	failed := 0
	for _, ch := range checks {
		if err := ch.run(); err != nil {
			fmt.Fprintf(stdout, "FAIL %-38s %v\n", ch.name, err)
			failed++
		} else {
			fmt.Fprintf(stdout, "ok   %-38s\n", ch.name)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d contract checks failed for %s hardware", failed, *hwName)
	}
	fmt.Fprintf(stdout, "all contract checks passed for %s hardware\n", *hwName)
	return nil
}

func runCertify(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("certify", stderr)
	latName := latticeFlag(fs)
	seed := fs.Int64("seed", 1, "adversary seed (equal seeds replay bit-for-bit)")
	fullSweep := fs.Bool("full", false, "without a file: run the full certification matrix instead of the quick slice")
	secretVar := fs.String("var", "", "with a file: the secret variable the adversary varies over 0..n-1")
	secretN := fs.Int("n", 16, "with a file: secret-space size")
	engine := fs.String("engine", "tree",
		fmt.Sprintf("with a file: execution engine, one of %v", exec.EngineNames()))
	hwName := fs.String("hw", "partitioned", "with a file: hardware model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()

	if fs.NArg() == 0 {
		// Sweep mode: the checked-in certification matrix.
		rows, err := certify.Sweep(ctx, certify.SweepOptions{Seed: *seed, Quick: !*fullSweep})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-58s %9s %9s %9s  %s\n", "configuration", "measured", "upper", "reported", "verdict")
		for _, r := range rows {
			fmt.Fprintf(stdout, "%-58s %9.3f %9.3f %9.3f  %s\n",
				r.Label(), r.Result.MeasuredBits, r.Result.UpperBits, r.Result.ReportedBits, r.Result.Verdict())
		}
		if err := certify.Check(rows); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "certification passed: %d rows, positive control leaked as expected\n", len(rows))
		return nil
	}

	// File mode: certify one program, mitigated and unmitigated.
	if *secretVar == "" {
		return fmt.Errorf("certify: -var is required with a source file (the secret the adversary varies)")
	}
	if *secretN < 2 {
		return fmt.Errorf("certify: -n must be at least 2 (got %d)", *secretN)
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	if lv, ok := res.VarLabel(*secretVar); !ok {
		return fmt.Errorf("certify: -var %s: no such variable", *secretVar)
	} else if lat.Leq(lv, lat.Bot()) {
		fmt.Fprintf(stderr, "warning: %s is public; its variation is not a secret\n", *secretVar)
	}
	w := &certify.Workload{
		Name: strings.TrimSuffix(fs.Arg(0), ".timing"),
		Prog: prog, Res: res, Lat: lat, N: *secretN,
		Set: func(i int, m *mem.Memory) { m.Set(*secretVar, int64(i)) },
	}
	var mitErr error
	for _, mitigated := range []bool{false, true} {
		tgt, err := certify.NewEngineTarget(w, certify.TargetConfig{
			Engine: *engine, Hardware: *hwName, Mitigated: mitigated,
		})
		if err != nil {
			return err
		}
		r, err := certify.Certify(ctx, tgt, certify.Options{Seed: *seed})
		if err != nil {
			return err
		}
		mode := "unmitigated"
		if mitigated {
			mode = "mitigated"
		}
		fmt.Fprintf(stdout, "%s (%s, %s engine, %s hardware): %s\n",
			mode, w.Name, *engine, *hwName, r.Verdict())
		for _, a := range r.Attacks {
			fmt.Fprintf(stdout, "  %-18s %6.3f bits (upper %.3f, %d probes)  %s\n",
				a.Adversary, a.Bits, a.Upper, a.Probes, a.Detail)
		}
		fmt.Fprintf(stdout, "  measured %.3f / upper %.3f of %.3f secret bits; reported §7 bound %.3f\n",
			r.MeasuredBits, r.UpperBits, r.SecretBits, r.ReportedBits)
		if mitigated && !r.Certified {
			mitErr = fmt.Errorf("certification failed: measured upper bound %.3f bits exceeds reported §7 bound %.3f",
				r.UpperBits, r.ReportedBits)
		}
	}
	return mitErr
}

// rangeFlags collects repeated -secret name=lo:hi:step flags.
type rangeFlags []secretRange

type secretRange struct {
	name         string
	lo, hi, step int64
}

func (r *rangeFlags) String() string { return fmt.Sprintf("%v", []secretRange(*r)) }

// Set implements flag.Value.
func (r *rangeFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want -secret name=lo:hi:step, got %q", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want -secret name=lo:hi:step, got %q", v)
	}
	var vals [3]int64
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 0, 64)
		if err != nil {
			return err
		}
		vals[i] = n
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		return fmt.Errorf("range %q must have hi ≥ lo and step > 0", v)
	}
	*r = append(*r, secretRange{name, vals[0], vals[1], vals[2]})
	return nil
}

// values expands the range into its sample points.
func (s secretRange) values() []int64 {
	var out []int64
	for v := s.lo; v <= s.hi; v += s.step {
		out = append(out, v)
	}
	return out
}

// faultFlags collects repeated -fault point=rate[:count] flags into a
// fault plan. Points without a natural payload on the command line get
// a representative one (shard stalls pause 500µs, clock skew adds 100
// cycles) so the flag is observable without a payload syntax.
type faultFlags struct {
	plan fault.Plan
}

func (f *faultFlags) String() string {
	var parts []string
	for p, r := range f.plan {
		parts = append(parts, fmt.Sprintf("%s=%g", p, r.Rate))
	}
	return strings.Join(parts, ",")
}

func (f *faultFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want -fault point=rate[:count], got %q", v)
	}
	point := fault.Point(name)
	known := false
	for _, p := range fault.Points {
		if p == point {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("-fault %s: unknown point (one of %v)", name, fault.Points)
	}
	rateStr, countStr, hasCount := strings.Cut(spec, ":")
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 || rate > 1 {
		return fmt.Errorf("-fault %s: rate %q must be in [0, 1]", name, rateStr)
	}
	rule := fault.Rule{Rate: rate}
	if hasCount {
		count, err := strconv.ParseUint(countStr, 10, 64)
		if err != nil {
			return fmt.Errorf("-fault %s: count %q: %v", name, countStr, err)
		}
		rule.Count = count
	}
	switch point {
	case fault.ShardStall:
		rule.Stall = 500 * time.Microsecond
	case fault.ClockSkew:
		rule.Skew = 100
	}
	if f.plan == nil {
		f.plan = fault.Plan{}
	}
	f.plan[point] = rule
	return nil
}

func runLeak(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("leak", stderr)
	latName := latticeFlag(fs)
	hwName := fs.String("hw", "partitioned", "hardware model")
	mitigate := fs.Bool("mitigate", true, "enable predictive mitigation")
	maxCombos := fs.Int("max-combos", 512, "cap on secret combinations")
	var secrets rangeFlags
	fs.Var(&secrets, "secret", "secret range, e.g. -secret h=0:100:5 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(secrets) == 0 {
		return fmt.Errorf("at least one -secret range is required")
	}
	prog, res, lat, err := load(fs, *latName)
	if err != nil {
		return err
	}
	for _, s := range secrets {
		lv, ok := res.VarLabel(s.name)
		if !ok {
			return fmt.Errorf("-secret %s: no such variable", s.name)
		}
		if lat.Leq(lv, lat.Bot()) {
			fmt.Fprintf(stderr, "warning: %s is public; its variation is not a secret\n", s.name)
		}
	}
	// Cartesian product of the ranges, capped.
	combos := [][]int64{nil}
	for _, s := range secrets {
		var next [][]int64
		for _, c := range combos {
			for _, v := range s.values() {
				next = append(next, append(append([]int64(nil), c...), v))
				if len(next) > *maxCombos {
					return fmt.Errorf("secret space exceeds -max-combos=%d", *maxCombos)
				}
			}
		}
		combos = next
	}
	var lsecrets []leakage.Secret
	for _, combo := range combos {
		combo := combo
		lsecrets = append(lsecrets, func(m *mem.Memory) {
			for i, s := range secrets {
				m.Set(s.name, combo[i])
			}
		})
	}
	cfg := leakage.Config{
		Prog:      prog,
		Res:       res,
		Adversary: lat.Bot(),
		NewEnv: func() hw.Env {
			env, err := PickEnv(*hwName, lat)
			if err != nil {
				panic(err) // validated below before first use
			}
			return env
		},
		Opts: full.Options{DisableMitigation: !*mitigate},
	}
	if _, err := PickEnv(*hwName, lat); err != nil {
		return err
	}
	m, err := leakage.Measure(cfg, lsecrets)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "secrets tried:              %d\n", m.Trials)
	fmt.Fprintf(stdout, "distinct observations:      %d (%.2f bits)\n", m.DistinctObservations, m.QBits)
	fmt.Fprintf(stdout, "mitigate timing variations: %d (%.2f bits, Theorem 2 cap)\n",
		m.DistinctMitVariations, m.VBits)
	fmt.Fprintf(stdout, "analytic §7 bound:          %.2f bits (K=%d, T=%d)\n",
		leakage.BoundForMeasurement(m, lat.Size()-1), m.RelevantMitigates, m.MaxClock)
	if err := leakage.CheckTheorem2(m); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "Theorem 2 holds: observations ≤ mitigate timing variations")
	return nil
}

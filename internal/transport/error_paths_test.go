package transport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport/wire"
)

// TestErrorPaths drives every request-rejection path against a live
// server and asserts the exact HTTP status and wire error code: these
// are the transport's contract with clients, and a code drifting (or a
// rejection silently turning into acceptance) is a wire break even
// when nothing crashes.
func TestErrorPaths(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server.PoolOptions{}, Options{Sessions: mgr, MaxBatch: 4})

	okRun := func() wire.RunRequest { return wire.RunRequest{Inputs: map[string]int64{"h": 1}} }
	overBatch := wire.BatchRequest{Requests: make([]wire.RunRequest, 5)}
	for i := range overBatch.Requests {
		overBatch.Requests[i] = okRun()
	}

	cases := []struct {
		name       string
		path       string
		body       string // raw JSON body
		header     map[string]string
		wantStatus int
		wantCode   string
		wantMsg    string // substring the error message must carry
	}{
		{
			name:       "malformed JSON run",
			path:       "/v1/run",
			body:       `{"inputs": {`,
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
		},
		{
			name:       "malformed JSON batch",
			path:       "/v1/batch",
			body:       `[not even an object`,
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
		},
		{
			name:       "unknown field",
			path:       "/v1/run",
			body:       `{"inputs":{"h":1},"exfiltrate":true}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
			wantMsg:    "exfiltrate",
		},
		{
			name:       "schema_version above current",
			path:       "/v1/run",
			body:       mustJSON(t, wire.RunRequest{SchemaVersion: wire.SchemaVersion + 1, Inputs: map[string]int64{"h": 1}}),
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
			wantMsg:    fmt.Sprintf("schema_version %d", wire.SchemaVersion+1),
		},
		{
			// 0 means "current" by design, so the oldest invalid
			// below-minimum version is negative.
			name:       "negative schema_version",
			path:       "/v1/run",
			body:       `{"schema_version":-1,"inputs":{"h":1}}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
		},
		{
			name:       "schema_version above current in batch",
			path:       "/v1/batch",
			body:       mustJSON(t, wire.BatchRequest{SchemaVersion: wire.SchemaVersion + 1, Requests: []wire.RunRequest{okRun()}}),
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
		},
		{
			name:       "unknown input name",
			path:       "/v1/run",
			body:       `{"inputs":{"no_such_var":1}}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeUnknownInput,
			wantMsg:    "no_such_var",
		},
		{
			name:       "tenant header/body mismatch",
			path:       "/v1/run",
			body:       mustJSON(t, wire.RunRequest{Tenant: "alice", Inputs: map[string]int64{"h": 1}}),
			header:     map[string]string{TenantHeader: "mallory"},
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
			wantMsg:    "tenant mismatch",
		},
		{
			name: "tenant mismatch inside batch item",
			path: "/v1/batch",
			body: mustJSON(t, wire.BatchRequest{Requests: []wire.RunRequest{
				okRun(),
				{Tenant: "bob", Inputs: map[string]int64{"h": 2}},
			}}),
			header:     map[string]string{TenantHeader: "alice"},
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
			wantMsg:    "request 1",
		},
		{
			name:       "oversized batch",
			path:       "/v1/batch",
			body:       mustJSON(t, overBatch),
			wantStatus: http.StatusBadRequest,
			wantCode:   wire.CodeInvalidRequest,
			wantMsg:    "at most 4",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("POST", ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			for k, v := range tc.header {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var out struct {
				Error *wire.Error `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("error body must be JSON: %v", err)
			}
			if out.Error == nil {
				t.Fatal("missing error object")
			}
			if out.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", out.Error.Code, tc.wantCode)
			}
			if tc.wantMsg != "" && !strings.Contains(out.Error.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", out.Error.Message, tc.wantMsg)
			}
		})
	}

	// No session may have been opened by any rejected request.
	if n := mgr.Len(); n != 0 {
		t.Errorf("rejected requests opened %d sessions", n)
	}
}

// TestTenantAgreementAccepted: body and header naming the SAME tenant
// is fine — the mismatch check must not break the redundant-but-
// consistent case.
func TestTenantAgreementAccepted(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server.PoolOptions{}, Options{Sessions: mgr})

	body := mustJSON(t, wire.RunRequest{Tenant: "alice", Inputs: map[string]int64{"h": 1}})
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out wire.RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "alice" {
		t.Errorf("tenant = %q", out.Tenant)
	}
}

// TestBatchBoundConfig: the default bound applies at 0, a negative
// value disables the check, and an in-bounds batch is served whole.
func TestBatchBoundConfig(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{}, Options{MaxBatch: -1})
	batch := wire.BatchRequest{Requests: make([]wire.RunRequest, DefaultMaxBatch+1)}
	for i := range batch.Requests {
		batch.Requests[i] = wire.RunRequest{Inputs: map[string]int64{"h": int64(i % 8)}}
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled bound must admit any batch: %d %s", resp.StatusCode, body[:min(120, len(body))])
	}
	var out wire.BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != DefaultMaxBatch+1 {
		t.Errorf("%d results", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != nil {
			t.Fatalf("item %d failed: %+v", i, r.Error)
		}
	}

	h := &Handler{opts: Options{}}
	if got := h.maxBatch(); got != DefaultMaxBatch {
		t.Errorf("default maxBatch = %d", got)
	}
	h.opts.MaxBatch = 7
	if got := h.maxBatch(); got != 7 {
		t.Errorf("explicit maxBatch = %d", got)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

package transport

import (
	"fmt"
	"io"
	"math"

	"repro/internal/obs"
)

// writeProm renders an obs.Export in the Prometheus text exposition
// format (version 0.0.4). Every number comes straight from the Export —
// the exposition is a projection of the stable schema, never a third
// accounting — so a scrape and a JSON export taken together always
// agree (modulo the race of two separate snapshots).
func writeProm(w io.Writer, e obs.Export) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP timingc_%s %s\n# TYPE timingc_%s counter\ntimingc_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP timingc_%s %s\n# TYPE timingc_%s gauge\ntimingc_%s %g\n", name, help, name, name, v)
	}

	gauge("export_schema_version", "Schema version of the obs export these metrics project.", float64(e.SchemaVersion))
	counter("requests_total", "Requests served.", e.Requests)
	counter("failures_total", "Requests that failed (aborted, over budget, or canceled).", e.Failures)
	counter("steps_total", "Language-level steps executed.", e.Steps)
	counter("cycles_total", "Simulated cycles spent (useful work plus padding).", e.Cycles)
	counter("padding_cycles_total", "Cycles spent idling to mitigation prediction boundaries.", e.PaddingCycles)
	counter("useful_cycles_total", "Cycles spent on actual execution.", e.UsefulCycles)
	counter("mitigations_total", "Completed mitigate commands.", e.Mitigations)
	counter("mispredictions_total", "Mitigate executions that overran their prediction.", e.Mispredictions)
	counter("schedule_bumps_total", "Mitigation schedule inflations.", e.ScheduleBumps)
	counter("faults_total", "Injected faults delivered.", e.Faults)
	counter("retries_total", "Retry attempts after retryable failures.", e.Retries)
	counter("sheds_total", "Requests rejected by load shedding.", e.Sheds)
	counter("breaker_opens_total", "Circuit breaker open transitions.", e.BreakerOpens)
	counter("breaker_closes_total", "Circuit breaker close transitions.", e.BreakerCloses)
	gauge("sessions_active", "Live tenant sessions.", float64(e.SessionsActive))
	counter("sessions_created_total", "Tenant sessions admitted.", e.SessionsCreated)
	counter("sessions_evicted_ttl_total", "Sessions evicted after idle TTL expiry.", e.SessionsEvictedTTL)
	counter("sessions_evicted_lru_total", "Sessions evicted by the LRU capacity bound.", e.SessionsEvictedLRU)
	counter("budget_denials_total", "Requests rejected over the tenant leakage budget.", e.BudgetDenials)
	counter("bytes_in_total", "Request body bytes read by the transport.", e.BytesIn)
	counter("bytes_out_total", "Response body bytes written by the transport.", e.BytesOut)
	counter("stream_items_total", "Items served over /v1/stream connections.", e.StreamItems)
	gauge("streams_active", "Open /v1/stream connections.", float64(e.StreamsActive))

	// Latency as a native Prometheus histogram. The Export's buckets are
	// already cumulative with power-of-two upper bounds, which is exactly
	// the le-label contract.
	fmt.Fprintf(w, "# HELP timingc_latency_cycles Per-request response time in simulated cycles.\n")
	fmt.Fprintf(w, "# TYPE timingc_latency_cycles histogram\n")
	for _, b := range e.Latency.Buckets {
		if b.Le == math.MaxUint64 {
			// The top bucket is the +Inf bucket emitted below.
			continue
		}
		fmt.Fprintf(w, "timingc_latency_cycles_bucket{le=\"%d\"} %d\n", b.Le, b.Count)
	}
	fmt.Fprintf(w, "timingc_latency_cycles_bucket{le=\"+Inf\"} %d\n", e.Latency.Count)
	fmt.Fprintf(w, "timingc_latency_cycles_sum %d\n", e.Latency.Sum)
	fmt.Fprintf(w, "timingc_latency_cycles_count %d\n", e.Latency.Count)

	// Hardware counters, labeled by structure and event so dashboards
	// can compute any hit rate with a PromQL ratio.
	fmt.Fprintf(w, "# HELP timingc_hw_events_total Hardware structure hits and misses.\n")
	fmt.Fprintf(w, "# TYPE timingc_hw_events_total counter\n")
	for _, row := range []struct {
		unit         string
		hits, misses uint64
	}{
		{"l1d", e.HW.L1DHits, e.HW.L1DMisses},
		{"l2d", e.HW.L2DHits, e.HW.L2DMisses},
		{"l1i", e.HW.L1IHits, e.HW.L1IMisses},
		{"l2i", e.HW.L2IHits, e.HW.L2IMisses},
		{"dtlb", e.HW.DTLBHits, e.HW.DTLBMisses},
		{"itlb", e.HW.ITLBHits, e.HW.ITLBMisses},
		{"bp", e.HW.BPHits, e.HW.BPMisses},
	} {
		fmt.Fprintf(w, "timingc_hw_events_total{unit=%q,kind=\"hit\"} %d\n", row.unit, row.hits)
		fmt.Fprintf(w, "timingc_hw_events_total{unit=%q,kind=\"miss\"} %d\n", row.unit, row.misses)
	}
}

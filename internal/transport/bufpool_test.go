package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/internal/transport/wire"
)

// TestPutResultsClearsReferences: a recycled batch-result slice must
// neither pin the previous batch's responses in memory nor leak a
// stale result into a future response that under-fills the slice.
func TestPutResultsClearsReferences(t *testing.T) {
	sp := getResults(3)
	s := *sp
	for i := range s {
		s[i] = wire.BatchResult{
			Response: &wire.RunResponse{Time: uint64(i + 1)},
			Error:    &wire.Error{Code: wire.CodeInternal},
		}
	}
	putResults(sp)
	// The pooled backing array must hold no references now.
	full := s[:cap(s)]
	for i := range full {
		if full[i].Response != nil || full[i].Error != nil {
			t.Fatalf("putResults left element %d referenced: %+v", i, full[i])
		}
	}
	// And a fresh get of any size must come back zeroed.
	sp2 := getResults(2)
	for i, r := range *sp2 {
		if r.Response != nil || r.Error != nil {
			t.Fatalf("getResults returned stale element %d: %+v", i, r)
		}
	}
	putResults(sp2)
}

// TestPutBufDropsOversized: pathological bodies must not pin megabytes
// in the pool.
func TestPutBufDropsOversized(t *testing.T) {
	big := make([]byte, 0, maxPooledBuf+1)
	putBuf(&big) // must be dropped, not pooled
	huge := make([]wire.BatchResult, 0, maxPooledResults+1)
	putResults(&huge)
	// No direct observation of the pool internals; the property under
	// test is just that neither call panics or retains — exercised for
	// the race detector and as documentation of the cap contract.
}

// TestPooledBuffersNotAliasedUnderLoad is the leak-safety acceptance
// test: with many concurrent requests churning the buffer pool, every
// response must still decode cleanly and answer its own request — a
// buffer returned to the pool while the ResponseWriter still
// referenced it would corrupt interleaved responses.
func TestPooledBuffersNotAliasedUnderLoad(t *testing.T) {
	_, ts := newService(t, server.PoolOptions{Workers: 4, QueueDepth: 8}, Options{})

	const (
		goroutines = 8
		perG       = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h := int64((g*perG + i) % 64)
				raw, err := json.Marshal(wire.RunRequest{
					Inputs: map[string]int64{"h": h},
					Trace:  true,
				})
				if err != nil {
					errs <- err
					continue
				}
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					continue
				}
				var out wire.RunResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- fmt.Errorf("corrupt response %q: %w", body, err)
					continue
				}
				// The traced reply pins the response to this request.
				if len(out.Trace) != 1 || out.Trace[0].Var != "reply" {
					errs <- fmt.Errorf("h=%d: wrong trace %+v", h, out.Trace)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package transport

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/transport/client"
	"repro/internal/transport/wire"
)

// TestStreamSDKPipelinesAgainstRealHandler drives the real /v1/stream
// handler through the SDK: interleaved Send/Recv without closing the
// send side, results in order, clean EOF after CloseSend.
func TestStreamSDKPipelinesAgainstRealHandler(t *testing.T) {
	_, ts := newService(t, server0(), Options{})
	c := client.New(ts.URL, client.Options{})

	s, err := c.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Interactive ping-pong first: one request, one result, while the
	// send side stays open — the pipelined handler must not sit on the
	// result waiting for more input.
	if err := s.Send(wire.RunRequest{Inputs: map[string]int64{"h": 3}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if res.Response == nil {
		t.Fatalf("interactive result failed: %+v", res)
	}

	// Then a pipelined burst.
	const n = 16
	for i := 0; i < n; i++ {
		if err := s.Send(wire.RunRequest{Inputs: map[string]int64{"h": int64(i % 8)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := s.CloseSend(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		res, err := s.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Response == nil {
			t.Fatalf("result %d failed: %+v", got, res)
		}
		got++
	}
	if got != n {
		t.Fatalf("received %d results for %d pipelined sends", got, n)
	}
}

// TestStreamSDKOpenRefusedWhileDraining: a draining service refuses
// the stream with a typed error even though the SDK's request body is
// a still-open pipe — the handler must not block trying to drain it.
func TestStreamSDKOpenRefusedWhileDraining(t *testing.T) {
	h, ts := newService(t, server0(), Options{})
	if err := h.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := client.New(ts.URL, client.Options{})
	_, err := c.Stream(context.Background())
	if !errors.Is(err, client.ErrShuttingDown) {
		t.Fatalf("stream open during drain: err = %v, want ErrShuttingDown", err)
	}
}

package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/transport/wire"
)

// postStream ships a fixed NDJSON body to /v1/stream and decodes every
// result line.
func postStream(t *testing.T, url string, reqs []wire.RunRequest) []wire.BatchResult {
	t.Helper()
	var body bytes.Buffer
	for _, r := range reqs {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		body.Write(raw)
		body.WriteByte('\n')
	}
	resp, err := http.Post(url+"/v1/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var out []wire.BatchResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var res wire.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Bytes(), err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamMatchesBatch is the protocol acceptance check: the same
// request sequence through /v1/stream and /v1/batch must produce
// identical responses in identical order. Two fresh pools with the
// same config, because mitigation schedules adapt per shard — the
// comparison needs identical starting state, not a shared warm pool.
func TestStreamMatchesBatch(t *testing.T) {
	_, tsStream := newService(t, server.PoolOptions{Workers: 2}, Options{})
	_, tsBatch := newService(t, server.PoolOptions{Workers: 2}, Options{})

	var reqs []wire.RunRequest
	for i := 0; i < 40; i++ {
		reqs = append(reqs, wire.RunRequest{Inputs: map[string]int64{"h": int64(i % 16)}})
	}

	streamed := postStream(t, tsStream.URL, reqs)
	if len(streamed) != len(reqs) {
		t.Fatalf("stream returned %d results for %d requests", len(streamed), len(reqs))
	}

	resp, body := postJSON(t, tsBatch.URL+"/v1/batch", wire.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch wire.BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		sr, br := streamed[i].Response, batch.Results[i].Response
		if sr == nil || br == nil {
			t.Fatalf("item %d: stream=%+v batch=%+v", i, streamed[i], batch.Results[i])
		}
		if sr.Time != br.Time {
			t.Errorf("item %d: stream time %d != batch time %d", i, sr.Time, br.Time)
		}
	}
}

// TestStreamTenantSemantics: tenanted stream items advance the session
// in submission order exactly like batch items, interleaved with
// anonymous pipelined items.
func TestStreamTenantSemantics(t *testing.T) {
	mgr := newSessions(t, session.Options{})
	_, ts := newService(t, server0(), Options{Sessions: mgr})

	results := postStream(t, ts.URL, []wire.RunRequest{
		{Tenant: "alice", Inputs: map[string]int64{"h": 1}},
		{Inputs: map[string]int64{"h": 2}}, // anonymous rides along
		{Tenant: "alice", Inputs: map[string]int64{"h": 3}},
		{Tenant: "bob", Inputs: map[string]int64{"h": 4}},
	})
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	r0, r2, r3 := results[0].Response, results[2].Response, results[3].Response
	if r0 == nil || r2 == nil || r3 == nil {
		t.Fatalf("session items must succeed: %+v", results)
	}
	if r0.Epoch != 1 || r2.Epoch != 2 {
		t.Errorf("alice's epochs must advance in stream order: %d then %d", r0.Epoch, r2.Epoch)
	}
	if r3.Tenant != "bob" || r3.Epoch != 1 {
		t.Errorf("bob must get his own session: %+v", r3)
	}
	if anon := results[1].Response; anon == nil || anon.Tenant != "" {
		t.Errorf("anonymous item must stay anonymous: %+v", anon)
	}
}

// TestStreamBudgetDenialMidStream: a tenant exhausting its leakage
// budget mid-stream gets per-item leakage_budget_exceeded error lines
// (the 429 analogue) while the stream keeps serving other items.
func TestStreamBudgetDenialMidStream(t *testing.T) {
	met := obs.NewMetrics()
	mgr := newSessions(t, session.Options{BudgetBits: 10, TTL: time.Minute, Metrics: met})
	popts := server0()
	popts.Metrics = met
	_, ts := newService(t, popts, Options{Sessions: mgr})

	var reqs []wire.RunRequest
	for i := 0; i < 50; i++ {
		reqs = append(reqs, wire.RunRequest{Tenant: "bob", Inputs: map[string]int64{"h": 63}})
	}
	// A final uncapped item must still run after bob's denials.
	reqs = append(reqs, wire.RunRequest{Tenant: "alice", Inputs: map[string]int64{"h": 63}})

	results := postStream(t, ts.URL, reqs)
	if len(results) != len(reqs) {
		t.Fatalf("stream must answer every line: got %d of %d", len(results), len(reqs))
	}
	denials := 0
	for _, res := range results[:50] {
		if res.Error != nil {
			if res.Error.Code != wire.CodeLeakageBudget {
				t.Fatalf("error code %q, want %q", res.Error.Code, wire.CodeLeakageBudget)
			}
			if res.Error.RetryAfterMS != time.Minute.Milliseconds() {
				t.Errorf("retry_after_ms = %d, want %d", res.Error.RetryAfterMS, time.Minute.Milliseconds())
			}
			denials++
		}
	}
	if denials == 0 {
		t.Fatal("a 10-bit budget must eventually deny mid-stream")
	}
	if last := results[50]; last.Response == nil || last.Response.Tenant != "alice" {
		t.Errorf("alice must be served after bob's denials: %+v", last)
	}
}

// TestStreamMalformedLineTerminates: a line the codec rejects produces
// one final error result and ends the stream; earlier results are
// still delivered.
func TestStreamMalformedLineTerminates(t *testing.T) {
	_, ts := newService(t, server0(), Options{})

	body := strings.NewReader(
		`{"inputs":{"h":1}}` + "\n" +
			`{"inputs":{"h":2},` + "\n" + // malformed
			`{"inputs":{"h":3}}` + "\n") // must never run
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := nonEmptyLines(raw)
	if len(lines) != 2 {
		t.Fatalf("want 1 result + 1 terminal error, got %d lines: %s", len(lines), raw)
	}
	var first, second wire.BatchResult
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Response == nil {
		t.Fatalf("first line must be a response: %s (%v)", lines[0], err)
	}
	if err := json.Unmarshal(lines[1], &second); err != nil || second.Error == nil {
		t.Fatalf("second line must be an error: %s (%v)", lines[1], err)
	}
	if second.Error.Code != wire.CodeInvalidRequest {
		t.Errorf("terminal code = %q, want %q", second.Error.Code, wire.CodeInvalidRequest)
	}
}

// TestStreamStrictUnknownField: stream lines get the same strict
// decoding as the unary endpoints — an unknown field is an
// exfiltration vector, not a typo to ignore.
func TestStreamStrictUnknownField(t *testing.T) {
	_, ts := newService(t, server0(), Options{})

	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson",
		strings.NewReader(`{"inputs":{"h":1},"covert":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := nonEmptyLines(raw)
	if len(lines) != 1 {
		t.Fatalf("want a single terminal error line, got %s", raw)
	}
	var res wire.BatchResult
	if err := json.Unmarshal(lines[0], &res); err != nil || res.Error == nil {
		t.Fatalf("terminal line must be an error: %s", raw)
	}
	if res.Error.Code != wire.CodeInvalidRequest || !strings.Contains(res.Error.Message, "covert") {
		t.Errorf("unknown field must be rejected by name: %+v", res.Error)
	}
}

func nonEmptyLines(raw []byte) [][]byte {
	var out [][]byte
	for _, l := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			out = append(out, l)
		}
	}
	return out
}

// TestStreamDrainMidStream: Shutdown while a stream is open lets the
// stream finish in-flight work, answer with a shutting_down error
// line, and close — the streaming analogue of the two-phase drain.
func TestStreamDrainMidStream(t *testing.T) {
	h, ts := newService(t, server0(), Options{RetryAfter: 2 * time.Second})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// One request-response exchange while healthy.
	if _, err := io.WriteString(pw, `{"inputs":{"h":5}}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no first result: %v", sc.Err())
	}
	var first wire.BatchResult
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Response == nil {
		t.Fatalf("first result must succeed: %s", sc.Bytes())
	}

	// Begin draining; the open stream must be told off on its next line.
	done := make(chan error, 1)
	go func() { done <- h.Shutdown(context.Background()) }()
	for !h.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := io.WriteString(pw, `{"inputs":{"h":6}}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no drain result: %v", sc.Err())
	}
	var second wire.BatchResult
	if err := json.Unmarshal(sc.Bytes(), &second); err != nil || second.Error == nil {
		t.Fatalf("drain must answer with an error line: %s", sc.Bytes())
	}
	if second.Error.Code != wire.CodeShuttingDown {
		t.Errorf("drain code = %q, want %q", second.Error.Code, wire.CodeShuttingDown)
	}
	if second.Error.RetryAfterMS != (2 * time.Second).Milliseconds() {
		t.Errorf("drain retry_after_ms = %d, want %d", second.Error.RetryAfterMS, (2 * time.Second).Milliseconds())
	}
	if sc.Scan() {
		t.Errorf("stream must end after the drain line, got %s", sc.Bytes())
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestStreamMetrics: the wire counters account for stream traffic and
// the gauge returns to zero after the stream closes.
func TestStreamMetrics(t *testing.T) {
	met := obs.NewMetrics()
	popts := server0()
	popts.Metrics = met
	_, ts := newService(t, popts, Options{})

	const n = 8
	var reqs []wire.RunRequest
	for i := 0; i < n; i++ {
		reqs = append(reqs, wire.RunRequest{Inputs: map[string]int64{"h": int64(i)}})
	}
	if got := len(postStream(t, ts.URL, reqs)); got != n {
		t.Fatalf("results = %d", got)
	}

	s := met.Snapshot()
	if s.StreamItems != n {
		t.Errorf("StreamItems = %d, want %d", s.StreamItems, n)
	}
	if s.BytesIn == 0 || s.BytesOut == 0 {
		t.Errorf("byte counters must move: in=%d out=%d", s.BytesIn, s.BytesOut)
	}
	if s.StreamsActive != 0 {
		t.Errorf("StreamsActive = %d after close, want 0", s.StreamsActive)
	}

	// The counters surface through the export and the Prometheus view.
	resp, body := get(t, ts.URL+"/v1/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var e obs.Export
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.SchemaVersion != obs.ExportSchemaVersion {
		t.Errorf("export schema = %d, want %d", e.SchemaVersion, obs.ExportSchemaVersion)
	}
	if e.StreamItems != n {
		t.Errorf("export StreamItems = %d, want %d", e.StreamItems, n)
	}
	resp, body = get(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom status %d", resp.StatusCode)
	}
	for _, want := range []string{
		fmt.Sprintf("timingc_stream_items_total %d", n),
		"timingc_streams_active 0",
		"timingc_bytes_in_total ",
		"timingc_bytes_out_total ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestStreamWithStdCodec: the whole stream protocol behind the stdlib
// codec — the seam must not change observable behavior.
func TestStreamWithStdCodec(t *testing.T) {
	_, ts := newService(t, server0(), Options{Codec: wire.Std{}})

	results := postStream(t, ts.URL, []wire.RunRequest{
		{Inputs: map[string]int64{"h": 1}},
		{Inputs: map[string]int64{"h": 2}},
	})
	if len(results) != 2 || results[0].Response == nil || results[1].Response == nil {
		t.Fatalf("std-codec stream must serve both items: %+v", results)
	}
}

// TestStreamRejectedAfterShutdown: a new stream against a draining
// handler is refused outright with 503.
func TestStreamRejectedAfterShutdown(t *testing.T) {
	h, ts := newService(t, server0(), Options{})
	if err := h.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("stream after shutdown: status %d, want 503", resp.StatusCode)
	}
}

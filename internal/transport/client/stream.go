package client

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"

	"repro/internal/transport/wire"
)

// Stream is a live /v1/stream connection: NDJSON requests pipelined to
// the service, results read back in submission order. Send and Recv may
// run concurrently (one producer goroutine, one consumer goroutine is
// the intended shape); neither blocks the other, so a caller can keep
// the window full while draining results.
//
// The protocol mirrors the batch endpoint unrolled over time: every
// Send is answered by exactly one Recv result — {Response: ...} on
// success, {Error: ...} for a per-item failure (use Err to map it) —
// until either the client calls CloseSend and drains the remaining
// results to io.EOF, or the service ends the stream after a terminal
// error line (malformed request, shutdown drain).
type Stream struct {
	c    *Client
	pw   *io.PipeWriter
	resp *http.Response
	sc   *bufio.Scanner

	sendMu sync.Mutex
	recvMu sync.Mutex
	closed bool
}

// Stream opens a streaming connection. The context governs the whole
// stream's lifetime: canceling it tears the connection down.
func (c *Client) Stream(ctx context.Context) (*Stream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	// The service commits response headers before reading the first
	// line, so Do returns as soon as the stream is accepted.
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		pw.Close()
		bp := getBuf()
		b, _ := readBody(resp.Body, (*bp)[:0])
		*bp = b[:0]
		resp.Body.Close()
		err := c.decodeError(resp.StatusCode, b)
		putBuf(bp)
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxPooledBuf)
	return &Stream{c: c, pw: pw, resp: resp, sc: sc}, nil
}

// Send pipelines one request onto the stream. The client-level default
// tenant applies as in Run. Send does not wait for the result; pair it
// with a Recv.
func (s *Stream) Send(req wire.RunRequest) error {
	req = s.c.tenanted(req)
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	bp := getBuf()
	defer putBuf(bp)
	b, err := s.c.codec.AppendRunRequest((*bp)[:0], &req)
	*bp = b[:0]
	if err != nil {
		return err
	}
	b = append(b, '\n')
	*bp = b[:0]
	_, err = s.pw.Write(b)
	return err
}

// Recv reads the next result line. It returns io.EOF once the service
// has answered everything sent before CloseSend.
func (s *Stream) Recv() (*wire.BatchResult, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		line := s.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		res := &wire.BatchResult{}
		if err := s.c.codec.DecodeBatchResult(line, res, false); err != nil {
			return nil, err
		}
		return res, nil
	}
}

// CloseSend ends the request side of the stream. The service answers
// everything already pipelined, then closes its side, after which Recv
// returns io.EOF.
func (s *Stream) CloseSend() error {
	return s.pw.Close()
}

// Close releases the stream. It drains any unread response bytes so
// the connection returns to the keep-alive pool, then closes the body.
// Safe after CloseSend, and idempotent.
func (s *Stream) Close() error {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.pw.Close()
	io.Copy(io.Discard, s.resp.Body)
	return s.resp.Body.Close()
}
